// Package parser implements a recursive-descent parser for the focc C
// dialect. The parser resolves type syntax (typedefs, struct/enum tags,
// array sizes) during the parse, because C's grammar requires knowing which
// identifiers name types; identifier *uses* in expressions are resolved
// later by the semantic analyzer.
package parser

import (
	"fmt"

	"focc/internal/cc/ast"
	"focc/internal/cc/lexer"
	"focc/internal/cc/token"
	"focc/internal/cc/types"
)

// Error is a parse error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parser parses one translation unit.
type Parser struct {
	toks   []token.Token
	i      int
	errs   []error
	scopes []*scope
	file   *ast.File
	// EnumConsts accumulates file-scope enum constants for the semantic
	// analyzer.
	enumConsts map[string]int64
}

type scope struct {
	typedefs map[string]*types.Type
	tags     map[string]*types.Type
}

// Parse tokenizes and parses preprocessed source lines.
func Parse(name string, lines []token.Line) (*ast.File, []error) {
	lx := lexer.New(lines)
	toks, lexErrs := lx.All()
	p := &Parser{
		toks:       toks,
		errs:       append([]error{}, lexErrs...),
		enumConsts: map[string]int64{},
		file:       &ast.File{Name: name},
	}
	p.pushScope()
	p.parseFile()
	p.file.EnumConsts = p.enumConsts
	if len(p.errs) > 0 {
		return p.file, p.errs
	}
	return p.file, nil
}

// ParseString parses raw (already preprocessed or preprocessor-free) source.
func ParseString(name, src string) (*ast.File, []error) {
	return Parse(name, token.SplitLines(name, src))
}

// bailout is panicked on unrecoverable parse errors inside one declaration;
// parseFile recovers and resynchronizes.
type bailout struct{}

func (p *Parser) pushScope() {
	p.scopes = append(p.scopes, &scope{
		typedefs: map[string]*types.Type{},
		tags:     map[string]*types.Type{},
	})
}

func (p *Parser) popScope() { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *Parser) lookupTypedef(name string) *types.Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].typedefs[name]; ok {
			return t
		}
	}
	return nil
}

func (p *Parser) lookupTag(name string) *types.Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].tags[name]; ok {
			return t
		}
	}
	return nil
}

func (p *Parser) cur() token.Token {
	if p.i < len(p.toks) {
		return p.toks[p.i]
	}
	if n := len(p.toks); n > 0 {
		return token.Token{Kind: token.EOF, Pos: p.toks[n-1].Pos}
	}
	return token.Token{Kind: token.EOF}
}

func (p *Parser) peek(n int) token.Token {
	if p.i+n < len(p.toks) {
		return p.toks[p.i+n]
	}
	return token.Token{Kind: token.EOF}
}

func (p *Parser) next() token.Token {
	t := p.cur()
	p.i++
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	panic(bailout{})
}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// sync skips tokens until just past the next ; at brace depth zero, or past
// a closing } that returns to depth zero.
func (p *Parser) sync() {
	depth := 0
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.LBrace:
			depth++
		case token.RBrace:
			depth--
			if depth <= 0 {
				p.next()
				return
			}
		case token.Semi:
			if depth == 0 {
				p.next()
				return
			}
		}
		p.next()
	}
}

func (p *Parser) parseFile() {
	for !p.at(token.EOF) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(bailout); !ok {
						panic(r)
					}
					p.sync()
				}
			}()
			p.parseTopDecl()
		}()
	}
}

// --- Declarations ---

type declSpec struct {
	base      *types.Type
	isTypedef bool
	isStatic  bool
	isExtern  bool
	pos       token.Pos
}

// isTypeStart reports whether the token at offset n begins a type.
func (p *Parser) isTypeStart(n int) bool {
	t := p.peek(n)
	switch t.Kind {
	case token.KwVoid, token.KwChar, token.KwShort, token.KwInt, token.KwLong,
		token.KwSigned, token.KwUnsigned, token.KwStruct, token.KwUnion,
		token.KwEnum, token.KwConst, token.KwTypedef, token.KwStatic,
		token.KwExtern:
		return true
	case token.Ident:
		return p.lookupTypedef(t.Text) != nil
	}
	return false
}

// parseDeclSpec parses declaration specifiers into a base type plus storage
// flags.
func (p *Parser) parseDeclSpec() declSpec {
	ds := declSpec{pos: p.cur().Pos}
	var (
		sawVoid, sawChar, sawShort, sawInt bool
		longCount                          int
		sawSigned, sawUnsigned             bool
		explicit                           *types.Type
	)
	for {
		t := p.cur()
		switch t.Kind {
		case token.KwConst:
			p.next() // const is accepted and ignored
		case token.KwStatic:
			ds.isStatic = true
			p.next()
		case token.KwExtern:
			ds.isExtern = true
			p.next()
		case token.KwTypedef:
			ds.isTypedef = true
			p.next()
		case token.KwVoid:
			sawVoid = true
			p.next()
		case token.KwChar:
			sawChar = true
			p.next()
		case token.KwShort:
			sawShort = true
			p.next()
		case token.KwInt:
			sawInt = true
			p.next()
		case token.KwLong:
			longCount++
			p.next()
		case token.KwSigned:
			sawSigned = true
			p.next()
		case token.KwUnsigned:
			sawUnsigned = true
			p.next()
		case token.KwStruct:
			explicit = p.parseStructSpec()
		case token.KwUnion:
			p.errorf(t.Pos, "union is not supported by the focc dialect")
			panic(bailout{})
		case token.KwEnum:
			explicit = p.parseEnumSpec()
		case token.Ident:
			if explicit == nil && !sawVoid && !sawChar && !sawShort &&
				!sawInt && longCount == 0 && !sawSigned && !sawUnsigned {
				if td := p.lookupTypedef(t.Text); td != nil {
					explicit = td
					p.next()
					continue
				}
			}
			goto done
		default:
			goto done
		}
	}
done:
	switch {
	case explicit != nil:
		ds.base = explicit
	case sawVoid:
		ds.base = types.VoidType
	case sawChar:
		switch {
		case sawUnsigned:
			ds.base = types.UCharType
		case sawSigned:
			ds.base = types.SCharType
		default:
			ds.base = types.CharType
		}
	case sawShort:
		if sawUnsigned {
			ds.base = types.UShortType
		} else {
			ds.base = types.ShortType
		}
	case longCount > 0:
		if sawUnsigned {
			ds.base = types.ULongType
		} else {
			ds.base = types.LongType
		}
	case sawInt || sawSigned:
		if sawUnsigned {
			ds.base = types.UIntType
		} else {
			ds.base = types.IntType
		}
	case sawUnsigned:
		ds.base = types.UIntType
	default:
		p.errorf(ds.pos, "expected type specifier, found %s", p.cur())
		panic(bailout{})
	}
	return ds
}

func (p *Parser) parseStructSpec() *types.Type {
	p.expect(token.KwStruct)
	var tag string
	if p.at(token.Ident) {
		tag = p.next().Text
	}
	var st *types.Type
	if tag != "" {
		if existing := p.lookupTag(tag); existing != nil && existing.Kind == types.Struct {
			st = existing
		}
	}
	if st == nil {
		st = &types.Type{Kind: types.Struct, Rec: &types.StructInfo{Name: tag}}
		if tag != "" {
			p.scopes[len(p.scopes)-1].tags[tag] = st
		}
	}
	if !p.at(token.LBrace) {
		if tag == "" {
			p.errorf(p.cur().Pos, "anonymous struct requires a body")
			panic(bailout{})
		}
		return st
	}
	if st.Rec.Complete {
		// Redefinition in an inner scope: make a fresh type.
		st = &types.Type{Kind: types.Struct, Rec: &types.StructInfo{Name: tag}}
		if tag != "" {
			p.scopes[len(p.scopes)-1].tags[tag] = st
		}
	}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		ds := p.parseDeclSpec()
		for {
			name, ft := p.parseDeclarator(ds.base)
			if name == "" {
				p.errorf(p.cur().Pos, "struct field requires a name")
			}
			if ft.Kind == types.Func {
				p.errorf(p.cur().Pos, "struct field cannot have function type")
			}
			st.Rec.Fields = append(st.Rec.Fields, types.Field{Name: name, Type: ft})
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.Semi)
	}
	p.expect(token.RBrace)
	st.Rec.Layout()
	return st
}

func (p *Parser) parseEnumSpec() *types.Type {
	pos := p.expect(token.KwEnum).Pos
	var tag string
	if p.at(token.Ident) {
		tag = p.next().Text
	}
	var et *types.Type
	if tag != "" {
		if existing := p.lookupTag(tag); existing != nil && existing.Kind == types.Enum {
			et = existing
		}
	}
	if et == nil {
		et = &types.Type{Kind: types.Enum, En: &types.EnumInfo{Name: tag}}
		if tag != "" {
			p.scopes[len(p.scopes)-1].tags[tag] = et
		}
	}
	if !p.at(token.LBrace) {
		return et
	}
	if len(p.scopes) != 1 {
		p.errorf(pos, "enum definitions are only supported at file scope")
	}
	p.expect(token.LBrace)
	next := int64(0)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		nameTok := p.expect(token.Ident)
		val := next
		if p.accept(token.Assign) {
			e := p.parseCondExpr()
			v, ok := p.evalConst(e)
			if !ok {
				p.errorf(e.Pos(), "enum value must be a constant expression")
			}
			val = v
		}
		et.En.Constants = append(et.En.Constants, types.EnumConst{Name: nameTok.Text, Value: val})
		p.enumConsts[nameTok.Text] = val
		next = val + 1
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RBrace)
	return et
}

// parseDeclarator parses pointer stars, a name (or nothing, for abstract
// declarators), and array/function suffixes, producing the declared type.
func (p *Parser) parseDeclarator(base *types.Type) (string, *types.Type) {
	t := base
	for p.accept(token.Star) {
		t = types.PointerTo(t)
		for p.accept(token.KwConst) {
		}
	}
	var name string
	if p.at(token.Ident) {
		name = p.next().Text
	}
	return name, p.parseDeclSuffix(t)
}

func (p *Parser) parseDeclSuffix(t *types.Type) *types.Type {
	// Collect array dimensions left-to-right, then apply right-to-left.
	var dims []int
	for {
		switch {
		case p.at(token.LBracket):
			p.next()
			if p.accept(token.RBracket) {
				dims = append(dims, -1)
				continue
			}
			e := p.parseCondExpr()
			n, ok := p.evalConst(e)
			if !ok || n < 0 {
				p.errorf(e.Pos(), "array size must be a non-negative constant expression")
				n = 0
			}
			p.expect(token.RBracket)
			dims = append(dims, int(n))
		case p.at(token.LParen):
			fn := p.parseParamList()
			fn.Ret = t
			ft := &types.Type{Kind: types.Func, Fn: fn}
			for i := len(dims) - 1; i >= 0; i-- {
				p.errorf(p.cur().Pos, "array of functions is not supported")
				_ = i
				break
			}
			return ft
		default:
			for i := len(dims) - 1; i >= 0; i-- {
				t = types.ArrayOf(t, dims[i])
			}
			return t
		}
	}
}

func (p *Parser) parseParamList() *types.FuncInfo {
	p.expect(token.LParen)
	fn := &types.FuncInfo{}
	if p.accept(token.RParen) {
		return fn
	}
	if p.at(token.KwVoid) && p.peek(1).Kind == token.RParen {
		p.next()
		p.next()
		return fn
	}
	for {
		if p.accept(token.Ellipsis) {
			fn.Variadic = true
			break
		}
		ds := p.parseDeclSpec()
		name, t := p.parseDeclarator(ds.base)
		// Parameters of array type decay to pointers.
		t = t.Decay()
		fn.Params = append(fn.Params, types.Param{Name: name, Type: t})
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	return fn
}

func (p *Parser) parseTopDecl() {
	ds := p.parseDeclSpec()
	if ds.isTypedef {
		for {
			name, t := p.parseDeclarator(ds.base)
			if name == "" {
				p.errorf(ds.pos, "typedef requires a name")
			} else {
				p.scopes[len(p.scopes)-1].typedefs[name] = t
			}
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.Semi)
		return
	}
	// Bare "struct X {...};" or "enum {...};".
	if p.accept(token.Semi) {
		return
	}
	name, t := p.parseDeclarator(ds.base)
	if t.Kind == types.Func {
		if p.at(token.LBrace) {
			fd := &ast.FuncDecl{Name: name, T: t}
			fd.P = ds.pos
			fd.Body = p.parseBlock()
			p.file.Decls = append(p.file.Decls, fd)
			return
		}
		// Prototype.
		fd := &ast.FuncDecl{Name: name, T: t}
		fd.P = ds.pos
		p.file.Decls = append(p.file.Decls, fd)
		if p.accept(token.Comma) {
			p.errorf(p.cur().Pos, "multiple declarators after a function prototype are not supported")
		}
		p.expect(token.Semi)
		return
	}
	// Variable declaration list.
	for {
		vd := &ast.VarDecl{Name: name, T: t}
		vd.P = ds.pos
		if p.accept(token.Assign) {
			vd.Init = p.parseInitializer()
		}
		if name == "" {
			p.errorf(ds.pos, "declaration requires a name")
		}
		p.file.Decls = append(p.file.Decls, vd)
		if !p.accept(token.Comma) {
			break
		}
		name, t = p.parseDeclarator(ds.base)
	}
	p.expect(token.Semi)
}

func (p *Parser) parseInitializer() ast.Expr {
	if p.at(token.LBrace) {
		pos := p.next().Pos
		il := &ast.InitList{}
		il.P = pos
		for !p.at(token.RBrace) && !p.at(token.EOF) {
			il.Elems = append(il.Elems, p.parseInitializer())
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RBrace)
		return il
	}
	return p.parseAssignExpr()
}

// --- Statements ---

func (p *Parser) parseBlock() *ast.Block {
	b := &ast.Block{}
	b.P = p.expect(token.LBrace).Pos
	p.pushScope()
	defer p.popScope()
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBrace)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	t := p.cur()
	switch t.Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		p.next()
		s := &ast.Empty{}
		s.P = t.Pos
		return s
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwCase, token.KwDefault:
		return p.parseCaseLabel()
	case token.KwBreak:
		p.next()
		p.expect(token.Semi)
		s := &ast.Break{}
		s.P = t.Pos
		return s
	case token.KwContinue:
		p.next()
		p.expect(token.Semi)
		s := &ast.Continue{}
		s.P = t.Pos
		return s
	case token.KwReturn:
		p.next()
		s := &ast.Return{}
		s.P = t.Pos
		if !p.at(token.Semi) {
			s.X = p.parseExpr()
		}
		p.expect(token.Semi)
		return s
	case token.KwGoto:
		p.next()
		lbl := p.expect(token.Ident)
		p.expect(token.Semi)
		s := &ast.Goto{Label: lbl.Text}
		s.P = t.Pos
		return s
	case token.Ident:
		// Label: "name: stmt".
		if p.peek(1).Kind == token.Colon {
			name := p.next().Text
			p.next() // colon
			s := &ast.Labeled{Name: name}
			s.P = t.Pos
			if p.at(token.RBrace) {
				e := &ast.Empty{}
				e.P = p.cur().Pos
				s.Stmt = e
			} else {
				s.Stmt = p.parseStmt()
			}
			return s
		}
	}
	if p.isTypeStart(0) {
		return p.parseDeclStmt()
	}
	e := p.parseExpr()
	p.expect(token.Semi)
	s := &ast.ExprStmt{X: e}
	s.P = t.Pos
	return s
}

func (p *Parser) parseDeclStmt() ast.Stmt {
	pos := p.cur().Pos
	ds := p.parseDeclSpec()
	if ds.isTypedef {
		for {
			name, t := p.parseDeclarator(ds.base)
			if name == "" {
				p.errorf(ds.pos, "typedef requires a name")
			} else {
				p.scopes[len(p.scopes)-1].typedefs[name] = t
			}
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.Semi)
		s := &ast.Empty{}
		s.P = pos
		return s
	}
	if ds.isStatic {
		p.errorf(pos, "static local variables are not supported by the focc dialect")
	}
	st := &ast.DeclStmt{}
	st.P = pos
	if p.accept(token.Semi) {
		// "struct X {...};" inside a block.
		return st
	}
	for {
		name, t := p.parseDeclarator(ds.base)
		vd := &ast.VarDecl{Name: name, T: t}
		vd.P = pos
		if p.accept(token.Assign) {
			vd.Init = p.parseInitializer()
		}
		if name == "" {
			p.errorf(pos, "declaration requires a name")
		}
		st.Decls = append(st.Decls, vd)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.Semi)
	return st
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.expect(token.KwIf).Pos
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.If{Cond: cond}
	s.P = pos
	s.Then = p.parseStmt()
	if p.accept(token.KwElse) {
		s.Else = p.parseStmt()
	}
	return s
}

func (p *Parser) parseWhile() ast.Stmt {
	pos := p.expect(token.KwWhile).Pos
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.While{Cond: cond}
	s.P = pos
	s.Body = p.parseStmt()
	return s
}

func (p *Parser) parseDoWhile() ast.Stmt {
	pos := p.expect(token.KwDo).Pos
	s := &ast.DoWhile{}
	s.P = pos
	s.Body = p.parseStmt()
	p.expect(token.KwWhile)
	p.expect(token.LParen)
	s.Cond = p.parseExpr()
	p.expect(token.RParen)
	p.expect(token.Semi)
	return s
}

func (p *Parser) parseFor() ast.Stmt {
	pos := p.expect(token.KwFor).Pos
	p.expect(token.LParen)
	p.pushScope()
	defer p.popScope()
	s := &ast.For{}
	s.P = pos
	if !p.at(token.Semi) {
		if p.isTypeStart(0) {
			s.Init = p.parseDeclStmt()
		} else {
			e := p.parseExpr()
			p.expect(token.Semi)
			es := &ast.ExprStmt{X: e}
			es.P = e.Pos()
			s.Init = es
		}
	} else {
		p.next()
	}
	if !p.at(token.Semi) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.Semi)
	if !p.at(token.RParen) {
		s.Post = p.parseExpr()
	}
	p.expect(token.RParen)
	s.Body = p.parseStmt()
	return s
}

func (p *Parser) parseSwitch() ast.Stmt {
	pos := p.expect(token.KwSwitch).Pos
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.Switch{Cond: cond, DefaultIdx: -1}
	s.P = pos
	if !p.at(token.LBrace) {
		p.errorf(p.cur().Pos, "switch body must be a block")
		panic(bailout{})
	}
	s.Body = p.parseBlock()
	return s
}

func (p *Parser) parseCaseLabel() ast.Stmt {
	t := p.next()
	s := &ast.CaseLabel{IsDefault: t.Kind == token.KwDefault}
	s.P = t.Pos
	if !s.IsDefault {
		s.Val = p.parseCondExpr()
	}
	p.expect(token.Colon)
	return s
}

// --- Expressions ---

func (p *Parser) parseExpr() ast.Expr {
	e := p.parseAssignExpr()
	for p.at(token.Comma) {
		pos := p.next().Pos
		y := p.parseAssignExpr()
		c := &ast.Comma{X: e, Y: y}
		c.P = pos
		e = c
	}
	return e
}

func isAssignOp(k token.Kind) bool {
	switch k {
	case token.Assign, token.PlusEq, token.MinusEq, token.StarEq,
		token.SlashEq, token.PercentEq, token.AmpEq, token.PipeEq,
		token.CaretEq, token.ShlEq, token.ShrEq:
		return true
	}
	return false
}

func (p *Parser) parseAssignExpr() ast.Expr {
	lhs := p.parseCondExpr()
	if isAssignOp(p.cur().Kind) {
		op := p.next()
		rhs := p.parseAssignExpr()
		a := &ast.Assign{Op: op.Kind, LHS: lhs, RHS: rhs}
		a.P = op.Pos
		return a
	}
	return lhs
}

func (p *Parser) parseCondExpr() ast.Expr {
	c := p.parseBinaryExpr(1)
	if p.at(token.Question) {
		pos := p.next().Pos
		then := p.parseExpr()
		p.expect(token.Colon)
		els := p.parseCondExpr()
		e := &ast.Cond{C: c, Then: then, Else: els}
		e.P = pos
		return e
	}
	return c
}

// binPrec returns the precedence of a binary operator, or 0.
func binPrec(k token.Kind) int {
	switch k {
	case token.OrOr:
		return 1
	case token.AndAnd:
		return 2
	case token.Pipe:
		return 3
	case token.Caret:
		return 4
	case token.Amp:
		return 5
	case token.EqEq, token.NotEq:
		return 6
	case token.Lt, token.Gt, token.Le, token.Ge:
		return 7
	case token.Shl, token.Shr:
		return 8
	case token.Plus, token.Minus:
		return 9
	case token.Star, token.Slash, token.Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseBinaryExpr(minPrec int) ast.Expr {
	lhs := p.parseCastExpr()
	for {
		prec := binPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return lhs
		}
		op := p.next()
		rhs := p.parseBinaryExpr(prec + 1)
		b := &ast.Binary{Op: op.Kind, X: lhs, Y: rhs}
		b.P = op.Pos
		lhs = b
	}
}

func (p *Parser) parseCastExpr() ast.Expr {
	if p.at(token.LParen) && p.isTypeStart(1) {
		pos := p.next().Pos
		t := p.parseTypeName()
		p.expect(token.RParen)
		x := p.parseCastExpr()
		c := &ast.Cast{To: t, X: x}
		c.P = pos
		return c
	}
	return p.parseUnaryExpr()
}

// parseTypeName parses an abstract type (for casts and sizeof).
func (p *Parser) parseTypeName() *types.Type {
	ds := p.parseDeclSpec()
	name, t := p.parseDeclarator(ds.base)
	if name != "" {
		p.errorf(ds.pos, "type name must be abstract (no identifier)")
	}
	return t
}

func (p *Parser) parseUnaryExpr() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Plus, token.Minus, token.Bang, token.Tilde, token.Star, token.Amp:
		p.next()
		x := p.parseCastExpr()
		u := &ast.Unary{Op: t.Kind, X: x}
		u.P = t.Pos
		return u
	case token.Inc, token.Dec:
		p.next()
		x := p.parseUnaryExpr()
		u := &ast.Unary{Op: t.Kind, X: x}
		u.P = t.Pos
		return u
	case token.KwSizeof:
		p.next()
		if p.at(token.LParen) && p.isTypeStart(1) {
			p.next()
			ty := p.parseTypeName()
			p.expect(token.RParen)
			s := &ast.SizeofType{Of: ty}
			s.P = t.Pos
			return s
		}
		x := p.parseUnaryExpr()
		s := &ast.SizeofExpr{X: x}
		s.P = t.Pos
		return s
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parsePostfixExpr() ast.Expr {
	e := p.parsePrimaryExpr()
	for {
		t := p.cur()
		switch t.Kind {
		case token.LBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			n := &ast.Index{X: e, Idx: idx}
			n.P = t.Pos
			e = n
		case token.LParen:
			id, ok := e.(*ast.Ident)
			if !ok {
				p.errorf(t.Pos, "only direct calls of named functions are supported")
				panic(bailout{})
			}
			p.next()
			call := &ast.Call{Fun: id}
			call.P = t.Pos
			if !p.at(token.RParen) {
				for {
					call.Args = append(call.Args, p.parseAssignExpr())
					if !p.accept(token.Comma) {
						break
					}
				}
			}
			p.expect(token.RParen)
			e = call
		case token.Dot, token.Arrow:
			p.next()
			name := p.expect(token.Ident)
			n := &ast.Member{X: e, Name: name.Text, Arrow: t.Kind == token.Arrow}
			n.P = t.Pos
			e = n
		case token.Inc, token.Dec:
			p.next()
			n := &ast.Postfix{Op: t.Kind, X: e}
			n.P = t.Pos
			e = n
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimaryExpr() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IntLit, token.CharLit:
		p.next()
		e := &ast.IntLit{Val: t.Val}
		e.P = t.Pos
		if t.Kind == token.IntLit {
			switch {
			case t.Unsigned && t.Long:
				e.SetType(types.ULongType)
			case t.Long:
				e.SetType(types.LongType)
			case t.Unsigned:
				e.SetType(types.UIntType)
			}
		}
		return e
	case token.StringLit:
		p.next()
		e := &ast.StringLit{Val: t.Text}
		e.P = t.Pos
		return e
	case token.Ident:
		p.next()
		e := &ast.Ident{Name: t.Text}
		e.P = t.Pos
		return e
	case token.LParen:
		p.next()
		e := p.parseExpr()
		p.expect(token.RParen)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	panic(bailout{})
}

// --- Parse-time constant evaluation (array sizes, enum values) ---

// evalConst evaluates an integer constant expression at parse time. Only
// literals, enum constants seen so far, sizeof, casts to integer types, and
// pure arithmetic are supported.
func (p *Parser) evalConst(e ast.Expr) (int64, bool) {
	switch n := e.(type) {
	case *ast.IntLit:
		return n.Val, true
	case *ast.Ident:
		if v, ok := p.enumConsts[n.Name]; ok {
			return v, true
		}
		return 0, false
	case *ast.SizeofType:
		return int64(n.Of.Size()), true
	case *ast.SizeofExpr:
		return 0, false // sizeof(expr) needs sema types; unsupported here
	case *ast.Cast:
		v, ok := p.evalConst(n.X)
		if !ok || !n.To.IsInteger() {
			return 0, false
		}
		return types.Truncate(n.To, v), true
	case *ast.Unary:
		v, ok := p.evalConst(n.X)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case token.Minus:
			return -v, true
		case token.Plus:
			return v, true
		case token.Tilde:
			return ^v, true
		case token.Bang:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *ast.Cond:
		c, ok := p.evalConst(n.C)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return p.evalConst(n.Then)
		}
		return p.evalConst(n.Else)
	case *ast.Binary:
		x, ok1 := p.evalConst(n.X)
		y, ok2 := p.evalConst(n.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		return evalConstBinary(n.Op, x, y)
	}
	return 0, false
}

func evalConstBinary(op token.Kind, x, y int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case token.Plus:
		return x + y, true
	case token.Minus:
		return x - y, true
	case token.Star:
		return x * y, true
	case token.Slash:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case token.Percent:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case token.Shl:
		return x << uint64(y&63), true
	case token.Shr:
		return x >> uint64(y&63), true
	case token.Amp:
		return x & y, true
	case token.Pipe:
		return x | y, true
	case token.Caret:
		return x ^ y, true
	case token.Lt:
		return b2i(x < y), true
	case token.Gt:
		return b2i(x > y), true
	case token.Le:
		return b2i(x <= y), true
	case token.Ge:
		return b2i(x >= y), true
	case token.EqEq:
		return b2i(x == y), true
	case token.NotEq:
		return b2i(x != y), true
	case token.AndAnd:
		return b2i(x != 0 && y != 0), true
	case token.OrOr:
		return b2i(x != 0 || y != 0), true
	}
	return 0, false
}
