package harness

import (
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/servers/apache"
)

// TestErrlogProfileApache checks the per-mode event profiles on the Apache
// model: the failure-oblivious pool logs discarded writes and attributes
// them to the attack request, the bounds-check pool logs denials (and the
// profile survives the instances it kills), and the victim histogram names
// the units the attack would have corrupted.
func TestErrlogProfileApache(t *testing.T) {
	srv := apache.NewServer()

	foRes, err := ErrlogProfile(srv, fo.FailureOblivious, 2)
	if err != nil {
		t.Fatal(err)
	}
	if foRes.Snap.InvalidWrites == 0 {
		t.Errorf("failure-oblivious profile has no discarded writes: %+v", foRes.Snap)
	}
	if foRes.PerAttack.Total() == 0 {
		t.Error("attack request carried no attributed events")
	}
	if foRes.Sample == "" {
		t.Error("no sample event rendered")
	}
	if len(foRes.Snap.Victims) == 0 {
		t.Error("no victim units recorded for the overflow")
	}

	bcRes, err := ErrlogProfile(srv, fo.BoundsCheck, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bcRes.Snap.Denied == 0 {
		t.Errorf("bounds-check profile lost its denials across crashes: %+v", bcRes.Snap)
	}

	out := FormatErrlog([]ErrlogResult{foRes, bcRes})
	for _, want := range []string{"Server", "Denied", "apache", "failure-oblivious", "bounds-check"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
