package strategy

import (
	"fmt"
	"strings"

	"focc/internal/cc/sema"
	"focc/internal/cc/types"
	"focc/internal/core"
	"focc/internal/mem"
)

// row is one entry of the strategy catalog — the single source both the
// Strategy doc comment below and the All list render from, so adding a
// strategy cannot drift the docs (same pattern as the fobench experiments
// table).
type row struct {
	name Strategy
	desc string
}

// catalog lists every per-site manufactured-value strategy, in the fixed
// order the search loop tries them.
var catalog = []row{
	{SmallInt, "the paper's global small-integer sequence (0, 1, 2, 0, 1, 3, ...)"},
	{Zero, "always 0 — '\\0' for string scans, the terminating sentinel"},
	{One, "always 1"},
	{Max, "all-ones for the access width (UINT_MAX-style saturation)"},
	{UnitPtr, "a valid pointer to the base of the faulting access's own unit"},
	{LastStore, "the last value a discarded store wrote to this location"},
}

// Strategy names one per-site manufactured-value strategy. The catalog:
//
//	smallint  - the paper's global small-integer sequence (0, 1, 2, 0, 1, 3, ...)
//	zero      - always 0 — '\0' for string scans, the terminating sentinel
//	one       - always 1
//	max       - all-ones for the access width (UINT_MAX-style saturation)
//	unitptr   - a valid pointer to the base of the faulting access's own unit
//	laststore - the last value a discarded store wrote to this location
//
// unitptr and laststore degrade to smallint when their precondition fails
// (no live unit / no remembered store); the event log attributes each
// manufactured value to the strategy that actually produced it.
// TestStrategyDocMatchesCatalog pins this comment to the catalog.
type Strategy string

// The strategies, in catalog (search) order.
const (
	SmallInt  Strategy = "smallint"
	Zero      Strategy = "zero"
	One       Strategy = "one"
	Max       Strategy = "max"
	UnitPtr   Strategy = "unitptr"
	LastStore Strategy = "laststore"
)

// All returns every strategy in catalog order. The slice is fresh; callers
// may reorder it.
func All() []Strategy {
	out := make([]Strategy, len(catalog))
	for i, r := range catalog {
		out[i] = r.name
	}
	return out
}

// Describe renders the catalog as "name - description" lines, one per
// strategy — the text the Strategy doc comment embeds.
func Describe() string {
	var b strings.Builder
	for _, r := range catalog {
		fmt.Fprintf(&b, "%-9s - %s\n", r.name, r.desc)
	}
	return b.String()
}

// Parse validates a strategy name.
func Parse(s string) (Strategy, error) {
	for _, r := range catalog {
		if string(r.name) == s {
			return r.name, nil
		}
	}
	names := make([]string, len(catalog))
	for i, r := range catalog {
		names[i] = string(r.name)
	}
	return "", fmt.Errorf("unknown strategy %q (want %s)", s, strings.Join(names, ", "))
}

// Assignment maps each canonical load site to its strategy, indexed by
// site id.
type Assignment []Strategy

// DefaultAssignment is the context-informed default: string scans
// manufacture '\0', pointer reads a valid unit-local pointer, reloads the
// last stored value, everything else the fallback strategy.
func DefaultAssignment(t *Table, fallback Strategy) Assignment {
	if fallback == "" {
		fallback = SmallInt
	}
	a := make(Assignment, len(t.Sites))
	for i, s := range t.Sites {
		switch s.Class {
		case StringScan:
			a[i] = Zero
		case PointerRead:
			a[i] = UnitPtr
		case Reload:
			a[i] = LastStore
		default:
			a[i] = fallback
		}
	}
	return a
}

// UniformAssignment assigns one strategy to every site (the all-smallint
// instance is the paper's global-sequence baseline).
func UniformAssignment(t *Table, s Strategy) Assignment {
	a := make(Assignment, len(t.Sites))
	for i := range a {
		a[i] = s
	}
	return a
}

// shadowCap bounds the discarded-store shadow; eviction is FIFO through a
// ring so the engine stays deterministic (no map-iteration order).
const shadowCap = 64

type shadowEntry struct {
	addr uint64
	size int
	val  int64
}

// shadow remembers the most recent discarded stores by absolute address,
// newest-wins, so a LastStore site can replay them.
type shadow struct {
	ring [shadowCap]shadowEntry
	n    int // entries in use
	next int // ring write position
}

func (s *shadow) put(addr uint64, data []byte) {
	size := len(data)
	if size > 8 {
		size = 8
	}
	var v int64
	for i := 0; i < size; i++ {
		v |= int64(data[i]) << (8 * uint(i))
	}
	e := shadowEntry{addr: addr, size: size, val: v}
	for i := 0; i < s.n; i++ {
		if s.ring[i].addr == addr {
			s.ring[i] = e
			return
		}
	}
	s.ring[s.next] = e
	s.next = (s.next + 1) % shadowCap
	if s.n < shadowCap {
		s.n++
	}
}

func (s *shadow) get(addr uint64, size int) (int64, bool) {
	for i := 0; i < s.n; i++ {
		e := s.ring[i]
		if e.addr == addr && size <= e.size {
			v := e.val
			if size < 8 {
				v &= (1 << (8 * uint(size))) - 1
			}
			return v, true
		}
	}
	return 0, false
}

func (s *shadow) reset() { s.n, s.next = 0, 0 }

// Engine is the core.ContextGenerator all three execution engines consult
// in ModeFOContext. It is primed with the canonical load-site id before
// every checked load and resolves the site's assigned strategy when the
// load turns out to be invalid. Not safe for concurrent use; each program
// instance owns one engine (the ValueGenerator contract).
type Engine struct {
	table    *Table
	assign   Assignment
	fallback core.ValueGenerator

	site  int32
	store shadow

	// hits counts manufactures per site (index site id; the last slot
	// counts site-less fallback manufactures), the evidence the search
	// loop uses to restrict itself to sites that actually fire.
	hits []uint64
}

// NewEngine builds an engine over a classified table. assign defaults to
// DefaultAssignment(table, SmallInt); fallback is the generator behind the
// SmallInt strategy and site-less manufactures (the paper's sequence when
// nil).
func NewEngine(table *Table, assign Assignment, fallback core.ValueGenerator) *Engine {
	if assign == nil {
		assign = DefaultAssignment(table, SmallInt)
	}
	if fallback == nil {
		fallback = core.NewSmallIntGenerator()
	}
	return &Engine{
		table:    table,
		assign:   assign,
		fallback: fallback,
		site:     -1,
		hits:     make([]uint64, len(table.Sites)+1),
	}
}

// Table returns the engine's classified site table.
func (e *Engine) Table() *Table { return e.table }

// Next satisfies core.ValueGenerator for callers that bypass site context.
func (e *Engine) Next(size int) int64 { return e.fallback.Next(size) }

// Reset restarts the fallback sequence and clears the shadow and priming
// (per-request isolation when an instance is reused).
func (e *Engine) Reset() {
	e.fallback.Reset()
	e.store.reset()
	e.site = -1
}

// SetSite primes the engine with the site about to load; -1 means no site
// context (bulk libc operations, aggregate copies, host drivers).
func (e *Engine) SetSite(site int32, _ *types.Type, _ int) { e.site = site }

// Manufacture produces the value for an invalid read at the primed site.
// It returns the provenance unit to attach when the strategy manufactured
// a pointer, and the name of the strategy that actually produced the value.
func (e *Engine) Manufacture(p core.Pointer, size int) (int64, *mem.Unit, string) {
	strat := SmallInt
	if e.site >= 0 && int(e.site) < len(e.assign) {
		strat = e.assign[e.site]
		e.hits[e.site]++
	} else {
		e.hits[len(e.hits)-1]++
	}
	switch strat {
	case Zero:
		return 0, nil, string(Zero)
	case One:
		return 1, nil, string(One)
	case Max:
		v := int64(-1)
		if size > 0 && size < 8 {
			v = (1 << (8 * uint(size))) - 1
		}
		return v, nil, string(Max)
	case UnitPtr:
		if u := p.Prov; u != nil && !u.Dead && size == 8 {
			return int64(u.Base), u, string(UnitPtr)
		}
	case LastStore:
		if v, ok := e.store.get(p.Addr, size); ok {
			return v, nil, string(LastStore)
		}
	}
	return e.fallback.Next(size), nil, string(SmallInt)
}

// NoteDiscardedStore feeds the discarded-store shadow.
func (e *Engine) NoteDiscardedStore(p core.Pointer, data []byte) {
	e.store.put(p.Addr, data)
}

// TouchedSites returns the site ids that manufactured at least one value
// since construction, ascending — the search loop's working set.
func (e *Engine) TouchedSites() []int32 {
	var out []int32
	for i := 0; i < len(e.hits)-1; i++ {
		if e.hits[i] > 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

// ForProgram builds the default context-aware engine for a sema-analyzed
// program: classified table, context-informed default assignment, paper
// fallback sequence. It is what interp.New provisions when ModeFOContext
// is selected without an explicit strategy engine.
func ForProgram(prog *sema.Program) *Engine {
	return NewEngine(Classify(prog), nil, nil)
}
