package core

import (
	"fmt"

	"focc/internal/cc/token"
	"focc/internal/mem"
)

// TxTerm is the transactional-function-termination policy the paper
// compares against in §5.2 (Sidiroglou, Giovanidis, Keromytis): when a
// memory error is detected, the *enclosing function* is terminated
// immediately and execution continues after the corresponding call site.
// It is implemented here as a sixth policy so the comparison the paper
// cites ("the program can continue on to execute acceptably after the
// premature function termination") can be reproduced on the same servers.
const TxTerm Mode = Redirect + 1

// FuncAbort is the control signal the TxTerm policy raises on an invalid
// access. The interpreter catches it at the enclosing function boundary,
// pops the frame, and returns a zero value to the caller.
type FuncAbort struct {
	Pos   token.Pos
	Write bool
	Addr  uint64
}

func (e *FuncAbort) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("%s: invalid %s at 0x%x: terminating enclosing function",
		e.Pos, op, e.Addr)
}

type txTermAccessor struct {
	table
	log *EventLog
}

// NewTxTerm returns the transactional-function-termination accessor.
func NewTxTerm(as *mem.AddressSpace, log *EventLog) Accessor {
	return &txTermAccessor{table: table{as: as}, log: log}
}

func (a *txTermAccessor) Mode() Mode { return TxTerm }

func (a *txTermAccessor) Load(p Pointer, buf []byte, pos token.Pos) (*mem.Unit, error) {
	if !inBounds(p, len(buf)) {
		victim := a.lookup(p.Addr)
		a.log.addDenied(Event{Pos: pos, Addr: p.Addr, Size: len(buf),
			Unit: unitName(p.Prov), Victim: unitName(victim)})
		return nil, &FuncAbort{Pos: pos, Addr: p.Addr}
	}
	off := p.Addr - p.Prov.Base
	copy(buf, p.Prov.Data[off:])
	if len(buf) == 8 {
		return p.Prov.GetShadow(off), nil
	}
	return nil, nil
}

func (a *txTermAccessor) Store(p Pointer, data []byte, prov *mem.Unit, pos token.Pos) error {
	if !inBounds(p, len(data)) || p.Prov.ReadOnly {
		victim := a.lookup(p.Addr)
		a.log.addDenied(Event{Pos: pos, Write: true, Addr: p.Addr,
			Size: len(data), Unit: unitName(p.Prov), Victim: unitName(victim)})
		return &FuncAbort{Pos: pos, Write: true, Addr: p.Addr}
	}
	off := p.Addr - p.Prov.Base
	copy(p.Prov.Data[off:], data)
	if prov != nil && len(data) == 8 {
		p.Prov.SetShadow(off, prov)
	} else {
		p.Prov.ClearShadowRange(off, uint64(len(data)))
	}
	return nil
}
