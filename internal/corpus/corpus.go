// Package corpus is the shared program corpus and compile pipeline for
// the engine-equivalence harnesses. The differential tests, the dispatch
// benchmarks, and cmd/gencorpus (the ahead-of-time Go code generator for
// the checked-in generated engine) must all see byte-identical
// (filename, source) pairs compiled through byte-identical pipelines:
// generated code bakes in source positions and registers under
// interp.SourceHash(filename, src), so any drift between what the tests
// compile and what the generator compiled silently unregisters the
// generated engine. Centralizing both the sources and the two compile
// helpers here makes that identity structural.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"focc/internal/cc/cpp"
	"focc/internal/cc/parser"
	"focc/internal/cc/sema"
	"focc/internal/libc"
)

// Program is one corpus entry: a program whose main() must return Want
// under every engine and every checked mode.
type Program struct {
	Name string
	Src  string
	Want int64
}

// Programs returns the dispatch/integration corpus shared by
// TestCorpusPrograms, TestEngineDiffCorpus, BenchmarkDispatch*, and
// cmd/gencorpus. All entries compile through CompileCPP under FileName.
func Programs() []Program {
	return []Program{
		{Name: "LinkedList", Want: 55, Src: SrcLinkedList},
		{Name: "HashTable", Want: 1, Src: SrcHashTable},
		{Name: "Quicksort", Want: 1, Src: SrcQuicksort},
		{Name: "Tokenizer", Want: 0, Src: SrcTokenizer},
		{Name: "MatrixMultiply", Want: 112, Src: SrcMatrixMultiply},
		{Name: "StringRotate", Want: 1, Src: SrcStringRotate},
		{Name: "BitTricks", Want: 0, Src: SrcBitTricks},
		{Name: "Base64", Want: 0, Src: SrcBase64},
		{Name: "Sieve", Want: 168, Src: SrcSieve},
	}
}

// FileName is the filename identity under which every in-package corpus
// source compiles (the historical test helper name).
const FileName = "t.c"

// PinFileName is the identity the simulated-cycle pin test compiles
// PinSrc under (via fo.Compile); the engine-diff tests additionally
// compile PinSrc under FileName via CompileCPP.
const PinFileName = "pin.c"

// CompilePlain parses and analyzes source that needs no preprocessing
// (parser.ParseString + libc prototypes) — the pipeline of the interp
// tests' compile helper.
func CompilePlain(filename, src string) (*sema.Program, error) {
	f, errs := parser.ParseString(filename, src)
	if len(errs) > 0 {
		return nil, fmt.Errorf("parse: %v", errs[0])
	}
	prog, serrs := sema.Analyze(f, libc.Prototypes())
	if len(serrs) > 0 {
		return nil, fmt.Errorf("analyze: %v", serrs[0])
	}
	return prog, nil
}

// CompileCPP preprocesses with the test prelude (NULL + size_t mapped
// for the standard headers), then parses and analyzes — the pipeline of
// the interp tests' compileWithCPP helper. The prelude must never drift:
// it is part of the generated-code identity.
func CompileCPP(filename, src string) (*sema.Program, error) {
	prelude := "#ifndef _P\n#define _P\n#define NULL ((void*)0)\ntypedef unsigned long size_t;\n#endif\n"
	lines, errs := cpp.Preprocess(filename, src, cpp.Options{
		Includes: map[string]string{
			"string.h": prelude,
			"stdio.h":  prelude,
			"stdlib.h": prelude,
			"ctype.h":  prelude,
		},
	})
	if len(errs) > 0 {
		return nil, fmt.Errorf("cpp: %v", errs[0])
	}
	f, perrs := parser.Parse(filename, lines)
	if len(perrs) > 0 {
		return nil, fmt.Errorf("parse: %v", perrs[0])
	}
	prog, serrs := sema.Analyze(f, libc.Prototypes())
	if len(serrs) > 0 {
		return nil, fmt.Errorf("analyze: %v", serrs[0])
	}
	return prog, nil
}

// --- Randomized expression differential (quick_test.go) ---

// QuickTrial is one deterministic trial of the randomized expression
// differential: a generated C function, the inputs, and the expected
// value under the Go reference semantics (C int: 32-bit, wrapping).
type QuickTrial struct {
	A, B, C int32
	Want    int32
	Src     string
}

// QuickSeed and QuickTrialCount pin the deterministic trial sequence
// shared by quick_test.go and cmd/gencorpus.
const (
	QuickSeed       = 20040612
	QuickTrialCount = 250
	// QuickGenTrials is how many of the trials get ahead-of-time
	// generated code checked in (a deterministic prefix; generating all
	// 250 would bloat internal/gencorpus for no extra coverage class).
	QuickGenTrials = 48
)

// QuickTrials returns the first n trials of the deterministic sequence.
// Trials compile through CompilePlain under FileName.
func QuickTrials(n int) []QuickTrial {
	rng := rand.New(rand.NewSource(QuickSeed))
	out := make([]QuickTrial, 0, n)
	for i := 0; i < n; i++ {
		a := int32(rng.Intn(2001) - 1000)
		b := int32(rng.Intn(2001) - 1000)
		c := int32(rng.Intn(2001) - 1000)
		g := &exprGen{rng: rng}
		want := g.genExpr(4, a, b, c)
		out = append(out, QuickTrial{
			A: a, B: b, C: c, Want: want,
			Src: fmt.Sprintf("int f(int a, int b, int c) { return %s; }", g.sb.String()),
		})
	}
	return out
}

type exprGen struct {
	rng *rand.Rand
	sb  strings.Builder
}

// genExpr emits a random expression of bounded depth and returns its
// value under the reference semantics for variable values a, b, c.
func (g *exprGen) genExpr(depth int, a, b, c int32) int32 {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			v := int32(g.rng.Intn(201) - 100)
			if v < 0 {
				fmt.Fprintf(&g.sb, "(%d)", v)
			} else {
				fmt.Fprintf(&g.sb, "%d", v)
			}
			return v
		case 1:
			g.sb.WriteString("a")
			return a
		case 2:
			g.sb.WriteString("b")
			return b
		default:
			g.sb.WriteString("c")
			return c
		}
	}
	switch g.rng.Intn(14) {
	case 0:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" + ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x + y
	case 1:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" - ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x - y
	case 2:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" * ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x * y
	case 3:
		// Division by a non-zero constant only.
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		d := int32(g.rng.Intn(9) + 1)
		fmt.Fprintf(&g.sb, " / %d)", d)
		return x / d
	case 4:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		d := int32(g.rng.Intn(9) + 1)
		fmt.Fprintf(&g.sb, " %% %d)", d)
		return x % d
	case 5:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" & ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x & y
	case 6:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" | ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x | y
	case 7:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" ^ ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x ^ y
	case 8:
		// Shift by a small constant.
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		s := uint(g.rng.Intn(6))
		fmt.Fprintf(&g.sb, " << %d)", s)
		return x << s
	case 9:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		s := uint(g.rng.Intn(6))
		fmt.Fprintf(&g.sb, " >> %d)", s)
		return x >> s
	case 10:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" < ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		if x < y {
			return 1
		}
		return 0
	case 11:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" == ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		if x == y {
			return 1
		}
		return 0
	case 12:
		g.sb.WriteString("(-")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return -x
	default:
		g.sb.WriteString("(~")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return ^x
	}
}
