package interp_test

import (
	"testing"

	"focc/internal/cc/sema"
	"focc/internal/core"
	"focc/internal/corpus"
	"focc/internal/interp"
	"focc/internal/libc"
)

// Integration-scale C programs executed under BoundsCheck (every access
// checked, so any interpreter or libc slip is loud) and under
// FailureOblivious (which must behave identically on memory-error-free
// programs — the paper's baseline sanity requirement). Each program runs
// on all three execution engines: the AST-walking reference evaluator,
// the compiled closure IR, and the ahead-of-time generated Go code
// (internal/gencorpus); compile_diff_test.go additionally asserts the
// engines agree on every observable, per mode.

// corpusProgram is one corpus entry, shared by the integration tests, the
// engine differential tests, and the dispatch benchmarks. The sources
// live in internal/corpus so cmd/gencorpus sees the same bytes.
type corpusProgram = corpus.Program

func corpusSources() []corpusProgram { return corpus.Programs() }

// engineNames lists the three execution engines in the order the
// differential harnesses exercise them.
var engineNames = []string{"tree-walk", "compiled", "codegen"}

// engineConfig returns a Config selecting the named engine for prog,
// which must be src compiled under corpus.FileName (the codegen engine
// resolves by that source-hash identity).
func engineConfig(t testing.TB, engine string, prog *sema.Program, src string) interp.Config {
	t.Helper()
	cfg := interp.Config{Builtins: libc.Builtins()}
	switch engine {
	case "tree-walk":
		cfg.TreeWalk = true
	case "compiled":
		cfg.Compiled = interp.Compile(prog)
	case "codegen":
		cfg.Generated = generatedFor(t, src)
	default:
		t.Fatalf("unknown engine %q", engine)
	}
	return cfg
}

// runBoth executes src under the checked and unchecked modes, on every
// execution engine, asserting a clean run and the expected main() result
// everywhere.
func runBoth(t *testing.T, src string, want int64) {
	t.Helper()
	for _, mode := range []core.Mode{core.BoundsCheck, core.FailureOblivious, core.Standard} {
		for _, engine := range engineNames {
			prog := compileWithCPP(t, src)
			cfg := engineConfig(t, engine, prog, src)
			cfg.Mode = mode
			m, err := interp.New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			if res.Outcome != interp.OutcomeOK {
				t.Fatalf("%v/%s: outcome = %v (%v)", mode, engine, res.Outcome, res.Err)
			}
			if res.Value.I != want {
				t.Fatalf("%v/%s: main() = %d, want %d", mode, engine, res.Value.I, want)
			}
			if mode != core.Standard && m.Log().Total() != 0 {
				t.Errorf("%v/%s: clean program logged %d memory errors", mode, engine, m.Log().Total())
			}
		}
	}
}

func TestCorpusPrograms(t *testing.T) {
	for _, cp := range corpusSources() {
		t.Run(cp.Name, func(t *testing.T) {
			runBoth(t, cp.Src, cp.Want)
		})
	}
}
