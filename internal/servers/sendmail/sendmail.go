// Package sendmail models Sendmail 8.11.6's address prescan vulnerability
// [14]: the prescan transfers an address into a fixed-size stack buffer
// using a lookahead character held in an int. A 0xFF input byte sign-extends
// to -1 ("no lookahead"), which skips the block that writes the lookahead —
// and its space check — while a later store of a '\' character happens
// without any check. An alternating sequence of '\' and 0xFF bytes therefore
// writes arbitrarily many '\' characters beyond the end of the buffer.
//
// The package also models the paper's §4.4.4 observation that Sendmail
// commits a (benign, in Standard mode) memory error every time the daemon
// wakes up to check for work, which completely disables the Bounds Check
// version.
package sendmail

import (
	"context"
	"strings"
	"sync"

	"focc/fo"
	"focc/internal/servers"
)

// Source is the Sendmail model's C code.
const Source = `
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

#define PSBUFSIZE 96
#define MAXNAME   64
#define QUEUE_SLOTS 8

/* Globals. queue_flags is deliberately not the last global so the daemon
   wake-up's off-by-one read lands in adjacent global memory (benign under
   the Standard compiler, fatal under Bounds Check — paper section 4.4.4). */
int  queue_flags[QUEUE_SLOTS];
int  wakeup_count = 0;
char smtp_resp[256];
char sender[MAXNAME];
char recipient[MAXNAME];
char msg_store[262144];
int  msg_used = 0;
char out_wire[262144];
int  have_sender = 0;
int  have_rcpt = 0;

/* prescan, modeled on sendmail 8.11.6: transfers an address into buf with
   backslash quoting. The store of the quoting backslash is not covered by
   the space check (the authentic bug mechanism). */
static int prescan(const char *addr, char *buf, int bufsize)
{
	const char *p = addr;
	char *q = buf;
	int c = -1;          /* lookahead; -1 means "no lookahead" */
	int done = 0;
	while (!done) {
		/* Commit the pending lookahead, with a space check. Skipped
		   entirely when the lookahead is -1 or a backslash. */
		if (c != -1 && c != '\\') {
			if (q >= &buf[bufsize - 2])
				return -1;              /* anticipated: element too long */
			*q++ = (char) c;
		}
		c = *p++;                       /* sign-extends: 0xFF reads as -1 */
		if (c == '\0') { done = 1; c = -1; }
		if (c == '\\') {
			*q++ = '\\';                /* BUG: no space check here */
			c = *p++;
			if (c == '\0') { done = 1; c = -1; }
		}
	}
	*q = '\0';
	return (int)(q - buf);
}

/* parseaddr: prescan into a stack buffer, then apply the length check the
   paper describes as the anticipated error case. Returns an SMTP code. */
static int parse_address(const char *addr, char *out)
{
	char pvpbuf[PSBUFSIZE];
	int len;
	len = prescan(addr, pvpbuf, (int)(sizeof(pvpbuf)));
	if (len < 0 || len >= MAXNAME)
		return 553;                     /* "553 address too long" */
	strcpy(out, pvpbuf);
	return 250;
}

int smtp_helo(const char *host)
{
	snprintf(smtp_resp, sizeof(smtp_resp), "250 Hello %s", host);
	return 250;
}

int smtp_mail_from(const char *addr)
{
	int rc = parse_address(addr, sender);
	if (rc != 250) {
		snprintf(smtp_resp, sizeof(smtp_resp), "553 5.1.8 <...>... address error");
		return rc;
	}
	have_sender = 1;
	snprintf(smtp_resp, sizeof(smtp_resp), "250 2.1.0 %s... Sender ok", sender);
	return 250;
}

int smtp_rcpt_to(const char *addr)
{
	int rc;
	if (!have_sender) {
		snprintf(smtp_resp, sizeof(smtp_resp), "503 5.0.0 Need MAIL before RCPT");
		return 503;
	}
	rc = parse_address(addr, recipient);
	if (rc != 250) {
		snprintf(smtp_resp, sizeof(smtp_resp), "553 5.1.3 <...>... address error");
		return rc;
	}
	have_rcpt = 1;
	snprintf(smtp_resp, sizeof(smtp_resp), "250 2.1.5 %s... Recipient ok", recipient);
	return 250;
}

/* Receive a message body: per-character dot-unstuffing and CR handling
   into the local store (the Recv workloads of Figure 4). */
int smtp_data(const char *body)
{
	int i = 0, o = 0;
	int bol = 1;
	if (!have_sender || !have_rcpt) {
		snprintf(smtp_resp, sizeof(smtp_resp), "503 5.0.0 Need MAIL and RCPT");
		return 503;
	}
	while (body[i] != '\0' && o < (int)(sizeof(msg_store)) - 2) {
		if (bol && body[i] == '.' && body[i+1] == '.')
			i++;                        /* dot-unstuffing */
		bol = (body[i] == '\n');
		msg_store[o++] = body[i++];
	}
	msg_store[o] = '\0';
	msg_used = o;
	have_sender = 0;
	have_rcpt = 0;
	snprintf(smtp_resp, sizeof(smtp_resp), "250 2.0.0 Message accepted for delivery");
	return 250;
}

/* Send a message: per-character dot-stuffing onto the wire (the Send
   workloads of Figure 4). */
int smtp_send(const char *body)
{
	int i = 0, o = 0, bol = 1;
	while (body[i] != '\0' && o < (int)(sizeof(out_wire)) - 3) {
		if (bol && body[i] == '.')
			out_wire[o++] = '.';
		bol = (body[i] == '\n');
		out_wire[o++] = body[i++];
	}
	out_wire[o] = '\0';
	snprintf(smtp_resp, sizeof(smtp_resp), "250 sent %d bytes", o);
	return o;
}

/* Daemon wake-up: scan the work queue. BUG (paper section 4.4.4): the loop
   bound walks one element past the end of queue_flags on every wake-up. */
int sendmail_wakeup(void)
{
	int i, pending = 0;
	wakeup_count++;
	for (i = 0; i <= QUEUE_SLOTS; i++)
		if (queue_flags[i])
			pending++;
	return pending;
}
`

var (
	compileOnce sync.Once
	prog        *fo.Program
	compileErr  error
)

// Program returns the compiled Sendmail program.
func Program() (*fo.Program, error) {
	compileOnce.Do(func() {
		prog, compileErr = fo.Compile("sendmail.c", Source)
	})
	return prog, compileErr
}

// Server is the Sendmail model.
type Server struct{}

// NewServer returns a Sendmail server.
func NewServer() *Server { return &Server{} }

// Name implements servers.Server.
func (s *Server) Name() string { return "sendmail" }

// Instance is one Sendmail daemon process.
type Instance struct {
	servers.Base
}

// New implements servers.Server.
func (s *Server) New(mode fo.Mode) (servers.Instance, error) {
	return s.NewWithConfig(mode, nil)
}

// NewWithConfig implements servers.Configurable.
func (s *Server) NewWithConfig(mode fo.Mode, hook servers.ConfigHook) (servers.Instance, error) {
	p, err := Program()
	if err != nil {
		return nil, err
	}
	log := fo.NewEventLog(0)
	cfg := fo.MachineConfig{Mode: mode, Log: log}
	if hook != nil {
		hook(&cfg)
	}
	m, err := p.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	return &Instance{Base: servers.Base{ServerName: "sendmail", M: m, EvLog: log}}, nil
}

// Handle implements servers.Instance. Ops: helo, mail, rcpt, data, send,
// wakeup.
func (inst *Instance) Handle(req servers.Request) servers.Response {
	switch req.Op {
	case "helo":
		return inst.ResponseFromResult(inst.CallString("smtp_helo", req.Arg), "smtp_resp")
	case "mail":
		return inst.ResponseFromResult(inst.CallString("smtp_mail_from", req.Arg), "smtp_resp")
	case "rcpt":
		return inst.ResponseFromResult(inst.CallString("smtp_rcpt_to", req.Arg), "smtp_resp")
	case "data":
		return inst.ResponseFromResult(inst.CallString("smtp_data", req.Payload), "smtp_resp")
	case "recv":
		// One full receive transaction (MAIL, RCPT, DATA) — the unit the
		// paper's Receive workloads time.
		return inst.Deliver("alice@example.org", "bob@example.org", req.Payload)
	case "send":
		return inst.ResponseFromResult(inst.CallString("smtp_send", req.Payload), "smtp_resp")
	case "wakeup":
		return inst.ResponseFromResult(inst.M.Call("sendmail_wakeup"), "")
	default:
		return servers.Response{Outcome: fo.OutcomeOK, Status: 500, Body: "500 unknown command"}
	}
}

// HandleContext implements servers.Instance: Handle with ctx bound to the
// machine for per-request cancellation, and the memory-error events the
// request causes attributed into Response.MemErrors.
func (inst *Instance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
	defer inst.BindContext(ctx)()
	return inst.Attribute(func() servers.Response { return inst.Handle(req) })
}

// Deliver runs a full receive transaction (MAIL, RCPT, DATA); it stops at
// the first crashed response.
func (inst *Instance) Deliver(from, to, body string) servers.Response {
	resp := inst.Handle(servers.Request{Op: "mail", Arg: from})
	if resp.Crashed() || resp.Status != 250 {
		return resp
	}
	resp = inst.Handle(servers.Request{Op: "rcpt", Arg: to})
	if resp.Crashed() || resp.Status != 250 {
		return resp
	}
	return inst.Handle(servers.Request{Op: "data", Payload: body})
}

// LegitRequests implements servers.Server (the Figure 4 workloads).
func (s *Server) LegitRequests() []servers.Request {
	return []servers.Request{
		{Op: "recv", Payload: SmallBody()},
		{Op: "recv", Payload: LargeBody()},
		{Op: "send", Payload: SmallBody()},
		{Op: "send", Payload: LargeBody()},
	}
}

// AttackRequest implements servers.Server: the alternating '\' / 0xFF
// address from [14].
func (s *Server) AttackRequest() servers.Request {
	return servers.Request{Op: "mail", Arg: AttackAddress(400)}
}

// AttackAddress builds an address with n backslash/0xFF pairs.
func AttackAddress(n int) string {
	return strings.Repeat("\\\xff", n)
}

// SmallBody returns the 4-byte message body from Figure 4.
func SmallBody() string { return "hi!\n" }

// LargeBody returns the 4 KByte message body from Figure 4.
func LargeBody() string {
	var sb strings.Builder
	for sb.Len() < 4096 {
		sb.WriteString("The quick brown fox jumps over the lazy dog 0123456789.\n")
	}
	return sb.String()[:4096]
}
