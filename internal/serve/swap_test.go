package serve_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
)

// TestRouterSwapRecyclesIdleShards: a shard (or worker) that happens to
// receive no traffic around the swap must still serve the new program for
// every later request. Regression test for a scheduling race where a worker
// goroutine first scheduled *after* the swap read the already-bumped
// generation for its construction-time old-program instance, tagging it
// current and dodging recycle forever. Short phases + many iterations make
// the late-worker-start window easy to hit on a loaded scheduler.
func TestRouterSwapRecyclesIdleShards(t *testing.T) {
	if testing.Short() {
		t.Skip("swap stress")
	}
	for iter := 0; iter < 100; iter++ {
		rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
			serve.WithShards(2),
			serve.WithShardOptions(
				serve.WithPoolSize(2), serve.WithQueueDepth(64), serve.WithWarmSpares(1)))
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				tenant := fmt.Sprintf("tenant-%d", c)
				for {
					select {
					case <-stop:
						return
					default:
					}
					rt.Submit(context.Background(), tenant, servers.Request{Op: "ok"})
				}
			}(c)
		}
		time.Sleep(3 * time.Millisecond)
		rt.Swap(&stubServerV2{})
		time.Sleep(3 * time.Millisecond)
		close(stop)
		wg.Wait()
		// Probes hash to assorted shards; every one must run the new
		// program regardless of what load its shard saw before the swap.
		for i := 0; i < 4; i++ {
			tenant := fmt.Sprintf("probe-%d", i)
			resp, err := rt.Submit(context.Background(), tenant, servers.Request{Op: "ok"})
			if err != nil || resp.Status != 201 {
				t.Fatalf("iter %d %s: post-swap = %v, %v; want 201 from the new program", iter, tenant, resp, err)
			}
		}
		rt.Close()
	}
}
