package inject

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"
	"time"

	"focc/fo"
	"focc/internal/core"
	"focc/internal/mem"
	"focc/internal/serve"
	"focc/internal/servers"
)

// Plan is the reproducible description of a fault-injection campaign.
// Together with the targets passed to Run it fully determines the outcome:
// every sampled choice is drawn from one PRNG seeded by Seed, and nothing
// during execution consumes additional randomness or wall-clock state, so
// two runs of the same (seed, plan) produce byte-identical reports.
type Plan struct {
	// Seed seeds the campaign PRNG.
	Seed int64
	// Faults is the number of fault points sampled per server (default 40).
	Faults int
	// MaxSteps is the per-call interpreter step budget for campaign
	// instances — the watchdog that turns an injected infinite loop into
	// a deterministic "deadline" outcome (default 2,000,000).
	MaxSteps uint64
	// Servers restricts the campaign to the named targets (nil = all).
	Servers []string
	// Modes restricts the comparison to the listed modes, in order
	// (nil = the full four-way matrix: standard, bounds-check,
	// failure-oblivious, rewind).
	Modes []fo.Mode
	// Strategies is the manufactured-value sweep set (nil = Strategies).
	Strategies []Strategy
	// Chaos configures the serving-layer chaos section; nil skips it.
	Chaos *ChaosPlan
}

// ChaosPlan is the process-level chaos section of a campaign: one
// single-worker engine per mode on the first target, fed sequentially so
// the counter-keyed injection (serve.ChaosConfig) is deterministic.
type ChaosPlan struct {
	// Requests is how many legitimate requests are driven per mode.
	Requests int
	// KillEvery / LatencyEvery / Latency mirror serve.ChaosConfig.
	KillEvery    uint64
	LatencyEvery uint64
	Latency      time.Duration
	// Deadline is the engine's per-request deadline; with
	// Latency > Deadline each delayed request deterministically returns
	// a deadline outcome. 0 disables deadlines (delays are pure latency).
	Deadline time.Duration
}

// DefaultPlan returns the standard campaign shape for the given seed and
// fault count: all servers, all strategies, and a chaos section whose
// injected latency comfortably exceeds the deadline so every delayed
// request trips it.
func DefaultPlan(seed int64, faults int) Plan {
	return Plan{
		Seed:   seed,
		Faults: faults,
		Chaos: &ChaosPlan{
			Requests:     24,
			KillEvery:    6,
			LatencyEvery: 9,
			Latency:      150 * time.Millisecond,
			Deadline:     50 * time.Millisecond,
		},
	}
}

// PointSpec is one sampled fault point. Only the fields relevant to the
// class are set; the spec is part of the report so a single fault can be
// replayed or attributed.
type PointSpec struct {
	// Class is the fault class.
	Class FaultClass
	// Req indexes the target's LegitRequests: the fault fires while this
	// request is being handled.
	Req int
	// Shape/At/Extra parameterize oob-read and oob-write faults: the
	// At-th load (or store) since machine creation is perturbed.
	Shape Shape  `json:",omitempty"`
	At    uint64 `json:",omitempty"`
	Extra uint64 `json:",omitempty"`
	// MallocN is the absolute ordinal of the failed allocation
	// (alloc-oom).
	MallocN uint64 `json:",omitempty"`
	// Unit/Offset/Mask parameterize corrupt-byte faults: the Offset-th
	// byte (mod size) of the Unit-th eligible data unit is XORed with
	// Mask before the request runs.
	Unit   int    `json:",omitempty"`
	Offset uint64 `json:",omitempty"`
	Mask   byte   `json:",omitempty"`
}

// PointOutcome classifies how one (mode, fault point) execution ended.
type PointOutcome string

// The outcome taxonomy.
const (
	// OutcomeSurvived: the server stayed up and produced exactly the
	// clean-run output for both the faulted request and a probe request.
	OutcomeSurvived PointOutcome = "survived"
	// OutcomeTerminated: the process died — a crash (Standard) or a
	// memory-error termination (BoundsCheck).
	OutcomeTerminated PointOutcome = "terminated"
	// OutcomeCorrupted: the server stayed up but the faulted request or
	// the probe produced output differing from the clean run.
	OutcomeCorrupted PointOutcome = "corrupted-output"
	// OutcomeDeadline: the request hung until the step-budget watchdog
	// (the campaign's deterministic stand-in for a wall-clock deadline).
	OutcomeDeadline PointOutcome = "deadline"
	// OutcomeRewound: the rewind policy rolled the faulted request back to
	// the request boundary — the request itself failed (no output
	// produced), but the server stayed up and the probe request matched
	// the clean run exactly. The server refused to answer rather than
	// answer wrongly, so this counts toward survival without being a
	// corrupted output.
	OutcomeRewound PointOutcome = "rewound"
)

// PointResult is the outcome of one fault point under one mode, with the
// memory-error events the instance logged (EventLog snapshot attribution).
type PointResult struct {
	Outcome   PointOutcome
	MemErrors uint64
}

// Cell aggregates one (server, mode) column of the campaign.
type Cell struct {
	Mode string
	// Outcome counts over the server's fault points.
	Survived   int
	Terminated int
	Corrupted  int
	Deadline   int
	// Rewound counts fault points the rewind policy rolled back cleanly
	// (zero outside the rewind cell).
	Rewound int
	// SurvivalRate is the fraction of fault points after which the
	// server was still serving (survived + corrupted-output + rewound):
	// the paper's availability metric — a server that keeps answering
	// with occasionally wrong output is degraded, one that refuses a
	// poisoned request but keeps serving is degraded less, and one that
	// is dead serves nobody.
	SurvivalRate float64
	// MemErrors totals the memory-error events logged across the cell.
	MemErrors uint64
	// Results holds the per-point outcomes, parallel to the server's
	// Points list.
	Results []PointResult
}

// ServerReport is the campaign result for one target.
type ServerReport struct {
	Server string
	Points []PointSpec
	Cells  []Cell
}

// SweepCell aggregates the failure-oblivious outcomes of all oob-read
// fault points (across all campaign servers) under one manufactured-value
// strategy.
type SweepCell struct {
	Strategy     Strategy
	Points       int
	Survived     int
	Terminated   int
	Corrupted    int
	Deadline     int
	SurvivalRate float64
}

// ChaosCell is one mode's serving-layer chaos result.
type ChaosCell struct {
	Mode      string
	Requests  int
	OK        int
	Deadlines int
	Kills     int
	Delays    int
	Restarts  int
}

// Report is the machine-readable campaign result. It is built from structs
// only (no maps, no timestamps), so its JSON encoding is deterministic.
type Report struct {
	Seed    int64
	Faults  int
	Modes   []string
	Servers []ServerReport
	// Sweep is the Durieux-style manufactured-value sweep: the same
	// oob-read fault points re-run under failure-oblivious with each
	// strategy.
	Sweep []SweepCell
	// Chaos is the serving-layer section (nil when the plan skips it).
	Chaos []ChaosCell `json:",omitempty"`
	// ChaosServer names the target the chaos section ran against.
	ChaosServer string `json:",omitempty"`
}

// JSON renders the report as indented JSON with a trailing newline. Same
// report, same bytes.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// campaignModes are the compilation modes the campaign compares: the
// paper's three-way evaluation matrix plus the rewind-and-discard policy,
// which trades manufactured values for request-boundary rollback.
var campaignModes = []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious, fo.ModeRewind}

// profileInfo is a request's access footprint, measured by running it once
// on a counting (unarmed) instance: the injectable ordinal ranges for each
// fault class. Creation counts are the lower bounds — sampling above them
// keeps every fault inside request handling, not instance startup.
type profileInfo struct {
	creLoads, creStores, creMallocs uint64
	totLoads, totStores, totMallocs uint64
	units                           int // eligible corrupt-byte targets
}

// machiner is how the campaign reaches an instance's machine; servers.Base
// provides it on all five reproductions.
type machiner interface{ Machine() *fo.Machine }

func machineOf(inst servers.Instance) (*fo.Machine, error) {
	m, ok := inst.(machiner)
	if !ok {
		return nil, fmt.Errorf("inject: instance %T does not expose its machine", inst)
	}
	return m.Machine(), nil
}

// newInstance creates a fresh server and instance with the campaign's
// machine configuration: bounded steps, the injector wrapped around the
// accessor, and optionally an overridden value generator.
func newInstance(t Target, mode fo.Mode, maxSteps uint64, inj *Injector, gen core.ValueGenerator) (servers.Instance, servers.Server, error) {
	srv := t.New()
	c, ok := srv.(servers.Configurable)
	if !ok {
		return nil, nil, fmt.Errorf("inject: server %s is not servers.Configurable", t.Name)
	}
	inst, err := c.NewWithConfig(mode, func(cfg *fo.MachineConfig) {
		cfg.MaxSteps = maxSteps
		if inj != nil {
			cfg.WrapAccessor = inj.Wrap
		}
		if gen != nil {
			cfg.Gen = gen
			// A context-aware generator (the strategy search's per-site
			// engine) must arrive as the strategy, not just the fallback,
			// or ModeFOContext would auto-provision its default engine
			// over it.
			if cg, ok := gen.(core.ContextGenerator); ok {
				cfg.Strategy = cg
			}
		}
	})
	if err != nil {
		return nil, nil, fmt.Errorf("inject: create %s/%v instance: %w", t.Name, mode, err)
	}
	return inst, srv, nil
}

func releaseInstance(inst servers.Instance) {
	if r, ok := inst.(interface{ Release() }); ok {
		r.Release()
	}
}

// eligibleUnit reports whether a data unit is a corrupt-byte target:
// writable live program state (globals and heap blocks). Literals are
// read-only, headers and stack frames churn with execution.
func eligibleUnit(u *mem.Unit) bool {
	return (u.Kind == mem.KindGlobal || u.Kind == mem.KindHeap) &&
		!u.ReadOnly && !u.Dead && u.Size > 0
}

func countEligible(as *mem.AddressSpace) int {
	n := 0
	as.VisitUnits(func(u *mem.Unit) bool {
		if eligibleUnit(u) {
			n++
		}
		return true
	})
	return n
}

// corruptKth XORs mask into the (off mod size)-th byte of the k-th
// eligible unit. The walk order is deterministic and — because instance
// creation is mode-independent — identical across modes, so the same k
// names the same unit in every cell.
func corruptKth(as *mem.AddressSpace, k int, off uint64, mask byte) bool {
	i, done := 0, false
	as.VisitUnits(func(u *mem.Unit) bool {
		if !eligibleUnit(u) {
			return true
		}
		if i == k {
			u.Data[off%u.Size] ^= mask
			done = true
			return false
		}
		i++
		return true
	})
	return done
}

// profileRequest measures one request's access footprint. The profiling
// instance runs Standard mode: legitimate requests commit no memory
// errors, so the interpreter issues the identical load/store/malloc
// sequence in every mode and one profile serves all cells.
func profileRequest(t Target, reqIdx int, maxSteps uint64) (profileInfo, error) {
	var p profileInfo
	inj := &Injector{}
	inst, srv, err := newInstance(t, fo.Standard, maxSteps, inj, nil)
	if err != nil {
		return p, err
	}
	defer releaseInstance(inst)
	m, err := machineOf(inst)
	if err != nil {
		return p, err
	}
	as := m.AddressSpace()
	p.creLoads, p.creStores = inj.Loads(), inj.Stores()
	p.creMallocs = as.Stats().Mallocs
	p.units = countEligible(as)
	reqs := srv.LegitRequests()
	resp := inst.Handle(reqs[reqIdx])
	if resp.Crashed() {
		return p, fmt.Errorf("inject: %s legit request %d crashed while profiling: %v",
			t.Name, reqIdx, resp.Err)
	}
	p.totLoads, p.totStores = inj.Loads(), inj.Stores()
	p.totMallocs = as.Stats().Mallocs
	return p, nil
}

// sampleShape draws a perturbation shape, weighted toward the sequential
// overrun (the dominant real-world bug class the paper targets).
func sampleShape(rng *rand.Rand) Shape {
	switch rng.Intn(6) {
	case 0, 1, 2:
		return ShapePastEnd
	case 3:
		return ShapeBefore
	case 4:
		return ShapeWild
	}
	return ShapeNull
}

// samplePoint draws the class-specific parameters of one fault point, or
// reports false when the request has no injectable headroom for the class
// (e.g. a request that allocates nothing cannot host an alloc-oom fault).
func samplePoint(rng *rand.Rand, r int, class FaultClass, p profileInfo) (PointSpec, bool) {
	spec := PointSpec{Class: class, Req: r}
	switch class {
	case OOBRead:
		n := p.totLoads - p.creLoads
		if n == 0 {
			return spec, false
		}
		spec.At = p.creLoads + 1 + rng.Uint64()%n
		spec.Shape = sampleShape(rng)
		spec.Extra = rng.Uint64() % 48
	case OOBWrite:
		n := p.totStores - p.creStores
		if n == 0 {
			return spec, false
		}
		spec.At = p.creStores + 1 + rng.Uint64()%n
		spec.Shape = sampleShape(rng)
		spec.Extra = rng.Uint64() % 48
	case AllocFault:
		n := p.totMallocs - p.creMallocs
		if n == 0 {
			return spec, false
		}
		spec.MallocN = p.creMallocs + 1 + rng.Uint64()%n
	case CorruptByte:
		if p.units == 0 {
			return spec, false
		}
		spec.Unit = rng.Intn(p.units)
		spec.Offset = rng.Uint64()
		spec.Mask = byte(1 + rng.Intn(255))
	}
	return spec, true
}

// samplePoints draws the server's fault points: request, class, then
// class parameters, falling back through the class list in fixed order
// when the drawn class has no headroom on the drawn request.
func samplePoints(rng *rand.Rand, faults int, prof []profileInfo) []PointSpec {
	points := make([]PointSpec, 0, faults)
	for i := 0; i < faults; i++ {
		r := rng.Intn(len(prof))
		first := rng.Intn(len(Classes))
		for j := 0; j < len(Classes); j++ {
			class := Classes[(first+j)%len(Classes)]
			if spec, ok := samplePoint(rng, r, class, prof[r]); ok {
				points = append(points, spec)
				break
			}
		}
	}
	return points
}

// twin is the clean-run reference output for (mode, request): what the
// faulted run is compared against to detect corrupted output.
type twin struct {
	req, probe servers.Response
}

type twinKey struct {
	mode fo.Mode
	req  int
}

// cleanTwin runs request r (and its probe) on a fresh un-faulted instance
// and caches the outputs.
func cleanTwin(t Target, mode fo.Mode, r int, maxSteps uint64, cache map[twinKey]twin) (twin, error) {
	k := twinKey{mode: mode, req: r}
	if tw, ok := cache[k]; ok {
		return tw, nil
	}
	inst, srv, err := newInstance(t, mode, maxSteps, &Injector{}, nil)
	if err != nil {
		return twin{}, err
	}
	defer releaseInstance(inst)
	reqs := srv.LegitRequests()
	tw := twin{
		req:   inst.Handle(reqs[r]),
		probe: inst.Handle(reqs[(r+1)%len(reqs)]),
	}
	cache[k] = tw
	return tw, nil
}

// sameOutput compares the externally visible result of a request with the
// clean-run reference.
func sameOutput(a, b servers.Response) bool {
	return a.Outcome == b.Outcome && a.Status == b.Status && a.Body == b.Body
}

// runPoint executes one fault point under one mode and classifies the
// outcome. gen overrides the manufactured-value generator (nil = the
// paper's small-integer sequence).
func runPoint(t Target, mode fo.Mode, spec PointSpec, p profileInfo, maxSteps uint64,
	gen core.ValueGenerator, twins map[twinKey]twin) (PointResult, error) {
	inj := &Injector{}
	inst, srv, err := newInstance(t, mode, maxSteps, inj, gen)
	if err != nil {
		return PointResult{}, err
	}
	defer releaseInstance(inst)
	m, err := machineOf(inst)
	if err != nil {
		return PointResult{}, err
	}
	switch spec.Class {
	case OOBRead:
		inj.Arm(false, spec.At, spec.Shape, spec.Extra)
	case OOBWrite:
		inj.Arm(true, spec.At, spec.Shape, spec.Extra)
	case AllocFault:
		// The countdown counts mallocs from now (instance creation has
		// already consumed creMallocs), landing on the absolute
		// MallocN-th allocation.
		m.AddressSpace().InjectMallocFault(spec.MallocN - p.creMallocs)
	case CorruptByte:
		corruptKth(m.AddressSpace(), spec.Unit, spec.Offset, spec.Mask)
	}
	reqs := srv.LegitRequests()
	resp := inst.Handle(reqs[spec.Req])
	res := PointResult{MemErrors: inst.Log().Snapshot().Total()}
	if resp.Outcome == fo.OutcomeHang {
		res.Outcome = OutcomeDeadline
		return res, nil
	}
	if resp.Crashed() || !inst.Alive() {
		res.Outcome = OutcomeTerminated
		return res, nil
	}
	// The server survived the faulted request; probe it with the next
	// legitimate request to catch latent state corruption, then compare
	// both outputs against the clean twin.
	probe := inst.Handle(reqs[(spec.Req+1)%len(reqs)])
	res.MemErrors = inst.Log().Snapshot().Total()
	if probe.Outcome == fo.OutcomeHang {
		res.Outcome = OutcomeDeadline
		return res, nil
	}
	if probe.Crashed() || !inst.Alive() {
		res.Outcome = OutcomeTerminated
		return res, nil
	}
	tw, err := cleanTwin(t, mode, spec.Req, maxSteps, twins)
	if err != nil {
		return PointResult{}, err
	}
	if resp.Outcome == fo.OutcomeRewound {
		// The rewind policy rolled the faulted request back; its output is
		// an explicit refusal, not a wrong answer, so only the probe is
		// compared: a matching probe proves the rollback left no trace, a
		// diverging one means corruption escaped the checkpoint (e.g. a
		// pre-request corrupt-byte fault the rollback cannot reach).
		if sameOutput(probe, tw.probe) {
			res.Outcome = OutcomeRewound
		} else {
			res.Outcome = OutcomeCorrupted
		}
		return res, nil
	}
	if sameOutput(resp, tw.req) && sameOutput(probe, tw.probe) {
		res.Outcome = OutcomeSurvived
	} else {
		res.Outcome = OutcomeCorrupted
	}
	return res, nil
}

// tally folds a point result into a cell's counters.
func (c *Cell) tally(r PointResult) {
	switch r.Outcome {
	case OutcomeSurvived:
		c.Survived++
	case OutcomeTerminated:
		c.Terminated++
	case OutcomeCorrupted:
		c.Corrupted++
	case OutcomeDeadline:
		c.Deadline++
	case OutcomeRewound:
		c.Rewound++
	}
	c.MemErrors += r.MemErrors
	c.Results = append(c.Results, r)
}

func (c *Cell) finish(points int) {
	if points > 0 {
		c.SurvivalRate = float64(c.Survived+c.Corrupted+c.Rewound) / float64(points)
	}
}

// Run executes the campaign described by plan over targets (use
// AllTargets() for the paper's five servers) and returns the report.
func Run(plan Plan, targets []Target) (*Report, error) {
	if plan.Faults <= 0 {
		plan.Faults = 40
	}
	if plan.MaxSteps == 0 {
		plan.MaxSteps = 2_000_000
	}
	strategies := plan.Strategies
	if strategies == nil {
		strategies = Strategies
	}
	selected, err := selectTargets(plan.Servers, targets)
	if err != nil {
		return nil, err
	}
	modes := plan.Modes
	if len(modes) == 0 {
		modes = campaignModes
	}

	rep := &Report{Seed: plan.Seed, Faults: plan.Faults}
	for _, m := range modes {
		rep.Modes = append(rep.Modes, m.String())
	}
	sweepAgg := make([]SweepCell, len(strategies))
	for i, s := range strategies {
		sweepAgg[i].Strategy = s
	}

	rng := rand.New(rand.NewSource(plan.Seed))
	for ti, t := range selected {
		srvRep := ServerReport{Server: t.Name}

		// Profile every legitimate request's access footprint once.
		probe := t.New().LegitRequests()
		prof := make([]profileInfo, len(probe))
		for r := range probe {
			if prof[r], err = profileRequest(t, r, plan.MaxSteps); err != nil {
				return nil, err
			}
		}
		srvRep.Points = samplePoints(rng, plan.Faults, prof)

		twins := make(map[twinKey]twin)
		for _, mode := range modes {
			cell := Cell{Mode: mode.String()}
			for _, spec := range srvRep.Points {
				res, err := runPoint(t, mode, spec, prof[spec.Req], plan.MaxSteps, nil, twins)
				if err != nil {
					return nil, err
				}
				cell.tally(res)
			}
			cell.finish(len(srvRep.Points))
			srvRep.Cells = append(srvRep.Cells, cell)
		}

		// Manufactured-value sweep: re-run the oob-read points (the only
		// class where invalid reads consume manufactured values) under
		// failure-oblivious with each strategy.
		for si, s := range strategies {
			agg := &sweepAgg[si]
			for pi, spec := range srvRep.Points {
				if spec.Class != OOBRead {
					continue
				}
				// Deterministic per-point generator seed; only the
				// random strategy consumes it.
				genSeed := plan.Seed + int64(ti+1)*1_000_003 + int64(pi+1)*7919
				res, err := runPoint(t, fo.FailureOblivious, spec, prof[spec.Req],
					plan.MaxSteps, s.Generator(genSeed), twins)
				if err != nil {
					return nil, err
				}
				agg.Points++
				switch res.Outcome {
				case OutcomeSurvived:
					agg.Survived++
				case OutcomeTerminated:
					agg.Terminated++
				case OutcomeCorrupted:
					agg.Corrupted++
				case OutcomeDeadline:
					agg.Deadline++
				}
			}
		}

		rep.Servers = append(rep.Servers, srvRep)
	}
	for i := range sweepAgg {
		if sweepAgg[i].Points > 0 {
			sweepAgg[i].SurvivalRate =
				float64(sweepAgg[i].Survived+sweepAgg[i].Corrupted) / float64(sweepAgg[i].Points)
		}
	}
	rep.Sweep = sweepAgg

	if plan.Chaos != nil && len(selected) > 0 {
		rep.ChaosServer = selected[0].Name
		if rep.Chaos, err = runChaos(selected[0], *plan.Chaos, modes); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// selectTargets resolves the plan's server-name filter.
func selectTargets(names []string, targets []Target) ([]Target, error) {
	if len(names) == 0 {
		return targets, nil
	}
	byName := map[string]Target{}
	for _, t := range targets {
		byName[t.Name] = t
	}
	out := make([]Target, 0, len(names))
	for _, n := range names {
		t, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("inject: unknown campaign server %q", n)
		}
		out = append(out, t)
	}
	return out, nil
}

// runChaos drives the serving-layer chaos section: per mode, a
// single-worker engine fed sequentially, with counter-keyed kills and
// delays (see serve.ChaosConfig for why this is deterministic).
func runChaos(t Target, cp ChaosPlan, modes []fo.Mode) ([]ChaosCell, error) {
	var cells []ChaosCell
	for _, mode := range modes {
		srv := t.New()
		opts := []serve.Option{
			serve.WithPoolSize(1),
			serve.WithQueueDepth(cp.Requests + 1),
			serve.WithChaos(serve.ChaosConfig{
				KillEvery:    cp.KillEvery,
				LatencyEvery: cp.LatencyEvery,
				Latency:      cp.Latency,
			}),
		}
		if cp.Deadline > 0 {
			opts = append(opts, serve.WithDeadline(cp.Deadline))
		}
		eng, err := serve.New(srv, mode, opts...)
		if err != nil {
			return nil, fmt.Errorf("inject: chaos engine %s/%v: %w", t.Name, mode, err)
		}
		reqs := srv.LegitRequests()
		cell := ChaosCell{Mode: mode.String(), Requests: cp.Requests}
		for i := 0; i < cp.Requests; i++ {
			resp, err := eng.Submit(context.Background(), reqs[i%len(reqs)])
			if err != nil {
				continue
			}
			switch resp.Outcome {
			case fo.OutcomeOK:
				cell.OK++
			case fo.OutcomeDeadline:
				cell.Deadlines++
			}
		}
		st := eng.Stats()
		eng.Close()
		cell.Kills = int(st.ChaosKills)
		cell.Delays = int(st.ChaosDelays)
		cell.Restarts = int(st.Restarts)
		cells = append(cells, cell)
	}
	return cells, nil
}

// FormatReport renders the human summary table.
func FormatReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault-injection campaign: seed=%d faults=%d/server\n", r.Seed, r.Faults)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "server\tmode\tsurvived\tterminated\tcorrupted\trewound\tdeadline\tsurvival\tmem-errors")
	for _, s := range r.Servers {
		for _, c := range s.Cells {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t%d\n",
				s.Server, c.Mode, c.Survived, c.Terminated, c.Corrupted,
				c.Rewound, c.Deadline, 100*c.SurvivalRate, c.MemErrors)
		}
	}
	w.Flush()
	if len(r.Sweep) > 0 {
		fmt.Fprintf(&b, "\nmanufactured-value sweep (failure-oblivious, oob-read points):\n")
		w = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		fmt.Fprintln(w, "strategy\tpoints\tsurvived\tterminated\tcorrupted\tdeadline\tsurvival")
		for _, c := range r.Sweep {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f%%\n",
				c.Strategy, c.Points, c.Survived, c.Terminated, c.Corrupted,
				c.Deadline, 100*c.SurvivalRate)
		}
		w.Flush()
	}
	if len(r.Chaos) > 0 {
		fmt.Fprintf(&b, "\nserving-layer chaos (%s, %d requests/mode):\n",
			r.ChaosServer, r.Chaos[0].Requests)
		w = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		fmt.Fprintln(w, "mode\tok\tdeadlines\tkills\tdelays\trestarts")
		for _, c := range r.Chaos {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
				c.Mode, c.OK, c.Deadlines, c.Kills, c.Delays, c.Restarts)
		}
		w.Flush()
	}
	return b.String()
}
