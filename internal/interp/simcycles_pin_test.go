package interp_test

// This file pins the simulated-cycle cost of representative workloads to
// golden values. The fast-path work (unit-lookup caches, word-granularity
// libc spans, allocation-free checks) is required to leave the cost model
// untouched: wall-clock ns/op may drop, but sim cycles — and therefore the
// sim-ms/op metric that reproduces the paper's slowdown shapes — must not
// move. Any change to these numbers is a semantic change to the model and
// needs an explicit golden update plus a re-run of the figure benchmarks.

import (
	"testing"

	"focc/fo"
	"focc/internal/corpus"
)

type pinCall struct {
	fn  string
	arg int64
}

// goldenCycles holds the pinned per-mode cycle counts for the fixed call
// sequence below. Captured from the pre-fast-path implementation; the fast
// path — and the compiled closure-IR engine, which must charge cycles at
// exactly the same decision points as the tree-walk reference — must
// reproduce them exactly.
var goldenCycles = map[fo.Mode]uint64{
	fo.Standard:         1506,
	fo.BoundsCheck:      9934,
	fo.FailureOblivious: 10347,
	fo.Boundless:        10347,
	fo.Redirect:         10347,
	// Rewind charges identically to BoundsCheck: both stop the request at
	// the first invalid access, and the checkpoint machinery itself is
	// free under the cost model (its overhead is real-world, measured in
	// wall-clock benchmarks, not simulated cycles).
	fo.ModeRewind: 9934,
	// FOContext shares FailureOblivious's decision points exactly — same
	// checks, same continuation — and site priming is free under the cost
	// model, so its pin equals the FO row. Only the manufactured values
	// differ.
	fo.ModeFOContext: 10347,
}

func TestSimCyclesPinned(t *testing.T) {
	for _, engine := range []string{"compiled", "tree-walk", "codegen"} {
		t.Run(engine, func(t *testing.T) {
			testSimCyclesPinned(t, engine)
		})
	}
}

func testSimCyclesPinned(t *testing.T, engine string) {
	prog, err := fo.Compile(corpus.PinFileName, corpus.PinSrc)
	if err != nil {
		t.Fatal(err)
	}
	calls := []pinCall{
		{"bulk", 0},
		{"scan", 0},
		{"ptrs", 0},
		{"oob", 6},  // in bounds
		{"oob", 24}, // continuation code past the end (checked modes)
	}
	for mode, want := range goldenCycles {
		t.Run(mode.String(), func(t *testing.T) {
			m, err := prog.NewMachine(fo.MachineConfig{
				Mode:         mode,
				TreeWalk:     engine == "tree-walk",
				UseGenerated: engine == "codegen",
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range calls {
				if c.fn == "oob" && c.arg > 8 && mode == fo.Standard {
					// Standard mode would read neighbouring stack bytes;
					// that is fine, but keep the call set identical across
					// checked modes and skip only the final OOB call where
					// BoundsCheck terminates the machine.
					continue
				}
				res := m.Call(c.fn, fo.Int(c.arg))
				if mode == fo.BoundsCheck && c.fn == "oob" && c.arg > 8 {
					if res.Outcome != fo.OutcomeMemErrorTermination {
						t.Fatalf("%s(%d): outcome %v, want memory-error termination", c.fn, c.arg, res.Outcome)
					}
					continue
				}
				if mode == fo.ModeRewind && c.fn == "oob" && c.arg > 8 {
					if res.Outcome != fo.OutcomeRewound {
						t.Fatalf("%s(%d): outcome %v, want rewound", c.fn, c.arg, res.Outcome)
					}
					continue
				}
				if res.Outcome != fo.OutcomeOK {
					t.Fatalf("%s(%d) under %v: %v (%v)", c.fn, c.arg, mode, res.Outcome, res.Err)
				}
			}
			if got := m.SimCycles(); got != want {
				t.Errorf("SimCycles = %d, want %d", got, want)
			}
		})
	}
}
