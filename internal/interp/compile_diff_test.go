package interp_test

// Differential tests: the compiled closure-IR engine and the AST-walking
// reference engine must agree on EVERY observable — outcome, return
// value, error text, step count, simulated cycles, program output, and
// the memory-error event log — for every corpus program, every mode, and
// a set of torture programs that exercise the lowered control flow
// (goto/switch tables), the error paths, and the failure-oblivious
// continuation machinery. Simulated-cycle equality here is the
// enforcement of the cycle-charging invariant documented in compile.go.

import (
	"bytes"
	"reflect"
	"testing"

	"focc/internal/cc/sema"
	"focc/internal/core"
	"focc/internal/interp"
	"focc/internal/libc"
)

var diffModes = []core.Mode{
	core.Standard,
	core.BoundsCheck,
	core.FailureOblivious,
	core.Boundless,
	core.Redirect,
	core.TxTerm,
	core.ModeRewind,
}

// diffCall is one host-level call in a differential scenario.
type diffCall struct {
	fn   string
	args []int64
}

// engineObs is everything observable about one call on one engine.
type engineObs struct {
	Outcome  interp.Outcome
	Value    int64
	ExitCode int
	Err      string
	Steps    uint64
}

// runEngine executes the call sequence on a fresh machine and returns the
// per-call observations plus the machine's final cycle count, output, and
// event-log snapshot.
func runEngine(t *testing.T, prog *sema.Program, cp *interp.CompiledProgram,
	mode core.Mode, maxSteps uint64, calls []diffCall) ([]engineObs, uint64, string, core.Snapshot) {
	t.Helper()
	var out bytes.Buffer
	m, err := interp.New(prog, interp.Config{
		Mode:     mode,
		Out:      &out,
		Builtins: libc.Builtins(),
		MaxSteps: maxSteps,
		Compiled: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	var obs []engineObs
	for _, c := range calls {
		args := make([]interp.Value, len(c.args))
		for i, a := range c.args {
			args[i] = interp.Int(a)
		}
		res := m.Call(c.fn, args...)
		o := engineObs{
			Outcome:  res.Outcome,
			Value:    res.Value.I,
			ExitCode: res.ExitCode,
			Steps:    res.Steps,
		}
		if res.Err != nil {
			o.Err = res.Err.Error()
		}
		obs = append(obs, o)
	}
	return obs, m.SimCycles(), out.String(), m.Log().Snapshot()
}

// assertEnginesAgree runs the scenario on both engines under every mode
// and requires identical observations.
func assertEnginesAgree(t *testing.T, src string, maxSteps uint64, calls []diffCall) {
	t.Helper()
	prog := compileWithCPP(t, src)
	cp := interp.Compile(prog)
	for _, mode := range diffModes {
		t.Run(mode.String(), func(t *testing.T) {
			refObs, refCycles, refOut, refLog := runEngine(t, prog, nil, mode, maxSteps, calls)
			cObs, cCycles, cOut, cLog := runEngine(t, prog, cp, mode, maxSteps, calls)
			for i := range refObs {
				if refObs[i] != cObs[i] {
					t.Errorf("call %d (%s): tree-walk %+v, compiled %+v",
						i, calls[i].fn, refObs[i], cObs[i])
				}
			}
			if refCycles != cCycles {
				t.Errorf("sim cycles: tree-walk %d, compiled %d", refCycles, cCycles)
			}
			if refOut != cOut {
				t.Errorf("output: tree-walk %q, compiled %q", refOut, cOut)
			}
			if !reflect.DeepEqual(refLog, cLog) {
				t.Errorf("event log: tree-walk %+v, compiled %+v", refLog, cLog)
			}
		})
	}
}

func TestEngineDiffCorpus(t *testing.T) {
	for _, cp := range corpusSources() {
		t.Run(cp.name, func(t *testing.T) {
			assertEnginesAgree(t, cp.src, 0, []diffCall{{fn: "main"}})
		})
	}
}

// TestEngineDiffMemoryErrors exercises the continuation paths: the pin
// workload's out-of-bounds reads and writes manufacture values and log
// events; both engines must produce the same values, cycles, and logs.
func TestEngineDiffMemoryErrors(t *testing.T) {
	assertEnginesAgree(t, pinSrc, 0, []diffCall{
		{fn: "bulk", args: []int64{0}},
		{fn: "scan", args: []int64{0}},
		{fn: "ptrs", args: []int64{0}},
		{fn: "oob", args: []int64{6}},
		{fn: "oob", args: []int64{24}},
		// After a crash (Standard: possible stack garbage; BoundsCheck:
		// termination) further calls must fail identically on both engines.
		{fn: "bulk", args: []int64{0}},
	})
}

// TestEngineDiffControlFlow tortures the statically-lowered control flow:
// goto into and out of nested blocks, switch dispatch with fallthrough
// and default, do-while, break/continue, and labeled statements.
func TestEngineDiffControlFlow(t *testing.T) {
	const src = `
int collatz(int n) {
	int steps = 0;
top:
	if (n == 1)
		goto done;
	if (n % 2 == 0) {
		n = n / 2;
	} else {
		n = 3 * n + 1;
	}
	steps++;
	goto top;
done:
	return steps;
}

int classify(int c) {
	int score = 0;
	switch (c) {
	case 0:
		score = 1;
		break;
	case 1:
	case 2:
		score = 10;
		/* fall through */
	case 3:
		score += 100;
		break;
	default:
		score = -1;
	}
	return score;
}

int weave(int n) {
	int i = 0, acc = 0;
	do {
		int j;
		for (j = 0; j < n; j++) {
			if (j == 2)
				continue;
			if (j == 5)
				break;
			acc += j;
		}
		i++;
		if (i > 3)
			goto out;
	} while (i < 10);
out:
	while (i-- > 0)
		acc++;
	return acc;
}

int dispatch(int n) {
	int total = 0, i;
	for (i = 0; i < n; i++) {
		switch (i & 3) {
		case 0: total += classify(i); break;
		case 1: total += collatz(i + 1); break;
		case 2: total += weave(i); break;
		default:
			switch (i % 5) {
			case 0: total++; break;
			default: total--; break;
			}
		}
	}
	return total;
}
`
	assertEnginesAgree(t, src, 0, []diffCall{
		{fn: "collatz", args: []int64{27}},
		{fn: "classify", args: []int64{2}},
		{fn: "classify", args: []int64{7}},
		{fn: "weave", args: []int64{8}},
		{fn: "dispatch", args: []int64{40}},
	})
}

// TestEngineDiffErrorPaths pins the engines' fatal-error parity: division
// by zero, hangs under a small step budget, and exit().
func TestEngineDiffErrorPaths(t *testing.T) {
	const src = `
#include <stdlib.h>
int divz(int n) { return 100 / n; }
int spin(int n) { while (1) { n++; } return n; }
int quit(int n) { exit(n); return 0; }
`
	t.Run("DivideByZero", func(t *testing.T) {
		assertEnginesAgree(t, src, 0, []diffCall{
			{fn: "divz", args: []int64{5}},
			{fn: "divz", args: []int64{0}},
			{fn: "divz", args: []int64{5}}, // dead machine on both engines
		})
	})
	t.Run("Hang", func(t *testing.T) {
		assertEnginesAgree(t, src, 20_000, []diffCall{
			{fn: "spin", args: []int64{0}},
		})
	})
	t.Run("Exit", func(t *testing.T) {
		assertEnginesAgree(t, src, 0, []diffCall{
			{fn: "quit", args: []int64{3}},
		})
	})
}

// TestEngineDiffDataShapes covers the value-shape paths: struct copies by
// pointer and by member, nested aggregates with initializers, string
// literals, pointer arithmetic and compound assignment, ternary, comma,
// casts, and printf output.
func TestEngineDiffDataShapes(t *testing.T) {
	const src = `
#include <string.h>
#include <stdio.h>

struct point { int x, y; };
struct rect { struct point min, max; };

int area(void) {
	struct rect r = { {1, 2}, {11, 22} };
	struct rect s;
	struct rect *p = &s;
	s = r;                       /* struct copy */
	p->max.x += 10;              /* arrow + dot + compound */
	return (s.max.x - s.min.x) * (s.max.y - s.min.y);
}

int strings(void) {
	char buf[16] = "abc";
	char *p = buf;
	int n = 0;
	*(p + 3) = 'd';
	p[4] = '\0';
	n = (int) strlen(buf);
	printf("s=%s n=%d\n", buf, n);
	return n;
}

int mixed(int k) {
	long total = 0;
	int i;
	int tbl[8] = {1, 2, 3, 4, 5, 6, 7, 8};
	for (i = 0; i < 8; i++)
		total += (i % 2 == 0) ? tbl[i] : -tbl[i], total <<= 1;
	total = (long)(short)(total + k);
	return (int) total;
}
`
	assertEnginesAgree(t, src, 0, []diffCall{
		{fn: "area"},
		{fn: "strings"},
		{fn: "mixed", args: []int64{7}},
	})
}
