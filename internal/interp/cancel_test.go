package interp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"focc/fo"
)

const cancelSrc = `
int hits = 0;

int spin(void)
{
	int i = 0;
	for (;;)
		i++;
	return i;
}

int bump(void)
{
	hits = hits + 1;
	return hits;
}

int main(void) { return spin(); }
`

func newCancelMachine(t *testing.T) *fo.Machine {
	t.Helper()
	prog, err := fo.Compile("cancel.c", cancelSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.FailureOblivious})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCallContextDeadlineSurvivesMachine(t *testing.T) {
	m := newCancelMachine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res := m.CallContext(ctx, "spin")
	if res.Outcome != fo.OutcomeDeadline {
		t.Fatalf("spin outcome = %v (%v), want deadline-exceeded", res.Outcome, res.Err)
	}
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", res.Err)
	}
	if res.Outcome.Crashed() {
		t.Error("deadline outcome must not be a crash")
	}
	if m.Dead() {
		t.Fatal("machine died from a canceled call")
	}
	// The stack was unwound: further calls run normally.
	for want := int64(1); want <= 3; want++ {
		res := m.Call("bump")
		if res.Outcome != fo.OutcomeOK || res.Value.I != want {
			t.Fatalf("post-cancel bump = %v value %d, want ok %d",
				res.Outcome, res.Value.I, want)
		}
	}
}

func TestRunContextCancel(t *testing.T) {
	m := newCancelMachine(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res := m.RunContext(ctx)
	if res.Outcome != fo.OutcomeDeadline {
		t.Fatalf("outcome = %v, want deadline-exceeded", res.Outcome)
	}
	if !errors.Is(res.Err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", res.Err)
	}
}

func TestCallContextPreCanceled(t *testing.T) {
	m := newCancelMachine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := m.CallContext(ctx, "bump")
	if res.Outcome != fo.OutcomeDeadline {
		t.Fatalf("outcome = %v, want deadline-exceeded", res.Outcome)
	}
	// The canceled call never ran.
	if res := m.Call("bump"); res.Value.I != 1 {
		t.Errorf("bump after pre-canceled call = %d, want 1", res.Value.I)
	}
}

func TestCallContextBackgroundIsPlainCall(t *testing.T) {
	m := newCancelMachine(t)
	res := m.CallContext(context.Background(), "bump")
	if res.Outcome != fo.OutcomeOK || res.Value.I != 1 {
		t.Fatalf("background-context call = %v value %d, want ok 1", res.Outcome, res.Value.I)
	}
}
