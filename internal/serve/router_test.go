package serve_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
)

// stubSrcV2 is the "next release" of stubSrc for hot-swap tests: same
// handlers, but ok answers 201 so responses reveal which program served
// them.
const stubSrcV2 = `
char resp[32];

int ok(void)
{
	resp[0] = 'v'; resp[1] = '2'; resp[2] = 0;
	return 201;
}
`

var (
	stubV2Once sync.Once
	stubV2Prog *fo.Program
	stubV2Err  error
)

type stubServerV2 struct{}

func (*stubServerV2) Name() string { return "stub-v2" }

func (*stubServerV2) New(mode fo.Mode) (servers.Instance, error) {
	stubV2Once.Do(func() { stubV2Prog, stubV2Err = fo.Compile("stub_v2.c", stubSrcV2) })
	if stubV2Err != nil {
		return nil, stubV2Err
	}
	log := fo.NewEventLog(0)
	m, err := stubV2Prog.NewMachine(fo.MachineConfig{Mode: mode, Log: log})
	if err != nil {
		return nil, err
	}
	return &stubInstance{Base: servers.Base{ServerName: "stub-v2", M: m, EvLog: log}}, nil
}

func (*stubServerV2) LegitRequests() []servers.Request {
	return []servers.Request{{Op: "ok"}}
}

func (*stubServerV2) AttackRequest() servers.Request {
	return servers.Request{Op: "ok"}
}

// TestRouterShardingStability: tenant→shard assignment is deterministic,
// spreads tenants across every shard, and requests actually land on the
// shard the ring names (per-shard Served counters line up).
func TestRouterShardingStability(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShards(4),
		serve.WithShardOptions(serve.WithPoolSize(1), serve.WithQueueDepth(8)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	perShard := make([]int, rt.ShardCount())
	for i := 0; i < 1000; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		s := rt.Shard(tenant)
		if again := rt.Shard(tenant); again != s {
			t.Fatalf("Shard(%q) unstable: %d then %d", tenant, s, again)
		}
		perShard[s]++
	}
	for s, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d received no tenants out of 1000", s)
		}
	}

	// Route a handful of real requests and check the per-shard counters
	// match the ring's assignment.
	want := make([]uint64, rt.ShardCount())
	for i := 0; i < 20; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		want[rt.Shard(tenant)]++
		resp, err := rt.Submit(context.Background(), tenant, servers.Request{Op: "ok"})
		if err != nil {
			t.Fatalf("submit tenant-%d: %v", i, err)
		}
		if !resp.OK() {
			t.Fatalf("tenant-%d response = %v, want OK", i, resp)
		}
	}
	st := rt.Stats()
	if st.Served != 20 {
		t.Fatalf("aggregate Served = %d, want 20", st.Served)
	}
	for s := range want {
		if st.Shards[s].Served != want[s] {
			t.Errorf("shard %d served %d, want %d", s, st.Shards[s].Served, want[s])
		}
	}
}

// TestRouterTenantQuotaNoStarvation: a flooding tenant saturating its quota
// at well over 2× the fleet's capacity must not starve a light tenant —
// every one of the light tenant's requests is admitted and served, while
// the flooder takes ErrOverQuota rejections.
func TestRouterTenantQuotaNoStarvation(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShards(2),
		serve.WithTenantQuota(2),
		serve.WithShardOptions(serve.WithPoolSize(1), serve.WithQueueDepth(16)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	stop := make(chan struct{})
	var flood sync.WaitGroup
	for g := 0; g < 8; g++ { // 8 concurrent floods against a quota of 2
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Slow requests hold the flooder's quota slots so the
				// other flood goroutines pile up over quota; denied
				// goroutines back off briefly instead of spinning the
				// scheduler.
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				_, err := rt.Submit(ctx, "flooder", servers.Request{Op: "spin"})
				cancel()
				if errors.Is(err, serve.ErrOverQuota) {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	time.Sleep(30 * time.Millisecond) // let the flood saturate its quota
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := rt.Submit(ctx, "light", servers.Request{Op: "ok"})
		cancel()
		if err != nil {
			t.Fatalf("light tenant request %d starved: %v", i, err)
		}
		if !resp.OK() {
			t.Fatalf("light tenant request %d = %v, want OK", i, resp)
		}
	}
	close(stop)
	flood.Wait()

	st := rt.Stats()
	if st.OverQuota == 0 {
		t.Error("flooding tenant was never rejected over quota")
	}
	ten := st.Tenants
	if ten["flooder"].Denied == 0 {
		t.Errorf("flooder Denied = 0, want > 0 (stats: %+v)", ten["flooder"])
	}
	if ten["light"].Denied != 0 {
		t.Errorf("light tenant Denied = %d, want 0", ten["light"].Denied)
	}
	if ten["light"].Admitted != 10 {
		t.Errorf("light tenant Admitted = %d, want 10", ten["light"].Admitted)
	}
}

// TestRouterHotSwapZeroFailures is the zero-downtime guarantee: under
// sustained concurrent load, Swap replaces the served program with ZERO
// failed requests — every submission before, during, and after the flip is
// answered OK, old-program responses simply give way to new-program ones.
func TestRouterHotSwapZeroFailures(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShards(2),
		serve.WithShardOptions(
			serve.WithPoolSize(2), serve.WithQueueDepth(64), serve.WithWarmSpares(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const clients = 8
	var v1, v2, failures atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := rt.Submit(context.Background(), tenant, servers.Request{Op: "ok"})
				if err != nil || !resp.OK() {
					failures.Add(1)
					continue
				}
				switch resp.Status {
				case 200:
					v1.Add(1)
				case 201:
					v2.Add(1)
				default:
					failures.Add(1)
				}
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond) // steady state on v1
	prev := rt.Swap(&stubServerV2{})
	if _, ok := prev.(*stubServer); !ok {
		t.Errorf("Swap returned %T, want the previous *stubServer", prev)
	}
	time.Sleep(100 * time.Millisecond) // steady state on v2
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the hot swap, want 0", n)
	}
	if v1.Load() == 0 || v2.Load() == 0 {
		t.Fatalf("load did not span the swap: v1=%d v2=%d", v1.Load(), v2.Load())
	}

	// Everything submitted after the swap runs the new program.
	resp, err := rt.Submit(context.Background(), "post-swap", servers.Request{Op: "ok"})
	if err != nil || resp.Status != 201 {
		t.Fatalf("post-swap request = %v, %v; want 201 from the new program", resp, err)
	}
	if cur, ok := rt.Current().(*stubServerV2); !ok {
		t.Errorf("Current() = %T, want *stubServerV2", cur)
	}

	st := rt.Stats()
	if st.Swaps != 1 {
		t.Errorf("Swaps = %d, want 1", st.Swaps)
	}
	if st.Recycles == 0 {
		t.Error("no instance recycles recorded after a swap under load")
	}
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Errorf("hot swap crashed instances: crashes=%d restarts=%d", st.Crashes, st.Restarts)
	}
	if st.Rejected != 0 || st.Shed != 0 {
		t.Errorf("hot swap dropped requests: rejected=%d shed=%d", st.Rejected, st.Shed)
	}
}

// TestRouterAIMDBacksOffUnderLatency: sustained latency far above the p95
// target must walk the adaptive concurrency limit down and start rejecting
// with ErrOverLimit — upstream backpressure driven by observed latency.
func TestRouterAIMDBacksOffUnderLatency(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShards(1),
		serve.WithAIMD(serve.AIMDConfig{
			TargetP95: time.Millisecond,
			Window:    4,
		}),
		serve.WithShardOptions(serve.WithPoolSize(2), serve.WithQueueDepth(32)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	start := rt.Stats().Limit // 2× total workers
	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
				_, err := rt.Submit(ctx, tenant, servers.Request{Op: "spin"})
				cancel()
				if errors.Is(err, serve.ErrOverLimit) {
					time.Sleep(time.Millisecond)
				}
				if rt.Stats().Limit < start && rt.Stats().OverLimit > 0 {
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := rt.Stats()
	if st.Limit >= start {
		t.Errorf("adaptive limit = %d, want < initial %d after sustained over-target latency",
			st.Limit, start)
	}
	if st.OverLimit == 0 {
		t.Error("no ErrOverLimit rejections while saturated over target")
	}
}
