package interp

// Expression lowering for the compiled engine. Everything the tree-walk
// evaluator re-derives per execution that is actually static — symbol
// storage class, frame offsets, global indexes, lvalue types and
// trustedness, array decay, result types, compound-assign operators,
// element sizes, builtin-ness of callees — is resolved here, once, and
// captured by the returned closures. The closures charge simulated cycles
// at exactly the points eval.go does (see the invariant note in
// compile.go).

import (
	"encoding/binary"

	"focc/internal/cc/ast"
	"focc/internal/cc/sema"
	"focc/internal/cc/token"
	"focc/internal/cc/types"
	"focc/internal/core"
	"focc/internal/mem"
)

// clval is a lowered lvalue: the pointer computation is a closure; the
// type and trustedness — dynamic fields of the evaluator's lval — are
// static facts of the expression, resolved at lowering time.
type clval struct {
	ptr     ptrFn
	t       *types.Type
	trusted bool
	// lsid is the canonical load-site id of the lvalue's AST node
	// (sema.LoadSiteOf); it primes the context-aware value strategy on
	// the checked-load path. -1 when the node is not a load-site kind.
	lsid int32
}

// exprFail lowers to an expression that raises the evaluator's runtime
// error when (and only when) it executes.
func exprFail(pos token.Pos, format string, args ...any) evalFn {
	return func(m *Machine) Value {
		m.failf(pos, format, args...)
		return Value{}
	}
}

// lvalFail lowers to an lvalue whose pointer computation raises the
// evaluator's runtime error. The carried type keeps downstream static
// decisions well-defined; it is never observed because the pointer
// closure always faults first.
func lvalFail(pos token.Pos, format string, args ...any) clval {
	return clval{
		ptr: func(m *Machine) core.Pointer {
			m.failf(pos, format, args...)
			return core.Pointer{}
		},
		t: types.IntType,
	}
}

func (c *compiler) compileExpr(e ast.Expr) evalFn {
	switch n := e.(type) {
	case *ast.IntLit:
		v := Value{T: n.Type(), I: n.Val}
		return func(*Machine) Value { return v }
	case *ast.StringLit:
		t := types.PointerTo(types.CharType)
		idx := n.LitIndex
		return func(m *Machine) Value {
			u := m.literals[idx]
			return Value{T: t, Ptr: core.Pointer{Addr: u.Base, Prov: u}}
		}
	case *ast.Ident:
		return c.compileIdent(n)
	case *ast.Unary:
		return c.compileUnary(n)
	case *ast.Postfix:
		lv := c.compileLvalue(n.X)
		load := c.loadClval(lv, n.Pos())
		store := c.storeClvalConvert(lv, n.Pos())
		delta := int64(1)
		if n.Op == token.Dec {
			delta = -1
		}
		bump := compileAddDelta(lv.t, delta, n.Pos())
		return func(m *Machine) Value {
			p := lv.ptr(m)
			old := load(m, p)
			store(m, p, bump(m, old))
			return old
		}
	case *ast.Binary:
		return c.compileBinary(n)
	case *ast.Assign:
		return c.compileAssign(n)
	case *ast.Cond:
		cond := c.compileExpr(n.C)
		then := c.compileExpr(n.Then)
		els := c.compileExpr(n.Else)
		t := n.Type()
		pos := n.Pos()
		return func(m *Machine) Value {
			if cond(m).Truthy() {
				return m.convert(then(m), t, pos)
			}
			return m.convert(els(m), t, pos)
		}
	case *ast.Call:
		return c.compileCall(n)
	case *ast.Index, *ast.Member:
		lv := c.compileLvalue(e)
		if lv.t.IsArray() {
			// Array member/element used as a value: decays to a pointer to
			// its first element — type resolved here, no load.
			pt := types.PointerTo(lv.t.Elem)
			return func(m *Machine) Value {
				return Value{T: pt, Ptr: lv.ptr(m)}
			}
		}
		load := c.loadClval(lv, e.Pos())
		return func(m *Machine) Value {
			return load(m, lv.ptr(m))
		}
	case *ast.Cast:
		x := c.compileExpr(n.X)
		to := n.To
		pos := n.Pos()
		xt := n.X.Type()
		if xt == to && to != nil && !to.IsArray() {
			// Identity cast: conversion to the operand's own type is a
			// no-op for every value the machine produces (values carry
			// their static type, truncated to its width), so the cast
			// lowers to nothing at all.
			return x
		}
		if xt != nil && to != nil && xt.IsInteger() && to.IsInteger() {
			// Integer narrowing/widening with static width; the guard
			// falls back to the generic conversion on type mismatch.
			return func(m *Machine) Value {
				v := x(m)
				if v.T != xt {
					return m.convert(v, to, pos)
				}
				return Value{T: to, I: types.Truncate(to, v.I)}
			}
		}
		return func(m *Machine) Value {
			return m.convert(x(m), to, pos)
		}
	case *ast.Comma:
		x := c.compileExpr(n.X)
		y := c.compileExpr(n.Y)
		return func(m *Machine) Value {
			x(m)
			return y(m)
		}
	}
	return exprFail(e.Pos(), "unsupported expression %T", e)
}

// compileIdent lowers a named-variable read: storage class, frame offset
// or global index, array decay, and the scalar load shape are all static.
func (c *compiler) compileIdent(n *ast.Ident) evalFn {
	sym := n.Sym
	if sym == nil {
		return exprFail(n.Pos(), "unresolved identifier %q", n.Name)
	}
	pos := n.Pos()
	t := sym.Type
	switch sym.Storage {
	case ast.StorageLocal, ast.StorageParam:
		off := sym.FrameOff
		name := sym.Name
		idx, fast := c.cur.localIdx[off]
		if t.IsArray() {
			pt := types.PointerTo(t.Elem)
			if fast {
				return func(m *Machine) Value {
					u := m.frame.LocalAt(idx)
					return Value{T: pt, Ptr: core.Pointer{Addr: u.Base, Prov: u}}
				}
			}
			return func(m *Machine) Value {
				u := m.frame.Local(off)
				if u == nil {
					m.failf(pos, "internal: no frame slot for %q", name)
				}
				return Value{T: pt, Ptr: core.Pointer{Addr: u.Base, Prov: u}}
			}
		}
		if t.Kind == types.Func {
			return exprFail(pos, "function %q used as a value (function pointers are unsupported)", n.Name)
		}
		load := c.rawLoad(t)
		if fast {
			return func(m *Machine) Value {
				return load(m, m.frame.LocalAt(idx), 0)
			}
		}
		return func(m *Machine) Value {
			u := m.frame.Local(off)
			if u == nil {
				m.failf(pos, "internal: no frame slot for %q", name)
			}
			return load(m, u, 0)
		}
	case ast.StorageGlobal:
		gi := sym.GlobalIdx
		if t.IsArray() {
			pt := types.PointerTo(t.Elem)
			return func(m *Machine) Value {
				u := m.globals[gi]
				return Value{T: pt, Ptr: core.Pointer{Addr: u.Base, Prov: u}}
			}
		}
		if t.Kind == types.Func {
			return exprFail(pos, "function %q used as a value (function pointers are unsupported)", n.Name)
		}
		load := c.rawLoad(t)
		return func(m *Machine) Value {
			return load(m, m.globals[gi], 0)
		}
	}
	// Enum constants were folded to IntLit by sema; anything else here is
	// not addressable, exactly as the evaluator reports it.
	return exprFail(pos, "symbol %q is not addressable", sym.Name)
}

func (c *compiler) compileUnary(n *ast.Unary) evalFn {
	pos := n.Pos()
	t := n.Type()
	switch n.Op {
	case token.Minus:
		x := c.compileExpr(n.X)
		return func(m *Machine) Value {
			return Value{T: t, I: types.Truncate(t, -x(m).I)}
		}
	case token.Plus:
		x := c.compileExpr(n.X)
		return func(m *Machine) Value {
			return Value{T: t, I: types.Truncate(t, x(m).I)}
		}
	case token.Tilde:
		x := c.compileExpr(n.X)
		return func(m *Machine) Value {
			return Value{T: t, I: types.Truncate(t, ^x(m).I)}
		}
	case token.Bang:
		x := c.compileExpr(n.X)
		return func(m *Machine) Value {
			if x(m).Truthy() {
				return Value{T: types.IntType, I: 0}
			}
			return Value{T: types.IntType, I: 1}
		}
	case token.Star:
		x := c.compileExpr(n.X)
		if t.IsArray() {
			pt := types.PointerTo(t.Elem)
			return func(m *Machine) Value {
				return Value{T: pt, Ptr: x(m).Ptr}
			}
		}
		load := c.checkedLoad(t, pos, sema.LoadSiteOf(n))
		return func(m *Machine) Value {
			return load(m, x(m).Ptr)
		}
	case token.Amp:
		lv := c.compileLvalue(n.X)
		return func(m *Machine) Value {
			return Value{T: t, Ptr: lv.ptr(m)}
		}
	case token.Inc, token.Dec:
		lv := c.compileLvalue(n.X)
		load := c.loadClval(lv, pos)
		store := c.storeClvalConvert(lv, pos)
		delta := int64(1)
		if n.Op == token.Dec {
			delta = -1
		}
		bump := compileAddDelta(lv.t, delta, pos)
		return func(m *Machine) Value {
			p := lv.ptr(m)
			old := load(m, p)
			nv := bump(m, old)
			store(m, p, nv)
			return nv
		}
	}
	return exprFail(pos, "unsupported unary operator %s", n.Op)
}

func (c *compiler) compileBinary(n *ast.Binary) evalFn {
	x := c.compileExpr(n.X)
	switch n.Op {
	case token.AndAnd:
		y := c.compileExpr(n.Y)
		return func(m *Machine) Value {
			if !x(m).Truthy() {
				return Value{T: types.IntType, I: 0}
			}
			if y(m).Truthy() {
				return Value{T: types.IntType, I: 1}
			}
			return Value{T: types.IntType, I: 0}
		}
	case token.OrOr:
		y := c.compileExpr(n.Y)
		return func(m *Machine) Value {
			if x(m).Truthy() || y(m).Truthy() {
				return Value{T: types.IntType, I: 1}
			}
			return Value{T: types.IntType, I: 0}
		}
	}
	y := c.compileExpr(n.Y)
	op := n.Op
	xt, yt := n.X.Type(), n.Y.Type()
	if isComparison(op) {
		if f := compileCompare(op, x, y, xt, yt); f != nil {
			return f
		}
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			return m.compare(op, xv, yv)
		}
	}
	rt := n.Type()
	pos := n.Pos()
	if f := compileIntArith(op, x, y, rt, xt, yt, pos); f != nil {
		return f
	}
	if f := compilePtrArith(op, x, y, rt, xt, yt, pos); f != nil {
		return f
	}
	return func(m *Machine) Value {
		xv := x(m)
		yv := y(m)
		return m.binaryOp(op, xv, yv, rt, pos)
	}
}

func (c *compiler) compileAssign(n *ast.Assign) evalFn {
	pos := n.Pos()
	if n.Op == token.Assign {
		rhs := c.compileExpr(n.RHS)
		lv := c.compileLvalue(n.LHS)
		t := lv.t
		store := c.storeClval(lv, pos)
		return func(m *Machine) Value {
			v := rhs(m)
			p := lv.ptr(m)
			v = m.convert(v, t, pos)
			store(m, p, v)
			return v
		}
	}
	op, ok := compoundOp(n.Op)
	if !ok {
		return exprFail(pos, "unsupported assignment operator %s", n.Op)
	}
	lv := c.compileLvalue(n.LHS)
	load := c.loadClval(lv, pos)
	store := c.storeClval(lv, pos)
	rhs := c.compileExpr(n.RHS)
	// The arithmetic's common type: loads return values of the lvalue's
	// static type, so the promotion of the left operand — and for pointer
	// and shift assignments the whole result type — resolves at lowering
	// time; only the mixed-promotion case consults the right operand's
	// runtime type.
	t := lv.t
	var staticRt *types.Type
	var pa *types.Type
	if t.IsPointer() {
		staticRt = t
	} else if op == token.Shl || op == token.Shr {
		staticRt = types.Promote(t)
	} else {
		pa = promoteType(t)
	}
	return func(m *Machine) Value {
		p := lv.ptr(m)
		cur := load(m, p)
		rv := rhs(m)
		rt := staticRt
		if rt == nil {
			if pb := promoteType(rv.T); pb == pa {
				rt = pa
			} else {
				rt = types.UsualArith(pa, pb)
			}
		}
		res := m.binaryOp(op, cur, rv, rt, pos)
		res = m.convert(res, t, pos)
		store(m, p, res)
		return res
	}
}

func (c *compiler) compileCall(n *ast.Call) evalFn {
	pos := n.Pos()
	sym := n.Fun.Sym
	if sym == nil {
		return exprFail(pos, "unresolved function %q", n.Fun.Name)
	}
	argFns := make([]evalFn, len(n.Args))
	for i, a := range n.Args {
		argFns[i] = c.compileExpr(a)
	}
	if sym.Builtin {
		name := sym.Name
		slot := c.builtinSlot(name)
		ret := sym.Type.Fn.Ret
		retVoid := ret.IsVoid()
		return func(m *Machine) Value {
			m.step()
			args := m.getArgs(len(argFns))
			for i, f := range argFns {
				args[i] = f(m)
			}
			impl := m.builtinAt(slot, name, pos)
			v := impl(m, pos, args)
			m.putArgs(args)
			if retVoid {
				return Value{T: types.VoidType}
			}
			return m.convert(v, ret, pos)
		}
	}
	if sym.FuncIdx < 0 || sym.FuncIdx >= len(c.cp.funcs) {
		name := sym.Name
		return func(m *Machine) Value {
			m.step()
			m.failf(pos, "function %q has no body", name)
			return Value{}
		}
	}
	// Direct link to the callee's compiled form — no name or index lookup
	// per call (recursion works because the shell pass created every
	// compiledFunc before any body was lowered).
	callee := c.cp.funcs[sym.FuncIdx]
	return func(m *Machine) Value {
		m.step()
		args := m.getArgs(len(argFns))
		for i, f := range argFns {
			args[i] = f(m)
		}
		v := m.callCompiled(callee, args, pos)
		m.putArgs(args)
		return v
	}
}

// --- Lvalues ---

func (c *compiler) compileLvalue(e ast.Expr) clval {
	lv := c.compileLvalue1(e)
	// The canonical load-site id is a fact of the node, not of the
	// lowering shape; stamping it here covers every construction below.
	lv.lsid = sema.LoadSiteOf(e)
	return lv
}

func (c *compiler) compileLvalue1(e ast.Expr) clval {
	switch n := e.(type) {
	case *ast.Ident:
		sym := n.Sym
		if sym == nil {
			return lvalFail(n.Pos(), "unresolved identifier %q", n.Name)
		}
		pos := n.Pos()
		switch sym.Storage {
		case ast.StorageLocal, ast.StorageParam:
			off := sym.FrameOff
			name := sym.Name
			if idx, fast := c.cur.localIdx[off]; fast {
				return clval{
					ptr: func(m *Machine) core.Pointer {
						u := m.frame.LocalAt(idx)
						return core.Pointer{Addr: u.Base, Prov: u}
					},
					t:       sym.Type,
					trusted: true,
				}
			}
			return clval{
				ptr: func(m *Machine) core.Pointer {
					u := m.frame.Local(off)
					if u == nil {
						m.failf(pos, "internal: no frame slot for %q", name)
					}
					return core.Pointer{Addr: u.Base, Prov: u}
				},
				t:       sym.Type,
				trusted: true,
			}
		case ast.StorageGlobal:
			gi := sym.GlobalIdx
			return clval{
				ptr: func(m *Machine) core.Pointer {
					u := m.globals[gi]
					return core.Pointer{Addr: u.Base, Prov: u}
				},
				t:       sym.Type,
				trusted: true,
			}
		}
		return lvalFail(pos, "symbol %q is not addressable", sym.Name)
	case *ast.Unary:
		if n.Op != token.Star {
			return lvalFail(n.Pos(), "expression is not an lvalue")
		}
		x := c.compileExpr(n.X)
		return clval{
			ptr: func(m *Machine) core.Pointer { return x(m).Ptr },
			t:   n.Type(),
		}
	case *ast.Index:
		idx := c.compileExpr(n.Idx)
		es := n.Type().Size()
		// Indexing a named array fuses the base into the closure: the
		// element pointer comes straight off the frame slot or global
		// unit, with no intermediate decayed Value (a[i] is the hottest
		// lvalue shape in the corpus). Named-array bases are effect-free,
		// so the base-then-index evaluation order is preserved.
		if id, ok := n.X.(*ast.Ident); ok && id.Sym != nil && id.Sym.Type.IsArray() {
			switch id.Sym.Storage {
			case ast.StorageLocal, ast.StorageParam:
				if bi, fast := c.cur.localIdx[id.Sym.FrameOff]; fast {
					return clval{
						ptr: func(m *Machine) core.Pointer {
							u := m.frame.LocalAt(bi)
							i := idx(m)
							return core.Pointer{Addr: u.Base + uint64(i.I)*es, Prov: u}
						},
						t: n.Type(),
					}
				}
			case ast.StorageGlobal:
				gi := id.Sym.GlobalIdx
				return clval{
					ptr: func(m *Machine) core.Pointer {
						u := m.globals[gi]
						i := idx(m)
						return core.Pointer{Addr: u.Base + uint64(i.I)*es, Prov: u}
					},
					t: n.Type(),
				}
			}
		}
		base := c.compileExpr(n.X) // arrays decay in the base expression
		return clval{
			ptr: func(m *Machine) core.Pointer {
				b := base(m)
				i := idx(m)
				return core.Pointer{Addr: b.Ptr.Addr + uint64(i.I)*es, Prov: b.Ptr.Prov}
			},
			t: n.Type(),
		}
	case *ast.Member:
		foff := n.Field.Offset
		if n.Arrow {
			x := c.compileExpr(n.X)
			return clval{
				ptr: func(m *Machine) core.Pointer {
					v := x(m)
					return core.Pointer{Addr: v.Ptr.Addr + foff, Prov: v.Ptr.Prov}
				},
				t: n.Field.Type,
			}
		}
		base := c.compileLvalue(n.X)
		return clval{
			ptr: func(m *Machine) core.Pointer {
				bp := base.ptr(m)
				return core.Pointer{Addr: bp.Addr + foff, Prov: bp.Prov}
			},
			t:       n.Field.Type,
			trusted: base.trusted, // dot access inherits the base's trust
		}
	case *ast.StringLit:
		idx := n.LitIndex
		return clval{
			ptr: func(m *Machine) core.Pointer {
				u := m.literals[idx]
				return core.Pointer{Addr: u.Base, Prov: u}
			},
			t: n.Type(),
		}
	}
	return lvalFail(e.Pos(), "expression is not an lvalue (%T)", e)
}

// loadClval lowers a read through an lvalue whose pointer the caller has
// already computed: trusted accesses take the raw path, untrusted ones the
// policy-checked path — chosen here, not per execution.
func (c *compiler) loadClval(lv clval, pos token.Pos) func(*Machine, core.Pointer) Value {
	if lv.trusted {
		load := c.rawLoad(lv.t)
		return func(m *Machine, p core.Pointer) Value {
			return load(m, p.Prov, p.Addr-p.Prov.Base)
		}
	}
	return c.checkedLoad(lv.t, pos, lv.lsid)
}

// storeClval lowers a store of an already-converted value through an
// lvalue (the compiled analogue of storeLvalConverted).
func (c *compiler) storeClval(lv clval, pos token.Pos) func(*Machine, core.Pointer, Value) {
	t := lv.t
	if lv.trusted {
		return func(m *Machine, p core.Pointer, v Value) {
			m.storeRaw(p.Prov, p.Addr-p.Prov.Base, t, v)
		}
	}
	return func(m *Machine, p core.Pointer, v Value) {
		m.storeValue(p, t, v, pos)
	}
}

// storeClvalConvert lowers a store that converts to the lvalue's type
// first (the compiled analogue of storeLval).
func (c *compiler) storeClvalConvert(lv clval, pos token.Pos) func(*Machine, core.Pointer, Value) {
	t := lv.t
	if lv.trusted {
		return func(m *Machine, p core.Pointer, v Value) {
			m.storeRaw(p.Prov, p.Addr-p.Prov.Base, t, m.convert(v, t, pos))
		}
	}
	return func(m *Machine, p core.Pointer, v Value) {
		m.storeValue(p, t, m.convert(v, t, pos), pos)
	}
}

// rawLoad lowers a trusted (unchecked) load of type t: the size, shape,
// and signedness branches of loadRaw are resolved at lowering time, and
// pointer loads get a dedicated provenance-recovery site.
func (c *compiler) rawLoad(t *types.Type) func(*Machine, *mem.Unit, uint64) Value {
	size := t.Size()
	switch {
	case t.IsPointer():
		sid := c.siteFor(t)
		return func(m *Machine, u *mem.Unit, off uint64) Value {
			m.simCycles += AccessCycles
			addr := uint64(decodeLE(u.Data[off:off+8], false))
			prov := u.GetShadow(off)
			if prov == nil && addr != 0 {
				prov = m.findUnitSite(sid, addr)
			}
			return Value{T: t, Ptr: core.Pointer{Addr: addr, Prov: prov}}
		}
	case t.Kind == types.Struct:
		return func(m *Machine, u *mem.Unit, off uint64) Value {
			m.simCycles += AccessCycles
			b := make([]byte, size)
			copy(b, u.Data[off:off+size])
			return Value{T: t, Bytes: b}
		}
	default:
		dec := decodeFn(size, t.IsSigned())
		return func(m *Machine, u *mem.Unit, off uint64) Value {
			m.simCycles += AccessCycles
			return Value{T: t, I: dec(u.Data[off : off+size : off+size])}
		}
	}
}

// decodeFn returns the little-endian decoder for a scalar of static size
// and signedness — the per-byte loop of decodeLE resolved at lowering time
// into one fixed-width load. Scalar C types are 1/2/4/8 bytes; the
// fallback covers any other width identically to decodeLE.
func decodeFn(size uint64, signed bool) func(b []byte) int64 {
	switch size {
	case 1:
		if signed {
			return func(b []byte) int64 { return int64(int8(b[0])) }
		}
		return func(b []byte) int64 { return int64(b[0]) }
	case 2:
		if signed {
			return func(b []byte) int64 { return int64(int16(binary.LittleEndian.Uint16(b))) }
		}
		return func(b []byte) int64 { return int64(binary.LittleEndian.Uint16(b)) }
	case 4:
		if signed {
			return func(b []byte) int64 { return int64(int32(binary.LittleEndian.Uint32(b))) }
		}
		return func(b []byte) int64 { return int64(binary.LittleEndian.Uint32(b)) }
	case 8:
		return func(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }
	}
	return func(b []byte) int64 { return decodeLE(b, signed) }
}

// checkedLoad lowers a policy-checked load of type t: the cycle charge
// (words, check) and the value's shape are static; pointer loads get a
// provenance-recovery site. lsid is the canonical load-site id that primes
// the context-aware value strategy (sema.LoadSiteOf of the source node).
func (c *compiler) checkedLoad(t *types.Type, pos token.Pos, lsid int32) func(*Machine, core.Pointer) Value {
	size := t.Size()
	if size == 0 {
		return func(m *Machine, p core.Pointer) Value {
			m.failf(pos, "load of zero-sized type %s", t)
			return Value{}
		}
	}
	if t.Kind == types.Struct {
		return func(m *Machine, p core.Pointer) Value {
			buf := make([]byte, size)
			m.LoadBytes(p, buf, pos)
			return Value{T: t, Bytes: buf}
		}
	}
	words := uint64(size+7) / 8
	if words == 0 {
		words = 1
	}
	if t.IsPointer() {
		sid := c.siteFor(t)
		return func(m *Machine, p core.Pointer) Value {
			m.simCycles += words * AccessCycles
			if m.checked {
				m.simCycles += CheckCycles
			}
			m.primeSite(lsid, t, int(size))
			buf := m.scratch[:size]
			prov, err := m.acc.Load(p, buf, pos)
			if err != nil {
				m.fail(err)
			}
			addr := uint64(decodeLE(buf, false))
			if prov == nil && addr != 0 {
				prov = m.findUnitSite(sid, addr)
			}
			return Value{T: t, Ptr: core.Pointer{Addr: addr, Prov: prov}}
		}
	}
	dec := decodeFn(size, t.IsSigned())
	return func(m *Machine, p core.Pointer) Value {
		m.simCycles += words * AccessCycles
		if m.checked {
			m.simCycles += CheckCycles
		}
		m.primeSite(lsid, t, int(size))
		buf := m.scratch[:size]
		if _, err := m.acc.Load(p, buf, pos); err != nil {
			m.fail(err)
		}
		return Value{T: t, I: dec(buf)}
	}
}

// --- Operator specialization ---
//
// The generic m.compare / m.binaryOp / m.convert / m.addDelta entry points
// re-derive per execution what the static operand types already determine:
// whether either side is a pointer, the common arithmetic type, signedness,
// and the truncation width. When the static types pin those decisions, the
// lowerings below emit an operator-specialized closure guarded by a runtime
// type-identity check (pointer compares — the machine's values carry their
// static types by invariant); any value that defeats the guard falls back
// to the generic path, so results are bit-identical by construction.

// intOne / intZero are the comparison results (C int 1 / 0).
var (
	intOne  = Value{T: types.IntType, I: 1}
	intZero = Value{T: types.IntType, I: 0}
)

// runtimePtrType maps a static operand type to the pointer type its value
// carries at runtime: pointers keep their type, arrays decay. Nil for
// non-pointer operands.
func runtimePtrType(t *types.Type) *types.Type {
	switch {
	case t == nil:
		return nil
	case t.IsPointer():
		return t
	case t.IsArray():
		return types.PointerTo(t.Elem)
	}
	return nil
}

// compileCompare lowers a comparison with statically-determined operand
// shape; nil when the static types leave the shape open.
func compileCompare(op token.Kind, x, y evalFn, xt, yt *types.Type) evalFn {
	if xt != nil && xt == yt && xt.IsInteger() {
		return compileIntCompare(op, x, y, xt)
	}
	if xt != nil && yt != nil && xt.IsInteger() && yt.IsInteger() {
		return compileMixedIntCompare(op, x, y, xt, yt)
	}
	xpt, ypt := runtimePtrType(xt), runtimePtrType(yt)
	if xpt == nil && ypt == nil {
		return nil
	}
	// Pointer-vs-pointer or pointer-vs-integer: an unsigned address
	// compare (m.compare's pointer branch), with each side's shape static.
	intSide := func(t *types.Type) bool { return t != nil && t.IsInteger() }
	if (xpt != nil && (ypt != nil || intSide(yt))) ||
		(ypt != nil && (xpt != nil || intSide(xt))) {
		xr, yr := xpt, ypt
		if xr == nil {
			xr = xt
		}
		if yr == nil {
			yr = yt
		}
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xr || yv.T != yr {
				return m.compare(op, xv, yv)
			}
			var xa, ya uint64
			if xpt != nil {
				xa = xv.Ptr.Addr
			} else {
				xa = uint64(xv.I)
			}
			if ypt != nil {
				ya = yv.Ptr.Addr
			} else {
				ya = uint64(yv.I)
			}
			if cmpU(op, xa, ya) {
				return intOne
			}
			return intZero
		}
	}
	return nil
}

// compileIntCompare lowers a same-type integer comparison with static
// signedness.
func compileIntCompare(op token.Kind, x, y evalFn, t *types.Type) evalFn {
	if t.IsSigned() {
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != t || yv.T != t {
				return m.compare(op, xv, yv)
			}
			if cmpS(op, xv.I, yv.I) {
				return intOne
			}
			return intZero
		}
	}
	return func(m *Machine) Value {
		xv := x(m)
		yv := y(m)
		if xv.T != t || yv.T != t {
			return m.compare(op, xv, yv)
		}
		if cmpU(op, uint64(xv.I), uint64(yv.I)) {
			return intOne
		}
		return intZero
	}
}

// compileMixedIntCompare lowers a comparison of two different integer
// types — char against an int literal is the classic C idiom — with the
// usual-arithmetic common type and its signedness resolved at lowering
// time (m.compare's promotion branch).
func compileMixedIntCompare(op token.Kind, x, y evalFn, xt, yt *types.Type) evalFn {
	ct := types.UsualArith(promoteType(xt), promoteType(yt))
	if ct.IsSigned() {
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.compare(op, xv, yv)
			}
			if cmpS(op, types.Truncate(ct, xv.I), types.Truncate(ct, yv.I)) {
				return intOne
			}
			return intZero
		}
	}
	return func(m *Machine) Value {
		xv := x(m)
		yv := y(m)
		if xv.T != xt || yv.T != yt {
			return m.compare(op, xv, yv)
		}
		if cmpU(op, uint64(types.Truncate(ct, xv.I)), uint64(types.Truncate(ct, yv.I))) {
			return intOne
		}
		return intZero
	}
}

func cmpS(op token.Kind, a, b int64) bool {
	switch op {
	case token.Lt:
		return a < b
	case token.Gt:
		return a > b
	case token.Le:
		return a <= b
	case token.Ge:
		return a >= b
	case token.EqEq:
		return a == b
	}
	return a != b // NotEq: isComparison admits nothing else
}

func cmpU(op token.Kind, a, b uint64) bool {
	switch op {
	case token.Lt:
		return a < b
	case token.Gt:
		return a > b
	case token.Le:
		return a <= b
	case token.Ge:
		return a >= b
	case token.EqEq:
		return a == b
	}
	return a != b
}

// compileIntArith lowers pure integer arithmetic when the operand and
// result types are statically integer: the operator dispatch, signedness,
// the truncation width, and the conversions to the common type resolve at
// lowering time. The guard confirms the runtime types match the static
// ones; mismatches fall back to the generic m.binaryOp with the original
// values. Nil when the shape is not statically integer.
func compileIntArith(op token.Kind, x, y evalFn, rt, xt, yt *types.Type, pos token.Pos) evalFn {
	if rt == nil || xt == nil || yt == nil ||
		!rt.IsInteger() || !xt.IsInteger() || !yt.IsInteger() {
		return nil
	}
	signed := rt.IsSigned()
	// Operands of the common type need no conversion (the guard pins the
	// runtime type); narrower or wider ones truncate statically.
	needX, needY := xt != rt, yt != rt
	switch op {
	case token.Plus:
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi, yi := xv.I, yv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			if needY {
				yi = types.Truncate(rt, yi)
			}
			return Value{T: rt, I: types.Truncate(rt, xi+yi)}
		}
	case token.Minus:
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi, yi := xv.I, yv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			if needY {
				yi = types.Truncate(rt, yi)
			}
			return Value{T: rt, I: types.Truncate(rt, xi-yi)}
		}
	case token.Star:
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi, yi := xv.I, yv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			if needY {
				yi = types.Truncate(rt, yi)
			}
			return Value{T: rt, I: types.Truncate(rt, xi*yi)}
		}
	case token.Amp:
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi, yi := xv.I, yv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			if needY {
				yi = types.Truncate(rt, yi)
			}
			return Value{T: rt, I: types.Truncate(rt, xi&yi)}
		}
	case token.Pipe:
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi, yi := xv.I, yv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			if needY {
				yi = types.Truncate(rt, yi)
			}
			return Value{T: rt, I: types.Truncate(rt, xi|yi)}
		}
	case token.Caret:
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi, yi := xv.I, yv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			if needY {
				yi = types.Truncate(rt, yi)
			}
			return Value{T: rt, I: types.Truncate(rt, xi^yi)}
		}
	case token.Slash, token.Percent:
		div := op == token.Slash
		zmsg := "modulo by zero"
		if div {
			zmsg = "division by zero"
		}
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi, yi := xv.I, yv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			if needY {
				yi = types.Truncate(rt, yi)
			}
			if yi == 0 {
				m.failf(pos, "%s", zmsg)
			}
			var r int64
			switch {
			case signed && div:
				r = xi / yi
			case signed:
				r = xi % yi
			case div:
				r = int64(uint64(xi) / uint64(yi))
			default:
				r = int64(uint64(xi) % uint64(yi))
			}
			return Value{T: rt, I: types.Truncate(rt, r)}
		}
	case token.Shl:
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi := xv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			// The shift count is the right operand's unconverted low six
			// bits (m.shiftCount) — truncation never alters them.
			return Value{T: rt, I: types.Truncate(rt, xi<<uint64(yv.I&63))}
		}
	case token.Shr:
		if signed {
			return func(m *Machine) Value {
				xv := x(m)
				yv := y(m)
				if xv.T != xt || yv.T != yt {
					return m.binaryOp(op, xv, yv, rt, pos)
				}
				xi := xv.I
				if needX {
					xi = types.Truncate(rt, xi)
				}
				return Value{T: rt, I: types.Truncate(rt, xi>>uint64(yv.I&63))}
			}
		}
		mask := ^uint64(0) >> (64 - rt.Size()*8)
		return func(m *Machine) Value {
			xv := x(m)
			yv := y(m)
			if xv.T != xt || yv.T != yt {
				return m.binaryOp(op, xv, yv, rt, pos)
			}
			xi := xv.I
			if needX {
				xi = types.Truncate(rt, xi)
			}
			ux := uint64(xi) & mask
			return Value{T: rt, I: types.Truncate(rt, int64(ux>>uint64(yv.I&63)))}
		}
	}
	return nil
}

// compilePtrArith lowers pointer arithmetic (pointer ± integer, pointer
// difference) with the element size static. Nil when the static types
// don't pin the pointer shape.
func compilePtrArith(op token.Kind, x, y evalFn, rt, xt, yt *types.Type, pos token.Pos) evalFn {
	xpt, ypt := runtimePtrType(xt), runtimePtrType(yt)
	elemSize := func(pt *types.Type) int64 {
		es := int64(pt.Elem.Size())
		if es == 0 {
			es = 1
		}
		return es
	}
	intT := func(t *types.Type) bool { return t != nil && t.IsInteger() }
	switch op {
	case token.Plus:
		if xpt != nil && intT(yt) {
			es := elemSize(xpt)
			return func(m *Machine) Value {
				xv := x(m)
				yv := y(m)
				if xv.T != xpt || yv.T != yt {
					return m.binaryOp(token.Plus, xv, yv, rt, pos)
				}
				return Value{T: xpt, Ptr: core.Pointer{
					Addr: xv.Ptr.Addr + uint64(yv.I*es), Prov: xv.Ptr.Prov,
				}}
			}
		}
		if ypt != nil && intT(xt) {
			es := elemSize(ypt)
			return func(m *Machine) Value {
				xv := x(m)
				yv := y(m)
				if xv.T != xt || yv.T != ypt {
					return m.binaryOp(token.Plus, xv, yv, rt, pos)
				}
				return Value{T: ypt, Ptr: core.Pointer{
					Addr: yv.Ptr.Addr + uint64(xv.I*es), Prov: yv.Ptr.Prov,
				}}
			}
		}
	case token.Minus:
		if xpt != nil && ypt != nil {
			es := elemSize(xpt)
			return func(m *Machine) Value {
				xv := x(m)
				yv := y(m)
				if xv.T != xpt || yv.T != ypt {
					return m.binaryOp(token.Minus, xv, yv, rt, pos)
				}
				return Value{T: types.LongType,
					I: (int64(xv.Ptr.Addr) - int64(yv.Ptr.Addr)) / es}
			}
		}
		if xpt != nil && intT(yt) {
			es := elemSize(xpt)
			return func(m *Machine) Value {
				xv := x(m)
				yv := y(m)
				if xv.T != xpt || yv.T != yt {
					return m.binaryOp(token.Minus, xv, yv, rt, pos)
				}
				return Value{T: xpt, Ptr: core.Pointer{
					Addr: xv.Ptr.Addr + uint64(-yv.I*es), Prov: xv.Ptr.Prov,
				}}
			}
		}
	}
	return nil
}

// compileAddDelta lowers the ++/-- bump for a statically-typed operand:
// integer bumps truncate with a static width, pointer bumps scale by a
// static element size (m.addDelta with its branches resolved at lowering
// time). The guard falls back to the generic path on type mismatch.
func compileAddDelta(t *types.Type, delta int64, pos token.Pos) func(*Machine, Value) Value {
	switch {
	case t != nil && t.IsInteger():
		return func(m *Machine, v Value) Value {
			if v.T != t {
				return m.addDelta(v, delta, pos)
			}
			return Value{T: t, I: types.Truncate(t, v.I+delta)}
		}
	case t != nil && t.IsPointer():
		es := int64(t.Elem.Size())
		if es == 0 {
			es = 1
		}
		d := uint64(delta * es)
		return func(m *Machine, v Value) Value {
			if v.T != t {
				return m.addDelta(v, delta, pos)
			}
			return Value{T: t, Ptr: core.Pointer{Addr: v.Ptr.Addr + d, Prov: v.Ptr.Prov}}
		}
	}
	return func(m *Machine, v Value) Value { return m.addDelta(v, delta, pos) }
}
