package interp_test

// BenchmarkDispatch measures the execution engines head-to-head over the
// integration corpus: the AST-walking reference evaluator (per-node type
// switches, per-execution identifier resolution), the compiled closure
// IR (everything static resolved at lowering time), and the ahead-of-time
// generated Go code (internal/gencorpus — no interpretation dispatch at
// all). Same programs, same modes, same simulated-cycle counts — only
// the Go-level dispatch cost differs.
//
//	go test ./internal/interp -bench Dispatch -benchmem

import (
	"testing"

	"focc/internal/core"
	"focc/internal/corpus"
	"focc/internal/interp"
)

var dispatchModes = []core.Mode{
	core.Standard,
	core.BoundsCheck,
	core.FailureOblivious,
}

func benchEngine(b *testing.B, src, engine string) {
	for _, mode := range dispatchModes {
		b.Run(mode.String(), func(b *testing.B) {
			prog := compileWithCPP(b, src)
			cfg := engineConfig(b, engine, prog, src)
			cfg.Mode = mode
			m, err := interp.New(prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res := m.Run(); res.Outcome != interp.OutcomeOK {
				b.Fatalf("warm-up: %v (%v)", res.Outcome, res.Err)
			}
			start := m.SimCycles()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if res := m.Call("main"); res.Outcome != interp.OutcomeOK {
					b.Fatalf("%v (%v)", res.Outcome, res.Err)
				}
			}
			b.StopTimer()
			// sim-ms/op is deterministic and engine-independent; benchdiff
			// checks it exactly, pinning cycle parity per engine in CI.
			simMs := interp.SimSeconds(m.SimCycles()-start) * 1e3 / float64(b.N)
			b.ReportMetric(simMs, "sim-ms/op")
		})
	}
}

func BenchmarkDispatchTreeWalk(b *testing.B) {
	for _, cp := range corpusSources() {
		b.Run(cp.Name, func(b *testing.B) { benchEngine(b, cp.Src, "tree-walk") })
	}
}

func BenchmarkDispatchCompiled(b *testing.B) {
	for _, cp := range corpusSources() {
		b.Run(cp.Name, func(b *testing.B) { benchEngine(b, cp.Src, "compiled") })
	}
}

func BenchmarkDispatchCodegen(b *testing.B) {
	for _, cp := range corpusSources() {
		b.Run(cp.Name, func(b *testing.B) { benchEngine(b, cp.Src, "codegen") })
	}
}

// BenchmarkCompileLowering measures the one-time lowering cost itself —
// the price a Program pays once, amortized across every machine in a pool.
func BenchmarkCompileLowering(b *testing.B) {
	prog := compileWithCPP(b, corpus.SrcBase64)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if cp := interp.Compile(prog); cp == nil {
			b.Fatal("nil compile")
		}
	}
}
