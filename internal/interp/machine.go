// Package interp executes analyzed focc programs in a simulated address
// space, routing every C-level load and store through a core.Accessor — the
// pluggable checking + continuation code that implements the paper's
// compilation modes.
package interp

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"focc/internal/cc/ast"
	"focc/internal/cc/sema"
	"focc/internal/cc/token"
	"focc/internal/cc/types"
	"focc/internal/core"
	"focc/internal/mem"
	"focc/internal/strategy"
)

// Value is a runtime value: an integer (I, sign-extended to 64 bits), a
// pointer (Ptr), or a struct (Bytes).
type Value struct {
	T     *types.Type
	I     int64
	Ptr   core.Pointer
	Bytes []byte // struct-by-value payload
}

// Int returns an int Value.
func Int(v int64) Value { return Value{T: types.IntType, I: v} }

// Long returns a long Value.
func Long(v int64) Value { return Value{T: types.LongType, I: v} }

// IsNull reports whether a pointer value is null.
func (v Value) IsNull() bool { return v.Ptr.Addr == 0 }

// Truthy reports C truthiness.
func (v Value) Truthy() bool {
	if v.T != nil && v.T.IsPointer() {
		return v.Ptr.Addr != 0
	}
	return v.I != 0
}

// BuiltinFunc is a host-provided (libc) function. Builtins receive the call
// site position so memory errors inside libc are attributed to the caller.
type BuiltinFunc func(m *Machine, pos token.Pos, args []Value) Value

// Outcome classifies how an execution ended.
type Outcome int

// Outcomes.
const (
	// OutcomeOK: the call completed normally.
	OutcomeOK Outcome = iota
	// OutcomeSegfault: simulated SIGSEGV (Standard mode).
	OutcomeSegfault
	// OutcomeHeapCorruption: allocator abort on smashed headers.
	OutcomeHeapCorruption
	// OutcomeStackSmash: clobbered canary detected at return.
	OutcomeStackSmash
	// OutcomeBadFree: free() of an invalid pointer.
	OutcomeBadFree
	// OutcomeMemErrorTermination: the BoundsCheck policy exited with a
	// memory error message (the paper's safe-C behaviour).
	OutcomeMemErrorTermination
	// OutcomeHang: the step budget was exhausted (infinite loop).
	OutcomeHang
	// OutcomeExit: the program called exit().
	OutcomeExit
	// OutcomeStackOverflow: stack arena exhausted.
	OutcomeStackOverflow
	// OutcomeOOM: heap region exhausted.
	OutcomeOOM
	// OutcomeRuntimeError: other fatal runtime error (division by zero,
	// missing function, internal limits).
	OutcomeRuntimeError
	// OutcomeDeadline: the call was canceled by its context (deadline or
	// cancellation) before completing. Unlike the crash outcomes the
	// machine survives: the stack is unwound and the instance keeps
	// serving further calls.
	OutcomeDeadline
	// OutcomeRewound: the rewind policy (core.ModeRewind) detected a
	// memory error and rolled the address space back to the checkpoint
	// taken at request entry. Only this request failed — no value was
	// manufactured and no mutation survived; the machine stays alive and
	// keeps serving.
	OutcomeRewound
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeSegfault:
		return "segfault"
	case OutcomeHeapCorruption:
		return "heap-corruption"
	case OutcomeStackSmash:
		return "stack-smash"
	case OutcomeBadFree:
		return "bad-free"
	case OutcomeMemErrorTermination:
		return "memory-error-termination"
	case OutcomeHang:
		return "hang"
	case OutcomeExit:
		return "exit"
	case OutcomeStackOverflow:
		return "stack-overflow"
	case OutcomeOOM:
		return "out-of-memory"
	case OutcomeRuntimeError:
		return "runtime-error"
	case OutcomeDeadline:
		return "deadline-exceeded"
	case OutcomeRewound:
		return "rewound"
	}
	return "unknown"
}

// Crashed reports whether the outcome represents abnormal termination of
// the process. A deadline-exceeded or rewound call is not a crash: the
// machine unwinds (or rolls back) and keeps serving.
func (o Outcome) Crashed() bool {
	return o != OutcomeOK && o != OutcomeExit && o != OutcomeDeadline &&
		o != OutcomeRewound
}

// Result is the outcome of a Run or Call.
type Result struct {
	Outcome  Outcome
	Value    Value // return value when Outcome is OutcomeOK
	ExitCode int   // when Outcome is OutcomeExit
	Err      error // detail for abnormal outcomes
	Steps    uint64
}

// Config configures a Machine.
type Config struct {
	Mode core.Mode
	// Gen supplies manufactured values; nil means the paper's
	// small-integer sequence.
	Gen core.ValueGenerator
	// Strategy is the context-aware manufactured-value engine consulted
	// in ModeFOContext (per-load-site strategies; see internal/strategy).
	// Nil in that mode provisions the default engine for the program:
	// classified site table, context-informed defaults, Gen (or the
	// paper's sequence) as the fallback strategy. Ignored in other modes.
	Strategy core.ContextGenerator
	// Log receives memory-error events; nil allocates a fresh log.
	Log *core.EventLog
	// Out receives program output (printf); nil discards it.
	Out io.Writer
	// MaxSteps bounds interpreter steps per Call; 0 means DefaultMaxSteps.
	MaxSteps uint64
	// StackSize overrides the stack arena size.
	StackSize uint64
	// Builtins are the host (libc) functions.
	Builtins map[string]BuiltinFunc
	// WrapAccessor, when non-nil, wraps the machine's policy accessor at
	// creation time. It is the fault-injection hook point
	// (internal/inject): the wrapper sees every interpreter-level load and
	// store before (or instead of) the underlying policy. Production code
	// leaves it nil, which costs nothing.
	WrapAccessor func(core.Accessor) core.Accessor
	// Compiled, when non-nil, is the program's lowered instruction IR
	// (see Compile): the machine executes the pre-resolved closure tree
	// instead of walking the AST. The IR is immutable and shared — one
	// Compile result serves every machine of the program, concurrently.
	// fo.Program attaches its program-level cached IR automatically.
	Compiled *CompiledProgram
	// TreeWalk forces the retained AST-walking reference engine even when
	// Compiled is set. It exists for differential testing and engine
	// benchmarks; production configurations leave it false.
	TreeWalk bool
	// Generated, when non-nil, is the ahead-of-time generated engine for
	// the program (focc -emit-go): the machine dispatches calls to the
	// emitted Go functions instead of interpreting. Takes precedence over
	// Compiled; TreeWalk overrides both. The generated code must have been
	// emitted from the exact source this program was analyzed from
	// (fo.Program.NewMachine validates the hash).
	Generated *GenProgram
	// UseGenerated asks fo.Program.NewMachine to resolve the registered
	// generated engine for the program's source hash (RegisterGenerated)
	// and fail with a regeneration hint if none is linked in. Resolution
	// happens in the fo layer, where the source identity lives; interp.New
	// only honors the resolved Generated program.
	UseGenerated bool
}

// DefaultMaxSteps is the per-call step budget used to detect hangs.
const DefaultMaxSteps = 50_000_000

// Machine executes one program instance.
type Machine struct {
	prog *sema.Program
	as   *mem.AddressSpace
	acc  core.Accessor
	log  *core.EventLog
	out  io.Writer

	globals  []*mem.Unit
	literals []*mem.Unit
	builtins map[string]BuiltinFunc

	steps     uint64
	maxSteps  uint64
	simCycles uint64
	checked   bool // mode performs per-access checks

	// ctxGen is the context-aware manufactured-value engine (ModeFOContext
	// only, nil otherwise). Every checked load primes it with the
	// canonical load-site id before consulting the accessor; see
	// primeSite.
	ctxGen core.ContextGenerator

	// retVal / gotoLabel / frame carry control-flow and frame state
	// during execution.
	retVal    Value
	gotoLabel string
	frame     *mem.Frame

	specCache map[*ast.FuncDecl]*frameSpec
	hostState map[string]any

	// cprog is the shared compiled instruction IR (nil: tree-walk). csite
	// holds this machine's provenance-recovery caches for the IR's access
	// sites (slice-indexed by compile-time site id — the compiled analogue
	// of siteCache), and builtinSlots memoizes builtin resolution per
	// compile-time call-site slot.
	cprog        *CompiledProgram
	csite        []mem.LookupCache
	builtinSlots []BuiltinFunc

	// gprog is the ahead-of-time generated engine (nil: tree-walk or
	// compiled IR). It shares csite/builtinSlots with the compiled engine
	// — at most one of cprog/gprog is active per machine.
	gprog *GenProgram

	// luCache is the machine-wide monomorphic (last-unit) lookup cache,
	// and siteCache holds one cache line per AST access site — both
	// consulted before the object table on the slow pointer-provenance
	// recovery paths. See mem/fastpath.go for the coherence contract.
	luCache   mem.LookupCache
	siteCache map[ast.Node]*mem.LookupCache

	// argFree recycles argument slices across evalCall invocations.
	argFree [][]Value

	// scratch stages scalar loads/stores so the hot access path performs
	// no allocations (the interpreter is single-threaded per machine).
	scratch  [8]byte
	scratch2 [8]byte

	dead bool // a previous Call crashed; the process is gone

	// batchCkpt is the batch-granularity rewind checkpoint
	// (BeginBatchEpoch): while it is set, top-level calls share it instead
	// of opening per-call checkpoints. Single-goroutine like the rest of
	// the machine.
	batchCkpt *mem.Checkpoint

	// cancel is the cancellation hook: set (from any goroutine) by the
	// watcher BindContext installs, polled by the step loop. cancelCtx
	// holds the bound context so the deadline result can report ctx.Err().
	// Everything else on the machine is single-goroutine.
	cancel    atomic.Bool
	cancelCtx context.Context
}

// panics used for non-local exits inside the evaluator.
type (
	execPanic   struct{ err error }
	exitPanic   struct{ code int }
	hangPanic   struct{}
	cancelPanic struct{}
)

// runtimeErr is a fatal runtime error that is not a memory fault.
type runtimeErr struct {
	Pos token.Pos
	Msg string
}

func (e *runtimeErr) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// New creates a machine for prog and performs program startup (global and
// literal layout plus initializers).
func New(prog *sema.Program, cfg Config) (*Machine, error) {
	stackSize := cfg.StackSize
	if stackSize == 0 {
		stackSize = mem.DefaultStackSize
	}
	as := mem.NewWithStack(stackSize)
	log := cfg.Log
	if log == nil {
		log = core.NewEventLog(0)
	}
	gen := cfg.Gen
	if gen == nil {
		gen = core.NewSmallIntGenerator()
	}
	ctxGen := cfg.Strategy
	if cfg.Mode == core.ModeFOContext {
		if ctxGen == nil {
			ctxGen = strategy.NewEngine(strategy.Classify(prog), nil, cfg.Gen)
		}
		gen = ctxGen
	} else {
		ctxGen = nil
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	acc := core.New(cfg.Mode, as, gen, log)
	if cfg.WrapAccessor != nil {
		acc = cfg.WrapAccessor(acc)
	}
	m := &Machine{
		prog:     prog,
		as:       as,
		acc:      acc,
		log:      log,
		out:      out,
		builtins: cfg.Builtins,
		maxSteps: maxSteps,
		checked:  cfg.Mode != core.Standard,
		ctxGen:   ctxGen,
	}
	switch {
	case cfg.Generated != nil && !cfg.TreeWalk:
		m.gprog = cfg.Generated
		if n := cfg.Generated.NumSites; n > 0 {
			m.csite = make([]mem.LookupCache, n)
		}
		if n := len(cfg.Generated.Builtins); n > 0 {
			m.builtinSlots = make([]BuiltinFunc, n)
		}
	case cfg.Compiled != nil && !cfg.TreeWalk:
		if cfg.Compiled.prog != prog {
			return nil, fmt.Errorf("compiled IR belongs to a different program")
		}
		m.cprog = cfg.Compiled
		if n := cfg.Compiled.numSites; n > 0 {
			m.csite = make([]mem.LookupCache, n)
		}
		if n := len(cfg.Compiled.builtinNames); n > 0 {
			m.builtinSlots = make([]BuiltinFunc, n)
		}
	}
	m.literals = make([]*mem.Unit, len(prog.Literals))
	for i, s := range prog.Literals {
		m.literals[i] = as.InternLiteral(s)
	}
	m.globals = make([]*mem.Unit, len(prog.Globals))
	for i, g := range prog.Globals {
		size := g.T.Size()
		if size == 0 {
			size = 1
		}
		m.globals[i] = as.AllocGlobal(g.Name, size)
	}
	for i, g := range prog.Globals {
		if g.Init != nil {
			if err := m.initGlobal(m.globals[i], g.T, g.Init); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// AddressSpace exposes the simulated memory (for libc and tests).
func (m *Machine) AddressSpace() *mem.AddressSpace { return m.as }

// Accessor exposes the active memory policy (for libc).
func (m *Machine) Accessor() core.Accessor { return m.acc }

// Mode returns the machine's execution mode.
func (m *Machine) Mode() core.Mode { return m.acc.Mode() }

// Log returns the memory-error event log.
func (m *Machine) Log() *core.EventLog { return m.log }

// Out returns the program output writer.
func (m *Machine) Out() io.Writer { return m.out }

// Steps returns the steps consumed by the last Call.
func (m *Machine) Steps() uint64 { return m.steps }

// Dead reports whether a previous call crashed this machine ("process").
func (m *Machine) Dead() bool { return m.dead }

// Kill marks the machine dead, modeling external process termination
// (chaos injection: a supervisor killing the instance between requests).
// Subsequent calls fail exactly as after a crash. Unlike the cancellation
// hook, Kill is not synchronized — call it only from the goroutine that
// owns the machine, between calls.
func (m *Machine) Kill() { m.dead = true }

// initGlobal writes a constant initializer into a global unit at startup
// (trusted, no policy involved).
func (m *Machine) initGlobal(u *mem.Unit, t *types.Type, init ast.Expr) error {
	return m.writeInit(u, 0, t, init)
}

func (m *Machine) writeInit(u *mem.Unit, off uint64, t *types.Type, init ast.Expr) error {
	switch iv := init.(type) {
	case *ast.IntLit:
		putLEBytes(u.Data[off:off+t.Size()], iv.Val)
		return nil
	case *ast.StringLit:
		lit := m.literals[iv.LitIndex]
		if t.Kind == types.Array {
			copy(u.Data[off:off+t.Size()], lit.Data)
			return nil
		}
		// char *p = "s": store the literal's address.
		putLEBytes(u.Data[off:off+8], int64(lit.Base))
		u.SetShadow(off, lit)
		return nil
	case *ast.InitList:
		switch t.Kind {
		case types.Array:
			es := t.Elem.Size()
			for i, e := range iv.Elems {
				if err := m.writeInit(u, off+uint64(i)*es, t.Elem, e); err != nil {
					return err
				}
			}
			return nil
		case types.Struct:
			for i, e := range iv.Elems {
				if i >= len(t.Rec.Fields) {
					break
				}
				f := t.Rec.Fields[i]
				if err := m.writeInit(u, off+f.Offset, f.Type, e); err != nil {
					return err
				}
			}
			return nil
		default:
			if len(iv.Elems) == 1 {
				return m.writeInit(u, off, t, iv.Elems[0])
			}
		}
	}
	return fmt.Errorf("unsupported global initializer at %s", init.Pos())
}

func putLEBytes(buf []byte, v int64) {
	switch len(buf) {
	case 1:
		buf[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(buf, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(buf, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(buf, uint64(v))
	default:
		for i := range buf {
			buf[i] = byte(v >> (8 * uint(i)))
		}
	}
}

// Run executes main() and returns its result.
func (m *Machine) Run() Result { return m.Call("main") }

// RunContext executes main(), canceling the execution when ctx is done.
func (m *Machine) RunContext(ctx context.Context) Result {
	return m.CallContext(ctx, "main")
}

// Call invokes a named C function with the given argument values. The step
// counter is reset per call. After a crash the machine is dead and further
// calls return the crash outcome immediately (the "process" is gone).
func (m *Machine) Call(name string, args ...Value) Result {
	return m.call(name, args)
}

// CallContext is Call with cancellation: when ctx is done the interpreter
// aborts at the next step-budget poll, unwinds the simulated stack, and
// returns OutcomeDeadline. The machine stays alive and can serve further
// calls — this is the per-request deadline hook the serving engine uses.
func (m *Machine) CallContext(ctx context.Context, name string, args ...Value) Result {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{Outcome: OutcomeDeadline, Err: err}
		}
		defer m.BindContext(ctx)()
	}
	return m.call(name, args)
}

// BindContext installs ctx as the cancellation source for every call made
// until the returned release function is invoked. It lets a driver bind one
// context around a multi-call request (see servers.Instance.HandleContext).
// The release function must be called from the machine's own goroutine.
func (m *Machine) BindContext(ctx context.Context) (release func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	if ctx == m.cancelCtx {
		// Already bound to exactly this context (a batch-scope bind around
		// per-request binds of the engine's shutdown context): the existing
		// watcher covers it, so the nested bind is free and its release is
		// a no-op — the outer bind owns the watcher's lifetime.
		return func() {}
	}
	m.cancelCtx = ctx
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			m.cancel.Store(true)
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-done
		m.cancel.Store(false)
		m.cancelCtx = nil
	}
}

// BeginBatchEpoch opens a batch-granularity checkpoint epoch for the
// rewind policy: until EndBatchEpoch (or a rewind), top-level calls share
// one checkpoint instead of opening their own, amortizing the
// checkpoint's fixed cost across a batch of small requests. A detected
// memory error during the epoch rewinds to the epoch's beginning —
// rolling back every call made under it — and consumes the epoch, so the
// driver re-arms with a fresh BeginBatchEpoch before the next call (the
// serving engine does this before every batched sub-request, making the
// call idempotent while an epoch is already open). No-op outside
// ModeRewind, on a dead machine, and when an epoch is already active.
// Must be called between calls (never with guest frames live), from the
// machine's own goroutine.
func (m *Machine) BeginBatchEpoch() {
	if m.dead || m.batchCkpt != nil || m.acc.Mode() != core.ModeRewind {
		return
	}
	m.batchCkpt = m.as.BeginCheckpoint()
}

// EndBatchEpoch commits the open batch epoch, if any: the mutations of
// every call made under it become permanent and the undo log is released.
// Safe to call when no epoch is active (a rewind mid-batch consumes the
// epoch) and on a machine that died mid-batch (committing releases the
// undo log; a dead machine's state is never read again).
func (m *Machine) EndBatchEpoch() {
	if m.batchCkpt == nil {
		return
	}
	m.as.Commit(m.batchCkpt)
	m.batchCkpt = nil
}

func (m *Machine) call(name string, args []Value) (res Result) {
	if m.dead {
		return Result{Outcome: OutcomeRuntimeError,
			Err: fmt.Errorf("machine is dead (previous call crashed)")}
	}
	if m.cancel.Load() {
		return Result{Outcome: OutcomeDeadline, Err: m.cancelErr()}
	}
	m.steps = 0
	entrySP := m.as.SP()
	savedRet, savedFrame, savedGoto := m.retVal, m.frame, m.gotoLabel
	// The rewind policy checkpoints the address space at the request
	// boundary: a detected memory error rolls every mutation back
	// (OutcomeRewound below); every other exit — normal return, exit(),
	// deadline, even a crash — commits. The checkpoint machinery charges
	// no simulated cycles: the cost model's decision points are unchanged,
	// and the policy's real-world overhead is measured in wall-clock
	// benchmarks instead.
	//
	// Under an open batch epoch (BeginBatchEpoch) the call joins the
	// epoch's checkpoint instead of opening its own: commit is deferred to
	// EndBatchEpoch, and a rewind restores the epoch's beginning and
	// consumes the epoch (epochOwned guards both commit sites below).
	var ckpt *mem.Checkpoint
	epochOwned := false
	if m.acc.Mode() == core.ModeRewind {
		if m.batchCkpt != nil {
			ckpt, epochOwned = m.batchCkpt, true
		} else {
			ckpt = m.as.BeginCheckpoint()
		}
	}
	defer func() {
		res.Steps = m.steps
		r := recover()
		if r == nil {
			if ckpt != nil && !epochOwned {
				m.as.Commit(ckpt)
			}
			return
		}
		switch p := r.(type) {
		case exitPanic:
			res = Result{Outcome: OutcomeExit, ExitCode: p.code}
		case hangPanic:
			res = Result{Outcome: OutcomeHang,
				Err: fmt.Errorf("step budget of %d exhausted (infinite loop?)", m.maxSteps)}
			m.dead = true
		case cancelPanic:
			// Abandon the in-flight frames and restore the pre-call frame
			// state: the "process" survives a canceled request.
			m.as.UnwindTo(entrySP)
			m.retVal, m.frame, m.gotoLabel = savedRet, savedFrame, savedGoto
			res = Result{Outcome: OutcomeDeadline, Err: m.cancelErr()}
		case execPanic:
			if ra, ok := p.err.(*core.RewindAbort); ok && ckpt != nil {
				// Rewind-and-discard: restore the checkpoint (stack
				// unwind included) and the pre-call frame state, and
				// fail only this request. The machine stays alive. When
				// the checkpoint is a batch epoch's, the rewind undoes
				// every call made under the epoch and consumes it — the
				// driver re-arms before its next call.
				m.as.Rewind(ckpt)
				ckpt = nil
				if epochOwned {
					m.batchCkpt = nil
				}
				m.retVal, m.frame, m.gotoLabel = savedRet, savedFrame, savedGoto
				res = Result{Outcome: OutcomeRewound, Err: ra}
				break
			}
			res = Result{Outcome: classify(p.err), Err: p.err}
			if res.Outcome.Crashed() {
				m.dead = true
			}
		default:
			panic(r)
		}
		if ckpt != nil && !epochOwned {
			m.as.Commit(ckpt)
		}
		res.Steps = m.steps
	}()

	hostPos := token.Pos{File: "<host>", Line: 1, Col: 1}
	if m.gprog != nil {
		fn, ok := m.gprog.Funcs[name]
		if !ok {
			return Result{Outcome: OutcomeRuntimeError,
				Err: fmt.Errorf("no function %q in program", name)}
		}
		v := fn(m, args, hostPos)
		return Result{Outcome: OutcomeOK, Value: v}
	}
	if m.cprog != nil {
		cf, ok := m.cprog.byName[name]
		if !ok {
			return Result{Outcome: OutcomeRuntimeError,
				Err: fmt.Errorf("no function %q in program", name)}
		}
		v := m.callCompiled(cf, args, hostPos)
		return Result{Outcome: OutcomeOK, Value: v}
	}
	fd, ok := m.prog.FuncMap[name]
	if !ok {
		return Result{Outcome: OutcomeRuntimeError,
			Err: fmt.Errorf("no function %q in program", name)}
	}
	v := m.callFunction(fd, args, hostPos)
	return Result{Outcome: OutcomeOK, Value: v}
}

// cancelErr reports why the bound context canceled the call.
func (m *Machine) cancelErr() error {
	if m.cancelCtx != nil {
		if err := m.cancelCtx.Err(); err != nil {
			return err
		}
	}
	return context.Canceled
}

func classify(err error) Outcome {
	switch e := err.(type) {
	case *mem.Fault:
		switch e.Kind {
		case mem.FaultSegv:
			return OutcomeSegfault
		case mem.FaultHeapCorrupt:
			return OutcomeHeapCorruption
		case mem.FaultStackSmash:
			return OutcomeStackSmash
		case mem.FaultBadFree:
			return OutcomeBadFree
		case mem.FaultStackOverflow:
			return OutcomeStackOverflow
		case mem.FaultOOM:
			return OutcomeOOM
		}
		return OutcomeSegfault
	case *core.MemError:
		return OutcomeMemErrorTermination
	case *runtimeErr:
		return OutcomeRuntimeError
	}
	return OutcomeRuntimeError
}

// fail aborts execution with err.
func (m *Machine) fail(err error) {
	panic(execPanic{err: err})
}

// failf aborts with a runtime error.
func (m *Machine) failf(pos token.Pos, format string, args ...any) {
	m.fail(&runtimeErr{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Exit terminates the program with the given status (used by libc exit()).
func (m *Machine) Exit(code int) { panic(exitPanic{code: code}) }

// cancelCheckMask throttles the cancellation poll to every 1024 interpreter
// steps, keeping the atomic load off the per-statement hot path.
const cancelCheckMask = 1<<10 - 1

// step consumes interpreter budget, detects hangs, and polls the
// cancellation hook.
func (m *Machine) step() {
	m.steps++
	m.simCycles += StepCycles
	if m.steps > m.maxSteps {
		panic(hangPanic{})
	}
	if m.steps&cancelCheckMask == 0 && m.cancel.Load() {
		panic(cancelPanic{})
	}
}

// callFunction pushes a frame, binds parameters, executes the body, and
// pops the frame (detecting canary smashes at return, like a real epilogue).
func (m *Machine) callFunction(fd *ast.FuncDecl, args []Value, pos token.Pos) Value {
	m.step()
	if len(args) != len(fd.Params) {
		m.failf(pos, "call of %q with %d args (want %d)", fd.Name, len(args), len(fd.Params))
	}
	spec := m.frameSpec(fd)
	frame, fault := m.as.PushFrame(spec.canary, fd.FrameSize, spec.locals)
	if fault != nil {
		m.fail(fault)
	}
	for i, p := range fd.Params {
		v := m.convert(args[i], p.Type, pos)
		m.storeRaw(frame.Local(p.FrameOff), 0, p.Type, v)
	}
	savedRet, savedFrame := m.retVal, m.frame
	m.retVal = Value{}
	m.frame = frame
	ctl := m.execBody(fd)
	if ctl == ctrlGoto {
		m.failf(fd.Body.Pos(), "goto label %q not found on execution path", m.gotoLabel)
	}
	ret := m.retVal
	m.retVal, m.frame = savedRet, savedFrame
	if fault := m.as.PopFrame(frame); fault != nil {
		// Stack smash detected when the function returns — only
		// possible in Standard mode; checked modes never let writes
		// reach the canary.
		m.fail(fault)
	}
	retT := fd.T.Fn.Ret
	if retT.IsVoid() {
		return Value{T: types.VoidType}
	}
	if ret.T == nil {
		// Fell off the end without a return value: indeterminate in C;
		// supply 0.
		return Value{T: retT}
	}
	return m.convert(ret, retT, pos)
}

// frameSpec holds the per-function frame layout with the diagnostic unit
// names preformatted, so pushing a frame does no string building.
type frameSpec struct {
	canary string
	locals []mem.LocalSpec
}

// newFrameSpec derives the per-local data-unit layout of a function's frame
// from its analyzed symbols. The result is immutable. Compile builds every
// function's spec once at lowering time (the program-level cache shared by
// all instances); the tree-walk reference engine keeps a per-machine lazy
// cache via Machine.frameSpec.
func newFrameSpec(fd *ast.FuncDecl) *frameSpec {
	spec := &frameSpec{
		canary: "canary:" + fd.Name,
		locals: make([]mem.LocalSpec, 0, len(fd.Locals)),
	}
	for _, sym := range fd.Locals {
		size := sym.Type.Size()
		if size == 0 {
			size = 1
		}
		spec.locals = append(spec.locals, mem.LocalSpec{
			Name: sym.Name + " (" + fd.Name + ")", Off: sym.FrameOff, Size: size,
		})
	}
	return spec
}

// frameSpec caches newFrameSpec per machine (tree-walk engine only; the
// compiled engine reads the program-level specs built at lowering time).
func (m *Machine) frameSpec(fd *ast.FuncDecl) *frameSpec {
	if spec, ok := m.specCache[fd]; ok {
		return spec
	}
	spec := newFrameSpec(fd)
	if m.specCache == nil {
		m.specCache = map[*ast.FuncDecl]*frameSpec{}
	}
	m.specCache[fd] = spec
	return spec
}

// execBody runs a function body, implementing the TxTerm policy's
// function-boundary recovery: a FuncAbort raised anywhere inside this
// function (including in its callees' argument evaluation) terminates the
// function with a zero return value and lets the caller continue — the
// transactional function termination of the paper's §5.2 comparison.
func (m *Machine) execBody(fd *ast.FuncDecl) (ctl ctrl) {
	if m.acc.Mode() != core.TxTerm {
		return m.execBlock(fd.Body)
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ep, ok := r.(execPanic)
		if !ok {
			panic(r)
		}
		if _, isAbort := ep.err.(*core.FuncAbort); isAbort {
			m.retVal = Value{}
			ctl = ctrlReturn
			return
		}
		panic(r)
	}()
	return m.execBlock(fd.Body)
}

// storeRaw writes a value directly into a unit (trusted compiler-generated
// store: parameter binding, local init zero-fill, direct named-variable
// assignment). Direct stores can target pre-checkpoint units (globals), so
// they participate in the rewind policy's copy-on-write protocol — a no-op
// pointer compare unless a checkpoint is active.
func (m *Machine) storeRaw(u *mem.Unit, off uint64, t *types.Type, v Value) {
	m.as.NoteMutation(u)
	m.simCycles += AccessCycles
	size := t.Size()
	switch {
	case t.IsPointer():
		putLEBytes(u.Data[off:off+8], int64(v.Ptr.Addr))
		u.SetShadow(off, v.Ptr.Prov)
	case t.Kind == types.Struct:
		copy(u.Data[off:off+size], v.Bytes)
		u.ClearShadowRange(off, size)
	default:
		putLEBytes(u.Data[off:off+size], v.I)
		u.ClearShadowRange(off, size)
	}
}

// --- Checked memory primitives shared with libc ---

// ChargeByteRun charges the simulated-cycle cost of n single-byte checked
// accesses — exactly what a byte-at-a-time LoadByte/StoreByte loop over n
// bytes charges. The libc word-granularity scan paths use it to keep the
// cycle accounting identical to the per-byte loops they replace (the cost
// model in cycles.go is unchanged; only the Go-level work is batched).
func (m *Machine) ChargeByteRun(n int64) {
	if n <= 0 {
		return
	}
	m.simCycles += uint64(n) * AccessCycles
	if m.checked {
		m.simCycles += uint64(n) * CheckCycles
	}
}

// Release returns the machine's pooled memory (stack arena, unit data
// slabs) for reuse by future instances. The machine must never be used
// again afterwards; the serving engine and benchmark harness call this
// when they retire a crashed instance for a pre-warmed replacement.
func (m *Machine) Release() { m.as.Release() }

// primeSite primes the context-aware manufactured-value engine with the
// canonical load site about to be accessed (ModeFOContext; no-op in every
// other mode, and free of simulated-cycle cost — priming is bookkeeping,
// not a check). Site -1 marks accesses with no source-level load site:
// bulk libc operations, aggregate copies, host drivers. Every m.acc.Load
// caller in every engine primes, so the primed site can never go stale
// across engines.
func (m *Machine) primeSite(site int32, t *types.Type, width int) {
	if m.ctxGen != nil {
		m.ctxGen.SetSite(site, t, width)
	}
}

// LoadBytes performs a policy-checked read of n bytes at p.
func (m *Machine) LoadBytes(p core.Pointer, buf []byte, pos token.Pos) {
	m.chargeAccess(len(buf))
	m.primeSite(-1, nil, len(buf))
	if _, err := m.acc.Load(p, buf, pos); err != nil {
		m.fail(err)
	}
}

// StoreBytes performs a policy-checked write at p.
func (m *Machine) StoreBytes(p core.Pointer, data []byte, pos token.Pos) {
	m.chargeAccess(len(data))
	if err := m.acc.Store(p, data, nil, pos); err != nil {
		m.fail(err)
	}
}

// FindUnit resolves addr through the machine's monomorphic lookup cache —
// same results as the address space's FindUnit, without the table search
// when consecutive lookups hit the same unit.
func (m *Machine) FindUnit(addr uint64) *mem.Unit {
	return m.as.FindUnitCached(addr, &m.luCache)
}

// findUnitAt resolves addr consulting the per-site cache for site (when
// non-nil) and the machine-wide cache before the object table. Access
// sites are overwhelmingly monomorphic — a given dereference expression
// keeps hitting the same unit — so this turns the provenance-recovery
// lookups into two pointer compares.
func (m *Machine) findUnitAt(site ast.Node, addr uint64) *mem.Unit {
	if site == nil {
		return m.FindUnit(addr)
	}
	c := m.siteCache[site]
	if c == nil {
		if m.siteCache == nil {
			m.siteCache = make(map[ast.Node]*mem.LookupCache, 32)
		}
		c = new(mem.LookupCache)
		m.siteCache[site] = c
	}
	if u := m.as.Probe(c, addr); u != nil {
		return u
	}
	u := m.FindUnit(addr)
	m.as.FillCache(c, u)
	return u
}

// loadValue reads a typed value through the policy. site, when non-nil, is
// the AST access site, used to cache pointer-provenance recovery.
func (m *Machine) loadValue(p core.Pointer, t *types.Type, pos token.Pos, site ast.Node) Value {
	size := t.Size()
	if size == 0 {
		m.failf(pos, "load of zero-sized type %s", t)
	}
	if t.Kind == types.Struct {
		buf := make([]byte, size)
		m.LoadBytes(p, buf, pos)
		return Value{T: t, Bytes: buf}
	}
	m.chargeAccess(int(size))
	m.primeSite(sema.LoadSiteOf(site), t, int(size))
	buf := m.scratch[:size]
	prov, err := m.acc.Load(p, buf, pos)
	if err != nil {
		m.fail(err)
	}
	if t.IsPointer() {
		addr := uint64(decodeLE(buf, false))
		if prov == nil && addr != 0 {
			// Jones–Kelly object-table recovery for pointers whose
			// shadow provenance was lost (e.g. copied bytewise).
			prov = m.findUnitAt(site, addr)
		}
		return Value{T: t, Ptr: core.Pointer{Addr: addr, Prov: prov}}
	}
	return Value{T: t, I: decodeLE(buf, t.IsSigned())}
}

// storeValue writes a typed value through the policy.
func (m *Machine) storeValue(p core.Pointer, t *types.Type, v Value, pos token.Pos) {
	size := t.Size()
	if t.Kind == types.Struct {
		if err := m.acc.Store(p, v.Bytes, nil, pos); err != nil {
			m.fail(err)
		}
		return
	}
	m.chargeAccess(int(size))
	buf := m.scratch2[:size]
	var prov *mem.Unit
	if t.IsPointer() {
		putLEBytes(buf, int64(v.Ptr.Addr))
		prov = v.Ptr.Prov
	} else {
		putLEBytes(buf, v.I)
	}
	if err := m.acc.Store(p, buf, prov, pos); err != nil {
		m.fail(err)
	}
}

func decodeLE(buf []byte, signed bool) int64 {
	var v uint64
	for i := len(buf) - 1; i >= 0; i-- {
		v = v<<8 | uint64(buf[i])
	}
	if signed {
		shift := uint(64 - 8*len(buf))
		return int64(v<<shift) >> shift
	}
	return int64(v)
}

// convert coerces a value to type t with C conversion semantics.
func (m *Machine) convert(v Value, t *types.Type, pos token.Pos) Value {
	if v.T == t || t.Kind == types.Invalid {
		// Identity fast path: machine-produced values are already
		// truncated to their type's width (loaders, binaryOp, and
		// Truncate maintain that invariant), so same-type conversion is
		// a no-op. Host-injected wide values are truncated by the store
		// that consumes them. Kept in a small wrapper so the common
		// case inlines at call sites.
		return v
	}
	return m.convertSlow(v, t, pos)
}

func (m *Machine) convertSlow(v Value, t *types.Type, pos token.Pos) Value {
	switch {
	case t.Kind == types.Struct:
		if v.T == nil || v.T.Kind != types.Struct {
			m.failf(pos, "cannot convert %s to %s", v.T, t)
		}
		return Value{T: t, Bytes: v.Bytes}
	case t.IsPointer():
		if v.T != nil && (v.T.IsPointer() || v.T.IsArray()) {
			return Value{T: t, Ptr: v.Ptr}
		}
		// Integer to pointer: recover provenance via the object table.
		addr := uint64(v.I)
		var prov *mem.Unit
		if addr != 0 {
			prov = m.FindUnit(addr)
		}
		return Value{T: t, Ptr: core.Pointer{Addr: addr, Prov: prov}}
	case t.IsInteger():
		if v.T != nil && v.T.IsPointer() {
			return Value{T: t, I: types.Truncate(t, int64(v.Ptr.Addr))}
		}
		return Value{T: t, I: types.Truncate(t, v.I)}
	case t.IsVoid():
		return Value{T: types.VoidType}
	}
	m.failf(pos, "unsupported conversion to %s", t)
	return Value{}
}

// --- Host convenience API (drivers, examples) ---

// Malloc allocates a heap block and returns a pointer value to it.
func (m *Machine) Malloc(size uint64) Value {
	u, fault := m.as.Malloc(size)
	if fault != nil {
		m.fail(fault)
	}
	return Value{
		T:   types.PointerTo(types.VoidType),
		Ptr: core.Pointer{Addr: u.Base, Prov: u},
	}
}

// NewCString allocates a heap buffer holding s plus a NUL and returns a
// char* value. When the allocation fails (heap exhaustion, or an injected
// allocator fault) it returns a null pointer — exactly what the C code
// being modeled gets from a failed malloc — rather than panicking: there
// is no Call in flight to recover a failure here, and the mode's policy
// decides what the subsequent dereference of the null request buffer does.
func (m *Machine) NewCString(s string) Value {
	u, fault := m.as.Malloc(uint64(len(s)) + 1)
	if fault != nil {
		return Value{T: types.PointerTo(types.CharType)}
	}
	copy(u.Data, s)
	u.Data[len(s)] = 0
	return Value{
		T:   types.PointerTo(types.CharType),
		Ptr: core.Pointer{Addr: u.Base, Prov: u},
	}
}

// ReadCString reads a NUL-terminated string at p directly from the address
// space (host-side, unchecked), bounded by max bytes.
func (m *Machine) ReadCString(v Value, max int) (string, error) {
	p := v.Ptr
	if p.Addr == 0 {
		return "", fmt.Errorf("null pointer")
	}
	var out []byte
	for i := 0; i < max; i++ {
		var b [1]byte
		if f := m.as.RawRead(p.Addr+uint64(i), b[:]); f != nil {
			return string(out), f
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
	}
	return string(out), fmt.Errorf("unterminated string after %d bytes", max)
}

// GlobalUnit returns the memory unit of a named global variable.
func (m *Machine) GlobalUnit(name string) (*mem.Unit, bool) {
	for i, g := range m.prog.Globals {
		if g.Name == name {
			return m.globals[i], true
		}
	}
	return nil, false
}

// LiteralPointer returns a char* value for literal table index i.
func (m *Machine) LiteralPointer(i int) Value {
	u := m.literals[i]
	return Value{
		T:   types.PointerTo(types.CharType),
		Ptr: core.Pointer{Addr: u.Base, Prov: u},
	}
}

// Fail aborts execution with err, as if the simulated process faulted. It
// is exported for libc builtins.
func (m *Machine) Fail(err error) { m.fail(err) }

// NoteInvalidFree records a discarded invalid free/realloc in the event log
// (failure-oblivious continuation for allocator misuse).
func (m *Machine) NoteInvalidFree(pos token.Pos, p core.Pointer) {
	m.log.AddExternal(core.Event{
		Pos: pos, Write: true, Addr: p.Addr, Size: 0,
		Unit: "free(invalid)",
	})
}

// LoadPointer performs a checked load of a pointer value at p.
func (m *Machine) LoadPointer(p core.Pointer, pos token.Pos) core.Pointer {
	v := m.loadValue(p, types.PointerTo(types.VoidType), pos, nil)
	return v.Ptr
}

// StorePointer performs a checked store of a pointer value at p.
func (m *Machine) StorePointer(p core.Pointer, v core.Pointer, pos token.Pos) {
	m.storeValue(p, types.PointerTo(types.VoidType),
		Value{T: types.PointerTo(types.VoidType), Ptr: v}, pos)
}

// LoadByte performs a checked single-byte load without allocating.
func (m *Machine) LoadByte(p core.Pointer, pos token.Pos) byte {
	m.chargeAccess(1)
	m.primeSite(-1, nil, 1)
	buf := m.scratch[:1]
	if _, err := m.acc.Load(p, buf, pos); err != nil {
		m.fail(err)
	}
	return buf[0]
}

// StoreByte performs a checked single-byte store without allocating.
func (m *Machine) StoreByte(p core.Pointer, b byte, pos token.Pos) {
	m.chargeAccess(1)
	m.scratch2[0] = b
	if err := m.acc.Store(p, m.scratch2[:1], nil, pos); err != nil {
		m.fail(err)
	}
}

// UnitPointer returns a char* value addressing the start of unit u.
func UnitPointer(u *mem.Unit) Value {
	return Value{
		T:   types.PointerTo(types.CharType),
		Ptr: core.Pointer{Addr: u.Base, Prov: u},
	}
}

// HostState returns a per-machine bag for host-side builtin state (libc's
// rand seed, driver caches). Lazily allocated.
func (m *Machine) HostState() map[string]any {
	if m.hostState == nil {
		m.hostState = map[string]any{}
	}
	return m.hostState
}
