package serve_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
)

// stubSrcV2 is the "next release" of stubSrc for hot-swap tests: same
// handlers, but ok answers 201 so responses reveal which program served
// them.
const stubSrcV2 = `
char resp[32];

int ok(void)
{
	resp[0] = 'v'; resp[1] = '2'; resp[2] = 0;
	return 201;
}
`

var (
	stubV2Once sync.Once
	stubV2Prog *fo.Program
	stubV2Err  error
)

type stubServerV2 struct{}

func (*stubServerV2) Name() string { return "stub-v2" }

func (*stubServerV2) New(mode fo.Mode) (servers.Instance, error) {
	stubV2Once.Do(func() { stubV2Prog, stubV2Err = fo.Compile("stub_v2.c", stubSrcV2) })
	if stubV2Err != nil {
		return nil, stubV2Err
	}
	log := fo.NewEventLog(0)
	m, err := stubV2Prog.NewMachine(fo.MachineConfig{Mode: mode, Log: log})
	if err != nil {
		return nil, err
	}
	return &stubInstance{Base: servers.Base{ServerName: "stub-v2", M: m, EvLog: log}}, nil
}

func (*stubServerV2) LegitRequests() []servers.Request {
	return []servers.Request{{Op: "ok"}}
}

func (*stubServerV2) AttackRequest() servers.Request {
	return servers.Request{Op: "ok"}
}

// TestRouterShardingStability: tenant→shard assignment is deterministic,
// spreads tenants across every shard, and requests actually land on the
// shard the ring names (per-shard Served counters line up).
func TestRouterShardingStability(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShards(4),
		serve.WithShardOptions(serve.WithPoolSize(1), serve.WithQueueDepth(8)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	perShard := make([]int, rt.ShardCount())
	for i := 0; i < 1000; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		s := rt.Shard(tenant)
		if again := rt.Shard(tenant); again != s {
			t.Fatalf("Shard(%q) unstable: %d then %d", tenant, s, again)
		}
		perShard[s]++
	}
	for s, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d received no tenants out of 1000", s)
		}
	}

	// Route a handful of real requests and check the per-shard counters
	// match the ring's assignment.
	want := make([]uint64, rt.ShardCount())
	for i := 0; i < 20; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		want[rt.Shard(tenant)]++
		resp, err := rt.Submit(context.Background(), tenant, servers.Request{Op: "ok"})
		if err != nil {
			t.Fatalf("submit tenant-%d: %v", i, err)
		}
		if !resp.OK() {
			t.Fatalf("tenant-%d response = %v, want OK", i, resp)
		}
	}
	st := rt.Stats()
	if st.Served != 20 {
		t.Fatalf("aggregate Served = %d, want 20", st.Served)
	}
	for s := range want {
		if st.Shards[s].Served != want[s] {
			t.Errorf("shard %d served %d, want %d", s, st.Shards[s].Served, want[s])
		}
	}
}

// TestRouterTenantQuotaNoStarvation: a flooding tenant saturating its quota
// at well over 2× the fleet's capacity must not starve a light tenant —
// every one of the light tenant's requests is admitted and served, while
// the flooder takes ErrOverQuota rejections.
func TestRouterTenantQuotaNoStarvation(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShards(2),
		serve.WithTenantQuota(2),
		serve.WithShardOptions(serve.WithPoolSize(1), serve.WithQueueDepth(16)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	stop := make(chan struct{})
	var flood sync.WaitGroup
	for g := 0; g < 8; g++ { // 8 concurrent floods against a quota of 2
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Slow requests hold the flooder's quota slots so the
				// other flood goroutines pile up over quota; denied
				// goroutines back off briefly instead of spinning the
				// scheduler.
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
				_, err := rt.Submit(ctx, "flooder", servers.Request{Op: "spin"})
				cancel()
				if errors.Is(err, serve.ErrOverQuota) {
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	time.Sleep(30 * time.Millisecond) // let the flood saturate its quota
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := rt.Submit(ctx, "light", servers.Request{Op: "ok"})
		cancel()
		if err != nil {
			t.Fatalf("light tenant request %d starved: %v", i, err)
		}
		if !resp.OK() {
			t.Fatalf("light tenant request %d = %v, want OK", i, resp)
		}
	}
	close(stop)
	flood.Wait()

	st := rt.Stats()
	if st.OverQuota == 0 {
		t.Error("flooding tenant was never rejected over quota")
	}
	ten := st.Tenants
	if ten["flooder"].Denied == 0 {
		t.Errorf("flooder Denied = 0, want > 0 (stats: %+v)", ten["flooder"])
	}
	if ten["light"].Denied != 0 {
		t.Errorf("light tenant Denied = %d, want 0", ten["light"].Denied)
	}
	if ten["light"].Admitted != 10 {
		t.Errorf("light tenant Admitted = %d, want 10", ten["light"].Admitted)
	}
}

// TestRouterHotSwapZeroFailures is the zero-downtime guarantee: under
// sustained concurrent load, Swap replaces the served program with ZERO
// failed requests — every submission before, during, and after the flip is
// answered OK, old-program responses simply give way to new-program ones.
func TestRouterHotSwapZeroFailures(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShards(2),
		serve.WithShardOptions(
			serve.WithPoolSize(2), serve.WithQueueDepth(64), serve.WithWarmSpares(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const clients = 8
	var v1, v2, failures atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := rt.Submit(context.Background(), tenant, servers.Request{Op: "ok"})
				if err != nil || !resp.OK() {
					failures.Add(1)
					continue
				}
				switch resp.Status {
				case 200:
					v1.Add(1)
				case 201:
					v2.Add(1)
				default:
					failures.Add(1)
				}
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond) // steady state on v1
	prev := rt.Swap(&stubServerV2{})
	if _, ok := prev.(*stubServer); !ok {
		t.Errorf("Swap returned %T, want the previous *stubServer", prev)
	}
	time.Sleep(100 * time.Millisecond) // steady state on v2
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the hot swap, want 0", n)
	}
	if v1.Load() == 0 || v2.Load() == 0 {
		t.Fatalf("load did not span the swap: v1=%d v2=%d", v1.Load(), v2.Load())
	}

	// Everything submitted after the swap runs the new program.
	resp, err := rt.Submit(context.Background(), "post-swap", servers.Request{Op: "ok"})
	if err != nil || resp.Status != 201 {
		t.Fatalf("post-swap request = %v, %v; want 201 from the new program", resp, err)
	}
	if cur, ok := rt.Current().(*stubServerV2); !ok {
		t.Errorf("Current() = %T, want *stubServerV2", cur)
	}

	st := rt.Stats()
	if st.Swaps != 1 {
		t.Errorf("Swaps = %d, want 1", st.Swaps)
	}
	if st.Recycles == 0 {
		t.Error("no instance recycles recorded after a swap under load")
	}
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Errorf("hot swap crashed instances: crashes=%d restarts=%d", st.Crashes, st.Restarts)
	}
	if st.Rejected != 0 || st.Shed != 0 {
		t.Errorf("hot swap dropped requests: rejected=%d shed=%d", st.Rejected, st.Shed)
	}
}

// TestRouterAIMDBacksOffUnderLatency: sustained latency far above the p95
// target must walk the adaptive concurrency limit down and start rejecting
// with ErrOverLimit — upstream backpressure driven by observed latency.
func TestRouterAIMDBacksOffUnderLatency(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShards(1),
		serve.WithAIMD(serve.AIMDConfig{
			TargetP95: time.Millisecond,
			Window:    4,
		}),
		serve.WithShardOptions(serve.WithPoolSize(2), serve.WithQueueDepth(32)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	start := rt.Stats().Limit // 2× total workers
	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for time.Now().Before(deadline) {
				ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
				_, err := rt.Submit(ctx, tenant, servers.Request{Op: "spin"})
				cancel()
				if errors.Is(err, serve.ErrOverLimit) {
					time.Sleep(time.Millisecond)
				}
				if rt.Stats().Limit < start && rt.Stats().OverLimit > 0 {
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := rt.Stats()
	if st.Limit >= start {
		t.Errorf("adaptive limit = %d, want < initial %d after sustained over-target latency",
			st.Limit, start)
	}
	if st.OverLimit == 0 {
		t.Error("no ErrOverLimit rejections while saturated over target")
	}
}

// TestRouterShardWeightValidation: WithShardWeights is validated at
// construction — weights outside [1, 64], a length mismatch with
// WithShards — and without WithShards the shard count is inferred from
// the weight list.
func TestRouterShardWeightValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []serve.RouterOption
	}{
		{"zero weight", []serve.RouterOption{serve.WithShardWeights(1, 0, 2)}},
		{"negative weight", []serve.RouterOption{serve.WithShardWeights(-3)}},
		{"over max weight", []serve.RouterOption{serve.WithShardWeights(1, 65)}},
		{"count mismatch", []serve.RouterOption{serve.WithShards(2), serve.WithShardWeights(1, 2, 3)}},
	}
	for _, c := range cases {
		if rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious, c.opts...); err == nil {
			rt.Close()
			t.Errorf("%s: NewRouter accepted invalid weights", c.name)
		}
	}

	rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious,
		serve.WithShardWeights(1, 2, 3))
	if err != nil {
		t.Fatalf("weights without WithShards: %v", err)
	}
	defer rt.Close()
	if rt.ShardCount() != 3 {
		t.Errorf("ShardCount() = %d, want 3 inferred from len(weights)", rt.ShardCount())
	}
}

// TestRouterRebalanceOnBreaker: when a shard's circuit breaker trips, its
// tenants' requests reroute to healthy shards (zero failures, Rebalanced
// counts them, the tripped shard serves nothing new), and when the breaker
// restores after cooldown the tenants return home and rebalancing stops.
func TestRouterRebalanceOnBreaker(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.Standard,
		serve.WithShards(3),
		serve.WithShardOptions(
			serve.WithPoolSize(1), serve.WithQueueDepth(16),
			serve.WithBackoff(time.Millisecond, 2*time.Millisecond),
			serve.WithBreaker(2, 750*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	tenant := "tenant-rebalance"
	home := rt.Shard(tenant)

	// Trip the home shard's breaker: two consecutive crashes with no
	// intervening success.
	for i := 0; i < 2; i++ {
		resp, err := rt.Submit(nil, tenant, servers.Request{Op: "smash"})
		if err != nil {
			t.Fatalf("smash %d: %v", i, err)
		}
		if !resp.Crashed() {
			t.Fatalf("smash %d outcome = %v, want a crash", i, resp.Outcome)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.Stats().Shards[home].BreakerTrips == 0 {
		if time.Now().After(deadline) {
			t.Fatal("home shard breaker never tripped")
		}
		time.Sleep(time.Millisecond)
	}
	// The trip counter is incremented after the health gauge (see respawn),
	// so from here every lookup sees the home shard as unhealthy.
	tripped := rt.Stats()
	homeServed := tripped.Shards[home].Served

	// Handoff: with the breaker open, the tenant's requests must land on
	// healthy shards — no failures, no new work on the tripped shard.
	const loadN = 20
	for i := 0; i < loadN; i++ {
		resp, err := rt.Submit(nil, tenant, servers.Request{Op: "ok"})
		if err != nil {
			t.Fatalf("rebalanced ok %d: %v", i, err)
		}
		if resp.Outcome != fo.OutcomeOK {
			t.Fatalf("rebalanced ok %d outcome = %v, want OK", i, resp.Outcome)
		}
	}
	st := rt.Stats()
	if st.Rebalanced < loadN {
		t.Errorf("Rebalanced = %d, want at least %d rerouted requests", st.Rebalanced, loadN)
	}
	if got := st.Shards[home].Served; got != homeServed {
		t.Errorf("tripped shard served %d new requests, want 0 (had %d)", got-homeServed, homeServed)
	}

	// Restoration: the half-open respawn at cooldown end clears the gauge;
	// once a request lands home again, rebalancing must have stopped.
	deadline = time.Now().Add(5 * time.Second)
	for rt.Stats().Shards[home].Served == homeServed {
		if time.Now().After(deadline) {
			t.Fatal("home shard never recovered after breaker cooldown")
		}
		resp, err := rt.Submit(nil, tenant, servers.Request{Op: "ok"})
		if err != nil {
			t.Fatalf("recovery probe: %v", err)
		}
		if resp.Outcome != fo.OutcomeOK {
			t.Fatalf("recovery probe outcome = %v, want OK", resp.Outcome)
		}
		time.Sleep(5 * time.Millisecond)
	}
	restored := rt.Stats()
	const afterN = 5
	for i := 0; i < afterN; i++ {
		resp, err := rt.Submit(nil, tenant, servers.Request{Op: "ok"})
		if err != nil {
			t.Fatalf("restored ok %d: %v", i, err)
		}
		if resp.Outcome != fo.OutcomeOK {
			t.Fatalf("restored ok %d outcome = %v, want OK", i, resp.Outcome)
		}
	}
	final := rt.Stats()
	if got := final.Shards[home].Served - restored.Shards[home].Served; got != afterN {
		t.Errorf("restored home shard served %d of %d post-recovery requests", got, afterN)
	}
	if final.Rebalanced != restored.Rebalanced {
		t.Errorf("Rebalanced grew %d→%d after restoration — tenants did not return home",
			restored.Rebalanced, final.Rebalanced)
	}
}

// TestRouterStatsUnderScrapeSwapRebalance hammers one router from four
// directions at once — stats/metrics scrapers, a program hot-swapper, a
// crash-loop tenant that keeps tripping breakers (rebalance churn), and
// legitimate clients — and requires zero unexpected failures. Its job is
// race coverage of the scrape/swap/rebalance planes (run under -race);
// rebalancing behavior itself is pinned by TestRouterRebalanceOnBreaker.
func TestRouterStatsUnderScrapeSwapRebalance(t *testing.T) {
	rt, err := serve.NewRouter(&stubServer{}, fo.Standard,
		serve.WithShards(3),
		serve.WithShardOptions(
			serve.WithPoolSize(1), serve.WithQueueDepth(32),
			serve.WithBackoff(time.Millisecond, 2*time.Millisecond),
			serve.WithBreaker(2, 20*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := rt.Stats()
				_ = st.Rebalanced
				for _, sh := range st.Shards {
					_ = sh.MemErrors.Total()
				}
				_ = rt.Metrics().Latency.P99
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		next := []servers.Server{&stubServerV2{}, &stubServer{}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rt.Swap(next[i%2])
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Crash loop on one tenant: trips its home shard's breaker,
			// then chases the rebalanced route and trips that shard too —
			// constant health churn under the scrapers and swapper.
			if _, err := rt.Submit(nil, "tenant-chaos", servers.Request{Op: "smash"}); err != nil &&
				!errors.Is(err, serve.ErrQueueFull) && !errors.Is(err, serve.ErrShed) {
				t.Errorf("chaos smash: %v", err)
				return
			}
		}
	}()

	var okServed atomic.Uint64
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := rt.Submit(nil, tenant, servers.Request{Op: "ok"})
				switch {
				case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrShed):
					time.Sleep(100 * time.Microsecond)
				case err != nil:
					t.Errorf("client %d: %v", c, err)
					return
				case resp.Outcome == fo.OutcomeOK:
					okServed.Add(1)
				default:
					t.Errorf("client %d outcome = %v, want OK", c, resp.Outcome)
					return
				}
			}
		}(c)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := rt.Stats()
	if okServed.Load() == 0 {
		t.Error("no legitimate request succeeded under churn")
	}
	if st.Swaps == 0 {
		t.Error("no hot-swap completed under churn")
	}
	if st.Shards[0].Served+st.Shards[1].Served+st.Shards[2].Served == 0 {
		t.Error("shard stats report nothing served")
	}
}
