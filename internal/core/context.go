package core

import (
	"focc/internal/cc/token"
	"focc/internal/cc/types"
	"focc/internal/mem"
)

// ModeFOContext is the context-aware failure-oblivious mode: invalid
// writes are discarded and invalid reads manufacture values exactly as in
// FailureOblivious, but the value for each invalid read is chosen by a
// per-load-site strategy table instead of one global sequence (Rigger et
// al., "Context-aware Failure-oblivious Computing"). The decision points —
// and therefore the simulated-cycle cost — are identical to
// FailureOblivious; only the manufactured values differ.
const ModeFOContext Mode = ModeRewind + 1

// ContextGenerator extends ValueGenerator with the static context of the
// access about to be performed. Engines prime it with the canonical
// load-site id (sema.LoadSiteOf), static type, and access width
// immediately before each checked load; site -1 means "no site context"
// (bulk libc operations, struct copies, host-driver accesses) and routes
// manufacture to the fallback strategy.
//
// Manufacture replaces Next on the invalid-read path: it returns the
// manufactured value, the provenance unit to attach when the strategy
// manufactures a pointer (nil otherwise), and the name of the strategy
// that produced the value for event-log attribution.
//
// NoteDiscardedStore observes every discarded invalid write, letting a
// last-stored-value strategy answer later reads of the same location from
// a bounded shadow of recent discarded stores.
type ContextGenerator interface {
	ValueGenerator
	SetSite(site int32, t *types.Type, width int)
	Manufacture(p Pointer, size int) (v int64, prov *mem.Unit, strategy string)
	NoteDiscardedStore(p Pointer, data []byte)
}

// fallbackContext adapts a plain ValueGenerator to ContextGenerator: every
// site manufactures from the global sequence. core.New uses it when
// ModeFOContext is selected without a real strategy engine, which makes
// the mode degrade to FailureOblivious values.
type fallbackContext struct {
	gen ValueGenerator
}

func (f *fallbackContext) Next(size int) int64 { return f.gen.Next(size) }
func (f *fallbackContext) Reset()              { f.gen.Reset() }

func (f *fallbackContext) SetSite(int32, *types.Type, int) {}

func (f *fallbackContext) Manufacture(_ Pointer, size int) (int64, *mem.Unit, string) {
	return f.gen.Next(size), nil, "fallback"
}

func (f *fallbackContext) NoteDiscardedStore(Pointer, []byte) {}

// --- Context-aware failure-oblivious accessor ---

// contextAccessor mirrors obliviousAccessor decision point for decision
// point (same victim lookup, same discard/manufacture structure) so the
// simulated-cycle pins of the two modes are identical; it differs only in
// where manufactured values come from and in feeding discarded stores to
// the strategy engine's shadow.
type contextAccessor struct {
	table
	gen ContextGenerator
	log *EventLog
}

// NewFOContext returns the context-aware failure-oblivious accessor.
func NewFOContext(as *mem.AddressSpace, gen ContextGenerator, log *EventLog) Accessor {
	return &contextAccessor{table: table{as: as}, gen: gen, log: log}
}

func (a *contextAccessor) Mode() Mode { return ModeFOContext }

func (a *contextAccessor) Load(p Pointer, buf []byte, pos token.Pos) (*mem.Unit, error) {
	if !inBounds(p, len(buf)) {
		victim := a.lookup(p.Addr)
		v, prov, strat := a.gen.Manufacture(p, len(buf))
		putLE(buf, v)
		a.log.add(Event{Pos: pos, Addr: p.Addr, Size: len(buf),
			Unit: unitName(p.Prov), Victim: unitName(victim),
			Manufactured: v, Strategy: strat})
		return prov, nil
	}
	off := p.Addr - p.Prov.Base
	copy(buf, p.Prov.Data[off:])
	if len(buf) == 8 {
		return p.Prov.GetShadow(off), nil
	}
	return nil, nil
}

func (a *contextAccessor) Store(p Pointer, data []byte, prov *mem.Unit, pos token.Pos) error {
	if !inBounds(p, len(data)) || p.Prov.ReadOnly {
		// Continuation code: discard the write, remembering it so a
		// last-stored-value strategy can replay it for later reads.
		victim := a.lookup(p.Addr)
		a.gen.NoteDiscardedStore(p, data)
		a.log.add(Event{Pos: pos, Write: true, Addr: p.Addr,
			Size: len(data), Unit: unitName(p.Prov), Victim: unitName(victim)})
		return nil
	}
	off := p.Addr - p.Prov.Base
	copy(p.Prov.Data[off:], data)
	if prov != nil && len(data) == 8 {
		p.Prov.SetShadow(off, prov)
	} else {
		p.Prov.ClearShadowRange(off, uint64(len(data)))
	}
	return nil
}
