package inject

import (
	"focc/internal/servers"
	"focc/internal/servers/registry"
)

// Target is one campaign subject: a named factory producing fresh
// servers.Server values. A fresh Server per instance matters because some
// servers keep host-side state on the Server value (Midnight Commander's
// virtual filesystem, Mutt's folder set): each fault point must start from
// the same host state or outcomes would depend on evaluation order.
type Target struct {
	Name string
	New  func() servers.Server
}

// AllTargets returns the five server reproductions from the paper's
// evaluation, in report order — the registry's catalog rendered as campaign
// targets (internal/servers/registry is the single source of truth for the
// server set).
func AllTargets() []Target {
	names := registry.Names()
	targets := make([]Target, len(names))
	for i, name := range names {
		mk, err := registry.Factory(name)
		if err != nil {
			// Unreachable: the name came from the registry itself.
			panic(err)
		}
		targets[i] = Target{Name: name, New: mk}
	}
	return targets
}
