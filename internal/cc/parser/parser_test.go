package parser

import (
	"strings"
	"testing"

	"focc/internal/cc/ast"
	"focc/internal/cc/token"
	"focc/internal/cc/types"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, errs := ParseString("t.c", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	return f
}

func parseErrs(t *testing.T, src string) []error {
	t.Helper()
	_, errs := ParseString("t.c", src)
	return errs
}

func firstFunc(t *testing.T, f *ast.File) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd
		}
	}
	t.Fatal("no function declaration")
	return nil
}

func TestSimpleFunction(t *testing.T) {
	f := parse(t, "int main(void) { return 0; }")
	fd := firstFunc(t, f)
	if fd.Name != "main" {
		t.Errorf("name = %q", fd.Name)
	}
	if fd.T.Fn.Ret.Kind != types.Int || len(fd.T.Fn.Params) != 0 {
		t.Errorf("type = %s", fd.T)
	}
	if fd.Body == nil || len(fd.Body.Stmts) != 1 {
		t.Errorf("body = %+v", fd.Body)
	}
}

func TestDeclaratorTypes(t *testing.T) {
	cases := map[string]string{
		"int x;":              "int",
		"char *p;":            "char*",
		"unsigned char **pp;": "unsigned char**",
		"long a[3];":          "long[3]",
		"char b[2][5];":       "char[2][5]",
		"const char *s;":      "char*",
		"unsigned long n;":    "unsigned long",
		"signed char sc;":     "signed char",
		"short s1;":           "short",
		"unsigned short s2;":  "unsigned short",
		"unsigned u;":         "unsigned int",
		"long long big;":      "long",
		"void *vp;":           "void*",
		"int *arr[4];":        "int*[4]",
	}
	for src, want := range cases {
		f := parse(t, src)
		vd, ok := f.Decls[0].(*ast.VarDecl)
		if !ok {
			t.Fatalf("%q: not a VarDecl", src)
		}
		if got := vd.T.String(); got != want {
			t.Errorf("%q -> %q, want %q", src, got, want)
		}
	}
}

func TestMultipleDeclarators(t *testing.T) {
	f := parse(t, "int a, *b, c[4];")
	if len(f.Decls) != 3 {
		t.Fatalf("got %d decls", len(f.Decls))
	}
	wants := []string{"int", "int*", "int[4]"}
	for i, want := range wants {
		vd := f.Decls[i].(*ast.VarDecl)
		if vd.T.String() != want {
			t.Errorf("decl %d type = %s, want %s", i, vd.T, want)
		}
	}
}

func TestTypedef(t *testing.T) {
	f := parse(t, "typedef unsigned long size_t; size_t n; typedef char *str; str s;")
	if vd := f.Decls[0].(*ast.VarDecl); vd.T.String() != "unsigned long" {
		t.Errorf("size_t resolved to %s", vd.T)
	}
	if vd := f.Decls[1].(*ast.VarDecl); vd.T.String() != "char*" {
		t.Errorf("str resolved to %s", vd.T)
	}
}

func TestStructDeclaration(t *testing.T) {
	f := parse(t, `
struct point { int x; int y; };
struct point p;
struct point *pp;
struct list { struct list *next; int v; };
`)
	vd := f.Decls[0].(*ast.VarDecl)
	if vd.T.Kind != types.Struct || vd.T.Rec.Name != "point" {
		t.Fatalf("p type = %s", vd.T)
	}
	if vd.T.Size() != 8 {
		t.Errorf("struct point size = %d", vd.T.Size())
	}
	if len(vd.T.Rec.Fields) != 2 || vd.T.Rec.Fields[1].Offset != 4 {
		t.Errorf("fields = %+v", vd.T.Rec.Fields)
	}
}

func TestSelfReferentialStruct(t *testing.T) {
	f := parse(t, "struct node { struct node *next; int v; }; struct node n;")
	vd := f.Decls[0].(*ast.VarDecl)
	next := vd.T.Rec.Fields[0]
	if !next.Type.IsPointer() || next.Type.Elem.Rec != vd.T.Rec {
		t.Errorf("self reference broken: %s", next.Type)
	}
}

func TestAnonymousStructTag(t *testing.T) {
	f := parse(t, "struct { int a; } x;")
	vd := f.Decls[0].(*ast.VarDecl)
	if vd.T.Kind != types.Struct || len(vd.T.Rec.Fields) != 1 {
		t.Errorf("anon struct = %s", vd.T)
	}
}

func TestEnum(t *testing.T) {
	f := parse(t, "enum color { RED, GREEN = 5, BLUE }; int x[BLUE];")
	if f.EnumConsts["RED"] != 0 || f.EnumConsts["GREEN"] != 5 || f.EnumConsts["BLUE"] != 6 {
		t.Errorf("enum consts = %v", f.EnumConsts)
	}
	vd := f.Decls[0].(*ast.VarDecl)
	if vd.T.String() != "int[6]" {
		t.Errorf("x type = %s (enum constant in array size)", vd.T)
	}
}

func TestConstantArraySizes(t *testing.T) {
	cases := map[string]string{
		"char a[4*2+1];":        "char[9]",
		"char b[1 << 4];":       "char[16]",
		"char c[sizeof(long)];": "char[8]",
		"char d[10/2 - 1];":     "char[4]",
		"char e[1 ? 3 : 5];":    "char[3]",
		"char f[(2|1) & ~0];":   "char[3]",
	}
	for src, want := range cases {
		f := parse(t, src)
		vd := f.Decls[0].(*ast.VarDecl)
		if vd.T.String() != want {
			t.Errorf("%q -> %s, want %s", src, vd.T, want)
		}
	}
}

func TestFunctionParams(t *testing.T) {
	f := parse(t, "int add(int a, char *b, long c[]);")
	fd := firstFunc(t, f)
	ps := fd.T.Fn.Params
	if len(ps) != 3 {
		t.Fatalf("params = %d", len(ps))
	}
	if ps[0].Type.Kind != types.Int || ps[0].Name != "a" {
		t.Errorf("param 0 = %+v", ps[0])
	}
	if ps[2].Type.String() != "long*" {
		t.Errorf("array param should decay: %s", ps[2].Type)
	}
}

func TestVariadicPrototype(t *testing.T) {
	f := parse(t, "int printf(const char *fmt, ...);")
	fd := firstFunc(t, f)
	if !fd.T.Fn.Variadic {
		t.Error("variadic flag not set")
	}
}

// exprOf parses "int f(void){ return EXPR; }" and returns the expression.
func exprOf(t *testing.T, expr string) ast.Expr {
	t.Helper()
	f := parse(t, "int f(int a, int b, int c) { return "+expr+"; }")
	fd := firstFunc(t, f)
	ret := fd.Body.Stmts[0].(*ast.Return)
	return ret.X
}

func TestPrecedence(t *testing.T) {
	// a + b * c parses as a + (b*c)
	e := exprOf(t, "a + b * c")
	bin := e.(*ast.Binary)
	if bin.Op != token.Plus {
		t.Fatalf("top op = %v", bin.Op)
	}
	if inner, ok := bin.Y.(*ast.Binary); !ok || inner.Op != token.Star {
		t.Errorf("rhs = %T", bin.Y)
	}

	// a << b + c parses as a << (b+c)
	e = exprOf(t, "a << b + c")
	if bin := e.(*ast.Binary); bin.Op != token.Shl {
		t.Errorf("top op = %v, want <<", bin.Op)
	}

	// a == b & c parses as (a==b) & c? No: & binds tighter than ==? In C,
	// == binds tighter than &.
	e = exprOf(t, "a & b == c")
	if bin := e.(*ast.Binary); bin.Op != token.Amp {
		t.Errorf("top op = %v, want & (== binds tighter)", bin.Op)
	}

	// ternary right-assoc: a ? b : c ? a : b
	e = exprOf(t, "a ? b : c ? a : b")
	cond := e.(*ast.Cond)
	if _, ok := cond.Else.(*ast.Cond); !ok {
		t.Errorf("else branch = %T, want nested Cond", cond.Else)
	}

	// assignment right-assoc: a = b = c
	f := parse(t, "void f(void) { int a, b, c; a = b = c; }")
	fd := firstFunc(t, f)
	es := fd.Body.Stmts[1].(*ast.ExprStmt)
	asn := es.X.(*ast.Assign)
	if _, ok := asn.RHS.(*ast.Assign); !ok {
		t.Errorf("rhs = %T, want Assign", asn.RHS)
	}
}

func TestUnaryAndPostfix(t *testing.T) {
	e := exprOf(t, "-a")
	if u := e.(*ast.Unary); u.Op != token.Minus {
		t.Errorf("op = %v", u.Op)
	}
	e = exprOf(t, "*&a")
	u := e.(*ast.Unary)
	if u.Op != token.Star {
		t.Fatalf("op = %v", u.Op)
	}
	if inner := u.X.(*ast.Unary); inner.Op != token.Amp {
		t.Errorf("inner = %v", inner.Op)
	}
	e = exprOf(t, "a++")
	if p := e.(*ast.Postfix); p.Op != token.Inc {
		t.Errorf("postfix = %v", p.Op)
	}
	e = exprOf(t, "++a")
	if u := e.(*ast.Unary); u.Op != token.Inc {
		t.Errorf("prefix = %v", u.Op)
	}
}

func TestCastVsParen(t *testing.T) {
	e := exprOf(t, "(int) a")
	if c, ok := e.(*ast.Cast); !ok || c.To.Kind != types.Int {
		t.Errorf("got %T", e)
	}
	e = exprOf(t, "(a)")
	if _, ok := e.(*ast.Ident); !ok {
		t.Errorf("got %T, want Ident", e)
	}
	e = exprOf(t, "(char *) a")
	if c := e.(*ast.Cast); c.To.String() != "char*" {
		t.Errorf("cast to %s", c.To)
	}
}

func TestSizeof(t *testing.T) {
	e := exprOf(t, "sizeof(int)")
	if s, ok := e.(*ast.SizeofType); !ok || s.Of.Kind != types.Int {
		t.Errorf("got %T", e)
	}
	e = exprOf(t, "sizeof a")
	if _, ok := e.(*ast.SizeofExpr); !ok {
		t.Errorf("got %T", e)
	}
	e = exprOf(t, "sizeof(a)")
	if _, ok := e.(*ast.SizeofExpr); !ok {
		t.Errorf("sizeof(expr) got %T", e)
	}
}

func TestMemberAndIndex(t *testing.T) {
	f := parse(t, `
struct p { int x; };
int f(struct p *q, struct p v, int *arr) {
	return q->x + v.x + arr[3];
}`)
	fd := firstFunc(t, f)
	ret := fd.Body.Stmts[0].(*ast.Return)
	outer := ret.X.(*ast.Binary)
	inner := outer.X.(*ast.Binary)
	if m := inner.X.(*ast.Member); !m.Arrow || m.Name != "x" {
		t.Errorf("q->x = %+v", m)
	}
	if m := inner.Y.(*ast.Member); m.Arrow || m.Name != "x" {
		t.Errorf("v.x = %+v", m)
	}
	if _, ok := outer.Y.(*ast.Index); !ok {
		t.Errorf("arr[3] = %T", outer.Y)
	}
}

func TestStatements(t *testing.T) {
	f := parse(t, `
void f(int n) {
	int i;
	if (n) { n = 1; } else n = 2;
	while (n) n--;
	do { n++; } while (n < 3);
	for (i = 0; i < 10; i++) continue;
	for (;;) break;
	switch (n) {
	case 1: break;
	case 2:
	default: break;
	}
	goto done;
done:
	return;
}`)
	fd := firstFunc(t, f)
	kinds := []string{}
	for _, s := range fd.Body.Stmts {
		switch s.(type) {
		case *ast.DeclStmt:
			kinds = append(kinds, "decl")
		case *ast.If:
			kinds = append(kinds, "if")
		case *ast.While:
			kinds = append(kinds, "while")
		case *ast.DoWhile:
			kinds = append(kinds, "do")
		case *ast.For:
			kinds = append(kinds, "for")
		case *ast.Switch:
			kinds = append(kinds, "switch")
		case *ast.Goto:
			kinds = append(kinds, "goto")
		case *ast.Labeled:
			kinds = append(kinds, "label")
		default:
			kinds = append(kinds, "?")
		}
	}
	want := "decl if while do for for switch goto label"
	if got := strings.Join(kinds, " "); got != want {
		t.Errorf("stmts = %q, want %q", got, want)
	}
}

func TestForWithDeclaration(t *testing.T) {
	f := parse(t, "void f(void) { for (int i = 0; i < 3; i++) ; }")
	fd := firstFunc(t, f)
	loop := fd.Body.Stmts[0].(*ast.For)
	if _, ok := loop.Init.(*ast.DeclStmt); !ok {
		t.Errorf("for init = %T", loop.Init)
	}
}

func TestInitializers(t *testing.T) {
	f := parse(t, `
int a = 5;
int arr[3] = { 1, 2, 3 };
char s[] = "hi";
char *p = "world";
struct q { int x; int y; };
struct q v = { 7, 8 };
int m[2][2] = { {1,2}, {3,4} };
`)
	if vd := f.Decls[1].(*ast.VarDecl); vd.Init == nil {
		t.Error("array init missing")
	} else if il, ok := vd.Init.(*ast.InitList); !ok || len(il.Elems) != 3 {
		t.Errorf("array init = %T", vd.Init)
	}
	if vd := f.Decls[2].(*ast.VarDecl); vd.T.Len != -1 {
		t.Errorf("char s[] parsed len = %d (completed in sema)", vd.T.Len)
	}
}

func TestCommaExpression(t *testing.T) {
	f := parse(t, "void f(void) { int a, b; a = 1, b = 2; }")
	fd := firstFunc(t, f)
	es := fd.Body.Stmts[1].(*ast.ExprStmt)
	if _, ok := es.X.(*ast.Comma); !ok {
		t.Errorf("got %T, want Comma", es.X)
	}
}

func TestCallArgsAreAssignExprs(t *testing.T) {
	// Commas in call args separate arguments, not comma-exprs.
	f := parse(t, "int g(int a, int b); int f(void) { return g(1, 2); }")
	var call *ast.Call
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ret := fd.Body.Stmts[0].(*ast.Return)
		call = ret.X.(*ast.Call)
	}
	if call == nil || len(call.Args) != 2 {
		t.Fatalf("call = %+v", call)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int;x",                     // junk
		"int f( { }",                // bad params
		"union u { int x; } v;",     // unsupported union
		"int a[-1];",                // negative size
		"int x = ;",                 // missing initializer
		"void f(void) { if (x }",    // bad if
		"void f(void) { return 1 }", // missing semicolon
		"int (*fp)(void);",          // function pointers unsupported
	}
	for _, src := range cases {
		if errs := parseErrs(t, src); len(errs) == 0 {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestErrorRecovery(t *testing.T) {
	// After an error the parser should still see later declarations.
	f, errs := ParseString("t.c", "int bad( { };\nint good;\n")
	if len(errs) == 0 {
		t.Fatal("expected errors")
	}
	found := false
	for _, d := range f.Decls {
		if vd, ok := d.(*ast.VarDecl); ok && vd.Name == "good" {
			found = true
		}
	}
	if !found {
		t.Error("parser did not recover to parse the next declaration")
	}
}

func TestIndexSwapIdiom(t *testing.T) {
	// 3[arr] is legal C.
	f := parse(t, "int f(int *arr) { return 3[arr]; }")
	fd := firstFunc(t, f)
	ret := fd.Body.Stmts[0].(*ast.Return)
	if _, ok := ret.X.(*ast.Index); !ok {
		t.Errorf("got %T", ret.X)
	}
}

func TestStaticLocalsRejected(t *testing.T) {
	if errs := parseErrs(t, "void f(void) { static int x; }"); len(errs) == 0 {
		t.Error("static locals should be diagnosed")
	}
	// static at file scope stays fine.
	if _, errs := ParseString("t.c", "static int g; static int f(void) { return g; }"); len(errs) != 0 {
		t.Errorf("file-scope static rejected: %v", errs[0])
	}
}

func TestParseEdgeCases(t *testing.T) {
	// Dangling else binds to the nearest if.
	f := parse(t, "void f(int a, int b) { if (a) if (b) a = 1; else a = 2; }")
	fd := firstFunc(t, f)
	outer := fd.Body.Stmts[0].(*ast.If)
	if outer.Else != nil {
		t.Error("else bound to the outer if")
	}
	inner := outer.Then.(*ast.If)
	if inner.Else == nil {
		t.Error("else not bound to the inner if")
	}

	// Empty statement bodies.
	parse(t, "void f(void) { while (0); for (;;) break; if (1); }")

	// Nested labeled statements.
	f = parse(t, "void f(void) { a: b: ; goto a; }")
	fd = firstFunc(t, f)
	l := fd.Body.Stmts[0].(*ast.Labeled)
	if l.Name != "a" {
		t.Errorf("outer label = %q", l.Name)
	}
	if inner, ok := l.Stmt.(*ast.Labeled); !ok || inner.Name != "b" {
		t.Errorf("inner label = %v", l.Stmt)
	}

	// Label immediately before a closing brace.
	parse(t, "void f(void) { goto end; end: }")
}

func TestEnumInsideFunctionRejected(t *testing.T) {
	if errs := parseErrs(t, "void f(void) { enum { Q = 1 }; }"); len(errs) == 0 {
		t.Error("function-scope enum definitions should be diagnosed")
	}
}

func TestSizeofPrecedence(t *testing.T) {
	// sizeof binds tighter than binary operators: sizeof(int) * 2.
	e := exprOf(t, "sizeof(int) * 2")
	bin := e.(*ast.Binary)
	if bin.Op != token.Star {
		t.Fatalf("top = %v", bin.Op)
	}
	if _, ok := bin.X.(*ast.SizeofType); !ok {
		t.Errorf("lhs = %T", bin.X)
	}
}

func TestCharLiteralInCase(t *testing.T) {
	f := parse(t, `void f(int c) { switch (c) { case 'x': break; } }`)
	fd := firstFunc(t, f)
	sw := fd.Body.Stmts[0].(*ast.Switch)
	_ = sw
}
