// Package cpp implements the minimal C preprocessor used by focc: comment
// stripping, line continuations, object-like and function-like #define,
// #undef, #ifdef/#ifndef/#if/#else/#endif with defined(), #include from a
// virtual header filesystem, and #error.
//
// The output is a []token.Line preserving original file/line positions, which
// the lexer consumes directly. The # and ## macro operators are not
// supported (the focc dialect does not need them).
package cpp

import (
	"fmt"
	"strconv"
	"strings"

	"focc/internal/cc/token"
)

// Options configures preprocessing.
type Options struct {
	// Includes is a virtual filesystem for #include: name -> contents.
	// Both #include "x.h" and #include <x.h> look up the same map.
	Includes map[string]string
	// Defines predefines object-like macros (value may be empty).
	Defines map[string]string
	// MaxIncludeDepth bounds nested includes; 0 means the default (16).
	MaxIncludeDepth int
}

// Error is a preprocessing error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type macro struct {
	params   []string // nil for object-like
	funcLike bool
	body     string
}

type pp struct {
	opt    Options
	macros map[string]macro
	out    []token.Line
	errs   []error
}

// Preprocess runs the preprocessor over src (named file for positions) and
// returns the expanded, line-mapped output.
func Preprocess(file, src string, opt Options) ([]token.Line, []error) {
	p := &pp{opt: opt, macros: map[string]macro{}}
	if p.opt.MaxIncludeDepth == 0 {
		p.opt.MaxIncludeDepth = 16
	}
	for name, val := range opt.Defines {
		p.macros[name] = macro{body: val}
	}
	p.file(file, src, 0)
	return p.out, p.errs
}

func (p *pp) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// condState tracks one #if/#ifdef nesting level.
type condState struct {
	active    bool // this branch is being emitted
	taken     bool // some branch at this level has been taken
	sawElse   bool
	parentOff bool // an enclosing level is inactive
}

func (p *pp) file(file, src string, depth int) {
	if depth > p.opt.MaxIncludeDepth {
		p.errorf(token.Pos{File: file, Line: 1, Col: 1}, "#include nesting too deep")
		return
	}
	lines := logicalLines(file, stripComments(src))
	var conds []condState

	activeNow := func() bool {
		for _, c := range conds {
			if !c.active || c.parentOff {
				return false
			}
		}
		return true
	}

	for _, ln := range lines {
		trimmed := strings.TrimSpace(ln.Text)
		pos := token.Pos{File: ln.File, Line: ln.N, Col: 1}
		if strings.HasPrefix(trimmed, "#") {
			dir, rest := splitDirective(trimmed[1:])
			switch dir {
			case "ifdef", "ifndef":
				name := strings.TrimSpace(rest)
				_, defined := p.macros[name]
				want := defined
				if dir == "ifndef" {
					want = !defined
				}
				conds = append(conds, condState{
					active: want, taken: want, parentOff: !activeNow(),
				})
			case "if":
				v := p.evalCond(pos, rest)
				conds = append(conds, condState{
					active: v, taken: v, parentOff: !activeNow(),
				})
			case "else":
				if len(conds) == 0 {
					p.errorf(pos, "#else without #if")
					continue
				}
				c := &conds[len(conds)-1]
				if c.sawElse {
					p.errorf(pos, "duplicate #else")
				}
				c.sawElse = true
				c.active = !c.taken
				c.taken = true
			case "endif":
				if len(conds) == 0 {
					p.errorf(pos, "#endif without #if")
					continue
				}
				conds = conds[:len(conds)-1]
			case "define":
				if activeNow() {
					p.define(pos, rest)
				}
			case "undef":
				if activeNow() {
					delete(p.macros, strings.TrimSpace(rest))
				}
			case "include":
				if activeNow() {
					p.include(pos, rest, depth)
				}
			case "error":
				if activeNow() {
					p.errorf(pos, "#error %s", strings.TrimSpace(rest))
				}
			case "pragma":
				// Ignored.
			case "":
				// Null directive.
			default:
				if activeNow() {
					p.errorf(pos, "unknown directive #%s", dir)
				}
			}
			continue
		}
		if !activeNow() {
			continue
		}
		expanded := p.expand(pos, ln.Text, nil)
		p.out = append(p.out, token.Line{File: ln.File, N: ln.N, Text: expanded})
	}
	if len(conds) != 0 {
		p.errorf(token.Pos{File: file, Line: len(lines), Col: 1}, "unterminated #if")
	}
}

// splitDirective splits "define FOO 1" into ("define", " FOO 1").
func splitDirective(s string) (string, string) {
	s = strings.TrimLeft(s, " \t")
	i := 0
	for i < len(s) && s[i] >= 'a' && s[i] <= 'z' {
		i++
	}
	return s[:i], s[i:]
}

func (p *pp) define(pos token.Pos, rest string) {
	rest = strings.TrimLeft(rest, " \t")
	i := 0
	for i < len(rest) && isIdentByte(rest[i], i == 0) {
		i++
	}
	if i == 0 {
		p.errorf(pos, "#define requires a macro name")
		return
	}
	name := rest[:i]
	rest = rest[i:]
	if strings.HasPrefix(rest, "(") {
		// Function-like: parameters up to the matching ).
		end := strings.IndexByte(rest, ')')
		if end < 0 {
			p.errorf(pos, "#define %s: missing ) in parameter list", name)
			return
		}
		var params []string
		inner := strings.TrimSpace(rest[1:end])
		if inner != "" {
			for _, prm := range strings.Split(inner, ",") {
				params = append(params, strings.TrimSpace(prm))
			}
		}
		p.macros[name] = macro{params: params, funcLike: true, body: strings.TrimSpace(rest[end+1:])}
		return
	}
	p.macros[name] = macro{body: strings.TrimSpace(rest)}
}

func (p *pp) include(pos token.Pos, rest string, depth int) {
	rest = strings.TrimSpace(rest)
	var name string
	switch {
	case strings.HasPrefix(rest, `"`):
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			p.errorf(pos, "#include: unterminated file name")
			return
		}
		name = rest[1 : 1+end]
	case strings.HasPrefix(rest, "<"):
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			p.errorf(pos, "#include: unterminated file name")
			return
		}
		name = rest[1:end]
	default:
		p.errorf(pos, "#include expects \"file\" or <file>")
		return
	}
	src, ok := p.opt.Includes[name]
	if !ok {
		p.errorf(pos, "#include: %q not found", name)
		return
	}
	p.file(name, src, depth+1)
}

// evalCond evaluates a #if condition: integer literals, defined(NAME),
// defined NAME, !, &&, ||, comparisons (== != < <= > >=), additive and
// multiplicative arithmetic, parentheses, and expanded object-like macros.
func (p *pp) evalCond(pos token.Pos, s string) bool {
	e := condEval{pp: p, pos: pos, s: s}
	v := e.orExpr()
	e.skipWS()
	if e.i < len(e.s) && !e.failed {
		p.errorf(pos, "#if: trailing characters %q", e.s[e.i:])
	}
	return v != 0
}

type condEval struct {
	pp     *pp
	pos    token.Pos
	s      string
	i      int
	failed bool
}

func (e *condEval) skipWS() {
	for e.i < len(e.s) && (e.s[e.i] == ' ' || e.s[e.i] == '\t') {
		e.i++
	}
}

func (e *condEval) orExpr() int64 {
	v := e.andExpr()
	for {
		e.skipWS()
		if strings.HasPrefix(e.s[e.i:], "||") {
			e.i += 2
			w := e.andExpr()
			if v != 0 || w != 0 {
				v = 1
			} else {
				v = 0
			}
			continue
		}
		return v
	}
}

func (e *condEval) andExpr() int64 {
	v := e.cmpExpr()
	for {
		e.skipWS()
		if strings.HasPrefix(e.s[e.i:], "&&") {
			e.i += 2
			w := e.cmpExpr()
			if v != 0 && w != 0 {
				v = 1
			} else {
				v = 0
			}
			continue
		}
		return v
	}
}

func (e *condEval) cmpExpr() int64 {
	v := e.addExpr()
	for {
		e.skipWS()
		rest := e.s[e.i:]
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch {
		case strings.HasPrefix(rest, "=="):
			e.i += 2
			v = b2i(v == e.addExpr())
		case strings.HasPrefix(rest, "!="):
			e.i += 2
			v = b2i(v != e.addExpr())
		case strings.HasPrefix(rest, "<="):
			e.i += 2
			v = b2i(v <= e.addExpr())
		case strings.HasPrefix(rest, ">="):
			e.i += 2
			v = b2i(v >= e.addExpr())
		case strings.HasPrefix(rest, "<") && !strings.HasPrefix(rest, "<<"):
			e.i++
			v = b2i(v < e.addExpr())
		case strings.HasPrefix(rest, ">") && !strings.HasPrefix(rest, ">>"):
			e.i++
			v = b2i(v > e.addExpr())
		default:
			return v
		}
	}
}

func (e *condEval) addExpr() int64 {
	v := e.mulExpr()
	for {
		e.skipWS()
		if e.i >= len(e.s) {
			return v
		}
		switch e.s[e.i] {
		case '+':
			e.i++
			v += e.mulExpr()
		case '-':
			e.i++
			v -= e.mulExpr()
		default:
			return v
		}
	}
}

func (e *condEval) mulExpr() int64 {
	v := e.unary()
	for {
		e.skipWS()
		if e.i >= len(e.s) {
			return v
		}
		switch e.s[e.i] {
		case '*':
			e.i++
			v *= e.unary()
		case '/':
			e.i++
			if d := e.unary(); d != 0 {
				v /= d
			} else {
				e.fail("division by zero in #if")
			}
		case '%':
			e.i++
			if d := e.unary(); d != 0 {
				v %= d
			} else {
				e.fail("modulo by zero in #if")
			}
		default:
			return v
		}
	}
}

func (e *condEval) unary() int64 {
	e.skipWS()
	if e.i < len(e.s) && e.s[e.i] == '!' {
		e.i++
		if e.unary() == 0 {
			return 1
		}
		return 0
	}
	if e.i < len(e.s) && e.s[e.i] == '(' {
		e.i++
		v := e.orExpr()
		e.skipWS()
		if e.i < len(e.s) && e.s[e.i] == ')' {
			e.i++
		} else {
			e.fail("missing )")
		}
		return v
	}
	return e.primary()
}

func (e *condEval) fail(msg string) {
	if !e.failed {
		e.pp.errorf(e.pos, "#if: %s", msg)
		e.failed = true
	}
}

func (e *condEval) primary() int64 {
	e.skipWS()
	if e.i >= len(e.s) {
		e.fail("unexpected end of condition")
		return 0
	}
	c := e.s[e.i]
	if c >= '0' && c <= '9' {
		j := e.i
		for j < len(e.s) && isIdentByte(e.s[j], false) {
			j++
		}
		v, err := strconv.ParseInt(strings.TrimRight(e.s[e.i:j], "uUlL"), 0, 64)
		if err != nil {
			e.fail("bad integer in condition")
		}
		e.i = j
		return v
	}
	if isIdentByte(c, true) {
		j := e.i
		for j < len(e.s) && isIdentByte(e.s[j], false) {
			j++
		}
		name := e.s[e.i:j]
		e.i = j
		if name == "defined" {
			e.skipWS()
			paren := false
			if e.i < len(e.s) && e.s[e.i] == '(' {
				paren = true
				e.i++
				e.skipWS()
			}
			k := e.i
			for k < len(e.s) && isIdentByte(e.s[k], k == e.i) {
				k++
			}
			arg := e.s[e.i:k]
			e.i = k
			if paren {
				e.skipWS()
				if e.i < len(e.s) && e.s[e.i] == ')' {
					e.i++
				} else {
					e.fail("defined: missing )")
				}
			}
			if _, ok := e.pp.macros[arg]; ok {
				return 1
			}
			return 0
		}
		// Expand object-like macro to an integer if possible; undefined
		// identifiers evaluate to 0 as in standard C.
		if m, ok := e.pp.macros[name]; ok && !m.funcLike {
			if v, err := strconv.ParseInt(strings.TrimSpace(m.body), 0, 64); err == nil {
				return v
			}
		}
		return 0
	}
	e.fail(fmt.Sprintf("unexpected character %q", c))
	e.i++
	return 0
}

func isIdentByte(c byte, first bool) bool {
	if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// expand performs macro expansion on one line of text. active guards
// against recursive expansion of the same macro.
func (p *pp) expand(pos token.Pos, text string, active map[string]bool) string {
	var sb strings.Builder
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '"' || c == '\'':
			// Copy string/char literal verbatim.
			q := c
			sb.WriteByte(c)
			i++
			for i < len(text) {
				sb.WriteByte(text[i])
				if text[i] == '\\' && i+1 < len(text) {
					i++
					sb.WriteByte(text[i])
					i++
					continue
				}
				if text[i] == q {
					i++
					break
				}
				i++
			}
		case isIdentByte(c, true):
			j := i
			for j < len(text) && isIdentByte(text[j], false) {
				j++
			}
			name := text[i:j]
			m, ok := p.macros[name]
			if !ok || active[name] {
				sb.WriteString(name)
				i = j
				continue
			}
			if !m.funcLike {
				sb.WriteString(p.withActive(pos, m.body, active, name))
				i = j
				continue
			}
			// Function-like: require '(' (possibly after spaces).
			k := j
			for k < len(text) && (text[k] == ' ' || text[k] == '\t') {
				k++
			}
			if k >= len(text) || text[k] != '(' {
				sb.WriteString(name)
				i = j
				continue
			}
			args, end, err := splitArgs(text, k)
			if err != nil {
				p.errorf(pos, "macro %s: %v", name, err)
				sb.WriteString(name)
				i = j
				continue
			}
			if len(args) == 1 && len(m.params) == 0 && strings.TrimSpace(args[0]) == "" {
				args = nil
			}
			if len(args) != len(m.params) {
				p.errorf(pos, "macro %s expects %d arguments, got %d",
					name, len(m.params), len(args))
				sb.WriteString(name)
				i = j
				continue
			}
			// Expand arguments first (standard C ordering), then
			// substitute into the body, then rescan.
			expArgs := make(map[string]string, len(args))
			for ai, a := range args {
				expArgs[m.params[ai]] = p.expand(pos, strings.TrimSpace(a), active)
			}
			body := substituteParams(m.body, expArgs)
			sb.WriteString(p.withActive(pos, body, active, name))
			i = end
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return sb.String()
}

func (p *pp) withActive(pos token.Pos, body string, active map[string]bool, name string) string {
	na := make(map[string]bool, len(active)+1)
	for k := range active {
		na[k] = true
	}
	na[name] = true
	return p.expand(pos, body, na)
}

// splitArgs parses a macro argument list starting at the '(' at text[open];
// it returns the raw argument texts and the index just past the ')'.
func splitArgs(text string, open int) ([]string, int, error) {
	depth := 0
	var args []string
	start := open + 1
	i := open
	for i < len(text) {
		c := text[i]
		switch c {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				args = append(args, text[start:i])
				return args, i + 1, nil
			}
		case ',':
			if depth == 1 {
				args = append(args, text[start:i])
				start = i + 1
			}
		case '"', '\'':
			q := c
			i++
			for i < len(text) {
				if text[i] == '\\' {
					i++
				} else if text[i] == q {
					break
				}
				i++
			}
		}
		i++
	}
	return nil, i, fmt.Errorf("unterminated argument list")
}

// substituteParams replaces parameter identifiers in a macro body with
// argument text, respecting identifier boundaries and string literals.
func substituteParams(body string, args map[string]string) string {
	var sb strings.Builder
	i := 0
	for i < len(body) {
		c := body[i]
		switch {
		case c == '"' || c == '\'':
			q := c
			sb.WriteByte(c)
			i++
			for i < len(body) {
				sb.WriteByte(body[i])
				if body[i] == '\\' && i+1 < len(body) {
					i++
					sb.WriteByte(body[i])
					i++
					continue
				}
				if body[i] == q {
					i++
					break
				}
				i++
			}
		case isIdentByte(c, true):
			j := i
			for j < len(body) && isIdentByte(body[j], false) {
				j++
			}
			word := body[i:j]
			if rep, ok := args[word]; ok {
				sb.WriteString(rep)
			} else {
				sb.WriteString(word)
			}
			i = j
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return sb.String()
}

// stripComments removes // and /* */ comments, preserving newlines so line
// numbers survive, and leaving string/char literals intact.
func stripComments(src string) string {
	var sb strings.Builder
	sb.Grow(len(src))
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '"' || c == '\'':
			q := c
			sb.WriteByte(c)
			i++
			for i < len(src) && src[i] != '\n' {
				sb.WriteByte(src[i])
				if src[i] == '\\' && i+1 < len(src) {
					i++
					sb.WriteByte(src[i])
					i++
					continue
				}
				if src[i] == q {
					i++
					break
				}
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			sb.WriteByte(' ')
			for i < len(src) {
				if src[i] == '*' && i+1 < len(src) && src[i+1] == '/' {
					i += 2
					break
				}
				if src[i] == '\n' {
					sb.WriteByte('\n')
				}
				i++
			}
		default:
			sb.WriteByte(c)
			i++
		}
	}
	return sb.String()
}

// logicalLines splits source into lines, joining backslash-continued lines
// (the joined line keeps the first physical line's number).
func logicalLines(file, src string) []token.Line {
	phys := token.SplitLines(file, src)
	var out []token.Line
	for i := 0; i < len(phys); i++ {
		ln := phys[i]
		text := ln.Text
		for strings.HasSuffix(strings.TrimRight(text, " \t"), "\\") && i+1 < len(phys) {
			t := strings.TrimRight(text, " \t")
			text = t[:len(t)-1] + phys[i+1].Text
			i++
		}
		out = append(out, token.Line{File: ln.File, N: ln.N, Text: text})
	}
	return out
}
