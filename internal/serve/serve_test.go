package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
	"focc/internal/servers/apache"
)

// stubSrc is a minimal server program with one handler per behaviour the
// engine must supervise: a fast success, an infinite loop (deadline
// testing), and an unconditional stack smash (crash-loop testing).
const stubSrc = `
char resp[32];

int ok(void)
{
	resp[0] = 'o'; resp[1] = 'k'; resp[2] = 0;
	return 200;
}

int spin(void)
{
	int i = 0;
	for (;;)
		i++;
	return i;
}

int smash(void)
{
	char buf[4];
	int i;
	for (i = 0; i < 200; i++)
		buf[i] = 'x';
	return 0;
}
`

var (
	stubOnce sync.Once
	stubProg *fo.Program
	stubErr  error
)

type stubServer struct{}

func (*stubServer) Name() string { return "stub" }

func (*stubServer) New(mode fo.Mode) (servers.Instance, error) {
	stubOnce.Do(func() { stubProg, stubErr = fo.Compile("stub.c", stubSrc) })
	if stubErr != nil {
		return nil, stubErr
	}
	log := fo.NewEventLog(0)
	m, err := stubProg.NewMachine(fo.MachineConfig{Mode: mode, Log: log})
	if err != nil {
		return nil, err
	}
	return &stubInstance{Base: servers.Base{ServerName: "stub", M: m, EvLog: log}}, nil
}

func (*stubServer) LegitRequests() []servers.Request {
	return []servers.Request{{Op: "ok"}}
}

func (*stubServer) AttackRequest() servers.Request {
	return servers.Request{Op: "smash"}
}

type stubInstance struct {
	servers.Base
}

func (i *stubInstance) Handle(req servers.Request) servers.Response {
	res := i.M.Call(req.Op)
	if res.Outcome != fo.OutcomeOK {
		return servers.Response{Outcome: res.Outcome, Err: res.Err}
	}
	return servers.Response{Outcome: fo.OutcomeOK, Status: int(res.Value.I), Body: "ok"}
}

func (i *stubInstance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
	defer i.BindContext(ctx)()
	return i.Handle(req)
}

// A rewound request is a survivable failure, not a crash: the worker keeps
// its instance (no restart), the request releases its slot and feeds the
// served/latency accounting, and the dedicated Rewound counter ticks.
func TestEngineRewoundRequest(t *testing.T) {
	eng, err := serve.New(&stubServer{}, fo.ModeRewind,
		serve.WithPoolSize(1), serve.WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if resp, err := eng.Submit(nil, servers.Request{Op: "ok"}); err != nil || resp.Outcome != fo.OutcomeOK {
		t.Fatalf("ok = %v outcome %v, want OK", err, resp.Outcome)
	}
	resp, err := eng.Submit(nil, servers.Request{Op: "smash"})
	if err != nil {
		t.Fatalf("smash: %v", err)
	}
	if resp.Outcome != fo.OutcomeRewound {
		t.Fatalf("smash outcome = %v, want rewound", resp.Outcome)
	}
	// The same single worker instance keeps serving.
	if resp, err := eng.Submit(nil, servers.Request{Op: "ok"}); err != nil || resp.Outcome != fo.OutcomeOK {
		t.Fatalf("ok after rewind = %v outcome %v, want OK", err, resp.Outcome)
	}

	st := eng.Stats()
	if st.Served != 3 {
		t.Errorf("Served = %d, want 3 (rewound requests count as served)", st.Served)
	}
	if st.Rewound != 1 {
		t.Errorf("Rewound = %d, want 1", st.Rewound)
	}
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Errorf("Crashes/Restarts = %d/%d, want 0/0 — rewind must not trigger the supervisor", st.Crashes, st.Restarts)
	}
	if lat := eng.Metrics().Latency; lat.Count != 3 {
		t.Errorf("latency count = %d, want 3 (rewound request recorded)", lat.Count)
	}
}

// TestConcurrentMixedLoad drives a mixed legit/attack workload from 8
// concurrent clients through pools in all three paper modes (run with
// -race). Legitimate requests must always be answered by a live instance —
// the supervisor replaces crashed children between requests — and only the
// failure-oblivious pool must do it without any restarts.
func TestConcurrentMixedLoad(t *testing.T) {
	srv := apache.NewServer()
	const clients = 8
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		t.Run(mode.String(), func(t *testing.T) {
			eng, err := serve.New(srv, mode,
				serve.WithPoolSize(4), serve.WithQueueDepth(4*clients))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			legit := srv.LegitRequests()[0]
			attack := srv.AttackRequest()
			var wg sync.WaitGroup
			errc := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						for a := 0; a < 2; a++ {
							if _, err := eng.Submit(nil, attack); err != nil &&
								!errors.Is(err, serve.ErrQueueFull) {
								errc <- err
								return
							}
						}
						for {
							resp, err := eng.Submit(nil, legit)
							if errors.Is(err, serve.ErrQueueFull) {
								time.Sleep(100 * time.Microsecond)
								continue
							}
							if err != nil {
								errc <- err
								return
							}
							if !resp.OK() {
								errc <- errors.New("legit request not OK: " + resp.String())
								return
							}
							break
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			st := eng.Stats()
			if mode == fo.FailureOblivious {
				if st.Crashes != 0 || st.Restarts != 0 {
					t.Errorf("failure-oblivious pool crashed %d / restarted %d, want 0",
						st.Crashes, st.Restarts)
				}
			} else if st.Crashes == 0 {
				t.Errorf("%v pool saw no crashes under attack", mode)
			}
		})
	}
}

// TestStatsScrapeUnderLoad serves a mixed legit/attack workload in all
// three paper modes while two scraper goroutines continuously read
// Engine.Stats and Engine.Metrics (run with -race — before EventLog was
// mutex-guarded this scrape was a data race by construction). It then
// checks the aggregated memory-error telemetry per mode, the per-request
// attribution on responses, and the live latency histogram.
func TestStatsScrapeUnderLoad(t *testing.T) {
	srv := apache.NewServer()
	const clients = 4
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		t.Run(mode.String(), func(t *testing.T) {
			eng, err := serve.New(srv, mode,
				serve.WithPoolSize(2), serve.WithQueueDepth(4*clients))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			legit := srv.LegitRequests()[0]
			attack := srv.AttackRequest()

			stop := make(chan struct{})
			var scrapers sync.WaitGroup
			for s := 0; s < 2; s++ {
				scrapers.Add(1)
				go func() {
					defer scrapers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						st := eng.Stats()
						_ = st.MemErrors.Total()
						m := eng.Metrics()
						_ = m.Latency.P99
					}
				}()
			}

			var attackErrors uint64
			var mu sync.Mutex
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						resp, err := eng.Submit(nil, attack)
						if err == nil {
							mu.Lock()
							attackErrors += resp.MemErrors.Total()
							mu.Unlock()
						}
						for {
							if _, err := eng.Submit(nil, legit); !errors.Is(err, serve.ErrQueueFull) {
								break
							}
							time.Sleep(100 * time.Microsecond)
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			scrapers.Wait()

			st := eng.Stats()
			m := eng.Metrics()
			switch mode {
			case fo.Standard:
				// No checking code: nothing is ever logged.
				if st.MemErrors.Total() != 0 {
					t.Errorf("standard pool logged %d events, want 0", st.MemErrors.Total())
				}
			case fo.BoundsCheck:
				if st.MemErrors.Denied == 0 {
					t.Errorf("bounds-check pool denied %d accesses, want >0", st.MemErrors.Denied)
				}
			case fo.FailureOblivious:
				if st.MemErrors.InvalidWrites == 0 {
					t.Errorf("failure-oblivious pool discarded %d writes, want >0",
						st.MemErrors.InvalidWrites)
				}
				if st.MemErrors.Denied != 0 {
					t.Errorf("failure-oblivious pool denied %d accesses, want 0",
						st.MemErrors.Denied)
				}
				if attackErrors == 0 {
					t.Error("attack responses carried no per-request attribution")
				}
			}
			if m.Latency.Count != st.Served {
				t.Errorf("latency count = %d, served = %d", m.Latency.Count, st.Served)
			}
			if m.Latency.Count > 0 &&
				(m.Latency.P50 > m.Latency.P95 || m.Latency.P95 > m.Latency.P99) {
				t.Errorf("latency percentiles not monotone: %v %v %v",
					m.Latency.P50, m.Latency.P95, m.Latency.P99)
			}
		})
	}
}

// TestCrashedInstanceCountsSurvive verifies the engine folds a dead
// instance's log into the aggregate when the supervisor replaces it: after
// crash-and-restart, the events the fatal request logged are still visible
// in Stats.
func TestCrashedInstanceCountsSurvive(t *testing.T) {
	srv := apache.NewServer()
	eng, err := serve.New(srv, fo.BoundsCheck,
		serve.WithPoolSize(1), serve.WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	resp, err := eng.Submit(nil, srv.AttackRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Crashed() {
		t.Fatalf("bounds-check attack did not crash the instance: %v", resp.Outcome)
	}
	// Serve a legit request so the replacement instance is live, then
	// check the dead instance's denial is still counted.
	if _, err := eng.Submit(nil, srv.LegitRequests()[0]); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Restarts == 0 {
		t.Fatal("no restart after crash")
	}
	if st.MemErrors.Denied == 0 {
		t.Error("denied count from the crashed instance was lost on restart")
	}
}

// TestDeadlineExpiry submits a request that loops forever under a short
// deadline: the response must carry OutcomeDeadline, the instance must
// survive (no restart), and the same worker must serve a subsequent
// legitimate request.
func TestDeadlineExpiry(t *testing.T) {
	eng, err := serve.New(&stubServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(4),
		serve.WithDeadline(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	resp, err := eng.Submit(nil, servers.Request{Op: "spin"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != fo.OutcomeDeadline {
		t.Fatalf("spin outcome = %v, want deadline-exceeded", resp.Outcome)
	}
	if resp.Crashed() {
		t.Error("deadline outcome must not count as a crash")
	}
	resp, err = eng.Submit(nil, servers.Request{Op: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK() || resp.Status != 200 {
		t.Fatalf("post-deadline request = %v, want 200 OK", resp)
	}
	st := eng.Stats()
	if st.Timeouts == 0 {
		t.Error("timeout not counted")
	}
	if st.Restarts != 0 || st.Crashes != 0 {
		t.Errorf("deadline killed the instance: crashes=%d restarts=%d",
			st.Crashes, st.Restarts)
	}
}

// TestQueueFullRejection fills the single worker and the one-slot queue
// with slow requests; further submissions must be rejected immediately with
// ErrQueueFull (backpressure, not unbounded queuing). Once the per-request
// deadline expires the slow requests, their queue slots must be released:
// a fresh submission is admitted and served.
func TestQueueFullRejection(t *testing.T) {
	eng, err := serve.New(&stubServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(1),
		serve.WithDeadline(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var wg sync.WaitGroup
	slow := make(chan servers.Response, 2)
	wg.Add(1)
	go func() { // occupies the worker until its deadline fires
		defer wg.Done()
		if resp, err := eng.Submit(nil, servers.Request{Op: "spin"}); err == nil {
			slow <- resp
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the worker pick the task up
	wg.Add(1)
	go func() { // fills the queue's single slot
		defer wg.Done()
		if resp, err := eng.Submit(nil, servers.Request{Op: "spin"}); err == nil {
			slow <- resp
		}
	}()
	time.Sleep(20 * time.Millisecond)
	rejected := 0
	for i := 0; i < 5; i++ {
		if _, err := eng.Submit(nil, servers.Request{Op: "ok"}); errors.Is(err, serve.ErrQueueFull) {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatal("no submissions rejected while queue was full")
	}
	if eng.Stats().Rejected == 0 {
		t.Error("rejections not counted")
	}

	// Both slow requests run out their deadline — one canceled mid-
	// execution, one expired while queued — freeing the worker and the
	// queue slot without killing anything.
	wg.Wait()
	close(slow)
	for resp := range slow {
		if resp.Outcome != fo.OutcomeDeadline {
			t.Errorf("slow request outcome = %v, want deadline-exceeded", resp.Outcome)
		}
	}
	resp, err := eng.Submit(nil, servers.Request{Op: "ok"})
	if err != nil {
		t.Fatalf("post-expiry submit not admitted: %v", err)
	}
	if !resp.OK() || resp.Status != 200 {
		t.Fatalf("post-expiry request = %v, want 200 OK", resp)
	}
	st := eng.Stats()
	if st.Timeouts < 2 {
		t.Errorf("timeouts = %d, want >= 2", st.Timeouts)
	}
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Errorf("deadline expiry killed the instance: crashes=%d restarts=%d",
			st.Crashes, st.Restarts)
	}
}

// TestChaosKillAndDelayCounters drives a single-worker engine with
// deterministic chaos injection: every 3rd request kills the instance and
// every 4th delays it. The counters must match the cadences exactly, every
// request must still be answered OK (the response is delivered before the
// kill), and chaos kills must show up as restarts — not crashes.
func TestChaosKillAndDelayCounters(t *testing.T) {
	eng, err := serve.New(&stubServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(4),
		serve.WithChaos(serve.ChaosConfig{
			KillEvery:    3,
			LatencyEvery: 4,
			Latency:      time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const n = 12
	for i := 0; i < n; i++ {
		resp, err := eng.Submit(nil, servers.Request{Op: "ok"})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !resp.OK() || resp.Status != 200 {
			t.Fatalf("request %d = %v, want 200 OK", i, resp)
		}
	}
	st := eng.Stats()
	if want := uint64(n / 3); st.ChaosKills != want {
		t.Errorf("chaos kills = %d, want %d", st.ChaosKills, want)
	}
	if want := uint64(n / 4); st.ChaosDelays != want {
		t.Errorf("chaos delays = %d, want %d", st.ChaosDelays, want)
	}
	if st.Restarts != st.ChaosKills {
		t.Errorf("restarts = %d, want %d (one per chaos kill)", st.Restarts, st.ChaosKills)
	}
	if st.Crashes != 0 {
		t.Errorf("chaos kills counted as crashes: %d", st.Crashes)
	}
	if st.Served != n {
		t.Errorf("served = %d, want %d", st.Served, n)
	}
}

// TestChaosLatencyTripsDeadline injects a delay longer than the engine's
// per-request deadline: the delayed request must come back with
// fo.OutcomeDeadline (counted as a timeout, not a crash) and the instance
// must survive the episode.
func TestChaosLatencyTripsDeadline(t *testing.T) {
	eng, err := serve.New(&stubServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(4),
		serve.WithDeadline(20*time.Millisecond),
		serve.WithChaos(serve.ChaosConfig{
			LatencyEvery: 1,
			Latency:      200 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	resp, err := eng.Submit(nil, servers.Request{Op: "spin"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != fo.OutcomeDeadline {
		t.Fatalf("delayed request outcome = %v, want deadline-exceeded", resp.Outcome)
	}
	st := eng.Stats()
	if st.ChaosDelays != 1 {
		t.Errorf("chaos delays = %d, want 1", st.ChaosDelays)
	}
	if st.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", st.Timeouts)
	}
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Errorf("injected latency killed the instance: crashes=%d restarts=%d",
			st.Crashes, st.Restarts)
	}
}

// TestBreakerTripsOnCrashLoop drives a crash-on-every-request workload in
// Standard mode: after the configured number of consecutive crashes the
// worker must trip the circuit breaker (parking for the cooldown) instead
// of hot-restarting forever — yet every submitted request still gets a
// response.
func TestBreakerTripsOnCrashLoop(t *testing.T) {
	eng, err := serve.New(&stubServer{}, fo.Standard,
		serve.WithPoolSize(1), serve.WithQueueDepth(4),
		serve.WithBackoff(time.Millisecond, 4*time.Millisecond),
		serve.WithBreaker(3, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const n = 7
	for i := 0; i < n; i++ {
		resp, err := eng.Submit(nil, servers.Request{Op: "smash"})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Crashed() {
			t.Fatalf("smash request %d did not crash (%v)", i, resp.Outcome)
		}
	}
	st := eng.Stats()
	if st.BreakerTrips == 0 {
		t.Errorf("crash loop of %d requests tripped the breaker 0 times", n)
	}
	if st.Crashes != n {
		t.Errorf("crashes = %d, want %d", st.Crashes, n)
	}
	if st.Served != n {
		t.Errorf("served = %d, want %d (every request must be answered)", st.Served, n)
	}
}

// TestCloseUnblocksSubmitters verifies a Close with requests in flight
// returns ErrClosed to blocked submitters instead of deadlocking.
func TestCloseUnblocksSubmitters(t *testing.T) {
	eng, err := serve.New(&stubServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := eng.Submit(nil, servers.Request{Op: "spin"})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() { eng.Close(); close(done) }()
	select {
	case err := <-errc:
		if !errors.Is(err, serve.ErrClosed) {
			t.Fatalf("blocked submit returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit still blocked after Close")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
}

// TestStatsScrapeUnderRestartStorm pins the O(live-pool) scrape: Stats()
// folds retired instances' telemetry into a cached aggregate at retirement
// time, so concurrent scrapers during a restart storm (every request
// crashes its instance) see monotone, never-lost counters — and the scrape
// cost stays flat no matter how many instances have been retired
// (BenchmarkStatsScrape tracks the cost itself).
func TestStatsScrapeUnderRestartStorm(t *testing.T) {
	eng, err := serve.New(&stubServer{}, fo.Standard,
		serve.WithPoolSize(2), serve.WithQueueDepth(8),
		serve.WithBackoff(time.Millisecond, 2*time.Millisecond),
		serve.WithBreaker(0, 0)) // no breaker: keep the storm raging
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			var prev serve.Stats
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := eng.Stats()
				if st.Crashes < prev.Crashes || st.Served < prev.Served {
					t.Errorf("scrape went backwards: crashes %d→%d served %d→%d",
						prev.Crashes, st.Crashes, prev.Served, st.Served)
					return
				}
				prev = st
				_ = st.MemErrors.Total()
				_ = eng.Metrics().Latency.P99
			}
		}()
	}

	const storms = 40
	for i := 0; i < storms; i++ {
		resp, err := eng.Submit(nil, servers.Request{Op: "smash"})
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Crashed() {
			t.Fatalf("smash %d outcome = %v, want a crash", i, resp.Outcome)
		}
	}
	close(stop)
	scrapers.Wait()

	st := eng.Stats()
	if st.Crashes != storms {
		t.Errorf("crashes = %d, want %d", st.Crashes, storms)
	}
	if st.Served != storms {
		t.Errorf("served = %d, want %d (every stormed request answered)", st.Served, storms)
	}
	if st.Restarts == 0 {
		t.Error("restart storm recorded no restarts")
	}
}
