package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRegionsDisjoint(t *testing.T) {
	as := New()
	lit := as.InternLiteral("hello\x00")
	g := as.AllocGlobal("g", 32)
	h, fault := as.Malloc(16)
	if fault != nil {
		t.Fatal(fault)
	}
	f, fault := as.PushFrame("fn", 24, []LocalSpec{{Name: "x", Off: 0, Size: 24}})
	if fault != nil {
		t.Fatal(fault)
	}
	units := []*Unit{lit, g, h, f.Local(0)}
	for i, a := range units {
		for j, b := range units {
			if i == j {
				continue
			}
			if a.Base < b.End() && b.Base < a.End() {
				t.Errorf("units %d and %d overlap: [%x,%x) [%x,%x)",
					i, j, a.Base, a.End(), b.Base, b.End())
			}
		}
	}
}

func TestLiteralInterning(t *testing.T) {
	as := New()
	a := as.InternLiteral("same\x00")
	b := as.InternLiteral("same\x00")
	c := as.InternLiteral("diff\x00")
	if a != b {
		t.Error("identical literals not interned")
	}
	if a == c {
		t.Error("different literals merged")
	}
	if !a.ReadOnly {
		t.Error("literal not read-only")
	}
}

func TestMallocFindAndFree(t *testing.T) {
	as := New()
	u, fault := as.Malloc(64)
	if fault != nil {
		t.Fatal(fault)
	}
	if got := as.FindUnit(u.Base + 10); got != u {
		t.Errorf("FindUnit inside block = %v", got)
	}
	if f := as.Free(u.Base); f != nil {
		t.Fatalf("free: %v", f)
	}
	if !u.Dead {
		t.Error("freed unit not dead")
	}
	if f := as.Free(u.Base); f == nil || f.Kind != FaultBadFree {
		t.Errorf("double free fault = %v", f)
	}
}

func TestFreeInvalidPointer(t *testing.T) {
	as := New()
	u, _ := as.Malloc(64)
	if f := as.Free(u.Base + 8); f == nil || f.Kind != FaultBadFree {
		t.Errorf("interior free fault = %v", f)
	}
	if f := as.Free(0xdead); f == nil {
		t.Error("free of wild pointer should fault")
	}
}

func TestHeapHeaderCorruption(t *testing.T) {
	as := New()
	a, _ := as.Malloc(16)
	b, _ := as.Malloc(16)
	// Write past the end of a into b's header.
	overrun := make([]byte, 24)
	for i := range overrun {
		overrun[i] = 0x41
	}
	if f := as.RawWrite(a.Base, overrun); f != nil {
		t.Fatalf("raw write: %v", f)
	}
	if !as.HeapCorrupted() {
		t.Fatal("header overwrite not detected")
	}
	if f := as.Free(b.Base); f == nil || f.Kind != FaultHeapCorrupt {
		t.Errorf("free after corruption = %v", f)
	}
	if _, f := as.Malloc(8); f == nil || f.Kind != FaultHeapCorrupt {
		t.Errorf("malloc after corruption = %v", f)
	}
}

func TestHeapOverrunIntoNextBlockData(t *testing.T) {
	// An overrun that skips the header region would corrupt the next
	// block's data silently (classic heap corruption).
	as := New()
	a, _ := as.Malloc(16)
	b, _ := as.Malloc(16)
	copy(b.Data, "BBBB")
	// Write at b's first byte via an address computed from a.
	off := b.Base - a.Base
	if f := as.RawWrite(a.Base+off, []byte{'X'}); f != nil {
		t.Fatal(f)
	}
	if b.Data[0] != 'X' {
		t.Error("raw write did not corrupt the neighbouring block")
	}
}

func TestRawAccessUnmapped(t *testing.T) {
	as := New()
	var buf [4]byte
	if f := as.RawRead(0x10, buf[:]); f == nil || f.Kind != FaultSegv {
		t.Errorf("read of unmapped = %v", f)
	}
	if f := as.RawWrite(0x10, buf[:]); f == nil || f.Kind != FaultSegv {
		t.Errorf("write of unmapped = %v", f)
	}
	// Past the heap cursor is unmapped too.
	u, _ := as.Malloc(8)
	if f := as.RawWrite(u.End()+1024, buf[:]); f == nil {
		t.Error("write past heap cursor should fault")
	}
}

func TestWriteToLiteralFaults(t *testing.T) {
	as := New()
	lit := as.InternLiteral("ro\x00")
	if f := as.RawWrite(lit.Base, []byte{'x'}); f == nil || f.Kind != FaultSegv {
		t.Errorf("write to .rodata = %v", f)
	}
}

func TestFrameCanary(t *testing.T) {
	as := New()
	f, fault := as.PushFrame("victim", 16, []LocalSpec{{Name: "buf", Off: 0, Size: 16}})
	if fault != nil {
		t.Fatal(fault)
	}
	// Overrun the frame into the canary (24 bytes: the 16-byte frame plus
	// the 8-byte guard; further would hit the unmapped top of the stack).
	overrun := make([]byte, 24)
	for i := range overrun {
		overrun[i] = 0x41
	}
	if fw := as.RawWrite(f.Base, overrun); fw != nil {
		t.Fatal(fw)
	}
	fault = as.PopFrame(f)
	if fault == nil || fault.Kind != FaultStackSmash {
		t.Errorf("pop after canary clobber = %v", fault)
	}
}

func TestFrameCleanPop(t *testing.T) {
	as := New()
	f, _ := as.PushFrame("fn", 16, []LocalSpec{{Name: "x", Off: 0, Size: 8}})
	if fault := as.PopFrame(f); fault != nil {
		t.Errorf("clean pop = %v", fault)
	}
}

func TestStaleStackData(t *testing.T) {
	// A popped frame's bytes persist; a new frame at the same address sees
	// them (the Midnight Commander precondition).
	as := New()
	f1, _ := as.PushFrame("a", 16, []LocalSpec{{Name: "buf", Off: 0, Size: 16}})
	copy(f1.Local(0).Data, "GARBAGE!")
	as.PopFrame(f1)
	f2, _ := as.PushFrame("b", 16, []LocalSpec{{Name: "buf", Off: 0, Size: 16}})
	if !bytes.HasPrefix(f2.Local(0).Data, []byte("GARBAGE!")) {
		t.Errorf("fresh frame data = %q, want stale bytes", f2.Local(0).Data[:8])
	}
}

func TestPerLocalUnits(t *testing.T) {
	as := New()
	f, _ := as.PushFrame("fn", 32, []LocalSpec{
		{Name: "a", Off: 0, Size: 8},
		{Name: "b", Off: 8, Size: 16},
		{Name: "c", Off: 24, Size: 4},
	})
	a, b, c := f.Local(0), f.Local(8), f.Local(24)
	if a == nil || b == nil || c == nil {
		t.Fatal("missing local units")
	}
	if a.End() != b.Base || b.End() != c.Base {
		t.Errorf("locals not adjacent: a=[%x,%x) b=[%x,%x) c=[%x,%x)",
			a.Base, a.End(), b.Base, b.End(), c.Base, c.End())
	}
	// The object table must resolve addresses to the right local.
	if as.FindUnit(b.Base+3) != b {
		t.Error("FindUnit resolved to the wrong local")
	}
	// One-past-end of a belongs to b, not a.
	if as.FindUnit(a.End()) != b {
		t.Error("adjacent boundary resolved incorrectly")
	}
}

func TestStackOverflow(t *testing.T) {
	as := NewWithStack(4096)
	var frames []*Frame
	for {
		f, fault := as.PushFrame("deep", 512, []LocalSpec{{Name: "x", Off: 0, Size: 512}})
		if fault != nil {
			if fault.Kind != FaultStackOverflow {
				t.Fatalf("fault = %v, want stack overflow", fault)
			}
			break
		}
		frames = append(frames, f)
		if len(frames) > 100 {
			t.Fatal("no overflow after 100 frames in a 4K stack")
		}
	}
}

func TestShadowProvenance(t *testing.T) {
	as := New()
	g := as.AllocGlobal("g", 64)
	target, _ := as.Malloc(8)
	g.SetShadow(16, target)
	if got := g.GetShadow(16); got != target {
		t.Errorf("GetShadow = %v", got)
	}
	// A 1-byte overwrite anywhere within the stored pointer clears it.
	g.ClearShadowRange(20, 1)
	if got := g.GetShadow(16); got != nil {
		t.Error("overlapping write did not clear shadow")
	}
	// Non-overlapping writes leave it alone.
	g.SetShadow(16, target)
	g.ClearShadowRange(0, 8)
	g.ClearShadowRange(24, 8)
	if g.GetShadow(16) == nil {
		t.Error("non-overlapping clears removed shadow")
	}
}

func TestMallocZeroSize(t *testing.T) {
	as := New()
	u, fault := as.Malloc(0)
	if fault != nil || u.Size == 0 {
		t.Errorf("malloc(0) = %v, %v", u, fault)
	}
}

func TestStats(t *testing.T) {
	as := New()
	u, _ := as.Malloc(8)
	as.Free(u.Base)
	f, _ := as.PushFrame("fn", 8, []LocalSpec{{Name: "x", Off: 0, Size: 8}})
	as.PopFrame(f)
	st := as.Stats()
	if st.Mallocs != 1 || st.Frees != 1 || st.FramesPush != 1 || st.FramesPop != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRawReadAcrossUnits(t *testing.T) {
	as := New()
	a := as.AllocGlobal("a", 16)
	b := as.AllocGlobal("b", 16)
	copy(a.Data, "AAAAAAAAAAAAAAAA")
	copy(b.Data, "BBBBBBBBBBBBBBBB")
	if b.Base != a.End() {
		t.Skipf("globals not adjacent (%x vs %x)", a.End(), b.Base)
	}
	buf := make([]byte, 20)
	if f := as.RawRead(a.Base+12, buf); f != nil {
		t.Fatal(f)
	}
	if string(buf) != "AAAABBBBBBBBBBBBBBBB" {
		t.Errorf("cross-unit read = %q", buf)
	}
}

func TestFaultStrings(t *testing.T) {
	f := &Fault{Kind: FaultSegv, Addr: 0x123, Msg: "boom"}
	if s := f.Error(); s == "" || !bytes.Contains([]byte(s), []byte("0x123")) {
		t.Errorf("fault error = %q", s)
	}
	for k := FaultSegv; k <= FaultOOM; k++ {
		if k.String() == "fault" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

// Property: heap allocations never overlap each other or their headers.
func TestMallocNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := New()
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, s := range sizes {
			if len(spans) > 64 {
				break
			}
			u, fault := as.Malloc(uint64(s%2048) + 1)
			if fault != nil {
				return false
			}
			spans = append(spans, span{u.Base, u.End()})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FindUnit agrees with the unit an allocation returned, for every
// interior address probed.
func TestFindUnitConsistencyProperty(t *testing.T) {
	f := func(sizes []uint16, probe uint16) bool {
		as := New()
		for _, s := range sizes {
			sz := uint64(s%512) + 1
			u, fault := as.Malloc(sz)
			if fault != nil {
				return false
			}
			addr := u.Base + uint64(probe)%sz
			if as.FindUnit(addr) != u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RawWrite then RawRead round-trips within any mapped unit.
func TestRawRoundTripProperty(t *testing.T) {
	f := func(data []byte, off uint8) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 256 {
			data = data[:256]
		}
		as := New()
		u := as.AllocGlobal("g", 512)
		addr := u.Base + uint64(off)
		if f := as.RawWrite(addr, data); f != nil {
			return false
		}
		got := make([]byte, len(data))
		if f := as.RawRead(addr, got); f != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
