package interp_test

// Batch-granularity checkpoint epochs (Machine.BeginBatchEpoch /
// EndBatchEpoch): a serving engine that coalesces several requests onto
// one dispatch brackets them in one checkpoint instead of one per call.
// These tests pin the epoch contract on all three execution engines —
// idempotent re-arm while open, commit on EndBatchEpoch, rollback
// granularity coarsened to the epoch (a rewind discards every call made
// under it, not just the failed one), and no-op outside ModeRewind.

import (
	"testing"

	"focc/internal/core"
	"focc/internal/corpus"
	"focc/internal/interp"
)

func newEpochMachine(t *testing.T, engine string, mode core.Mode) *interp.Machine {
	t.Helper()
	prog := compileWithCPP(t, corpus.SrcBatchEpoch)
	cfg := engineConfig(t, engine, prog, corpus.SrcBatchEpoch)
	cfg.Mode = mode
	m, err := interp.New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A clean batch commits exactly once: calls inside the epoch see each
// other's mutations, EndBatchEpoch makes them durable, and the simulated
// cycle count stays bit-identical across engines (the epoch is host-level
// bookkeeping, not guest work).
func TestBatchEpochCommitsCleanBatch(t *testing.T) {
	var refCycles uint64
	for i, engine := range engineNames {
		t.Run(engine, func(t *testing.T) {
			m := newEpochMachine(t, engine, core.ModeRewind)
			m.BeginBatchEpoch()
			if res := m.Call("bump", interp.Int(4)); res.Outcome != interp.OutcomeOK || res.Value.I != 1 {
				t.Fatalf("bump#1 = %v/%d (%v), want OK/1", res.Outcome, res.Value.I, res.Err)
			}
			m.BeginBatchEpoch() // idempotent while open
			if res := m.Call("bump", interp.Int(4)); res.Outcome != interp.OutcomeOK || res.Value.I != 2 {
				t.Fatalf("bump#2 = %v/%d (%v), want OK/2", res.Outcome, res.Value.I, res.Err)
			}
			m.EndBatchEpoch()
			if res := m.Call("get", interp.Int(0)); res.Value.I != 2 {
				t.Errorf("counter after committed batch = %d, want 2", res.Value.I)
			}
			if i == 0 {
				refCycles = m.SimCycles()
			} else if c := m.SimCycles(); c != refCycles {
				t.Errorf("sim cycles = %d, want %d (parity with %s)", c, refCycles, engineNames[0])
			}
		})
	}
}

// A rewound call consumes the epoch and rolls back to the epoch boundary:
// the failed call AND its clean predecessors under the same epoch are
// discarded — the documented coarsening that batching trades for one
// checkpoint per batch. Re-arming starts a fresh epoch and the machine
// keeps serving.
func TestBatchEpochRewindRollsBackWholeEpoch(t *testing.T) {
	for _, engine := range engineNames {
		t.Run(engine, func(t *testing.T) {
			m := newEpochMachine(t, engine, core.ModeRewind)
			m.BeginBatchEpoch()
			if res := m.Call("bump", interp.Int(4)); res.Outcome != interp.OutcomeOK || res.Value.I != 1 {
				t.Fatalf("bump#1 = %v/%d (%v), want OK/1", res.Outcome, res.Value.I, res.Err)
			}
			if res := m.Call("bump", interp.Int(24)); res.Outcome != interp.OutcomeRewound {
				t.Fatalf("bump(24) = %v (%v), want rewound", res.Outcome, res.Err)
			}
			// The epoch is consumed: both bumps are gone.
			if res := m.Call("get", interp.Int(0)); res.Value.I != 0 {
				t.Errorf("counter after epoch rewind = %d, want 0 (whole epoch discarded)", res.Value.I)
			}
			// Re-arm and serve on.
			m.BeginBatchEpoch()
			if res := m.Call("bump", interp.Int(4)); res.Outcome != interp.OutcomeOK || res.Value.I != 1 {
				t.Fatalf("bump after re-arm = %v/%d (%v), want OK/1", res.Outcome, res.Value.I, res.Err)
			}
			m.EndBatchEpoch()
			if res := m.Call("get", interp.Int(0)); res.Value.I != 1 {
				t.Errorf("counter after re-armed batch = %d, want 1", res.Value.I)
			}
		})
	}
}

// Outside ModeRewind the epoch is a no-op: BeginBatchEpoch arms nothing,
// EndBatchEpoch commits nothing, and the mode's own continuation policy
// (here failure-oblivious write discarding) is untouched.
func TestBatchEpochNoopOutsideRewindMode(t *testing.T) {
	for _, engine := range engineNames {
		t.Run(engine, func(t *testing.T) {
			m := newEpochMachine(t, engine, core.FailureOblivious)
			m.BeginBatchEpoch()
			if res := m.Call("bump", interp.Int(24)); res.Outcome != interp.OutcomeOK || res.Value.I != 1 {
				t.Fatalf("bump(24) = %v/%d (%v), want OK/1 (FO discards the overrun)", res.Outcome, res.Value.I, res.Err)
			}
			m.EndBatchEpoch()
			if res := m.Call("get", interp.Int(0)); res.Value.I != 1 {
				t.Errorf("counter = %d, want 1", res.Value.I)
			}
		})
	}
}
