package serve

import (
	"testing"
	"time"
)

// These tests pin the histogram's quantile semantics: nearest-rank over the
// log buckets, each percentile reported as its bucket's inclusive upper
// bound — i.e. biased at most one power of two above the true sample value,
// and never below it.

func TestHistBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                   // exactly the bucket-0 upper bound
		{time.Microsecond + time.Nanosecond, 1}, // just past it
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Duration(1) << 62, histBuckets - 1}, // clamps to the last bucket
	}
	for _, tc := range cases {
		if got := bucketFor(tc.d); got != tc.want {
			t.Errorf("bucketFor(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
	// The upper bound is inclusive: a duration equal to bucketBound(i) must
	// land in bucket i, for every bucket.
	for i := 0; i < histBuckets; i++ {
		if got := bucketFor(bucketBound(i)); got != i {
			t.Errorf("bucketFor(bucketBound(%d)) = %d, want %d", i, got, i)
		}
	}
}

func TestHistSnapshotEmpty(t *testing.T) {
	var h hist
	s := h.snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Mean != 0 || s.Buckets != nil {
		t.Errorf("empty snapshot = %+v, want zero value", s)
	}
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot percentiles = %v/%v/%v, want 0", s.P50, s.P95, s.P99)
	}
}

// A single recorded sample: every percentile is that sample's bucket bound,
// at least the sample value and less than twice it (the one-power-of-two
// bias contract).
func TestHistSnapshotSingleSample(t *testing.T) {
	var h hist
	const d = 5 * time.Millisecond
	h.record(d)
	s := h.snapshot()
	if s.Count != 1 || s.Sum != d || s.Mean != d {
		t.Fatalf("snapshot = %+v, want count 1, sum/mean %v", s, d)
	}
	for _, p := range []time.Duration{s.P50, s.P95, s.P99} {
		if p < d || p >= 2*d {
			t.Errorf("percentile %v outside [%v, %v) — bias exceeds one power of two", p, d, 2*d)
		}
	}
	if len(s.Buckets) != bucketFor(d)+1 {
		t.Errorf("got %d buckets, want trailing-trimmed %d", len(s.Buckets), bucketFor(d)+1)
	}
}

// Nearest-rank at an exact boundary: with 19 fast samples and 1 slow one,
// p95's rank is ceil(0.95·20) = 19, which still lands in the fast bucket;
// only p99 (rank 20) may report the slow outlier. A rank computation that
// was off by one high would drag p95 up three orders of magnitude.
func TestHistQuantileBoundaryRank(t *testing.T) {
	var h hist
	fast, slow := 10*time.Microsecond, 10*time.Millisecond
	for i := 0; i < 19; i++ {
		h.record(fast)
	}
	h.record(slow)
	s := h.snapshot()
	if want := bucketBound(bucketFor(fast)); s.P95 != want {
		t.Errorf("p95 = %v, want fast-cohort bound %v (rank 19 of 20)", s.P95, want)
	}
	if want := bucketBound(bucketFor(slow)); s.P99 != want {
		t.Errorf("p99 = %v, want slow-cohort bound %v (rank 20 of 20)", s.P99, want)
	}
	if want := bucketBound(bucketFor(fast)); s.P50 != want {
		t.Errorf("p50 = %v, want fast-cohort bound %v", s.P50, want)
	}
}

// Merged multi-shard snapshots answer quantiles over the union, not any
// single shard: 3 shards × mixed cohorts, boundary ranks included.
func TestHistQuantileMergedShards(t *testing.T) {
	fast, mid, slow := 10*time.Microsecond, 300*time.Microsecond, 10*time.Millisecond
	var a, b, c hist
	for i := 0; i < 50; i++ {
		a.record(fast)
	}
	for i := 0; i < 45; i++ {
		b.record(mid)
	}
	for i := 0; i < 5; i++ {
		c.record(slow)
	}
	m := mergeLatencySnapshots(a.snapshot(), b.snapshot(), c.snapshot())
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	// Ranks over the union of 100: p50 → 50 (fast), p95 → 95 (mid: the
	// fast+mid cohorts cover ranks 1–95 exactly), p99 → 99 (slow).
	if want := bucketBound(bucketFor(fast)); m.P50 != want {
		t.Errorf("merged p50 = %v, want %v", m.P50, want)
	}
	if want := bucketBound(bucketFor(mid)); m.P95 != want {
		t.Errorf("merged p95 = %v, want %v (rank 95 is the last mid sample)", m.P95, want)
	}
	if want := bucketBound(bucketFor(slow)); m.P99 != want {
		t.Errorf("merged p99 = %v, want %v", m.P99, want)
	}
	if want := 50*fast + 45*mid + 5*slow; m.Sum != want {
		t.Errorf("merged sum = %v, want %v", m.Sum, want)
	}
	// Merging one snapshot is the identity on every derived field.
	one := a.snapshot()
	if got := mergeLatencySnapshots(one); got.Count != one.Count || got.P50 != one.P50 ||
		got.P95 != one.P95 || got.P99 != one.P99 || got.Sum != one.Sum {
		t.Errorf("merge of one snapshot = %+v, want %+v", got, one)
	}
}
