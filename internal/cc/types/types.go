// Package types models the focc C dialect type system: integer types of
// four widths (signed and unsigned), void, pointers, arrays, structs, enums,
// and function types, together with size/alignment rules (LP64: char=1,
// short=2, int=4, long=8, pointer=8) and the usual arithmetic conversions.
package types

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind discriminates the type representations.
type Kind int

const (
	Invalid Kind = iota
	Void
	Char  // plain char: signed in focc, like x86 Linux
	SChar // signed char
	UChar
	Short
	UShort
	Int
	UInt
	Long // also long long and size_t/ssize_t width
	ULong
	Ptr
	Array
	Struct
	Func
	Enum // represented as int at runtime
)

// Type is an immutable C type. Types are compared with Same, not ==,
// because struct types are identified by their Info pointer.
type Type struct {
	Kind Kind
	Elem *Type // Ptr: pointee; Array: element
	Len  int   // Array: element count (-1 for incomplete arrays)
	Rec  *StructInfo
	Fn   *FuncInfo
	En   *EnumInfo

	// ptrTo memoizes PointerTo(t) so the interpreter's hot array-decay
	// path performs no allocations. Racy duplicate initialization is
	// benign: types are compared with Same, not ==.
	ptrTo atomic.Pointer[Type]
}

// StructInfo describes a struct layout.
type StructInfo struct {
	Name   string // tag; may be empty
	Fields []Field
	size   uint64
	align  uint64
	// Complete reports whether the body has been seen.
	Complete bool
}

// Field is one struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset uint64
}

// FieldByName returns the field with the given name.
func (s *StructInfo) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// FuncInfo describes a function type.
type FuncInfo struct {
	Ret      *Type
	Params   []Param
	Variadic bool
}

// Param is one function parameter.
type Param struct {
	Name string
	Type *Type
}

// EnumInfo describes an enum type.
type EnumInfo struct {
	Name      string
	Constants []EnumConst
}

// EnumConst is one enumerator.
type EnumConst struct {
	Name  string
	Value int64
}

// Singleton basic types. These are shared; never mutate them.
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Char}
	SCharType  = &Type{Kind: SChar}
	UCharType  = &Type{Kind: UChar}
	ShortType  = &Type{Kind: Short}
	UShortType = &Type{Kind: UShort}
	IntType    = &Type{Kind: Int}
	UIntType   = &Type{Kind: UInt}
	LongType   = &Type{Kind: Long}
	ULongType  = &Type{Kind: ULong}
)

// PointerTo returns the type *t (memoized per pointee).
func PointerTo(t *Type) *Type {
	if t == nil {
		return &Type{Kind: Ptr}
	}
	if p := t.ptrTo.Load(); p != nil {
		return p
	}
	p := &Type{Kind: Ptr, Elem: t}
	t.ptrTo.Store(p)
	return p
}

// ArrayOf returns the type t[n]; n == -1 denotes an incomplete array.
func ArrayOf(t *Type, n int) *Type { return &Type{Kind: Array, Elem: t, Len: n} }

// PointerSize is the byte size of pointers in the simulated machine.
const PointerSize = 8

// Size returns the byte size of t. Incomplete types have size 0.
// scalarSize maps scalar kinds to their byte size; zero entries (Void,
// Array, Struct, Func, ...) fall through to sizeSlow. The table is indexed
// with a 4-bit mask (all Kind values fit — checked below) so Size stays
// small enough to inline on the interpreter's hot paths.
var scalarSize = [16]uint64{
	Char: 1, SChar: 1, UChar: 1,
	Short: 2, UShort: 2,
	Int: 4, UInt: 4, Enum: 4,
	Long: 8, ULong: 8,
	Ptr: PointerSize,
}

// Compile-time check that every Kind fits the 4-bit scalarSize index.
var _ [16 - int(Enum) - 1]struct{}

func (t *Type) Size() uint64 {
	if s := scalarSize[t.Kind&15]; s != 0 {
		return s
	}
	return t.sizeSlow()
}

func (t *Type) sizeSlow() uint64 {
	switch t.Kind {
	case Array:
		if t.Len < 0 {
			return 0
		}
		return uint64(t.Len) * t.Elem.Size()
	case Struct:
		return t.Rec.size
	}
	return 0
}

// Align returns the byte alignment of t.
func (t *Type) Align() uint64 {
	switch t.Kind {
	case Array:
		return t.Elem.Align()
	case Struct:
		if t.Rec.align == 0 {
			return 1
		}
		return t.Rec.align
	case Void:
		return 1
	default:
		s := t.Size()
		if s == 0 {
			return 1
		}
		return s
	}
}

// Layout computes field offsets, size, and alignment of a struct from its
// fields, and marks it complete.
func (s *StructInfo) Layout() {
	var off, align uint64 = 0, 1
	for i := range s.Fields {
		f := &s.Fields[i]
		a := f.Type.Align()
		if a > align {
			align = a
		}
		off = roundUp(off, a)
		f.Offset = off
		off += f.Type.Size()
	}
	s.size = roundUp(off, align)
	s.align = align
	s.Complete = true
}

func roundUp(n, a uint64) uint64 {
	if a == 0 {
		return n
	}
	return (n + a - 1) / a * a
}

// IsInteger reports whether t is an integer (or enum) type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Char, SChar, UChar, Short, UShort, Int, UInt, Long, ULong, Enum:
		return true
	}
	return false
}

// IsSigned reports whether an integer type is signed. Plain char is signed
// in focc (matching x86 Linux, which the Sendmail sign-extension bug relies
// on).
func (t *Type) IsSigned() bool {
	switch t.Kind {
	case Char, SChar, Short, Int, Long, Enum:
		return true
	}
	return false
}

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == Ptr }

// IsArray reports whether t is an array type.
func (t *Type) IsArray() bool { return t.Kind == Array }

// IsScalar reports whether t is usable in a boolean context.
func (t *Type) IsScalar() bool { return t.IsInteger() || t.IsPointer() }

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t.Kind == Void }

// IsVoidPtr reports whether t is void*.
func (t *Type) IsVoidPtr() bool { return t.Kind == Ptr && t.Elem.Kind == Void }

// Decay returns the pointer type an array decays to, or t unchanged.
func (t *Type) Decay() *Type {
	if t.Kind == Array {
		return PointerTo(t.Elem)
	}
	return t
}

// Same reports structural identity of two types (structs by identity of
// their StructInfo).
func Same(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Ptr:
		return Same(a.Elem, b.Elem)
	case Array:
		return a.Len == b.Len && Same(a.Elem, b.Elem)
	case Struct:
		return a.Rec == b.Rec
	case Enum:
		return a.En == b.En
	case Func:
		if a.Fn.Variadic != b.Fn.Variadic || len(a.Fn.Params) != len(b.Fn.Params) {
			return false
		}
		if !Same(a.Fn.Ret, b.Fn.Ret) {
			return false
		}
		for i := range a.Fn.Params {
			if !Same(a.Fn.Params[i].Type, b.Fn.Params[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Promote applies the integer promotions: types narrower than int become
// int (all their values fit).
func Promote(t *Type) *Type {
	switch t.Kind {
	case Char, SChar, UChar, Short, UShort, Enum:
		return IntType
	case UInt, Int, Long, ULong:
		return t
	}
	return t
}

// rank orders integer types for the usual arithmetic conversions.
func rank(t *Type) int {
	switch t.Kind {
	case Int, UInt:
		return 1
	case Long, ULong:
		return 2
	}
	return 0
}

// UsualArith returns the common type of a binary arithmetic expression per
// the usual arithmetic conversions (integer-only dialect).
func UsualArith(a, b *Type) *Type {
	a, b = Promote(a), Promote(b)
	if Same(a, b) {
		return a
	}
	ra, rb := rank(a), rank(b)
	if ra == rb {
		// Same rank, one unsigned: result is the unsigned one.
		if !a.IsSigned() {
			return a
		}
		return b
	}
	hi, lo := a, b
	if rb > ra {
		hi, lo = b, a
	}
	if hi.IsSigned() && !lo.IsSigned() && rank(hi) > rank(lo) {
		// Signed type can represent all values of the lower-rank
		// unsigned type (long vs uint in LP64).
		return hi
	}
	if !hi.IsSigned() {
		return hi
	}
	return hi
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Invalid:
		return "<invalid>"
	case Void:
		return "void"
	case Char:
		return "char"
	case SChar:
		return "signed char"
	case UChar:
		return "unsigned char"
	case Short:
		return "short"
	case UShort:
		return "unsigned short"
	case Int:
		return "int"
	case UInt:
		return "unsigned int"
	case Long:
		return "long"
	case ULong:
		return "unsigned long"
	case Ptr:
		return t.Elem.String() + "*"
	case Array:
		// Render dimensions outermost-first, as C spells them.
		base := t
		var dims strings.Builder
		for base.Kind == Array {
			if base.Len < 0 {
				dims.WriteString("[]")
			} else {
				fmt.Fprintf(&dims, "[%d]", base.Len)
			}
			base = base.Elem
		}
		return base.String() + dims.String()
	case Struct:
		if t.Rec.Name != "" {
			return "struct " + t.Rec.Name
		}
		return "struct <anonymous>"
	case Enum:
		if t.En != nil && t.En.Name != "" {
			return "enum " + t.En.Name
		}
		return "enum"
	case Func:
		var sb strings.Builder
		sb.WriteString(t.Fn.Ret.String())
		sb.WriteString(" (")
		for i, p := range t.Fn.Params {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(p.Type.String())
		}
		if t.Fn.Variadic {
			if len(t.Fn.Params) > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("...")
		}
		sb.WriteString(")")
		return sb.String()
	}
	return "<unknown>"
}

// Truncate reduces v to the value it would have when stored in integer type
// t and re-read (sign- or zero-extending to int64).
func Truncate(t *Type, v int64) int64 {
	switch t.Size() {
	case 1:
		if t.IsSigned() {
			return int64(int8(v))
		}
		return int64(uint8(v))
	case 2:
		if t.IsSigned() {
			return int64(int16(v))
		}
		return int64(uint16(v))
	case 4:
		if t.IsSigned() {
			return int64(int32(v))
		}
		return int64(uint32(v))
	default:
		return v
	}
}
