module focc

go 1.24
