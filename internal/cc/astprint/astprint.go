// Package astprint renders focc ASTs as an indented tree, with resolved
// types when the tree has been through semantic analysis. It backs the
// `focc -dump-ast` developer tool.
package astprint

import (
	"fmt"
	"io"

	"focc/internal/cc/ast"
)

// File prints every declaration in the translation unit.
func File(w io.Writer, f *ast.File) {
	p := printer{w: w}
	fmt.Fprintf(w, "File %s\n", f.Name)
	for _, d := range f.Decls {
		p.decl(d, 1)
	}
}

// Node prints a single node (declaration, statement, or expression).
func Node(w io.Writer, n ast.Node) {
	p := printer{w: w}
	switch v := n.(type) {
	case ast.Decl:
		p.decl(v, 0)
	case ast.Stmt:
		p.stmt(v, 0)
	case ast.Expr:
		p.expr(v, 0)
	default:
		fmt.Fprintf(w, "<%T>\n", n)
	}
}

type printer struct {
	w io.Writer
}

func (p *printer) line(depth int, format string, args ...any) {
	for i := 0; i < depth; i++ {
		io.WriteString(p.w, "  ")
	}
	fmt.Fprintf(p.w, format, args...)
	io.WriteString(p.w, "\n")
}

func (p *printer) decl(d ast.Decl, depth int) {
	switch n := d.(type) {
	case *ast.VarDecl:
		p.line(depth, "VarDecl %s : %s", n.Name, n.T)
		if n.Init != nil {
			p.expr(n.Init, depth+1)
		}
	case *ast.FuncDecl:
		kind := "FuncDecl"
		if n.Body == nil {
			kind = "FuncProto"
		}
		p.line(depth, "%s %s : %s (frame %d bytes)", kind, n.Name, n.T, n.FrameSize)
		for _, sym := range n.Locals {
			p.line(depth+1, "local %s : %s @%d", sym.Name, sym.Type, sym.FrameOff)
		}
		if n.Body != nil {
			p.stmt(n.Body, depth+1)
		}
	default:
		p.line(depth, "<decl %T>", d)
	}
}

func (p *printer) stmt(s ast.Stmt, depth int) {
	switch n := s.(type) {
	case *ast.Block:
		p.line(depth, "Block")
		for _, st := range n.Stmts {
			p.stmt(st, depth+1)
		}
	case *ast.ExprStmt:
		p.line(depth, "ExprStmt")
		p.expr(n.X, depth+1)
	case *ast.DeclStmt:
		p.line(depth, "DeclStmt")
		for _, vd := range n.Decls {
			p.decl(vd, depth+1)
		}
	case *ast.If:
		p.line(depth, "If")
		p.expr(n.Cond, depth+1)
		p.stmt(n.Then, depth+1)
		if n.Else != nil {
			p.line(depth, "Else")
			p.stmt(n.Else, depth+1)
		}
	case *ast.While:
		p.line(depth, "While")
		p.expr(n.Cond, depth+1)
		p.stmt(n.Body, depth+1)
	case *ast.DoWhile:
		p.line(depth, "DoWhile")
		p.stmt(n.Body, depth+1)
		p.expr(n.Cond, depth+1)
	case *ast.For:
		p.line(depth, "For")
		if n.Init != nil {
			p.stmt(n.Init, depth+1)
		}
		if n.Cond != nil {
			p.expr(n.Cond, depth+1)
		}
		if n.Post != nil {
			p.expr(n.Post, depth+1)
		}
		p.stmt(n.Body, depth+1)
	case *ast.Switch:
		p.line(depth, "Switch (default@%d, %d cases)", n.DefaultIdx, len(n.Cases))
		p.expr(n.Cond, depth+1)
		p.stmt(n.Body, depth+1)
	case *ast.CaseLabel:
		if n.IsDefault {
			p.line(depth, "Default:")
		} else {
			p.line(depth, "Case %d:", n.FoldedVal)
		}
	case *ast.Break:
		p.line(depth, "Break")
	case *ast.Continue:
		p.line(depth, "Continue")
	case *ast.Return:
		p.line(depth, "Return")
		if n.X != nil {
			p.expr(n.X, depth+1)
		}
	case *ast.Goto:
		p.line(depth, "Goto %s", n.Label)
	case *ast.Labeled:
		p.line(depth, "Label %s:", n.Name)
		p.stmt(n.Stmt, depth+1)
	case *ast.Empty:
		p.line(depth, "Empty")
	default:
		p.line(depth, "<stmt %T>", s)
	}
}

// typeSuffix renders the annotated type, if any.
func typeSuffix(e ast.Expr) string {
	if t := e.Type(); t != nil {
		return " : " + t.String()
	}
	return ""
}

func (p *printer) expr(e ast.Expr, depth int) {
	switch n := e.(type) {
	case *ast.IntLit:
		p.line(depth, "Int %d%s", n.Val, typeSuffix(n))
	case *ast.StringLit:
		p.line(depth, "String %q (lit #%d)", n.Val, n.LitIndex)
	case *ast.Ident:
		storage := ""
		if n.Sym != nil {
			switch n.Sym.Storage {
			case ast.StorageGlobal:
				storage = " [global]"
			case ast.StorageLocal:
				storage = fmt.Sprintf(" [local @%d]", n.Sym.FrameOff)
			case ast.StorageParam:
				storage = fmt.Sprintf(" [param @%d]", n.Sym.FrameOff)
			case ast.StorageFunc:
				storage = " [func]"
			}
		}
		p.line(depth, "Ident %s%s%s", n.Name, typeSuffix(n), storage)
	case *ast.Unary:
		p.line(depth, "Unary %s%s", n.Op, typeSuffix(n))
		p.expr(n.X, depth+1)
	case *ast.Postfix:
		p.line(depth, "Postfix %s%s", n.Op, typeSuffix(n))
		p.expr(n.X, depth+1)
	case *ast.Binary:
		p.line(depth, "Binary %s%s", n.Op, typeSuffix(n))
		p.expr(n.X, depth+1)
		p.expr(n.Y, depth+1)
	case *ast.Assign:
		p.line(depth, "Assign %s%s", n.Op, typeSuffix(n))
		p.expr(n.LHS, depth+1)
		p.expr(n.RHS, depth+1)
	case *ast.Cond:
		p.line(depth, "Cond ?:%s", typeSuffix(n))
		p.expr(n.C, depth+1)
		p.expr(n.Then, depth+1)
		p.expr(n.Else, depth+1)
	case *ast.Call:
		builtin := ""
		if n.Fun.Sym != nil && n.Fun.Sym.Builtin {
			builtin = " [builtin]"
		}
		p.line(depth, "Call %s%s%s", n.Fun.Name, typeSuffix(n), builtin)
		for _, a := range n.Args {
			p.expr(a, depth+1)
		}
	case *ast.Index:
		p.line(depth, "Index%s", typeSuffix(n))
		p.expr(n.X, depth+1)
		p.expr(n.Idx, depth+1)
	case *ast.Member:
		op := "."
		if n.Arrow {
			op = "->"
		}
		p.line(depth, "Member %s%s (offset %d)%s", op, n.Name, n.Field.Offset, typeSuffix(n))
		p.expr(n.X, depth+1)
	case *ast.SizeofExpr:
		p.line(depth, "SizeofExpr")
		p.expr(n.X, depth+1)
	case *ast.SizeofType:
		p.line(depth, "SizeofType %s", n.Of)
	case *ast.Cast:
		p.line(depth, "Cast -> %s", n.To)
		p.expr(n.X, depth+1)
	case *ast.Comma:
		p.line(depth, "Comma%s", typeSuffix(n))
		p.expr(n.X, depth+1)
		p.expr(n.Y, depth+1)
	case *ast.InitList:
		p.line(depth, "InitList (%d elems)%s", len(n.Elems), typeSuffix(n))
		for _, el := range n.Elems {
			p.expr(el, depth+1)
		}
	default:
		p.line(depth, "<expr %T>", e)
	}
}
