// Package srv is the public serving API: it re-exports the server
// request/response model, the name-keyed registry of the five server
// reproductions from the paper's evaluation, and the serving engines — the
// single-pool Engine and the sharded multi-tenant Router — so external code
// can drive them without importing focc's internal packages.
//
// Quickstart — a failure-oblivious server pool behind a bounded queue:
//
//	server, err := srv.New("apache") // srv.Names() lists all models
//	eng, err := srv.NewEngine(server, fo.FailureOblivious,
//		srv.WithPoolSize(4),
//		srv.WithQueueDepth(64),
//		srv.WithDeadline(time.Second))
//	defer eng.Close()
//	resp, err := eng.Submit(ctx, srv.Request{Op: "GET", Arg: "/index.html"})
//
// Cluster-scale serving — shard by tenant, shed doomed work, adapt
// concurrency to observed latency, hot-swap programs with zero downtime:
//
//	rt, err := srv.NewRouter(server, fo.FailureOblivious,
//		srv.WithShards(4),
//		srv.WithTenantQuota(32),
//		srv.WithAIMD(srv.AIMDConfig{TargetP95: 20 * time.Millisecond}))
//	defer rt.Close()
//	resp, err := rt.Submit(ctx, "tenant-a", req)
//	prev := rt.Swap(nextServer) // zero failed requests during the swap
//
// Observability: eng.Stats() aggregates the memory-error telemetry of every
// instance the engine has owned, eng.Metrics() adds a live latency
// histogram, rt.Stats() adds per-shard and per-tenant breakdowns, responses
// carry per-request event attribution in MemErrors, and MetricsHandler /
// ExpvarPublish export it all over HTTP (see metrics.go and
// examples/webserver).
package srv

import (
	"context"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
	"focc/internal/servers/registry"
)

// Re-exported server model types; see internal/servers for details.
type (
	// Request is one unit of work submitted to a server instance.
	Request = servers.Request
	// Response is the server's reply.
	Response = servers.Response
	// Instance is one running server process under a specific mode. An
	// Instance is not safe for concurrent use — one goroutine at a time;
	// the Engine gives every worker its own instance.
	Instance = servers.Instance
	// Server is a compiled server program from which instances are made.
	Server = servers.Server
)

// The server registry: the five reproductions from the paper's evaluation
// (§4.2–§4.6), keyed by name. Names returns the catalog, New instantiates
// by name — the registry is the supported way to enumerate or select
// models, replacing the per-server constructors below.

// Names returns the registered server model names in the paper's
// presentation order: "pine", "apache", "sendmail", "mc", "mutt".
func Names() []string { return registry.Names() }

// New returns a fresh server model by registry name, or a descriptive
// error listing the valid names.
func New(name string) (Server, error) { return registry.New(name) }

// Servers returns fresh instances of all registered server models, in
// Names() order.
func Servers() []Server { return registry.All() }

// NewPineServer returns the Pine 4.44 model (qmail-style From-quoting
// overflow, §4.2).
//
// Deprecated: use New("pine").
func NewPineServer() Server { return mustNew("pine") }

// NewApacheServer returns the Apache 2.0.47 model (mod_rewrite capture
// overflow, §4.3).
//
// Deprecated: use New("apache").
func NewApacheServer() Server { return mustNew("apache") }

// NewSendmailServer returns the Sendmail 8.11.6 model (address-parsing
// overflow, §4.4).
//
// Deprecated: use New("sendmail").
func NewSendmailServer() Server { return mustNew("sendmail") }

// NewMCServer returns the Midnight Commander 4.5.55 model (symlink-name
// overflow, §4.5).
//
// Deprecated: use New("mc").
func NewMCServer() Server { return mustNew("mc") }

// NewMuttServer returns the Mutt 1.4 model (UTF-8 conversion overflow,
// §4.6).
//
// Deprecated: use New("mutt").
func NewMuttServer() Server { return mustNew("mutt") }

// mustNew backs the deprecated constructors: their names are registry
// constants, so a lookup failure is a bug, not an input error.
func mustNew(name string) Server {
	s, err := registry.New(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Re-exported serving-engine types; see internal/serve for details.
type (
	// Engine is the concurrent serving engine: a supervised pool of
	// instances behind a bounded admission queue.
	Engine = serve.Engine
	// Option configures an Engine.
	Option = serve.Option
	// Stats is a snapshot of an Engine's counters.
	Stats = serve.Stats
	// ChaosConfig configures deterministic chaos injection (WithChaos).
	ChaosConfig = serve.ChaosConfig
	// ShedConfig configures the deadline-aware shedding queue
	// (WithShedding / WithShardShedding).
	ShedConfig = serve.ShedConfig
)

// Re-exported router types; see internal/serve/router.go for details.
type (
	// Router consistent-hashes requests by tenant key across a fleet of
	// Engine shards, with per-tenant quotas, an adaptive concurrency
	// limit, and zero-downtime program hot-swap.
	Router = serve.Router
	// RouterOption configures a Router.
	RouterOption = serve.RouterOption
	// RouterStats is a snapshot of a Router and its shard fleet.
	RouterStats = serve.RouterStats
	// TenantStats is one tenant's admission accounting.
	TenantStats = serve.TenantStats
	// AIMDConfig configures the router's adaptive concurrency limit
	// (WithAIMD).
	AIMDConfig = serve.AIMDConfig
	// SwapServer is an atomically swappable Server — the factory half of
	// zero-downtime hot-swap (Router manages one internally; use directly
	// with Engine.Recycle for single-pool swaps).
	SwapServer = serve.SwapServer
)

// Errors returned by Engine.Submit and Router.Submit.
var (
	// ErrQueueFull is the backpressure rejection of a full admission queue.
	ErrQueueFull = serve.ErrQueueFull
	// ErrShed reports an admitted request dropped by the shedding queue
	// because its deadline became unmeetable under overload.
	ErrShed = serve.ErrShed
	// ErrOverQuota rejects a request whose tenant has its full admission
	// quota in flight.
	ErrOverQuota = serve.ErrOverQuota
	// ErrOverLimit rejects a request arriving while the adaptive
	// concurrency limit is saturated.
	ErrOverLimit = serve.ErrOverLimit
	// ErrClosed reports a Submit on a closed engine.
	ErrClosed = serve.ErrClosed
)

// NewEngine starts a serving engine: a pool of srv instances under mode,
// supervised with restart-on-crash, capped exponential backoff, and a
// restart-storm circuit breaker. Invalid option combinations are rejected
// with descriptive errors.
func NewEngine(srv Server, mode fo.Mode, opts ...Option) (*Engine, error) {
	return serve.New(srv, mode, opts...)
}

// NewRouter starts a sharded serving front end over srv: requests are
// consistent-hashed by tenant key across WithShards engine shards, each
// running the deadline-aware shedding queue. See Router.
func NewRouter(srv Server, mode fo.Mode, opts ...RouterOption) (*Router, error) {
	return serve.NewRouter(srv, mode, opts...)
}

// NewSwapServer wraps srv so the served program can be atomically replaced
// later (SwapServer.Swap + Engine.Recycle).
func NewSwapServer(srv Server) *SwapServer { return serve.NewSwapServer(srv) }

// WithPoolSize sets the number of worker instances.
func WithPoolSize(n int) Option { return serve.WithPoolSize(n) }

// WithQueueDepth bounds the admission queue (reject-with-backpressure).
func WithQueueDepth(n int) Option { return serve.WithQueueDepth(n) }

// WithDeadline sets the default per-request deadline.
func WithDeadline(d time.Duration) Option { return serve.WithDeadline(d) }

// WithBackoff sets the capped exponential restart backoff.
func WithBackoff(base, max time.Duration) Option { return serve.WithBackoff(base, max) }

// WithBreaker configures the restart-storm circuit breaker.
func WithBreaker(consecutive int, cooldown time.Duration) Option {
	return serve.WithBreaker(consecutive, cooldown)
}

// WithWarmSpares keeps up to n pre-created instances on standby so a
// crashed worker is replaced without paying instance-creation cost on the
// serving path (Apache-style pre-forking).
func WithWarmSpares(n int) Option { return serve.WithWarmSpares(n) }

// WithShedding replaces the engine's plain bounded queue with the
// CoDel-style deadline-aware shedding queue: requests whose deadline has
// become unmeetable are dropped from the front with ErrShed so viable
// requests keep flowing.
func WithShedding(c ShedConfig) Option { return serve.WithShedding(c) }

// WithBatching coalesces queued small requests into batches of up to
// maxBatch dispatched to one worker instance as a unit — one admission
// slot, one instance hand-off, and (under the rewind policy) one
// checkpoint/rewind epoch per batch — amortizing the per-request serving
// overhead that dominates small operations. Per-request semantics are
// preserved: each sub-request gets its own outcome, latency sample, and
// memory-error attribution — but rollback granularity coarsens to the
// batch: a rewind mid-batch discards the whole epoch, including earlier
// sub-requests' guest-state mutations. An incomplete batch flushes after
// maxDelay, and a request whose deadline could not survive waiting
// maxDelay bypasses the batcher entirely.
func WithBatching(maxBatch int, maxDelay time.Duration) Option {
	return serve.WithBatching(maxBatch, maxDelay)
}

// WithChaos enables deterministic process-level chaos injection on the
// engine: every KillEvery-th executed request kills its serving instance
// after responding (the supervisor replaces it), and every LatencyEvery-th
// request is delayed by Latency before execution — long enough a delay
// trips the configured deadline. Injection is counter-keyed, not random;
// see the fault-injection campaign (internal/inject, `fobench -experiment
// campaign`) for seeded plans built on top of it.
func WithChaos(c ChaosConfig) Option { return serve.WithChaos(c) }

// WithShards sets the number of engine shards a Router hashes across.
func WithShards(n int) RouterOption { return serve.WithShards(n) }

// WithShardWeights sets relative capacity weights for the shards: shard i
// receives a share of tenants proportional to weights[i]. Without
// WithShards the shard count is inferred from len(weights); with it the
// lengths must match. NewRouter rejects weights outside [1, 64].
func WithShardWeights(weights ...int) RouterOption { return serve.WithShardWeights(weights...) }

// WithTenantQuota caps each tenant's in-flight requests, so one flooding
// tenant cannot starve the rest (0 = unlimited).
func WithTenantQuota(n int) RouterOption { return serve.WithTenantQuota(n) }

// WithAIMD enables the router-wide adaptive concurrency limit.
func WithAIMD(c AIMDConfig) RouterOption { return serve.WithAIMD(c) }

// WithShardShedding overrides the shedding configuration applied to every
// shard of a Router.
func WithShardShedding(c ShedConfig) RouterOption { return serve.WithShardShedding(c) }

// WithShardOptions appends Engine options applied to every shard of a
// Router.
func WithShardOptions(opts ...Option) RouterOption { return serve.WithShardOptions(opts...) }

// Handle processes one request on inst with ctx bound for cancellation —
// a convenience for driving a single instance without an Engine.
func Handle(ctx context.Context, inst Instance, req Request) Response {
	return inst.HandleContext(ctx, req)
}
