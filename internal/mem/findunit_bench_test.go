package mem

import (
	"fmt"
	"testing"
)

// BenchmarkFindUnit measures the unit-lookup path itself — the operation
// every checked memory access performs — across the three table shapes that
// dominate the paper's workloads: a heap full of small blocks (Sendmail,
// Mutt), a deep stack of small frames (Pine's recursive parsing), and a
// large global segment (Apache's tables). Each shape is measured through
// the raw table search (Uncached) and through a one-entry LookupCache the
// way the interpreter drives it (Cached: hot repeated hits on one unit,
// the inline-cache best case the access-site caches are built around).
func BenchmarkFindUnit(b *testing.B) {
	b.Run("HeapHeavy", func(b *testing.B) {
		as := New()
		addrs := make([]uint64, 0, 256)
		for i := 0; i < 256; i++ {
			u, f := as.Malloc(32)
			if f != nil {
				b.Fatal(f)
			}
			addrs = append(addrs, u.Base+7)
		}
		benchLookup(b, as, addrs)
	})
	b.Run("StackDeep", func(b *testing.B) {
		as := New()
		addrs := make([]uint64, 0, 64*4)
		for d := 0; d < 64; d++ {
			locals := make([]LocalSpec, 4)
			for l := range locals {
				locals[l] = LocalSpec{Name: fmt.Sprintf("v%d", l), Off: uint64(l) * 16, Size: 16}
			}
			f, fault := as.PushFrame("fn", 64, locals)
			if fault != nil {
				b.Fatal(fault)
			}
			for _, u := range f.locals {
				addrs = append(addrs, u.Base+3)
			}
		}
		benchLookup(b, as, addrs)
	})
	b.Run("GlobalHeavy", func(b *testing.B) {
		as := New()
		addrs := make([]uint64, 0, 256)
		for i := 0; i < 256; i++ {
			u := as.AllocGlobal(fmt.Sprintf("g%d", i), 64)
			addrs = append(addrs, u.Base+11)
		}
		benchLookup(b, as, addrs)
	})
}

// benchLookup runs the Uncached/Cached pair over the prepared addresses.
// Uncached cycles through every address (the pre-PR worst case: each access
// pays a full table search); Cached replays the same cycle through a
// LookupCache and then hammers a single address (a 100% hit rate, the
// steady state of a hot access site).
func benchLookup(b *testing.B, as *AddressSpace, addrs []uint64) {
	for _, addr := range addrs {
		if as.FindUnit(addr) == nil {
			b.Fatalf("address 0x%x not mapped", addr)
		}
	}
	b.Run("Uncached", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if as.FindUnit(addrs[n%len(addrs)]) == nil {
				b.Fatal("lookup failed")
			}
		}
	})
	b.Run("CachedCycle", func(b *testing.B) {
		var c LookupCache
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if as.FindUnitCached(addrs[n%len(addrs)], &c) == nil {
				b.Fatal("lookup failed")
			}
		}
	})
	b.Run("CachedHit", func(b *testing.B) {
		var c LookupCache
		addr := addrs[len(addrs)/2]
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if as.FindUnitCached(addr, &c) == nil {
				b.Fatal("lookup failed")
			}
		}
	})
}
