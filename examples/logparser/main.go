// Logparser: a syslog-style parsing daemon whose field extractor has an
// off-by-one size calculation (it forgets the NUL when the priority tag is
// maximal). The example streams the paper's §3 memory-error log live to
// stderr while the daemon keeps working, and then contrasts plain
// failure-oblivious execution with the §5.1 boundless-memory-blocks
// variant: boundless preserves the clipped byte, so the parsed hostname
// comes back complete.
//
//	go run ./examples/logparser
package main

import (
	"fmt"
	"log"
	"os"

	"focc/fo"
)

const parserSrc = `
#include <string.h>
#include <stdio.h>

char hostname[64];
char message[256];
int  parsed = 0;

/* Parse "<PRI>host text...". BUG: the host buffer is sized for the
   longest hostname seen in testing, not the longest legal one. */
int parse_line(const char *line)
{
	char host[8];               /* too small for legal 9-char hostnames */
	int i = 0, h = 0;
	if (line[i] != '<')
		return -1;
	while (line[i] != '\0' && line[i] != '>')
		i++;
	if (line[i] == '\0')
		return -1;
	i++;
	while (line[i] != '\0' && line[i] != ' ') {
		host[h++] = line[i++];  /* unchecked: overruns on long hostnames */
	}
	host[h] = '\0';
	if (line[i] == ' ')
		i++;
	snprintf(hostname, sizeof(hostname), "%s", host);
	snprintf(message, sizeof(message), "%s", &line[i]);
	parsed++;
	return 0;
}
`

func runDaemon(mode fo.Mode, stream bool) {
	fmt.Printf("=== %s parser ===\n", mode)
	prog, err := fo.Compile("logparser.c", parserSrc)
	if err != nil {
		log.Fatal(err)
	}
	logger := fo.NewEventLog(0)
	if stream {
		logger.Stream = os.Stderr
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: mode, Log: logger})
	if err != nil {
		log.Fatal(err)
	}
	lines := []string{
		"<13>web01 GET /index.html 200",
		"<13>db-primary connection pool exhausted", // 10-char host: overflows
		"<13>cache9 hit ratio 0.93",
	}
	for _, line := range lines {
		res := m.Call("parse_line", m.NewCString(line))
		if res.Outcome != fo.OutcomeOK {
			fmt.Printf("  %-45q -> DAEMON DIED (%s)\n", line, res.Outcome)
			return
		}
		host := readGlobal(m, "hostname")
		msg := readGlobal(m, "message")
		fmt.Printf("  %-45q -> host=%-12q msg=%q\n", line, host, msg)
	}
	fmt.Printf("  %s\n\n", logger.Summary())
}

func readGlobal(m *fo.Machine, name string) string {
	u, ok := m.GlobalUnit(name)
	if !ok {
		return ""
	}
	s, _ := m.ReadCString(fo.UnitPointer(u), 256)
	return s
}

func main() {
	// Bounds Check: the long hostname kills the daemon.
	runDaemon(fo.BoundsCheck, false)
	// Failure Oblivious: overflowing writes are discarded; the daemon
	// keeps parsing (hostname truncated); events stream to stderr.
	runDaemon(fo.FailureOblivious, true)
	// Boundless memory blocks (§5.1): the clipped bytes live in the side
	// hash table and read back intact — the size-calculation error is
	// effectively eliminated.
	runDaemon(fo.Boundless, false)
}
