package core

// ValueGenerator produces the sequence of manufactured values returned for
// invalid reads (paper §3). Implementations need not be safe for concurrent
// use; each program instance owns one generator.
type ValueGenerator interface {
	// Next returns the next manufactured value for a read of size bytes.
	Next(size int) int64
	// Reset restarts the sequence.
	Reset()
}

// SmallIntGenerator is the paper's production sequence: it iterates through
// all small integers, returning 0 and 1 more frequently than other values
// because they are the most commonly loaded values in programs [59]. The
// emitted sequence is 0, 1, 2, 0, 1, 3, 0, 1, 4, … 0, 1, 255, then repeats
// from 2. Cycling through all byte values guarantees that loops searching
// past a buffer for a sentinel character (Midnight Commander's '/' scan,
// paper §3) eventually see it and terminate.
type SmallIntGenerator struct {
	phase int   // 0 -> 0, 1 -> 1, 2 -> k
	k     int64 // next "other" small integer
}

// NewSmallIntGenerator returns the paper's manufactured-value sequence.
func NewSmallIntGenerator() *SmallIntGenerator {
	return &SmallIntGenerator{k: 2}
}

// Next returns the next value in the sequence.
func (g *SmallIntGenerator) Next(int) int64 {
	switch g.phase {
	case 0:
		g.phase = 1
		return 0
	case 1:
		g.phase = 2
		return 1
	default:
		g.phase = 0
		v := g.k
		g.k++
		if g.k > 255 {
			g.k = 2
		}
		return v
	}
}

// Reset restarts the sequence from the beginning.
func (g *SmallIntGenerator) Reset() { g.phase = 0; g.k = 2 }

// ZeroGenerator always manufactures zero. It is the naive strategy the
// paper warns against: a loop that scans for a non-zero sentinel past the
// end of a buffer never terminates (the Midnight Commander hang). It exists
// for the value-sequence ablation experiment.
type ZeroGenerator struct{}

// Next returns 0.
func (ZeroGenerator) Next(int) int64 { return 0 }

// Reset is a no-op.
func (ZeroGenerator) Reset() {}

// ConstGenerator always manufactures the same value; useful in tests.
type ConstGenerator struct{ V int64 }

// Next returns the configured constant.
func (g ConstGenerator) Next(int) int64 { return g.V }

// Reset is a no-op.
func (ConstGenerator) Reset() {}
