// Webserver: a real net/http server whose request handling runs on the
// public serving API (fo/srv): a supervised pool of failure-oblivious
// Apache-model instances behind a bounded admission queue. The Apache model
// carries the §4.3 mod_rewrite bug — a rewrite rule with more captures than
// the offset buffer can hold — so the attack URL that matches it would
// crash a Standard-mode child; under failure-oblivious execution the
// out-of-bounds offset writes are discarded and the pool keeps serving
// without a single restart.
//
// The server also exposes the engine's observability surface:
//
//	/metrics      Prometheus text format (srv.MetricsHandler)
//	/debug/vars   expvar JSON, including the full Metrics snapshot
//	/debug/pprof  Go runtime profiles
//
// and stamps each response with an X-Memory-Errors header when the request
// it handled committed memory errors (the per-request attribution carried
// on Response.MemErrors).
//
// The example starts the server on a loopback listener, issues a few
// requests against itself (including the attack), and prints the results,
// the engine's supervision counters, and the memory-error metrics the
// attack left behind.
//
//	go run ./examples/webserver
package main

import (
	"bufio"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"focc/fo"
	"focc/fo/srv"
)

func main() {
	// A pool of four failure-oblivious Apache children behind a bounded
	// queue with a per-request deadline — the §4.3.2 serving setup. The
	// server model comes from the name-keyed registry (srv.Names() lists
	// all five).
	apache, err := srv.New("apache")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := srv.NewEngine(apache, fo.FailureOblivious,
		srv.WithPoolSize(4),
		srv.WithQueueDepth(64),
		srv.WithDeadline(2*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		resp, err := eng.Submit(r.Context(), srv.Request{Op: "GET", Arg: r.URL.Path})
		switch {
		case errors.Is(err, srv.ErrQueueFull):
			http.Error(w, "server overloaded", http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		case resp.Outcome == fo.OutcomeDeadline:
			http.Error(w, "request timed out", http.StatusGatewayTimeout)
			return
		case resp.Crashed():
			// Only reachable in Standard/BoundsCheck pools: the child died
			// handling this request (the supervisor replaces it).
			http.Error(w, "server process crashed", http.StatusBadGateway)
			return
		}
		if n := resp.MemErrors.Total(); n > 0 {
			w.Header().Set("X-Memory-Errors", strconv.FormatUint(n, 10))
		}
		w.WriteHeader(resp.Status)
		io.WriteString(w, httpBody(resp.Body))
	})

	// Observability: Prometheus metrics, expvar, pprof.
	mux.Handle("/metrics", srv.MetricsHandler(eng))
	srv.ExpvarPublish("fo_engine", eng)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// The Apache model's vulnerable rule has sixteen captures; a URI with
	// sixteen segments matches it and triggers the out-of-bounds offset
	// writes (the §4.3 attack).
	attack := "/api/" + strings.TrimSuffix(strings.Repeat("x/", 16), "/")
	for _, uri := range []string{
		"/index.html", // plain
		"/old/a",      // benign rewrite -> /pages/a
		attack,        // the §4.3 attack: discarded writes, correct output
		"/index.html", // still serving?
	} {
		resp, err := http.Get(base + uri)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		attributed := ""
		if n := resp.Header.Get("X-Memory-Errors"); n != "" {
			attributed = fmt.Sprintf("  [X-Memory-Errors: %s]", n)
		}
		fmt.Printf("GET %-40s -> %d %s%s\n", trunc(uri), resp.StatusCode, trunc(string(body)), attributed)
	}
	st := eng.Stats()
	fmt.Printf("engine stats: served %d, crashes %d, restarts %d, timeouts %d, rejected %d\n",
		st.Served, st.Crashes, st.Restarts, st.Timeouts, st.Rejected)
	fmt.Printf("memory errors: %d invalid reads, %d invalid writes, %d denied\n",
		st.MemErrors.InvalidReads, st.MemErrors.InvalidWrites, st.MemErrors.Denied)

	// Scrape our own metrics endpoint and show the memory-error series the
	// attack produced plus the live latency percentiles.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("\nGET /metrics (memory-error and latency series):")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "fo_memory_errors_total") ||
			strings.HasPrefix(line, "fo_manufactured_values_total") ||
			strings.HasPrefix(line, "fo_memory_error_victims_total") ||
			strings.HasPrefix(line, "fo_request_latency_seconds_count") {
			fmt.Println("  " + line)
		}
	}
	m := eng.Metrics()
	fmt.Printf("latency: count %d, p50 %v, p95 %v, p99 %v\n",
		m.Latency.Count, m.Latency.P50, m.Latency.P95, m.Latency.P99)
}

// httpBody strips the model's raw HTTP response framing ("HTTP/1.1 ...
// \r\n\r\n") and returns just the payload.
func httpBody(raw string) string {
	if _, body, ok := strings.Cut(raw, "\r\n\r\n"); ok {
		return body
	}
	return raw
}

func trunc(s string) string {
	if len(s) > 38 {
		return s[:35] + "..."
	}
	return s
}
