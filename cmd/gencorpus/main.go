// Command gencorpus regenerates internal/gencorpus: the checked-in,
// ahead-of-time generated Go code (see internal/gen) for the engine-diff
// corpus — the nine dispatch/integration programs, the simulated-cycle
// pin workload (under both of its compile identities), the three
// engine-diff torture fixtures, a deterministic prefix of the randomized
// expression differential, and the five paper servers. Each program
// registers itself by source hash at init time; tests and benchmarks
// select the generated engine with fo.MachineConfig{UseGenerated: true}
// (or interp.Config.Generated) without compiling Go at test time.
//
// Regenerate with:
//
//	go generate ./...
//
// or directly:
//
//	go run ./cmd/gencorpus -out internal/gencorpus
//
// CI runs the former and fails on git diff, so the checked-in code can
// never drift from the emitter or the corpus sources.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"focc/fo"
	"focc/internal/cc/sema"
	"focc/internal/corpus"
	"focc/internal/gen"
	"focc/internal/interp"
	"focc/internal/servers/apache"
	"focc/internal/servers/mc"
	"focc/internal/servers/mutt"
	"focc/internal/servers/pine"
	"focc/internal/servers/sendmail"
)

type fixture struct {
	// file is the output basename (without _gen.go); also the identifier
	// prefix, so it must be a valid Go identifier fragment.
	file     string
	filename string // compile identity (part of the source hash)
	src      string
	compile  func(filename, src string) (*sema.Program, error)
}

func compileFO(filename, src string) (*sema.Program, error) {
	p, err := fo.Compile(filename, src)
	if err != nil {
		return nil, err
	}
	return p.Sema(), nil
}

func fixtures() []fixture {
	var fs []fixture
	for _, cp := range corpus.Programs() {
		fs = append(fs, fixture{
			file:     "corpus_" + toIdent(cp.Name),
			filename: corpus.FileName,
			src:      cp.Src,
			compile:  corpus.CompileCPP,
		})
	}
	fs = append(fs,
		// The pin workload's two compile identities: fo.Compile("pin.c", …)
		// in the simulated-cycle pin test, CompileCPP("t.c", …) in the
		// engine-diff memory-error test.
		fixture{file: "pin", filename: corpus.PinFileName, src: corpus.PinSrc, compile: compileFO},
		fixture{file: "pin_diff", filename: corpus.FileName, src: corpus.PinSrc, compile: corpus.CompileCPP},
		fixture{file: "diff_controlflow", filename: corpus.FileName, src: corpus.SrcControlFlow, compile: corpus.CompileCPP},
		fixture{file: "diff_errorpaths", filename: corpus.FileName, src: corpus.SrcErrorPaths, compile: corpus.CompileCPP},
		fixture{file: "diff_datashapes", filename: corpus.FileName, src: corpus.SrcDataShapes, compile: corpus.CompileCPP},
		fixture{file: "diff_batchepoch", filename: corpus.FileName, src: corpus.SrcBatchEpoch, compile: corpus.CompileCPP},
		// The five paper servers, under their fo.Compile identities.
		fixture{file: "server_pine", filename: "pine.c", src: pine.Source, compile: compileFO},
		fixture{file: "server_apache", filename: "apache.c", src: apache.Source, compile: compileFO},
		fixture{file: "server_sendmail", filename: "sendmail.c", src: sendmail.Source, compile: compileFO},
		fixture{file: "server_mc", filename: "mc.c", src: mc.Source, compile: compileFO},
		fixture{file: "server_mutt", filename: "mutt.c", src: mutt.Source, compile: compileFO},
	)
	for i, tr := range corpus.QuickTrials(corpus.QuickGenTrials) {
		fs = append(fs, fixture{
			file:     fmt.Sprintf("quick_%02d", i),
			filename: corpus.FileName,
			src:      tr.Src,
			compile:  corpus.CompilePlain,
		})
	}
	return fs
}

func toIdent(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
			out = append(out, r+('a'-'A'))
		case (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			out = append(out, r)
		}
	}
	return string(out)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gencorpus: ")
	out := flag.String("out", ".", "output directory (the internal/gencorpus package)")
	flag.Parse()

	for _, fx := range fixtures() {
		prog, err := fx.compile(fx.filename, fx.src)
		if err != nil {
			log.Fatalf("%s: compile: %v", fx.file, err)
		}
		hash := interp.SourceHash(fx.filename, fx.src)
		code, err := gen.Emit(prog, gen.Options{
			Package:  "gencorpus",
			Prefix:   fx.file + "_",
			Hash:     hash,
			Register: true,
		})
		if err != nil {
			log.Fatalf("%s: emit: %v", fx.file, err)
		}
		path := filepath.Join(*out, fx.file+"_gen.go")
		if err := os.WriteFile(path, code, 0o644); err != nil {
			log.Fatalf("%s: %v", fx.file, err)
		}
	}
	fmt.Println("gencorpus: regenerated")
}
