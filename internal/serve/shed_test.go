package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
)

// shedEngine builds a single-worker engine with a tiny shedding queue and
// no engine-level deadline, so tests control deadlines per request via
// context.
func shedEngine(t *testing.T, depth int) *serve.Engine {
	t.Helper()
	eng, err := serve.New(&stubServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(depth),
		serve.WithShedding(serve.ShedConfig{
			Target:   time.Millisecond,
			Interval: 5 * time.Millisecond,
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestShedDisplacesUnmeetableRequest is the deterministic shed-vs-reject
// test: a full queue of requests whose deadlines have already expired must
// shed them (ErrShed to their submitters, Stats.Shed counted, queue slot
// released) to admit fresh viable requests — not reject the newcomers.
func TestShedDisplacesUnmeetableRequest(t *testing.T) {
	eng := shedEngine(t, 2)

	var wg sync.WaitGroup
	results := make(chan error, 16)
	submit := func(op string, d time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), d)
			defer cancel()
			_, err := eng.Submit(ctx, servers.Request{Op: op})
			results <- err
		}()
	}

	// Occupy the single worker with a long-deadline spin…
	submit("spin", 600*time.Millisecond)
	time.Sleep(50 * time.Millisecond) // worker picks it up
	// …and fill both queue slots with spins whose deadlines expire while
	// queued (expired requests are always unmeetable, regardless of the
	// service-time estimate).
	submit("spin", 30*time.Millisecond)
	submit("spin", 30*time.Millisecond)
	time.Sleep(100 * time.Millisecond) // both queued deadlines are now past

	// Fresh viable submissions must displace the doomed queued requests
	// instead of bouncing off a "full" queue.
	submit("ok", 2*time.Second)
	submit("ok", 2*time.Second)

	wg.Wait()
	close(results)
	var shed, served, timedOut int
	for err := range results {
		switch {
		case errors.Is(err, serve.ErrShed):
			shed++
		case errors.Is(err, serve.ErrQueueFull):
			t.Error("viable request rejected with ErrQueueFull; want shed-to-admit")
		case err == nil:
			served++
		default:
			t.Errorf("unexpected submit error: %v", err)
		}
	}
	_ = timedOut
	if shed != 2 {
		t.Errorf("shed submitters = %d, want 2 (both expired queued requests)", shed)
	}
	// The worker-occupying spin times out (OutcomeDeadline, no error) and
	// both "ok" requests are served: 3 nil-error results.
	if served != 3 {
		t.Errorf("successful submits = %d, want 3", served)
	}
	st := eng.Stats()
	if st.Shed != 2 {
		t.Errorf("Stats.Shed = %d, want 2", st.Shed)
	}
	if st.Rejected != 0 {
		t.Errorf("Stats.Rejected = %d, want 0 (sheds are not rejections)", st.Rejected)
	}
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Errorf("shedding killed an instance: crashes=%d restarts=%d", st.Crashes, st.Restarts)
	}
}

// TestShedQueueStillRejectsViableOverflow: when the queue is full of
// requests that can all still meet their deadlines, a newcomer gets the
// plain ErrQueueFull backpressure — shedding only ever displaces doomed
// work, it never drops a viable request to admit another.
func TestShedQueueStillRejectsViableOverflow(t *testing.T) {
	eng := shedEngine(t, 1)

	var wg sync.WaitGroup
	spin := func(d time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), d)
			defer cancel()
			eng.Submit(ctx, servers.Request{Op: "spin"})
		}()
	}
	spin(400 * time.Millisecond) // occupies the worker
	time.Sleep(50 * time.Millisecond)
	spin(400 * time.Millisecond) // fills the single queue slot, deadline far off
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, err := eng.Submit(ctx, servers.Request{Op: "ok"})
	if !errors.Is(err, serve.ErrQueueFull) {
		t.Errorf("submit over a queue of viable requests = %v, want ErrQueueFull", err)
	}
	st := eng.Stats()
	if st.Rejected == 0 {
		t.Error("rejection not counted")
	}
	if st.Shed != 0 {
		t.Errorf("Stats.Shed = %d, want 0 (no queued request was doomed)", st.Shed)
	}
	wg.Wait()
}
