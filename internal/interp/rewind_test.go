package interp_test

// End-to-end semantics of the rewind-and-discard policy (core.ModeRewind):
// a request that trips a memory error is rolled back wholesale — global
// mutations, heap allocations, and frees all revert to the request
// boundary — the machine stays alive, and subsequent requests observe no
// trace of the failed one. Both engines are exercised (the differential
// tests in compile_diff_test.go additionally pin engine equality for
// rewind).

import (
	"testing"

	"focc/fo"
)

const rewindSrc = `
int counter;
char state[16];
char *saved;

int handle(int n) {
	char buf[8];
	int i;
	counter++;
	state[0] = 'a' + counter;
	saved = (char *)malloc(32);
	saved[0] = 'x';
	for (i = 0; i < n; i++)
		buf[i] = i;      /* overruns buf for n > 8 */
	return counter;
}

int get_counter(int n) { return counter; }
int get_state(int n) { return state[0]; }

int drop(int n) {
	char *p = (char *)malloc(16);
	free(p);
	if (n > 0)
		free(p);         /* double free: detected memory error */
	return 7;
}
`

func newRewindMachine(t *testing.T, treeWalk bool) *fo.Machine {
	t.Helper()
	prog, err := fo.Compile("rewind.c", rewindSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.ModeRewind, TreeWalk: treeWalk})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRewindDiscardsFailedRequest(t *testing.T) {
	for _, engine := range []string{"compiled", "tree-walk"} {
		t.Run(engine, func(t *testing.T) {
			m := newRewindMachine(t, engine == "tree-walk")

			// A clean request commits normally.
			if res := m.Call("handle", fo.Int(4)); res.Outcome != fo.OutcomeOK || res.Value.I != 1 {
				t.Fatalf("handle(4) = %v (%v), want OK/1", res.Outcome, res.Err)
			}

			// A poisoned request is rewound: the call fails, and every
			// mutation it made (counter++, state write, malloc) is undone.
			res := m.Call("handle", fo.Int(24))
			if res.Outcome != fo.OutcomeRewound {
				t.Fatalf("handle(24) = %v (%v), want rewound", res.Outcome, res.Err)
			}
			if res := m.Call("get_counter", fo.Int(0)); res.Value.I != 1 {
				t.Errorf("counter = %d after rewound request, want 1", res.Value.I)
			}
			if res := m.Call("get_state", fo.Int(0)); res.Value.I != 'a'+1 {
				t.Errorf("state[0] = %q after rewound request, want %q", res.Value.I, 'a'+1)
			}

			// The machine is alive and the next request picks up exactly
			// where the committed state left off.
			if res := m.Call("handle", fo.Int(4)); res.Outcome != fo.OutcomeOK || res.Value.I != 2 {
				t.Errorf("handle(4) after rewind = %v value %d, want OK/2", res.Outcome, res.Value.I)
			}
		})
	}
}

// A detected invalid free rolls the request back too (the libc
// freeInvalid path), undoing the request's earlier valid free.
func TestRewindOnInvalidFree(t *testing.T) {
	for _, engine := range []string{"compiled", "tree-walk"} {
		t.Run(engine, func(t *testing.T) {
			m := newRewindMachine(t, engine == "tree-walk")
			if res := m.Call("drop", fo.Int(0)); res.Outcome != fo.OutcomeOK || res.Value.I != 7 {
				t.Fatalf("drop(0) = %v (%v), want OK/7", res.Outcome, res.Err)
			}
			res := m.Call("drop", fo.Int(1))
			if res.Outcome != fo.OutcomeRewound {
				t.Fatalf("drop(1) = %v (%v), want rewound", res.Outcome, res.Err)
			}
			// Still serving.
			if res := m.Call("drop", fo.Int(0)); res.Outcome != fo.OutcomeOK {
				t.Errorf("drop(0) after rewind = %v (%v), want OK", res.Outcome, res.Err)
			}
		})
	}
}

// Rewound outcomes are not crashes: the serve layer keeps the instance.
func TestRewoundNotCrashed(t *testing.T) {
	if fo.OutcomeRewound.Crashed() {
		t.Error("OutcomeRewound.Crashed() = true, want false")
	}
	if fo.OutcomeRewound.String() != "rewound" {
		t.Errorf("OutcomeRewound.String() = %q, want rewound", fo.OutcomeRewound.String())
	}
}
