// Package strategy is the context-aware manufactured-value subsystem
// (fo.ModeFOContext). It classifies every canonical load site of a
// sema-analyzed program by its static context (Rigger et al.,
// "Context-aware Failure-oblivious Computing"), builds a per-site strategy
// table, and provides the core.ContextGenerator engine all three execution
// engines consult — at identical decision points — when an invalid read
// needs a value manufactured.
//
// Site identity is the canonical load-site id sema assigns during analysis
// (ast.Index/Member/Unary-star LoadSite fields, see sema.assignLoadSites):
// a pure function of the source text, so the tree-walk evaluator, the
// closure compiler, and the ahead-of-time Go generator all key the same
// table with the same ids. The campaign-driven loop that searches over
// per-site strategy assignments lives in internal/inject (strategy search
// needs the fault-injection campaign, which depends on fo, which depends
// on this package).
package strategy

import (
	"fmt"

	"focc/internal/cc/ast"
	"focc/internal/cc/sema"
	"focc/internal/cc/token"
)

// Class is the static context of a load site.
type Class uint8

// Load-site classes, in classification precedence order: a pointer-typed
// read is PointerRead even inside a scan loop; a 1-byte read inside a loop
// is StringScan even when its base symbol is also stored to.
const (
	// Other is every load the more specific classes don't claim.
	Other Class = iota
	// StringScan is a 1-byte read lexically inside a loop — the shape of
	// the paper's sentinel scans (Midnight Commander's '/' scan, Sendmail
	// prescan). Manufacturing '\0' terminates the scan immediately.
	StringScan
	// PointerRead is a pointer-typed read; manufacturing a small integer
	// here yields a wild pointer, so the default strategy manufactures a
	// valid unit-local pointer instead.
	PointerRead
	// Reload is a read whose base symbol is also a store target in the
	// same function — a candidate for replaying the last stored value of
	// the location from the discarded-store shadow.
	Reload
)

func (c Class) String() string {
	switch c {
	case StringScan:
		return "string-scan"
	case PointerRead:
		return "pointer-read"
	case Reload:
		return "reload"
	}
	return "other"
}

// Site is one classified load site.
type Site struct {
	ID    int32
	Pos   token.Pos
	Class Class
	// Func names the enclosing function ("" for global initializers).
	Func string
	// Width is the static access width in bytes (0 for aggregate loads,
	// which never manufacture scalar values).
	Width int
}

// Table is the classified load-site table of one program, indexed by
// canonical load-site id.
type Table struct {
	Sites []Site
}

// Classify builds the load-site table for a sema-analyzed program. The
// walk mirrors sema.assignLoadSites: every Index, Member, and Unary-star
// node is a site; classification uses only static information (expression
// type, lexical loop nesting, per-function store-target symbols), so the
// table is a pure function of the source text.
func Classify(prog *sema.Program) *Table {
	t := &Table{Sites: make([]Site, prog.LoadSites)}
	for i := range t.Sites {
		t.Sites[i] = Site{ID: int32(i)}
	}
	c := &classifier{t: t}
	for _, d := range prog.File.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			c.expr(d.Init)
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			c.fn = d.Name
			c.stores = map[*ast.Symbol]bool{}
			collectStores(d.Body, c.stores)
			c.stmt(d.Body)
			c.fn, c.stores = "", nil
		}
	}
	return t
}

type classifier struct {
	t      *Table
	fn     string
	loops  int
	stores map[*ast.Symbol]bool
}

// collectStores records the base symbol of every assignment / increment
// target in the function, the "previously stored location" evidence the
// Reload class keys on.
func collectStores(s ast.Stmt, out map[*ast.Symbol]bool) {
	walkStmt(s, func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Assign:
			if sym := baseSym(e.LHS); sym != nil {
				out[sym] = true
			}
		case *ast.Postfix:
			if sym := baseSym(e.X); sym != nil {
				out[sym] = true
			}
		case *ast.Unary:
			if e.Op == token.Inc || e.Op == token.Dec {
				if sym := baseSym(e.X); sym != nil {
					out[sym] = true
				}
			}
		}
	})
}

// baseSym resolves the root named symbol of an lvalue-ish expression
// (x, x[i], x.f, x->f, *x, chains thereof), or nil.
func baseSym(e ast.Expr) *ast.Symbol {
	for {
		switch n := e.(type) {
		case *ast.Ident:
			return n.Sym
		case *ast.Index:
			e = n.X
		case *ast.Member:
			e = n.X
		case *ast.Unary:
			if n.Op != token.Star {
				return nil
			}
			e = n.X
		case *ast.Cast:
			e = n.X
		default:
			return nil
		}
	}
}

// classify assigns the class of one load-candidate node; called from the
// walk in the same order sema numbered the sites.
func (c *classifier) classify(e ast.Expr) {
	id := sema.LoadSiteOf(e)
	if id < 0 || int(id) >= len(c.t.Sites) {
		return
	}
	s := &c.t.Sites[id]
	t := e.Type()
	s.Pos, s.Func = e.Pos(), c.fn
	if t != nil {
		s.Width = int(t.Size())
	}
	switch {
	case t != nil && t.IsPointer():
		s.Class = PointerRead
	case t != nil && t.Size() == 1 && c.loops > 0:
		s.Class = StringScan
	case c.stores != nil && c.stores[baseSym(e)]:
		s.Class = Reload
	default:
		s.Class = Other
	}
}

func (c *classifier) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.Block:
		for _, st := range s.Stmts {
			c.stmt(st)
		}
	case *ast.If:
		c.expr(s.Cond)
		c.stmt(s.Then)
		c.stmt(s.Else)
	case *ast.While:
		c.loops++
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.loops--
	case *ast.DoWhile:
		c.loops++
		c.stmt(s.Body)
		c.expr(s.Cond)
		c.loops--
	case *ast.For:
		c.stmt(s.Init)
		c.loops++
		c.expr(s.Cond)
		c.expr(s.Post)
		c.stmt(s.Body)
		c.loops--
	case *ast.Switch:
		c.expr(s.Cond)
		c.stmt(s.Body)
	case *ast.Return:
		c.expr(s.X)
	case *ast.Labeled:
		c.stmt(s.Stmt)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			c.expr(d.Init)
		}
	case *ast.CaseLabel:
		c.expr(s.Val)
	}
}

func (c *classifier) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.Unary:
		c.expr(e.X)
		if e.Op == token.Star {
			c.classify(e)
		}
	case *ast.Index:
		c.expr(e.X)
		c.expr(e.Idx)
		c.classify(e)
	case *ast.Member:
		c.expr(e.X)
		c.classify(e)
	case *ast.Postfix:
		c.expr(e.X)
	case *ast.Binary:
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.Assign:
		c.expr(e.LHS)
		c.expr(e.RHS)
	case *ast.Cond:
		c.expr(e.C)
		c.expr(e.Then)
		c.expr(e.Else)
	case *ast.Call:
		for _, a := range e.Args {
			c.expr(a)
		}
	case *ast.SizeofExpr:
		c.expr(e.X)
	case *ast.Cast:
		c.expr(e.X)
	case *ast.Comma:
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.InitList:
		for _, el := range e.Elems {
			c.expr(el)
		}
	}
}

// walkStmt applies f to every expression under s.
func walkStmt(s ast.Stmt, f func(ast.Expr)) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		walkExpr(s.X, f)
	case *ast.Block:
		for _, st := range s.Stmts {
			walkStmt(st, f)
		}
	case *ast.If:
		walkExpr(s.Cond, f)
		walkStmt(s.Then, f)
		walkStmt(s.Else, f)
	case *ast.While:
		walkExpr(s.Cond, f)
		walkStmt(s.Body, f)
	case *ast.DoWhile:
		walkStmt(s.Body, f)
		walkExpr(s.Cond, f)
	case *ast.For:
		walkStmt(s.Init, f)
		walkExpr(s.Cond, f)
		walkExpr(s.Post, f)
		walkStmt(s.Body, f)
	case *ast.Switch:
		walkExpr(s.Cond, f)
		walkStmt(s.Body, f)
	case *ast.Return:
		walkExpr(s.X, f)
	case *ast.Labeled:
		walkStmt(s.Stmt, f)
	case *ast.DeclStmt:
		for _, d := range s.Decls {
			walkExpr(d.Init, f)
		}
	case *ast.CaseLabel:
		walkExpr(s.Val, f)
	}
}

func walkExpr(e ast.Expr, f func(ast.Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *ast.Unary:
		walkExpr(e.X, f)
	case *ast.Postfix:
		walkExpr(e.X, f)
	case *ast.Index:
		walkExpr(e.X, f)
		walkExpr(e.Idx, f)
	case *ast.Member:
		walkExpr(e.X, f)
	case *ast.Binary:
		walkExpr(e.X, f)
		walkExpr(e.Y, f)
	case *ast.Assign:
		walkExpr(e.LHS, f)
		walkExpr(e.RHS, f)
	case *ast.Cond:
		walkExpr(e.C, f)
		walkExpr(e.Then, f)
		walkExpr(e.Else, f)
	case *ast.Call:
		for _, a := range e.Args {
			walkExpr(a, f)
		}
	case *ast.SizeofExpr:
		walkExpr(e.X, f)
	case *ast.Cast:
		walkExpr(e.X, f)
	case *ast.Comma:
		walkExpr(e.X, f)
		walkExpr(e.Y, f)
	case *ast.InitList:
		for _, el := range e.Elems {
			walkExpr(el, f)
		}
	}
}

// String renders the table as one "id class func pos width" line per site,
// the format the golden classification tests pin.
func (t *Table) String() string {
	out := ""
	for _, s := range t.Sites {
		out += fmt.Sprintf("site %3d %-12s %-16s w=%d %s\n", s.ID, s.Class, s.Func, s.Width, s.Pos)
	}
	return out
}

// Counts returns the number of sites per class, for reports.
func (t *Table) Counts() map[string]int {
	out := map[string]int{}
	for _, s := range t.Sites {
		out[s.Class.String()]++
	}
	return out
}
