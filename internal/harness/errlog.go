package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"focc/fo"
	"focc/internal/servers"
)

// ErrlogModes are the modes the errlog experiment profiles: every mode
// whose checking code logs events. Standard performs no checks and logs
// nothing, so it is omitted.
var ErrlogModes = []fo.Mode{
	fo.BoundsCheck, fo.FailureOblivious, fo.Boundless, fo.Redirect, fo.TxTerm,
}

// ErrlogResult is one per-server, per-mode row of the event-profile report:
// what the §3 memory-error log records when the documented attack is
// delivered under that mode.
type ErrlogResult struct {
	Server  string
	Mode    fo.Mode
	Attacks int
	// PerAttack is the event delta attributed to the last attack request
	// (the HandleContext attribution contract).
	PerAttack fo.LogDelta
	// Snap aggregates the logs of every instance used, including ones the
	// attack killed.
	Snap fo.LogSnapshot
	// Sample is the most recent logged event, rendered.
	Sample string
}

// ErrlogProfile interleaves legitimate requests with the documented attack
// on fresh instances under mode (replacing crashed ones, folding their logs
// into the aggregate) and reports the mode's memory-error event profile.
func ErrlogProfile(srv servers.Server, mode fo.Mode, attacks int) (ErrlogResult, error) {
	if attacks <= 0 {
		attacks = 1
	}
	res := ErrlogResult{Server: srv.Name(), Mode: mode, Attacks: attacks}
	inst, err := srv.New(mode)
	if err != nil {
		return res, err
	}
	legit := srv.LegitRequests()[0]
	attack := srv.AttackRequest()
	ctx := context.Background()
	for i := 0; i < attacks; i++ {
		inst.HandleContext(ctx, legit)
		resp := inst.HandleContext(ctx, attack)
		res.PerAttack = resp.MemErrors
		if evs := inst.Log().Recent(); len(evs) > 0 {
			res.Sample = evs[len(evs)-1].String()
		}
		if resp.Crashed() || !inst.Alive() {
			res.Snap.Merge(inst.Log().Snapshot())
			if inst, err = srv.New(mode); err != nil {
				return res, err
			}
		}
	}
	res.Snap.Merge(inst.Log().Snapshot())
	return res, nil
}

// ErrlogProfiles runs ErrlogProfile for every server × mode combination.
func ErrlogProfiles(srvs []servers.Server, modes []fo.Mode, attacks int) ([]ErrlogResult, error) {
	var rows []ErrlogResult
	for _, srv := range srvs {
		for _, mode := range modes {
			r, err := ErrlogProfile(srv, mode, attacks)
			if err != nil {
				return nil, fmt.Errorf("errlog %s/%v: %w", srv.Name(), mode, err)
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// FormatErrlog renders the per-mode event-profile table.
func FormatErrlog(rows []ErrlogResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-18s %-7s %-7s %-7s %-11s %-22s %s\n",
		"Server", "Version", "Reads", "Writes", "Denied", "Per-attack", "Manufactured", "Top victim")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %-18s %-7d %-7d %-7d %-11d %-22s %s\n",
			r.Server, r.Mode,
			r.Snap.InvalidReads, r.Snap.InvalidWrites, r.Snap.Denied,
			r.PerAttack.Total(),
			formatManufactured(r.Snap.Manufactured, 3),
			formatVictims(r.Snap.Victims, 1))
	}
	return sb.String()
}

// formatManufactured renders the top n manufactured values as "v×count"
// pairs, most frequent first.
func formatManufactured(m map[int64]uint64, n int) string {
	if len(m) == 0 {
		return "-"
	}
	type vc struct {
		v int64
		c uint64
	}
	all := make([]vc, 0, len(m))
	for v, c := range m {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	var parts []string
	for i, e := range all {
		if i == n {
			parts = append(parts, "…")
			break
		}
		parts = append(parts, fmt.Sprintf("%d×%d", e.v, e.c))
	}
	return strings.Join(parts, " ")
}

// formatVictims renders the top n victim units as "unit×count" pairs.
func formatVictims(m map[string]uint64, n int) string {
	if len(m) == 0 {
		return "-"
	}
	type uc struct {
		u string
		c uint64
	}
	all := make([]uc, 0, len(m))
	for u, c := range m {
		all = append(all, uc{u, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].u < all[j].u
	})
	var parts []string
	for i, e := range all {
		if i == n {
			parts = append(parts, "…")
			break
		}
		parts = append(parts, fmt.Sprintf("%s×%d", e.u, e.c))
	}
	return strings.Join(parts, " ")
}
