package core

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"focc/internal/cc/token"
	"focc/internal/mem"
)

var testPos = token.Pos{File: "test.c", Line: 1, Col: 1}

// fixture builds an address space with one 16-byte heap unit filled with
// 0..15 and returns pointers to it.
func fixture(t *testing.T) (*mem.AddressSpace, *mem.Unit) {
	t.Helper()
	as := mem.New()
	u, fault := as.Malloc(16)
	if fault != nil {
		t.Fatal(fault)
	}
	for i := range u.Data {
		u.Data[i] = byte(i)
	}
	return as, u
}

func ptr(u *mem.Unit, off int64) Pointer {
	return Pointer{Addr: u.Base + uint64(off), Prov: u}
}

func TestParseMode(t *testing.T) {
	good := map[string]Mode{
		"standard": Standard, "std": Standard,
		"bounds": BoundsCheck, "cred": BoundsCheck, "bounds-check": BoundsCheck,
		"oblivious": FailureOblivious, "fo": FailureOblivious,
		"failure-oblivious": FailureOblivious,
		"boundless":         Boundless,
		"redirect":          Redirect,
	}
	for s, want := range good {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("nonsense"); err == nil {
		t.Error("expected error for unknown mode")
	}
}

func TestModeStrings(t *testing.T) {
	for m := Standard; m <= TxTerm; m++ {
		if strings.Contains(m.String(), "unknown") {
			t.Errorf("mode %d has no name", m)
		}
		// Round trip.
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v failed: %v %v", m, back, err)
		}
	}
}

func TestInBoundsLoadStoreAllPolicies(t *testing.T) {
	for m := Standard; m <= TxTerm; m++ {
		as, u := fixture(t)
		acc := New(m, as, nil, nil)
		var buf [4]byte
		if _, err := acc.Load(ptr(u, 4), buf[:], testPos); err != nil {
			t.Fatalf("%v: load: %v", m, err)
		}
		if !bytes.Equal(buf[:], []byte{4, 5, 6, 7}) {
			t.Errorf("%v: load = %v", m, buf)
		}
		if err := acc.Store(ptr(u, 8), []byte{9, 9}, nil, testPos); err != nil {
			t.Fatalf("%v: store: %v", m, err)
		}
		if u.Data[8] != 9 || u.Data[9] != 9 {
			t.Errorf("%v: store not applied", m)
		}
	}
}

func TestBoundsCheckTerminates(t *testing.T) {
	as, u := fixture(t)
	log := NewEventLog(0)
	acc := NewBoundsCheck(as, log)
	var buf [1]byte
	_, err := acc.Load(ptr(u, 16), buf[:], testPos)
	me, ok := err.(*MemError)
	if !ok {
		t.Fatalf("err = %v, want MemError", err)
	}
	if me.Write || me.Addr != u.Base+16 {
		t.Errorf("MemError = %+v", me)
	}
	if err := acc.Store(ptr(u, -1), []byte{1}, nil, testPos); err == nil {
		t.Error("negative-offset store not rejected")
	}
	if log.Denied() != 2 {
		t.Errorf("denied = %d, want 2", log.Denied())
	}
	if !strings.Contains(me.Error(), "out of bounds") {
		t.Errorf("error text = %q", me.Error())
	}
}

func TestObliviousDiscardsAndManufactures(t *testing.T) {
	as, u := fixture(t)
	log := NewEventLog(0)
	acc := NewFailureOblivious(as, NewSmallIntGenerator(), log)
	// Discarded write.
	if err := acc.Store(ptr(u, 100), []byte{0xAA}, nil, testPos); err != nil {
		t.Fatalf("store: %v", err)
	}
	for _, b := range u.Data {
		if b == 0xAA {
			t.Fatal("discarded write leaked into the unit")
		}
	}
	// Manufactured reads follow the sequence 0, 1, 2, 0, 1, 3 …
	want := []int64{0, 1, 2, 0, 1, 3}
	for i, w := range want {
		var buf [1]byte
		if _, err := acc.Load(ptr(u, 100), buf[:], testPos); err != nil {
			t.Fatal(err)
		}
		if int64(buf[0]) != w {
			t.Errorf("manufactured value %d = %d, want %d", i, buf[0], w)
		}
	}
	if log.InvalidWrites() != 1 || log.InvalidReads() != 6 {
		t.Errorf("log = %s", log.Summary())
	}
}

func TestObliviousNeedsTableForVictims(t *testing.T) {
	as, u := fixture(t)
	other, _ := as.Malloc(16)
	log := NewEventLog(0)
	acc := New(FailureOblivious, as, nil, log)
	// Write far past u so it would land inside `other`.
	off := int64(other.Base+4) - int64(u.Base)
	if err := acc.Store(ptr(u, off), []byte{1}, nil, testPos); err != nil {
		t.Fatal(err)
	}
	ev := log.Recent()
	if len(ev) != 1 || ev[0].Victim == "" {
		t.Errorf("event = %+v, want a victim unit", ev)
	}
}

func TestObliviousWriteToReadOnlyDiscarded(t *testing.T) {
	as := mem.New()
	lit := as.InternLiteral("const\x00")
	acc := New(FailureOblivious, as, nil, nil)
	if err := acc.Store(Pointer{Addr: lit.Base, Prov: lit}, []byte{'x'}, nil, testPos); err != nil {
		t.Fatalf("store: %v", err)
	}
	if lit.Data[0] != 'c' {
		t.Error("read-only data modified")
	}
}

func TestObliviousDeadUnit(t *testing.T) {
	as, u := fixture(t)
	as.Free(u.Base)
	acc := New(FailureOblivious, as, nil, nil)
	var buf [1]byte
	if _, err := acc.Load(ptr(u, 0), buf[:], testPos); err != nil {
		t.Fatalf("UAF load: %v", err)
	}
	if err := acc.Store(ptr(u, 0), []byte{1}, nil, testPos); err != nil {
		t.Fatalf("UAF store: %v", err)
	}
}

func TestBoundlessRoundTrip(t *testing.T) {
	as, u := fixture(t)
	acc := New(Boundless, as, nil, nil)
	// Out-of-bounds write is stored...
	if err := acc.Store(ptr(u, 40), []byte{0xBE, 0xEF}, nil, testPos); err != nil {
		t.Fatal(err)
	}
	// ...and the matching read returns it.
	var buf [2]byte
	if _, err := acc.Load(ptr(u, 40), buf[:], testPos); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xBE || buf[1] != 0xEF {
		t.Errorf("boundless read = %v", buf)
	}
	// The unit's real data is untouched.
	for _, b := range u.Data {
		if b == 0xBE {
			t.Fatal("boundless write leaked into the unit")
		}
	}
	// A different offset manufactures instead.
	if _, err := acc.Load(ptr(u, 80), buf[:], testPos); err != nil {
		t.Fatal(err)
	}
}

func TestBoundlessDistinguishesUnits(t *testing.T) {
	// Two units; OOB offset 20 of unit A must not alias in-bounds data of
	// unit B even when the virtual addresses coincide.
	as := mem.New()
	a, _ := as.Malloc(16)
	b, _ := as.Malloc(64)
	acc := New(Boundless, as, nil, nil)
	// a+off lands inside b.
	off := int64(b.Base+8) - int64(a.Base)
	if err := acc.Store(ptr(a, off), []byte{0x77}, nil, testPos); err != nil {
		t.Fatal(err)
	}
	if b.Data[8] == 0x77 {
		t.Error("boundless store corrupted the neighbouring unit")
	}
	var buf [1]byte
	if _, err := acc.Load(ptr(a, off), buf[:], testPos); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x77 {
		t.Errorf("boundless read = %d, want 0x77", buf[0])
	}
}

func TestRedirectWraps(t *testing.T) {
	as, u := fixture(t)
	acc := New(Redirect, as, nil, nil)
	// Reading at offset 17 wraps to offset 1.
	var buf [1]byte
	if _, err := acc.Load(ptr(u, 17), buf[:], testPos); err != nil {
		t.Fatal(err)
	}
	if buf[0] != u.Data[1] {
		t.Errorf("redirect read = %d, want %d", buf[0], u.Data[1])
	}
	// Writing at offset -2 wraps to offset 14.
	if err := acc.Store(ptr(u, -2), []byte{0xCC}, nil, testPos); err != nil {
		t.Fatal(err)
	}
	if u.Data[14] != 0xCC {
		t.Errorf("redirect write landed at %v", u.Data)
	}
}

func TestRedirectNoUnitFallsBack(t *testing.T) {
	as, _ := fixture(t)
	acc := New(Redirect, as, NewSmallIntGenerator(), nil)
	var buf [1]byte
	if _, err := acc.Load(Pointer{Addr: 0, Prov: nil}, buf[:], testPos); err != nil {
		t.Fatalf("null load under redirect: %v", err)
	}
}

func TestStandardRawSemantics(t *testing.T) {
	as, u := fixture(t)
	next, _ := as.Malloc(16) // adjacent block (after a's header)
	acc := NewStandard(as)
	// In-bounds through provenance.
	if err := acc.Store(ptr(u, 0), []byte{0x11}, nil, testPos); err != nil {
		t.Fatal(err)
	}
	if u.Data[0] != 0x11 {
		t.Error("in-bounds standard store failed")
	}
	// Out-of-bounds resolves by address and corrupts the neighbour's
	// header region — the heap becomes corrupted.
	gap := int64(next.Base) - int64(u.Base) - 8
	if err := acc.Store(ptr(u, gap), []byte{0xFF}, nil, testPos); err != nil {
		t.Fatal(err)
	}
	if !as.HeapCorrupted() {
		t.Error("standard OOB write into header did not corrupt heap")
	}
	// Unmapped faults.
	if err := acc.Store(Pointer{Addr: 0x10, Prov: nil}, []byte{1}, nil, testPos); err == nil {
		t.Error("standard write to unmapped should fault")
	}
}

func TestPointerShadowThroughPolicies(t *testing.T) {
	for _, m := range []Mode{Standard, BoundsCheck, FailureOblivious, Boundless, Redirect} {
		as, u := fixture(t)
		target, _ := as.Malloc(8)
		acc := New(m, as, nil, nil)
		// Store a pointer value (8 bytes) with provenance.
		pv := make([]byte, 8)
		for i := range pv {
			pv[i] = byte(target.Base >> (8 * uint(i)))
		}
		if err := acc.Store(ptr(u, 0), pv, target, testPos); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var buf [8]byte
		prov, err := acc.Load(ptr(u, 0), buf[:], testPos)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if prov != target {
			t.Errorf("%v: loaded provenance = %v, want target", m, prov)
		}
		// Overwrite one byte with non-pointer data: provenance is gone.
		if err := acc.Store(ptr(u, 3), []byte{0}, nil, testPos); err != nil {
			t.Fatal(err)
		}
		prov, _ = acc.Load(ptr(u, 0), buf[:], testPos)
		if prov == target {
			t.Errorf("%v: stale provenance survived a partial overwrite", m)
		}
	}
}

// Property: wrapOffset always lands inside [0, size).
func TestWrapOffsetProperty(t *testing.T) {
	f := func(off uint64, size uint16) bool {
		s := uint64(size)%1024 + 1
		w := wrapOffset(off, s)
		return w < s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the small-int generator emits only values in [0, 255], hits 0
// and 1 with double frequency, and eventually emits every byte value.
func TestSmallIntGeneratorProperties(t *testing.T) {
	g := NewSmallIntGenerator()
	seen := map[int64]int{}
	const n = 3 * 254 * 2 // two full cycles
	for i := 0; i < n; i++ {
		v := g.Next(1)
		if v < 0 || v > 255 {
			t.Fatalf("value %d out of range", v)
		}
		seen[v]++
	}
	for b := int64(0); b <= 255; b++ {
		if seen[b] == 0 {
			t.Errorf("value %d never emitted", b)
		}
	}
	if seen[0] <= seen[2] || seen[1] <= seen[2] {
		t.Errorf("0 (%d) and 1 (%d) should be more frequent than 2 (%d)",
			seen[0], seen[1], seen[2])
	}
	g.Reset()
	if g.Next(1) != 0 || g.Next(1) != 1 || g.Next(1) != 2 {
		t.Error("Reset did not restart the sequence")
	}
}

func TestZeroAndConstGenerators(t *testing.T) {
	z := ZeroGenerator{}
	for i := 0; i < 5; i++ {
		if z.Next(4) != 0 {
			t.Fatal("zero generator emitted non-zero")
		}
	}
	c := ConstGenerator{V: 42}
	if c.Next(1) != 42 {
		t.Error("const generator wrong")
	}
	z.Reset()
	c.Reset()
}

func TestEventLogRing(t *testing.T) {
	log := NewEventLog(4)
	for i := 0; i < 10; i++ {
		log.add(Event{Addr: uint64(i)})
	}
	recent := log.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d events", len(recent))
	}
	if recent[0].Addr != 6 || recent[3].Addr != 9 {
		t.Errorf("ring order = %v", recent)
	}
	if log.InvalidReads() != 10 {
		t.Errorf("reads = %d", log.InvalidReads())
	}
	log.Reset()
	if log.Total() != 0 || len(log.Recent()) != 0 {
		t.Error("reset incomplete")
	}
}

func TestEventLogStream(t *testing.T) {
	var sb strings.Builder
	log := NewEventLog(0)
	log.Stream = &sb
	log.add(Event{Pos: testPos, Write: true, Addr: 0x42, Size: 1, Unit: "buf"})
	if !strings.Contains(sb.String(), "invalid write") ||
		!strings.Contains(sb.String(), "buf") {
		t.Errorf("stream = %q", sb.String())
	}
}

func TestEventString(t *testing.T) {
	e := Event{Pos: testPos, Addr: 0x10, Size: 2, Unit: "u", Manufactured: 7}
	if !strings.Contains(e.String(), "manufactured value 7") {
		t.Errorf("event = %q", e.String())
	}
	e = Event{Pos: testPos, Write: true, Addr: 0x10, Size: 2, Unit: "u",
		Victim: "other", Boundless: true}
	s := e.String()
	if !strings.Contains(s, "discarded") || !strings.Contains(s, "other") ||
		!strings.Contains(s, "boundless") {
		t.Errorf("event = %q", s)
	}
	// A denied read terminated the program: nothing was manufactured, and
	// the rendering must say so instead of "manufactured value 0".
	e = Event{Pos: testPos, Addr: 0x10, Size: 2, Unit: "u", Denied: true}
	s = e.String()
	if !strings.Contains(s, "(terminated)") || strings.Contains(s, "manufactured") {
		t.Errorf("denied event = %q", s)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *EventLog
	l.add(Event{})       // must not panic
	l.addDenied(Event{}) // must not panic
}

func TestTxTermRaisesFuncAbort(t *testing.T) {
	as, u := fixture(t)
	log := NewEventLog(0)
	acc := NewTxTerm(as, log)
	var buf [1]byte
	_, err := acc.Load(ptr(u, 99), buf[:], testPos)
	fa, ok := err.(*FuncAbort)
	if !ok || fa.Write {
		t.Fatalf("err = %v, want read FuncAbort", err)
	}
	err = acc.Store(ptr(u, 99), []byte{1}, nil, testPos)
	if fa, ok = err.(*FuncAbort); !ok || !fa.Write {
		t.Fatalf("err = %v, want write FuncAbort", err)
	}
	if !strings.Contains(fa.Error(), "terminating enclosing function") {
		t.Errorf("error text = %q", fa.Error())
	}
	if log.Total() != 2 {
		t.Errorf("log total = %d", log.Total())
	}
	// In-bounds accesses behave normally.
	if err := acc.Store(ptr(u, 0), []byte{7}, nil, testPos); err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Load(ptr(u, 0), buf[:], testPos); err != nil || buf[0] != 7 {
		t.Fatalf("in-bounds load = %v %d", err, buf[0])
	}
}
