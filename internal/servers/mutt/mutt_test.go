package mutt

import (
	"testing"

	"focc/fo"
	"focc/internal/servers"
)

func newInstance(t *testing.T, mode fo.Mode) servers.Instance {
	t.Helper()
	inst, err := NewServer().New(mode)
	if err != nil {
		t.Fatalf("New(%v): %v", mode, err)
	}
	return inst
}

func TestCompiles(t *testing.T) {
	if _, err := Program(); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestSelectExistingFolder(t *testing.T) {
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		inst := newInstance(t, mode)
		resp := inst.Handle(servers.Request{Op: "select", Arg: "INBOX"})
		if !resp.OK() || resp.Status != 0 {
			t.Errorf("%v: select INBOX = %v, want status 0", mode, resp)
		}
	}
}

func TestSelectMissingFolderIsAnticipatedError(t *testing.T) {
	inst := newInstance(t, fo.Standard)
	resp := inst.Handle(servers.Request{Op: "select", Arg: "NoSuchFolder"})
	if !resp.OK() || resp.Status != -1 {
		t.Errorf("select missing = %v, want status -1", resp)
	}
}

func TestUTF7ConversionCorrectOnLegitNames(t *testing.T) {
	// Non-ASCII folder names within the 2x budget must convert and then
	// be rejected by the IMAP side (unknown folder), not crash.
	inst := newInstance(t, fo.BoundsCheck)
	resp := inst.Handle(servers.Request{Op: "select", Arg: "caf\xc3\xa9zzzz"})
	if !resp.OK() || resp.Status != -1 {
		t.Errorf("select café = %v, want anticipated -1", resp)
	}
}

func TestAttackOutcomesPerMode(t *testing.T) {
	srv := NewServer()
	attack := srv.AttackRequest()

	std := newInstance(t, fo.Standard)
	resp := std.Handle(attack)
	if !resp.Crashed() {
		t.Errorf("standard: attack did not crash: %v", resp)
	}
	if resp.Outcome != fo.OutcomeHeapCorruption && resp.Outcome != fo.OutcomeSegfault {
		t.Errorf("standard: outcome = %v, want heap corruption or segfault", resp.Outcome)
	}
	if std.Alive() {
		t.Error("standard: instance still alive after crash")
	}

	bc := newInstance(t, fo.BoundsCheck)
	resp = bc.Handle(attack)
	if resp.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds: outcome = %v, want memory-error termination", resp.Outcome)
	}

	foInst := newInstance(t, fo.FailureOblivious)
	resp = foInst.Handle(attack)
	if !resp.OK() {
		t.Fatalf("oblivious: attack crashed: %v", resp)
	}
	if resp.Status != -1 {
		t.Errorf("oblivious: status = %d, want -1 (folder rejected by IMAP server)", resp.Status)
	}
	if foInst.Log().InvalidWrites() == 0 {
		t.Error("oblivious: expected discarded writes in the log")
	}
	// The paper's key claim: after the attack the server continues to
	// serve legitimate requests flawlessly.
	resp = foInst.Handle(servers.Request{Op: "select", Arg: "INBOX"})
	if !resp.OK() || resp.Status != 0 {
		t.Errorf("oblivious: post-attack select INBOX = %v, want success", resp)
	}
	resp = foInst.Handle(servers.Request{Op: "read", Payload: SampleMessage()})
	if !resp.OK() || resp.Status <= 0 {
		t.Errorf("oblivious: post-attack read = %v, want success", resp)
	}
}

func TestReadMessageUnfoldsHeaders(t *testing.T) {
	inst := newInstance(t, fo.Standard)
	resp := inst.Handle(servers.Request{
		Op:      "read",
		Payload: "Subject: a,\r\n folded\r\nBody",
	})
	if !resp.OK() {
		t.Fatalf("read: %v", resp)
	}
	if want := "Subject: a, folded\nBody"; resp.Body != want {
		t.Errorf("display = %q, want %q", resp.Body, want)
	}
}

func TestMoveMessage(t *testing.T) {
	inst := newInstance(t, fo.FailureOblivious)
	msg := SampleMessage()
	resp := inst.Handle(servers.Request{Op: "move", Payload: msg})
	if !resp.OK() || resp.Status != len(msg) {
		t.Errorf("move = %v, want status %d", resp, len(msg))
	}
}

func TestVariantsSurviveAttack(t *testing.T) {
	// Paper §5.1: the servers work acceptably under the boundless and
	// redirect variants too.
	srv := NewServer()
	for _, mode := range []fo.Mode{fo.Boundless, fo.Redirect} {
		inst := newInstance(t, mode)
		resp := inst.Handle(srv.AttackRequest())
		if resp.Crashed() {
			t.Errorf("%v: attack crashed the server: %v", mode, resp)
			continue
		}
		resp = inst.Handle(servers.Request{Op: "select", Arg: "INBOX"})
		if !resp.OK() || resp.Status != 0 {
			t.Errorf("%v: post-attack select = %v", mode, resp)
		}
	}
}
