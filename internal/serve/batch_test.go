package serve_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
)

// attrSrc gives the batching tests one clean handler and one handler that
// commits exactly two invalid writes (survivable under FailureOblivious,
// rewound under ModeRewind) — distinguishable per request in MemErrors.
const attrSrc = `
char resp[32];

int ok(void)
{
	resp[0] = 'o'; resp[1] = 'k'; resp[2] = 0;
	return 200;
}

int poke(void)
{
	char b[4];
	b[6] = 'x';
	b[7] = 'y';
	return 200;
}
`

var (
	attrOnce sync.Once
	attrProg *fo.Program
	attrErr  error
)

type attrServer struct{}

func (*attrServer) Name() string { return "attr" }

func (*attrServer) New(mode fo.Mode) (servers.Instance, error) {
	attrOnce.Do(func() { attrProg, attrErr = fo.Compile("attr.c", attrSrc) })
	if attrErr != nil {
		return nil, attrErr
	}
	log := fo.NewEventLog(0)
	m, err := attrProg.NewMachine(fo.MachineConfig{Mode: mode, Log: log})
	if err != nil {
		return nil, err
	}
	return &attrInstance{Base: servers.Base{ServerName: "attr", M: m, EvLog: log}}, nil
}

func (*attrServer) LegitRequests() []servers.Request { return []servers.Request{{Op: "ok"}} }
func (*attrServer) AttackRequest() servers.Request   { return servers.Request{Op: "poke"} }

type attrInstance struct {
	servers.Base
}

func (i *attrInstance) Handle(req servers.Request) servers.Response {
	res := i.M.Call(req.Op)
	if res.Outcome != fo.OutcomeOK {
		return servers.Response{Outcome: res.Outcome, Err: res.Err}
	}
	return servers.Response{Outcome: fo.OutcomeOK, Status: int(res.Value.I), Body: "ok"}
}

func (i *attrInstance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
	defer i.BindContext(ctx)()
	return i.Attribute(func() servers.Response { return i.Handle(req) })
}

// submitAll submits each request on its own goroutine and returns the
// responses in submission order, failing the test on any Submit error.
func submitAll(t *testing.T, eng *serve.Engine, reqs []servers.Request) []servers.Response {
	t.Helper()
	resps := make([]servers.Response, len(reqs))
	var wg sync.WaitGroup
	for k, req := range reqs {
		wg.Add(1)
		go func(k int, req servers.Request) {
			defer wg.Done()
			resp, err := eng.Submit(nil, req)
			if err != nil {
				t.Errorf("Submit %d (%s): %v", k, req.Op, err)
				return
			}
			resps[k] = resp
		}(k, req)
	}
	wg.Wait()
	return resps
}

// A full batch coalesces onto one dispatch — one Batches tick for four
// served requests — and per-request memory-error attribution survives
// coalescing: each "poke" sub-request sees exactly its own two invalid
// writes, each "ok" sees none.
func TestBatchingAttribution(t *testing.T) {
	eng, err := serve.New(&attrServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(8),
		// The delay is deliberately enormous: the only way all four replies
		// arrive promptly is the size-triggered flush, which makes the
		// coalescing deterministic instead of timer-raced.
		serve.WithBatching(4, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	reqs := []servers.Request{{Op: "ok"}, {Op: "poke"}, {Op: "ok"}, {Op: "poke"}}
	resps := submitAll(t, eng, reqs)

	for k, resp := range resps {
		if resp.Outcome != fo.OutcomeOK {
			t.Fatalf("request %d (%s): outcome %v, want OK", k, reqs[k].Op, resp.Outcome)
		}
		want := uint64(0)
		if reqs[k].Op == "poke" {
			want = 2
		}
		if resp.MemErrors.InvalidWrites != want {
			t.Errorf("request %d (%s): attributed InvalidWrites = %d, want %d",
				k, reqs[k].Op, resp.MemErrors.InvalidWrites, want)
		}
		if resp.MemErrors.InvalidReads != 0 {
			t.Errorf("request %d (%s): attributed InvalidReads = %d, want 0",
				k, reqs[k].Op, resp.MemErrors.InvalidReads)
		}
	}

	st := eng.Stats()
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1 (four submits, batch size four)", st.Batches)
	}
	if st.Served != 4 {
		t.Errorf("Served = %d, want 4", st.Served)
	}
	if st.MemErrors.InvalidWrites != 4 {
		t.Errorf("engine-wide InvalidWrites = %d, want 4", st.MemErrors.InvalidWrites)
	}
}

// A request whose deadline cannot survive the flush delay bypasses the
// batcher: it is served alone, promptly, and no batch is ever dispatched.
func TestBatchingDeadlineBypass(t *testing.T) {
	eng, err := serve.New(&attrServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(8),
		serve.WithBatching(8, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := eng.Submit(ctx, servers.Request{Op: "ok"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Outcome != fo.OutcomeOK {
		t.Fatalf("outcome = %v, want OK", resp.Outcome)
	}
	if elapsed := time.Since(start); elapsed >= 2*time.Second {
		t.Errorf("bypassed request took %v — it waited for the flush delay", elapsed)
	}
	if st := eng.Stats(); st.Batches != 0 {
		t.Errorf("Batches = %d, want 0 (the lone tight-deadline request must bypass)", st.Batches)
	}
}

// A rewind mid-batch consumes the shared checkpoint epoch; the engine
// re-arms it for the remaining sub-requests, so the rewound request is
// rolled back alone and its batchmates commit normally on the surviving
// instance.
func TestBatchingRewindMidBatch(t *testing.T) {
	eng, err := serve.New(&attrServer{}, fo.ModeRewind,
		serve.WithPoolSize(1), serve.WithQueueDepth(8),
		serve.WithBatching(3, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	reqs := []servers.Request{{Op: "ok"}, {Op: "poke"}, {Op: "ok"}}
	resps := submitAll(t, eng, reqs)

	for k, resp := range resps {
		want := fo.OutcomeOK
		if reqs[k].Op == "poke" {
			want = fo.OutcomeRewound
		}
		if resp.Outcome != want {
			t.Errorf("request %d (%s): outcome %v, want %v", k, reqs[k].Op, resp.Outcome, want)
		}
	}

	st := eng.Stats()
	if st.Batches != 1 {
		t.Errorf("Batches = %d, want 1", st.Batches)
	}
	if st.Served != 3 || st.Rewound != 1 {
		t.Errorf("Served/Rewound = %d/%d, want 3/1", st.Served, st.Rewound)
	}
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Errorf("Crashes/Restarts = %d/%d, want 0/0 — a mid-batch rewind must not burn the instance", st.Crashes, st.Restarts)
	}
}

// Batching composes with the shedding queue: a batch wrapper occupies one
// slot and queue-level drops fan out to every sub-request. Exercised here
// via the cheaper invariant that batched submissions through a shedding
// queue still serve correctly with attribution intact.
func TestBatchingWithSheddingQueue(t *testing.T) {
	eng, err := serve.New(&attrServer{}, fo.FailureOblivious,
		serve.WithPoolSize(1), serve.WithQueueDepth(8),
		serve.WithShedding(serve.ShedConfig{Target: 50 * time.Millisecond, Interval: 100 * time.Millisecond}),
		serve.WithBatching(2, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	resps := submitAll(t, eng, []servers.Request{{Op: "poke"}, {Op: "poke"}})
	for k, resp := range resps {
		if resp.Outcome != fo.OutcomeOK {
			t.Fatalf("request %d: outcome %v, want OK", k, resp.Outcome)
		}
		if resp.MemErrors.InvalidWrites != 2 {
			t.Errorf("request %d: attributed InvalidWrites = %d, want 2", k, resp.MemErrors.InvalidWrites)
		}
	}
	if st := eng.Stats(); st.Batches != 1 || st.Served != 2 {
		t.Errorf("Batches/Served = %d/%d, want 1/2", st.Batches, st.Served)
	}
}
