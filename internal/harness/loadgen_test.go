package harness

import (
	"strings"
	"sync"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/servers/apache"
)

// TestLoadtestFailureObliviousWins is the concurrent §4.3.2 regression: a
// mixed legit/attack workload from 8 clients must leave the
// failure-oblivious pool with higher legitimate throughput than the
// Standard and BoundsCheck pools, and with zero restarts.
func TestLoadtestFailureObliviousWins(t *testing.T) {
	if testing.Short() {
		t.Skip("loadtest experiment")
	}
	cfg := LoadtestConfig{
		Clients:         8,
		PoolSize:        4,
		AttacksPerLegit: 3,
		LegitPerClient:  4,
		Deadline:        5 * time.Second,
	}
	results := map[fo.Mode]LoadtestResult{}
	for _, mode := range Modes {
		r, err := Loadtest(apache.NewServer(), mode, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		results[mode] = r
	}
	foR := results[fo.FailureOblivious]
	if foR.Restarts != 0 {
		t.Errorf("failure-oblivious pool restarted %d instances, want 0", foR.Restarts)
	}
	if foR.LegitDone != cfg.Clients*cfg.LegitPerClient {
		t.Errorf("failure-oblivious legit done = %d, want %d",
			foR.LegitDone, cfg.Clients*cfg.LegitPerClient)
	}
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck} {
		r := results[mode]
		if r.Restarts == 0 {
			t.Errorf("%v pool had no restarts under attack", mode)
		}
		if !(foR.Throughput > r.Throughput) {
			t.Errorf("throughput ordering wrong: failure-oblivious %.1f <= %v %.1f",
				foR.Throughput, mode, r.Throughput)
		}
	}
	if foR.P50 <= 0 || foR.P95 < foR.P50 || foR.P99 < foR.P95 {
		t.Errorf("percentiles not monotone: p50=%v p95=%v p99=%v",
			foR.P50, foR.P95, foR.P99)
	}
}

func TestPercentiles(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	p50, p95, p99 := percentiles(lats)
	if p50 != 50*time.Millisecond || p95 != 95*time.Millisecond || p99 != 99*time.Millisecond {
		t.Errorf("percentiles = %v %v %v, want 50ms 95ms 99ms", p50, p95, p99)
	}
	if a, b, c := percentiles(nil); a != 0 || b != 0 || c != 0 {
		t.Error("empty percentiles should be zero")
	}
}

// TestPercentilesNearestRank pins the nearest-rank definition (1-based rank
// ⌈p·n⌉) over awkward sample counts. The old round-half-up selection biased
// tails low: with n=151 it read rank 149 at p99 instead of 150.
func TestPercentilesNearestRank(t *testing.T) {
	// Samples are 1ms, 2ms, …, n ms, so the value at rank r is r ms.
	cases := []struct {
		n             int
		r50, r95, r99 int
	}{
		{1, 1, 1, 1},
		{2, 1, 2, 2},
		{5, 3, 5, 5},
		{7, 4, 7, 7},    // p99: ⌈6.93⌉ = 7; round-half-up gave 7 too
		{11, 6, 11, 11}, // p95: ⌈10.45⌉ = 11; round-half-up gave 10
		{20, 10, 19, 20},
		{53, 27, 51, 53},    // p95: ⌈50.35⌉ = 51; round-half-up gave 50
		{100, 50, 95, 99},   // exact products must not ceil up to 96/100
		{151, 76, 144, 150}, // the motivating case: p99 rank 150, not 149
		{1000, 500, 950, 990},
	}
	for _, c := range cases {
		lats := make([]time.Duration, c.n)
		for i := range lats {
			lats[i] = time.Duration(i+1) * time.Millisecond
		}
		p50, p95, p99 := percentiles(lats)
		if p50 != time.Duration(c.r50)*time.Millisecond ||
			p95 != time.Duration(c.r95)*time.Millisecond ||
			p99 != time.Duration(c.r99)*time.Millisecond {
			t.Errorf("n=%d: got ranks %v/%v/%v, want %d/%d/%d ms",
				c.n, p50, p95, p99, c.r50, c.r95, c.r99)
		}
	}
}

func TestFormatLoadtest(t *testing.T) {
	rows := []LoadtestResult{
		{Mode: fo.FailureOblivious, Throughput: 200, P50: time.Millisecond},
		{Mode: fo.Standard, Throughput: 40, P50: 60 * time.Millisecond},
	}
	out := FormatLoadtest(rows)
	if !strings.Contains(out, "5.0") {
		t.Errorf("expected 5.0 speedup ratio in table:\n%s", out)
	}
	if !strings.Contains(out, "p99") {
		t.Errorf("expected percentile headers in table:\n%s", out)
	}
}

// TestChildPoolConcurrentHandle hammers one ChildPool from many goroutines
// (run with -race): Handle and Restarts must be safe under concurrent
// callers.
func TestChildPoolConcurrentHandle(t *testing.T) {
	srv := apache.NewServer()
	pool, err := NewChildPool(srv, fo.BoundsCheck, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	legit := srv.LegitRequests()[0]
	attack := srv.AttackRequest()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				req := legit
				if (c+i)%3 == 0 {
					req = attack
				}
				if _, err := pool.Handle(req); err != nil {
					errc <- err
					return
				}
				_ = pool.Restarts()
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if pool.Restarts() == 0 {
		t.Error("expected restarts from the attack mix")
	}
}
