package sema

import (
	"strings"
	"testing"

	"focc/internal/cc/ast"
	"focc/internal/cc/parser"
	"focc/internal/cc/types"
)

// testBuiltins mimics a minimal libc prototype set.
func testBuiltins() map[string]*types.Type {
	charP := types.PointerTo(types.CharType)
	return map[string]*types.Type{
		"strlen": {Kind: types.Func, Fn: &types.FuncInfo{
			Ret:    types.ULongType,
			Params: []types.Param{{Name: "s", Type: charP}},
		}},
		"printf": {Kind: types.Func, Fn: &types.FuncInfo{
			Ret:      types.IntType,
			Params:   []types.Param{{Name: "fmt", Type: charP}},
			Variadic: true,
		}},
	}
}

func analyze(t *testing.T, src string) *Program {
	t.Helper()
	f, errs := parser.ParseString("t.c", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	prog, errs := Analyze(f, testBuiltins())
	if len(errs) > 0 {
		t.Fatalf("analyze: %v", errs[0])
	}
	return prog
}

func analyzeErrs(t *testing.T, src string) []error {
	t.Helper()
	f, errs := parser.ParseString("t.c", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs[0])
	}
	_, errs = Analyze(f, testBuiltins())
	return errs
}

func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	errs := analyzeErrs(t, src)
	if len(errs) == 0 {
		t.Errorf("%q: expected error containing %q", src, substr)
		return
	}
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Errorf("%q: errors %v do not mention %q", src, errs, substr)
}

func TestResolvesGlobalsAndFunctions(t *testing.T) {
	prog := analyze(t, `
int counter;
int bump(int by) { counter = counter + by; return counter; }
int main(void) { return bump(2); }
`)
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "counter" {
		t.Errorf("globals = %+v", prog.Globals)
	}
	if len(prog.Funcs) != 2 {
		t.Errorf("funcs = %d", len(prog.Funcs))
	}
	if _, ok := prog.FuncMap["bump"]; !ok {
		t.Error("bump not in FuncMap")
	}
}

func TestFrameLayout(t *testing.T) {
	prog := analyze(t, `
void f(int a, char b) {
	long x;
	char buf[10];
	int y;
}`)
	fd := prog.FuncMap["f"]
	offs := map[string]uint64{}
	for _, sym := range fd.Locals {
		offs[sym.Name] = sym.FrameOff
	}
	// a@0 (int), b@4 (char), x@8 (long, aligned), buf@16, y@28 (aligned 4).
	want := map[string]uint64{"a": 0, "b": 4, "x": 8, "buf": 16, "y": 28}
	for name, off := range want {
		if offs[name] != off {
			t.Errorf("%s offset = %d, want %d (all: %v)", name, offs[name], off, offs)
		}
	}
	if fd.FrameSize != 32 {
		t.Errorf("frame size = %d, want 32", fd.FrameSize)
	}
}

func TestLiteralInterning(t *testing.T) {
	prog := analyze(t, `
char *a = "dup";
char *b = "dup";
char *c = "other";
`)
	if len(prog.Literals) != 2 {
		t.Errorf("literals = %q, want 2 entries", prog.Literals)
	}
	if prog.Literals[0] != "dup\x00" {
		t.Errorf("literal 0 = %q (NUL must be included)", prog.Literals[0])
	}
}

func TestSizeofIsFolded(t *testing.T) {
	prog := analyze(t, `
struct s { int a; long b; };
int f(void) { return sizeof(struct s) + sizeof(int); }
`)
	fd := prog.FuncMap["f"]
	ret := fd.Body.Stmts[0].(*ast.Return)
	bin := ret.X.(*ast.Binary)
	l, lok := bin.X.(*ast.IntLit)
	r, rok := bin.Y.(*ast.IntLit)
	if !lok || !rok || l.Val != 16 || r.Val != 4 {
		t.Errorf("sizeof not folded: %T(%v) %T(%v)", bin.X, l, bin.Y, r)
	}
}

func TestEnumConstantsBecomeLiterals(t *testing.T) {
	prog := analyze(t, `
enum { A = 3, B };
int f(void) { return B; }
`)
	ret := prog.FuncMap["f"].Body.Stmts[0].(*ast.Return)
	lit, ok := ret.X.(*ast.IntLit)
	if !ok || lit.Val != 4 {
		t.Errorf("B resolved to %T %v", ret.X, lit)
	}
}

func TestSwitchCaseResolution(t *testing.T) {
	prog := analyze(t, `
enum { X = 10 };
int f(int v) {
	switch (v) {
	case 1: return 1;
	case X: return 2;
	default: return 3;
	}
}`)
	sw := prog.FuncMap["f"].Body.Stmts[0].(*ast.Switch)
	if len(sw.Cases) != 2 {
		t.Fatalf("cases = %+v", sw.Cases)
	}
	if sw.Cases[1].Val != 10 {
		t.Errorf("case X folded to %d", sw.Cases[1].Val)
	}
	if sw.DefaultIdx < 0 {
		t.Error("default not found")
	}
}

func TestPointerArithmeticTypes(t *testing.T) {
	prog := analyze(t, `
long f(char *p, char *q) { return q - p; }
char *g(char *p) { return p + 3; }
`)
	ret := prog.FuncMap["f"].Body.Stmts[0].(*ast.Return)
	if ret.X.Type().Kind != types.Long {
		t.Errorf("ptr-ptr type = %s", ret.X.Type())
	}
	ret = prog.FuncMap["g"].Body.Stmts[0].(*ast.Return)
	if ret.X.Type().String() != "char*" {
		t.Errorf("ptr+int type = %s", ret.X.Type())
	}
}

func TestArrayDecaysInCall(t *testing.T) {
	analyze(t, `
unsigned long f(void) {
	char buf[10];
	return strlen(buf);
}`)
}

func TestGlobalInitMustBeConstant(t *testing.T) {
	wantErr(t, "int g(void); int x = g();", "constant")
}

func TestGlobalInitFolding(t *testing.T) {
	prog := analyze(t, "int x = 2 * 3 + 1;")
	lit, ok := prog.Globals[0].Init.(*ast.IntLit)
	if !ok || lit.Val != 7 {
		t.Errorf("init = %T %v", prog.Globals[0].Init, lit)
	}
}

func TestInferArrayLenFromInit(t *testing.T) {
	prog := analyze(t, `char s[] = "hello"; int a[] = {1, 2, 3};`)
	if prog.Globals[0].T.Len != 6 {
		t.Errorf("s len = %d, want 6", prog.Globals[0].T.Len)
	}
	if prog.Globals[1].T.Len != 3 {
		t.Errorf("a len = %d, want 3", prog.Globals[1].T.Len)
	}
}

func TestDiagnostics(t *testing.T) {
	cases := []struct{ src, substr string }{
		{"int f(void) { return undeclared_name; }", "undeclared"},
		{"int f(void) { ghost(); return 0; }", "undeclared function"},
		{"int x; int x;", "redeclaration"},
		{"int f(void) { return 1; } int f(void) { return 2; }", "redefined"},
		{"void f(void) { break; }", "break outside"},
		{"void f(void) { continue; }", "continue outside"},
		{"void f(void) { goto nowhere; }", "undefined label"},
		{"void f(void) { case 3: ; }", "case"},
		{"void f(void) { 3 = 4; }", "lvalue"},
		{"void f(void) { int a; a.x = 1; }", "non-struct"},
		{"struct s { int v; }; void f(void) { struct s q; q.nope = 1; }", "no field"},
		{"void f(int a) { a(); }", "not a function"},
		{"int g(int a); void f(void) { g(1, 2); }", "argument"},
		{"void f(void) { int *p; p * 3; }", "invalid operand"},
		{"void v; ", "void type"},
		{"void f(void) { return 3; }", "void function"},
		{"int f(void) { int x; switch (x) { default: ; default: ; } return 0; }", "duplicate default"},
		{"int f(int v) { switch (v) { case 1: ; case 1: ; } return 0; }", "duplicate case"},
		{"void f(void) { l: ; l: ; }", "duplicate label"},
		{"struct s; void f(void) { struct s x; }", "incomplete"},
	}
	for _, c := range cases {
		wantErr(t, c.src, c.substr)
	}
}

func TestPrototypeThenDefinition(t *testing.T) {
	prog := analyze(t, `
int helper(int x);
int main(void) { return helper(1); }
int helper(int x) { return x + 1; }
`)
	sym := prog.FuncMap["helper"].Sym
	if sym.FuncIdx < 0 || sym.Builtin {
		t.Errorf("helper sym = %+v", sym)
	}
}

func TestUndefinedPrototypeBecomesBuiltin(t *testing.T) {
	prog := analyze(t, `
int external_thing(int x);
int main(void) { return external_thing(1); }
`)
	// The call site forces builtin resolution.
	main := prog.FuncMap["main"]
	ret := main.Body.Stmts[0].(*ast.Return)
	call := ret.X.(*ast.Call)
	if !call.Fun.Sym.Builtin {
		t.Error("undefined prototype should resolve as a host builtin")
	}
}

func TestVariadicBuiltinCall(t *testing.T) {
	analyze(t, `int f(void) { return printf("%d %s", 1, "x"); }`)
	wantErr(t, `int f(void) { return printf(); }`, "argument")
}

func TestLocalShadowing(t *testing.T) {
	prog := analyze(t, `
int x;
int f(void) {
	int x = 1;
	{
		int x = 2;
	}
	return x;
}`)
	fd := prog.FuncMap["f"]
	// Two locals named x with distinct offsets.
	var offs []uint64
	for _, sym := range fd.Locals {
		if sym.Name == "x" {
			offs = append(offs, sym.FrameOff)
		}
	}
	if len(offs) != 2 || offs[0] == offs[1] {
		t.Errorf("shadowed locals = %v", offs)
	}
}

func TestStringInitForCharArray(t *testing.T) {
	analyze(t, `void f(void) { char buf[8] = "hi"; }`)
	wantErr(t, `void f(void) { int x = "hi"; }`, "string literal")
}

func TestCondTypeMerging(t *testing.T) {
	prog := analyze(t, `
char *f(int c, char *a, char *b) { return c ? a : b; }
long g(int c) { return c ? 1 : 2L; }
`)
	ret := prog.FuncMap["f"].Body.Stmts[0].(*ast.Return)
	if ret.X.Type().String() != "char*" {
		t.Errorf("cond type = %s", ret.X.Type())
	}
	ret = prog.FuncMap["g"].Body.Stmts[0].(*ast.Return)
	if ret.X.Type().Kind != types.Long {
		t.Errorf("cond int type = %s", ret.X.Type())
	}
}

func TestMoreDiagnostics(t *testing.T) {
	cases := []struct{ src, substr string }{
		{"int f(void) { return sizeof(void); }", ""}, // sizeof(void) folds to 0; no error required
		{"int arr[] ;", "cannot infer"},
		{"int x = 1; int f(void) { return x(); }", "not a function"},
		{"struct s { int a; }; struct s v = { 1, 2 };", "too many initializers"},
		{"int a[2] = { 1, 2, 3 };", "too many initializers"},
		{"int f(void); int x = f;", "constant"},
		{"void f(void) { int x = { 1, 2 }; }", "scalar initializer"},
		{"void f(void) { struct nope *p; p->q = 1; }", ""},
	}
	for _, c := range cases {
		if c.substr == "" {
			continue
		}
		wantErr(t, c.src, c.substr)
	}
}

func TestVoidFunctionReturnsNothing(t *testing.T) {
	analyze(t, "void f(void) { return; }")
}

func TestStructAssignTypeChecked(t *testing.T) {
	wantErr(t, `
struct a { int x; };
struct b { int y; };
void f(void) { struct a va; struct b vb; va = vb; }`, "assigning")
	wantErr(t, `
struct a { int x; };
void f(void) { struct a v; v += v; }`, "compound assignment on struct")
}

func TestCannotAssignToArray(t *testing.T) {
	wantErr(t, "void f(void) { int a[3]; int b[3]; a = b; }", "array")
}

func TestConditionMustBeScalar(t *testing.T) {
	wantErr(t, `
struct s { int x; };
void f(void) { struct s v; if (v) {} }`, "scalar")
}

func TestMismatchedCondBranches(t *testing.T) {
	wantErr(t, `
struct s { int x; };
void f(int c) { struct s v; int i; c ? v : i; }`, "mismatched")
}

func TestDerefVoidPointerRejected(t *testing.T) {
	wantErr(t, "void f(void *p) { *p; }", "void pointer")
}

func TestDerefNonPointerRejected(t *testing.T) {
	wantErr(t, "void f(int x) { *x; }", "non-pointer")
}

func TestCaseMustBeConstant(t *testing.T) {
	wantErr(t, `
int f(int v, int w) {
	switch (v) { case 0: return 0; }
	switch (v) {
	case 1: return 1;
	}
	return 0;
}
int g(int v, int w) {
	switch (v) { case 1 + 2: return 3; }
	switch (v) { case 1: break; }
	switch (v) {
	}
	return 0;
}
int h(int v, int w) {
	switch (v) { case 1: ; }
	switch (v) { case 2: ; }
	switch (w) { case 3: ; }
	return 0;
}
int bad(int v, int w) {
	switch (v) { case 1: ; }
	switch (v) { case 2: ; }
	switch (w) { case 3: ; }
	switch (v) { case 1 ? 2 : 3: ; }  /* still constant: fine */
	switch (v) { case 9: ; }
	return 0;
}
int worst(int v, int w) {
	switch (v) {
	case 1: return 1;
	}
	switch (w) {
	case 2: return 2;
	}
	return 0;
}
int reallybad(int v, int w) {
	switch (v) { case 1: ; }
	switch (v) { case w: ; }   /* not constant */
	return 0;
}`, "constant expression")
}
