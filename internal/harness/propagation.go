package harness

import (
	"fmt"

	"focc/fo"
	"focc/internal/servers"
)

// PropagationResult measures the paper's §1.2 explanation for why
// failure-oblivious computing works: servers have short error propagation
// distances — a memory error in the computation for one request has little
// or no effect on subsequent requests.
type PropagationResult struct {
	Server string
	// ErrorsDuringAttack is the number of memory errors the attack
	// request provoked (must be > 0 for the experiment to be meaningful).
	ErrorsDuringAttack uint64
	// Distance is the number of subsequent legitimate requests whose
	// responses differed from a never-attacked twin instance before the
	// two converged. 0 means the attack's effects never escaped its own
	// request — the paper's claim for all five servers.
	Distance int
	// Probes is how many legitimate requests were compared.
	Probes int
	// Diverged lists the indexes of differing probes (diagnostic).
	Diverged []int
}

// ErrorPropagation runs the attack against a failure-oblivious instance,
// then replays an identical stream of legitimate requests against both the
// attacked instance and a clean twin, comparing responses pairwise. newSrv
// must build a fresh, isolated server (instances of one server may share
// host-side state such as a filesystem, which would make the comparison
// measure state divergence rather than error propagation).
func ErrorPropagation(newSrv func() servers.Server, probes int) (PropagationResult, error) {
	srvA, srvB := newSrv(), newSrv()
	res := PropagationResult{Server: srvA.Name()}
	attacked, err := srvA.New(fo.FailureOblivious)
	if err != nil {
		return res, err
	}
	clean, err := srvB.New(fo.FailureOblivious)
	if err != nil {
		return res, err
	}
	attackResp := attacked.Handle(srvA.AttackRequest())
	if attackResp.Crashed() {
		return res, fmt.Errorf("attack crashed the failure-oblivious instance: %v", attackResp.Err)
	}
	res.ErrorsDuringAttack = attacked.Log().Total()

	legit := srvA.LegitRequests()
	last := -1
	for i := 0; i < probes; i++ {
		req := legit[i%len(legit)]
		a := attacked.Handle(req)
		c := clean.Handle(req)
		res.Probes++
		if a.Crashed() || c.Crashed() {
			return res, fmt.Errorf("probe %d crashed (attacked=%v clean=%v)", i, a.Outcome, c.Outcome)
		}
		if a.Status != c.Status || a.Body != c.Body {
			res.Diverged = append(res.Diverged, i)
			last = i
		}
	}
	res.Distance = last + 1
	return res, nil
}

// FormatPropagation renders the experiment.
func FormatPropagation(rows []PropagationResult) string {
	out := fmt.Sprintf("%-10s %-22s %-10s %s\n",
		"Server", "Errors during attack", "Probes", "Propagation distance")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %-22d %-10d %d\n",
			r.Server, r.ErrorsDuringAttack, r.Probes, r.Distance)
	}
	return out
}
