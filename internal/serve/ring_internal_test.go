package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestHashRingSpreadAndStability: the ring spreads tenants across every
// shard without hot-spotting, lookups are deterministic, and growing the
// shard count moves only a minority of tenants (the consistent-hashing
// property).
func TestHashRingSpreadAndStability(t *testing.T) {
	const shards, tenants = 4, 10000
	ring := newHashRing(shards, ringVnodes, nil)
	counts := make([]int, shards)
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		s := ring.lookup(key)
		if again := ring.lookup(key); again != s {
			t.Fatalf("lookup(%q) unstable: %d then %d", key, s, again)
		}
		counts[s]++
	}
	for s, n := range counts {
		// Perfect balance is tenants/shards; with 64 vnodes the spread
		// stays well within 2× either way.
		if n < tenants/shards/2 || n > tenants/shards*2 {
			t.Errorf("shard %d holds %d of %d tenants — spread too skewed: %v",
				s, n, tenants, counts)
		}
	}

	grown := newHashRing(shards+1, ringVnodes, nil)
	moved := 0
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		if grown.lookup(key) != ring.lookup(key) {
			moved++
		}
	}
	// Adding one shard should move roughly 1/(shards+1) of tenants; a
	// modulo hash would move ~shards/(shards+1). Split the difference.
	if moved > tenants/2 {
		t.Errorf("adding a shard moved %d of %d tenants — not consistent hashing", moved, tenants)
	}
}

// TestHashRingWeights: a shard's share of tenants tracks its weight, and
// weight-1 shards keep their unweighted ring points, so adding weights
// only moves tenants toward the up-weighted shards.
func TestHashRingWeights(t *testing.T) {
	const shards, tenants = 3, 12000
	weighted := newHashRing(shards, ringVnodes, []int{1, 1, 4})
	counts := make([]int, shards)
	for i := 0; i < tenants; i++ {
		counts[weighted.lookup(fmt.Sprintf("tenant-%d", i))]++
	}
	// Shard 2 owns 4 of 6 weight units — expect roughly 2/3 of tenants,
	// and at least twice either weight-1 shard (loose band for hash noise).
	if counts[2] < 2*counts[0] || counts[2] < 2*counts[1] {
		t.Errorf("weight-4 shard holds %d tenants vs %d/%d on weight-1 shards — weights not honored",
			counts[2], counts[0], counts[1])
	}

	uniform := newHashRing(shards, ringVnodes, nil)
	moved := 0
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		w := weighted.lookup(key)
		if w != uniform.lookup(key) {
			moved++
			if w != 2 {
				t.Fatalf("lookup(%q) moved to weight-1 shard %d — weighting must only pull tenants toward up-weighted shards", key, w)
			}
		}
	}
	if moved == 0 {
		t.Error("weighting moved no tenants — weight 4 had no effect")
	}
}

// TestHashRingLookupHealthy: an unhealthy home shard's tenants redistribute
// per vnode across the healthy fleet (not onto a single successor), the
// healthy path is untouched, and with no healthy shard the home shard is
// returned unchanged.
func TestHashRingLookupHealthy(t *testing.T) {
	const shards, tenants = 4, 8000
	ring := newHashRing(shards, ringVnodes, nil)

	allHealthy := func(int) bool { return true }
	noneHealthy := func(int) bool { return false }
	downed := 0
	without := func(dead int) func(int) bool { return func(s int) bool { return s != dead } }

	counts := make([]int, shards)
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		home := ring.lookup(key)

		if s, rerouted := ring.lookupHealthy(key, allHealthy); s != home || rerouted {
			t.Fatalf("lookupHealthy(%q, all healthy) = (%d, %v), want home %d unrerouted", key, s, rerouted, home)
		}
		if s, rerouted := ring.lookupHealthy(key, noneHealthy); s != home || rerouted {
			t.Fatalf("lookupHealthy(%q, none healthy) = (%d, %v), want home %d as last resort", key, s, rerouted, home)
		}

		s, rerouted := ring.lookupHealthy(key, without(downed))
		if home == downed {
			if !rerouted || s == downed {
				t.Fatalf("lookupHealthy(%q, shard %d down) = (%d, %v), want reroute off the dead shard", key, downed, s, rerouted)
			}
			counts[s]++
		} else if s != home || rerouted {
			t.Fatalf("lookupHealthy(%q, shard %d down) = (%d, %v), want home %d untouched", key, downed, s, rerouted, home)
		}
	}
	// The dead shard's tenants must land on every healthy shard — the
	// per-vnode walk spreads them instead of dumping them on one neighbor.
	for s, n := range counts {
		if s != downed && n == 0 {
			t.Errorf("shard %d received none of dead shard %d's tenants — load not redistributed: %v", s, downed, counts)
		}
	}
}

// TestMergeLatencySnapshots: merging per-shard snapshots sums counts and
// bucket contents and recomputes the derived percentiles over the union.
func TestMergeLatencySnapshots(t *testing.T) {
	var a, b hist
	for i := 0; i < 90; i++ {
		a.record(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		b.record(10 * time.Millisecond)
	}
	m := mergeLatencySnapshots(a.snapshot(), b.snapshot())
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	if want := 90*10*time.Microsecond + 10*10*time.Millisecond; m.Sum != want {
		t.Errorf("merged sum = %v, want %v", m.Sum, want)
	}
	if m.P50 > time.Millisecond {
		t.Errorf("merged p50 = %v, want the fast cohort's bucket", m.P50)
	}
	if m.P99 < time.Millisecond {
		t.Errorf("merged p99 = %v, want the slow cohort's bucket", m.P99)
	}
	var total uint64
	for _, bk := range m.Buckets {
		total += bk.Count
	}
	if total != 100 {
		t.Errorf("merged bucket counts sum to %d, want 100", total)
	}
	if empty := mergeLatencySnapshots(); empty.Count != 0 || empty.Buckets != nil {
		t.Errorf("empty merge = %+v, want zero snapshot", empty)
	}
}
