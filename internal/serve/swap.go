package serve

import (
	"sync/atomic"

	"focc/fo"
	"focc/internal/servers"
)

// SwapServer is an atomically swappable servers.Server: instance creation
// reads the current underlying server through one atomic pointer load, so
// replacing the served program is a pointer flip — no lock on the serving
// path, no teardown of running instances.
//
// This is the factory half of zero-downtime program hot-swap. The compiled
// IR of an fo.Program is immutable and shared by every instance (DESIGN.md
// §13), so instances created before the flip keep executing the old
// program safely while instances created after it run the new one; pairing
// the flip with Engine.Recycle (or Router.Swap, which does both) rolls the
// pool forward between requests without failing any in-flight work.
//
// All methods are safe for concurrent use.
type SwapServer struct {
	cur atomic.Pointer[serverBox]
}

// serverBox wraps the interface value so it can live behind an
// atomic.Pointer (interfaces are two words; the box makes the store one
// pointer).
type serverBox struct {
	srv servers.Server
}

// NewSwapServer returns a SwapServer initially serving srv.
func NewSwapServer(srv servers.Server) *SwapServer {
	s := &SwapServer{}
	s.cur.Store(&serverBox{srv: srv})
	return s
}

// Current returns the server new instances are created from right now.
func (s *SwapServer) Current() servers.Server { return s.cur.Load().srv }

// Swap atomically replaces the underlying server and returns the previous
// one. Instances created from the previous server keep running until they
// are recycled, crash, or retire — Swap alone never interrupts them.
func (s *SwapServer) Swap(next servers.Server) (prev servers.Server) {
	return s.cur.Swap(&serverBox{srv: next}).srv
}

// Name implements servers.Server for the current underlying server.
func (s *SwapServer) Name() string { return s.Current().Name() }

// New implements servers.Server: one atomic load, then the current
// server's factory.
func (s *SwapServer) New(mode fo.Mode) (servers.Instance, error) {
	return s.Current().New(mode)
}

// LegitRequests implements servers.Server for the current underlying
// server.
func (s *SwapServer) LegitRequests() []servers.Request { return s.Current().LegitRequests() }

// AttackRequest implements servers.Server for the current underlying
// server.
func (s *SwapServer) AttackRequest() servers.Request { return s.Current().AttackRequest() }

// NewWithConfig implements servers.Configurable when the current
// underlying server does, so fault-injection tooling keeps working through
// a swappable front.
func (s *SwapServer) NewWithConfig(mode fo.Mode, hook servers.ConfigHook) (servers.Instance, error) {
	if c, ok := s.Current().(servers.Configurable); ok {
		return c.NewWithConfig(mode, hook)
	}
	return s.New(mode)
}
