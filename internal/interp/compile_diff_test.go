package interp_test

// Differential tests: the compiled closure-IR engine, the ahead-of-time
// generated-Go engine (internal/gencorpus), and the AST-walking
// reference engine must agree on EVERY observable — outcome, return
// value, error text, step count, simulated cycles, program output, and
// the memory-error event log — for every corpus program, every mode, and
// a set of torture programs that exercise the lowered control flow
// (goto/switch tables), the error paths, and the failure-oblivious
// continuation machinery. Simulated-cycle equality here is the
// enforcement of the cycle-charging invariant documented in compile.go
// and internal/gen.

import (
	"bytes"
	"reflect"
	"testing"

	"focc/internal/core"
	"focc/internal/corpus"
	"focc/internal/interp"
)

var diffModes = []core.Mode{
	core.Standard,
	core.BoundsCheck,
	core.FailureOblivious,
	core.Boundless,
	core.Redirect,
	core.TxTerm,
	core.ModeRewind,
	core.ModeFOContext,
}

// diffCall is one host-level call in a differential scenario.
type diffCall struct {
	fn   string
	args []int64
}

// engineObs is everything observable about one call on one engine.
type engineObs struct {
	Outcome  interp.Outcome
	Value    int64
	ExitCode int
	Err      string
	Steps    uint64
}

// runEngine executes the call sequence on a fresh machine and returns the
// per-call observations plus the machine's final cycle count, output, and
// event-log snapshot.
func runEngine(t *testing.T, engine, src string, mode core.Mode,
	maxSteps uint64, calls []diffCall) ([]engineObs, uint64, string, core.Snapshot) {
	t.Helper()
	prog := compileWithCPP(t, src)
	var out bytes.Buffer
	cfg := engineConfig(t, engine, prog, src)
	cfg.Mode = mode
	cfg.Out = &out
	cfg.MaxSteps = maxSteps
	m, err := interp.New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var obs []engineObs
	for _, c := range calls {
		args := make([]interp.Value, len(c.args))
		for i, a := range c.args {
			args[i] = interp.Int(a)
		}
		res := m.Call(c.fn, args...)
		o := engineObs{
			Outcome:  res.Outcome,
			Value:    res.Value.I,
			ExitCode: res.ExitCode,
			Steps:    res.Steps,
		}
		if res.Err != nil {
			o.Err = res.Err.Error()
		}
		obs = append(obs, o)
	}
	return obs, m.SimCycles(), out.String(), m.Log().Snapshot()
}

// assertEnginesAgree runs the scenario on all three engines under every
// mode and requires identical observations, with the tree-walk reference
// engine as ground truth.
func assertEnginesAgree(t *testing.T, src string, maxSteps uint64, calls []diffCall) {
	t.Helper()
	for _, mode := range diffModes {
		t.Run(mode.String(), func(t *testing.T) {
			refObs, refCycles, refOut, refLog := runEngine(t, "tree-walk", src, mode, maxSteps, calls)
			for _, engine := range engineNames[1:] {
				eObs, eCycles, eOut, eLog := runEngine(t, engine, src, mode, maxSteps, calls)
				for i := range refObs {
					if refObs[i] != eObs[i] {
						t.Errorf("call %d (%s): tree-walk %+v, %s %+v",
							i, calls[i].fn, refObs[i], engine, eObs[i])
					}
				}
				if refCycles != eCycles {
					t.Errorf("sim cycles: tree-walk %d, %s %d", refCycles, engine, eCycles)
				}
				if refOut != eOut {
					t.Errorf("output: tree-walk %q, %s %q", refOut, engine, eOut)
				}
				if !reflect.DeepEqual(refLog, eLog) {
					t.Errorf("event log: tree-walk %+v, %s %+v", refLog, engine, eLog)
				}
			}
		})
	}
}

func TestEngineDiffCorpus(t *testing.T) {
	for _, cp := range corpusSources() {
		t.Run(cp.Name, func(t *testing.T) {
			assertEnginesAgree(t, cp.Src, 0, []diffCall{{fn: "main"}})
		})
	}
}

// TestEngineDiffMemoryErrors exercises the continuation paths: the pin
// workload's out-of-bounds reads and writes manufacture values and log
// events; all engines must produce the same values, cycles, and logs.
func TestEngineDiffMemoryErrors(t *testing.T) {
	assertEnginesAgree(t, corpus.PinSrc, 0, []diffCall{
		{fn: "bulk", args: []int64{0}},
		{fn: "scan", args: []int64{0}},
		{fn: "ptrs", args: []int64{0}},
		{fn: "oob", args: []int64{6}},
		{fn: "oob", args: []int64{24}},
		// After a crash (Standard: possible stack garbage; BoundsCheck:
		// termination) further calls must fail identically on all engines.
		{fn: "bulk", args: []int64{0}},
	})
}

// TestEngineDiffControlFlow tortures the statically-lowered control flow:
// goto into and out of nested blocks, switch dispatch with fallthrough
// and default, do-while, break/continue, and labeled statements.
func TestEngineDiffControlFlow(t *testing.T) {
	assertEnginesAgree(t, corpus.SrcControlFlow, 0, []diffCall{
		{fn: "collatz", args: []int64{27}},
		{fn: "classify", args: []int64{2}},
		{fn: "classify", args: []int64{7}},
		{fn: "weave", args: []int64{8}},
		{fn: "dispatch", args: []int64{40}},
	})
}

// TestEngineDiffErrorPaths pins the engines' fatal-error parity: division
// by zero, hangs under a small step budget, and exit().
func TestEngineDiffErrorPaths(t *testing.T) {
	t.Run("DivideByZero", func(t *testing.T) {
		assertEnginesAgree(t, corpus.SrcErrorPaths, 0, []diffCall{
			{fn: "divz", args: []int64{5}},
			{fn: "divz", args: []int64{0}},
			{fn: "divz", args: []int64{5}}, // dead machine on all engines
		})
	})
	t.Run("Hang", func(t *testing.T) {
		assertEnginesAgree(t, corpus.SrcErrorPaths, 20_000, []diffCall{
			{fn: "spin", args: []int64{0}},
		})
	})
	t.Run("Exit", func(t *testing.T) {
		assertEnginesAgree(t, corpus.SrcErrorPaths, 0, []diffCall{
			{fn: "quit", args: []int64{3}},
		})
	})
}

// TestEngineDiffDataShapes covers the value-shape paths: struct copies by
// pointer and by member, nested aggregates with initializers, string
// literals, pointer arithmetic and compound assignment, ternary, comma,
// casts, and printf output.
func TestEngineDiffDataShapes(t *testing.T) {
	assertEnginesAgree(t, corpus.SrcDataShapes, 0, []diffCall{
		{fn: "area"},
		{fn: "strings"},
		{fn: "mixed", args: []int64{7}},
	})
}
