package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "prog.c")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const overflowProg = `
int main(void) {
	int i; /* before buf so the overrun cannot clobber the loop counter */
	char buf[4];
	for (i = 0; i < 32; i++)
		buf[i] = 'A';
	return 0;
}
`

func TestRunExitCodes(t *testing.T) {
	ok := writeTemp(t, "int main(void){ return 5; }")
	if code := run(ok, "standard", false, false, 0); code != 5 {
		t.Errorf("standard exit = %d, want 5", code)
	}
	bad := writeTemp(t, overflowProg)
	if code := run(bad, "standard", false, false, 0); code != 2 {
		t.Errorf("crashing standard run = %d, want 2", code)
	}
	if code := run(bad, "bounds", false, false, 0); code != 2 {
		t.Errorf("bounds run = %d, want 2", code)
	}
	if code := run(bad, "oblivious", true, false, 0); code != 0 {
		t.Errorf("oblivious run = %d, want 0", code)
	}
	if code := run(bad, "boundless", false, false, 0); code != 0 {
		t.Errorf("boundless run = %d, want 0", code)
	}
}

func TestRunExitBuiltinPropagates(t *testing.T) {
	p := writeTemp(t, "int main(void){ exit(7); return 0; }")
	if code := run(p, "oblivious", false, false, 0); code != 7 {
		t.Errorf("exit(7) run = %d", code)
	}
}

func TestRunBadInputs(t *testing.T) {
	if code := run("/does/not/exist.c", "oblivious", false, false, 0); code != 1 {
		t.Errorf("missing file = %d, want 1", code)
	}
	p := writeTemp(t, "int main(void){ return 0; }")
	if code := run(p, "no-such-mode", false, false, 0); code != 1 {
		t.Errorf("bad mode = %d, want 1", code)
	}
	broken := writeTemp(t, "int main( {")
	if code := run(broken, "oblivious", false, false, 0); code != 1 {
		t.Errorf("compile error = %d, want 1", code)
	}
}

func TestZeroGeneratorHangsScanners(t *testing.T) {
	p := writeTemp(t, `
int main(void) {
	char buf[2];
	int i = 0;
	buf[0] = 'a';
	while (buf[i] != '/')
		i++;
	return 0;
}`)
	// The paper's sequence terminates the scan...
	if code := run(p, "oblivious", false, false, 100000); code != 0 {
		t.Errorf("small-int run = %d, want 0", code)
	}
	// ...the naive all-zeros generator hangs (exhausts the step budget).
	if code := run(p, "oblivious", false, true, 100000); code != 2 {
		t.Errorf("zero-gen run = %d, want 2 (hang)", code)
	}
}

func TestDumpAST(t *testing.T) {
	p := writeTemp(t, "int g; int main(void){ return g; }")
	if code := dump(p); code != 0 {
		t.Errorf("dump = %d", code)
	}
	if code := dump("/no/such.c"); code != 1 {
		t.Errorf("dump missing = %d", code)
	}
	broken := writeTemp(t, "int (")
	if code := dump(broken); code != 1 {
		t.Errorf("dump broken = %d", code)
	}
}
