// Command focc compiles a focc C-dialect source file and runs its main()
// under one of the failure-oblivious computing modes:
//
//	focc -mode standard  prog.c    # unsafe C semantics
//	focc -mode bounds    prog.c    # CRED: terminate at first memory error
//	focc -mode oblivious prog.c    # failure-oblivious computing (default)
//	focc -mode boundless prog.c    # boundless memory blocks (§5.1)
//	focc -mode redirect  prog.c    # redirect-into-bounds (§5.1)
//	focc -mode txterm    prog.c    # transactional function termination (§5.2)
//	focc -mode rewind    prog.c    # rewind-and-discard at request boundaries
//
// With -log, every memory error the program attempts is streamed to stderr
// (the paper's §3 error log). The exit status is the program's exit code,
// or 2 on a crash/termination, or 1 on a compile error.
//
// With -emit-go, focc does not run the program; it translates it
// ahead-of-time to Go source implementing the generated execution engine
// (see internal/gen and DESIGN.md §16):
//
//	focc -emit-go -pkg mypkg -o prog_gen.go prog.c
//
// The emitted file registers itself by source hash at init time; linking
// it into a binary makes fo.MachineConfig{UseGenerated: true} select it
// for the same (filename, source) pair.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"focc/fo"
	"focc/internal/cc/astprint"
	"focc/internal/gen"
)

func main() {
	modeName := flag.String("mode", "oblivious", "execution mode: standard, bounds, oblivious, boundless, redirect, txterm, rewind")
	logErrors := flag.Bool("log", false, "stream memory-error events to stderr")
	maxSteps := flag.Uint64("max-steps", 0, "interpreter step budget (0 = default)")
	zeroGen := flag.Bool("zero-gen", false, "use the naive all-zeros manufactured-value generator (ablation)")
	dumpAST := flag.Bool("dump-ast", false, "print the analyzed AST instead of running")
	emitGoFlag := flag.Bool("emit-go", false, "emit the generated-Go execution engine instead of running")
	outPath := flag.String("o", "", "output file for -emit-go (default: input with .c replaced by _gen.go)")
	pkgName := flag.String("pkg", "main", "package name for -emit-go output")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: focc [flags] file.c")
		flag.Usage()
		os.Exit(1)
	}
	if *dumpAST {
		os.Exit(dump(flag.Arg(0)))
	}
	if *emitGoFlag {
		os.Exit(emitGo(flag.Arg(0), *outPath, *pkgName))
	}
	os.Exit(run(flag.Arg(0), *modeName, *logErrors, *zeroGen, *maxSteps))
}

// emitGo translates the program to Go source (the generated execution
// engine) and writes it to outPath.
func emitGo(path, outPath, pkg string) int {
	if !strings.HasSuffix(path, ".c") {
		fmt.Fprintf(os.Stderr, "focc: -emit-go input must be a .c file, got %q\n", path)
		return 1
	}
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focc:", err)
		return 1
	}
	prog, err := fo.Compile(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	code, err := gen.Emit(prog.Sema(), gen.Options{
		Package:  pkg,
		Hash:     prog.SourceHash(),
		Register: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "focc:", err)
		return 1
	}
	if outPath == "" {
		outPath = strings.TrimSuffix(path, ".c") + "_gen.go"
	}
	if err := os.WriteFile(outPath, code, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "focc:", err)
		return 1
	}
	return 0
}

// dump compiles the file and prints its analyzed AST.
func dump(path string) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focc:", err)
		return 1
	}
	prog, err := fo.Compile(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	astprint.File(os.Stdout, prog.Sema().File)
	return 0
}

func run(path, modeName string, logErrors, zeroGen bool, maxSteps uint64) int {
	mode, err := fo.ParseMode(modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focc:", err)
		return 1
	}
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focc:", err)
		return 1
	}
	prog, err := fo.Compile(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	log := fo.NewEventLog(0)
	if logErrors {
		log.Stream = os.Stderr
	}
	cfg := fo.MachineConfig{
		Mode:     mode,
		Out:      os.Stdout,
		Log:      log,
		MaxSteps: maxSteps,
	}
	if zeroGen {
		cfg.Gen = fo.NewZeroGenerator()
	}
	m, err := prog.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focc:", err)
		return 1
	}
	res := m.Run()
	if logErrors {
		fmt.Fprintln(os.Stderr, "focc:", log.Summary())
	}
	switch res.Outcome {
	case fo.OutcomeOK:
		return int(res.Value.I) & 0xff
	case fo.OutcomeExit:
		return res.ExitCode & 0xff
	default:
		fmt.Fprintf(os.Stderr, "focc: program %s: %v\n", res.Outcome, res.Err)
		return 2
	}
}
