package serve

import (
	"sync/atomic"
	"testing"
	"time"
)

// Regression test: the service-time EWMA must not survive a program hot
// swap. Before resetServiceEstimate was wired into Engine.Recycle, the
// estimate learned from the outgoing program kept driving
// unmeetable-deadline shedding for the incoming one — a slow outgoing
// program made the queue shed requests the new program could easily have
// served.
func TestShedQueueEWMAResetOnRecycle(t *testing.T) {
	var shed atomic.Uint64
	q := newShedQueue(4, ShedConfig{Target: time.Millisecond, Interval: 10 * time.Millisecond}, &shed)

	q.observe(50 * time.Millisecond)
	q.observe(70 * time.Millisecond)
	q.mu.Lock()
	got := q.svcEWMA
	q.mu.Unlock()
	if got == 0 {
		t.Fatal("svcEWMA = 0 after observations, want nonzero")
	}

	// Recycle routes through the queue (Router.Swap calls Recycle on every
	// shard, so swap coverage follows from this path).
	e := &Engine{q: q}
	e.Recycle()

	q.mu.Lock()
	got = q.svcEWMA
	q.mu.Unlock()
	if got != 0 {
		t.Fatalf("svcEWMA = %v after Recycle, want 0 (stale estimate must not outlive a hot swap)", got)
	}

	// The queue re-learns from the new program's observations.
	q.observe(2 * time.Millisecond)
	q.mu.Lock()
	got = q.svcEWMA
	q.mu.Unlock()
	if got != 2*time.Millisecond {
		t.Fatalf("svcEWMA = %v after first post-recycle observation, want 2ms cold-start", got)
	}
}

// Recycle on an engine without a shed queue (plain bounded channel) must
// not panic.
func TestRecycleWithoutShedQueue(t *testing.T) {
	e := &Engine{}
	e.Recycle()
}
