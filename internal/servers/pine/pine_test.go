package pine

import (
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/servers"
)

func newInstance(t *testing.T, mode fo.Mode) *Instance {
	t.Helper()
	inst, err := NewServer().New(mode)
	if err != nil {
		t.Fatalf("New(%v): %v", mode, err)
	}
	return inst.(*Instance)
}

func TestCompiles(t *testing.T) {
	if _, err := Program(); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestIndexQuotesFrom(t *testing.T) {
	inst := newInstance(t, fo.BoundsCheck)
	resp := inst.Handle(servers.Request{
		Op: "index", Payload: "From: \"Bob\" <bob@x>\nSubject: s\n\nbody\n",
	})
	if !resp.OK() {
		t.Fatalf("index: %v", resp)
	}
	if want := `  N  \"Bob\" <bob@x>`; resp.Body != want {
		t.Errorf("index line = %q, want %q", resp.Body, want)
	}
}

func TestMailboxLoadOutcomesPerMode(t *testing.T) {
	srv := NewServer()
	mailbox := []string{
		Message("alice@example.org", "one"),
		AttackMessage(),
		Message("bob@example.org", "two"),
	}

	std := newInstance(t, fo.Standard)
	resp := std.LoadMailbox(mailbox)
	if resp.Outcome != fo.OutcomeHeapCorruption && resp.Outcome != fo.OutcomeSegfault {
		t.Errorf("standard: outcome = %v (%v), want heap corruption/segfault during load", resp.Outcome, resp.Err)
	}

	bc := newInstance(t, fo.BoundsCheck)
	resp = bc.LoadMailbox(mailbox)
	if resp.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds: outcome = %v, want termination during load", resp.Outcome)
	}
	// Restarting does not help: the message is still in the mailbox
	// (paper §4.7).
	bc2 := newInstance(t, fo.BoundsCheck)
	resp = bc2.LoadMailbox(mailbox)
	if resp.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds restart: outcome = %v, want the same termination", resp.Outcome)
	}

	foi := newInstance(t, fo.FailureOblivious)
	resp = foi.LoadMailbox(mailbox)
	if !resp.OK() {
		t.Fatalf("oblivious: load crashed: %v", resp)
	}
	if foi.Log().InvalidWrites() == 0 {
		t.Error("oblivious: expected discarded writes during load")
	}
	// The user can now read mail, including the message with the
	// offending From field (a different execution path translates it
	// correctly — paper §4.2.2).
	resp = foi.Handle(servers.Request{Op: "read", Payload: AttackMessage()})
	if !resp.OK() {
		t.Fatalf("oblivious: read crashed: %v", resp)
	}
	if !strings.Contains(resp.Body, strings.Repeat("\\", 200)) {
		t.Error("oblivious: displayed message should contain the complete From field")
	}
	_ = srv
}

func TestComposeScreen(t *testing.T) {
	inst := newInstance(t, fo.FailureOblivious)
	resp := inst.Handle(servers.Request{Op: "compose", Arg: "user@example.org"})
	if !resp.OK() {
		t.Fatalf("compose: %v", resp)
	}
	if !strings.HasPrefix(resp.Body, "From    : user@example.org\n") {
		t.Errorf("compose header wrong: %.60q", resp.Body)
	}
	if !strings.Contains(resp.Body, ">  ") {
		t.Error("compose template rows missing")
	}
}

func TestMoveMessage(t *testing.T) {
	inst := newInstance(t, fo.FailureOblivious)
	msg := Message("a@x", "m")
	resp := inst.Handle(servers.Request{Op: "move", Payload: msg})
	if !resp.OK() || resp.Status != len(msg) {
		t.Errorf("move = %v, want status %d", resp, len(msg))
	}
}

func TestLargeMailFolderSoak(t *testing.T) {
	// Paper §4.2.4: the Failure Oblivious version processed a large
	// folder with periodic attack messages flawlessly. Scaled-down soak.
	if testing.Short() {
		t.Skip("soak test")
	}
	inst := newInstance(t, fo.FailureOblivious)
	for i := 0; i < 500; i++ {
		var msg string
		if i%25 == 0 {
			msg = AttackMessage()
		} else {
			msg = Message("user@example.org", "msg")
		}
		resp := inst.Handle(servers.Request{Op: "index", Payload: msg})
		if !resp.OK() {
			t.Fatalf("message %d crashed: %v", i, resp)
		}
	}
	if !inst.Alive() {
		t.Error("instance died during soak")
	}
}
