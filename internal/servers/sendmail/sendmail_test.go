package sendmail

import (
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/servers"
)

func newInstance(t *testing.T, mode fo.Mode) *Instance {
	t.Helper()
	inst, err := NewServer().New(mode)
	if err != nil {
		t.Fatalf("New(%v): %v", mode, err)
	}
	return inst.(*Instance)
}

func TestCompiles(t *testing.T) {
	if _, err := Program(); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestNormalDelivery(t *testing.T) {
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		inst := newInstance(t, mode)
		resp := inst.Deliver("alice@example.org", "bob@example.org", "Hello Bob\n")
		if !resp.OK() || resp.Status != 250 {
			t.Errorf("%v: deliver = %v, want 250", mode, resp)
		}
	}
}

func TestDotUnstuffing(t *testing.T) {
	inst := newInstance(t, fo.Standard)
	resp := inst.Deliver("a@x", "b@x", "..dot line\nplain\n")
	if !resp.OK() || resp.Status != 250 {
		t.Fatalf("deliver: %v", resp)
	}
	u, ok := inst.M.GlobalUnit("msg_store")
	if !ok {
		t.Fatal("no msg_store global")
	}
	got := string(u.Data[:len(".dot line\nplain\n")])
	if got != ".dot line\nplain\n" {
		t.Errorf("stored = %q", got)
	}
}

func TestTooLongAddressIsAnticipatedError(t *testing.T) {
	inst := newInstance(t, fo.BoundsCheck)
	resp := inst.Handle(servers.Request{Op: "mail", Arg: strings.Repeat("a", 200) + "@x"})
	if !resp.OK() || resp.Status != 553 {
		t.Errorf("long address = %v, want 553", resp)
	}
}

func TestAttackOutcomesPerMode(t *testing.T) {
	srv := NewServer()
	attack := srv.AttackRequest()

	std := newInstance(t, fo.Standard)
	resp := std.Handle(attack)
	if resp.Outcome != fo.OutcomeStackSmash && resp.Outcome != fo.OutcomeSegfault {
		t.Errorf("standard: outcome = %v (%v), want stack smash/segfault", resp.Outcome, resp.Err)
	}

	bc := newInstance(t, fo.BoundsCheck)
	resp = bc.Handle(attack)
	if resp.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds: outcome = %v, want termination", resp.Outcome)
	}

	foi := newInstance(t, fo.FailureOblivious)
	resp = foi.Handle(attack)
	if !resp.OK() {
		t.Fatalf("oblivious: crashed: %v", resp)
	}
	if resp.Status != 553 {
		t.Errorf("oblivious: status = %d, want 553 (anticipated 'address too long')", resp.Status)
	}
	if foi.Log().InvalidWrites() == 0 {
		t.Error("oblivious: expected discarded writes")
	}
	// Paper §4.4.2: continues to process subsequent commands correctly.
	resp = foi.Deliver("alice@example.org", "bob@example.org", "post-attack mail\n")
	if !resp.OK() || resp.Status != 250 {
		t.Errorf("oblivious: post-attack deliver = %v", resp)
	}
}

func TestWakeupErrorDisablesBoundsOnly(t *testing.T) {
	// Paper §4.4.4: the daemon generates a memory error on every wake-up;
	// this completely disables the Bounds Check version, while Standard
	// executes it benignly and Failure Oblivious logs and continues.
	std := newInstance(t, fo.Standard)
	resp := std.Handle(servers.Request{Op: "wakeup"})
	if !resp.OK() {
		t.Errorf("standard wakeup = %v, want benign", resp)
	}

	bc := newInstance(t, fo.BoundsCheck)
	resp = bc.Handle(servers.Request{Op: "wakeup"})
	if resp.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds wakeup = %v, want termination", resp.Outcome)
	}
	if bc.Alive() {
		t.Error("bounds daemon should be dead after the wake-up error")
	}

	foi := newInstance(t, fo.FailureOblivious)
	for i := 0; i < 5; i++ {
		resp = foi.Handle(servers.Request{Op: "wakeup"})
		if !resp.OK() {
			t.Fatalf("oblivious wakeup %d = %v", i, resp)
		}
	}
	if foi.Log().InvalidReads() < 5 {
		t.Errorf("oblivious: expected >=5 logged invalid reads, got %d (paper: 'a steady stream of memory errors')",
			foi.Log().InvalidReads())
	}
}

func TestSendWorkload(t *testing.T) {
	inst := newInstance(t, fo.FailureOblivious)
	resp := inst.Handle(servers.Request{Op: "send", Payload: ".leading dot\nbody\n"})
	if !resp.OK() {
		t.Fatalf("send: %v", resp)
	}
	u, _ := inst.M.GlobalUnit("out_wire")
	want := "..leading dot\nbody\n"
	if string(u.Data[:len(want)]) != want {
		t.Errorf("wire = %q, want %q", string(u.Data[:len(want)]), want)
	}
}

func TestHeloAndUnknownCommand(t *testing.T) {
	inst := newInstance(t, fo.Standard)
	resp := inst.Handle(servers.Request{Op: "helo", Arg: "client.example.org"})
	if !resp.OK() || resp.Status != 250 || !strings.Contains(resp.Body, "client.example.org") {
		t.Errorf("helo = %v", resp)
	}
	resp = inst.Handle(servers.Request{Op: "bogus"})
	if !resp.OK() || resp.Status != 500 {
		t.Errorf("unknown = %v", resp)
	}
}

func TestRcptBeforeMailRejected(t *testing.T) {
	inst := newInstance(t, fo.BoundsCheck)
	resp := inst.Handle(servers.Request{Op: "rcpt", Arg: "bob@x"})
	if !resp.OK() || resp.Status != 503 {
		t.Errorf("rcpt before mail = %v, want 503", resp)
	}
	resp = inst.Handle(servers.Request{Op: "data", Payload: "body\n"})
	if !resp.OK() || resp.Status != 503 {
		t.Errorf("data before envelope = %v, want 503", resp)
	}
}

func TestRecvTransactionOp(t *testing.T) {
	inst := newInstance(t, fo.FailureOblivious)
	resp := inst.Handle(servers.Request{Op: "recv", Payload: SmallBody()})
	if !resp.OK() || resp.Status != 250 {
		t.Errorf("recv = %v", resp)
	}
	// The envelope resets after DATA, so a second recv works too.
	resp = inst.Handle(servers.Request{Op: "recv", Payload: LargeBody()})
	if !resp.OK() || resp.Status != 250 {
		t.Errorf("second recv = %v", resp)
	}
}

func TestAttackAddressShape(t *testing.T) {
	a := AttackAddress(3)
	if a != "\\\xff\\\xff\\\xff" {
		t.Errorf("AttackAddress(3) = %q", a)
	}
	if len(LargeBody()) != 4096 {
		t.Errorf("LargeBody len = %d", len(LargeBody()))
	}
	if SmallBody() != "hi!\n" {
		t.Errorf("SmallBody = %q", SmallBody())
	}
}

func TestLegitRequestsAreServable(t *testing.T) {
	srv := NewServer()
	inst := newInstance(t, fo.FailureOblivious)
	for i, req := range srv.LegitRequests() {
		resp := inst.Handle(req)
		if resp.Crashed() {
			t.Errorf("legit request %d crashed: %v", i, resp)
		}
	}
	if srv.Name() != "sendmail" {
		t.Errorf("name = %q", srv.Name())
	}
}

func TestBackslashQuotingInBoundsWorks(t *testing.T) {
	// A *small* number of backslash pairs stays in bounds and must parse
	// (the unchecked store is only dangerous en masse).
	inst := newInstance(t, fo.BoundsCheck)
	resp := inst.Handle(servers.Request{Op: "mail", Arg: "a\\,b@example.org"})
	if !resp.OK() || resp.Status != 250 {
		t.Errorf("quoted address = %v, want 250", resp)
	}
}
