package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestHashRingSpreadAndStability: the ring spreads tenants across every
// shard without hot-spotting, lookups are deterministic, and growing the
// shard count moves only a minority of tenants (the consistent-hashing
// property).
func TestHashRingSpreadAndStability(t *testing.T) {
	const shards, tenants = 4, 10000
	ring := newHashRing(shards, ringVnodes)
	counts := make([]int, shards)
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		s := ring.lookup(key)
		if again := ring.lookup(key); again != s {
			t.Fatalf("lookup(%q) unstable: %d then %d", key, s, again)
		}
		counts[s]++
	}
	for s, n := range counts {
		// Perfect balance is tenants/shards; with 64 vnodes the spread
		// stays well within 2× either way.
		if n < tenants/shards/2 || n > tenants/shards*2 {
			t.Errorf("shard %d holds %d of %d tenants — spread too skewed: %v",
				s, n, tenants, counts)
		}
	}

	grown := newHashRing(shards+1, ringVnodes)
	moved := 0
	for i := 0; i < tenants; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		if grown.lookup(key) != ring.lookup(key) {
			moved++
		}
	}
	// Adding one shard should move roughly 1/(shards+1) of tenants; a
	// modulo hash would move ~shards/(shards+1). Split the difference.
	if moved > tenants/2 {
		t.Errorf("adding a shard moved %d of %d tenants — not consistent hashing", moved, tenants)
	}
}

// TestMergeLatencySnapshots: merging per-shard snapshots sums counts and
// bucket contents and recomputes the derived percentiles over the union.
func TestMergeLatencySnapshots(t *testing.T) {
	var a, b hist
	for i := 0; i < 90; i++ {
		a.record(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		b.record(10 * time.Millisecond)
	}
	m := mergeLatencySnapshots(a.snapshot(), b.snapshot())
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	if want := 90*10*time.Microsecond + 10*10*time.Millisecond; m.Sum != want {
		t.Errorf("merged sum = %v, want %v", m.Sum, want)
	}
	if m.P50 > time.Millisecond {
		t.Errorf("merged p50 = %v, want the fast cohort's bucket", m.P50)
	}
	if m.P99 < time.Millisecond {
		t.Errorf("merged p99 = %v, want the slow cohort's bucket", m.P99)
	}
	var total uint64
	for _, bk := range m.Buckets {
		total += bk.Count
	}
	if total != 100 {
		t.Errorf("merged bucket counts sum to %d, want 100", total)
	}
	if empty := mergeLatencySnapshots(); empty.Count != 0 || empty.Buckets != nil {
		t.Errorf("empty merge = %+v, want zero snapshot", empty)
	}
}
