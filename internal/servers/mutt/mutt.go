// Package mutt models Mutt 1.4's IMAP folder-open path, whose
// utf8_to_utf7 conversion (the paper's Figure 1, reproduced below nearly
// verbatim) allocates a buffer assuming a worst-case expansion ratio of 2
// when the real worst case is 7/3 — so an appropriately constructed UTF-8
// folder name writes past the end of the heap buffer [7].
package mutt

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"focc/fo"
	"focc/internal/cc/token"
	"focc/internal/interp"
	"focc/internal/servers"
)

// Source is the server's C code. utf8_to_utf7 follows the paper's Figure 1.
const Source = `
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

static char B64Chars[64] = {
	'A','B','C','D','E','F','G','H','I','J','K','L','M','N','O','P',
	'Q','R','S','T','U','V','W','X','Y','Z','a','b','c','d','e','f',
	'g','h','i','j','k','l','m','n','o','p','q','r','s','t','u','v',
	'w','x','y','z','0','1','2','3','4','5','6','7','8','9','+',','
};

/* Paper Figure 1: string encoding conversion procedure from Mutt 1.4.
   The allocation below is the bug: a safe length would be u8len*4+1
   (the worst-case increase ratio is 7/3, not 2). */
static char *utf8_to_utf7(const char *u8, size_t u8len)
{
	char *buf, *p;
	int ch, n, i, b = 0, k = 0, base64 = 0;

	p = buf = safe_malloc(u8len * 2 + 1);
	while (u8len) {
		unsigned char c = *u8;
		if (c < 0x80) { ch = c; n = 0; }
		else if (c < 0xc2) goto bail;
		else if (c < 0xe0) { ch = c & 0x1f; n = 1; }
		else if (c < 0xf0) { ch = c & 0x0f; n = 2; }
		else if (c < 0xf8) { ch = c & 0x07; n = 3; }
		else if (c < 0xfc) { ch = c & 0x03; n = 4; }
		else if (c < 0xfe) { ch = c & 0x01; n = 5; }
		else goto bail;
		u8++; u8len--;
		if (n > u8len) goto bail;
		for (i = 0; i < n; i++) {
			if ((u8[i] & 0xc0) != 0x80) goto bail;
			ch = (ch << 6) | (u8[i] & 0x3f);
		}
		if (n > 1 && !(ch >> (n * 5 + 1))) goto bail;
		u8 += n; u8len -= n;
		if (ch < 0x20 || ch >= 0x7f) {
			if (!base64) {
				*p++ = '&';
				base64 = 1;
				b = 0;
				k = 10;
			}
			if (ch & ~0xffff) ch = 0xfffe;
			*p++ = B64Chars[b | ch >> k];
			k -= 6;
			for (; k >= 0; k -= 6)
				*p++ = B64Chars[(ch >> k) & 0x3f];
			b = (ch << (-k)) & 0x3f;
			k += 16;
		} else {
			if (base64) {
				if (k > 10) *p++ = B64Chars[b];
				*p++ = '-';
				base64 = 0;
			}
			*p++ = ch;
			if (ch == '&') *p++ = '-';
		}
	}
	if (base64) {
		if (k > 10) *p++ = B64Chars[b];
		*p++ = '-';
	}
	*p++ = '\0';
	safe_realloc((void **)&buf, p - buf);
	return buf;
bail:
	safe_free((void **)&buf);
	return 0;
}

char imap_cmd[1024];
char imap_status[128];
char display_buf[8192];
char folder_store[65536];
int  folder_used = 0;

/* host (network) call: int imap_exec(const char *cmd, char *status, int n); */
int imap_exec(const char *cmd, char *status, int n);

/* Open a mail folder over IMAP. Returns 0 on success, -1 when the server
   rejects the folder (anticipated error), -2 for an invalid name. */
int mutt_select_folder(const char *name)
{
	char *utf7;
	int rc;
	utf7 = utf8_to_utf7(name, strlen(name));
	if (!utf7)
		return -2;
	snprintf(imap_cmd, sizeof(imap_cmd), "a01 SELECT \"%s\"", utf7);
	safe_free((void **)&utf7);
	rc = imap_exec(imap_cmd, imap_status, sizeof(imap_status));
	if (rc != 0)
		return -1;
	return 0;
}

unsigned char mutt_xlat[256];
int mutt_xlat_ready = 0;

static void mutt_init_xlat(void)
{
	int i;
	for (i = 0; i < 256; i++)
		mutt_xlat[i] = (unsigned char) i;
	mutt_xlat_ready = 1;
}

/* Display a message: header unfolding, CR stripping, and charset
   translation, one character at a time (the per-character work that
   dominates the Read request). */
int mutt_read_message(const char *raw)
{
	int i = 0, o = 0;
	int c;
	if (!mutt_xlat_ready)
		mutt_init_xlat();
	while (raw[i] != '\0' && o < (int)(sizeof(display_buf)) - 2) {
		c = (unsigned char) raw[i];
		if (c == '\r') { i++; continue; }
		if (c == '\n' && raw[i+1] == ' ') {
			display_buf[o++] = ' ';
			i += 2;
			while (raw[i] == ' ' || raw[i] == '\t') i++;
			continue;
		}
		display_buf[o++] = (char) mutt_xlat[c];
		i++;
	}
	display_buf[o] = '\0';
	return o;
}

/* Move a message between folders: bulk copy plus a header scan to find
   the body boundary (a short per-character pass over the headers). */
int mutt_move_message(const char *raw, int len)
{
	int i, hdr_end = 0;
	if (len > (int)(sizeof(folder_store)))
		len = sizeof(folder_store);
	for (i = 0; i + 1 < len && i < 64; i++) {
		if (raw[i] == '\n' && raw[i+1] == '\n') {
			hdr_end = i + 2;
			break;
		}
	}
	memcpy(folder_store, raw, (size_t) len);
	folder_used = len;
	return len + 0 * hdr_end;
}
`

var (
	compileOnce sync.Once
	prog        *fo.Program
	compileErr  error
)

// Program returns the compiled Mutt program (compiled once per process).
func Program() (*fo.Program, error) {
	compileOnce.Do(func() {
		prog, compileErr = fo.Compile("mutt.c", Source)
	})
	return prog, compileErr
}

// Server is the Mutt model: a compiled program plus the IMAP-side folder
// namespace the driver simulates.
type Server struct {
	Folders map[string]bool
}

// NewServer returns a Mutt server with a conventional folder set.
func NewServer() *Server {
	return &Server{Folders: map[string]bool{
		"INBOX": true, "Sent": true, "Drafts": true, "Archive": true,
	}}
}

// Name implements servers.Server.
func (s *Server) Name() string { return "mutt" }

// Instance is one running Mutt process.
type Instance struct {
	servers.Base
	srv *Server
}

// New implements servers.Server.
func (s *Server) New(mode fo.Mode) (servers.Instance, error) {
	return s.NewWithConfig(mode, nil)
}

// NewWithConfig implements servers.Configurable.
func (s *Server) NewWithConfig(mode fo.Mode, hook servers.ConfigHook) (servers.Instance, error) {
	p, err := Program()
	if err != nil {
		return nil, err
	}
	log := fo.NewEventLog(0)
	cfg := fo.MachineConfig{
		Mode: mode,
		Log:  log,
		Builtins: map[string]interp.BuiltinFunc{
			"imap_exec": s.imapExec,
		},
	}
	if hook != nil {
		hook(&cfg)
	}
	m, err := p.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Base: servers.Base{ServerName: "mutt", M: m, EvLog: log},
		srv:  s,
	}, nil
}

// imapExec simulates the IMAP server side of a SELECT exchange: parse the
// folder out of the command, look it up, and write a status line back into
// the client's buffer.
func (s *Server) imapExec(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	cmd, err := m.ReadCString(args[0], 4096)
	if err != nil {
		// The command buffer was unreadable; the network peer just sees
		// garbage and reports an error.
		return interp.Int(1)
	}
	folder := ""
	if i := strings.IndexByte(cmd, '"'); i >= 0 {
		if j := strings.IndexByte(cmd[i+1:], '"'); j >= 0 {
			folder = cmd[i+1 : i+1+j]
		}
	}
	status := "a01 NO SELECT failed: no such folder"
	rc := int64(1)
	if s.Folders[folder] {
		status = "a01 OK SELECT completed"
		rc = 0
	}
	// The "kernel" delivers the response into the caller's buffer,
	// bounded by the advertised length (raw, like a real recv()).
	n := int(args[2].I)
	if n > 0 {
		b := []byte(status)
		if len(b) > n-1 {
			b = b[:n-1]
		}
		b = append(b, 0)
		m.AddressSpace().RawWrite(args[1].Ptr.Addr, b)
	}
	m.ChargeCycles(40_000) // network round-trip to the IMAP server
	return interp.Int(rc)
}

// Handle implements servers.Instance.
func (inst *Instance) Handle(req servers.Request) servers.Response {
	switch req.Op {
	case "select":
		res := inst.CallString("mutt_select_folder", req.Arg)
		resp := inst.ResponseFromResult(res, "imap_status")
		return resp
	case "read":
		res := inst.CallString("mutt_read_message", req.Payload)
		return inst.ResponseFromResult(res, "display_buf")
	case "move":
		if res := inst.moveMessage(req.Payload); res != nil {
			return *res
		}
		return servers.Response{Outcome: fo.OutcomeOK, Status: len(req.Payload)}
	default:
		return servers.Response{
			Outcome: fo.OutcomeOK, Status: -1,
			Body: fmt.Sprintf("unknown op %q", req.Op),
		}
	}
}

// HandleContext implements servers.Instance: Handle with ctx bound to the
// machine for per-request cancellation, and the memory-error events the
// request causes attributed into Response.MemErrors.
func (inst *Instance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
	defer inst.BindContext(ctx)()
	return inst.Attribute(func() servers.Response { return inst.Handle(req) })
}

func (inst *Instance) moveMessage(payload string) *servers.Response {
	s := inst.M.NewCString(payload)
	res := inst.M.Call("mutt_move_message", s, fo.Int(int64(len(payload))))
	if res.Outcome != fo.OutcomeOK {
		return &servers.Response{Outcome: res.Outcome, Err: res.Err}
	}
	return &servers.Response{Outcome: fo.OutcomeOK, Status: int(res.Value.I)}
}

// LegitRequests implements servers.Server (the Figure 6 workloads).
func (s *Server) LegitRequests() []servers.Request {
	return []servers.Request{
		{Op: "read", Payload: SampleMessage()},
		{Op: "move", Payload: SampleMessage()},
		{Op: "select", Arg: "INBOX"},
	}
}

// AttackRequest implements servers.Server: a folder name hitting the 7/3
// expansion ratio ("\xc2\x80&" expands 3 input bytes to 7 output bytes:
// '&' + 3 base64 chars + '-' for the non-ASCII char, then "&-" for '&').
func (s *Server) AttackRequest() servers.Request {
	return servers.Request{Op: "select", Arg: strings.Repeat("\xc2\x80&", 80)}
}

// SampleMessage returns a representative RFC822-ish message used by the
// performance workloads.
func SampleMessage() string {
	var sb strings.Builder
	sb.WriteString("From: alice@example.org\r\n")
	sb.WriteString("To: bob@example.org\r\n")
	sb.WriteString("Subject: meeting notes,\r\n continued on a folded line\r\n")
	sb.WriteString("Date: Mon, 5 Jul 2004 10:00:00\r\n\r\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "Line %02d of the message body with some text.\r\n", i)
	}
	return sb.String()
}
