package core

import (
	"fmt"

	"focc/internal/cc/token"
	"focc/internal/mem"
)

// ModeRewind is the rewind-and-discard continuation policy: the modern
// alternative to manufacturing values described by "Secure Rewind and
// Discard of Isolated Domains" and "Unlimited Lives" — checkpoint the
// address space at the request boundary, and when a memory error is
// detected roll the whole request back (mem.Checkpoint) and fail only the
// poisoned request. The instance stays hot and uncorrupted: no value is
// ever manufactured, no invalid write ever lands, and unlike BoundsCheck
// the process is not terminated.
const ModeRewind Mode = TxTerm + 1

// RewindAbort is the control signal the rewind policy raises on an invalid
// access. The interpreter catches it at the request boundary, rewinds the
// address space to the checkpoint taken at request entry, and reports the
// request as rewound (interp.OutcomeRewound).
type RewindAbort struct {
	Pos   token.Pos
	Write bool
	Addr  uint64
}

func (e *RewindAbort) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	return fmt.Sprintf("%s: invalid %s at 0x%x: rewinding to request boundary",
		e.Pos, op, e.Addr)
}

type rewindAccessor struct {
	table
	log *EventLog
}

// NewRewind returns the rewind-and-discard accessor. The caller (the
// machine's per-request call path) owns the checkpoint lifecycle; the
// accessor's contributions are copy-on-write notification on in-bounds
// stores and raising RewindAbort on the first invalid access.
func NewRewind(as *mem.AddressSpace, log *EventLog) Accessor {
	return &rewindAccessor{table: table{as: as}, log: log}
}

func (a *rewindAccessor) Mode() Mode { return ModeRewind }

func (a *rewindAccessor) Load(p Pointer, buf []byte, pos token.Pos) (*mem.Unit, error) {
	if !inBounds(p, len(buf)) {
		victim := a.lookup(p.Addr)
		a.log.addDenied(Event{Pos: pos, Addr: p.Addr, Size: len(buf),
			Unit: unitName(p.Prov), Victim: unitName(victim)})
		return nil, &RewindAbort{Pos: pos, Addr: p.Addr}
	}
	off := p.Addr - p.Prov.Base
	copy(buf, p.Prov.Data[off:])
	if len(buf) == 8 {
		return p.Prov.GetShadow(off), nil
	}
	return nil, nil
}

func (a *rewindAccessor) Store(p Pointer, data []byte, prov *mem.Unit, pos token.Pos) error {
	if !inBounds(p, len(data)) || p.Prov.ReadOnly {
		victim := a.lookup(p.Addr)
		a.log.addDenied(Event{Pos: pos, Write: true, Addr: p.Addr,
			Size: len(data), Unit: unitName(p.Prov), Victim: unitName(victim)})
		return &RewindAbort{Pos: pos, Write: true, Addr: p.Addr}
	}
	// Copy-on-write hook: snapshot the unit into the active checkpoint's
	// undo log before the first mutation.
	a.as.NoteMutation(p.Prov)
	off := p.Addr - p.Prov.Base
	copy(p.Prov.Data[off:], data)
	if prov != nil && len(data) == 8 {
		p.Prov.SetShadow(off, prov)
	} else {
		p.Prov.ClearShadowRange(off, uint64(len(data)))
	}
	return nil
}
