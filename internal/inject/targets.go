package inject

import (
	"focc/internal/servers"
	"focc/internal/servers/apache"
	"focc/internal/servers/mc"
	"focc/internal/servers/mutt"
	"focc/internal/servers/pine"
	"focc/internal/servers/sendmail"
)

// Target is one campaign subject: a named factory producing fresh
// servers.Server values. A fresh Server per instance matters because some
// servers keep host-side state on the Server value (Midnight Commander's
// virtual filesystem, Mutt's folder set): each fault point must start from
// the same host state or outcomes would depend on evaluation order.
type Target struct {
	Name string
	New  func() servers.Server
}

// AllTargets returns the five server reproductions from the paper's
// evaluation, in report order.
func AllTargets() []Target {
	return []Target{
		{Name: "pine", New: func() servers.Server { return pine.NewServer() }},
		{Name: "apache", New: func() servers.Server { return apache.NewServer() }},
		{Name: "sendmail", New: func() servers.Server { return sendmail.NewServer() }},
		{Name: "mc", New: func() servers.Server { return mc.NewServer() }},
		{Name: "mutt", New: func() servers.Server { return mutt.NewServer() }},
	}
}
