package harness

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
)

// LoadtestConfig parameterizes the concurrent throughput-under-attack
// experiment (the §4.3.2 methodology under genuine concurrent load: the
// paper used several machines to flood the server with attack requests
// while one client fetched the home page).
type LoadtestConfig struct {
	// Clients is the number of concurrent closed-loop client goroutines;
	// 0 means 8.
	Clients int
	// PoolSize is the engine's worker-instance count; 0 means 4.
	PoolSize int
	// QueueDepth bounds the admission queue; 0 means 2×Clients.
	QueueDepth int
	// Deadline is the per-request deadline; 0 disables it.
	Deadline time.Duration
	// AttacksPerLegit is the attack mix: each client sends this many
	// attack requests before every measured legitimate request.
	AttacksPerLegit int
	// LegitPerClient is the number of legitimate requests each client
	// completes; 0 means 10.
	LegitPerClient int
	// Seed drives the per-client PRNGs that pick which legitimate request
	// each client issues next, so the workload mix is reproducible: the
	// same seed yields the same request sequence per client. 0 means 1.
	Seed int64
}

func (c *LoadtestConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Clients
	}
	if c.LegitPerClient <= 0 {
		c.LegitPerClient = 10
	}
	if c.AttacksPerLegit < 0 {
		c.AttacksPerLegit = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// LoadtestResult is one per-mode row of the concurrent throughput table.
type LoadtestResult struct {
	Mode       fo.Mode
	LegitDone  int // legitimate requests answered by a live instance
	LegitLost  int // legitimate requests crashed or timed out
	Attacks    int // attack requests admitted
	Elapsed    time.Duration
	Throughput float64 // legitimate requests per wall-clock second

	// Latency percentiles over the legitimate requests.
	P50, P95, P99 time.Duration

	// Engine counters at the end of the run.
	Restarts     uint64
	Timeouts     uint64
	Rejected     uint64
	BreakerTrips uint64
}

// Loadtest runs cfg.Clients concurrent closed-loop clients against a
// serve.Engine pool of srv instances under mode: each client interleaves
// cfg.AttacksPerLegit attack requests with one measured legitimate request,
// until it has completed cfg.LegitPerClient legitimate requests. It reports
// wall-clock legitimate throughput and latency percentiles.
func Loadtest(srv servers.Server, mode fo.Mode, cfg LoadtestConfig) (LoadtestResult, error) {
	cfg.defaults()
	opts := []serve.Option{
		serve.WithPoolSize(cfg.PoolSize),
		serve.WithQueueDepth(cfg.QueueDepth),
	}
	if cfg.Deadline > 0 {
		opts = append(opts, serve.WithDeadline(cfg.Deadline))
	}
	eng, err := serve.New(srv, mode, opts...)
	if err != nil {
		return LoadtestResult{}, err
	}
	defer eng.Close()

	legits := srv.LegitRequests()
	attack := srv.AttackRequest()
	res := LoadtestResult{Mode: mode}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		firstErr  error
	)
	record := func(done, lost, attacks int, lats []time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		res.LegitDone += done
		res.LegitLost += lost
		res.Attacks += attacks
		latencies = append(latencies, lats...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		// Each client's request mix is drawn up front from a PRNG seeded
		// by (Seed, client index), so it is identical across runs with the
		// same seed regardless of scheduling or queue-full retries.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*1_000_003))
		picks := make([]int, cfg.LegitPerClient)
		for i := range picks {
			picks[i] = rng.Intn(len(legits))
		}
		go func() {
			defer wg.Done()
			var done, lost, attacks int
			lats := make([]time.Duration, 0, cfg.LegitPerClient)
			for i := 0; i < cfg.LegitPerClient; i++ {
				legit := legits[picks[i]]
				for a := 0; a < cfg.AttacksPerLegit; a++ {
					_, err := eng.Submit(context.Background(), attack)
					switch {
					case err == nil:
						attacks++
					case errors.Is(err, serve.ErrQueueFull):
						// Backpressure did its job; the attacker's
						// request is simply dropped.
					default:
						record(done, lost, attacks, lats, err)
						return
					}
				}
				t0 := time.Now()
				resp, err := eng.Submit(context.Background(), legit)
				switch {
				case errors.Is(err, serve.ErrQueueFull):
					// Closed-loop client: back off briefly and retry the
					// same request.
					i--
					time.Sleep(50 * time.Microsecond)
					continue
				case err != nil:
					record(done, lost, attacks, lats, err)
					return
				}
				if resp.OK() {
					done++
					lats = append(lats, time.Since(t0))
				} else {
					lost++
				}
			}
			record(done, lost, attacks, lats, nil)
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.LegitDone) / res.Elapsed.Seconds()
	}
	res.P50, res.P95, res.P99 = percentiles(latencies)
	st := eng.Stats()
	res.Restarts = st.Restarts
	res.Timeouts = st.Timeouts
	res.Rejected = st.Rejected
	res.BreakerTrips = st.BreakerTrips
	return res, nil
}

// percentiles returns the p50/p95/p99 of lats (nearest-rank: the value at
// 1-based rank ⌈p·n⌉, which rounds fractional ranks up — rounding half-up
// instead would bias tails low, e.g. select rank 149 of 151 at p99).
func percentiles(lats []time.Duration) (p50, p95, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) time.Duration {
		// The epsilon absorbs float error on exact products (0.95×100
		// computes as just above 95) without reaching the next genuine
		// fractional rank.
		i := int(math.Ceil(p*float64(len(sorted))-1e-9)) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.95), rank(0.99)
}

// FormatLoadtest renders the concurrent §4.3.2 table with ratios relative
// to the FailureOblivious row.
func FormatLoadtest(rows []LoadtestResult) string {
	var foThroughput float64
	for _, r := range rows {
		if r.Mode == fo.FailureOblivious {
			foThroughput = r.Throughput
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %-12s %-9s %-9s %-9s %-9s %-9s %-6s %s\n",
		"Version", "Legit req/s", "p50", "p95", "p99", "Restarts", "Timeouts", "Trips", "FO speedup")
	for _, r := range rows {
		ratio := "1.0"
		if r.Throughput > 0 && foThroughput > 0 && r.Mode != fo.FailureOblivious {
			ratio = fmt.Sprintf("%.1f", foThroughput/r.Throughput)
		}
		fmt.Fprintf(&sb, "%-18s %-12.1f %-9s %-9s %-9s %-9d %-9d %-6d %s\n",
			r.Mode, r.Throughput,
			fmtLatency(r.P50), fmtLatency(r.P95), fmtLatency(r.P99),
			r.Restarts, r.Timeouts, r.BreakerTrips, ratio)
	}
	return sb.String()
}

func fmtLatency(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
