package interp

// Simulated-cycle cost model.
//
// The interpreter dilates every C-level operation by roughly two orders of
// magnitude relative to native code, which would flatten the relative cost
// of the inserted checking code to near zero in wall-clock terms. The
// paper's request-processing figures are therefore reproduced in simulated
// cycles: every C-level operation is charged a cost, and the one extra cost
// checked modes pay is the per-access object-table lookup — the same place
// the CRED compiler's overhead comes from. Wall-clock benchmarks of the
// library itself live in bench_test.go.
//
// The constants below are calibrated against the overheads reported for
// CRED [50] and the paper's own figures: bounds checking "usually causes
// the program to run less than a factor of two slower ... in some cases
// eight to twelve times slower". A per-check cost of ~15 cycles against
// 1-cycle accesses and ~2-cycle statements lands character-processing
// loops (Sendmail prescan, Mutt UTF-7) near 4x and bulk-copy workloads
// (Apache file serving) near 1x, matching the paper's spread.
const (
	// StepCycles is charged per executed statement, loop iteration, and
	// function call.
	StepCycles = 2
	// AccessCycles is charged per accessed 8-byte word in every mode.
	AccessCycles = 1
	// CheckCycles is charged per policy check (one per load/store in the
	// checked modes; bulk libc operations over in-bounds ranges perform
	// one check for the whole range, which is why they amortize).
	CheckCycles = 15
	// ClockHz converts simulated cycles to simulated seconds; the paper's
	// testbed was a 2.8 GHz Pentium 4.
	ClockHz = 2.8e9
)

// SimCycles returns the machine's cumulative simulated cycle count.
func (m *Machine) SimCycles() uint64 { return m.simCycles }

// SimSeconds converts cycles to simulated seconds under the model clock.
func SimSeconds(cycles uint64) float64 { return float64(cycles) / ClockHz }

// ChargeCycles adds host-side (kernel/device) work to the simulated clock;
// drivers use it to account for I/O performed on the program's behalf.
func (m *Machine) ChargeCycles(n uint64) { m.simCycles += n }

// chargeAccess accounts for one memory access of n bytes, plus the check
// cost in checked modes.
func (m *Machine) chargeAccess(n int) {
	words := uint64(n+7) / 8
	if words == 0 {
		words = 1
	}
	m.simCycles += words * AccessCycles
	if m.checked {
		m.simCycles += CheckCycles
	}
}
