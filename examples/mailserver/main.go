// Mailserver: a Sendmail-style mail gateway whose address parser contains
// the paper's §4.4 prescan vulnerability (an unchecked store of a quoting
// backslash, reachable through char→int sign extension). The gateway
// processes a mixed stream of legitimate deliveries and attack messages
// under the Bounds Check and Failure Oblivious versions, showing the
// paper's availability argument: terminating at the first memory error
// denies service, executing through it keeps the mail flowing.
//
//	go run ./examples/mailserver
package main

import (
	"fmt"
	"log"
	"strings"

	"focc/fo"
)

const gatewaySrc = `
#include <string.h>
#include <stdio.h>

#define PSBUFSIZE 96
#define MAXNAME   64

char last_rcpt[MAXNAME];
int  delivered = 0;

/* Address prescan with the sendmail 8.11.6 bug mechanism: the store of a
   quoting backslash is not covered by the space check. */
static int prescan(const char *addr, char *buf, int bufsize)
{
	const char *p = addr;
	char *q = buf;
	int c = -1;
	int done = 0;
	while (!done) {
		if (c != -1 && c != '\\') {
			if (q >= &buf[bufsize - 2])
				return -1;
			*q++ = (char) c;
		}
		c = *p++;
		if (c == '\0') { done = 1; c = -1; }
		if (c == '\\') {
			*q++ = '\\';            /* BUG: unchecked */
			c = *p++;
			if (c == '\0') { done = 1; c = -1; }
		}
	}
	*q = '\0';
	return (int)(q - buf);
}

/* Deliver one message. Returns an SMTP-ish status code. */
int deliver(const char *rcpt, const char *body)
{
	char pvpbuf[PSBUFSIZE];
	int len = prescan(rcpt, pvpbuf, (int)(sizeof(pvpbuf)));
	if (len < 0 || len >= MAXNAME)
		return 553;                 /* anticipated: address too long */
	strcpy(last_rcpt, pvpbuf);
	delivered++;
	return 250;
}
`

func main() {
	prog, err := fo.Compile("gateway.c", gatewaySrc)
	if err != nil {
		log.Fatal(err)
	}

	type mail struct {
		rcpt, body string
	}
	var stream []mail
	for i := 0; i < 12; i++ {
		if i%4 == 3 {
			// The paper's attack address: alternating '\' and 0xFF.
			stream = append(stream, mail{strings.Repeat("\\\xff", 300), "exploit"})
		} else {
			stream = append(stream, mail{fmt.Sprintf("user%d@example.org", i), "hello"})
		}
	}

	for _, mode := range []fo.Mode{fo.BoundsCheck, fo.FailureOblivious} {
		fmt.Printf("=== %s gateway ===\n", mode)
		logger := fo.NewEventLog(0)
		m, err := prog.NewMachine(fo.MachineConfig{Mode: mode, Log: logger})
		if err != nil {
			log.Fatal(err)
		}
		accepted, rejected, lost := 0, 0, 0
		for i, msg := range stream {
			if m.Dead() {
				lost++
				continue
			}
			res := m.Call("deliver", m.NewCString(msg.rcpt), m.NewCString(msg.body))
			switch {
			case res.Outcome != fo.OutcomeOK:
				fmt.Printf("  mail %2d: PROCESS DIED (%s)\n", i, res.Outcome)
				lost++
			case res.Value.I == 250:
				accepted++
			default:
				fmt.Printf("  mail %2d: rejected with %d (anticipated error path)\n",
					i, res.Value.I)
				rejected++
			}
		}
		fmt.Printf("  accepted %d, rejected %d, lost %d — %s\n\n",
			accepted, rejected, lost, logger.Summary())
	}
}
