package types

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		size uint64
	}{
		{VoidType, 0}, {CharType, 1}, {SCharType, 1}, {UCharType, 1},
		{ShortType, 2}, {UShortType, 2}, {IntType, 4}, {UIntType, 4},
		{LongType, 8}, {ULongType, 8},
		{PointerTo(CharType), 8},
		{ArrayOf(IntType, 10), 40},
		{ArrayOf(ArrayOf(CharType, 3), 4), 12},
		{ArrayOf(IntType, -1), 0}, // incomplete
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.size {
			t.Errorf("Size(%s) = %d, want %d", c.t, got, c.size)
		}
	}
}

func TestStructLayout(t *testing.T) {
	// struct { char c; int i; char d; long l; }
	si := &StructInfo{Name: "s", Fields: []Field{
		{Name: "c", Type: CharType},
		{Name: "i", Type: IntType},
		{Name: "d", Type: CharType},
		{Name: "l", Type: LongType},
	}}
	si.Layout()
	st := &Type{Kind: Struct, Rec: si}
	wantOffsets := []uint64{0, 4, 8, 16}
	for i, f := range si.Fields {
		if f.Offset != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOffsets[i])
		}
	}
	if st.Size() != 24 {
		t.Errorf("struct size = %d, want 24", st.Size())
	}
	if st.Align() != 8 {
		t.Errorf("struct align = %d, want 8", st.Align())
	}
}

func TestEmptyStructLayout(t *testing.T) {
	si := &StructInfo{Name: "empty"}
	si.Layout()
	st := &Type{Kind: Struct, Rec: si}
	if st.Size() != 0 || st.Align() != 1 {
		t.Errorf("empty struct size=%d align=%d", st.Size(), st.Align())
	}
}

func TestFieldByName(t *testing.T) {
	si := &StructInfo{Fields: []Field{{Name: "x", Type: IntType}}}
	si.Layout()
	if _, ok := si.FieldByName("x"); !ok {
		t.Error("x not found")
	}
	if _, ok := si.FieldByName("y"); ok {
		t.Error("y should not exist")
	}
}

func TestSignedness(t *testing.T) {
	signed := []*Type{CharType, SCharType, ShortType, IntType, LongType}
	unsigned := []*Type{UCharType, UShortType, UIntType, ULongType}
	for _, ty := range signed {
		if !ty.IsSigned() {
			t.Errorf("%s should be signed", ty)
		}
	}
	for _, ty := range unsigned {
		if ty.IsSigned() {
			t.Errorf("%s should be unsigned", ty)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !PointerTo(VoidType).IsVoidPtr() {
		t.Error("void* not detected")
	}
	if PointerTo(IntType).IsVoidPtr() {
		t.Error("int* is not void*")
	}
	if !ArrayOf(CharType, 4).IsArray() || !IntType.IsInteger() ||
		!PointerTo(IntType).IsScalar() || !VoidType.IsVoid() {
		t.Error("basic predicates broken")
	}
	if ArrayOf(CharType, 4).IsScalar() {
		t.Error("array is not scalar")
	}
}

func TestDecay(t *testing.T) {
	at := ArrayOf(IntType, 5)
	dt := at.Decay()
	if !dt.IsPointer() || dt.Elem.Kind != Int {
		t.Errorf("decay(%s) = %s", at, dt)
	}
	if IntType.Decay() != IntType {
		t.Error("non-array decay should be identity")
	}
}

func TestSame(t *testing.T) {
	if !Same(PointerTo(IntType), PointerTo(IntType)) {
		t.Error("identical pointer types differ")
	}
	if Same(PointerTo(IntType), PointerTo(UIntType)) {
		t.Error("int* == unsigned* ?")
	}
	if !Same(ArrayOf(CharType, 3), ArrayOf(CharType, 3)) {
		t.Error("identical arrays differ")
	}
	if Same(ArrayOf(CharType, 3), ArrayOf(CharType, 4)) {
		t.Error("arrays of different length equal")
	}
	s1 := &Type{Kind: Struct, Rec: &StructInfo{Name: "a"}}
	s2 := &Type{Kind: Struct, Rec: &StructInfo{Name: "a"}}
	if Same(s1, s2) {
		t.Error("distinct struct infos should differ")
	}
	if !Same(s1, s1) {
		t.Error("struct not same as itself")
	}
}

func TestPromote(t *testing.T) {
	for _, ty := range []*Type{CharType, SCharType, UCharType, ShortType, UShortType} {
		if Promote(ty) != IntType {
			t.Errorf("Promote(%s) = %s, want int", ty, Promote(ty))
		}
	}
	for _, ty := range []*Type{IntType, UIntType, LongType, ULongType} {
		if Promote(ty) != ty {
			t.Errorf("Promote(%s) changed", ty)
		}
	}
}

func TestUsualArith(t *testing.T) {
	cases := []struct{ a, b, want *Type }{
		{IntType, IntType, IntType},
		{CharType, CharType, IntType},
		{IntType, UIntType, UIntType},
		{UIntType, LongType, LongType}, // LP64: long holds all uint values
		{LongType, ULongType, ULongType},
		{IntType, LongType, LongType},
		{UCharType, ShortType, IntType},
	}
	for _, c := range cases {
		if got := UsualArith(c.a, c.b); !Same(got, c.want) {
			t.Errorf("UsualArith(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
		// Symmetry.
		if got := UsualArith(c.b, c.a); !Same(got, c.want) {
			t.Errorf("UsualArith(%s, %s) = %s, want %s", c.b, c.a, got, c.want)
		}
	}
}

func TestTruncate(t *testing.T) {
	cases := []struct {
		t    *Type
		in   int64
		want int64
	}{
		{CharType, 0xFF, -1},
		{CharType, 0x41, 0x41},
		{UCharType, 0xFF, 255},
		{UCharType, 0x1FF, 255},
		{ShortType, 0xFFFF, -1},
		{UShortType, 0xFFFF, 65535},
		{IntType, 0xFFFFFFFF, -1},
		{UIntType, 0xFFFFFFFF, 4294967295},
		{IntType, 1 << 33, 0},
		{LongType, -5, -5},
		{ULongType, -5, -5}, // 64-bit: representation unchanged
	}
	for _, c := range cases {
		if got := Truncate(c.t, c.in); got != c.want {
			t.Errorf("Truncate(%s, %#x) = %d, want %d", c.t, c.in, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	cases := map[string]*Type{
		"int":           IntType,
		"unsigned long": ULongType,
		"char*":         PointerTo(CharType),
		"int[4]":        ArrayOf(IntType, 4),
		"char*[2]":      ArrayOf(PointerTo(CharType), 2),
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	fn := &Type{Kind: Func, Fn: &FuncInfo{Ret: IntType,
		Params: []Param{{Type: PointerTo(CharType)}}, Variadic: true}}
	if got := fn.String(); got != "int (char*, ...)" {
		t.Errorf("func String() = %q", got)
	}
}

// Property: Truncate is idempotent for every integer type.
func TestTruncateIdempotent(t *testing.T) {
	allInts := []*Type{CharType, SCharType, UCharType, ShortType, UShortType,
		IntType, UIntType, LongType, ULongType}
	f := func(v int64, pick uint8) bool {
		ty := allInts[int(pick)%len(allInts)]
		once := Truncate(ty, v)
		return Truncate(ty, once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: truncating to a signed type always yields a value within the
// type's range.
func TestTruncateRange(t *testing.T) {
	f := func(v int64) bool {
		c := Truncate(CharType, v)
		s := Truncate(ShortType, v)
		i := Truncate(IntType, v)
		return c >= -128 && c <= 127 &&
			s >= -32768 && s <= 32767 &&
			i >= -2147483648 && i <= 2147483647
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: UsualArith never returns a type narrower than int, and is
// commutative.
func TestUsualArithProperties(t *testing.T) {
	allInts := []*Type{CharType, SCharType, UCharType, ShortType, UShortType,
		IntType, UIntType, LongType, ULongType}
	f := func(a, b uint8) bool {
		x := allInts[int(a)%len(allInts)]
		y := allInts[int(b)%len(allInts)]
		r := UsualArith(x, y)
		return r.Size() >= 4 && Same(r, UsualArith(y, x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: struct layout respects alignment and monotone offsets.
func TestStructLayoutProperties(t *testing.T) {
	allTys := []*Type{CharType, ShortType, IntType, LongType, PointerTo(CharType)}
	f := func(picks []uint8) bool {
		if len(picks) > 12 {
			picks = picks[:12]
		}
		si := &StructInfo{}
		for i, p := range picks {
			si.Fields = append(si.Fields, Field{
				Name: string(rune('a' + i)),
				Type: allTys[int(p)%len(allTys)],
			})
		}
		si.Layout()
		st := &Type{Kind: Struct, Rec: si}
		var prevEnd uint64
		for _, fl := range si.Fields {
			if fl.Offset%fl.Type.Align() != 0 {
				return false // misaligned
			}
			if fl.Offset < prevEnd {
				return false // overlap
			}
			prevEnd = fl.Offset + fl.Type.Size()
		}
		return st.Size() >= prevEnd && st.Size()%st.Align() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
