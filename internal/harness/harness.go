// Package harness drives the paper's evaluation: request-processing time
// measurements (means ± standard deviations over repeated requests, as in
// Figures 2–6), the security/resilience matrix (§4.*.2), the Apache
// throughput-under-attack experiment (§4.3.2), and the stability soak runs
// (§4.*.4).
package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"focc/fo"
	"focc/internal/interp"
	"focc/internal/servers"
)

// Sample summarizes repeated time measurements.
type Sample struct {
	MeanMs  float64
	StdevPc float64 // standard deviation as a percentage of the mean
	N       int
}

func (s Sample) String() string {
	return fmt.Sprintf("%.4g ± %.1f%%", s.MeanMs, s.StdevPc)
}

// summarize computes mean and relative stdev of durations in milliseconds.
func summarize(durs []time.Duration) Sample {
	n := len(durs)
	if n == 0 {
		return Sample{}
	}
	var sum float64
	for _, d := range durs {
		sum += d.Seconds() * 1000
	}
	mean := sum / float64(n)
	var ss float64
	for _, d := range durs {
		diff := d.Seconds()*1000 - mean
		ss += diff * diff
	}
	stdev := 0.0
	if n > 1 {
		stdev = math.Sqrt(ss / float64(n-1))
	}
	pc := 0.0
	if mean > 0 {
		pc = stdev / mean * 100
	}
	return Sample{MeanMs: mean, StdevPc: pc, N: n}
}

// DefaultReps is the per-request repetition count ("we performed each
// request at least twenty times").
const DefaultReps = 20

// Clock selects the time base for request measurements.
type Clock int

// Clocks.
const (
	// SimClock measures simulated milliseconds under the interp cost
	// model — the interpreter's wall-clock dilation would otherwise
	// flatten the checking overhead the paper measures; see
	// internal/interp/cycles.go. This is the default for the figures.
	SimClock Clock = iota
	// WallClock measures host wall-clock time of the interpreter itself.
	WallClock
)

// TimeRequest measures the request-processing time of req on inst over
// reps repetitions (with one untimed warm-up), under the given clock.
func TimeRequest(inst servers.Instance, req servers.Request, reps int, clock Clock) (Sample, error) {
	if reps <= 0 {
		reps = DefaultReps
	}
	if resp := inst.Handle(req); resp.Crashed() {
		return Sample{}, fmt.Errorf("warm-up request crashed: %v", resp.Err)
	}
	durs := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		beforeCycles := inst.Cycles()
		beforeWall := time.Now()
		resp := inst.Handle(req)
		if clock == WallClock {
			durs = append(durs, time.Since(beforeWall))
		} else {
			cycles := inst.Cycles() - beforeCycles
			durs = append(durs, time.Duration(interp.SimSeconds(cycles)*float64(time.Second)))
		}
		if resp.Crashed() {
			return Sample{}, fmt.Errorf("request %d crashed: %v", i, resp.Err)
		}
	}
	return summarize(durs), nil
}

// PerfRow is one line of a Figure 2–6 style table.
type PerfRow struct {
	Request  string
	Standard Sample
	Failure  Sample
	Slowdown float64
}

// PerfTable measures every named request under Standard and
// FailureOblivious instances of srv, mirroring the paper's figures
// (simulated clock). Use PerfTableClock for wall-clock measurements.
func PerfTable(srv servers.Server, names []string, reqs []servers.Request, reps int) ([]PerfRow, error) {
	return PerfTableClock(srv, names, reqs, reps, SimClock)
}

// PerfTableClock is PerfTable with an explicit time base.
func PerfTableClock(srv servers.Server, names []string, reqs []servers.Request, reps int, clock Clock) ([]PerfRow, error) {
	if len(names) != len(reqs) {
		return nil, fmt.Errorf("names/requests length mismatch")
	}
	rows := make([]PerfRow, 0, len(reqs))
	for i, req := range reqs {
		std, err := srv.New(fo.Standard)
		if err != nil {
			return nil, err
		}
		obl, err := srv.New(fo.FailureOblivious)
		if err != nil {
			return nil, err
		}
		sStd, err := TimeRequest(std, req, reps, clock)
		if err != nil {
			return nil, fmt.Errorf("%s/%s standard: %w", srv.Name(), names[i], err)
		}
		sObl, err := TimeRequest(obl, req, reps, clock)
		if err != nil {
			return nil, fmt.Errorf("%s/%s oblivious: %w", srv.Name(), names[i], err)
		}
		slow := 0.0
		if sStd.MeanMs > 0 {
			slow = sObl.MeanMs / sStd.MeanMs
		}
		rows = append(rows, PerfRow{
			Request: names[i], Standard: sStd, Failure: sObl, Slowdown: slow,
		})
	}
	return rows, nil
}

// FormatPerfTable renders rows in the paper's figure layout.
func FormatPerfTable(title string, rows []PerfRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-12s %-18s %-18s %s\n", "Request", "Standard", "Failure Oblivious", "Slowdown")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %-18s %-18s %.2f\n",
			r.Request, r.Standard, r.Failure, r.Slowdown)
	}
	return sb.String()
}

// ResilienceRow is one cell group of the security/resilience matrix.
type ResilienceRow struct {
	Server        string
	Mode          fo.Mode
	AttackOutcome fo.Outcome
	// PostAttackOK reports whether a legitimate request succeeded on the
	// same instance after the attack.
	PostAttackOK bool
	// ErrorsLogged is the number of memory errors the instance logged.
	ErrorsLogged uint64
}

// Modes are the paper's three compared versions.
var Modes = []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious}

// VariantModes are the §5.1 variants.
var VariantModes = []fo.Mode{fo.Boundless, fo.Redirect}

// ResilienceMatrix submits each server's documented attack under each mode
// and then probes the same instance with a legitimate request.
func ResilienceMatrix(srvs []servers.Server, modes []fo.Mode) ([]ResilienceRow, error) {
	var rows []ResilienceRow
	for _, srv := range srvs {
		for _, mode := range modes {
			inst, err := srv.New(mode)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", srv.Name(), mode, err)
			}
			attackResp := inst.Handle(srv.AttackRequest())
			post := false
			if inst.Alive() {
				legit := srv.LegitRequests()
				if len(legit) > 0 {
					resp := inst.Handle(legit[0])
					post = resp.OK()
				}
			}
			rows = append(rows, ResilienceRow{
				Server:        srv.Name(),
				Mode:          mode,
				AttackOutcome: attackResp.Outcome,
				PostAttackOK:  post,
				ErrorsLogged:  inst.Log().Total(),
			})
		}
	}
	return rows, nil
}

// FormatResilience renders the matrix.
func FormatResilience(rows []ResilienceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-18s %-26s %-12s %s\n",
		"Server", "Version", "Attack outcome", "Post-attack", "Errors logged")
	for _, r := range rows {
		post := "server dead"
		if r.PostAttackOK {
			post = "serving"
		}
		fmt.Fprintf(&sb, "%-10s %-18s %-26s %-12s %d\n",
			r.Server, r.Mode, r.AttackOutcome, post, r.ErrorsLogged)
	}
	return sb.String()
}

// SoakResult summarizes a stability run.
type SoakResult struct {
	Requests    int
	Attacks     int
	Crashes     int
	Restarts    int
	ErrorEvents uint64
}

// Soak runs n requests against srv under mode, interleaving the attack
// request every attackEvery requests (paper §4.*.4 stability methodology).
// Crashed instances are replaced, counting a restart.
func Soak(srv servers.Server, mode fo.Mode, n, attackEvery int) (SoakResult, error) {
	inst, err := srv.New(mode)
	if err != nil {
		return SoakResult{}, err
	}
	legit := srv.LegitRequests()
	var res SoakResult
	var events uint64
	for i := 0; i < n; i++ {
		var req servers.Request
		if attackEvery > 0 && i%attackEvery == attackEvery-1 {
			req = srv.AttackRequest()
			res.Attacks++
		} else {
			req = legit[i%len(legit)]
		}
		resp := inst.Handle(req)
		res.Requests++
		if resp.Crashed() {
			res.Crashes++
			events += inst.Log().Total()
			inst, err = srv.New(mode)
			if err != nil {
				return res, err
			}
			res.Restarts++
		}
	}
	res.ErrorEvents = events + inst.Log().Total()
	return res, nil
}
