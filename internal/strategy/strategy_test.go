package strategy_test

import (
	"os"
	"strings"
	"testing"

	"focc/internal/core"
	"focc/internal/corpus"
	"focc/internal/mem"
	"focc/internal/strategy"
)

// TestGoldenSiteTablePin pins the classified load-site table of the
// sim-cycle pin workload. The ids, classes, and positions are canonical —
// a pure function of the source text — so any drift here means the
// numbering or the classifier changed and every searched assignment on
// record is invalidated.
func TestGoldenSiteTablePin(t *testing.T) {
	prog, err := corpus.CompileCPP(corpus.FileName, corpus.PinSrc)
	if err != nil {
		t.Fatal(err)
	}
	got := strategy.Classify(prog).String()
	want := "" +
		"site   0 string-scan  bulk             w=1 t.c:8:6\n" +
		"site   1 reload       bulk             w=1 t.c:9:5\n" +
		"site   2 string-scan  oob              w=1 t.c:30:13\n" +
		"site   3 reload       ptrs             w=8 t.c:39:6\n" +
		"site   4 reload       ptrs             w=8 t.c:41:11\n"
	if got != want {
		t.Errorf("site table drifted:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestCorpusClassCoverage pins the per-class site counts of the corpus
// programs that anchor each class: Tokenizer's byte scans, LinkedList's
// pointer chases, Quicksort's read-after-store array traffic.
func TestCorpusClassCoverage(t *testing.T) {
	want := map[string]map[string]int{
		"Tokenizer":  {"string-scan": 7, "other": 2},
		"LinkedList": {"pointer-read": 6, "reload": 3},
		"Quicksort":  {"reload": 10},
	}
	for _, p := range corpus.Programs() {
		wc, ok := want[p.Name]
		if !ok {
			continue
		}
		prog, err := corpus.CompileCPP(corpus.FileName, p.Src)
		if err != nil {
			t.Fatal(err)
		}
		got := strategy.Classify(prog).Counts()
		for class, n := range wc {
			if got[class] != n {
				t.Errorf("%s: %d %s sites, want %d (full: %v)", p.Name, got[class], class, n, got)
			}
		}
	}
}

// TestStrategyDocMatchesCatalog pins the Strategy doc comment in engine.go
// to the rendered catalog, the same single-source discipline as the
// fobench experiments table: every Describe() line must appear verbatim as
// a "//\t" doc line.
func TestStrategyDocMatchesCatalog(t *testing.T) {
	src, err := os.ReadFile("engine.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(strategy.Describe(), "\n"), "\n") {
		doc := "//\t" + strings.TrimRight(line, " ")
		if !strings.Contains(string(src), doc) {
			t.Errorf("Strategy doc comment is missing catalog line %q", doc)
		}
	}
}

func TestParse(t *testing.T) {
	for _, s := range strategy.All() {
		got, err := strategy.Parse(string(s))
		if err != nil || got != s {
			t.Errorf("Parse(%q) = %q, %v", s, got, err)
		}
	}
	if _, err := strategy.Parse("bogus"); err == nil {
		t.Error("Parse(bogus) succeeded")
	}
}

// testTable builds a synthetic four-site table, one site per class.
func testTable() *strategy.Table {
	return &strategy.Table{Sites: []strategy.Site{
		{ID: 0, Class: strategy.StringScan, Width: 1},
		{ID: 1, Class: strategy.PointerRead, Width: 8},
		{ID: 2, Class: strategy.Reload, Width: 4},
		{ID: 3, Class: strategy.Other, Width: 4},
	}}
}

func TestDefaultAssignment(t *testing.T) {
	a := strategy.DefaultAssignment(testTable(), "")
	want := strategy.Assignment{strategy.Zero, strategy.UnitPtr, strategy.LastStore, strategy.SmallInt}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("site %d: %q, want %q", i, a[i], want[i])
		}
	}
}

// manufacture primes site and asks for a value, mimicking the engines'
// prime-then-load sequence.
func manufacture(e *strategy.Engine, site int32, p core.Pointer, size int) (int64, *mem.Unit, string) {
	e.SetSite(site, nil, size)
	return e.Manufacture(p, size)
}

func TestEngineStrategies(t *testing.T) {
	e := strategy.NewEngine(testTable(), strategy.Assignment{
		strategy.Zero, strategy.UnitPtr, strategy.LastStore, strategy.Max,
	}, nil)

	if v, _, s := manufacture(e, 0, core.Pointer{}, 1); v != 0 || s != "zero" {
		t.Errorf("zero site: %d [%s]", v, s)
	}
	if v, _, s := manufacture(e, 3, core.Pointer{}, 2); v != 0xffff || s != "max" {
		t.Errorf("max site: %#x [%s]", v, s)
	}

	// UnitPtr with live provenance manufactures the unit base; without it,
	// degrades to smallint with honest attribution.
	u := &mem.Unit{Base: 0x1000, Data: make([]byte, 16)}
	if v, prov, s := manufacture(e, 1, core.Pointer{Addr: 0x1010, Prov: u}, 8); v != 0x1000 || prov != u || s != "unitptr" {
		t.Errorf("unitptr site: %#x prov=%v [%s]", v, prov, s)
	}
	if _, _, s := manufacture(e, 1, core.Pointer{Addr: 0x1010}, 8); s != "smallint" {
		t.Errorf("unitptr without provenance attributed to %q, want smallint", s)
	}

	// LastStore replays a discarded store at the same address, masked to
	// the access width; an unseen address degrades to smallint.
	e.NoteDiscardedStore(core.Pointer{Addr: 0x2000}, []byte{0xaa, 0xbb, 0xcc, 0xdd})
	if v, _, s := manufacture(e, 2, core.Pointer{Addr: 0x2000}, 4); v != 0x0ddccbbaa&0xffffffff || s != "laststore" {
		t.Errorf("laststore site: %#x [%s]", v, s)
	}
	if _, _, s := manufacture(e, 2, core.Pointer{Addr: 0x3000}, 4); s != "smallint" {
		t.Errorf("laststore miss attributed to %q, want smallint", s)
	}

	// Site-less manufactures (bulk libc spans) go to the fallback.
	if _, _, s := manufacture(e, -1, core.Pointer{}, 1); s != "smallint" {
		t.Errorf("site-less manufacture attributed to %q, want smallint", s)
	}

	want := []int32{0, 1, 2, 3}
	got := e.TouchedSites()
	if len(got) != len(want) {
		t.Fatalf("TouchedSites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TouchedSites = %v, want %v", got, want)
		}
	}
}
