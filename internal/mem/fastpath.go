// Unit-lookup caching and cross-instance memory pooling: the wall-clock
// fast path under the simulated-cycle cost model. Nothing in this file
// changes what FindUnit returns or what the cost model charges — it only
// makes the Go-level implementation cheaper.
//
// Cache coherence contract. A LookupCache memoizes one FindUnit result and
// must never serve an answer that differs from an uncached FindUnit call.
// The address space changes the unit-at-address mapping in exactly three
// ways:
//
//   - Units are ADDED (AllocGlobal, InternLiteral, Malloc, PushFrame) at
//     addresses where FindUnit previously returned nil. Caches never store
//     nil results, so additions need no invalidation.
//   - Heap units are FREED (Free) — but a freed block stays in the heap
//     slice with Dead=true, and FindUnit returns dead units. A cache hit on
//     a freed unit returns the exact same *Unit an uncached lookup would,
//     so Free needs no invalidation either. (Policy-level liveness checks
//     read u.Dead from the unit itself, never from the cache.)
//   - Stack units are REMOVED (PopFrame, UnwindTo), and their address
//     ranges are reused by later frames. This is the one real hazard: a
//     cached unit of a popped frame must not answer for a re-pushed frame
//     at the same address. Both removal paths bump stackGen, which stamps
//     every cached stack unit; a stale stamp forces the slow path.
//
// Non-stack units are immortal within an address space (never removed, at
// stable addresses), so their cache entries carry an immortal stamp and
// survive arbitrarily many frame pops — a heap-pointer site is not
// invalidated by call/return traffic.
package mem

import "sync"

// immortalStamp marks a cached unit that can never be unmapped (literal,
// global, heap, heap header). 1<<63 generations of frame pops would be
// needed to collide with a real stackGen value.
const immortalStamp = ^uint64(0)

// LookupCache is a one-entry unit-lookup cache: the monomorphic inline
// cache consulted before FindUnit. The zero value is an empty cache. A
// cache belongs to one AddressSpace; it is not safe for concurrent use
// (machines are single-goroutine, see the Instance contract).
type LookupCache struct {
	u     *Unit
	stamp uint64
}

// Probe returns the cached unit if it still answers for addr, or nil on a
// cache miss. A non-nil result is exactly what FindUnit(addr) would return.
func (as *AddressSpace) Probe(c *LookupCache, addr uint64) *Unit {
	u := c.u
	if u != nil && addr >= u.Base && addr < u.Base+u.Size &&
		(c.stamp == immortalStamp || c.stamp == as.stackGen) {
		return u
	}
	return nil
}

// fill records a FindUnit result in the cache. Nil results are never
// cached (see the coherence contract above: that is what makes unit
// addition invalidation-free).
func (as *AddressSpace) fill(c *LookupCache, u *Unit) {
	if u == nil {
		return
	}
	c.u = u
	if u.Kind == KindStack || u.Kind == KindStackGuard {
		c.stamp = as.stackGen
	} else {
		c.stamp = immortalStamp
	}
}

// FindUnitCached is FindUnit behind a one-entry cache: identical results,
// no table search on a hit.
func (as *AddressSpace) FindUnitCached(addr uint64, c *LookupCache) *Unit {
	if u := as.Probe(c, addr); u != nil {
		return u
	}
	u := as.FindUnit(addr)
	as.fill(c, u)
	return u
}

// FillCache records u (a prior FindUnit(addr) result) in c, for callers
// that consult several cache layers before one shared slow lookup.
func (as *AddressSpace) FillCache(c *LookupCache, u *Unit) { as.fill(c, u) }

// --- Cross-instance memory pooling ---
//
// The serving engine's availability mechanism replaces crashed instances,
// and under attack (§4.3.2) the Standard/BoundsCheck pools respawn on
// nearly every request. Each respawn used to allocate a fresh stack arena
// (1 MiB) and fresh backing for every global and heap block; pooling those
// buffers across respawns removes the dominant allocation cost of a cold
// start. Buffers are zeroed on reuse, so a pooled instance is
// indistinguishable from a cold one.

// slabSize is the granularity of pooled data-backing slabs. Globals,
// literals, and heap blocks carve their Data slices out of slabs.
const slabSize = 64 << 10

var arenaPool = sync.Pool{New: func() any { return new([]byte) }}

var slabPool = sync.Pool{New: func() any { return new([]byte) }}

// getArena returns a zeroed stack arena of at least size bytes.
func getArena(size uint64) []byte {
	p := arenaPool.Get().(*[]byte)
	if uint64(cap(*p)) < size {
		return make([]byte, size)
	}
	b := (*p)[:size]
	clear(b)
	return b
}

// getSlab returns a zeroed slab of exactly slabSize bytes.
func getSlab() []byte {
	p := slabPool.Get().(*[]byte)
	if cap(*p) < slabSize {
		return make([]byte, slabSize)
	}
	b := (*p)[:slabSize]
	clear(b)
	return b
}

// alloc carves a zeroed n-byte backing slice out of the current slab,
// starting a new slab when the current one is full. Oversized requests get
// a dedicated (unpooled) allocation.
func (as *AddressSpace) alloc(n uint64) []byte {
	if n > slabSize {
		return make([]byte, n)
	}
	if uint64(len(as.slab))-as.slabOff < n {
		as.slab = getSlab()
		as.slabs = append(as.slabs, as.slab)
		as.slabOff = 0
	}
	off := as.slabOff
	as.slabOff += n
	return as.slab[off : off+n : off+n]
}

// Release returns the address space's pooled buffers (stack arena, data
// slabs) for reuse by a future instance. The address space must not be
// used afterwards: every unit's Data may alias a recycled buffer. The
// serving engine calls this when it retires a crashed instance; Release on
// an already-released space is a no-op.
func (as *AddressSpace) Release() {
	if as.released {
		return
	}
	as.released = true
	if cap(as.stackArena) >= int(DefaultStackSize) {
		a := as.stackArena
		arenaPool.Put(&a)
	}
	as.stackArena = nil
	for i := range as.slabs {
		s := as.slabs[i]
		slabPool.Put(&s)
	}
	as.slabs = nil
	as.slab = nil
	// Drop the unit tables so freed units do not pin recycled slabs'
	// backing arrays through their Data slices.
	as.literals, as.globals, as.heap, as.stack = nil, nil, nil, nil
	as.internTable = nil
}
