package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-scale latency buckets: bucket i holds
// requests with latency in (1µs<<(i-1), 1µs<<i], so the range runs from
// 1µs to ~9 minutes with the last bucket absorbing everything slower.
const histBuckets = 30

// hist is a race-safe log-bucketed latency histogram. Record is lock-free
// (two atomic adds); snapshot reads the buckets without a global lock, so a
// snapshot taken during concurrent Records may be skewed by the handful of
// in-flight updates — fine for monitoring, where the alternative is
// stalling the serving path behind the scraper.
type hist struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64 // total nanoseconds recorded
}

// bucketFor returns the index of the bucket whose upper bound is the
// smallest 1µs<<i ≥ d.
func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	us := uint64((d + time.Microsecond - 1) / time.Microsecond) // ceil µs
	i := bits.Len64(us - 1)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketBound returns bucket i's inclusive upper bound.
func bucketBound(i int) time.Duration {
	return time.Microsecond << uint(i)
}

func (h *hist) record(d time.Duration) {
	h.counts[bucketFor(d)].Add(1)
	h.sum.Add(int64(d))
}

// LatencyBucket is one histogram bucket: Count requests finished with
// latency ≤ UpperBound and > the previous bucket's bound.
type LatencyBucket struct {
	UpperBound time.Duration
	Count      uint64
}

// LatencySnapshot is a point-in-time copy of the engine's request-latency
// histogram, with nearest-rank percentiles estimated from the buckets
// (each reported as its bucket's upper bound, i.e. biased at most one
// power of two high — live approximations, not the exact post-hoc
// percentiles harness.Loadtest computes from individual samples).
type LatencySnapshot struct {
	Count   uint64
	Sum     time.Duration
	Mean    time.Duration
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Buckets []LatencyBucket // non-cumulative, trailing empty buckets trimmed
}

// mergeLatencySnapshots sums bucket counts across snapshots (all snapshots
// share the fixed log-bucket layout) and recomputes the derived fields; the
// Router uses it to report one fleet-wide histogram.
func mergeLatencySnapshots(snaps ...LatencySnapshot) LatencySnapshot {
	var counts [histBuckets]uint64
	var total uint64
	var sum time.Duration
	last := -1
	for _, s := range snaps {
		total += s.Count
		sum += s.Sum
		for i, b := range s.Buckets {
			counts[i] += b.Count
			if b.Count > 0 && i > last {
				last = i
			}
		}
	}
	m := LatencySnapshot{Count: total, Sum: sum}
	if total == 0 {
		return m
	}
	m.Mean = sum / time.Duration(total)
	m.Buckets = make([]LatencyBucket, last+1)
	for i := 0; i <= last; i++ {
		m.Buckets[i] = LatencyBucket{UpperBound: bucketBound(i), Count: counts[i]}
	}
	m.P50, m.P95, m.P99 = histQuantiles(&counts, total)
	return m
}

// histQuantiles returns the nearest-rank p50/p95/p99 percentiles over the
// bucket counts in one pass (the scrape path computes all three per
// snapshot; one cumulative walk replaces three), each reported as its
// holding bucket's inclusive upper bound — biased at most one power of two
// high. Ranks use integer arithmetic — ceil(total*pct/100), clamped to at
// least 1 — so boundary ranks (e.g. p95 of a multiple of 20) never depend
// on float rounding. Callers guarantee total > 0 and total == sum of
// counts, so the trailing fallback is defensive only.
func histQuantiles(counts *[histBuckets]uint64, total uint64) (p50, p95, p99 time.Duration) {
	r50 := (total*50 + 99) / 100
	r95 := (total*95 + 99) / 100
	r99 := (total*99 + 99) / 100
	if r50 < 1 {
		r50 = 1
	}
	var cum uint64
	done := 0
	for i := range counts {
		cum += counts[i]
		if p50 == 0 && cum >= r50 {
			p50 = bucketBound(i)
			done++
		}
		if p95 == 0 && cum >= r95 {
			p95 = bucketBound(i)
			done++
		}
		if p99 == 0 && cum >= r99 {
			p99 = bucketBound(i)
			done++
		}
		if done == 3 {
			return p50, p95, p99
		}
	}
	last := bucketBound(histBuckets - 1)
	if p50 == 0 {
		p50 = last
	}
	if p95 == 0 {
		p95 = last
	}
	if p99 == 0 {
		p99 = last
	}
	return p50, p95, p99
}

func (h *hist) snapshot() LatencySnapshot {
	var counts [histBuckets]uint64
	var total uint64
	last := -1
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			last = i
		}
	}
	s := LatencySnapshot{Count: total, Sum: time.Duration(h.sum.Load())}
	if total == 0 {
		return s
	}
	s.Mean = s.Sum / time.Duration(total)
	s.Buckets = make([]LatencyBucket, last+1)
	for i := 0; i <= last; i++ {
		s.Buckets[i] = LatencyBucket{UpperBound: bucketBound(i), Count: counts[i]}
	}
	s.P50, s.P95, s.P99 = histQuantiles(&counts, total)
	return s
}
