package fo_test

import (
	"bytes"
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/cc/token"
	"focc/internal/interp"
)

// run compiles src and runs main under mode, returning the result and
// captured program output.
func run(t *testing.T, src string, mode fo.Mode) (fo.Result, string) {
	t.Helper()
	var out bytes.Buffer
	res, err := fo.Run("test.c", src, mode, fo.MachineConfig{Out: &out})
	if err != nil {
		t.Fatalf("compile/run: %v", err)
	}
	return res, out.String()
}

func TestHelloWorld(t *testing.T) {
	src := `
#include <stdio.h>
int main(void) {
	printf("hello %s %d\n", "world", 42);
	return 0;
}
`
	res, out := run(t, src, fo.Standard)
	if res.Outcome != fo.OutcomeOK {
		t.Fatalf("outcome = %v (%v), want ok", res.Outcome, res.Err)
	}
	if res.Value.I != 0 {
		t.Errorf("exit value = %d, want 0", res.Value.I)
	}
	if out != "hello world 42\n" {
		t.Errorf("output = %q", out)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int main(void) {
	int i, sum = 0;
	for (i = 0; i < 10; i++) sum += fib(i);
	/* fib: 0 1 1 2 3 5 8 13 21 34 -> 88 */
	return sum;
}
`
	res, _ := run(t, src, fo.Standard)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 88 {
		t.Fatalf("got outcome=%v value=%d err=%v, want ok/88", res.Outcome, res.Value.I, res.Err)
	}
}

const heapOverflowSrc = `
#include <stdlib.h>
#include <string.h>
int main(void) {
	char *a = malloc(8);
	char *b = malloc(8);
	int i;
	/* Overflow a: 8 in bounds + enough to reach b's header. */
	for (i = 0; i < 24; i++) a[i] = 'A';
	strcpy(b, "ok");
	free(a);
	free(b);
	return 0;
}
`

func TestHeapOverflowStandardCorrupts(t *testing.T) {
	res, _ := run(t, heapOverflowSrc, fo.Standard)
	if res.Outcome != fo.OutcomeHeapCorruption && res.Outcome != fo.OutcomeSegfault {
		t.Fatalf("standard outcome = %v (%v), want heap corruption or segfault", res.Outcome, res.Err)
	}
}

func TestHeapOverflowBoundsTerminates(t *testing.T) {
	res, _ := run(t, heapOverflowSrc, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeMemErrorTermination {
		t.Fatalf("bounds outcome = %v (%v), want memory-error termination", res.Outcome, res.Err)
	}
}

func TestHeapOverflowObliviousContinues(t *testing.T) {
	var out bytes.Buffer
	log := fo.NewEventLog(0)
	prog, err := fo.Compile("test.c", heapOverflowSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{
		Mode: fo.FailureOblivious, Out: &out, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != fo.OutcomeOK || res.Value.I != 0 {
		t.Fatalf("oblivious outcome = %v (%v), want ok", res.Outcome, res.Err)
	}
	if log.InvalidWrites() == 0 {
		t.Errorf("expected discarded writes in the log, got %s", log.Summary())
	}
}

const stackSmashSrc = `
void vulnerable(void) {
	int i; /* declared below buf in the frame, so the overrun cannot clobber it */
	char buf[8];
	for (i = 0; i < 64; i++) buf[i] = 0x41;
}
int main(void) {
	vulnerable();
	return 0;
}
`

func TestStackSmashStandard(t *testing.T) {
	res, _ := run(t, stackSmashSrc, fo.Standard)
	if res.Outcome != fo.OutcomeStackSmash && res.Outcome != fo.OutcomeSegfault {
		t.Fatalf("outcome = %v (%v), want stack smash or segfault", res.Outcome, res.Err)
	}
}

func TestStackSmashObliviousSurvives(t *testing.T) {
	res, _ := run(t, stackSmashSrc, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK {
		t.Fatalf("outcome = %v (%v), want ok", res.Outcome, res.Err)
	}
}

func TestManufacturedReadsTerminateScan(t *testing.T) {
	// A scan loop that runs past the end of its buffer looking for '/'
	// (the Midnight Commander pattern from paper §3). The manufactured
	// sequence eventually produces '/' (47), so the loop exits.
	src := `
int main(void) {
	char buf[4];
	int i = 0;
	buf[0] = 'a'; buf[1] = 'b'; buf[2] = 'c'; buf[3] = 'd';
	while (buf[i] != '/') i++;
	return i;
}
`
	res, _ := run(t, src, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK {
		t.Fatalf("outcome = %v (%v), want ok", res.Outcome, res.Err)
	}
	if res.Value.I < 4 {
		t.Errorf("loop exited inside the buffer (i=%d)?", res.Value.I)
	}
}

func TestStringsAndPointers(t *testing.T) {
	src := `
#include <string.h>
#include <stdlib.h>
int main(void) {
	char buf[32];
	char *p;
	strcpy(buf, "hello");
	strcat(buf, ", world");
	if (strcmp(buf, "hello, world") != 0) return 1;
	if (strlen(buf) != 12) return 2;
	p = strchr(buf, 'w');
	if (p == NULL) return 3;
	if (p - buf != 7) return 4;
	p = strdup(buf);
	if (strncmp(p, buf, 12) != 0) return 5;
	free(p);
	return 0;
}
`
	res, _ := run(t, src, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 0 {
		t.Fatalf("outcome=%v value=%d err=%v", res.Outcome, res.Value.I, res.Err)
	}
}

func TestStructsAndTypedefs(t *testing.T) {
	src := `
typedef struct point { int x; int y; } point_t;
struct rect { point_t a; point_t b; };
int area(struct rect *r) {
	return (r->b.x - r->a.x) * (r->b.y - r->a.y);
}
int main(void) {
	struct rect r;
	r.a.x = 1; r.a.y = 2;
	r.b.x = 5; r.b.y = 7;
	return area(&r);
}
`
	res, _ := run(t, src, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 20 {
		t.Fatalf("outcome=%v value=%d err=%v, want 20", res.Outcome, res.Value.I, res.Err)
	}
}

func TestGotoAndSwitch(t *testing.T) {
	src := `
int classify(int c) {
	switch (c) {
	case 0: return 10;
	case 1:
	case 2: return 20;
	default: break;
	}
	return 30;
}
int parse(int n) {
	int acc = 0;
	int i;
	for (i = 0; i < n; i++) {
		if (i == 7) goto bail;
		acc += classify(i);
	}
	return acc;
bail:
	return -acc;
}
int main(void) { return parse(10) == -(10+20+20+30+30+30+30) ? 0 : 1; }
`
	res, _ := run(t, src, fo.Standard)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 0 {
		t.Fatalf("outcome=%v value=%d err=%v", res.Outcome, res.Value.I, res.Err)
	}
}

func TestSignExtensionPlainChar(t *testing.T) {
	// Plain char is signed (the Sendmail attack depends on this).
	src := `
int main(void) {
	char c = 0xFF;
	int i = c;
	return i == -1 ? 0 : 1;
}
`
	res, _ := run(t, src, fo.Standard)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 0 {
		t.Fatalf("outcome=%v value=%d err=%v", res.Outcome, res.Value.I, res.Err)
	}
}

func TestCompileErrorsAreReported(t *testing.T) {
	_, err := fo.Compile("bad.c", "int main(void) { return undeclared; }")
	if err == nil {
		t.Fatal("expected a compile error")
	}
	if !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("error = %v", err)
	}
}

func TestNullDereference(t *testing.T) {
	src := `
int main(void) {
	int *p = 0;
	return *p;
}
`
	res, _ := run(t, src, fo.Standard)
	if res.Outcome != fo.OutcomeSegfault {
		t.Fatalf("standard: outcome=%v, want segfault", res.Outcome)
	}
	res, _ = run(t, src, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeMemErrorTermination {
		t.Fatalf("bounds: outcome=%v, want termination", res.Outcome)
	}
	res, _ = run(t, src, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK {
		t.Fatalf("oblivious: outcome=%v (%v), want ok", res.Outcome, res.Err)
	}
}

func TestCompileWithIncludesAndDefines(t *testing.T) {
	src := `
#include "myproj.h"
int main(void) { return ANSWER + helper(); }
`
	prog, err := fo.CompileWith("t.c", src, fo.CompileOptions{
		Includes: map[string]string{
			"myproj.h": "static int helper(void) { return 2; }\n",
		},
		Defines: map[string]string{"ANSWER": "40"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.BoundsCheck})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != fo.OutcomeOK || res.Value.I != 42 {
		t.Fatalf("res = %+v", res)
	}
}

func TestStandardHeadersProvideNULLAndSizeT(t *testing.T) {
	src := `
#include <stdlib.h>
#include <limits.h>
int main(void) {
	size_t n = 3;
	char *p = NULL;
	if (p != NULL) return 1;
	if (INT_MAX != 2147483647) return 2;
	if (CHAR_MIN != -128) return 3;
	return (int) n;
}
`
	res, _ := run(t, src, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 3 {
		t.Fatalf("res = %v %d (%v)", res.Outcome, res.Value.I, res.Err)
	}
}

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious, fo.Boundless, fo.Redirect} {
		got, err := fo.ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := fo.ParseMode("bogus"); err == nil {
		t.Error("want error for bogus mode")
	}
}

func TestCompileErrorStagesAndUnwrap(t *testing.T) {
	_, err := fo.Compile("t.c", "#include \"missing.h\"\n")
	ce, ok := err.(*fo.CompileError)
	if !ok || ce.Stage != "preprocess" {
		t.Fatalf("err = %v", err)
	}
	if len(ce.Unwrap()) == 0 {
		t.Error("Unwrap returned nothing")
	}
	_, err = fo.Compile("t.c", "int f( {")
	if ce, ok = err.(*fo.CompileError); !ok || ce.Stage != "parse" {
		t.Fatalf("err = %v", err)
	}
	_, err = fo.Compile("t.c", "int main(void){ return nope; }")
	if ce, ok = err.(*fo.CompileError); !ok || ce.Stage != "analyze" {
		t.Fatalf("err = %v", err)
	}
}

func TestErrIsMemError(t *testing.T) {
	res, _ := run(t, "int main(void){ int *p = 0; return *p; }", fo.BoundsCheck)
	if !fo.ErrIsMemError(res.Err) {
		t.Errorf("ErrIsMemError(%v) = false", res.Err)
	}
	res, _ = run(t, "int main(void){ int *p = 0; return *p; }", fo.Standard)
	if fo.ErrIsMemError(res.Err) {
		t.Errorf("segfault misclassified as MemError")
	}
}

func TestProgramAccessors(t *testing.T) {
	prog, err := fo.Compile("name.c", "int main(void){ return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name() != "name.c" {
		t.Errorf("Name() = %q", prog.Name())
	}
	if prog.Sema() == nil || len(prog.Sema().Funcs) != 1 {
		t.Error("Sema() incomplete")
	}
}

func TestBoundlessEliminatesSizeCalculationErrors(t *testing.T) {
	// Paper §5.1: with boundless memory blocks, "if the program logic is
	// otherwise acceptable, the program will execute acceptably" — data
	// written past the end is read back intact.
	src := `
#include <stdlib.h>
int main(void) {
	char *buf = malloc(4);          /* too small */
	int i, ok = 1;
	for (i = 0; i < 16; i++)
		buf[i] = (char)('a' + i);   /* writes 4..15 are out of bounds */
	for (i = 0; i < 16; i++)
		if (buf[i] != (char)('a' + i))
			ok = 0;
	return ok;
}
`
	res, _ := run(t, src, fo.Boundless)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 1 {
		t.Fatalf("boundless: %v value=%d (%v)", res.Outcome, res.Value.I, res.Err)
	}
	// Under plain failure-oblivious the read-back of the discarded tail
	// manufactures values instead; ok stays 0 in practice.
	res, _ = run(t, src, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK {
		t.Fatalf("oblivious: %v", res.Outcome)
	}
}

func TestRedirectReturnsConsistentInUnitData(t *testing.T) {
	// Paper §5.1: redirect "may help related sets of out of bounds reads
	// return consistent values from properly initialized data units."
	src := `
int main(void) {
	char buf[4];
	buf[0] = 'w'; buf[1] = 'x'; buf[2] = 'y'; buf[3] = 'z';
	/* reads at 4..7 wrap to 0..3 */
	if (buf[4] != 'w') return 1;
	if (buf[5] != 'x') return 2;
	if (buf[7] != 'z') return 3;
	return 0;
}
`
	res, _ := run(t, src, fo.Redirect)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 0 {
		t.Fatalf("redirect: %v value=%d (%v)", res.Outcome, res.Value.I, res.Err)
	}
}

func TestEventLogStreamViaConfig(t *testing.T) {
	var stream bytes.Buffer
	logger := fo.NewEventLog(0)
	logger.Stream = &stream
	prog, err := fo.Compile("t.c", `
int main(void) {
	char buf[2];
	buf[5] = 'x';
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.FailureOblivious, Log: logger})
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(); res.Outcome != fo.OutcomeOK {
		t.Fatal(res.Err)
	}
	if !strings.Contains(stream.String(), "invalid write") ||
		!strings.Contains(stream.String(), "t.c:4") {
		t.Errorf("stream = %q", stream.String())
	}
}

func TestCustomBuiltinOverride(t *testing.T) {
	prog, err := fo.Compile("t.c", `
int hostvalue(void);
int main(void) { return hostvalue(); }`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{
		Mode: fo.Standard,
		Builtins: map[string]interp.BuiltinFunc{
			"hostvalue": func(m *fo.Machine, _ token.Pos, _ []fo.Value) fo.Value {
				return fo.Int(1234)
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != fo.OutcomeOK || res.Value.I != 1234 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMissingBuiltinFailsAtCallTime(t *testing.T) {
	prog, err := fo.Compile("t.c", `
int nowhere(void);
int main(void) { return nowhere(); }`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != fo.OutcomeRuntimeError {
		t.Fatalf("res = %v, want runtime error (unresolved symbol)", res.Outcome)
	}
}

// Compilation-pipeline benchmarks (substrate performance).
func BenchmarkCompileSmall(b *testing.B) {
	src := "int add(int a, int b) { return a + b; }\nint main(void) { return add(1, 2); }"
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, err := fo.Compile("bench.c", src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMachineCreation(b *testing.B) {
	prog, err := fo.Compile("bench.c", `
char buffer[65536];
int main(void) { return 0; }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := prog.NewMachine(fo.MachineConfig{Mode: fo.FailureOblivious}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallOverhead(b *testing.B) {
	prog, err := fo.Compile("bench.c", "int id(int x) { return x; }")
	if err != nil {
		b.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.FailureOblivious})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if res := m.Call("id", fo.Int(int64(n))); res.Outcome != fo.OutcomeOK {
			b.Fatal(res.Err)
		}
	}
}

func TestConcurrentMachinesShareOneProgram(t *testing.T) {
	// Machines are single-threaded, but one compiled Program must be
	// safely shared by machines running on different goroutines (the
	// Apache pool pattern). Run with -race.
	prog, err := fo.Compile("t.c", `
#include <string.h>
char out[64];
int work(int seed) {
	char buf[32];
	int i;
	for (i = 0; i < 31; i++)
		buf[i] = (char)('a' + (seed + i) % 26);
	buf[31] = '\0';
	strcpy(out, buf);
	return (int) strlen(out);
}`)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int) {
			m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.FailureOblivious})
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 50; i++ {
				res := m.Call("work", fo.Int(int64(seed+i)))
				if res.Outcome != fo.OutcomeOK || res.Value.I != 31 {
					errs <- res.Err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
