package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// shedQueue is the deadline-aware CoDel-style admission queue behind
// WithShedding (see ShedConfig for the algorithm description). It replaces
// the engine's plain bounded channel: requests queue FIFO, but when the
// queue is full — or when the oldest request's sojourn time has exceeded
// the target for longer than the interval — requests whose deadline has
// become unmeetable are dropped from the *front*, their submitters
// answered with ErrShed, so viable fresh requests keep flowing instead of
// the queue turning into a line of already-dead work.
//
// Unmeetable: the time remaining until the request's context deadline is
// smaller than the EWMA of recently observed execution times (even if
// dequeued right now it could not finish in time). Requests without a
// deadline are only shed by sojourn: once their wait exceeds
// target+interval during sustained overload they are assumed stale.
type shedQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*task // FIFO: items[0] is the oldest
	depth  int
	closed bool

	cfg ShedConfig

	// aboveSince is when the head sojourn time first exceeded cfg.Target
	// without dipping back under (zero = currently under target). Dequeue
	// only sheds once now-aboveSince >= cfg.Interval — CoDel's defense
	// against reacting to short bursts.
	aboveSince time.Time

	// svcEWMA estimates execution time from observed service durations
	// (integer EWMA, alpha = 1/4). It starts at zero — before any
	// observation only already-expired requests count as unmeetable.
	svcEWMA time.Duration

	shed *atomic.Uint64 // the engine's Stats.Shed counter
}

func newShedQueue(depth int, cfg ShedConfig, shed *atomic.Uint64) *shedQueue {
	q := &shedQueue{items: make([]*task, 0, depth), depth: depth, cfg: cfg, shed: shed}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// observe folds one measured execution duration into the service-time
// estimate.
func (q *shedQueue) observe(d time.Duration) {
	q.mu.Lock()
	if q.svcEWMA == 0 {
		q.svcEWMA = d
	} else {
		q.svcEWMA += (d - q.svcEWMA) / 4
	}
	q.mu.Unlock()
}

// resetServiceEstimate clears the service-time EWMA. The engine calls it on
// Recycle (the program hot-swap path): the estimate describes the outgoing
// program's execution times, and letting it survive the swap would drive
// unmeetable-deadline shedding for the new program from stale data — a slow
// outgoing program would shed requests the new program could easily serve,
// and a fast one would queue doomed work. Starting from zero re-learns from
// the new program's first observations, the same cold-start contract as a
// freshly built queue.
func (q *shedQueue) resetServiceEstimate() {
	q.mu.Lock()
	q.svcEWMA = 0
	q.mu.Unlock()
}

// unmeetable reports whether t cannot meet its deadline anymore: the time
// remaining is below the current service-time estimate (expired requests
// have negative remaining time and are always unmeetable).
func (q *shedQueue) unmeetable(t *task, now time.Time) bool {
	dl, ok := t.ctx.Deadline()
	if !ok {
		// No deadline to miss; only the sustained-sojourn rule (dequeue
		// path) can shed it.
		return false
	}
	return dl.Sub(now) < q.svcEWMA
}

// dropLocked removes items[i], answers its submitter(s) with ErrShed, and
// counts the shed — per request, so a dropped batch wrapper counts every
// sub-request it carried. The count is read before answering: the answer
// releases the task to its submitter, who may recycle it concurrently.
// Callers hold q.mu.
func (q *shedQueue) dropLocked(i int) {
	t := q.items[i]
	last := len(q.items) - 1
	q.items = append(q.items[:i], q.items[i+1:]...)
	q.items[:last+1][last] = nil // drop the stale tail reference
	n := taskCount(t)
	answer(t, taskResult{err: ErrShed})
	q.shed.Add(n)
}

// push admits t, shedding the oldest unmeetable request to make room when
// the queue is full. It returns ErrQueueFull when the queue is full of
// requests that can still meet their deadlines, and ErrClosed after close.
func (q *shedQueue) push(t *task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if len(q.items) >= q.depth {
		// Full: drop from the front — the oldest request whose deadline
		// has become unmeetable — to admit a viable newcomer. The Interval
		// gate does not apply here: a full queue is sustained pressure by
		// definition, and serving a doomed request would only waste the
		// capacity the newcomer still has time to use.
		shedded := false
		now := time.Now()
		for i := 0; i < len(q.items); i++ {
			if q.unmeetable(q.items[i], now) {
				q.dropLocked(i)
				shedded = true
				break
			}
		}
		if !shedded {
			return ErrQueueFull
		}
	}
	q.items = append(q.items, t)
	q.cond.Signal()
	return nil
}

// pop blocks until a task is available (or the queue closes), shedding
// unmeetable requests from the front while the sojourn time has stayed
// above target for at least the interval.
func (q *shedQueue) pop() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			return nil, false
		}
		now := time.Now()
		head := q.items[0]
		sojourn := now.Sub(head.enq)
		if sojourn < q.cfg.Target {
			q.aboveSince = time.Time{}
			return q.takeLocked(), true
		}
		if q.aboveSince.IsZero() {
			q.aboveSince = now
		}
		if now.Sub(q.aboveSince) >= q.cfg.Interval &&
			(q.unmeetable(head, now) || sojourn >= q.cfg.Target+q.cfg.Interval && noDeadline(head)) {
			q.dropLocked(0)
			continue
		}
		return q.takeLocked(), true
	}
}

func noDeadline(t *task) bool {
	_, ok := t.ctx.Deadline()
	return !ok
}

// takeLocked removes and returns the head. Callers hold q.mu.
func (q *shedQueue) takeLocked() *task {
	t := q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return t
}

// close wakes all waiting workers; queued submitters are unblocked by the
// engine's closing context (they get ErrClosed from Submit's select).
func (q *shedQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
