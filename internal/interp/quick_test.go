package interp_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"focc/internal/core"
	"focc/internal/corpus"
	"focc/internal/interp"
	"focc/internal/libc"
)

// Differential test: random integer expressions are rendered to C, executed
// by every engine, and compared against a Go reference evaluator that
// implements C's int (32-bit, wrapping) semantics. The trial sequence is
// deterministic (corpus.QuickTrials); the first corpus.QuickGenTrials
// trials also run the ahead-of-time generated engine from the checked-in
// internal/gencorpus package, asserting identical results, event-log
// snapshots, and simulated cycles per seed across all three engines.

// quickObs is everything one engine observes for one trial.
type quickObs struct {
	outcome interp.Outcome
	value   int64
	cycles  uint64
	log     core.Snapshot
}

func runQuickTrial(t *testing.T, i int, tr corpus.QuickTrial, engine string) quickObs {
	t.Helper()
	prog := compile(t, tr.Src)
	cfg := engineConfig(t, engine, prog, tr.Src)
	cfg.Mode = core.BoundsCheck
	m, err := interp.New(prog, cfg)
	if err != nil {
		t.Fatalf("trial %d (%s): %v\nsrc: %s", i, engine, err, tr.Src)
	}
	res := m.Call("f", interp.Int(int64(tr.A)), interp.Int(int64(tr.B)), interp.Int(int64(tr.C)))
	return quickObs{
		outcome: res.Outcome,
		value:   res.Value.I,
		cycles:  m.SimCycles(),
		log:     m.Log().Snapshot(),
	}
}

func TestRandomExpressionsMatchReference(t *testing.T) {
	for i, tr := range corpus.QuickTrials(corpus.QuickTrialCount) {
		// The first QuickGenTrials trials have ahead-of-time generated
		// code checked in; running them without it is a corpus drift bug,
		// not a skip.
		engines := engineNames
		if i >= corpus.QuickGenTrials {
			engines = engineNames[:2]
		}
		ref := runQuickTrial(t, i, tr, engines[0])
		if ref.outcome != interp.OutcomeOK {
			t.Fatalf("trial %d: outcome %v\nsrc: %s", i, ref.outcome, tr.Src)
		}
		if ref.value != int64(tr.Want) {
			t.Fatalf("trial %d: f(%d,%d,%d) = %d, want %d\nsrc: %s",
				i, tr.A, tr.B, tr.C, ref.value, tr.Want, tr.Src)
		}
		for _, engine := range engines[1:] {
			obs := runQuickTrial(t, i, tr, engine)
			if obs.outcome != ref.outcome || obs.value != ref.value || obs.cycles != ref.cycles {
				t.Fatalf("trial %d: %s = %+v, tree-walk = %+v\nsrc: %s",
					i, engine, obs, ref, tr.Src)
			}
			if !reflect.DeepEqual(obs.log, ref.log) {
				t.Fatalf("trial %d: %s event log diverges\nsrc: %s", i, engine, tr.Src)
			}
		}
	}
}

// Differential test for the C string functions against Go references,
// through the checked access path with random contents.
func TestRandomStringOpsMatchReference(t *testing.T) {
	const src = `
#include <string.h>
char dst[512];
unsigned long do_strlen(const char *s) { return strlen(s); }
int do_strcmp(const char *a, const char *b) { return strcmp(a, b); }
char *do_strcpy(const char *s) { strcpy(dst, s); return dst; }
char *do_strcat(const char *a, const char *b) {
	strcpy(dst, a);
	strcat(dst, b);
	return dst;
}
char *do_strchr(const char *s, int c) { return strchr(s, c); }
`
	prog := compileWithCPP(t, src)
	m, err := interp.New(prog, interp.Config{
		Mode: core.BoundsCheck, Builtins: libc.Builtins(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	randStr := func(max int) string {
		n := rng.Intn(max)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(94) + 33) // printable, no NUL
		}
		return string(b)
	}
	for i := 0; i < 150; i++ {
		s1 := randStr(60)
		s2 := randStr(60)

		res := m.Call("do_strlen", m.NewCString(s1))
		if res.Outcome != interp.OutcomeOK || res.Value.I != int64(len(s1)) {
			t.Fatalf("strlen(%q) = %v/%d", s1, res.Outcome, res.Value.I)
		}

		res = m.Call("do_strcmp", m.NewCString(s1), m.NewCString(s2))
		sign := func(v int64) int {
			switch {
			case v < 0:
				return -1
			case v > 0:
				return 1
			}
			return 0
		}
		if sign(res.Value.I) != sign(int64(strings.Compare(s1, s2))) {
			t.Fatalf("strcmp(%q, %q) = %d", s1, s2, res.Value.I)
		}

		res = m.Call("do_strcat", m.NewCString(s1), m.NewCString(s2))
		got, err := m.ReadCString(res.Value, 512)
		if err != nil || got != s1+s2 {
			t.Fatalf("strcat(%q, %q) = %q, %v", s1, s2, got, err)
		}

		if len(s1) > 0 {
			ch := s1[rng.Intn(len(s1))]
			res = m.Call("do_strchr", m.NewCString(s1), interp.Int(int64(ch)))
			got, err := m.ReadCString(res.Value, 512)
			if err != nil {
				t.Fatalf("strchr read: %v", err)
			}
			idx := strings.IndexByte(s1, ch)
			if got != s1[idx:] {
				t.Fatalf("strchr(%q, %q) = %q, want %q", s1, ch, got, s1[idx:])
			}
		}
	}
}
