// Package serve is the concurrent serving engine: it dispatches
// servers.Requests across a supervised pool of interpreter instances, the
// way Apache's process manager feeds requests to a regenerating pool of
// child processes (paper §4.3.2).
//
// The engine owns poolSize worker goroutines, each driving its own
// servers.Instance (instances are single-goroutine; see the concurrency
// contract on servers.Instance). Requests are admitted through a bounded
// queue — a full queue rejects immediately with ErrQueueFull so callers see
// backpressure instead of unbounded latency. With WithShedding the bounded
// FIFO becomes a CoDel-style deadline-aware shedding queue: requests whose
// deadline has become unmeetable are dropped from the front with ErrShed so
// viable requests keep flowing (see ShedConfig). A per-request deadline
// (engine default and/or caller context) cancels execution inside the
// interpreter and returns fo.OutcomeDeadline without killing the instance.
//
// The supervisor part mirrors the paper's availability mechanism: a worker
// whose instance crashes replaces it with a fresh one — at real
// instance-creation cost, which is exactly what throttles the Standard and
// BoundsCheck versions under attack — with capped exponential backoff
// between consecutive crashes, and a circuit breaker that parks a
// crash-looping worker for a cooldown instead of hot-restarting forever.
//
// Instance creation — initial pool fill, warm spares, and every restart —
// goes through the server factory to fo.Program.NewMachine, which reuses
// the program's cached closure-compiled IR (DESIGN.md §13). Restart cost
// is therefore machine/address-space setup only; no path in the engine
// re-lowers the program.
//
// The same shared-immutable-IR property powers zero-downtime program
// hot-swap: Recycle bumps the engine's instance generation, and each
// worker replaces its instance with a freshly created one before executing
// its next request — in-flight work completes on the old instance, so no
// request observes the swap. Pair it with a SwapServer (whose New reads an
// atomically swappable server) or a Router, which coordinates the swap
// across shards.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"focc/fo"
	"focc/internal/servers"
)

// Errors returned by Submit (and Router.Submit, which adds its own).
var (
	// ErrQueueFull is the backpressure signal: the admission queue is at
	// capacity — and, under shedding, every queued request can still meet
	// its deadline — so the request was rejected without queuing.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrShed reports a queued request dropped by the shedding queue: it
	// waited long enough that its deadline became unmeetable, and its slot
	// was given to a request that can still finish in time (WithShedding).
	// Distinct from ErrQueueFull — shed requests were admitted first and
	// aged out; rejected ones never got in.
	ErrShed = errors.New("serve: request shed (deadline unmeetable under overload)")
	// ErrClosed reports a Submit on (or interrupted by) a closed engine.
	ErrClosed = errors.New("serve: engine closed")
)

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Served counts responses delivered by workers (any outcome).
	Served uint64
	// Crashes counts requests that killed their instance.
	Crashes uint64
	// Restarts counts replacement instances successfully created after a
	// crash or chaos kill.
	Restarts uint64
	// Recycles counts instances replaced by a generation bump (Recycle —
	// the program hot-swap path), which is neither a crash nor a restart:
	// the retired instance was healthy and had finished its work.
	Recycles uint64
	// Timeouts counts deadline-exceeded requests (queued or executing).
	Timeouts uint64
	// Rewound counts requests rolled back by the rewind policy
	// (fo.OutcomeRewound): a detected memory error undone at the request
	// boundary. Like Timeouts these are a subset of Served — the instance
	// survives, the request fails.
	Rewound uint64
	// Rejected counts queue-full admission rejections (ErrQueueFull).
	Rejected uint64
	// Shed counts queued requests dropped by the shedding queue because
	// their deadline became unmeetable (ErrShed; WithShedding).
	Shed uint64
	// BreakerTrips counts circuit-breaker activations.
	BreakerTrips uint64
	// ChaosKills counts instances killed by chaos injection (WithChaos);
	// they are replaced like crashes but not counted in Crashes.
	ChaosKills uint64
	// ChaosDelays counts requests delayed by chaos latency injection.
	ChaosDelays uint64
	// Batches counts coalesced batch dispatches (WithBatching): each is one
	// queue slot and one instance hand-off covering several served requests.
	// Zero when batching is disabled or every request bypassed the batcher.
	Batches uint64
	// MemErrors aggregates the memory-error telemetry of every instance
	// the engine has ever owned: the live pool is scraped (legal because
	// EventLog is concurrency-safe) and the logs of crashed, replaced
	// instances are folded in at retirement, so counts never disappear
	// when the supervisor replaces a child.
	MemErrors fo.LogSnapshot
}

// add accumulates o's counters into s (MemErrors merged); the Router uses
// it to aggregate shard stats.
func (s *Stats) add(o Stats) {
	s.Served += o.Served
	s.Crashes += o.Crashes
	s.Restarts += o.Restarts
	s.Recycles += o.Recycles
	s.Timeouts += o.Timeouts
	s.Rewound += o.Rewound
	s.Rejected += o.Rejected
	s.Shed += o.Shed
	s.BreakerTrips += o.BreakerTrips
	s.ChaosKills += o.ChaosKills
	s.ChaosDelays += o.ChaosDelays
	s.Batches += o.Batches
	s.MemErrors.Merge(o.MemErrors)
}

// Metrics is the full observability snapshot: the counter Stats plus the
// live request-latency histogram.
type Metrics struct {
	Stats
	// Latency covers every executed request (any outcome), measured
	// around instance execution; queue-expired requests are excluded.
	Latency LatencySnapshot
}

// Engine dispatches requests across a supervised pool of instances. All
// methods are safe for concurrent use.
type Engine struct {
	srv  servers.Server
	mode fo.Mode
	o    options

	// Exactly one of tasks/q is non-nil: the plain bounded queue, or the
	// deadline-aware shedding queue (WithShedding).
	tasks chan *task
	q     *shedQueue

	// b coalesces submissions into batch wrapper tasks ahead of the queue
	// (WithBatching); nil when batching is disabled.
	b *batcher

	// closing is canceled by Close; its Done channel doubles as the
	// engine-wide shutdown signal, and in-flight interpreter work is
	// canceled through it so Close never waits on a stuck request.
	closing   context.Context
	closeFunc context.CancelFunc
	wg        sync.WaitGroup
	once      sync.Once

	served, crashes, restarts, timeouts, rewound, rejected, trips, batches atomic.Uint64

	// shedCount counts ErrShed drops (incremented inside the shed queue).
	shedCount atomic.Uint64

	// breakerOpen gauges how many workers are currently parked in (or
	// half-opening out of) a breaker cooldown. Tripped() reads it; the
	// Router uses it as the shard health signal for rebalancing.
	breakerOpen atomic.Int64

	// gen is the instance generation: Recycle bumps it, and every worker
	// replaces its instance before executing its next request once its
	// instance's generation is stale. recycles counts those replacements.
	gen      atomic.Uint64
	recycles atomic.Uint64

	// taskSeq numbers executed requests engine-wide; chaos injection keys
	// off it (see ChaosConfig). chaosKills / chaosDelays count injections.
	taskSeq, chaosKills, chaosDelays atomic.Uint64

	// spares holds pre-warmed replacement instances tagged with the
	// generation they were created under (nil when warm spares are
	// disabled). A filler goroutine blocks on sending into it, so the
	// standby set refills itself as soon as a spare is taken; stale-
	// generation spares are discarded at take time.
	spares chan spare

	latency hist

	// obsMu guards the memory-error aggregation state: the set of live
	// instance logs (scraped on Stats) and the folded counters of retired
	// instances. Scrapes (memErrors) take the read lock — concurrent
	// scrapers share it, so a polled stats endpoint never convoys — and
	// only instance turnover (adopt/retire) takes the write lock. Lock
	// order: obsMu before any EventLog's own mutex.
	obsMu    sync.RWMutex
	liveLogs map[*fo.EventLog]struct{}
	liveList []*fo.EventLog // flat copy of liveLogs keys, rebuilt on turnover: scrapes range a slice, not a map
	retired  fo.LogSnapshot
}

// spare is a pre-warmed replacement instance plus the generation it was
// created under (stale spares are discarded, not served).
type spare struct {
	inst servers.Instance
	gen  uint64
}

type task struct {
	ctx  context.Context
	req  servers.Request
	resp chan taskResult // buffered(1): workers never block on reply
	enq  time.Time       // when the task entered the queue (sojourn basis)

	// batch, when non-nil, marks this task as a batch wrapper (WithBatching):
	// it carries no request of its own, occupies one queue slot, and the
	// worker executes each sub-task in order under a shared checkpoint epoch
	// (serveBatch). Wrapper tasks have ctx == context.Background() — each
	// sub-request's own deadline is enforced at execution time — and their
	// resp channel is unused: replies (including queue-level errors such as
	// ErrShed) fan out to the sub-tasks' channels via answer.
	batch []*task
}

// taskPool recycles task structs (and their reply channels) across
// Submits: two allocations per request on the small-op hot path otherwise.
// Reuse is safe because each task's reply channel sees exactly one send —
// by the worker that executed it or by the shedding queue — so once the
// submitter has received the reply the channel is empty and unreferenced.
// Tasks abandoned on engine close (Submit returned ErrClosed while the
// task was still queued or executing) are NOT pooled: a late worker send
// may still arrive, and recycling the channel would cross-deliver it.
var taskPool = sync.Pool{
	New: func() any { return &task{resp: make(chan taskResult, 1)} },
}

// getTask checks a task out of the pool, initialized for one submission.
// enq is stamped by the caller only when a consumer needs it (the shedding
// queue's sojourn clock) — a clock read costs real time on the small-op
// hot path, so the plain bounded queue skips it.
func getTask(ctx context.Context, req servers.Request) *task {
	t := taskPool.Get().(*task)
	t.ctx, t.req = ctx, req
	return t
}

// putTask returns a finished task to the pool, dropping reference-holding
// fields so pooled tasks don't pin contexts or request payloads.
func putTask(t *task) {
	t.ctx = nil
	t.req = servers.Request{}
	t.batch = nil
	taskPool.Put(t)
}

// taskResult is a worker's (or the shedding queue's) answer to a task:
// either a response or a terminal submission error such as ErrShed.
type taskResult struct {
	resp servers.Response
	err  error
}

// New builds the pool (failing fast on invalid options or if instances
// cannot be created) and starts one worker goroutine per instance.
func New(srv servers.Server, mode fo.Mode, opts ...Option) (*Engine, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	closing, closeFunc := context.WithCancel(context.Background())
	e := &Engine{
		srv:       srv,
		mode:      mode,
		o:         o,
		closing:   closing,
		closeFunc: closeFunc,
		liveLogs:  make(map[*fo.EventLog]struct{}, o.poolSize),
	}
	if o.shed.enabled() {
		e.q = newShedQueue(o.queueDepth, o.shed, &e.shedCount)
	} else {
		e.tasks = make(chan *task, o.queueDepth)
	}
	if o.batchMax > 0 {
		e.b = newBatcher(e)
	}
	insts := make([]servers.Instance, o.poolSize)
	gens := make([]uint64, o.poolSize)
	for i := range insts {
		// Same discipline as the filler: read the generation before
		// creating, so a Recycle racing construction can only make the
		// instance look stale (recycled at its first request), never
		// current-but-old. The worker goroutine must not read the
		// generation itself — it may first be scheduled long after a
		// swap, which would tag this old-program instance as current.
		gens[i] = e.gen.Load()
		inst, err := srv.New(mode)
		if err != nil {
			return nil, fmt.Errorf("serve: spawn %s/%v child %d: %w", srv.Name(), mode, i, err)
		}
		insts[i] = inst
		e.adoptLog(inst.Log())
	}
	for i, inst := range insts {
		e.wg.Add(1)
		go e.worker(inst, gens[i])
	}
	if o.warmSpares > 0 {
		e.spares = make(chan spare, o.warmSpares)
		e.wg.Add(1)
		go e.filler()
	}
	return e, nil
}

// filler keeps the warm-spare channel topped up: it creates instances ahead
// of demand and blocks sending into the bounded channel, waking exactly when
// a respawn takes a spare. Creation errors back off briefly so a persistent
// failure cannot spin the goroutine. Each spare is tagged with the
// generation read *before* creation, so a hot-swap racing the spawn can only
// mark the spare stale (discarded at take time), never fresh.
func (e *Engine) filler() {
	defer e.wg.Done()
	for {
		select {
		case <-e.closing.Done():
			return
		default:
		}
		gen := e.gen.Load()
		inst, err := e.srv.New(e.mode)
		if err != nil {
			if !e.sleep(e.o.backoffBase) {
				return
			}
			continue
		}
		select {
		case e.spares <- spare{inst: inst, gen: gen}:
		case <-e.closing.Done():
			releaseInstance(inst)
			return
		}
	}
}

// takeSpare returns a warm spare created under the current generation, if
// one is ready. Spares from an older generation are released and skipped —
// serving a stale program after a hot-swap would undo the swap.
func (e *Engine) takeSpare() (servers.Instance, bool) {
	if e.spares == nil {
		return nil, false
	}
	cur := e.gen.Load()
	for {
		select {
		case sp := <-e.spares:
			if sp.gen == cur {
				return sp.inst, true
			}
			releaseInstance(sp.inst)
		default:
			return nil, false
		}
	}
}

// releaseInstance returns a retired instance's pooled memory, when the
// instance supports it (servers.Base does).
func releaseInstance(inst servers.Instance) {
	if r, ok := inst.(interface{ Release() }); ok {
		r.Release()
	}
}

// adoptLog registers a live instance's event log for scraping.
func (e *Engine) adoptLog(l *fo.EventLog) {
	if l == nil {
		return
	}
	e.obsMu.Lock()
	e.liveLogs[l] = struct{}{}
	e.rebuildLiveList()
	e.obsMu.Unlock()
}

// retireLog folds a dead instance's event log into the retired aggregate so
// its counts survive the instance's replacement.
func (e *Engine) retireLog(l *fo.EventLog) {
	if l == nil {
		return
	}
	e.obsMu.Lock()
	delete(e.liveLogs, l)
	e.rebuildLiveList()
	e.retired.Merge(l.Snapshot())
	e.obsMu.Unlock()
}

// rebuildLiveList refreshes the flat scrape list from liveLogs; callers
// hold obsMu. Turnover is rare (instance creation and retirement), scrapes
// are hot — paying a rebuild here buys memErrors a slice walk instead of a
// map iteration per scrape.
func (e *Engine) rebuildLiveList() {
	e.liveList = e.liveList[:0]
	for l := range e.liveLogs {
		e.liveList = append(e.liveList, l)
	}
}

// memErrors aggregates the retired instances' counters with a live scrape
// of every current instance's log. O(live pool): retired logs were folded
// into the cached aggregate at retirement (retireLog), so a restart storm
// does not grow the scrape. Read lock only — scrapers run concurrently
// with each other and never block the serving path, whose hot counters
// are lock-free (fo.EventLog).
func (e *Engine) memErrors(agg *fo.LogSnapshot) {
	e.obsMu.RLock()
	defer e.obsMu.RUnlock()
	agg.Merge(e.retired)
	for _, l := range e.liveList {
		l.AddTo(agg)
	}
}

// Mode returns the pool's execution mode.
func (e *Engine) Mode() fo.Mode { return e.mode }

// Tripped reports whether the circuit breaker currently holds at least one
// worker parked in its cooldown (or half-open, still failing to produce a
// replacement instance). It is the engine's liveness signal for cluster
// front ends: a Router temporarily routes a tripped shard's traffic to
// healthy shards and restores it when Tripped turns false (the worker came
// back with a fresh instance). Safe from any goroutine.
func (e *Engine) Tripped() bool { return e.breakerOpen.Load() > 0 }

// PoolSize returns the number of workers.
func (e *Engine) PoolSize() int { return e.o.poolSize }

// Recycle bumps the engine's instance generation: every worker retires its
// (healthy) instance and creates a replacement before executing its next
// request, and stale warm spares are discarded at take time. In-flight
// requests finish on the instances that started them, so no request fails —
// this is the engine half of zero-downtime program hot-swap (the other half
// is an atomically swappable server factory; see SwapServer and Router).
// The replacement wave is lazy: an idle worker recycles when its next
// request arrives.
//
// Recycle also resets the shedding queue's service-time estimate: the EWMA
// describes the outgoing program, and stale estimates would misdrive
// unmeetable-deadline shedding for its replacement.
func (e *Engine) Recycle() {
	e.gen.Add(1)
	if e.q != nil {
		e.q.resetServiceEstimate()
	}
}

// Stats returns a snapshot of the engine counters, including the
// aggregated memory-error telemetry of all instances past and present. It
// is safe to call from any goroutine at any time, including while the pool
// is serving.
func (e *Engine) Stats() Stats {
	s := Stats{
		Served:       e.served.Load(),
		Crashes:      e.crashes.Load(),
		Restarts:     e.restarts.Load(),
		Recycles:     e.recycles.Load(),
		Timeouts:     e.timeouts.Load(),
		Rewound:      e.rewound.Load(),
		Rejected:     e.rejected.Load(),
		Shed:         e.shedCount.Load(),
		BreakerTrips: e.trips.Load(),
		ChaosKills:   e.chaosKills.Load(),
		ChaosDelays:  e.chaosDelays.Load(),
		Batches:      e.batches.Load(),
	}
	e.memErrors(&s.MemErrors)
	return s
}

// Metrics returns the full observability snapshot: Stats plus the live
// request-latency histogram (p50/p95/p99 without waiting for a post-hoc
// load report).
func (e *Engine) Metrics() Metrics {
	return Metrics{Stats: e.Stats(), Latency: e.latency.snapshot()}
}

// Submit dispatches one request and blocks until its response. It returns
// ErrQueueFull immediately when the admission queue is at capacity (with
// shedding enabled: at capacity with every queued request still able to
// meet its deadline), ErrShed when the request was queued but aged out of
// its deadline under overload, and ErrClosed when the engine is (or
// becomes) closed. A nil ctx means no caller-side cancellation; the
// engine's configured deadline, if any, is applied on top of ctx in either
// case. Deadline expiry of an admitted-and-executed request is reported as
// a Response with fo.OutcomeDeadline, not an error: the request was
// admitted and accounted, it just ran out of time.
func (e *Engine) Submit(ctx context.Context, req servers.Request) (servers.Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.o.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.o.deadline)
		defer cancel()
	}
	t := getTask(ctx, req)
	if e.q != nil {
		t.enq = time.Now() // sojourn basis for the shedding queue
	}
	if e.b != nil && e.b.admit(t) {
		// Coalesced: the batcher owns admission now. A reply — the executed
		// response, or the batch's admission error — arrives on t.resp.
		return e.await(t)
	}
	if e.q != nil {
		if err := e.q.push(t); err != nil {
			if errors.Is(err, ErrQueueFull) {
				e.rejected.Add(1)
			}
			putTask(t) // never enqueued: nothing can send on it
			return servers.Response{}, err
		}
	} else {
		select {
		case e.tasks <- t:
		case <-e.closing.Done():
			putTask(t) // never enqueued: nothing can send on it
			return servers.Response{}, ErrClosed
		default:
			e.rejected.Add(1)
			putTask(t) // never enqueued: nothing can send on it
			return servers.Response{}, ErrQueueFull
		}
	}
	return e.await(t)
}

// await blocks on an admitted task's reply (or engine shutdown) and
// recycles the task once its single reply has been received.
func (e *Engine) await(t *task) (servers.Response, error) {
	select {
	case r := <-t.resp:
		putTask(t) // the single send was received: channel drained
		return r.resp, r.err
	case <-e.closing.Done():
		// Abandoned mid-flight: a worker may still send a late reply, so
		// this task (and its channel) must not be recycled.
		return servers.Response{}, ErrClosed
	}
}

// Close shuts the engine down and waits for the workers to exit. In-flight
// requests are canceled through the interpreter's cancellation hook, and
// Submits blocked on them return ErrClosed. Close is idempotent.
func (e *Engine) Close() {
	e.once.Do(func() {
		e.closeFunc()
		if e.q != nil {
			e.q.close()
		}
	})
	e.wg.Wait()
	if e.spares != nil {
		// The filler has exited; drain any remaining pre-warmed instances
		// and return their pooled memory.
		for {
			select {
			case sp := <-e.spares:
				releaseInstance(sp.inst)
			default:
				return
			}
		}
	}
}

// next blocks until a task is available on whichever queue the engine runs,
// returning false when the engine is closing.
func (e *Engine) next() (*task, bool) {
	if e.q != nil {
		return e.q.pop()
	}
	select {
	case <-e.closing.Done():
		return nil, false
	case t := <-e.tasks:
		return t, true
	}
}

// worker owns one instance: it pulls tasks from the shared queue, executes
// them under the task context, and supervises its instance across crashes
// and hot-swap recycles. instGen is the generation read before inst was
// created (see New) — passed in rather than loaded here because the
// goroutine may first run after a swap has already bumped the generation.
func (e *Engine) worker(inst servers.Instance, instGen uint64) {
	defer e.wg.Done()
	consecutive := 0 // crashes since the last successful response
	for {
		t, ok := e.next()
		if !ok {
			return
		}
		if t.batch != nil {
			inst = e.serveBatch(inst, &instGen, &consecutive, t)
		} else {
			inst = e.serveTask(inst, &instGen, &consecutive, t, nil)
		}
		if inst == nil {
			return // engine closed mid-task
		}
	}
}

// serveBatch dispatches a coalesced batch wrapper: one recycle check and —
// under the rewind policy — one checkpoint epoch for the whole batch, then
// each sub-request end to end with its own deadline check, outcome,
// latency sample, and reply. A mid-batch crash retires the instance and the
// remaining sub-requests continue on the replacement (serveTask re-arms the
// epoch per sub-request, since a rewind or a replacement consumes it).
// Returns the (possibly replaced) instance, or nil when the engine closed.
func (e *Engine) serveBatch(inst servers.Instance, instGen *uint64, consecutive *int, bt *task) servers.Instance {
	// Hot-swap recycle point, hoisted to batch granularity: between
	// requests, and before execution, so the whole batch is served by the
	// new program.
	if inst = e.maybeRecycle(inst, instGen); inst == nil {
		return nil
	}
	e.batches.Add(1)
	// One cancellation bind for the whole batch: sub-requests without
	// caller cancellation execute under the engine's closing context, and
	// binding it here once makes each sub-request's own BindContext of the
	// same context free — a context bind costs a watcher goroutine, the
	// single biggest fixed per-request cost on the small-op path.
	var release func()
	bind := func(i servers.Instance) {
		if bb, ok := i.(batchBinder); ok {
			release = bb.BindBatch(e.closing)
		}
	}
	unbind := func() {
		if release != nil {
			release()
			release = nil
		}
	}
	bind(inst)
	// One shared clock for the whole batch: each sub-request's latency is
	// measured boundary to boundary (N+1 clock reads instead of 2N — clock
	// reads are a measurable slice of the small-op serving cost).
	clock := time.Now()
	for _, sub := range bt.batch {
		prev := inst
		if inst = e.serveTask(inst, instGen, consecutive, sub, &clock); inst == nil {
			// Engine closed mid-batch; the unserved submitters unblock
			// through the closing context. The watcher exits with it.
			unbind()
			return nil
		}
		if inst != prev {
			// Crash mid-batch: the bind followed the retired instance's
			// machine; release it and bind the replacement.
			unbind()
			bind(inst)
		}
	}
	unbind()
	if be, ok := inst.(batchEpocher); ok {
		// Commit the epoch left open by the last sub-request (no-op if a
		// rewind or crash already consumed it).
		be.EndBatch()
	}
	return inst
}

// serveTask runs one request end to end on inst: queued-expiry check,
// chaos injection, execution with accounting, the reply, and crash
// supervision (retire + respawn with backoff/breaker). A non-nil clock
// marks a sub-request of a coalesced batch: the per-request recycle point
// is skipped (serveBatch checked once for the whole batch), the batch
// checkpoint epoch is (re-)armed before execution, and latency is
// measured against *clock — the previous sub-request's end boundary —
// which serveTask advances. Returns the (possibly replaced) instance, or
// nil when the engine closed.
func (e *Engine) serveTask(inst servers.Instance, instGen *uint64, consecutive *int, t *task, clock *time.Time) servers.Instance {
	if err := t.ctx.Err(); err != nil {
		// Expired while queued: answer without burning the
		// instance on a request nobody is waiting for.
		e.timeouts.Add(1)
		t.resp <- taskResult{resp: servers.Response{Outcome: fo.OutcomeDeadline, Err: err}}
		return inst
	}
	var seq uint64
	if e.o.chaos.enabled() {
		seq = e.taskSeq.Add(1)
		if c := e.o.chaos; c.LatencyEvery > 0 && seq%c.LatencyEvery == 0 {
			e.chaosDelays.Add(1)
			if !e.sleep(c.Latency) {
				return nil // engine closed mid-delay
			}
		}
	}
	var resp servers.Response
	if err := t.ctx.Err(); err != nil {
		// Expired during the injected chaos delay: answer
		// deterministically instead of racing the handler against
		// the interpreter's cancellation poll (a short handler
		// could finish before the first poll and mask the expiry).
		// Control falls through to the chaos kill check below —
		// overlapping kill and delay cadences must not mask each
		// other.
		e.timeouts.Add(1)
		resp = servers.Response{Outcome: fo.OutcomeDeadline, Err: err}
	} else {
		if clock == nil {
			// Hot-swap recycle point: between requests, so the retiring
			// instance has no work in flight, and before execution, so
			// this request is already served by the new program.
			if inst = e.maybeRecycle(inst, instGen); inst == nil {
				return nil // engine closed while replacing the instance
			}
		} else if be, ok := inst.(batchEpocher); ok {
			// (Re-)arm the batch checkpoint epoch: idempotent while open,
			// and restores it after a rewind consumed it or a crash
			// replaced the instance mid-batch.
			be.BeginBatch()
		}
		var t0 time.Time
		if clock != nil {
			t0 = *clock
		} else {
			t0 = time.Now()
		}
		resp = e.execute(inst, t)
		now := time.Now()
		if clock != nil {
			*clock = now
		}
		d := now.Sub(t0)
		e.latency.record(d)
		if e.q != nil {
			e.q.observe(d)
		}
		e.served.Add(1)
		switch resp.Outcome {
		case fo.OutcomeDeadline:
			e.timeouts.Add(1)
		case fo.OutcomeRewound:
			// Rewound requests release their slot and feed the
			// latency/served accounting exactly like any executed
			// request; the instance survives (Crashed() is false).
			e.rewound.Add(1)
		}
	}
	t.resp <- taskResult{resp: resp}
	killed := false
	if c := e.o.chaos; c.KillEvery > 0 && seq > 0 && seq%c.KillEvery == 0 {
		if k, ok := inst.(interface{ Kill() }); ok {
			k.Kill()
			e.chaosKills.Add(1)
			killed = true
		}
	}
	if resp.Crashed() || !inst.Alive() {
		if resp.Crashed() || !killed {
			// Organic crash: count it and grow the backoff. A
			// chaos kill takes the same retire/respawn path but
			// is accounted separately and respawns immediately.
			e.crashes.Add(1)
			*consecutive++
		}
		e.retireLog(inst.Log())
		releaseInstance(inst)
		*instGen = e.gen.Load()
		inst = e.respawn(consecutive)
		if inst == nil {
			return nil // engine closed while backing off
		}
	} else if resp.Outcome == fo.OutcomeOK {
		*consecutive = 0
	}
	return inst
}

// maybeRecycle replaces inst when a Recycle has bumped the engine's
// instance generation since inst was created: the healthy old instance is
// retired (its telemetry folded into the aggregate, its pooled memory
// released) and a fresh instance — warm spare of the current generation or
// cold spawn — takes its place. Called between requests, so the swap never
// interrupts in-flight work. Returns inst unchanged when the generation is
// current, and nil when the engine closed mid-replacement.
func (e *Engine) maybeRecycle(inst servers.Instance, instGen *uint64) servers.Instance {
	if e.gen.Load() == *instGen {
		return inst
	}
	e.retireLog(inst.Log())
	releaseInstance(inst)
	for {
		// Read the generation before creating, so a swap racing the spawn
		// can only make this replacement look stale (recycled again on the
		// next request), never current-but-old.
		*instGen = e.gen.Load()
		if ni, ok := e.takeSpare(); ok {
			e.recycles.Add(1)
			e.adoptLog(ni.Log())
			return ni
		}
		ni, err := e.srv.New(e.mode)
		if err == nil {
			e.recycles.Add(1)
			e.adoptLog(ni.Log())
			return ni
		}
		if !e.sleep(e.o.backoffBase) {
			return nil
		}
	}
}

// execute runs one task on inst under a context that is canceled either by
// the task's own deadline or by engine shutdown, so a stuck request never
// pins a worker past Close.
func (e *Engine) execute(inst servers.Instance, t *task) servers.Response {
	if t.ctx.Done() == nil {
		// The task context can never cancel (no caller cancellation, no
		// deadline), so the composite "task or shutdown" context is the
		// engine's own closing context — skip the per-request WithCancel +
		// AfterFunc wiring, which costs two allocations and a cancellation
		// subscription on the small-op hot path.
		return inst.HandleContext(e.closing, t.req)
	}
	ctx, cancel := context.WithCancel(t.ctx)
	defer cancel()
	stop := context.AfterFunc(e.closing, cancel)
	defer stop()
	return inst.HandleContext(ctx, t.req)
}

// respawn replaces a crashed instance, applying capped exponential backoff
// between consecutive crashes and tripping the circuit breaker on a restart
// storm. It returns nil when the engine closes while waiting.
func (e *Engine) respawn(consecutive *int) servers.Instance {
	// A pre-warmed spare replaces the crashed child with no in-line
	// creation cost and no backoff: the spawn already happened off the
	// serving path. When crashes outpace the filler the channel is empty
	// and replacement falls through to the cold path below.
	if inst, ok := e.takeSpare(); ok {
		e.restarts.Add(1)
		e.adoptLog(inst.Log())
		return inst
	}
	// The breaker-open gauge covers the whole park-to-replacement window:
	// raised at the trip, held through half-open retries, dropped when this
	// worker produces an instance (or the engine closes) — so Tripped()
	// reads true for exactly as long as this worker cannot serve.
	tripped := false
	defer func() {
		if tripped {
			e.breakerOpen.Add(-1)
		}
	}()
	for {
		switch {
		case e.o.breakerAfter > 0 && *consecutive >= e.o.breakerAfter:
			// Restart storm: stop hot-restarting, park for the cooldown,
			// then half-open — try one fresh instance. The gauge is raised
			// before the trip counter so an observer that sees the counter
			// move (Stats) is guaranteed to see Tripped() — the router's
			// rebalancer keys off exactly that ordering.
			if !tripped {
				tripped = true
				e.breakerOpen.Add(1)
			}
			e.trips.Add(1)
			if !e.sleep(e.o.breakerCool) {
				return nil
			}
			*consecutive = 1
		case *consecutive > 1:
			if !e.sleep(e.backoff(*consecutive)) {
				return nil
			}
		}
		inst, err := e.srv.New(e.mode)
		if err != nil {
			*consecutive++
			continue
		}
		e.restarts.Add(1)
		e.adoptLog(inst.Log())
		return inst
	}
}

// backoff returns the delay before the k-th consecutive restart:
// min(base<<(k-2), max) — the first restart after an isolated crash is
// immediate (the paper's pool regenerates children eagerly), the second
// waits base, doubling up to the cap.
func (e *Engine) backoff(k int) time.Duration {
	shift := uint(k - 2)
	if shift > 20 {
		return e.o.backoffMax
	}
	d := e.o.backoffBase << shift
	if d <= 0 || d > e.o.backoffMax {
		d = e.o.backoffMax
	}
	return d
}

// sleep waits for d, returning false if the engine closed first.
func (e *Engine) sleep(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-e.closing.Done():
		return false
	}
}
