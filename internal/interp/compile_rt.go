package interp

// Runtime support for the compiled engine: the call protocol and the
// per-machine mutable state the immutable IR indexes into (provenance
// site caches, builtin slots). These mirror callFunction/execBody/
// findUnitAt byte-for-byte in observable behavior — outcomes, event
// logs, and simulated cycles.

import (
	"focc/internal/cc/token"
	"focc/internal/cc/types"
	"focc/internal/core"
	"focc/internal/mem"
)

// callCompiled pushes a frame, binds parameters, runs the lowered body,
// and pops the frame — the compiled analogue of callFunction, using the
// frame spec built at lowering time instead of the per-machine cache.
func (m *Machine) callCompiled(cf *compiledFunc, args []Value, pos token.Pos) Value {
	m.step()
	fd := cf.fd
	if len(args) != len(fd.Params) {
		m.failf(pos, "call of %q with %d args (want %d)", fd.Name, len(args), len(fd.Params))
	}
	frame, fault := m.as.PushFrame(cf.spec.canary, fd.FrameSize, cf.spec.locals)
	if fault != nil {
		m.fail(fault)
	}
	for i, p := range fd.Params {
		v := m.convert(args[i], p.Type, pos)
		var u *mem.Unit
		if idx := cf.paramIdx[i]; idx >= 0 {
			u = frame.LocalAt(idx)
		} else {
			u = frame.Local(p.FrameOff)
		}
		m.storeRaw(u, 0, p.Type, v)
	}
	savedRet, savedFrame := m.retVal, m.frame
	m.retVal = Value{}
	m.frame = frame
	ctl := m.execCompiledBody(cf)
	if ctl == ctrlGoto {
		m.failf(fd.Body.Pos(), "goto label %q not found on execution path", m.gotoLabel)
	}
	ret := m.retVal
	m.retVal, m.frame = savedRet, savedFrame
	if fault := m.as.PopFrame(frame); fault != nil {
		// Stack smash detected at return — only possible in Standard mode.
		m.fail(fault)
	}
	if cf.retVoid {
		return Value{T: types.VoidType}
	}
	if ret.T == nil {
		// Fell off the end without a return value: indeterminate in C;
		// supply 0.
		return Value{T: cf.retT}
	}
	return m.convert(ret, cf.retT, pos)
}

// execCompiledBody runs a lowered function body with the TxTerm policy's
// function-boundary recovery (see execBody).
func (m *Machine) execCompiledBody(cf *compiledFunc) (ctl ctrl) {
	if m.acc.Mode() != core.TxTerm {
		return cf.body(m)
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ep, ok := r.(execPanic)
		if !ok {
			panic(r)
		}
		if _, isAbort := ep.err.(*core.FuncAbort); isAbort {
			m.retVal = Value{}
			ctl = ctrlReturn
			return
		}
		panic(r)
	}()
	return cf.body(m)
}

// findUnitSite resolves addr through the compiled site's lookup cache —
// the slice-indexed analogue of findUnitAt's map keyed by AST node. A
// negative site id means "no dedicated cache" (machine-wide cache only).
func (m *Machine) findUnitSite(sid int32, addr uint64) *mem.Unit {
	if sid < 0 {
		return m.FindUnit(addr)
	}
	c := &m.csite[sid]
	if u := m.as.Probe(c, addr); u != nil {
		return u
	}
	u := m.FindUnit(addr)
	m.as.FillCache(c, u)
	return u
}

// builtinAt resolves the builtin for a compile-time call-site slot,
// memoizing per machine so repeated calls skip the map lookup.
func (m *Machine) builtinAt(slot int, name string, pos token.Pos) BuiltinFunc {
	if impl := m.builtinSlots[slot]; impl != nil {
		return impl
	}
	impl, ok := m.builtins[name]
	if !ok {
		m.failf(pos, "builtin %q has no host implementation", name)
	}
	m.builtinSlots[slot] = impl
	return impl
}
