// Package mc models Midnight Commander 4.5.55's tgz symbolic-link
// vulnerability [5]: converting absolute symlinks in a tgz archive to
// relative links builds the relative name with strcat in a stack buffer
// that is never initialized, so the component names of successive links
// accumulate; when their combined length exceeds the buffer, strcat writes
// beyond its end. The subsequent VFS lookup always fails — an anticipated
// case MC displays as a dangling link (paper §4.5.2).
//
// The package also models the paper's §4.5.4 observation: a blank line in
// the configuration file triggers a memory error that completely disables
// the Bounds Check version until the blank lines are removed.
package mc

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"focc/fo"
	"focc/internal/cc/token"
	"focc/internal/core"
	"focc/internal/interp"
	"focc/internal/servers"
)

// Source is the Midnight Commander model's C code.
const Source = `
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

#define MC_MAXPATHLEN 128

char status_msg[256];
char copy_store[1048576];
int  copy_used = 0;

/* host VFS */
int tgz_link_target(int idx, char *buf, int bufsize);
int vfs_lookup(const char *path);
int vfs_read_chunk(const char *path, int off, char *buf, int n);
int vfs_unlink(const char *path);
int vfs_rename(const char *from, const char *to);
int vfs_mkdir(const char *path);

/* Convert absolute symlinks in a tgz archive to relative links.
   BUG (mc 4.5.55 [5]): buf is never initialized and never reset, so the
   component names of all links accumulate; enough links overflow it. */
int mc_process_tgz_links(int nlinks)
{
	int i, rc, dangling = 0;
	char name[64];
	char buf[MC_MAXPATHLEN];     /* never initialized */
	for (i = 0; i < nlinks; i++) {
		rc = tgz_link_target(i, name, (int)(sizeof(name)));
		if (rc != 0)
			continue;
		strcat(buf, "../");
		strcat(buf, name);
		if (vfs_lookup(buf) != 0)
			dangling++;          /* anticipated: shown as dangling link */
	}
	snprintf(status_msg, sizeof(status_msg), "%d links, %d dangling", nlinks, dangling);
	return dangling;
}

/* Parse one config line "key=value". BUG (paper 4.5.4): on a blank line
   (len == 0), the continuation check reads line[-1]. */
static int mc_config_line(const char *line, int len)
{
	char key[64];
	int i = 0, k = 0;
	if (line[len - 1] == '\\')
		return -2;               /* continuation line */
	if (len == 0)
		return -1;               /* blank */
	while (i < len && line[i] != '=') {
		if (k < (int)(sizeof(key)) - 1)
			key[k++] = line[i];
		i++;
	}
	if (i >= len)
		return -1;               /* no '=': ignored */
	key[k] = '\0';
	return 0;
}

int mc_load_config(const char *cfg)
{
	char line[128];
	int i = 0, k, rc, ok = 0;
	while (cfg[i] != '\0') {
		k = 0;
		while (cfg[i] != '\0' && cfg[i] != '\n') {
			if (k < (int)(sizeof(line)) - 1)
				line[k++] = cfg[i];
			i++;
		}
		if (cfg[i] == '\n')
			i++;
		line[k] = '\0';
		rc = mc_config_line(line, k);
		if (rc == 0)
			ok++;
	}
	return ok;
}

/* Copy a file: chunked bulk copy with per-chunk verification over the
   chunk header region (the Copy request of Figure 5). */
int mc_copy_file(const char *path, int size)
{
	char chunk[4096];
	int off = 0, n, i;
	unsigned int sum = 0;
	if (size > (int)(sizeof(copy_store)))
		size = sizeof(copy_store);
	while (off < size) {
		n = size - off;
		if (n > (int)(sizeof(chunk)))
			n = sizeof(chunk);
		n = vfs_read_chunk(path, off, chunk, n);
		if (n <= 0)
			break;
		for (i = 0; i < n && i < 160; i++)
			sum = sum * 31u + (unsigned char) chunk[i];
		memcpy(&copy_store[off], chunk, (size_t) n);
		off += n;
	}
	copy_used = off;
	snprintf(status_msg, sizeof(status_msg), "copied %d bytes of %s (sum %u)",
	         off, path, sum);
	return off;
}

/* Validate a path: per-character scan rejecting control characters and
   collapsing duplicate slashes into the canonical form. */
static int validate_path(const char *path, char *out, int outlen)
{
	int i = 0, o = 0;
	int prev_slash = 0;
	while (path[i] != '\0') {
		char c = path[i];
		if (c < 0x20)
			return -1;
		if (c == '/') {
			if (!prev_slash && o < outlen - 1)
				out[o++] = c;
			prev_slash = 1;
		} else {
			prev_slash = 0;
			if (o < outlen - 1)
				out[o++] = c;
		}
		i++;
	}
	out[o] = '\0';
	return o;
}

int mc_move_file(const char *from, const char *to)
{
	char cfrom[MC_MAXPATHLEN], cto[MC_MAXPATHLEN];
	if (validate_path(from, cfrom, (int)(sizeof(cfrom))) < 0)
		return -1;
	if (validate_path(to, cto, (int)(sizeof(cto))) < 0)
		return -1;
	return vfs_rename(cfrom, cto);
}

int mc_mkdir(const char *path)
{
	char cpath[MC_MAXPATHLEN];
	char display[MC_MAXPATHLEN * 2];
	int n, i, o = 0;
	n = validate_path(path, cpath, (int)(sizeof(cpath)));
	if (n < 0)
		return -1;
	/* build the "Directory <x> created" status one character at a time */
	for (i = 0; i < n; i++) {
		display[o++] = cpath[i];
		if (cpath[i] == '/')
			display[o++] = ' ';
	}
	display[o] = '\0';
	snprintf(status_msg, sizeof(status_msg), "mkdir %s", display);
	return vfs_mkdir(cpath);
}

int mc_delete_file(const char *path)
{
	return vfs_unlink(path);
}
`

var (
	compileOnce sync.Once
	prog        *fo.Program
	compileErr  error
)

// Program returns the compiled Midnight Commander program.
func Program() (*fo.Program, error) {
	compileOnce.Do(func() {
		prog, compileErr = fo.Compile("mc.c", Source)
	})
	return prog, compileErr
}

// Server is the Midnight Commander model: a compiled program plus a
// host-side virtual filesystem and the currently opened tgz archive.
type Server struct {
	FS    map[string][]byte
	Links []string // component names of the opened archive's symlinks
}

// NewServer returns an MC server with a populated virtual filesystem.
func NewServer() *Server {
	fs := map[string][]byte{
		"/home/user/notes.txt": []byte("some notes\n"),
		"/home/user/big.dat":   []byte(strings.Repeat("Z", 256*1024)),
		"/tmp/small.dat":       []byte(strings.Repeat("y", 3*1024)),
	}
	return &Server{FS: fs}
}

// Name implements servers.Server.
func (s *Server) Name() string { return "mc" }

// Instance is one MC process.
type Instance struct {
	servers.Base
	srv *Server
}

// New implements servers.Server.
func (s *Server) New(mode fo.Mode) (servers.Instance, error) {
	return s.NewWithConfig(mode, nil)
}

// NewWithConfig implements servers.Configurable.
func (s *Server) NewWithConfig(mode fo.Mode, hook servers.ConfigHook) (servers.Instance, error) {
	p, err := Program()
	if err != nil {
		return nil, err
	}
	log := fo.NewEventLog(0)
	cfg := fo.MachineConfig{
		Mode: mode,
		Log:  log,
		Builtins: map[string]interp.BuiltinFunc{
			"tgz_link_target": s.tgzLinkTarget,
			"vfs_lookup":      s.vfsLookup,
			"vfs_read_chunk":  s.vfsReadChunk,
			"vfs_unlink":      s.vfsUnlink,
			"vfs_rename":      s.vfsRename,
			"vfs_mkdir":       s.vfsMkdir,
		},
	}
	if hook != nil {
		hook(&cfg)
	}
	m, err := p.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	return &Instance{
		Base: servers.Base{ServerName: "mc", M: m, EvLog: log},
		srv:  s,
	}, nil
}

func (s *Server) tgzLinkTarget(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	idx := int(args[0].I)
	if idx < 0 || idx >= len(s.Links) {
		return interp.Int(-1)
	}
	name := s.Links[idx]
	n := int(args[2].I)
	if len(name) > n-1 {
		name = name[:n-1]
	}
	b := append([]byte(name), 0)
	m.AddressSpace().RawWrite(args[1].Ptr.Addr, b)
	return interp.Int(0)
}

// readGuestString reads a C string through the machine's checked access
// path, so failure-oblivious reads of a corrupted path see manufactured
// values exactly as instrumented code would.
func readGuestString(m *interp.Machine, v interp.Value, pos token.Pos) string {
	var out []byte
	for i := int64(0); i < 4096; i++ {
		var b [1]byte
		m.LoadBytes(offPtr(v, i), b[:], pos)
		if b[0] == 0 {
			break
		}
		out = append(out, b[0])
	}
	return string(out)
}

func offPtr(v interp.Value, i int64) core.Pointer {
	p := v.Ptr
	p.Addr += uint64(i)
	return p
}

func (s *Server) vfsLookup(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	path := readGuestString(m, args[0], pos)
	if _, ok := s.FS[path]; ok {
		return interp.Int(0)
	}
	return interp.Int(-1)
}

func (s *Server) vfsReadChunk(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	path := readGuestString(m, args[0], pos)
	off := int(args[1].I)
	n := int(args[3].I)
	content, ok := s.FS[path]
	if !ok || off >= len(content) {
		return interp.Int(-1)
	}
	chunk := content[off:]
	if len(chunk) > n {
		chunk = chunk[:n]
	}
	m.AddressSpace().RawWrite(args[2].Ptr.Addr, chunk)
	m.ChargeCycles(uint64(len(chunk))/8 + 2_500) // device + kernel copy
	return interp.Int(int64(len(chunk)))
}

func (s *Server) vfsUnlink(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	path := readGuestString(m, args[0], pos)
	if _, ok := s.FS[path]; !ok {
		m.ChargeCycles(30_000) // unlink(2) incl. metadata work
		return interp.Int(-1)
	}
	delete(s.FS, path)
	m.ChargeCycles(30_000)
	return interp.Int(0)
}

func (s *Server) vfsRename(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	m.ChargeCycles(2_000) // rename(2)
	from := readGuestString(m, args[0], pos)
	to := readGuestString(m, args[1], pos)
	content, ok := s.FS[from]
	if !ok {
		return interp.Int(-1)
	}
	delete(s.FS, from)
	s.FS[to] = content
	return interp.Int(0)
}

func (s *Server) vfsMkdir(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	path := readGuestString(m, args[0], pos)
	if path == "" {
		return interp.Int(-1)
	}
	s.FS[path+"/"] = nil
	m.ChargeCycles(2_000) // mkdir(2)
	return interp.Int(0)
}

// Handle implements servers.Instance. Ops: open-tgz (Arg = comma-separated
// link components), config (Payload = config text), copy, move (Arg =
// "from:to"), mkdir, delete.
func (inst *Instance) Handle(req servers.Request) servers.Response {
	switch req.Op {
	case "open-tgz":
		inst.srv.Links = nil
		if req.Arg != "" {
			inst.srv.Links = strings.Split(req.Arg, ",")
		}
		res := inst.M.Call("mc_process_tgz_links", fo.Int(int64(len(inst.srv.Links))))
		return inst.ResponseFromResult(res, "status_msg")
	case "config":
		return inst.ResponseFromResult(inst.CallString("mc_load_config", req.Payload), "")
	case "copy":
		size := len(inst.srv.FS[req.Arg])
		s := inst.M.NewCString(req.Arg)
		res := inst.M.Call("mc_copy_file", s, fo.Int(int64(size)))
		return inst.ResponseFromResult(res, "status_msg")
	case "move":
		parts := strings.SplitN(req.Arg, ":", 2)
		if len(parts) != 2 {
			return servers.Response{Outcome: fo.OutcomeOK, Status: -1, Body: "bad move"}
		}
		from := inst.M.NewCString(parts[0])
		to := inst.M.NewCString(parts[1])
		return inst.ResponseFromResult(inst.M.Call("mc_move_file", from, to), "")
	case "mkdir":
		return inst.ResponseFromResult(inst.CallString("mc_mkdir", req.Arg), "status_msg")
	case "delete":
		return inst.ResponseFromResult(inst.CallString("mc_delete_file", req.Arg), "")
	default:
		return servers.Response{Outcome: fo.OutcomeOK, Status: -1,
			Body: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// HandleContext implements servers.Instance: Handle with ctx bound to the
// machine for per-request cancellation, and the memory-error events the
// request causes attributed into Response.MemErrors.
func (inst *Instance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
	defer inst.BindContext(ctx)()
	return inst.Attribute(func() servers.Response { return inst.Handle(req) })
}

// LegitRequests implements servers.Server (the Figure 5 workloads).
func (s *Server) LegitRequests() []servers.Request {
	return []servers.Request{
		{Op: "copy", Arg: "/home/user/big.dat"},
		{Op: "move", Arg: "/home/user/notes.txt:/tmp/notes.txt"},
		{Op: "mkdir", Arg: "/home/user//new//dir"},
		{Op: "delete", Arg: "/tmp/small.dat"},
	}
}

// AttackRequest implements servers.Server: a tgz archive whose symlink
// component names sum to far more than MC_MAXPATHLEN.
func (s *Server) AttackRequest() servers.Request {
	parts := make([]string, 25)
	for i := range parts {
		parts[i] = fmt.Sprintf("component-%04d", i)
	}
	return servers.Request{Op: "open-tgz", Arg: strings.Join(parts, ",")}
}

// BlankConfig returns a configuration file containing blank lines (the
// paper's §4.5.4 trigger).
func BlankConfig() string {
	return "color=base\n\nconfirm_delete=1\n\nshow_hidden=0\n"
}
