package inject

// Campaign-driven search over per-site manufactured-value assignments
// (fo.ModeFOContext, internal/strategy). For each server the search samples
// fault points exactly like the campaign, keeps the oob-read points (the
// only class whose invalid reads consume manufactured values), and
// hill-climbs over per-site strategy assignments: starting from the better
// of the global small-integer baseline and the context-informed default, it
// sweeps every touched site through the strategy catalog and accepts only
// strict improvements, so the reported best assignment's survival can never
// fall below the paper's global-sequence baseline.
//
// Determinism contract: points are sampled from one PRNG seeded by the
// plan, evaluation consumes no further randomness (every strategy in the
// search catalog is deterministic), candidate order is fixed (sites
// ascending, strategies in catalog order), and the report is structs-only —
// two runs of the same (seed, plan) produce byte-identical JSON.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"focc/fo"
	"focc/internal/servers/registry"
	"focc/internal/strategy"
)

// SearchPlan describes one strategy-search run.
type SearchPlan struct {
	// Seed seeds the fault-point sampling PRNG (same role as Plan.Seed).
	Seed int64
	// Faults is the number of fault points sampled per server before
	// filtering to oob-read (default 40, like the campaign).
	Faults int
	// MaxSteps is the per-call step budget (default 2,000,000).
	MaxSteps uint64
	// Servers restricts the search to the named targets (nil = all).
	Servers []string
	// Budget caps candidate evaluations per server (default 200); the
	// climb stops early when it is exhausted.
	Budget int
}

// SearchCell aggregates one assignment's outcomes over a server's oob-read
// fault points.
type SearchCell struct {
	Survived     int
	Terminated   int
	Corrupted    int
	Deadline     int
	SurvivalRate float64
}

// SiteStrategy is one row of a reported assignment: a touched site, its
// static class, and the strategy the assignment gives it.
type SiteStrategy struct {
	Site     int32
	Class    string
	Strategy strategy.Strategy
}

// SearchStep records one accepted hill-climb move.
type SearchStep struct {
	Site     int32
	From, To strategy.Strategy
	Survived int

	Corrupted int
}

// SearchServerReport is the search result for one server.
type SearchServerReport struct {
	Server string
	// Points is the number of oob-read fault points every candidate is
	// evaluated on; Sites is the server's classified load-site count.
	Points int
	Sites  int
	// Baseline is the paper's global small-integer sequence (uniform
	// smallint assignment); Default is the context-informed default
	// assignment; Best is the searched assignment.
	Baseline SearchCell
	Default  SearchCell
	Best     SearchCell
	// BestAssignment lists the searched strategy of every touched site
	// (sites that never manufacture keep the default and are omitted).
	BestAssignment []SiteStrategy
	// Steps is the accepted-move history; Evaluations counts candidate
	// evaluations including baseline and default.
	Steps       []SearchStep `json:",omitempty"`
	Evaluations int
}

// SearchReport is the machine-readable search result; structs only, so its
// JSON encoding is deterministic.
type SearchReport struct {
	Seed    int64
	Faults  int
	Servers []SearchServerReport
}

// JSON renders the report as indented JSON with a trailing newline. Same
// report, same bytes.
func (r *SearchReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// score orders candidates: availability first (the paper's survival
// metric: the server still answers), full correctness as the tie-break.
func (c SearchCell) score() [2]int {
	return [2]int{c.Survived + c.Corrupted, c.Survived}
}

func better(a, b SearchCell) bool {
	sa, sb := a.score(), b.score()
	return sa[0] > sb[0] || (sa[0] == sb[0] && sa[1] > sb[1])
}

// searcher is the per-server search state.
type searcher struct {
	t        Target
	table    *strategy.Table
	points   []PointSpec
	prof     []profileInfo
	maxSteps uint64
	twins    map[twinKey]twin
	evals    int
	budget   int
}

// evaluate runs every oob-read point under ModeFOContext with the
// assignment and tallies the outcomes. Each point gets a fresh engine (the
// ValueGenerator contract: one engine per instance); touched sites are
// accumulated into touched.
func (s *searcher) evaluate(assign strategy.Assignment, touched map[int32]bool) (SearchCell, error) {
	var cell SearchCell
	s.evals++
	for _, spec := range s.points {
		eng := strategy.NewEngine(s.table, assign, nil)
		res, err := runPoint(s.t, fo.ModeFOContext, spec, s.prof[spec.Req], s.maxSteps, eng, s.twins)
		if err != nil {
			return cell, err
		}
		switch res.Outcome {
		case OutcomeSurvived:
			cell.Survived++
		case OutcomeTerminated:
			cell.Terminated++
		case OutcomeCorrupted:
			cell.Corrupted++
		case OutcomeDeadline:
			cell.Deadline++
		}
		if touched != nil {
			for _, site := range eng.TouchedSites() {
				touched[site] = true
			}
		}
	}
	if len(s.points) > 0 {
		cell.SurvivalRate = float64(cell.Survived+cell.Corrupted) / float64(len(s.points))
	}
	return cell, nil
}

// Search runs the strategy search described by plan over targets (use
// AllTargets() for the paper's five servers).
func Search(plan SearchPlan, targets []Target) (*SearchReport, error) {
	if plan.Faults <= 0 {
		plan.Faults = 40
	}
	if plan.MaxSteps == 0 {
		plan.MaxSteps = 2_000_000
	}
	if plan.Budget <= 0 {
		plan.Budget = 200
	}
	selected, err := selectTargets(plan.Servers, targets)
	if err != nil {
		return nil, err
	}
	rep := &SearchReport{Seed: plan.Seed, Faults: plan.Faults}
	rng := rand.New(rand.NewSource(plan.Seed))
	for _, t := range selected {
		srvRep, err := searchServer(t, plan, rng)
		if err != nil {
			return nil, err
		}
		rep.Servers = append(rep.Servers, srvRep)
	}
	return rep, nil
}

func searchServer(t Target, plan SearchPlan, rng *rand.Rand) (SearchServerReport, error) {
	rep := SearchServerReport{Server: t.Name}

	prog, err := registry.Program(t.Name)
	if err != nil {
		return rep, err
	}
	table := strategy.Classify(prog.Sema())
	rep.Sites = len(table.Sites)

	// Sample fault points exactly like the campaign (same profiling, same
	// draw sequence), then keep the oob-read points: the manufactured-value
	// strategy only matters where invalid reads happen.
	probe := t.New().LegitRequests()
	prof := make([]profileInfo, len(probe))
	for r := range probe {
		if prof[r], err = profileRequest(t, r, plan.MaxSteps); err != nil {
			return rep, err
		}
	}
	var points []PointSpec
	for _, spec := range samplePoints(rng, plan.Faults, prof) {
		if spec.Class == OOBRead {
			points = append(points, spec)
		}
	}
	rep.Points = len(points)

	s := &searcher{
		t: t, table: table, points: points, prof: prof,
		maxSteps: plan.MaxSteps, twins: make(map[twinKey]twin),
		budget: plan.Budget,
	}

	// Evaluate the two anchors: the paper's global sequence and the
	// context-informed default. Touched sites are collected from both runs;
	// the climb restricts itself to sites that actually manufacture values
	// (changing an untouched site's strategy cannot change any outcome).
	touched := map[int32]bool{}
	baseAssign := strategy.UniformAssignment(table, strategy.SmallInt)
	if rep.Baseline, err = s.evaluate(baseAssign, touched); err != nil {
		return rep, err
	}
	defAssign := strategy.DefaultAssignment(table, strategy.SmallInt)
	if rep.Default, err = s.evaluate(defAssign, touched); err != nil {
		return rep, err
	}

	best, bestCell := baseAssign, rep.Baseline
	if better(rep.Default, rep.Baseline) {
		best, bestCell = defAssign, rep.Default
	}

	sites := make([]int32, 0, len(touched))
	for site := range touched {
		sites = append(sites, site)
	}
	sortInt32(sites)

	// Greedy first-improvement hill-climb: sweep touched sites (ascending)
	// through the strategy catalog until a full pass accepts nothing or the
	// evaluation budget runs out.
	for improved := true; improved; {
		improved = false
		for _, site := range sites {
			for _, strat := range strategy.All() {
				if strat == best[site] {
					continue
				}
				if s.evals >= s.budget {
					improved = false
					break
				}
				cand := make(strategy.Assignment, len(best))
				copy(cand, best)
				cand[site] = strat
				cell, err := s.evaluate(cand, nil)
				if err != nil {
					return rep, err
				}
				if better(cell, bestCell) {
					rep.Steps = append(rep.Steps, SearchStep{
						Site: site, From: best[site], To: strat,
						Survived: cell.Survived, Corrupted: cell.Corrupted,
					})
					best, bestCell = cand, cell
					improved = true
				}
			}
			if s.evals >= s.budget {
				break
			}
		}
		if s.evals >= s.budget {
			break
		}
	}

	rep.Best, rep.Evaluations = bestCell, s.evals
	for _, site := range sites {
		rep.BestAssignment = append(rep.BestAssignment, SiteStrategy{
			Site:     site,
			Class:    table.Sites[site].Class.String(),
			Strategy: best[site],
		})
	}
	return rep, nil
}

// sortInt32 sorts ascending (insertion sort; the touched-site sets are
// small).
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FormatSearchReport renders the human summary table.
func FormatSearchReport(r *SearchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy search: seed=%d faults=%d/server (oob-read points only)\n", r.Seed, r.Faults)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "server\tpoints\tbaseline\tdefault\tbest\tevals\tassignment")
	for _, s := range r.Servers {
		var parts []string
		for _, a := range s.BestAssignment {
			parts = append(parts, fmt.Sprintf("%d:%s=%s", a.Site, a.Class, a.Strategy))
		}
		if parts == nil {
			parts = []string{"-"}
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%d\t%s\n",
			s.Server, s.Points, 100*s.Baseline.SurvivalRate,
			100*s.Default.SurvivalRate, 100*s.Best.SurvivalRate,
			s.Evaluations, strings.Join(parts, " "))
	}
	w.Flush()
	return b.String()
}
