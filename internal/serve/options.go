package serve

import "time"

// Option configures an Engine (the functional-options constructor of the
// serving API: WithPoolSize, WithQueueDepth, WithDeadline, WithBackoff,
// WithBreaker).
type Option func(*options)

type options struct {
	poolSize   int
	queueDepth int
	deadline   time.Duration

	backoffBase time.Duration
	backoffMax  time.Duration

	breakerAfter int
	breakerCool  time.Duration

	warmSpares int

	chaos ChaosConfig
}

func defaultOptions() options {
	return options{
		poolSize:     4,
		queueDepth:   64,
		deadline:     0, // no per-request deadline unless configured
		backoffBase:  time.Millisecond,
		backoffMax:   250 * time.Millisecond,
		breakerAfter: 8,
		breakerCool:  500 * time.Millisecond,
		warmSpares:   0, // no pre-warmed replacements unless configured
	}
}

// WithPoolSize sets the number of worker instances ("child processes");
// n <= 0 keeps the default of 4.
func WithPoolSize(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.poolSize = n
		}
	}
}

// WithQueueDepth bounds the admission queue: a Submit arriving while the
// queue holds n requests is rejected with ErrQueueFull (backpressure)
// instead of queuing without bound. n <= 0 keeps the default of 64.
func WithQueueDepth(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.queueDepth = n
		}
	}
}

// WithDeadline sets the default per-request deadline, covering queue wait
// plus execution. A request exceeding it gets a response with
// fo.OutcomeDeadline; the serving instance survives. d <= 0 disables the
// default deadline (a caller-supplied context can still cancel).
func WithDeadline(d time.Duration) Option {
	return func(o *options) { o.deadline = d }
}

// WithBackoff sets the capped exponential backoff applied between
// consecutive restarts of a crashing instance: the k-th consecutive restart
// waits min(base<<(k-1), max). Non-positive arguments keep the defaults
// (1ms base, 250ms cap).
func WithBackoff(base, max time.Duration) Option {
	return func(o *options) {
		if base > 0 {
			o.backoffBase = base
		}
		if max > 0 {
			o.backoffMax = max
		}
	}
}

// WithWarmSpares keeps up to n pre-created instances on standby: when a
// worker's instance crashes it is replaced by a warm spare immediately
// (no in-line instance-creation cost and no backoff — the spawn already
// happened off the serving path, like Apache pre-forking children before
// they are needed). A background filler goroutine tops the standby set back
// up after each take; if crashes outpace it, replacement falls back to the
// usual cold spawn with backoff and breaker. Restarts are counted the same
// either way. n <= 0 disables warm spares (the default).
func WithWarmSpares(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.warmSpares = n
		}
	}
}

// ChaosConfig configures deterministic process-level fault injection at the
// serving layer. Injection is keyed to an engine-wide counter of executed
// requests — the n-th, 2n-th, 3n-th … request is hit — so a single-worker
// engine fed sequentially produces identical chaos on every run with no
// randomness at this layer (the fault-injection campaign picks the cadences
// from its seeded plan; see internal/inject).
type ChaosConfig struct {
	// KillEvery kills the serving instance after every n-th executed
	// request (the response is delivered first; the supervisor then
	// replaces the instance exactly as after a crash, but the kill is
	// counted as a chaos kill, not a crash, and does not grow the restart
	// backoff). 0 disables kill injection.
	KillEvery uint64
	// LatencyEvery delays every n-th executed request by Latency before
	// execution. With a per-request deadline configured, a Latency
	// exceeding the deadline deterministically trips it (the request
	// returns fo.OutcomeDeadline; the instance survives). 0 disables
	// latency injection.
	LatencyEvery uint64
	// Latency is the injected delay.
	Latency time.Duration
}

func (c ChaosConfig) enabled() bool { return c.KillEvery > 0 || c.LatencyEvery > 0 }

// WithChaos enables deterministic chaos injection (instance kills, handler
// latency) on the engine. The zero config disables it.
func WithChaos(c ChaosConfig) Option {
	return func(o *options) { o.chaos = c }
}

// WithBreaker configures the restart-storm circuit breaker: after
// consecutive crashes without an intervening successful response, the
// worker stops hot-restarting and parks for cooldown before trying a fresh
// instance (half-open). consecutive <= 0 disables the breaker.
func WithBreaker(consecutive int, cooldown time.Duration) Option {
	return func(o *options) {
		o.breakerAfter = consecutive
		if cooldown > 0 {
			o.breakerCool = cooldown
		}
	}
}
