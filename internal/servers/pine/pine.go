// Package pine models Pine 4.44's From-field processing vulnerability [10]:
// when Pine builds the message-index display it transfers each From field
// into a heap buffer, inserting a '\' before quoted characters. The length
// estimate fails to account for all characters the transfer escapes, so a
// From field with many escapable characters overflows the heap buffer. The
// error triggers while the mail folder loads — before the user can interact
// at all — which is why restarting the Standard or Bounds Check versions
// cannot help (paper §4.7).
package pine

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"focc/fo"
	"focc/internal/servers"
)

// Source is the Pine model's C code.
const Source = `
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

char index_line[1024];
char display_buf[16384];
char folder_store[262144];
int  folder_used = 0;

/* quote_from, modeled on Pine 4.44: the estimate pass counts only '"'
   characters, but the transfer pass escapes both '"' and '\\' — so a From
   field rich in backslashes overflows the allocation. */
static char *quote_from(const char *from)
{
	size_t len = strlen(from);
	size_t add = 0;
	size_t i;
	char *buf, *p;
	for (i = 0; i < len; i++)
		if (from[i] == '"')
			add++;
	buf = malloc(len + add + 1);
	p = buf;
	for (i = 0; i < len; i++) {
		char c = from[i];
		if (c == '"' || c == '\\')
			*p++ = '\\';
		*p++ = c;
	}
	*p = '\0';
	return buf;
}

/* Build the index line for one message (runs while the mailbox loads). */
int pine_index_message(const char *raw)
{
	char from[256];
	char *q;
	int i = 0, o = 0;
	int n;
	while (raw[i] != '\0') {
		if ((i == 0 || raw[i-1] == '\n') && strncmp(&raw[i], "From:", 5) == 0) {
			i += 5;
			while (raw[i] == ' ')
				i++;
			while (raw[i] != '\0' && raw[i] != '\n' && raw[i] != '\r' &&
			       o < (int)(sizeof(from)) - 1)
				from[o++] = raw[i++];
			break;
		}
		i++;
	}
	from[o] = '\0';
	q = quote_from(from);
	n = snprintf(index_line, sizeof(index_line), "  N  %s", q);
	free(q);
	return n;
}

/* Character translation tables (Pine performs charset mapping and
   control-character quoting on every displayed character). */
unsigned char qtab[256];
unsigned char xlat[256];
int tables_ready = 0;

static void init_tables(void)
{
	int i;
	for (i = 0; i < 256; i++) {
		qtab[i] = (unsigned char) i;
		xlat[i] = (unsigned char) i;
	}
	for (i = 0; i < 32; i++)
		if (i != '\n' && i != '\t')
			qtab[i] = '?';
	tables_ready = 1;
}

/* Display a selected message: per-character table-driven translation (the
   Read request of Figure 2). This path translates the From field
   correctly, matching the paper's observation that selecting the message
   shows the complete field. */
int pine_read_message(const char *raw)
{
	int i = 0, o = 0;
	unsigned char c;
	if (!tables_ready)
		init_tables();
	while ((c = (unsigned char) raw[i++]) != 0 &&
	       o < (int)(sizeof(display_buf)) - 2) {
		if (c == '\r')
			continue;
		display_buf[o++] = (char) xlat[qtab[c]];
	}
	display_buf[o] = '\0';
	return o;
}

char ruler[80];

/* Bring up the compose screen: field headers plus a 72-column fill
   template, built one character at a time through the translation tables
   (the Compose request). */
int pine_compose(const char *from_addr)
{
	int o = 0, row, col, i;
	char hdr[256];
	int n;
	if (!tables_ready)
		init_tables();
	for (i = 0; i < (int)(sizeof(ruler)) - 1; i++)
		ruler[i] = (i == 0) ? '>' : ' ';
	n = snprintf(hdr, sizeof(hdr),
	             "From    : %s\nTo      : \nCc      : \nAttchmnt: \nSubject : \n",
	             from_addr);
	for (i = 0; i < n && o < (int)(sizeof(display_buf)) - 2; i++)
		display_buf[o++] = (char) xlat[qtab[(unsigned char) hdr[i]]];
	for (row = 0; row < 40; row++) {
		for (col = 0; col < 72 && o < (int)(sizeof(display_buf)) - 2; col++)
			display_buf[o++] = (char) xlat[(unsigned char) ruler[col]];
		display_buf[o++] = '\n';
	}
	display_buf[o] = '\0';
	return o;
}

/* Move a message between folders: bulk copy (the Move request). */
int pine_move_message(const char *raw, int len)
{
	if (len > (int)(sizeof(folder_store)))
		len = sizeof(folder_store);
	memcpy(folder_store, raw, (size_t) len);
	folder_used = len;
	return len;
}
`

var (
	compileOnce sync.Once
	prog        *fo.Program
	compileErr  error
)

// Program returns the compiled Pine program.
func Program() (*fo.Program, error) {
	compileOnce.Do(func() {
		prog, compileErr = fo.Compile("pine.c", Source)
	})
	return prog, compileErr
}

// Server is the Pine model.
type Server struct{}

// NewServer returns a Pine server.
func NewServer() *Server { return &Server{} }

// Name implements servers.Server.
func (s *Server) Name() string { return "pine" }

// Instance is one Pine process.
type Instance struct {
	servers.Base
}

// New implements servers.Server.
func (s *Server) New(mode fo.Mode) (servers.Instance, error) {
	return s.NewWithConfig(mode, nil)
}

// NewWithConfig implements servers.Configurable.
func (s *Server) NewWithConfig(mode fo.Mode, hook servers.ConfigHook) (servers.Instance, error) {
	p, err := Program()
	if err != nil {
		return nil, err
	}
	log := fo.NewEventLog(0)
	cfg := fo.MachineConfig{Mode: mode, Log: log}
	if hook != nil {
		hook(&cfg)
	}
	m, err := p.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	return &Instance{Base: servers.Base{ServerName: "pine", M: m, EvLog: log}}, nil
}

// Handle implements servers.Instance. Ops: index (mailbox load of one
// message), read, compose, move.
func (inst *Instance) Handle(req servers.Request) servers.Response {
	switch req.Op {
	case "index":
		return inst.ResponseFromResult(inst.CallString("pine_index_message", req.Payload), "index_line")
	case "read":
		return inst.ResponseFromResult(inst.CallString("pine_read_message", req.Payload), "display_buf")
	case "compose":
		return inst.ResponseFromResult(inst.CallString("pine_compose", req.Arg), "display_buf")
	case "move":
		s := inst.M.NewCString(req.Payload)
		res := inst.M.Call("pine_move_message", s, fo.Int(int64(len(req.Payload))))
		return inst.ResponseFromResult(res, "")
	default:
		return servers.Response{Outcome: fo.OutcomeOK, Status: -1, Body: "unknown op"}
	}
}

// HandleContext implements servers.Instance: Handle with ctx bound to the
// machine for per-request cancellation, and the memory-error events the
// request causes attributed into Response.MemErrors.
func (inst *Instance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
	defer inst.BindContext(ctx)()
	return inst.Attribute(func() servers.Response { return inst.Handle(req) })
}

// LoadMailbox indexes every message, as Pine does at startup; it stops at
// the first crash (the Standard/BoundsCheck behaviour the paper describes:
// the user never reaches the UI).
func (inst *Instance) LoadMailbox(msgs []string) servers.Response {
	last := servers.Response{Outcome: fo.OutcomeOK}
	for _, raw := range msgs {
		last = inst.Handle(servers.Request{Op: "index", Payload: raw})
		if last.Crashed() {
			return last
		}
	}
	return last
}

// LegitRequests implements servers.Server (the Figure 2 workloads).
func (s *Server) LegitRequests() []servers.Request {
	return []servers.Request{
		{Op: "read", Payload: Message("carol@example.org", "status report")},
		{Op: "compose", Arg: "user@example.org"},
		{Op: "move", Payload: Message("carol@example.org", "archive me")},
	}
}

// AttackRequest implements servers.Server: a message whose From field is
// dense in backslashes, overflowing quote_from's undersized buffer.
func (s *Server) AttackRequest() servers.Request {
	return servers.Request{Op: "index", Payload: AttackMessage()}
}

// AttackMessage builds the malicious mail.
func AttackMessage() string {
	from := strings.Repeat("\\", 200) + "@evil.example"
	return "From: " + from + "\nSubject: hi\n\nbody\n"
}

// Message builds a legitimate message.
func Message(from, subject string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "From: %s\nSubject: %s\nDate: Mon, 5 Jul 2004\n\n", from, subject)
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "line %d of the body\n", i)
	}
	return sb.String()
}
