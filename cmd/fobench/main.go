// Command fobench regenerates the paper's evaluation tables and figures.
//
// Experiments (this block is rendered from the experiments table below and
// also printed by "fobench -experiment list"; a test keeps them in sync):
//
//	fobench -experiment all          # every experiment below except campaign and cluster
//	fobench -experiment fig2         # Pine request times (Figure 2)
//	fobench -experiment fig3         # Apache request times (Figure 3)
//	fobench -experiment fig4         # Sendmail request times (Figure 4)
//	fobench -experiment fig5         # Midnight Commander times (Figure 5)
//	fobench -experiment fig6         # Mutt request times (Figure 6)
//	fobench -experiment throughput   # Apache attack throughput (§4.3.2)
//	fobench -experiment loadtest     # concurrent §4.3.2 (serve.Engine pool)
//	fobench -experiment resilience   # security & resilience matrix (§4.*.2)
//	fobench -experiment variants     # boundless / redirect variants (§5.1)
//	fobench -experiment soak         # stability runs (§4.*.4)
//	fobench -experiment errlog       # per-mode memory-error event profiles (§3)
//	fobench -experiment propagation  # error propagation distance (§1.2)
//	fobench -experiment ablation     # manufactured-value sequence (§3)
//	fobench -experiment campaign     # seeded 4-way fault-injection campaign incl. rewind (internal/inject)
//	fobench -experiment strategysearch # per-site manufactured-value strategy search (fo-context)
//	fobench -experiment cluster      # sharded router goodput under open-loop overload
//	fobench -experiment list         # print this experiment table
//
// The -engine flag selects the execution engine behind every server
// machine (the simulated-cycle numbers are engine-independent by
// construction; only wall-clock -wall runs differ):
//
//	fobench -engine compiled         # compiled closure IR (default)
//	fobench -engine treewalk         # AST-walking reference engine
//	fobench -engine codegen          # ahead-of-time generated Go (internal/gencorpus)
//
// Profiling (any experiment, including "all"; a test keeps these lines in
// sync with the registered flags):
//
//	fobench -cpuprofile cpu.pprof    # CPU profile of the whole run, written on exit
//	fobench -memprofile mem.pprof    # heap profile written at exit
//
// Absolute times are from the Go interpreter, not the paper's 2004 testbed;
// the slowdown and ratio *shapes* are the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"focc/fo"
	_ "focc/internal/gencorpus" // registers the servers' generated engines (-engine codegen)
	"focc/internal/harness"
	"focc/internal/inject"
	"focc/internal/serve"
	"focc/internal/servers"
	"focc/internal/servers/registry"
)

// engineHook is the -engine selection, applied to every server machine
// configuration; nil means the default compiled closure-IR engine.
var engineHook servers.ConfigHook

// setEngine translates the -engine flag into engineHook.
func setEngine(name string) error {
	switch name {
	case "", "compiled":
		engineHook = nil
	case "treewalk":
		engineHook = func(cfg *fo.MachineConfig) { cfg.TreeWalk = true }
	case "codegen":
		engineHook = func(cfg *fo.MachineConfig) { cfg.UseGenerated = true }
	default:
		return fmt.Errorf("unknown engine %q (want treewalk, compiled, or codegen)", name)
	}
	return nil
}

// engineServer forces every instance of the wrapped server onto the
// selected engine; hooks from other tooling compose after the engine hook
// so they can still override generators or budgets.
type engineServer struct {
	servers.Server
	hook servers.ConfigHook
}

func (s engineServer) New(mode fo.Mode) (servers.Instance, error) {
	return s.NewWithConfig(mode, nil)
}

func (s engineServer) NewWithConfig(mode fo.Mode, hook servers.ConfigHook) (servers.Instance, error) {
	c, ok := s.Server.(servers.Configurable)
	if !ok {
		return nil, fmt.Errorf("server %s does not support engine selection", s.Name())
	}
	return c.NewWithConfig(mode, func(cfg *fo.MachineConfig) {
		s.hook(cfg)
		if hook != nil {
			hook(cfg)
		}
	})
}

// withEngine wraps srv so its machines run on the -engine selection; the
// default needs no wrapper.
func withEngine(srv servers.Server) servers.Server {
	if engineHook == nil {
		return srv
	}
	return engineServer{Server: srv, hook: engineHook}
}

// mustServer builds a registered server by name; the names used here are
// registry constants, so failure is a programming error.
func mustServer(name string) servers.Server {
	srv, err := registry.New(name)
	if err != nil {
		panic(err)
	}
	return withEngine(srv)
}

// experiments is the single source of truth for the -experiment selector:
// "fobench -experiment list" prints it, and the package doc comment above
// embeds the same rendered block (TestUsageDocMatchesExperimentTable
// asserts the doc cannot drift from this table).
var experiments = []struct {
	id   string
	desc string
}{
	{"all", "every experiment below except campaign and cluster"},
	{"fig2", "Pine request times (Figure 2)"},
	{"fig3", "Apache request times (Figure 3)"},
	{"fig4", "Sendmail request times (Figure 4)"},
	{"fig5", "Midnight Commander times (Figure 5)"},
	{"fig6", "Mutt request times (Figure 6)"},
	{"throughput", "Apache attack throughput (§4.3.2)"},
	{"loadtest", "concurrent §4.3.2 (serve.Engine pool)"},
	{"resilience", "security & resilience matrix (§4.*.2)"},
	{"variants", "boundless / redirect variants (§5.1)"},
	{"soak", "stability runs (§4.*.4)"},
	{"errlog", "per-mode memory-error event profiles (§3)"},
	{"propagation", "error propagation distance (§1.2)"},
	{"ablation", "manufactured-value sequence (§3)"},
	{"campaign", "seeded 4-way fault-injection campaign incl. rewind (internal/inject)"},
	{"strategysearch", "per-site manufactured-value strategy search (fo-context)"},
	{"cluster", "sharded router goodput under open-loop overload"},
	{"list", "print this experiment table"},
}

// experimentTable renders the experiments table; the package doc comment
// embeds exactly these lines.
func experimentTable() string {
	var sb strings.Builder
	for _, e := range experiments {
		fmt.Fprintf(&sb, "fobench -experiment %-12s # %s\n", e.id, e.desc)
	}
	return sb.String()
}

// campaignOpts carries the fault-injection campaign's flags.
type campaignOpts struct {
	seed    int64
	faults  int
	out     string // write the JSON report here ("" = table only)
	servers string // comma-separated subset ("" = all five)
	modes   string // comma-separated mode subset ("" = the 4-way matrix)
}

// searchOpts carries the strategy-search experiment's flags (-seed,
// -faults, and -campaign-servers are shared with the campaign).
type searchOpts struct {
	seed    int64
	faults  int
	out     string // write the JSON report here ("" = table only)
	servers string // comma-separated subset ("" = all five)
	budget  int    // candidate evaluations per server
}

// clusterOpts carries the cluster experiment's flags.
type clusterOpts struct {
	seed     int64
	duration time.Duration // open-loop generation time per cell
	clients  int           // simulated clients for the 2× scale cell (0 = skip it)
	out      string        // write the JSON report here ("" = table only)
}

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run (see -experiment list)")
	engine := flag.String("engine", "compiled", "execution engine for server machines: treewalk, compiled, codegen")
	reps := flag.Int("reps", harness.DefaultReps, "repetitions per request")
	soakN := flag.Int("soak-n", 200, "requests per soak run")
	wall := flag.Bool("wall", false, "measure figures in wall-clock time instead of simulated cycles")
	clients := flag.Int("clients", 8, "loadtest: concurrent client goroutines")
	pool := flag.Int("pool", 4, "loadtest: serving-pool size (worker instances)")
	queue := flag.Int("queue", 0, "loadtest: admission queue depth (0 = 2x clients)")
	deadline := flag.Duration("deadline", 2*time.Second, "loadtest: per-request deadline (0 = none)")
	attacks := flag.Int("attacks-per-legit", 3, "loadtest: attack requests per legitimate request")
	legitN := flag.Int("legit-per-client", 10, "loadtest: legitimate requests per client")
	seed := flag.Int64("seed", 1, "PRNG seed (loadtest request mix; campaign plan)")
	faults := flag.Int("faults", 40, "campaign: fault points sampled per server")
	campaignOut := flag.String("campaign-out", "", "campaign: write the JSON report to this file")
	campaignServers := flag.String("campaign-servers", "", "campaign: comma-separated server subset (default all five)")
	campaignModes := flag.String("campaign-modes", "",
		"campaign: comma-separated mode subset, e.g. failure-oblivious,rewind (default standard,bounds-check,failure-oblivious,rewind)")
	searchOut := flag.String("search-out", "", "strategysearch: write the JSON report to this file")
	searchBudget := flag.Int("search-budget", 200, "strategysearch: candidate evaluations per server")
	clusterOut := flag.String("cluster-out", "", "cluster: write the JSON report to this file")
	clusterDur := flag.Duration("cluster-duration", time.Second, "cluster: open-loop generation time per cell")
	clusterClients := flag.Int("cluster-clients", 100000,
		"cluster: simulated clients for the 2x-overload scale cell (0 = skip it)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()
	if err := setEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, "fobench:", err)
		os.Exit(1)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fobench:", err)
		os.Exit(1)
	}
	clock := harness.SimClock
	if *wall {
		clock = harness.WallClock
	}
	cfg := harness.LoadtestConfig{
		Clients:         *clients,
		PoolSize:        *pool,
		QueueDepth:      *queue,
		Deadline:        *deadline,
		AttacksPerLegit: *attacks,
		LegitPerClient:  *legitN,
		Seed:            *seed,
	}
	co := campaignOpts{seed: *seed, faults: *faults, out: *campaignOut, servers: *campaignServers, modes: *campaignModes}
	so := searchOpts{seed: *seed, faults: *faults, out: *searchOut, servers: *campaignServers, budget: *searchBudget}
	cl := clusterOpts{seed: *seed, duration: *clusterDur, clients: *clusterClients, out: *clusterOut}
	if err := dispatch(*experiment, *reps, *soakN, clock, cfg, co, so, cl); err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "fobench:", err)
		os.Exit(1)
	}
	stopProfiles()
}

// startProfiles starts pprof collection per the -cpuprofile/-memprofile
// flags and returns the function that flushes both files — called on every
// exit path so profiles survive experiment errors too. Profiling without
// code edits is the point: any experiment (or the whole "all" sweep) can
// be profiled by adding a flag.
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Printf("fobench: CPU profile written to %s\n", cpu)
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fobench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // collect garbage so the heap profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fobench: memprofile:", err)
				return
			}
			fmt.Printf("fobench: heap profile written to %s\n", mem)
		}
	}, nil
}

// dispatch routes the experiment selector: the table-printing, campaign,
// and cluster experiments are handled here, everything else by runClock
// ("all" runs the runClock set — campaign and cluster are opt-in because
// they are the expensive ones).
func dispatch(experiment string, reps, soakN int, clock harness.Clock,
	loadCfg harness.LoadtestConfig, co campaignOpts, so searchOpts, cl clusterOpts) error {
	switch experiment {
	case "list":
		fmt.Print(experimentTable())
		return nil
	case "campaign":
		return runCampaign(co)
	case "strategysearch":
		return runStrategySearch(so)
	case "cluster":
		return runCluster(cl)
	}
	return runClock(experiment, reps, soakN, clock, loadCfg)
}

// runCluster calibrates the fleet's 1× capacity with a closed-loop burst,
// then drives the sharded router open loop at 1×/2×/4× offered load, with
// and without chaos injection, and prints the goodput-under-overload
// table. Failure-oblivious is the mode under test; Standard at 1× rides
// along as the contrast row (its pool burns capacity on restarts).
func runCluster(o clusterOpts) error {
	srv := mustServer("apache")
	base := harness.ClusterConfig{
		Shards:    2,
		PoolSize:  2,
		Tenants:   8,
		Quota:     4,
		SLO:       50 * time.Millisecond,
		TargetP95: 25 * time.Millisecond,
		Duration:  o.duration,
		Seed:      o.seed,
	}
	capacity, err := harness.ClusterCapacity(srv, fo.FailureOblivious, base)
	if err != nil {
		return fmt.Errorf("cluster calibration: %w", err)
	}
	rep := &harness.ClusterReport{
		Server:   srv.Name(),
		Capacity: capacity,
		SLOms:    float64(base.SLO) / float64(time.Millisecond),
	}
	run := func(mode fo.Mode, cfg harness.ClusterConfig, mult float64) error {
		cfg.Rate = mult * capacity
		res, err := harness.ClusterRun(srv, mode, cfg)
		if err != nil {
			return fmt.Errorf("cluster %v %.0fx: %w", mode, mult, err)
		}
		res.Load = mult
		rep.Cells = append(rep.Cells, res)
		return nil
	}
	fmt.Println("Sharded router under open-loop Poisson overload (goodput = OK responses within SLO)")
	for _, mult := range []float64{1, 2, 4} {
		for _, chaos := range []bool{false, true} {
			cfg := base
			if chaos {
				cfg.Chaos = serve.ChaosConfig{KillEvery: 50}
			}
			if err := run(fo.FailureOblivious, cfg, mult); err != nil {
				return err
			}
		}
	}
	if err := run(fo.Standard, base, 1); err != nil {
		return err
	}
	// Scale cell: 2× overload sized to o.clients simulated clients — the
	// sharded generator groups must sustain the offered rate (GenSeconds in
	// the report stays near the window when they do), and failure-oblivious
	// goodput should hold flat at the calibrated capacity.
	if o.clients > 0 {
		cfg := base
		cfg.Duration = time.Duration(float64(o.clients) / (2 * capacity) * float64(time.Second))
		if err := run(fo.FailureOblivious, cfg, 2); err != nil {
			return err
		}
	}
	// Rebalance-under-chaos cell: Standard mode with periodic attack
	// arrivals crashes instances, a tight breaker trips shards, and the
	// router's ring reroutes their tenants — the Rebal column shows the
	// handoff volume while goodput holds.
	rebal := base
	rebal.AttackEvery = 10
	rebal.BreakerAfter = 2
	rebal.BreakerCooldown = 100 * time.Millisecond
	if err := run(fo.Standard, rebal, 1); err != nil {
		return err
	}
	fmt.Print(harness.FormatCluster(rep))
	fmt.Println()
	if o.out != "" {
		data, err := rep.JSON()
		if err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		if err := os.WriteFile(o.out, data, 0o644); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
		fmt.Printf("cluster: JSON report written to %s\n", o.out)
	}
	return nil
}

// runCampaign builds a plan from the flags, runs the fault-injection
// campaign, prints the human-readable table, and optionally writes the
// byte-stable JSON report (the artifact two runs with the same seed
// reproduce bit for bit).
func runCampaign(o campaignOpts) error {
	plan := inject.DefaultPlan(o.seed, o.faults)
	if o.servers != "" {
		for _, name := range strings.Split(o.servers, ",") {
			plan.Servers = append(plan.Servers, strings.TrimSpace(name))
		}
	}
	if o.modes != "" {
		for _, name := range strings.Split(o.modes, ",") {
			mode, err := fo.ParseMode(strings.TrimSpace(name))
			if err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
			plan.Modes = append(plan.Modes, mode)
		}
	}
	rep, err := inject.Run(plan, inject.AllTargets())
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	fmt.Print(inject.FormatReport(rep))
	if o.out != "" {
		data, err := rep.JSON()
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		if err := os.WriteFile(o.out, data, 0o644); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		fmt.Printf("campaign: JSON report written to %s\n", o.out)
	}
	return nil
}

// runStrategySearch runs the per-site manufactured-value strategy search
// (internal/inject.Search over fo.ModeFOContext), prints the summary table,
// and optionally writes the byte-stable JSON report.
func runStrategySearch(o searchOpts) error {
	plan := inject.SearchPlan{Seed: o.seed, Faults: o.faults, Budget: o.budget}
	if o.servers != "" {
		for _, name := range strings.Split(o.servers, ",") {
			plan.Servers = append(plan.Servers, strings.TrimSpace(name))
		}
	}
	rep, err := inject.Search(plan, inject.AllTargets())
	if err != nil {
		return fmt.Errorf("strategysearch: %w", err)
	}
	fmt.Print(inject.FormatSearchReport(rep))
	if o.out != "" {
		data, err := rep.JSON()
		if err != nil {
			return fmt.Errorf("strategysearch: %w", err)
		}
		if err := os.WriteFile(o.out, data, 0o644); err != nil {
			return fmt.Errorf("strategysearch: %w", err)
		}
		fmt.Printf("strategysearch: JSON report written to %s\n", o.out)
	}
	return nil
}

// allServers returns fresh instances of every registered server, in paper
// order (the registry is the single source of truth for the server set),
// each bound to the -engine selection.
func allServers() []servers.Server {
	all := registry.All()
	for i, srv := range all {
		all[i] = withEngine(srv)
	}
	return all
}

func run(experiment string, reps, soakN int) error {
	return runClock(experiment, reps, soakN, harness.SimClock, harness.LoadtestConfig{})
}

func runClock(experiment string, reps, soakN int, clock harness.Clock, loadCfg harness.LoadtestConfig) error {
	all := experiment == "all"
	type fig struct {
		id    string
		title string
		srv   servers.Server
		names []string
	}
	figures := []fig{
		{"fig2", "Figure 2: Request Processing Times for Pine (ms)",
			mustServer("pine"), []string{"Read", "Compose", "Move"}},
		{"fig3", "Figure 3: Request Processing Times for Apache (ms)",
			mustServer("apache"), []string{"Small", "Large"}},
		{"fig4", "Figure 4: Request Processing Times for Sendmail (ms)",
			mustServer("sendmail"), []string{"Recv Small", "Recv Large", "Send Small", "Send Large"}},
		{"fig5", "Figure 5: Request Processing Times for Midnight Commander (ms)",
			mustServer("mc"), []string{"Copy", "Move", "MkDir", "Delete"}},
		{"fig6", "Figure 6: Request Processing Times for Mutt (ms)",
			mustServer("mutt"), []string{"Read", "Move"}},
	}
	ran := false
	for _, f := range figures {
		if !all && experiment != f.id {
			continue
		}
		ran = true
		reqs := f.srv.LegitRequests()[:len(f.names)]
		rows, err := harness.PerfTableClock(f.srv, f.names, reqs, reps, clock)
		if err != nil {
			return fmt.Errorf("%s: %w", f.id, err)
		}
		fmt.Println(harness.FormatPerfTable(f.title, rows))
	}

	if all || experiment == "throughput" {
		ran = true
		fmt.Println("Apache throughput under attack (paper §4.3.2; FO reported ~5.7x Bounds, ~4.8x Standard)")
		var rows []harness.ThroughputResult
		for _, mode := range harness.Modes {
			r, err := harness.AttackThroughput(mustServer("apache"), mode, 4, 50, 3)
			if err != nil {
				return fmt.Errorf("throughput %v: %w", mode, err)
			}
			rows = append(rows, r)
		}
		fmt.Println(harness.FormatThroughput(rows))
	}

	if all || experiment == "loadtest" {
		ran = true
		fmt.Println("Concurrent Apache throughput under attack (serve.Engine pool; paper §4.3.2 under concurrent load)")
		var rows []harness.LoadtestResult
		for _, mode := range harness.Modes {
			r, err := harness.Loadtest(mustServer("apache"), mode, loadCfg)
			if err != nil {
				return fmt.Errorf("loadtest %v: %w", mode, err)
			}
			rows = append(rows, r)
		}
		fmt.Println(harness.FormatLoadtest(rows))
	}

	if all || experiment == "resilience" {
		ran = true
		fmt.Println("Security & resilience matrix (paper §4.2.2, §4.3.2, §4.4.2, §4.5.2, §4.6.2)")
		rows, err := harness.ResilienceMatrix(allServers(), harness.Modes)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatResilience(rows))
	}

	if all || experiment == "variants" {
		ran = true
		fmt.Println("Variants: boundless memory blocks and redirect-into-bounds (paper §5.1)")
		rows, err := harness.ResilienceMatrix(allServers(), harness.VariantModes)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatResilience(rows))
	}

	if all || experiment == "soak" {
		ran = true
		fmt.Println("Stability soak: requests with periodic attacks (paper §4.*.4)")
		fmt.Printf("%-10s %-18s %-9s %-8s %-8s %-9s %s\n",
			"Server", "Version", "Requests", "Attacks", "Crashes", "Restarts", "Errors logged")
		for _, srv := range allServers() {
			for _, mode := range []fo.Mode{fo.BoundsCheck, fo.FailureOblivious} {
				res, err := harness.Soak(srv, mode, soakN, 7)
				if err != nil {
					return fmt.Errorf("soak %s/%v: %w", srv.Name(), mode, err)
				}
				fmt.Printf("%-10s %-18s %-9d %-8d %-8d %-9d %d\n",
					srv.Name(), mode, res.Requests, res.Attacks,
					res.Crashes, res.Restarts, res.ErrorEvents)
			}
		}
		fmt.Println()
	}

	if all || experiment == "errlog" {
		ran = true
		fmt.Println("Memory-error event profiles per mode (paper §3 log; Standard omitted — it logs nothing)")
		rows, err := harness.ErrlogProfiles(allServers(), harness.ErrlogModes, 3)
		if err != nil {
			return err
		}
		fmt.Println(harness.FormatErrlog(rows))
	}

	if all || experiment == "propagation" {
		ran = true
		fmt.Println("Error propagation distance (paper §1.2: attacked vs clean twin, responses compared)")
		var rows []harness.PropagationResult
		for _, name := range registry.Names() {
			mk, err := registry.Factory(name)
			if err != nil {
				return fmt.Errorf("propagation: %w", err)
			}
			r, err := harness.ErrorPropagation(func() servers.Server { return withEngine(mk()) }, 12)
			if err != nil {
				return fmt.Errorf("propagation: %w", err)
			}
			rows = append(rows, r)
		}
		fmt.Println(harness.FormatPropagation(rows))
	}

	if all || experiment == "ablation" {
		ran = true
		if err := ablation(); err != nil {
			return err
		}
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q (see fobench -experiment list)", experiment)
	}
	return nil
}

// ablation compares the paper's small-integer manufactured-value sequence
// against a naive all-zeros generator on the Midnight Commander sentinel
// scan from §3: a loop searching past the end of a buffer for '/'.
func ablation() error {
	fmt.Println("Ablation: manufactured-value sequence (paper §3, Midnight Commander '/'-scan)")
	const src = `
int scan(void) {
	char buf[8];
	int i = 0;
	buf[0] = 'a';
	while (buf[i] != '/')
		i++;
	return i;
}
int main(void) { return scan(); }
`
	prog, err := fo.Compile("scan.c", src)
	if err != nil {
		return err
	}
	type genCase struct {
		name string
		gen  fo.ValueGenerator
	}
	for _, gc := range []genCase{
		{"small-int sequence (paper)", fo.NewSmallIntGenerator()},
		{"all zeros (naive)", fo.NewZeroGenerator()},
	} {
		m, err := prog.NewMachine(fo.MachineConfig{
			Mode: fo.FailureOblivious, Gen: gc.gen, MaxSteps: 2_000_000,
		})
		if err != nil {
			return err
		}
		res := m.Run()
		fmt.Printf("  %-28s -> outcome %-8s (steps %d)\n", gc.name, res.Outcome, res.Steps)
	}
	fmt.Println()
	return nil
}
