// Request-boundary checkpointing for the rewind-and-discard continuation
// policy (core.ModeRewind). The serving model calls BeginCheckpoint when a
// request enters the machine and either Commit (the request completed, in
// any way that keeps the instance) or Rewind (a memory error was detected;
// roll every visible mutation back and fail only this request).
//
// Representation: a unit-granularity copy-on-write undo log. Nothing is
// copied at BeginCheckpoint — the first mutation of each pre-existing unit
// after the checkpoint snapshots that unit's bytes, liveness, and pointer
// shadow into the log (NoteMutation; the checked store path and the few
// trusted fast paths that bypass it call this before writing). Units
// created after the checkpoint are stamped with its epoch so they are
// never logged: rolling them back means marking them dead, not restoring
// bytes.
//
// Rewind deliberately composes with the existing rollback machinery and
// the LookupCache coherence contract (fastpath.go):
//
//   - Stack state rolls back via UnwindTo (which bumps stackGen, so stale
//     stack cache entries cannot answer for re-pushed frames).
//   - Heap units allocated after the checkpoint are marked Dead but stay
//     in the heap slice — non-stack units are immortal to the caches, so
//     they must never be removed from the table. The address range they
//     occupy is not reused (heapCur is not rolled back); a rewound request
//     leaks address space, not memory contract. Allocation counters
//     (Stats) are likewise monotonic across rewinds.
package mem

// savedUnit is one undo-log entry: the pre-checkpoint image of a unit.
type savedUnit struct {
	u      *Unit
	data   []byte
	dead   bool
	shadow map[uint64]*Unit
}

// Checkpoint captures the rollback point BeginCheckpoint established. It is
// only meaningful for the address space that created it, and only until the
// matching Commit or Rewind.
type Checkpoint struct {
	epoch         uint64
	sp            uint64
	heapLen       int
	heapCorrupted bool
	saved         []savedUnit
}

// BeginCheckpoint establishes a rollback point at the current state.
// Checkpoints do not nest: exactly one may be active per address space
// (the rewind policy checkpoints per top-level request call).
func (as *AddressSpace) BeginCheckpoint() *Checkpoint {
	if as.ckpt != nil {
		panic("mem: BeginCheckpoint with a checkpoint already active")
	}
	as.ckptEpoch++
	c := &Checkpoint{
		epoch:         as.ckptEpoch,
		sp:            as.sp,
		heapLen:       len(as.heap),
		heapCorrupted: as.heapCorrupted,
	}
	as.ckpt = c
	return c
}

// curEpoch is the stamp for newly created units: the active checkpoint's
// epoch, or 0 (never matches a checkpoint) when none is active.
func (as *AddressSpace) curEpoch() uint64 {
	if as.ckpt != nil {
		return as.ckpt.epoch
	}
	return 0
}

// NoteMutation records u in the active checkpoint's undo log before its
// first post-checkpoint mutation (data bytes, Dead flag, or pointer
// shadow). It is a no-op — one pointer compare — when no checkpoint is
// active or the unit is already logged or was created after the
// checkpoint. Every write path that can touch a pre-checkpoint unit must
// call it before mutating: the checked Store of the rewind accessor, the
// libc fast paths that write unit data directly, and Free.
func (as *AddressSpace) NoteMutation(u *Unit) {
	c := as.ckpt
	if c == nil || u == nil || u.ckptEpoch == c.epoch {
		return
	}
	u.ckptEpoch = c.epoch
	s := savedUnit{u: u, dead: u.Dead}
	s.data = append([]byte(nil), u.Data...)
	if len(u.shadow) > 0 {
		s.shadow = make(map[uint64]*Unit, len(u.shadow))
		for k, v := range u.shadow {
			s.shadow[k] = v
		}
	}
	c.saved = append(c.saved, s)
}

// Commit discards the checkpoint, keeping the current state. The address
// space is untouched; only the undo log is released.
func (as *AddressSpace) Commit(c *Checkpoint) {
	if as.ckpt != c {
		panic("mem: Commit of an inactive checkpoint")
	}
	as.ckpt = nil
	c.saved = nil
}

// Rewind restores the state captured at BeginCheckpoint: logged units get
// their saved bytes, liveness, and shadow back; units created after the
// checkpoint are marked dead (heap blocks and headers stay in the unit
// table — see the coherence note in the package comment); the stack
// unwinds to the checkpoint's stack pointer; and the heap-corruption flag
// is restored. heapCur and the Stats counters are intentionally not rolled
// back.
func (as *AddressSpace) Rewind(c *Checkpoint) {
	if as.ckpt != c {
		panic("mem: Rewind of an inactive checkpoint")
	}
	as.ckpt = nil
	for i := len(c.saved) - 1; i >= 0; i-- {
		s := c.saved[i]
		copy(s.u.Data, s.data)
		s.u.Dead = s.dead
		s.u.shadow = s.shadow
	}
	c.saved = nil
	for _, u := range as.heap[c.heapLen:] {
		u.Dead = true
		u.shadow = nil
	}
	as.heapCorrupted = c.heapCorrupted
	as.UnwindTo(c.sp)
}
