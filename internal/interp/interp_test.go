package interp_test

import (
	"bytes"
	"fmt"
	"testing"

	"focc/internal/cc/sema"
	"focc/internal/core"
	"focc/internal/corpus"
	"focc/internal/interp"
	"focc/internal/libc"

	// Link the checked-in generated engine for the corpus programs so
	// the differential tests can run the codegen engine by source hash.
	_ "focc/internal/gencorpus"
)

// compile builds a program from raw source (no preprocessor; tests that
// need macros go through the fo package instead).
func compile(t *testing.T, src string) *sema.Program {
	t.Helper()
	prog, err := corpus.CompilePlain(corpus.FileName, src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// runMain compiles and runs main() under the given mode, returning the
// result and captured output.
func runMain(t *testing.T, src string, mode core.Mode) (interp.Result, string) {
	t.Helper()
	prog := compile(t, src)
	var out bytes.Buffer
	m, err := interp.New(prog, interp.Config{
		Mode: mode, Out: &out, Builtins: libc.Builtins(),
	})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m.Run(), out.String()
}

// expectMain runs main() in BoundsCheck mode (so any memory slip is loud)
// and asserts the return value.
func expectMain(t *testing.T, src string, want int64) {
	t.Helper()
	res, _ := runMain(t, src, core.BoundsCheck)
	if res.Outcome != interp.OutcomeOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Err)
	}
	if res.Value.I != want {
		t.Fatalf("main() = %d, want %d", res.Value.I, want)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"-10 / 3", -3}, // C truncates toward zero
		{"10 % 3", 1},
		{"-10 % 3", -1},
		{"1 << 10", 1024},
		{"-8 >> 1", -4}, // arithmetic shift for signed
		{"0xF0 | 0x0F", 0xFF},
		{"0xFF & 0x0F", 0x0F},
		{"0xFF ^ 0x0F", 0xF0},
		{"~0", -1},
		{"!5", 0},
		{"!0", 1},
		{"5 > 3", 1},
		{"3 >= 4", 0},
		{"2 == 2", 1},
		{"2 != 2", 0},
		{"1 && 0", 0},
		{"1 || 0", 1},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"(2, 5)", 5},
	}
	for _, c := range cases {
		src := fmt.Sprintf("int main(void) { return %s; }", c.expr)
		expectMain(t, src, c.want)
	}
}

func TestUnsignedSemantics(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		// Unsigned division.
		{"int main(void){ unsigned int a = 0xFFFFFFFF; return a / 2 == 0x7FFFFFFF; }", 1},
		// Unsigned comparison: -1 as unsigned is the max value.
		{"int main(void){ unsigned int a = 3; return a < -1; }", 1},
		// Logical shift for unsigned.
		{"int main(void){ unsigned int a = 0x80000000; return (a >> 31) == 1; }", 1},
		// Overflow wraps.
		{"int main(void){ unsigned char c = 255; c++; return c; }", 0},
		// Signed char wraps to negative.
		{"int main(void){ char c = 127; c++; return c == -128; }", 1},
		// int multiplication truncates to 32 bits.
		{"int main(void){ int a = 1000000; return a * a == -727379968; }", 1},
		// unsigned long survives.
		{"int main(void){ unsigned long a = 1000000; return a * a == 1000000000000UL; }", 1},
	}
	for _, c := range cases {
		expectMain(t, c.src, c.want)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	expectMain(t, `
int calls = 0;
int bump(void) { calls++; return 1; }
int main(void) {
	int a = 0 && bump();
	int b = 1 || bump();
	int c = 1 && bump();
	return calls * 100 + a * 10 + b + c;
}`, 102)
}

func TestCompoundAssignment(t *testing.T) {
	expectMain(t, `
int main(void) {
	int x = 10;
	x += 5; if (x != 15) return 1;
	x -= 3; if (x != 12) return 2;
	x *= 2; if (x != 24) return 3;
	x /= 5; if (x != 4) return 4;
	x %= 3; if (x != 1) return 5;
	x <<= 4; if (x != 16) return 6;
	x >>= 2; if (x != 4) return 7;
	x |= 3; if (x != 7) return 8;
	x &= 5; if (x != 5) return 9;
	x ^= 1; if (x != 4) return 10;
	return 0;
}`, 0)
}

func TestIncDecSemantics(t *testing.T) {
	expectMain(t, `
int main(void) {
	int i = 5;
	int a = i++;
	int b = ++i;
	int c = i--;
	int d = --i;
	/* a=5 i=6; b=7 i=7; c=7 i=6; d=5 i=5 */
	return a * 1000 + b * 100 + c * 10 + d;
}`, 5775)
}

func TestPointerArithmeticAndComparison(t *testing.T) {
	expectMain(t, `
int main(void) {
	int arr[5];
	int *p = arr;
	int *q = &arr[4];
	int i;
	for (i = 0; i < 5; i++) arr[i] = i * i;
	if (q - p != 4) return 1;
	if (*(p + 2) != 4) return 2;
	if (p >= q) return 3;
	p++;
	if (*p != 1) return 4;
	p += 3;
	if (p != q) return 5;
	return 0;
}`, 0)
}

func TestPointerIncrementWalk(t *testing.T) {
	expectMain(t, `
int sum(const char *s) {
	int total = 0;
	while (*s)
		total += *s++;
	return total;
}
int main(void) { return sum("abc"); }`, 'a'+'b'+'c')
}

func TestMultiDimensionalArrays(t *testing.T) {
	expectMain(t, `
int main(void) {
	int m[3][4];
	int i, j, sum = 0;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			m[i][j] = i * 10 + j;
	for (i = 0; i < 3; i++)
		sum += m[i][i];
	return sum; /* 0 + 11 + 22 */
}`, 33)
}

func TestStructSemantics(t *testing.T) {
	expectMain(t, `
struct inner { char tag; long v; };
struct outer { int id; struct inner in; int arr[3]; };
int main(void) {
	struct outer o;
	struct outer copy;
	o.id = 7;
	o.in.tag = 'x';
	o.in.v = 1000;
	o.arr[2] = 5;
	copy = o;           /* struct assignment copies bytes */
	o.arr[2] = 9;       /* does not affect the copy */
	if (copy.id != 7) return 1;
	if (copy.in.tag != 'x') return 2;
	if (copy.in.v != 1000) return 3;
	if (copy.arr[2] != 5) return 4;
	return 0;
}`, 0)
}

func TestStructPointerAccess(t *testing.T) {
	expectMain(t, `
struct node { int v; struct node *next; };
int main(void) {
	struct node a, b;
	a.v = 1; a.next = &b;
	b.v = 2; b.next = 0;
	return a.next->v;
}`, 2)
}

func TestStructByValueCall(t *testing.T) {
	expectMain(t, `
struct pair { int a; int b; };
int sum(struct pair p) { p.a = 99; return p.a + p.b; }
int main(void) {
	struct pair p;
	p.a = 3; p.b = 4;
	if (sum(p) != 103) return 1;
	return p.a; /* callee modified a copy */
}`, 3)
}

func TestRecursionDeep(t *testing.T) {
	expectMain(t, `
int sum(int n) { return n == 0 ? 0 : n + sum(n - 1); }
int main(void) { return sum(100); }`, 5050)
}

func TestGlobalInitializers(t *testing.T) {
	expectMain(t, `
int scalar = 42;
int arr[4] = { 1, 2, 3 };          /* partial: rest zero */
char msg[] = "hey";
char *ptr = "world";
struct cfg { int a; char b; } conf = { 9, 'z' };
int matrix[2][2] = { {1, 2}, {3, 4} };
int main(void) {
	if (scalar != 42) return 1;
	if (arr[0] != 1 || arr[2] != 3 || arr[3] != 0) return 2;
	if (msg[0] != 'h' || msg[3] != 0) return 3;
	if (ptr[4] != 'd') return 4;
	if (conf.a != 9 || conf.b != 'z') return 5;
	if (matrix[1][0] != 3) return 6;
	return 0;
}`, 0)
}

func TestLocalInitializers(t *testing.T) {
	expectMain(t, `
int main(void) {
	int arr[5] = { 10, 20 };       /* partial zero-fill */
	char buf[8] = "ab";
	struct p { int x; int y; } v = { 1 };
	if (arr[1] != 20 || arr[4] != 0) return 1;
	if (buf[0] != 'a' || buf[2] != 0 || buf[7] != 0) return 2;
	if (v.x != 1 || v.y != 0) return 3;
	return 0;
}`, 0)
}

func TestSwitchFallthrough(t *testing.T) {
	expectMain(t, `
int classify(int c) {
	int acc = 0;
	switch (c) {
	case 1:
		acc += 1;
	case 2:
		acc += 2;
		break;
	case 3:
		acc += 100;
		break;
	default:
		acc = -1;
	}
	return acc;
}
int main(void) {
	if (classify(1) != 3) return 1;   /* falls through 1 -> 2 */
	if (classify(2) != 2) return 2;
	if (classify(3) != 100) return 3;
	if (classify(9) != -1) return 4;
	return 0;
}`, 0)
}

func TestSwitchWithoutDefaultSkips(t *testing.T) {
	expectMain(t, `
int main(void) {
	int x = 5;
	switch (x) { case 1: return 1; case 2: return 2; }
	return 42;
}`, 42)
}

func TestGotoForwardAndBackward(t *testing.T) {
	expectMain(t, `
int main(void) {
	int i = 0, acc = 0;
again:
	acc += i;
	i++;
	if (i < 5) goto again;
	if (acc != 10) goto bad;
	return 0;
bad:
	return 1;
}`, 0)
}

func TestGotoOutOfNestedLoops(t *testing.T) {
	expectMain(t, `
int main(void) {
	int i, j, hits = 0;
	for (i = 0; i < 10; i++) {
		for (j = 0; j < 10; j++) {
			hits++;
			if (i == 2 && j == 3) goto out;
		}
	}
out:
	return hits; /* 10 + 10 + 4 */
}`, 24)
}

func TestBreakContinueInterplay(t *testing.T) {
	expectMain(t, `
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 10; i++) {
		if (i % 2) continue;
		if (i == 8) break;
		acc += i; /* 0+2+4+6 */
	}
	while (1) { break; }
	do { acc += 1; } while (0);
	return acc;
}`, 13)
}

func TestUninitializedLocalsAreStale(t *testing.T) {
	// A popped frame's writes are visible to the next frame's
	// uninitialized locals (deliberate realism).
	expectMain(t, `
void dirty(void) {
	int x = 12345;
	x = x; /* keep it */
}
int peek(void) {
	int y; /* uninitialized: occupies the same slot dirty()'s x did */
	return y;
}
int main(void) {
	dirty();
	return peek() == 12345;
}`, 1)
}

func TestDivisionByZeroFaults(t *testing.T) {
	res, _ := runMain(t, "int main(void){ int z = 0; return 4 / z; }", core.Standard)
	if res.Outcome != interp.OutcomeRuntimeError {
		t.Errorf("outcome = %v, want runtime error", res.Outcome)
	}
	res, _ = runMain(t, "int main(void){ int z = 0; return 4 % z; }", core.FailureOblivious)
	if res.Outcome != interp.OutcomeRuntimeError {
		t.Errorf("mod outcome = %v", res.Outcome)
	}
}

func TestHangDetection(t *testing.T) {
	prog := compile(t, "int main(void){ for(;;); }")
	m, err := interp.New(prog, interp.Config{MaxSteps: 10000, Builtins: libc.Builtins()})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Outcome != interp.OutcomeHang {
		t.Fatalf("outcome = %v, want hang", res.Outcome)
	}
	if !m.Dead() {
		t.Error("machine should be dead after a hang")
	}
}

func TestExitBuiltin(t *testing.T) {
	res, out := runMain(t, `
int main(void) {
	printf("before\n");
	exit(3);
	printf("after\n");
	return 0;
}`, core.Standard)
	if res.Outcome != interp.OutcomeExit || res.ExitCode != 3 {
		t.Fatalf("res = %+v", res)
	}
	if out != "before\n" {
		t.Errorf("out = %q", out)
	}
}

func TestCharSignExtensionThroughPointer(t *testing.T) {
	expectMain(t, `
int main(void) {
	char buf[2];
	int c;
	buf[0] = (char) 0xFF;
	c = buf[0];
	return c == -1;
}`, 1)
}

func TestUnsignedCharNoSignExtension(t *testing.T) {
	expectMain(t, `
int main(void) {
	unsigned char buf[1];
	buf[0] = 0xFF;
	return buf[0] == 255;
}`, 1)
}

func TestCastsIntPtrRoundTrip(t *testing.T) {
	expectMain(t, `
int main(void) {
	int x = 77;
	long addr = (long) &x;
	int *p = (int *) addr;
	return *p;
}`, 77)
}

func TestVoidFunctionAndEmptyReturn(t *testing.T) {
	expectMain(t, `
int g;
void set(int v) { g = v; return; }
int main(void) { set(31); return g; }`, 31)
}

func TestCallByNameFromHost(t *testing.T) {
	prog := compile(t, "int twice(int x) { return 2 * x; }")
	m, err := interp.New(prog, interp.Config{Builtins: libc.Builtins()})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Call("twice", interp.Int(21))
	if res.Outcome != interp.OutcomeOK || res.Value.I != 42 {
		t.Fatalf("res = %+v", res)
	}
	res = m.Call("missing")
	if res.Outcome != interp.OutcomeRuntimeError {
		t.Errorf("missing function outcome = %v", res.Outcome)
	}
}

func TestDeadMachineRefusesCalls(t *testing.T) {
	prog := compile(t, `
int boom(void) { int *p = 0; return *p; }
int fine(void) { return 1; }`)
	m, _ := interp.New(prog, interp.Config{Builtins: libc.Builtins()})
	if res := m.Call("boom"); !res.Outcome.Crashed() {
		t.Fatalf("boom = %v", res.Outcome)
	}
	if res := m.Call("fine"); res.Outcome != interp.OutcomeRuntimeError {
		t.Errorf("call on dead machine = %v", res.Outcome)
	}
}

func TestNewCStringAndReadCString(t *testing.T) {
	prog := compile(t, "int id(int x) { return x; }")
	m, _ := interp.New(prog, interp.Config{Builtins: libc.Builtins()})
	v := m.NewCString("round trip")
	s, err := m.ReadCString(v, 100)
	if err != nil || s != "round trip" {
		t.Fatalf("ReadCString = %q, %v", s, err)
	}
}

func TestStackDepthExhaustion(t *testing.T) {
	prog := compile(t, `
int forever(int n) { return forever(n + 1); }
int main(void) { return forever(0); }`)
	m, _ := interp.New(prog, interp.Config{
		StackSize: 16 * 1024, Builtins: libc.Builtins(),
	})
	res := m.Run()
	if res.Outcome != interp.OutcomeStackOverflow {
		t.Fatalf("outcome = %v, want stack overflow", res.Outcome)
	}
}

func TestSimCyclesMonotone(t *testing.T) {
	prog := compile(t, "int work(void){ int i, s = 0; for (i = 0; i < 100; i++) s += i; return s; }")
	m, _ := interp.New(prog, interp.Config{Builtins: libc.Builtins()})
	before := m.SimCycles()
	m.Call("work")
	mid := m.SimCycles()
	m.Call("work")
	after := m.SimCycles()
	if !(before < mid && mid < after) {
		t.Errorf("cycles not monotone: %d %d %d", before, mid, after)
	}
	if after-mid < 100 {
		t.Errorf("second call cost %d cycles, suspiciously low", after-mid)
	}
}

func TestCheckedModeCostsMore(t *testing.T) {
	src := `
char buf[512];
int churn(void) {
	int i, s = 0;
	for (i = 0; i < 512; i++) { buf[i] = (char) i; s += buf[i]; }
	return s;
}`
	cost := func(mode core.Mode) uint64 {
		prog := compile(t, src)
		m, _ := interp.New(prog, interp.Config{Mode: mode, Builtins: libc.Builtins()})
		m.Call("churn")
		return m.SimCycles()
	}
	std, fob := cost(core.Standard), cost(core.FailureOblivious)
	if fob <= std {
		t.Errorf("checked cycles (%d) should exceed standard (%d)", fob, std)
	}
	ratio := float64(fob) / float64(std)
	if ratio < 1.5 || ratio > 12 {
		t.Errorf("access-dense slowdown = %.2f, want within the paper's 1.5-12x band", ratio)
	}
}

// compileWithCPP builds a program from source that needs the
// preprocessor, through the corpus pipeline so the source-hash identity
// matches the checked-in generated code (internal/gencorpus).
func compileWithCPP(t testing.TB, src string) *sema.Program {
	t.Helper()
	prog, err := corpus.CompileCPP(corpus.FileName, src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// generatedFor returns the checked-in generated engine for a corpus
// source compiled under corpus.FileName, failing the test if cmd/gencorpus
// has not been re-run for it (`go generate ./...`).
func generatedFor(t testing.TB, src string) *interp.GenProgram {
	t.Helper()
	gp, ok := interp.GeneratedFor(interp.SourceHash(corpus.FileName, src))
	if !ok {
		t.Fatalf("no generated code registered for this source; regenerate with `go generate ./...`")
	}
	return gp
}

func TestTxTermTerminatesEnclosingFunction(t *testing.T) {
	// Paper §5.2: on a memory error, terminate the enclosing function and
	// continue after the call site.
	src := `
int side = 0;
int victim(void) {
	char buf[4];
	side = 1;
	buf[10] = 'x';   /* aborts victim() here */
	side = 2;        /* never reached */
	return 99;
}
int main(void) {
	int r = victim();       /* returns 0 after the abort */
	return side * 100 + r;  /* 100 + 0 */
}`
	res, _ := runMain(t, src, core.TxTerm)
	if res.Outcome != interp.OutcomeOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Err)
	}
	if res.Value.I != 100 {
		t.Fatalf("main = %d, want 100 (side=1, victim aborted with 0)", res.Value.I)
	}
}

func TestTxTermAbortInNestedCallee(t *testing.T) {
	// The *innermost* enclosing function terminates; its caller keeps
	// running (including the rest of its own statements).
	src := `
int deep(void) {
	char b[2];
	b[5] = 1;      /* abort deep() */
	return 7;
}
int mid(void) {
	int v = deep();  /* 0 */
	return v + 3;    /* mid itself continues */
}
int main(void) { return mid(); }`
	res, _ := runMain(t, src, core.TxTerm)
	if res.Outcome != interp.OutcomeOK || res.Value.I != 3 {
		t.Fatalf("res = %v %d (%v)", res.Outcome, res.Value.I, res.Err)
	}
}

func TestTxTermCleanProgramUnaffected(t *testing.T) {
	res, _ := runMain(t, "int f(int x){ return x*2; } int main(void){ return f(21); }", core.TxTerm)
	if res.Outcome != interp.OutcomeOK || res.Value.I != 42 {
		t.Fatalf("res = %v %d", res.Outcome, res.Value.I)
	}
}

func TestOOBPointerComparisonIsLegalInAllModes(t *testing.T) {
	// Paper §4.1: Pine and Midnight Commander use out-of-bounds pointers
	// in pointer inequality comparisons, which crippled the (Jones–Kelly
	// style) Bounds Check compiler until the authors rewrote the code.
	// focc checks at *dereference* (CRED semantics), so merely forming
	// and comparing an out-of-bounds pointer is legal in every mode.
	src := `
int main(void) {
	char buf[8];
	char *p = buf;
	char *limit = &buf[8];       /* one past the end: legal */
	char *way_past = buf + 100;  /* far out of bounds: formed, never dereferenced */
	int n = 0;
	while (p < limit) {
		*p = 'x';
		p++;
		n++;
	}
	if (way_past > limit) n += 100;
	return n;
}`
	for _, mode := range []core.Mode{core.Standard, core.BoundsCheck, core.FailureOblivious} {
		res, _ := runMain(t, src, mode)
		if res.Outcome != interp.OutcomeOK || res.Value.I != 108 {
			t.Errorf("%v: res = %v %d (%v)", mode, res.Outcome, res.Value.I, res.Err)
		}
	}
}

func TestSizeofArrayIsFullSize(t *testing.T) {
	expectMain(t, `
int main(void) {
	char buf[24];
	int arr[5];
	if (sizeof(buf) != 24) return 1;
	if (sizeof(arr) != 20) return 2;
	if (sizeof("hello") != 6) return 3;   /* includes the NUL */
	if (sizeof(char *) != 8) return 4;
	if (sizeof(unsigned short) != 2) return 5;
	return 0;
}`, 0)
}

func TestConversionChains(t *testing.T) {
	expectMain(t, `
int main(void) {
	long big = 0x1234567890ABCDEFL;
	int i = (int) big;          /* 0x90ABCDEF -> negative */
	short s = (short) i;        /* 0xCDEF -> negative */
	char c = (char) s;          /* 0xEF -> negative */
	unsigned char u = (unsigned char) c;
	if (i != (int) 0x90ABCDEF) return 1;
	if (s != (short) 0xCDEF) return 2;
	if (c != (char) 0xEF) return 3;
	if (u != 0xEF) return 4;
	/* widening back sign-extends signed, zero-extends unsigned */
	if ((long) c != -17) return 5;
	if ((long) u != 239) return 6;
	return 0;
}`, 0)
}

func TestUnaryMinusOnUnsigned(t *testing.T) {
	expectMain(t, `
int main(void) {
	unsigned int u = 1;
	unsigned int v = -u;        /* wraps to UINT_MAX */
	return v == 0xFFFFFFFF;
}`, 1)
}

func TestChainedDerefAssignment(t *testing.T) {
	expectMain(t, `
int main(void) {
	int a, b, c;
	int *pa = &a, *pb = &b, *pc = &c;
	*pa = *pb = *pc = 9;
	return a + b + c;
}`, 27)
}

func TestNestedTernary(t *testing.T) {
	expectMain(t, `
int grade(int score) {
	return score >= 90 ? 4 : score >= 80 ? 3 : score >= 70 ? 2 : score >= 60 ? 1 : 0;
}
int main(void) {
	return grade(95) * 10000 + grade(85) * 1000 + grade(75) * 100 + grade(65) * 10 + grade(10);
}`, 43210)
}

func TestAddressOfMemberAndElement(t *testing.T) {
	expectMain(t, `
struct s { int a; int b; };
int main(void) {
	struct s v;
	int arr[4];
	int *pb = &v.b;
	int *p2 = &arr[2];
	*pb = 5;
	*p2 = 7;
	return v.b * 10 + arr[2];
}`, 57)
}

func TestPointerToPointer(t *testing.T) {
	expectMain(t, `
int main(void) {
	int x = 3;
	int *p = &x;
	int **pp = &p;
	**pp = 8;
	return x;
}`, 8)
}

func TestArrayOfStructs(t *testing.T) {
	expectMain(t, `
struct kv { char key[8]; int val; };
struct kv table[4];
int main(void) {
	int i, sum = 0;
	for (i = 0; i < 4; i++) {
		table[i].key[0] = (char)('a' + i);
		table[i].val = i * i;
	}
	for (i = 0; i < 4; i++) {
		if (table[i].key[0] != 'a' + i) return -1;
		sum += table[i].val;
	}
	return sum;
}`, 14)
}

func TestStructFieldAliasing(t *testing.T) {
	// Writing one field must not disturb its neighbours.
	expectMain(t, `
struct mix { char c1; long l; char c2; int i; };
int main(void) {
	struct mix m;
	m.c1 = 1; m.l = -1; m.c2 = 3; m.i = 4;
	m.l = 0x1122334455667788L;
	if (m.c1 != 1 || m.c2 != 3 || m.i != 4) return 1;
	m.c2 = 9;
	if (m.l != 0x1122334455667788L) return 2;
	return 0;
}`, 0)
}

func TestEmptyFunctionBodyAndParams(t *testing.T) {
	expectMain(t, `
void nop(void) {}
int main(void) { nop(); nop(); return 0; }`, 0)
}

func TestForWithCommaPost(t *testing.T) {
	expectMain(t, `
int main(void) {
	int i, j, acc = 0;
	for (i = 0, j = 10; i < j; i++, j--)
		acc++;
	return acc;
}`, 5)
}

func TestIntegerLiteralTypes(t *testing.T) {
	expectMain(t, `
int main(void) {
	/* 0x80000000 does not fit in int -> promoted literal semantics */
	long big = 4294967296L;     /* 2^32 */
	if (big >> 32 != 1) return 1;
	if (0xFFFFFFFFu + 1u != 0) return 2;  /* unsigned int wraps */
	return 0;
}`, 0)
}

func TestModByNegativeAndMinInt(t *testing.T) {
	expectMain(t, `
int main(void) {
	if (7 % -2 != 1) return 1;    /* sign follows dividend in C */
	if (-7 % 2 != -1) return 2;
	if (-7 / -2 != 3) return 3;
	return 0;
}`, 0)
}

func TestNestedLocalInitializers(t *testing.T) {
	expectMain(t, `
struct pt { int x; int y; };
int main(void) {
	int m[2][3] = { {1, 2, 3}, {4, 5} };
	struct pt pts[2] = { {10, 20}, {30, 40} };
	char strs[2][4] = { "ab", "cd" };
	if (m[0][2] != 3 || m[1][1] != 5 || m[1][2] != 0) return 1;
	if (pts[0].y != 20 || pts[1].x != 30) return 2;
	if (strs[0][0] != 'a' || strs[1][1] != 'd' || strs[0][3] != 0) return 3;
	return 0;
}`, 0)
}

func TestHostAPIHelpers(t *testing.T) {
	prog := compile(t, `
char banner[32] = "greetings";
char *msg = "interned";
int id(int x) { return x; }`)
	m, err := interp.New(prog, interp.Config{
		Mode: core.FailureOblivious, Builtins: libc.Builtins(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Mode() != core.FailureOblivious {
		t.Errorf("Mode = %v", m.Mode())
	}
	if m.Accessor() == nil {
		t.Error("nil accessor")
	}
	u, ok := m.GlobalUnit("banner")
	if !ok {
		t.Fatal("banner global missing")
	}
	s, err := m.ReadCString(interp.UnitPointer(u), 32)
	if err != nil || s != "greetings" {
		t.Errorf("banner = %q, %v", s, err)
	}
	if _, ok := m.GlobalUnit("nope"); ok {
		t.Error("found nonexistent global")
	}
	lp := m.LiteralPointer(0)
	if lp.Ptr.Addr == 0 {
		t.Error("literal pointer null")
	}
	res := m.Call("id", interp.Long(7))
	if res.Outcome != interp.OutcomeOK || res.Value.I != 7 {
		t.Errorf("id = %+v", res)
	}
	if m.Steps() == 0 {
		t.Error("steps not counted")
	}
	hs := m.HostState()
	hs["k"] = 1
	if m.HostState()["k"] != 1 {
		t.Error("host state not persistent")
	}
	if interp.SimSeconds(2_800_000_000) != 1.0 {
		t.Errorf("SimSeconds(2.8e9) = %v", interp.SimSeconds(2_800_000_000))
	}
}

func TestValueHelpers(t *testing.T) {
	v := interp.Int(5)
	if !v.Truthy() || v.IsNull() == false {
		// Int has a zero pointer, so IsNull is true; Truthy uses I.
	}
	if !interp.Int(1).Truthy() || interp.Int(0).Truthy() {
		t.Error("int truthiness wrong")
	}
	if interp.Long(-1).I != -1 {
		t.Error("Long constructor wrong")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o := interp.OutcomeOK; o <= interp.OutcomeRuntimeError; o++ {
		if o.String() == "unknown" {
			t.Errorf("outcome %d has no name", int(o))
		}
	}
	if interp.OutcomeOK.Crashed() || interp.OutcomeExit.Crashed() {
		t.Error("ok/exit misclassified as crash")
	}
	if !interp.OutcomeSegfault.Crashed() {
		t.Error("segfault not a crash")
	}
}

func TestResultClassification(t *testing.T) {
	cases := []struct {
		src  string
		want interp.Outcome
	}{
		{"int main(void){ int *p = (int *) 16; return *p; }", interp.OutcomeSegfault},
		{`int eat(int depth) { char pad[2048]; pad[0] = (char) depth; return eat(depth + 1) + pad[0]; }
		  int main(void){ return eat(0); }`, interp.OutcomeStackOverflow},
	}
	for _, c := range cases {
		res, _ := runMain(t, c.src, core.Standard)
		if res.Outcome != c.want {
			t.Errorf("%q -> %v, want %v", c.src[:40], res.Outcome, c.want)
		}
	}
}

func TestMallocReturnsNullOnExhaustion(t *testing.T) {
	src := `
int main(void) {
	for (;;) {
		char *p = malloc(16 * 1024 * 1024);
		if (p == 0) return 1;
		p[0] = 'x';
	}
}`
	res, _ := runMain(t, src, core.Standard)
	if res.Outcome != interp.OutcomeOK || res.Value.I != 1 {
		t.Errorf("res = %v %d, want malloc to return NULL on exhaustion",
			res.Outcome, res.Value.I)
	}
}
