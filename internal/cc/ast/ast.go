// Package ast defines the abstract syntax tree of the focc C dialect. The
// parser produces it; the semantic analyzer annotates it in place (symbol
// references, expression types, frame offsets); the interpreter executes it.
package ast

import (
	"focc/internal/cc/token"
	"focc/internal/cc/types"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	// Type returns the type annotated by the semantic analyzer.
	Type() *types.Type
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// StorageClass describes where a variable lives.
type StorageClass int

const (
	StorageGlobal StorageClass = iota
	StorageLocal               // in the current stack frame
	StorageParam               // function parameter (also in the frame)
	StorageFunc                // function symbol
	StorageEnum                // enum constant (value, no storage)
)

// Symbol is a resolved named entity. The semantic analyzer creates one per
// declared variable, parameter, or function and links every Ident to it.
type Symbol struct {
	Name    string
	Type    *types.Type
	Storage StorageClass
	Pos     token.Pos

	// FrameOff is the byte offset of a local/param within its frame.
	FrameOff uint64
	// GlobalIdx indexes the program's global layout table.
	GlobalIdx int
	// EnumVal is the value of an enum constant.
	EnumVal int64
	// FuncIdx indexes the program's function table; -1 for externals
	// provided by the libc host.
	FuncIdx int
	// Builtin marks functions supplied by the host (libc) rather than
	// defined in C source.
	Builtin bool
}

type exprBase struct {
	P token.Pos
	T *types.Type
}

func (e *exprBase) Pos() token.Pos        { return e.P }
func (e *exprBase) Type() *types.Type     { return e.T }
func (e *exprBase) SetType(t *types.Type) { e.T = t }
func (e *exprBase) exprNode()             {}

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Val int64
}

// StringLit is a string literal; the semantic analyzer interns it and
// records its index in the program literal table.
type StringLit struct {
	exprBase
	Val      string
	LitIndex int
}

// Ident is a use of a named entity.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// Unary is a prefix operator: - + ! ~ * & ++ --.
type Unary struct {
	exprBase
	Op token.Kind
	X  Expr
	// LoadSite is the canonical load-site id assigned by the semantic
	// analyzer when Op is Star (see sema.assignLoadSites). Engine-
	// independent: all three execution engines prime the context-aware
	// value strategy with this id before a checked load.
	LoadSite int32
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Op token.Kind
	X  Expr
}

// Binary is a binary operator (arithmetic, comparison, logical, bitwise).
type Binary struct {
	exprBase
	Op   token.Kind
	X, Y Expr
}

// Assign is simple or compound assignment.
type Assign struct {
	exprBase
	Op  token.Kind // token.Assign or a compound-assign kind
	LHS Expr
	RHS Expr
}

// Cond is the ternary ?: operator.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// Call is a direct function call.
type Call struct {
	exprBase
	Fun  *Ident
	Args []Expr
}

// Index is x[i].
type Index struct {
	exprBase
	X, Idx Expr
	// LoadSite is the canonical load-site id assigned by the semantic
	// analyzer (see sema.assignLoadSites).
	LoadSite int32
}

// Member is x.f or x->f.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field types.Field // resolved by sema
	// LoadSite is the canonical load-site id assigned by the semantic
	// analyzer (see sema.assignLoadSites).
	LoadSite int32
}

// SizeofExpr is sizeof(expr); SizeofType is sizeof(type-name). Both are
// folded to constants by the semantic analyzer.
type SizeofExpr struct {
	exprBase
	X Expr
}

// SizeofType is sizeof(type-name).
type SizeofType struct {
	exprBase
	Of *types.Type
}

// Cast is (type)x.
type Cast struct {
	exprBase
	To *types.Type
	X  Expr
}

// Comma is the comma operator x, y.
type Comma struct {
	exprBase
	X, Y Expr
}

// InitList is a braced initializer { a, b, ... }; elements are Expr or
// nested *InitList.
type InitList struct {
	exprBase
	Elems []Expr
}

// --- Statements ---

type stmtBase struct{ P token.Pos }

func (s *stmtBase) Pos() token.Pos { return s.P }
func (s *stmtBase) stmtNode()      {}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	stmtBase
	X Expr
}

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
	// LabelIdx maps each label declared at the top level of this block
	// (unwrapping chained `a: b: stmt` labels) to the index of its
	// statement in Stmts. The semantic analyzer fills it so goto
	// resolution is a map lookup at execution time, not a statement scan.
	// Nil when the block declares no labels.
	LabelIdx map[string]int
}

// If is if/else.
type If struct {
	stmtBase
	Cond       Expr
	Then, Else Stmt // Else may be nil
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhile is a do { } while loop.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For is a for loop. Init may be a declaration or an expression statement;
// any of the three clauses may be nil.
type For struct {
	stmtBase
	Init Stmt // *DeclStmt or *ExprStmt or nil
	Cond Expr // nil means true
	Post Expr // nil
	Body Stmt
}

// Switch is a switch statement; Cases are resolved by sema to indexes into
// Body.Stmts.
type Switch struct {
	stmtBase
	Cond Expr
	Body *Block
	// Cases lists (value, statement-index) pairs; DefaultIdx is -1 when
	// there is no default label.
	Cases      []SwitchCase
	DefaultIdx int
	// CaseIdx maps each case value to its statement index in Body.Stmts —
	// the dispatch table the semantic analyzer derives from Cases so case
	// selection is a map lookup at execution time, not a linear scan. Nil
	// when the switch has no value cases.
	CaseIdx map[int64]int
}

// SwitchCase is one resolved case label.
type SwitchCase struct {
	Val int64
	Idx int // index into Switch.Body.Stmts
}

// CaseLabel is `case N:` or `default:` attached before a statement; it only
// appears at the top level of a switch body block.
type CaseLabel struct {
	stmtBase
	IsDefault bool
	Val       Expr // folded constant; nil for default
	FoldedVal int64
}

// Break exits the innermost loop or switch.
type Break struct{ stmtBase }

// Continue continues the innermost loop.
type Continue struct{ stmtBase }

// Return returns from the current function; X may be nil.
type Return struct {
	stmtBase
	X Expr
}

// Goto jumps to a label in the current function.
type Goto struct {
	stmtBase
	Label string
}

// Labeled is `name: stmt`.
type Labeled struct {
	stmtBase
	Name string
	Stmt Stmt
}

// DeclStmt declares one or more local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// Empty is a lone semicolon.
type Empty struct{ stmtBase }

// --- Declarations ---

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

type declBase struct{ P token.Pos }

func (d *declBase) Pos() token.Pos { return d.P }
func (d *declBase) declNode()      {}

// VarDecl declares a variable (global or local).
type VarDecl struct {
	declBase
	Name string
	T    *types.Type
	Init Expr // may be nil; *InitList for aggregates
	Sym  *Symbol
}

// FuncDecl declares or defines a function.
type FuncDecl struct {
	declBase
	Name string
	T    *types.Type // Kind == Func
	Body *Block      // nil for a prototype
	Sym  *Symbol
	// Params are the parameter symbols in order (filled by sema for
	// definitions).
	Params []*Symbol
	// Locals are all block-scoped variable symbols (for frame layout).
	Locals []*Symbol
	// FrameSize is the total frame byte size (params + locals), computed
	// by sema.
	FrameSize uint64
	// Labels maps label names to statement paths, validated by sema.
	Labels map[string]bool
}

// File is a parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
	// EnumConsts carries file-scope enum constants from the parser (which
	// needed them for constant folding) to the semantic analyzer (which
	// turns them into symbols).
	EnumConsts map[string]int64
}
