package corpus

// The corpus sources. Moved verbatim from the interp test files when the
// generated engine (cmd/gencorpus) started needing them at generation
// time; the comments describe their role in the harnesses.

// SrcLinkedList through SrcSieve are integration-scale C programs
// executed under BoundsCheck (every access checked, so any interpreter or
// libc slip is loud) and under FailureOblivious (which must behave
// identically on memory-error-free programs — the paper's baseline sanity
// requirement).

const SrcLinkedList = `
#include <stdlib.h>

struct node {
	int value;
	struct node *next;
};

static struct node *push(struct node *head, int v) {
	struct node *n = malloc(sizeof(struct node));
	n->value = v;
	n->next = head;
	return n;
}

static struct node *reverse(struct node *head) {
	struct node *prev = NULL;
	while (head != NULL) {
		struct node *next = head->next;
		head->next = prev;
		prev = head;
		head = next;
	}
	return prev;
}

static int length(struct node *head) {
	int n = 0;
	for (; head != NULL; head = head->next)
		n++;
	return n;
}

static void destroy(struct node *head) {
	while (head != NULL) {
		struct node *next = head->next;
		free(head);
		head = next;
	}
}

int main(void) {
	struct node *list = NULL;
	struct node *p;
	int i, sum = 0, idx = 0;
	for (i = 1; i <= 10; i++)
		list = push(list, i);        /* 10, 9, ..., 1 */
	list = reverse(list);            /* 1, 2, ..., 10 */
	if (length(list) != 10) return -1;
	for (p = list; p != NULL; p = p->next) {
		idx++;
		if (p->value != idx) return -2;
		sum += p->value;
	}
	destroy(list);
	return sum;                      /* 55 */
}`

const SrcHashTable = `
#include <stdlib.h>
#include <string.h>

#define NBUCKETS 16

struct entry {
	char key[24];
	int value;
	struct entry *next;
};

struct entry *buckets[NBUCKETS];

static unsigned int hash(const char *s) {
	unsigned int h = 5381;
	while (*s)
		h = h * 33 + (unsigned char) *s++;
	return h;
}

static void put(const char *key, int value) {
	unsigned int b = hash(key) % NBUCKETS;
	struct entry *e;
	for (e = buckets[b]; e != NULL; e = e->next) {
		if (strcmp(e->key, key) == 0) {
			e->value = value;
			return;
		}
	}
	e = malloc(sizeof(struct entry));
	strncpy(e->key, key, sizeof(e->key) - 1);
	e->key[sizeof(e->key) - 1] = '\0';
	e->value = value;
	e->next = buckets[b];
	buckets[b] = e;
}

static int get(const char *key, int *out) {
	unsigned int b = hash(key) % NBUCKETS;
	struct entry *e;
	for (e = buckets[b]; e != NULL; e = e->next) {
		if (strcmp(e->key, key) == 0) {
			*out = e->value;
			return 1;
		}
	}
	return 0;
}

int main(void) {
	char key[24];
	int i, v, sum = 0;
	for (i = 0; i < 100; i++) {
		sprintf(key, "key-%d", i);
		put(key, i * 3);
	}
	/* overwrite some */
	for (i = 0; i < 100; i += 10) {
		sprintf(key, "key-%d", i);
		put(key, 1000 + i);
	}
	for (i = 0; i < 100; i++) {
		sprintf(key, "key-%d", i);
		if (!get(key, &v)) return -1;
		sum += v;
	}
	if (get("missing", &v)) return -2;
	/* sum = sum(3i, i=0..99) - sum(3i, i mult of 10) + sum(1000+i, i mult of 10)
	       = 14850 - 1350 + 10450 = 23950 */
	return sum == 23950 ? 1 : 0;
}`

const SrcQuicksort = `
static void quicksort(int *a, int lo, int hi) {
	int pivot, i, j, tmp;
	if (lo >= hi)
		return;
	pivot = a[(lo + hi) / 2];
	i = lo;
	j = hi;
	while (i <= j) {
		while (a[i] < pivot) i++;
		while (a[j] > pivot) j--;
		if (i <= j) {
			tmp = a[i]; a[i] = a[j]; a[j] = tmp;
			i++; j--;
		}
	}
	quicksort(a, lo, j);
	quicksort(a, i, hi);
}

int main(void) {
	int data[64];
	unsigned int seed = 12345;
	int i;
	for (i = 0; i < 64; i++) {
		seed = seed * 1103515245u + 12345u;
		data[i] = (int)(seed % 1000);
	}
	quicksort(data, 0, 63);
	for (i = 1; i < 64; i++)
		if (data[i - 1] > data[i])
			return 0;
	return 1;
}`

const SrcTokenizer = `
#include <string.h>
#include <ctype.h>

/* A tiny expression tokenizer + recursive-descent evaluator:
   digits, + - * / and parentheses. */

const char *input;
int pos;

static void skipws(void) {
	while (input[pos] == ' ')
		pos++;
}

static int parse_expr(void);

static int parse_primary(void) {
	int v = 0;
	skipws();
	if (input[pos] == '(') {
		pos++;
		v = parse_expr();
		skipws();
		if (input[pos] == ')')
			pos++;
		return v;
	}
	while (isdigit(input[pos])) {
		v = v * 10 + (input[pos] - '0');
		pos++;
	}
	return v;
}

static int parse_term(void) {
	int v = parse_primary();
	for (;;) {
		skipws();
		if (input[pos] == '*') {
			pos++;
			v *= parse_primary();
		} else if (input[pos] == '/') {
			pos++;
			v /= parse_primary();
		} else {
			return v;
		}
	}
}

static int parse_expr(void) {
	int v = parse_term();
	for (;;) {
		skipws();
		if (input[pos] == '+') {
			pos++;
			v += parse_term();
		} else if (input[pos] == '-') {
			pos++;
			v -= parse_term();
		} else {
			return v;
		}
	}
}

static int eval(const char *s) {
	input = s;
	pos = 0;
	return parse_expr();
}

int main(void) {
	if (eval("1 + 2 * 3") != 7) return 1;
	if (eval("(1 + 2) * 3") != 9) return 2;
	if (eval("100 / 5 / 2") != 10) return 3;
	if (eval("2 * (3 + 4) - 5") != 9) return 4;
	if (eval("((((42))))") != 42) return 5;
	return 0;
}`

const SrcMatrixMultiply = `
#define N 8
int a[N][N], b[N][N], c[N][N];
int main(void) {
	int i, j, k, trace = 0;
	for (i = 0; i < N; i++)
		for (j = 0; j < N; j++) {
			a[i][j] = i + j;
			b[i][j] = (i == j) ? 2 : 0;  /* 2 * identity */
		}
	for (i = 0; i < N; i++)
		for (j = 0; j < N; j++) {
			int sum = 0;
			for (k = 0; k < N; k++)
				sum += a[i][k] * b[k][j];
			c[i][j] = sum;
		}
	/* c should be 2*a; trace(c) = 2 * sum(2i) = 4 * (0+1+...+7) */
	for (i = 0; i < N; i++)
		trace += c[i][i];
	return trace; /* 4 * 28 = 112 */
}`

const SrcStringRotate = `
#include <string.h>
char buf[32] = "abcdefgh";
static void reverse_range(char *s, int lo, int hi) {
	while (lo < hi) {
		char t = s[lo];
		s[lo] = s[hi];
		s[hi] = t;
		lo++;
		hi--;
	}
}
int main(void) {
	int n = (int) strlen(buf);
	/* rotate left by 3 via three reversals */
	reverse_range(buf, 0, 2);
	reverse_range(buf, 3, n - 1);
	reverse_range(buf, 0, n - 1);
	return strcmp(buf, "defghabc") == 0;
}`

const SrcBitTricks = `
static int popcount(unsigned int v) {
	int c = 0;
	while (v) {
		v &= v - 1;
		c++;
	}
	return c;
}
static int parity(unsigned int v) { return popcount(v) & 1; }
int main(void) {
	if (popcount(0) != 0) return 1;
	if (popcount(0xFF) != 8) return 2;
	if (popcount(0x80000001u) != 2) return 3;
	if (parity(7) != 1 || parity(3) != 0) return 4;
	return 0;
}`

// SrcBase64 round-trips a base64 encoder/decoder — the same flavour of
// bit-twiddling as Mutt's Figure 1 conversion.
const SrcBase64 = `
#include <string.h>

static const char *alphabet =
	"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

static int b64_encode(const char *in, int n, char *out) {
	int i, o = 0;
	for (i = 0; i + 2 < n; i += 3) {
		unsigned int v = ((unsigned char)in[i] << 16) |
		                 ((unsigned char)in[i+1] << 8) |
		                 (unsigned char)in[i+2];
		out[o++] = alphabet[(v >> 18) & 63];
		out[o++] = alphabet[(v >> 12) & 63];
		out[o++] = alphabet[(v >> 6) & 63];
		out[o++] = alphabet[v & 63];
	}
	if (n - i == 1) {
		unsigned int v = (unsigned char)in[i] << 16;
		out[o++] = alphabet[(v >> 18) & 63];
		out[o++] = alphabet[(v >> 12) & 63];
		out[o++] = '=';
		out[o++] = '=';
	} else if (n - i == 2) {
		unsigned int v = ((unsigned char)in[i] << 16) |
		                 ((unsigned char)in[i+1] << 8);
		out[o++] = alphabet[(v >> 18) & 63];
		out[o++] = alphabet[(v >> 12) & 63];
		out[o++] = alphabet[(v >> 6) & 63];
		out[o++] = '=';
	}
	out[o] = '\0';
	return o;
}

static int sixbits(char c) {
	const char *p = strchr(alphabet, c);
	if (p == NULL)
		return -1;
	return (int)(p - alphabet);
}

static int b64_decode(const char *in, char *out) {
	int o = 0;
	while (*in && *in != '=') {
		int v = 0, bits = 0;
		int j;
		for (j = 0; j < 4 && in[j] && in[j] != '='; j++) {
			v = (v << 6) | sixbits(in[j]);
			bits += 6;
		}
		v <<= (4 - j) * 6;
		if (bits >= 8)  out[o++] = (char)((v >> 16) & 0xFF);
		if (bits >= 16) out[o++] = (char)((v >> 8) & 0xFF);
		if (bits >= 24) out[o++] = (char)(v & 0xFF);
		in += j;
	}
	out[o] = '\0';
	return o;
}

int main(void) {
	char enc[128], dec[128];
	const char *msg = "failure-oblivious!";
	int n = b64_encode(msg, (int) strlen(msg), enc);
	if (n <= 0) return 1;
	if (strcmp(enc, "ZmFpbHVyZS1vYmxpdmlvdXMh") != 0) return 2;
	b64_decode(enc, dec);
	if (strcmp(dec, msg) != 0) return 3;
	/* padding cases */
	b64_encode("a", 1, enc);
	if (strcmp(enc, "YQ==") != 0) return 4;
	b64_decode(enc, dec);
	if (strcmp(dec, "a") != 0) return 5;
	b64_encode("ab", 2, enc);
	if (strcmp(enc, "YWI=") != 0) return 6;
	b64_decode(enc, dec);
	if (strcmp(dec, "ab") != 0) return 7;
	return 0;
}`

const SrcSieve = `
#include <string.h>
char composite[1000];
int main(void) {
	int i, j, count = 0;
	memset(composite, 0, sizeof(composite));
	for (i = 2; i < 1000; i++) {
		if (composite[i])
			continue;
		count++;
		for (j = i * 2; j < 1000; j += i)
			composite[j] = 1;
	}
	return count; /* 168 primes below 1000 */
}`

// PinSrc exercises the access paths whose accounting the fast path must
// preserve: trusted direct accesses, checked pointer/array accesses,
// bulk libc span operations (memcpy/memset/strcpy), byte-at-a-time libc
// scans (strlen/strchr/strcmp), and out-of-bounds tails that take the
// continuation path. The simulated-cycle pin test compiles it under
// PinFileName via fo.Compile; the engine-diff tests under FileName via
// CompileCPP — both identities carry generated code.
const PinSrc = `
char dst[256];
char src[256];

int bulk(int n) {
	int i;
	for (i = 0; i < 64; i++)
		src[i] = 'a' + (i & 7);
	src[64] = 0;
	memcpy(dst, src, 128);
	memset(dst + 128, 'x', 64);
	strcpy(dst, src);
	return (int)strlen(dst);
}

int scan(int n) {
	int total = 0;
	char *p = src;
	total += (int)strlen(p);
	if (strchr(p, 'q') == 0)
		total++;
	total += strcmp(src, dst);
	return total;
}

int oob(int n) {
	char small[8];
	int i, x = 0;
	for (i = 0; i < n; i++)
		x += small[i];  /* runs past the end for n > 8 */
	return x;
}

int ptrs(int n) {
	long *blk = (long *)malloc(64);
	int i;
	long x = 0;
	for (i = 0; i < 8; i++)
		blk[i] = i;
	for (i = 0; i < 8; i++)
		x += blk[i];
	free(blk);
	return (int)x;
}
`

// SrcControlFlow tortures the statically-lowered control flow: goto into
// and out of nested blocks, switch dispatch with fallthrough and
// default, do-while, break/continue, and labeled statements.
const SrcControlFlow = `
int collatz(int n) {
	int steps = 0;
top:
	if (n == 1)
		goto done;
	if (n % 2 == 0) {
		n = n / 2;
	} else {
		n = 3 * n + 1;
	}
	steps++;
	goto top;
done:
	return steps;
}

int classify(int c) {
	int score = 0;
	switch (c) {
	case 0:
		score = 1;
		break;
	case 1:
	case 2:
		score = 10;
		/* fall through */
	case 3:
		score += 100;
		break;
	default:
		score = -1;
	}
	return score;
}

int weave(int n) {
	int i = 0, acc = 0;
	do {
		int j;
		for (j = 0; j < n; j++) {
			if (j == 2)
				continue;
			if (j == 5)
				break;
			acc += j;
		}
		i++;
		if (i > 3)
			goto out;
	} while (i < 10);
out:
	while (i-- > 0)
		acc++;
	return acc;
}

int dispatch(int n) {
	int total = 0, i;
	for (i = 0; i < n; i++) {
		switch (i & 3) {
		case 0: total += classify(i); break;
		case 1: total += collatz(i + 1); break;
		case 2: total += weave(i); break;
		default:
			switch (i % 5) {
			case 0: total++; break;
			default: total--; break;
			}
		}
	}
	return total;
}
`

// SrcErrorPaths pins the engines' fatal-error parity: division by zero,
// hangs under a small step budget, and exit().
const SrcErrorPaths = `
#include <stdlib.h>
int divz(int n) { return 100 / n; }
int spin(int n) { while (1) { n++; } return n; }
int quit(int n) { exit(n); return 0; }
`

// SrcBatchEpoch exercises the batch-granularity checkpoint epoch
// (Machine.BeginBatchEpoch): a handler that mutates global and heap state
// and, for large n, overruns a stack buffer — rewound under ModeRewind —
// plus a getter to observe what survived the epoch.
const SrcBatchEpoch = `
#include <stdlib.h>
int counter;
char *saved;

int bump(int n) {
	char buf[8];
	int i;
	counter = counter + 1;
	saved = (char *)malloc(16);
	saved[0] = 'x';
	for (i = 0; i < n; i++)
		buf[i] = i;
	return counter;
}

int get(int n) { return counter; }
`

// SrcDataShapes covers the value-shape paths: struct copies by pointer
// and by member, nested aggregates with initializers, string literals,
// pointer arithmetic and compound assignment, ternary, comma, casts, and
// printf output.
const SrcDataShapes = `
#include <string.h>
#include <stdio.h>

struct point { int x, y; };
struct rect { struct point min, max; };

int area(void) {
	struct rect r = { {1, 2}, {11, 22} };
	struct rect s;
	struct rect *p = &s;
	s = r;                       /* struct copy */
	p->max.x += 10;              /* arrow + dot + compound */
	return (s.max.x - s.min.x) * (s.max.y - s.min.y);
}

int strings(void) {
	char buf[16] = "abc";
	char *p = buf;
	int n = 0;
	*(p + 3) = 'd';
	p[4] = '\0';
	n = (int) strlen(buf);
	printf("s=%s n=%d\n", buf, n);
	return n;
}

int mixed(int k) {
	long total = 0;
	int i;
	int tbl[8] = {1, 2, 3, 4, 5, 6, 7, 8};
	for (i = 0; i < 8; i++)
		total += (i % 2 == 0) ? tbl[i] : -tbl[i], total <<= 1;
	total = (long)(short)(total + k);
	return (int) total;
}
`
