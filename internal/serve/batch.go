package serve

import (
	"context"
	"sync"
	"time"
)

// batcher coalesces submitted small requests into batch wrapper tasks
// (WithBatching). Submits land in the pending accumulator; the batch
// flushes to the engine's admission queue when it reaches maxBatch or
// when the oldest pending request has waited maxDelay, whichever comes
// first. The flushed wrapper occupies ONE queue slot and is dispatched to
// one worker instance, which executes the sub-requests back to back under
// a single checkpoint/rewind epoch (see Engine.serveBatch).
//
// The admission decision is deadline-aware: a request whose deadline
// could not survive waiting out maxDelay is refused by admit and enqueued
// alone by Submit, so batching never converts a tight-deadline request
// into a timeout.
type batcher struct {
	e     *Engine
	max   int
	delay time.Duration

	mu      sync.Mutex
	pending []*task
	timer   *time.Timer // armed iff pending is non-empty
}

func newBatcher(e *Engine) *batcher {
	return &batcher{e: e, max: e.o.batchMax, delay: e.o.batchDelay}
}

// admit offers t to the batcher. It returns false when t must bypass
// batching (its deadline cannot absorb the flush delay); the caller then
// enqueues it alone. On true, t's reply will arrive on t.resp like any
// submitted task — from the worker that executed its batch, or as an
// admission error if the flushed batch could not be enqueued.
func (b *batcher) admit(t *task) bool {
	if dl, ok := t.ctx.Deadline(); ok && time.Until(dl) <= b.delay {
		return false
	}
	b.mu.Lock()
	b.pending = append(b.pending, t)
	if len(b.pending) >= b.max {
		batch := b.pending
		b.pending = nil
		if b.timer != nil {
			b.timer.Stop()
			b.timer = nil
		}
		b.mu.Unlock()
		b.e.enqueueBatch(batch)
		return true
	}
	if len(b.pending) == 1 {
		b.timer = time.AfterFunc(b.delay, b.flushAfterDelay)
	}
	b.mu.Unlock()
	return true
}

// flushAfterDelay is the timer path: the oldest pending request has
// waited maxDelay, so whatever has accumulated ships as a partial batch.
func (b *batcher) flushAfterDelay() {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.timer = nil
	b.mu.Unlock()
	if len(batch) > 0 {
		b.e.enqueueBatch(batch)
	}
}

// enqueueBatch wraps subs into one batch task and admits it to the
// engine's queue — one slot per batch. If admission fails every
// sub-request is answered with the admission error (their submitters are
// blocked on their own reply channels).
func (e *Engine) enqueueBatch(subs []*task) {
	bt := &task{ctx: context.Background(), enq: subs[0].enq, batch: subs}
	if e.q != nil {
		if err := e.q.push(bt); err != nil {
			if err == ErrQueueFull {
				e.rejected.Add(uint64(len(subs)))
			}
			answer(bt, taskResult{err: err})
		}
		return
	}
	select {
	case e.tasks <- bt:
	case <-e.closing.Done():
		answer(bt, taskResult{err: ErrClosed})
	default:
		e.rejected.Add(uint64(len(subs)))
		answer(bt, taskResult{err: ErrQueueFull})
	}
}

// answer delivers r to t's submitter — fanning out to every sub-request's
// reply channel when t is a batch wrapper. Reply channels are buffered;
// the send never blocks.
func answer(t *task, r taskResult) {
	if t.batch == nil {
		t.resp <- r
		return
	}
	for _, s := range t.batch {
		s.resp <- r
	}
}

// taskCount returns how many submitted requests t represents (sub-requests
// for a batch wrapper, 1 otherwise) — the unit for Stats counters like
// Shed, which count requests, not queue slots.
func taskCount(t *task) uint64 {
	if t.batch != nil {
		return uint64(len(t.batch))
	}
	return 1
}

// batchEpocher is the optional instance capability serveBatch uses to
// bracket a batch in one checkpoint/rewind epoch (servers.Base provides
// it; see fo.Machine.BeginBatchEpoch).
type batchEpocher interface {
	BeginBatch()
	EndBatch()
}

// batchBinder is the optional instance capability serveBatch uses to bind
// the engine's closing context once per batch instead of once per request
// (servers.Base provides it). Binding a context costs a watcher goroutine;
// with the batch-scope bind in place the per-request BindContext of the
// same context inside HandleContext is recognized as a nested bind and
// becomes free (see fo.Machine.BindContext).
type batchBinder interface {
	BindBatch(context.Context) (release func())
}
