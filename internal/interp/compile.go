package interp

// Compile-once execution IR. The tree-walking evaluator (eval.go) pays a
// per-node type-switch on every execution of every statement; after the
// PR 3 memory-access fast path that dispatch became the dominant Go-level
// cost in the figure benchmarks. Compile lowers each function body ONCE
// into a tree of pre-resolved Go closures in which
//
//   - identifier lookups are frame-slot offsets / global indexes,
//   - trusted-vs-checked access decisions, array decay, and result types
//     are resolved statically (they are derivable from sema's annotations),
//   - goto label targets and switch case tables are the maps sema
//     precomputed (ast.Block.LabelIdx, ast.Switch.CaseIdx),
//   - constant operands are prebuilt Values,
//   - provenance-recovery access sites carry dense integer ids so the
//     per-site unit-lookup caches become slice indexing instead of a
//     map[ast.Node] lookup,
//   - frame specs are built at lowering time (the program-level promotion
//     of the per-machine frameSpec cache),
//
// and execution is a closure call per node instead of a dispatch per node.
//
// The CompiledProgram is immutable and carries no machine state: one
// Compile result is shared by every Machine of the program — every
// instance in a serve.Engine pool, warm spares, and restart replacements
// all reuse it, so no path re-lowers anything. Per-machine mutable state
// (site caches, builtin slots) lives on the Machine, indexed by ids
// assigned here.
//
// Cycle-charging invariant: the compiled engine charges simulated cycles
// (cycles.go) at exactly the decision points the tree-walk engine does —
// step() per statement/iteration/call, AccessCycles per trusted access,
// chargeAccess per checked access — so SimCycles is bit-identical between
// engines for every execution. simcycles_pin_test.go pins representative
// counts for both engines and compile_diff_test.go asserts equality over
// the whole corpus; any divergence is a bug in the lowering, not a
// permissible optimization.

import (
	"focc/internal/cc/ast"
	"focc/internal/cc/sema"
	"focc/internal/cc/token"
	"focc/internal/cc/types"
	"focc/internal/core"
	"focc/internal/mem"
)

// execFn is a compiled statement: it executes against a machine and
// returns the control-flow signal, exactly like Machine.execStmt.
type execFn func(m *Machine) ctrl

// evalFn is a compiled expression.
type evalFn func(m *Machine) Value

// ptrFn is a compiled lvalue: it evaluates to the lvalue's pointer. The
// lvalue's type and trustedness are static (see compileLvalue) and are
// carried alongside at lowering time instead of in the runtime value.
type ptrFn func(m *Machine) core.Pointer

// CompiledProgram is the immutable lowered form of a sema.Program. It is
// safe for concurrent use by any number of machines.
type CompiledProgram struct {
	prog   *sema.Program
	funcs  []*compiledFunc // indexed by Symbol.FuncIdx
	byName map[string]*compiledFunc

	// numSites is the number of provenance-recovery access sites; each
	// machine allocates one LookupCache per site (Machine.csite).
	numSites int
	// builtinNames maps builtin-slot id -> builtin name; each machine
	// memoizes its resolved BuiltinFunc per slot (Machine.builtinSlots).
	builtinNames []string
}

// Program returns the analyzed program this IR was lowered from.
func (cp *CompiledProgram) Program() *sema.Program { return cp.prog }

// compiledFunc is one lowered function definition.
type compiledFunc struct {
	fd      *ast.FuncDecl
	spec    *frameSpec // built at lowering time, shared by all machines
	body    execFn     // the body block's statement sequence (no entry step)
	retT    *types.Type
	retVoid bool

	// localIdx maps a local's frame offset to its index in the pushed
	// frame's unit slice (PushFrame registers locals in reverse spec order,
	// so spec index i lives at len(spec)-1-i). Compiled identifier accesses
	// resolve the index here, at lowering time, and use Frame.LocalAt —
	// O(1) — where the tree-walk engine scans Frame.Local's offset table.
	localIdx map[uint64]int
	// paramIdx holds each parameter's frame-unit index (parallel to
	// fd.Params; -1 when the offset has no frame slot, which mirrors the
	// tree-walk engine's nil-unit failure).
	paramIdx []int
}

// compiler carries the lowering state for one program.
type compiler struct {
	prog *sema.Program
	cp   *CompiledProgram

	// cur is the function whose body is being lowered; identifier lowering
	// consults its localIdx table.
	cur *compiledFunc

	numSites   int
	builtinIdx map[string]int
}

// Compile lowers prog to its closure IR. It never fails: constructs the
// evaluator would reject at execution time (unresolved identifiers,
// unsupported nodes) lower to closures that raise the identical runtime
// error when — and only when — they execute.
func Compile(prog *sema.Program) *CompiledProgram {
	cp := &CompiledProgram{
		prog:   prog,
		funcs:  make([]*compiledFunc, len(prog.Funcs)),
		byName: make(map[string]*compiledFunc, len(prog.Funcs)),
	}
	c := &compiler{prog: prog, cp: cp, builtinIdx: map[string]int{}}
	// Shell pass first so call sites can link to callees in any order
	// (recursion included).
	for i, fd := range prog.Funcs {
		ret := fd.T.Fn.Ret
		cf := &compiledFunc{
			fd:      fd,
			spec:    newFrameSpec(fd),
			retT:    ret,
			retVoid: ret.IsVoid(),
		}
		// Frame-offset → unit-index table: PushFrame appends locals in
		// descending spec order (guard first, then top-down), so spec
		// index i lands at slice index n-1-i. Ascending iteration keeps
		// the largest spec index on offset collisions, matching the unit
		// Frame.Local's scan (over the reversed offs slice) would find.
		n := len(cf.spec.locals)
		cf.localIdx = make(map[uint64]int, n)
		for i, ls := range cf.spec.locals {
			cf.localIdx[ls.Off] = n - 1 - i
		}
		cf.paramIdx = make([]int, len(fd.Params))
		for i, p := range fd.Params {
			if idx, ok := cf.localIdx[p.FrameOff]; ok {
				cf.paramIdx[i] = idx
			} else {
				cf.paramIdx[i] = -1
			}
		}
		cp.funcs[i] = cf
		cp.byName[fd.Name] = cf
	}
	for _, cf := range cp.funcs {
		c.cur = cf
		if cf.fd.Body == nil {
			fd := cf.fd
			cf.body = func(m *Machine) ctrl {
				m.failf(fd.Pos(), "function %q has no body", fd.Name)
				return ctrlNone
			}
			continue
		}
		cf.body = c.compileSeq(cf.fd.Body)
	}
	cp.numSites = c.numSites
	return cp
}

// siteFor assigns a provenance-recovery site id when loads of type t can
// need one (pointer loads whose shadow provenance was lost); -1 otherwise.
func (c *compiler) siteFor(t *types.Type) int32 {
	if t == nil || !t.IsPointer() {
		return -1
	}
	id := c.numSites
	c.numSites++
	return int32(id)
}

// builtinSlot assigns (or reuses) the memoization slot for a builtin name.
func (c *compiler) builtinSlot(name string) int {
	if id, ok := c.builtinIdx[name]; ok {
		return id
	}
	id := len(c.cp.builtinNames)
	c.builtinIdx[name] = id
	c.cp.builtinNames = append(c.cp.builtinNames, name)
	return id
}

// stmtFail lowers to a statement that raises a runtime error when executed
// (mirroring execStmt, which steps before failing).
func stmtFail(pos token.Pos, format string, args ...any) execFn {
	return func(m *Machine) ctrl {
		m.step()
		m.failf(pos, format, args...)
		return ctrlNone
	}
}

// --- Statement lowering ---

// compileSeq lowers a block's statement list to its sequence runner: the
// shared body of block statements, switch bodies, and function bodies.
// The runner performs NO entry step — callers that execute the block as a
// statement charge it (mirroring execStmt vs execBlock).
func (c *compiler) compileSeq(b *ast.Block) func(*Machine) ctrl {
	stmts := make([]execFn, len(b.Stmts))
	for i, s := range b.Stmts {
		stmts[i] = c.compileStmt(s)
	}
	labels := b.LabelIdx
	if len(stmts) == 0 {
		return func(*Machine) ctrl { return ctrlNone }
	}
	return func(m *Machine) ctrl {
		i := 0
		for i < len(stmts) {
			ct := stmts[i](m)
			if ct == ctrlGoto {
				if idx, ok := labels[m.gotoLabel]; ok {
					i = idx
					continue
				}
				return ct
			}
			if ct != ctrlNone {
				return ct
			}
			i++
		}
		return ctrlNone
	}
}

func (c *compiler) compileStmt(s ast.Stmt) execFn {
	switch n := s.(type) {
	case *ast.Empty:
		return func(m *Machine) ctrl {
			m.step()
			return ctrlNone
		}
	case *ast.Block:
		body := c.compileSeq(n)
		return func(m *Machine) ctrl {
			m.step()
			return body(m)
		}
	case *ast.ExprStmt:
		x := c.compileExpr(n.X)
		return func(m *Machine) ctrl {
			m.step()
			x(m)
			return ctrlNone
		}
	case *ast.DeclStmt:
		inits := make([]func(*Machine), len(n.Decls))
		for i, vd := range n.Decls {
			inits[i] = c.compileLocalDecl(vd)
		}
		if len(inits) == 1 {
			init := inits[0]
			return func(m *Machine) ctrl {
				m.step()
				init(m)
				return ctrlNone
			}
		}
		return func(m *Machine) ctrl {
			m.step()
			for _, init := range inits {
				init(m)
			}
			return ctrlNone
		}
	case *ast.If:
		cond := c.compileExpr(n.Cond)
		then := c.compileStmt(n.Then)
		if n.Else == nil {
			return func(m *Machine) ctrl {
				m.step()
				if cond(m).Truthy() {
					return then(m)
				}
				return ctrlNone
			}
		}
		els := c.compileStmt(n.Else)
		return func(m *Machine) ctrl {
			m.step()
			if cond(m).Truthy() {
				return then(m)
			}
			return els(m)
		}
	case *ast.While:
		cond := c.compileExpr(n.Cond)
		body := c.compileStmt(n.Body)
		return func(m *Machine) ctrl {
			m.step()
			for cond(m).Truthy() {
				m.step()
				switch ct := body(m); ct {
				case ctrlBreak:
					return ctrlNone
				case ctrlContinue, ctrlNone:
				default:
					return ct
				}
			}
			return ctrlNone
		}
	case *ast.DoWhile:
		cond := c.compileExpr(n.Cond)
		body := c.compileStmt(n.Body)
		return func(m *Machine) ctrl {
			m.step()
			for {
				m.step()
				switch ct := body(m); ct {
				case ctrlBreak:
					return ctrlNone
				case ctrlContinue, ctrlNone:
				default:
					return ct
				}
				if !cond(m).Truthy() {
					return ctrlNone
				}
			}
		}
	case *ast.For:
		var init execFn
		if n.Init != nil {
			init = c.compileStmt(n.Init)
		}
		var cond, post evalFn
		if n.Cond != nil {
			cond = c.compileExpr(n.Cond)
		}
		if n.Post != nil {
			post = c.compileExpr(n.Post)
		}
		body := c.compileStmt(n.Body)
		return func(m *Machine) ctrl {
			m.step()
			if init != nil {
				init(m)
			}
			for cond == nil || cond(m).Truthy() {
				m.step()
				switch ct := body(m); ct {
				case ctrlBreak:
					return ctrlNone
				case ctrlContinue, ctrlNone:
				default:
					return ct
				}
				if post != nil {
					post(m)
				}
			}
			return ctrlNone
		}
	case *ast.Switch:
		return c.compileSwitch(n)
	case *ast.CaseLabel:
		return func(m *Machine) ctrl {
			m.step()
			return ctrlNone
		}
	case *ast.Break:
		return func(m *Machine) ctrl {
			m.step()
			return ctrlBreak
		}
	case *ast.Continue:
		return func(m *Machine) ctrl {
			m.step()
			return ctrlContinue
		}
	case *ast.Return:
		if n.X == nil {
			return func(m *Machine) ctrl {
				m.step()
				m.retVal = Value{}
				return ctrlReturn
			}
		}
		x := c.compileExpr(n.X)
		return func(m *Machine) ctrl {
			m.step()
			m.retVal = x(m)
			return ctrlReturn
		}
	case *ast.Goto:
		label := n.Label
		return func(m *Machine) ctrl {
			m.step()
			m.gotoLabel = label
			return ctrlGoto
		}
	case *ast.Labeled:
		inner := c.compileStmt(n.Stmt)
		return func(m *Machine) ctrl {
			m.step()
			return inner(m)
		}
	}
	return stmtFail(s.Pos(), "unsupported statement %T", s)
}

// compileSwitch lowers a switch to its case-table dispatch plus the body's
// statement sequence starting at the selected index.
func (c *compiler) compileSwitch(n *ast.Switch) execFn {
	cond := c.compileExpr(n.Cond)
	stmts := make([]execFn, len(n.Body.Stmts))
	for i, s := range n.Body.Stmts {
		stmts[i] = c.compileStmt(s)
	}
	caseIdx := n.CaseIdx
	labels := n.Body.LabelIdx
	def := n.DefaultIdx
	return func(m *Machine) ctrl {
		m.step()
		v := cond(m)
		start, ok := caseIdx[v.I]
		if !ok {
			start = def
		}
		if start < 0 {
			return ctrlNone
		}
		i := start
		for i < len(stmts) {
			switch ct := stmts[i](m); ct {
			case ctrlBreak:
				return ctrlNone
			case ctrlGoto:
				if idx, ok := labels[m.gotoLabel]; ok {
					i = idx
					continue
				}
				return ct
			case ctrlNone:
				i++
			default:
				return ct
			}
		}
		return ctrlNone
	}
}

// compileLocalDecl lowers one local variable declaration, mirroring
// Machine.execLocalDecl with the symbol, frame offset, and initializer
// shape resolved at lowering time.
func (c *compiler) compileLocalDecl(vd *ast.VarDecl) func(*Machine) {
	sym := vd.Sym
	pos := vd.Pos()
	if sym == nil {
		return func(m *Machine) {
			m.failf(pos, "internal: unresolved local %q", vd.Name)
		}
	}
	slot := c.localSlot(sym.FrameOff, sym.Name, pos)
	t := sym.Type
	size := t.Size()
	switch init := vd.Init.(type) {
	case nil:
		// Uninitialized locals keep whatever bytes the stack arena holds
		// (realistically stale) — only the frame-slot resolution runs.
		return func(m *Machine) {
			slot(m)
		}
	case *ast.InitList:
		elems := c.compileAggregateInit(t, init)
		return func(m *Machine) {
			u := slot(m)
			m.zeroFill(u, 0, size)
			for _, e := range elems {
				e(m, u)
			}
		}
	case *ast.StringLit:
		if t.Kind == types.Array {
			litIdx := init.LitIndex
			return func(m *Machine) {
				u := slot(m)
				m.zeroFill(u, 0, size)
				lit := m.literals[litIdx]
				n := uint64(len(lit.Data))
				if n > size {
					n = size
				}
				copy(u.Data[:n], lit.Data[:n])
			}
		}
		// Non-array target: the literal decays to a char* and stores like
		// any scalar initializer.
		ev := c.compileExpr(vd.Init)
		return func(m *Machine) {
			u := slot(m)
			v := ev(m)
			m.storeRaw(u, 0, t, m.convert(v, t, pos))
		}
	default:
		ev := c.compileExpr(vd.Init)
		return func(m *Machine) {
			u := slot(m)
			v := ev(m)
			m.storeRaw(u, 0, t, m.convert(v, t, pos))
		}
	}
}

// localSlot lowers the resolution of the current function's local at frame
// offset off: O(1) unit indexing when the offset is in the frame layout
// (always, for sema-produced programs), otherwise the tree-walk engine's
// checked offset scan.
func (c *compiler) localSlot(off uint64, name string, pos token.Pos) func(*Machine) *mem.Unit {
	if idx, ok := c.cur.localIdx[off]; ok {
		return func(m *Machine) *mem.Unit { return m.frame.LocalAt(idx) }
	}
	return func(m *Machine) *mem.Unit {
		u := m.frame.Local(off)
		if u == nil {
			m.failf(pos, "internal: no frame slot for %q", name)
		}
		return u
	}
}

// aggInit writes one leaf of an aggregate initializer into the target unit.
type aggInit func(m *Machine, u *mem.Unit)

// compileAggregateInit flattens a braced initializer into its ordered leaf
// writers, with element offsets and types resolved at lowering time
// (mirroring initLocalAggregate/initLocalElem).
func (c *compiler) compileAggregateInit(t *types.Type, il *ast.InitList) []aggInit {
	var out []aggInit
	c.flattenInit(&out, 0, t, il)
	return out
}

func (c *compiler) flattenInit(out *[]aggInit, off uint64, t *types.Type, il *ast.InitList) {
	switch t.Kind {
	case types.Array:
		es := t.Elem.Size()
		for i, e := range il.Elems {
			c.flattenInitElem(out, off+uint64(i)*es, t.Elem, e)
		}
	case types.Struct:
		for i, e := range il.Elems {
			if i >= len(t.Rec.Fields) {
				break
			}
			f := t.Rec.Fields[i]
			c.flattenInitElem(out, off+f.Offset, f.Type, e)
		}
	default:
		if len(il.Elems) == 1 {
			c.flattenInitElem(out, off, t, il.Elems[0])
		}
	}
}

func (c *compiler) flattenInitElem(out *[]aggInit, off uint64, t *types.Type, e ast.Expr) {
	if nested, ok := e.(*ast.InitList); ok {
		c.flattenInit(out, off, t, nested)
		return
	}
	if s, ok := e.(*ast.StringLit); ok && t.Kind == types.Array {
		litIdx := s.LitIndex
		max := t.Size()
		*out = append(*out, func(m *Machine, u *mem.Unit) {
			lit := m.literals[litIdx]
			n := uint64(len(lit.Data))
			if n > max {
				n = max
			}
			copy(u.Data[off:off+n], lit.Data[:n])
		})
		return
	}
	ev := c.compileExpr(e)
	pos := e.Pos()
	*out = append(*out, func(m *Machine, u *mem.Unit) {
		v := ev(m)
		m.storeRaw(u, off, t, m.convert(v, t, pos))
	})
}
