package serve

import (
	"fmt"
	"time"
)

// Option configures an Engine (the functional-options constructor of the
// serving API: WithPoolSize, WithQueueDepth, WithDeadline, WithBackoff,
// WithBreaker, WithWarmSpares, WithShedding, WithChaos).
//
// Options record exactly what the caller asked for; New validates the
// combined configuration and returns a descriptive error for values that
// cannot work (non-positive pool or queue sizes, negative deadlines, a
// backoff base above its cap, …) instead of silently clamping them.
type Option func(*options)

type options struct {
	poolSize   int
	queueDepth int
	deadline   time.Duration

	backoffBase time.Duration
	backoffMax  time.Duration

	breakerAfter int
	breakerCool  time.Duration

	warmSpares int

	shed ShedConfig

	chaos ChaosConfig

	batchMax   int
	batchDelay time.Duration
}

func defaultOptions() options {
	return options{
		poolSize:     4,
		queueDepth:   64,
		deadline:     0, // no per-request deadline unless configured
		backoffBase:  time.Millisecond,
		backoffMax:   250 * time.Millisecond,
		breakerAfter: 8,
		breakerCool:  500 * time.Millisecond,
		warmSpares:   0, // no pre-warmed replacements unless configured
	}
}

// validate rejects configurations that cannot work, naming the offending
// value. It runs once, in New, over the fully-assembled options — so
// inter-option constraints (backoff base vs. cap, breaker threshold vs.
// cooldown) are checked against the final values, not call order.
func (o *options) validate() error {
	if o.poolSize <= 0 {
		return fmt.Errorf("serve: pool size %d: must be at least 1 worker instance", o.poolSize)
	}
	if o.queueDepth <= 0 {
		return fmt.Errorf("serve: queue depth %d: must admit at least 1 request", o.queueDepth)
	}
	if o.deadline < 0 {
		return fmt.Errorf("serve: deadline %v: must be positive (or 0 to disable)", o.deadline)
	}
	if o.backoffBase <= 0 {
		return fmt.Errorf("serve: backoff base %v: must be positive", o.backoffBase)
	}
	if o.backoffMax <= 0 {
		return fmt.Errorf("serve: backoff cap %v: must be positive", o.backoffMax)
	}
	if o.backoffBase > o.backoffMax {
		return fmt.Errorf("serve: backoff base %v exceeds cap %v", o.backoffBase, o.backoffMax)
	}
	if o.breakerAfter < 0 {
		return fmt.Errorf("serve: breaker threshold %d: must be positive (or 0 to disable)", o.breakerAfter)
	}
	if o.breakerAfter > 0 && o.breakerCool <= 0 {
		return fmt.Errorf("serve: breaker cooldown %v: must be positive when the breaker is enabled", o.breakerCool)
	}
	if o.warmSpares < 0 {
		return fmt.Errorf("serve: warm spares %d: must be positive (or 0 to disable)", o.warmSpares)
	}
	if o.shed.enabled() {
		if o.shed.Target <= 0 {
			return fmt.Errorf("serve: shedding sojourn target %v: must be positive", o.shed.Target)
		}
		if o.shed.Interval <= 0 {
			return fmt.Errorf("serve: shedding interval %v: must be positive", o.shed.Interval)
		}
	}
	if o.chaos.Latency < 0 {
		return fmt.Errorf("serve: chaos latency %v: must not be negative", o.chaos.Latency)
	}
	if o.chaos.LatencyEvery > 0 && o.chaos.Latency <= 0 {
		return fmt.Errorf("serve: chaos latency injection every %d requests needs a positive latency", o.chaos.LatencyEvery)
	}
	if o.batchMax < 0 {
		return fmt.Errorf("serve: batch size %d: must be at least 2 (or 0 to disable batching)", o.batchMax)
	}
	if o.batchMax == 1 {
		return fmt.Errorf("serve: batch size 1: coalesces nothing — use at least 2, or 0 to disable batching")
	}
	if o.batchMax > 0 && o.batchDelay <= 0 {
		return fmt.Errorf("serve: batch delay %v: must be positive when batching is enabled", o.batchDelay)
	}
	if o.batchMax > 0 && o.batchMax > o.queueDepth {
		return fmt.Errorf("serve: batch size %d exceeds queue depth %d: a full batch could never be admitted", o.batchMax, o.queueDepth)
	}
	return nil
}

// WithPoolSize sets the number of worker instances ("child processes").
// New rejects n <= 0.
func WithPoolSize(n int) Option {
	return func(o *options) { o.poolSize = n }
}

// WithQueueDepth bounds the admission queue: a Submit arriving while the
// queue holds n requests is rejected with ErrQueueFull (backpressure) —
// or, with shedding enabled, may displace a queued request whose deadline
// has become unmeetable (ErrShed). New rejects n <= 0.
func WithQueueDepth(n int) Option {
	return func(o *options) { o.queueDepth = n }
}

// WithDeadline sets the default per-request deadline, covering queue wait
// plus execution. A request exceeding it gets a response with
// fo.OutcomeDeadline; the serving instance survives. d == 0 disables the
// default deadline (a caller-supplied context can still cancel); New
// rejects negative d.
func WithDeadline(d time.Duration) Option {
	return func(o *options) { o.deadline = d }
}

// WithBackoff sets the capped exponential backoff applied between
// consecutive restarts of a crashing instance: the k-th consecutive restart
// waits min(base<<(k-1), max). New rejects non-positive values and a base
// above the cap.
func WithBackoff(base, max time.Duration) Option {
	return func(o *options) {
		o.backoffBase = base
		o.backoffMax = max
	}
}

// WithWarmSpares keeps up to n pre-created instances on standby: when a
// worker's instance crashes it is replaced by a warm spare immediately
// (no in-line instance-creation cost and no backoff — the spawn already
// happened off the serving path, like Apache pre-forking children before
// they are needed). A background filler goroutine tops the standby set back
// up after each take; if crashes outpace it, replacement falls back to the
// usual cold spawn with backoff and breaker. Restarts are counted the same
// either way. n == 0 disables warm spares (the default); New rejects
// negative n.
func WithWarmSpares(n int) Option {
	return func(o *options) { o.warmSpares = n }
}

// ShedConfig configures the deadline-aware shedding queue (WithShedding).
//
// The shedding queue replaces the engine's plain bounded FIFO with a
// CoDel-style controlled-delay queue (Nichols & Jacobson, "Controlling
// Queue Delay"): instead of tail-dropping new arrivals whenever the buffer
// is full, it watches the *sojourn time* of the oldest queued request and
// drops from the front — the requests that have already waited so long
// their deadline has become unmeetable — so fresh requests that can still
// meet their deadline are admitted and served. A dropped request's
// submitter gets ErrShed (distinct from ErrQueueFull, which still reports
// a queue full of viable requests).
//
// A queued request is considered unmeetable when the time remaining until
// its deadline is smaller than the engine's moving estimate of execution
// time (an EWMA over recently observed service times), i.e. even if it
// were dequeued right now it could not finish in time; requests whose
// deadline already passed are always unmeetable.
type ShedConfig struct {
	// Target is the acceptable queue sojourn time (CoDel's "target"). While
	// the oldest queued request has waited less than Target, nothing is
	// shed on dequeue.
	Target time.Duration
	// Interval is how long the sojourn time must stay above Target before
	// the dequeue path starts shedding unmeetable requests from the front
	// of the queue (CoDel's "interval" — it filters short bursts from
	// standing queues). The admission path is not gated on Interval: a full
	// queue sheds an unmeetable request immediately to admit a viable one.
	Interval time.Duration
}

func (c ShedConfig) enabled() bool { return c != (ShedConfig{}) }

// WithShedding replaces the fixed bounded queue with the deadline-aware
// CoDel-style shedding queue described on ShedConfig. New rejects
// non-positive Target or Interval.
func WithShedding(c ShedConfig) Option {
	return func(o *options) { o.shed = c }
}

// ChaosConfig configures deterministic process-level fault injection at the
// serving layer. Injection is keyed to an engine-wide counter of executed
// requests — the n-th, 2n-th, 3n-th … request is hit — so a single-worker
// engine fed sequentially produces identical chaos on every run with no
// randomness at this layer (the fault-injection campaign picks the cadences
// from its seeded plan; see internal/inject).
type ChaosConfig struct {
	// KillEvery kills the serving instance after every n-th executed
	// request (the response is delivered first; the supervisor then
	// replaces the instance exactly as after a crash, but the kill is
	// counted as a chaos kill, not a crash, and does not grow the restart
	// backoff). 0 disables kill injection.
	KillEvery uint64
	// LatencyEvery delays every n-th executed request by Latency before
	// execution. With a per-request deadline configured, a Latency
	// exceeding the deadline deterministically trips it (the request
	// returns fo.OutcomeDeadline; the instance survives). 0 disables
	// latency injection.
	LatencyEvery uint64
	// Latency is the injected delay.
	Latency time.Duration
}

func (c ChaosConfig) enabled() bool { return c.KillEvery > 0 || c.LatencyEvery > 0 }

// WithChaos enables deterministic chaos injection (instance kills, handler
// latency) on the engine. The zero config disables it. New rejects a
// negative latency and latency injection without a positive delay.
func WithChaos(c ChaosConfig) Option {
	return func(o *options) { o.chaos = c }
}

// WithBatching coalesces queued small requests into batches of up to
// maxBatch, dispatched to one worker instance as a unit: one admission
// slot, one instance hand-off, and — under the rewind policy — one
// checkpoint/rewind epoch for the whole batch instead of one per request
// (fo.Machine.BeginBatchEpoch), amortizing the per-request serving
// overhead that dominates small operations. Responses keep per-request
// semantics: each sub-request executes separately on the instance, gets
// its own outcome, latency sample, and memory-error attribution, and a
// mid-batch crash or rewind lets the remaining sub-requests continue on a
// replacement instance or a re-armed epoch. The one semantic trade is
// rollback granularity: a rewind mid-batch discards the whole open epoch
// — including the guest-state mutations of earlier sub-requests in the
// same batch, whose responses were already delivered — the paper's
// availability-over-precision bargain applied at batch scope.
//
// An incomplete batch flushes after maxDelay — the most latency batching
// may add — and flushing is deadline-aware: a request whose deadline
// could not survive waiting maxDelay bypasses the batcher and is
// enqueued alone. New rejects maxBatch < 2 (0 disables batching),
// non-positive maxDelay with batching enabled, and maxBatch above the
// queue depth.
func WithBatching(maxBatch int, maxDelay time.Duration) Option {
	return func(o *options) {
		o.batchMax = maxBatch
		o.batchDelay = maxDelay
	}
}

// WithBreaker configures the restart-storm circuit breaker: after
// consecutive crashes without an intervening successful response, the
// worker stops hot-restarting and parks for cooldown before trying a fresh
// instance (half-open). consecutive == 0 disables the breaker; New rejects
// negative thresholds and, with the breaker enabled, a non-positive
// cooldown.
func WithBreaker(consecutive int, cooldown time.Duration) Option {
	return func(o *options) {
		o.breakerAfter = consecutive
		o.breakerCool = cooldown
	}
}
