// Package token defines the lexical tokens of the focc C dialect and the
// source positions attached to every token, AST node, and diagnostic.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Punctuation kinds are named after their spelling; keyword
// kinds after the keyword.
const (
	EOF Kind = iota
	Ident
	IntLit    // 123, 0x1f, 077, 1L, 1U
	CharLit   // 'a', '\n'
	StringLit // "abc"

	// Keywords.
	KwBreak
	KwCase
	KwChar
	KwConst
	KwContinue
	KwDefault
	KwDo
	KwElse
	KwEnum
	KwExtern
	KwFor
	KwGoto
	KwIf
	KwInt
	KwLong
	KwReturn
	KwShort
	KwSigned
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwTypedef
	KwUnion
	KwUnsigned
	KwVoid
	KwWhile

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Arrow    // ->
	Ellipsis // ...

	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	Amp        // &
	Pipe       // |
	Caret      // ^
	Tilde      // ~
	Bang       // !
	Question   // ?
	Colon      // :
	Shl        // <<
	Shr        // >>
	Lt         // <
	Gt         // >
	Le         // <=
	Ge         // >=
	EqEq       // ==
	NotEq      // !=
	AndAnd     // &&
	OrOr       // ||
	Inc        // ++
	Dec        // --
	Assign     // =
	PlusEq     // +=
	MinusEq    // -=
	StarEq     // *=
	SlashEq    // /=
	PercentEq  // %=
	AmpEq      // &=
	PipeEq     // |=
	CaretEq    // ^=
	ShlEq      // <<=
	ShrEq      // >>=
	numOfKinds // sentinel; keep last
)

var kindNames = map[Kind]string{
	EOF:       "EOF",
	Ident:     "identifier",
	IntLit:    "integer literal",
	CharLit:   "character literal",
	StringLit: "string literal",

	KwBreak: "break", KwCase: "case", KwChar: "char", KwConst: "const",
	KwContinue: "continue", KwDefault: "default", KwDo: "do", KwElse: "else",
	KwEnum: "enum", KwExtern: "extern", KwFor: "for", KwGoto: "goto",
	KwIf: "if", KwInt: "int", KwLong: "long", KwReturn: "return",
	KwShort: "short", KwSigned: "signed", KwSizeof: "sizeof",
	KwStatic: "static", KwStruct: "struct", KwSwitch: "switch",
	KwTypedef: "typedef", KwUnion: "union", KwUnsigned: "unsigned",
	KwVoid: "void", KwWhile: "while",

	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Dot: ".",
	Arrow: "->", Ellipsis: "...",

	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Question: "?", Colon: ":", Shl: "<<", Shr: ">>",
	Lt: "<", Gt: ">", Le: "<=", Ge: ">=", EqEq: "==", NotEq: "!=",
	AndAnd: "&&", OrOr: "||", Inc: "++", Dec: "--",
	Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=",
	SlashEq: "/=", PercentEq: "%=", AmpEq: "&=", PipeEq: "|=",
	CaretEq: "^=", ShlEq: "<<=", ShrEq: ">>=",
}

// String returns a human-readable name for the kind ("identifier", "+=", …).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"break": KwBreak, "case": KwCase, "char": KwChar, "const": KwConst,
	"continue": KwContinue, "default": KwDefault, "do": KwDo, "else": KwElse,
	"enum": KwEnum, "extern": KwExtern, "for": KwFor, "goto": KwGoto,
	"if": KwIf, "int": KwInt, "long": KwLong, "return": KwReturn,
	"short": KwShort, "signed": KwSigned, "sizeof": KwSizeof,
	"static": KwStatic, "struct": KwStruct, "switch": KwSwitch,
	"typedef": KwTypedef, "union": KwUnion, "unsigned": KwUnsigned,
	"void": KwVoid, "while": KwWhile,
}

// Pos is a source position: file name, 1-based line, 1-based column.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries real location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "<unknown>"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // raw spelling for Ident/IntLit/CharLit; decoded value for StringLit
	Val  int64  // decoded value for IntLit and CharLit
	// Unsigned reports that an integer literal carried a U suffix or does
	// not fit in int64-signed range for its base.
	Unsigned bool
	// Long reports that an integer literal carried an L suffix.
	Long bool
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, CharLit:
		return t.Text
	case StringLit:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Kind.String()
	}
}

// Line is one line of (possibly preprocessed) source text together with the
// original location it came from. The preprocessor emits a []Line and the
// lexer consumes it, so positions survive macro expansion and #include.
type Line struct {
	File string
	N    int // 1-based original line number
	Text string
}

// SplitLines turns raw source text into a []Line for direct lexing without
// preprocessing.
func SplitLines(file, src string) []Line {
	var lines []Line
	start := 0
	n := 1
	for i := 0; i <= len(src); i++ {
		if i == len(src) || src[i] == '\n' {
			lines = append(lines, Line{File: file, N: n, Text: src[start:i]})
			start = i + 1
			n++
		}
	}
	return lines
}
