// The Router is the cluster-scale front end over the Engine: it
// consistent-hashes requests by tenant key across N engine shards, applies
// per-tenant admission quotas and a router-wide adaptive concurrency limit
// (AIMD on observed p95 — see AIMDConfig), runs every shard behind the
// deadline-aware shedding queue, and coordinates zero-downtime program
// hot-swap across the fleet (Swap = one atomic pointer flip + a rolling
// recycle of every shard's instances). See DESIGN.md §14.

package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"focc/fo"
	"focc/internal/servers"
)

// Errors returned by Router.Submit in addition to the Engine's.
var (
	// ErrOverQuota rejects a request whose tenant already has its full
	// admission quota in flight (WithTenantQuota). Other tenants are
	// unaffected — that is the point.
	ErrOverQuota = errors.New("serve: tenant admission quota exhausted")
	// ErrOverLimit rejects a request arriving while the router-wide
	// adaptive concurrency limit is saturated (WithAIMD): observed latency
	// says the cluster cannot absorb more in-flight work.
	ErrOverLimit = errors.New("serve: adaptive concurrency limit saturated")
)

// RouterOption configures a Router. Like Engine options, the setters
// record exactly what was asked for and NewRouter validates the assembled
// configuration, returning descriptive errors instead of silently
// clamping.
type RouterOption func(*routerOptions)

type routerOptions struct {
	shards    int
	shardsSet bool // WithShards called: weights must match instead of infer
	weights   []int
	quota     int
	aimd      AIMDConfig
	shed      ShedConfig
	engine    []Option
}

func defaultRouterOptions() routerOptions {
	return routerOptions{
		shards: 4,
		quota:  0, // unlimited per-tenant admission unless configured
		// Shards shed by default: a cluster front end exists to stay
		// responsive under overload, and the bounded-FIFO alternative is
		// still available through a standalone Engine.
		shed: ShedConfig{Target: 5 * time.Millisecond, Interval: 25 * time.Millisecond},
	}
}

func (o *routerOptions) validate() error {
	if o.shards <= 0 {
		return fmt.Errorf("serve: shard count %d: must be at least 1", o.shards)
	}
	if len(o.weights) > 0 {
		if len(o.weights) != o.shards {
			return fmt.Errorf("serve: %d shard weights for %d shards: provide exactly one weight per shard", len(o.weights), o.shards)
		}
		for i, w := range o.weights {
			if w < 1 {
				return fmt.Errorf("serve: shard %d weight %d: must be at least 1", i, w)
			}
			if w > maxShardWeight {
				return fmt.Errorf("serve: shard %d weight %d: must be at most %d", i, w, maxShardWeight)
			}
		}
	}
	if o.quota < 0 {
		return fmt.Errorf("serve: tenant quota %d: must be positive (or 0 for unlimited)", o.quota)
	}
	if err := o.aimd.validate(); err != nil {
		return err
	}
	if o.shed.enabled() {
		if o.shed.Target <= 0 {
			return fmt.Errorf("serve: shedding sojourn target %v: must be positive", o.shed.Target)
		}
		if o.shed.Interval <= 0 {
			return fmt.Errorf("serve: shedding interval %v: must be positive", o.shed.Interval)
		}
	}
	return nil
}

// WithShards sets the number of engine shards requests are
// consistent-hashed across. NewRouter rejects n <= 0.
func WithShards(n int) RouterOption {
	return func(o *routerOptions) { o.shards, o.shardsSet = n, true }
}

// maxShardWeight bounds a shard's ring weight: the ring holds
// weight×ringVnodes points per shard, and weights beyond this add memory
// without improving the load split.
const maxShardWeight = 64

// WithShardWeights sets relative capacity weights for the shards: shard i
// owns weights[i]×ringVnodes points on the hash ring and therefore
// receives a proportional share of tenants — the way a heterogeneous
// fleet gives a box with twice the cores twice the traffic. Without
// WithShards the shard count is inferred from len(weights); with it the
// lengths must match. NewRouter rejects weights below 1 or above
// maxShardWeight. Omitting WithShardWeights weights every shard equally.
func WithShardWeights(weights ...int) RouterOption {
	return func(o *routerOptions) {
		o.weights = append([]int(nil), weights...)
		if !o.shardsSet {
			o.shards = len(weights)
		}
	}
}

// WithTenantQuota caps each tenant's in-flight requests at n: a tenant at
// its quota gets ErrOverQuota while every other tenant's admission is
// untouched, so one flooding tenant (or one attacker) cannot starve the
// rest. n == 0 disables quotas; NewRouter rejects negative n.
func WithTenantQuota(n int) RouterOption {
	return func(o *routerOptions) { o.quota = n }
}

// WithAIMD enables the router-wide adaptive concurrency limit (see
// AIMDConfig). The zero config disables it.
func WithAIMD(c AIMDConfig) RouterOption {
	return func(o *routerOptions) { o.aimd = c }
}

// WithShardShedding overrides the shedding queue configuration applied to
// every shard (see ShedConfig). Routers always shed — pass a standalone
// Engine configuration through WithShardOptions for a plain bounded queue.
func WithShardShedding(c ShedConfig) RouterOption {
	return func(o *routerOptions) { o.shed = c }
}

// WithShardOptions appends Engine options applied to every shard (pool
// size, queue depth, deadline, backoff, breaker, warm spares, chaos …).
// They are applied after the router's own shard configuration, so an
// explicit WithShedding here wins over WithShardShedding.
func WithShardOptions(opts ...Option) RouterOption {
	return func(o *routerOptions) { o.engine = append(o.engine, opts...) }
}

// Router consistent-hashes requests by tenant key across a fleet of Engine
// shards, with per-tenant quotas, an adaptive concurrency limit, and
// coordinated zero-downtime program hot-swap. All methods are safe for
// concurrent use.
type Router struct {
	o    routerOptions
	mode fo.Mode

	swap   *SwapServer
	shards []*Engine
	ring   hashRing

	limiter *aimdLimiter // nil when AIMD is disabled
	tenants *tenantTable // nil when quotas are disabled

	overQuota, overLimit, swaps, rebalanced atomic.Uint64
}

// NewRouter builds the shard fleet over srv (wrapped in a SwapServer so
// the served program can be hot-swapped later) and validates the combined
// configuration, failing fast on invalid options or instance-creation
// errors.
func NewRouter(srv servers.Server, mode fo.Mode, opts ...RouterOption) (*Router, error) {
	o := defaultRouterOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	r := &Router{
		o:    o,
		mode: mode,
		swap: NewSwapServer(srv),
		ring: newHashRing(o.shards, ringVnodes, o.weights),
	}
	engineOpts := append([]Option{WithShedding(o.shed)}, o.engine...)
	r.shards = make([]*Engine, o.shards)
	for i := range r.shards {
		eng, err := New(r.swap, mode, engineOpts...)
		if err != nil {
			for _, started := range r.shards[:i] {
				started.Close()
			}
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		r.shards[i] = eng
	}
	totalWorkers := o.shards * r.shards[0].PoolSize()
	if o.aimd.enabled() {
		r.limiter = newAIMDLimiter(o.aimd, totalWorkers)
	}
	if o.quota > 0 {
		r.tenants = newTenantTable(o.quota)
	}
	return r, nil
}

// Mode returns the fleet's execution mode.
func (r *Router) Mode() fo.Mode { return r.mode }

// ShardCount returns the number of engine shards.
func (r *Router) ShardCount() int { return len(r.shards) }

// Shard returns the index of the shard serving tenant — stable for a given
// tenant key and shard count (consistent hashing over a ring of virtual
// nodes). This is the tenant's *home* shard; Submit may temporarily route
// around it while its breaker is tripped (see shardFor).
func (r *Router) Shard(tenant string) int { return r.ring.lookup(tenant) }

// shardFor resolves the shard that should serve tenant right now: the home
// shard unless its circuit breaker is tripped, in which case the tenant's
// ring point walks clockwise to the first healthy shard — the tripped
// shard's vnodes redistribute across the healthy fleet per vnode (different
// tenants land on different successors), and the very next request after
// recovery routes home again because health is read per lookup, not
// cached. With every shard tripped the home shard is returned unchanged:
// queueing at the real destination beats bouncing between dead shards.
func (r *Router) shardFor(tenant string) int {
	s, rerouted := r.ring.lookupHealthy(tenant, func(i int) bool { return !r.shards[i].Tripped() })
	if rerouted {
		r.rebalanced.Add(1)
	}
	return s
}

// Submit routes one request by tenant key: quota check, adaptive-limit
// check, then the tenant's shard. The error surface is the Engine's plus
// ErrOverQuota and ErrOverLimit; both reject *before* queuing, so they are
// cheap upstream backpressure.
func (r *Router) Submit(ctx context.Context, tenant string, req servers.Request) (servers.Response, error) {
	if r.tenants != nil {
		if !r.tenants.acquire(tenant) {
			r.overQuota.Add(1)
			return servers.Response{}, ErrOverQuota
		}
		defer r.tenants.release(tenant)
	}
	if r.limiter != nil {
		if !r.limiter.acquire() {
			r.overLimit.Add(1)
			return servers.Response{}, ErrOverLimit
		}
		t0 := time.Now()
		resp, err := r.shards[r.shardFor(tenant)].Submit(ctx, req)
		// Only executed requests carry a latency signal; queue-level
		// rejections would read as "fast" and push the limit up exactly
		// when the cluster is drowning.
		r.limiter.release(time.Since(t0), err == nil)
		return resp, err
	}
	return r.shards[r.shardFor(tenant)].Submit(ctx, req)
}

// Swap atomically replaces the served program for the whole fleet and
// rolls every shard's instances forward (Engine.Recycle): new instances —
// including warm spares — are created from next, in-flight requests finish
// on the instances that started them, and no request fails. It returns the
// previously served server.
func (r *Router) Swap(next servers.Server) (prev servers.Server) {
	prev = r.swap.Swap(next)
	for _, shard := range r.shards {
		shard.Recycle()
	}
	r.swaps.Add(1)
	return prev
}

// Current returns the server the fleet currently creates instances from.
func (r *Router) Current() servers.Server { return r.swap.Current() }

// Close shuts every shard down (concurrently) and waits for all of them.
func (r *Router) Close() {
	var wg sync.WaitGroup
	for _, shard := range r.shards {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.Close()
		}(shard)
	}
	wg.Wait()
}

// TenantStats is one tenant's admission accounting.
type TenantStats struct {
	// Admitted counts requests that passed the quota gate.
	Admitted uint64
	// Denied counts ErrOverQuota rejections.
	Denied uint64
	// InFlight is the tenant's currently executing (or queued) requests.
	InFlight int
}

// RouterStats is a snapshot of the router and its shard fleet: the
// embedded Stats are the totals across shards (counters summed, MemErrors
// merged), Shards the per-shard breakdown.
type RouterStats struct {
	Stats
	// Shards is the per-shard breakdown, indexed by shard.
	Shards []Stats
	// OverQuota counts ErrOverQuota rejections (all tenants).
	OverQuota uint64
	// OverLimit counts ErrOverLimit rejections.
	OverLimit uint64
	// Swaps counts program hot-swaps performed.
	Swaps uint64
	// Rebalanced counts requests routed away from their home shard while
	// its circuit breaker was tripped (cross-shard rebalancing). Zero in a
	// healthy fleet: traffic returns home the moment the breaker closes.
	Rebalanced uint64
	// Limit is the current adaptive concurrency limit (0 when AIMD is
	// disabled).
	Limit int
	// Tenants is the per-tenant admission accounting (nil without
	// WithTenantQuota).
	Tenants map[string]TenantStats
}

// Stats returns a snapshot of the router's counters and every shard's.
// Safe to call from any goroutine at any time.
func (r *Router) Stats() RouterStats {
	rs := RouterStats{
		Shards:     make([]Stats, len(r.shards)),
		OverQuota:  r.overQuota.Load(),
		OverLimit:  r.overLimit.Load(),
		Swaps:      r.swaps.Load(),
		Rebalanced: r.rebalanced.Load(),
	}
	for i, shard := range r.shards {
		rs.Shards[i] = shard.Stats()
		rs.Stats.add(rs.Shards[i])
	}
	if r.limiter != nil {
		rs.Limit = r.limiter.Limit()
	}
	if r.tenants != nil {
		rs.Tenants = r.tenants.snapshot()
	}
	return rs
}

// RouterMetrics is RouterStats plus the fleet-wide latency histogram
// (every shard's buckets summed).
type RouterMetrics struct {
	RouterStats
	Latency LatencySnapshot
}

// Metrics returns the full observability snapshot for the fleet.
func (r *Router) Metrics() RouterMetrics {
	snaps := make([]LatencySnapshot, len(r.shards))
	for i, shard := range r.shards {
		snaps[i] = shard.latency.snapshot()
	}
	return RouterMetrics{RouterStats: r.Stats(), Latency: mergeLatencySnapshots(snaps...)}
}

// tenantTable tracks per-tenant in-flight counts against a uniform quota.
// Tenant states are retained for the router's lifetime (they are a handful
// of words each; a serving fleet's tenant set is bounded by its user base,
// and retaining them keeps Admitted/Denied accounting stable).
type tenantTable struct {
	mu    sync.Mutex
	quota int
	m     map[string]*tenantState
}

type tenantState struct {
	inflight int
	admitted uint64
	denied   uint64
}

func newTenantTable(quota int) *tenantTable {
	return &tenantTable{quota: quota, m: make(map[string]*tenantState)}
}

func (t *tenantTable) acquire(tenant string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.m[tenant]
	if st == nil {
		st = &tenantState{}
		t.m[tenant] = st
	}
	if st.inflight >= t.quota {
		st.denied++
		return false
	}
	st.inflight++
	st.admitted++
	return true
}

func (t *tenantTable) release(tenant string) {
	t.mu.Lock()
	t.m[tenant].inflight--
	t.mu.Unlock()
}

func (t *tenantTable) snapshot() map[string]TenantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]TenantStats, len(t.m))
	for k, st := range t.m {
		out[k] = TenantStats{Admitted: st.admitted, Denied: st.denied, InFlight: st.inflight}
	}
	return out
}

// ringVnodes is the number of virtual nodes per shard on the hash ring:
// enough that per-shard load spread stays within a few percent, small
// enough that building the ring is trivial.
const ringVnodes = 128

// hashRing is a consistent-hash ring over the shard set: each shard owns
// weight×ringVnodes points (weight 1 without WithShardWeights), a tenant
// maps to the first point clockwise from its hash. Tenant→shard assignment
// therefore depends only on (tenant, shard count, weights), spreads
// tenants proportionally to weight, and — the consistent-hashing property
// — changing the shard count moves only ~1/N of tenants, which keeps any
// future shard-scaling change from reshuffling every tenant's cache and
// instance affinity.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// newHashRing builds the ring. weights scales each shard's vnode count
// (nil = every shard at weight 1); a weight-1 shard's points are identical
// to the unweighted ring's, so introducing weights only moves tenants
// toward the up-weighted shards.
func newHashRing(shards, vnodes int, weights []int) hashRing {
	total := 0
	for s := 0; s < shards; s++ {
		n := vnodes
		if weights != nil {
			n *= weights[s]
		}
		total += n
	}
	pts := make([]ringPoint, 0, total)
	for s := 0; s < shards; s++ {
		n := vnodes
		if weights != nil {
			n *= weights[s]
		}
		for v := 0; v < n; v++ {
			pts = append(pts, ringPoint{hash: ringHash(fmt.Sprintf("shard-%d-vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard // deterministic on (vanishingly rare) collisions
	})
	return hashRing{points: pts}
}

// find returns the index of the first ring point clockwise from key's hash.
func (r hashRing) find(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the ring
	}
	return i
}

func (r hashRing) lookup(key string) int {
	return r.points[r.find(key)].shard
}

// lookupHealthy resolves key to its home shard, or — when healthy(home)
// is false — continues clockwise from the key's ring point to the first
// point owned by a healthy shard (rerouted=true). Walking ring points
// rather than shard numbers is what redistributes a dead shard's load:
// each of its vnodes has a different successor, so its tenants spread
// across the healthy fleet instead of piling onto one neighbor. When no
// healthy shard exists the home shard is returned with rerouted=false.
func (r hashRing) lookupHealthy(key string, healthy func(int) bool) (shard int, rerouted bool) {
	i := r.find(key)
	home := r.points[i].shard
	if healthy(home) {
		return home, false
	}
	for j := 1; j < len(r.points); j++ {
		s := r.points[(i+j)%len(r.points)].shard
		if s != home && healthy(s) {
			return s, true
		}
	}
	return home, false
}

// ringHash is FNV-1a with a splitmix64-style avalanche finalizer, inlined
// to keep the per-request hash allocation-free. Plain FNV clusters
// structured keys ("tenant-1", "tenant-2", …) on the ring badly enough to
// skew shard load several-fold; the finalizer spreads them uniformly.
func ringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
