package srv_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden API surface files")

// TestPublicAPISurface pins the exported surface of the two public
// packages — fo and fo/srv — against golden files. Any addition, removal,
// or signature change to the public API shows up as a readable diff here
// and must be committed deliberately (regenerate with `go test ./fo/srv
// -run TestPublicAPISurface -update`).
func TestPublicAPISurface(t *testing.T) {
	for _, pkg := range []struct {
		name, dir, golden string
	}{
		{"fo", "..", filepath.Join("testdata", "api-fo.golden")},
		{"fo/srv", ".", filepath.Join("testdata", "api-srv.golden")},
	} {
		t.Run(strings.ReplaceAll(pkg.name, "/", "_"), func(t *testing.T) {
			got, err := apiSurface(pkg.dir)
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(pkg.golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(pkg.golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(pkg.golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create the golden file)", err)
			}
			if got != string(want) {
				t.Errorf("public API surface of %s changed (run with -update if intended):\n%s",
					pkg.name, surfaceDiff(string(want), got))
			}
		})
	}
}

// apiSurface renders the exported declarations of the package in dir as a
// sorted, deterministic listing: one entry per exported func/method/type/
// const/var, printed without bodies or comments.
func apiSurface(dir string) (string, error) {
	fset := token.NewFileSet()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	var entries []string
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, parser.SkipObjectResolution)
		if err != nil {
			return "", err
		}
		for _, decl := range f.Decls {
			entries = append(entries, exportedDecls(fset, decl)...)
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n") + "\n", nil
}

// exportedDecls renders decl's exported parts, dropping unexported
// declarations, function bodies, and comments.
func exportedDecls(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d) {
			return nil
		}
		fn := *d
		fn.Doc = nil
		fn.Body = nil
		return []string{render(fset, &fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				out = append(out, "type "+render(fset, &ts))
			case *ast.ValueSpec:
				if !anyExported(s.Names) {
					continue
				}
				vs := *s
				vs.Doc, vs.Comment = nil, nil
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				out = append(out, kw+" "+render(fset, &vs))
			}
		}
		return out
	}
	return nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are not public API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch rt := t.(type) {
		case *ast.StarExpr:
			t = rt.X
		case *ast.IndexExpr: // generic receiver
			t = rt.X
		case *ast.Ident:
			return rt.IsExported()
		default:
			return true // unrecognized shape: keep it visible
		}
	}
}

func anyExported(names []*ast.Ident) bool {
	for _, n := range names {
		if n.IsExported() {
			return true
		}
	}
	return false
}

func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	// Struct/interface types span lines; collapse runs of whitespace so
	// the listing stays one-entry-per-line and diffs stay readable.
	return strings.Join(strings.Fields(buf.String()), " ")
}

// surfaceDiff is a minimal line diff: lines only in want are prefixed "-",
// lines only in got "+".
func surfaceDiff(want, got string) string {
	wantSet := toSet(want)
	gotSet := toSet(got)
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}

func toSet(s string) map[string]bool {
	m := make(map[string]bool)
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			m[l] = true
		}
	}
	return m
}
