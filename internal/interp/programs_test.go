package interp_test

import (
	"testing"

	"focc/internal/core"
	"focc/internal/interp"
	"focc/internal/libc"
)

// Integration-scale C programs executed under BoundsCheck (every access
// checked, so any interpreter or libc slip is loud) and under
// FailureOblivious (which must behave identically on memory-error-free
// programs — the paper's baseline sanity requirement). Each program runs
// on both execution engines: the AST-walking reference evaluator and the
// compiled closure IR; compile_diff_test.go additionally asserts the two
// engines agree on every observable, per mode.

// corpusProgram is one corpus entry, shared by the integration tests, the
// engine differential tests, and the dispatch benchmarks.
type corpusProgram struct {
	name string
	src  string
	want int64
}

func corpusSources() []corpusProgram {
	return []corpusProgram{
		{name: "LinkedList", want: 55, src: srcLinkedList},
		{name: "HashTable", want: 1, src: srcHashTable},
		{name: "Quicksort", want: 1, src: srcQuicksort},
		{name: "Tokenizer", want: 0, src: srcTokenizer},
		{name: "MatrixMultiply", want: 112, src: srcMatrixMultiply},
		{name: "StringRotate", want: 1, src: srcStringRotate},
		{name: "BitTricks", want: 0, src: srcBitTricks},
		{name: "Base64", want: 0, src: srcBase64},
		{name: "Sieve", want: 168, src: srcSieve},
	}
}

// runBoth executes src under the checked and unchecked modes, on both
// execution engines, asserting a clean run and the expected main() result
// everywhere.
func runBoth(t *testing.T, src string, want int64) {
	t.Helper()
	for _, mode := range []core.Mode{core.BoundsCheck, core.FailureOblivious, core.Standard} {
		for _, engine := range []string{"tree-walk", "compiled"} {
			prog := compileWithCPP(t, src)
			cfg := interp.Config{Mode: mode, Builtins: libc.Builtins()}
			if engine == "compiled" {
				cfg.Compiled = interp.Compile(prog)
			}
			m, err := interp.New(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run()
			if res.Outcome != interp.OutcomeOK {
				t.Fatalf("%v/%s: outcome = %v (%v)", mode, engine, res.Outcome, res.Err)
			}
			if res.Value.I != want {
				t.Fatalf("%v/%s: main() = %d, want %d", mode, engine, res.Value.I, want)
			}
			if mode != core.Standard && m.Log().Total() != 0 {
				t.Errorf("%v/%s: clean program logged %d memory errors", mode, engine, m.Log().Total())
			}
		}
	}
}

func TestCorpusPrograms(t *testing.T) {
	for _, cp := range corpusSources() {
		t.Run(cp.name, func(t *testing.T) {
			runBoth(t, cp.src, cp.want)
		})
	}
}

const srcLinkedList = `
#include <stdlib.h>

struct node {
	int value;
	struct node *next;
};

static struct node *push(struct node *head, int v) {
	struct node *n = malloc(sizeof(struct node));
	n->value = v;
	n->next = head;
	return n;
}

static struct node *reverse(struct node *head) {
	struct node *prev = NULL;
	while (head != NULL) {
		struct node *next = head->next;
		head->next = prev;
		prev = head;
		head = next;
	}
	return prev;
}

static int length(struct node *head) {
	int n = 0;
	for (; head != NULL; head = head->next)
		n++;
	return n;
}

static void destroy(struct node *head) {
	while (head != NULL) {
		struct node *next = head->next;
		free(head);
		head = next;
	}
}

int main(void) {
	struct node *list = NULL;
	struct node *p;
	int i, sum = 0, idx = 0;
	for (i = 1; i <= 10; i++)
		list = push(list, i);        /* 10, 9, ..., 1 */
	list = reverse(list);            /* 1, 2, ..., 10 */
	if (length(list) != 10) return -1;
	for (p = list; p != NULL; p = p->next) {
		idx++;
		if (p->value != idx) return -2;
		sum += p->value;
	}
	destroy(list);
	return sum;                      /* 55 */
}`

const srcHashTable = `
#include <stdlib.h>
#include <string.h>

#define NBUCKETS 16

struct entry {
	char key[24];
	int value;
	struct entry *next;
};

struct entry *buckets[NBUCKETS];

static unsigned int hash(const char *s) {
	unsigned int h = 5381;
	while (*s)
		h = h * 33 + (unsigned char) *s++;
	return h;
}

static void put(const char *key, int value) {
	unsigned int b = hash(key) % NBUCKETS;
	struct entry *e;
	for (e = buckets[b]; e != NULL; e = e->next) {
		if (strcmp(e->key, key) == 0) {
			e->value = value;
			return;
		}
	}
	e = malloc(sizeof(struct entry));
	strncpy(e->key, key, sizeof(e->key) - 1);
	e->key[sizeof(e->key) - 1] = '\0';
	e->value = value;
	e->next = buckets[b];
	buckets[b] = e;
}

static int get(const char *key, int *out) {
	unsigned int b = hash(key) % NBUCKETS;
	struct entry *e;
	for (e = buckets[b]; e != NULL; e = e->next) {
		if (strcmp(e->key, key) == 0) {
			*out = e->value;
			return 1;
		}
	}
	return 0;
}

int main(void) {
	char key[24];
	int i, v, sum = 0;
	for (i = 0; i < 100; i++) {
		sprintf(key, "key-%d", i);
		put(key, i * 3);
	}
	/* overwrite some */
	for (i = 0; i < 100; i += 10) {
		sprintf(key, "key-%d", i);
		put(key, 1000 + i);
	}
	for (i = 0; i < 100; i++) {
		sprintf(key, "key-%d", i);
		if (!get(key, &v)) return -1;
		sum += v;
	}
	if (get("missing", &v)) return -2;
	/* sum = sum(3i, i=0..99) - sum(3i, i mult of 10) + sum(1000+i, i mult of 10)
	       = 14850 - 1350 + 10450 = 23950 */
	return sum == 23950 ? 1 : 0;
}`

const srcQuicksort = `
static void quicksort(int *a, int lo, int hi) {
	int pivot, i, j, tmp;
	if (lo >= hi)
		return;
	pivot = a[(lo + hi) / 2];
	i = lo;
	j = hi;
	while (i <= j) {
		while (a[i] < pivot) i++;
		while (a[j] > pivot) j--;
		if (i <= j) {
			tmp = a[i]; a[i] = a[j]; a[j] = tmp;
			i++; j--;
		}
	}
	quicksort(a, lo, j);
	quicksort(a, i, hi);
}

int main(void) {
	int data[64];
	unsigned int seed = 12345;
	int i;
	for (i = 0; i < 64; i++) {
		seed = seed * 1103515245u + 12345u;
		data[i] = (int)(seed % 1000);
	}
	quicksort(data, 0, 63);
	for (i = 1; i < 64; i++)
		if (data[i - 1] > data[i])
			return 0;
	return 1;
}`

const srcTokenizer = `
#include <string.h>
#include <ctype.h>

/* A tiny expression tokenizer + recursive-descent evaluator:
   digits, + - * / and parentheses. */

const char *input;
int pos;

static void skipws(void) {
	while (input[pos] == ' ')
		pos++;
}

static int parse_expr(void);

static int parse_primary(void) {
	int v = 0;
	skipws();
	if (input[pos] == '(') {
		pos++;
		v = parse_expr();
		skipws();
		if (input[pos] == ')')
			pos++;
		return v;
	}
	while (isdigit(input[pos])) {
		v = v * 10 + (input[pos] - '0');
		pos++;
	}
	return v;
}

static int parse_term(void) {
	int v = parse_primary();
	for (;;) {
		skipws();
		if (input[pos] == '*') {
			pos++;
			v *= parse_primary();
		} else if (input[pos] == '/') {
			pos++;
			v /= parse_primary();
		} else {
			return v;
		}
	}
}

static int parse_expr(void) {
	int v = parse_term();
	for (;;) {
		skipws();
		if (input[pos] == '+') {
			pos++;
			v += parse_term();
		} else if (input[pos] == '-') {
			pos++;
			v -= parse_term();
		} else {
			return v;
		}
	}
}

static int eval(const char *s) {
	input = s;
	pos = 0;
	return parse_expr();
}

int main(void) {
	if (eval("1 + 2 * 3") != 7) return 1;
	if (eval("(1 + 2) * 3") != 9) return 2;
	if (eval("100 / 5 / 2") != 10) return 3;
	if (eval("2 * (3 + 4) - 5") != 9) return 4;
	if (eval("((((42))))") != 42) return 5;
	return 0;
}`

const srcMatrixMultiply = `
#define N 8
int a[N][N], b[N][N], c[N][N];
int main(void) {
	int i, j, k, trace = 0;
	for (i = 0; i < N; i++)
		for (j = 0; j < N; j++) {
			a[i][j] = i + j;
			b[i][j] = (i == j) ? 2 : 0;  /* 2 * identity */
		}
	for (i = 0; i < N; i++)
		for (j = 0; j < N; j++) {
			int sum = 0;
			for (k = 0; k < N; k++)
				sum += a[i][k] * b[k][j];
			c[i][j] = sum;
		}
	/* c should be 2*a; trace(c) = 2 * sum(2i) = 4 * (0+1+...+7) */
	for (i = 0; i < N; i++)
		trace += c[i][i];
	return trace; /* 4 * 28 = 112 */
}`

const srcStringRotate = `
#include <string.h>
char buf[32] = "abcdefgh";
static void reverse_range(char *s, int lo, int hi) {
	while (lo < hi) {
		char t = s[lo];
		s[lo] = s[hi];
		s[hi] = t;
		lo++;
		hi--;
	}
}
int main(void) {
	int n = (int) strlen(buf);
	/* rotate left by 3 via three reversals */
	reverse_range(buf, 0, 2);
	reverse_range(buf, 3, n - 1);
	reverse_range(buf, 0, n - 1);
	return strcmp(buf, "defghabc") == 0;
}`

const srcBitTricks = `
static int popcount(unsigned int v) {
	int c = 0;
	while (v) {
		v &= v - 1;
		c++;
	}
	return c;
}
static int parity(unsigned int v) { return popcount(v) & 1; }
int main(void) {
	if (popcount(0) != 0) return 1;
	if (popcount(0xFF) != 8) return 2;
	if (popcount(0x80000001u) != 2) return 3;
	if (parity(7) != 1 || parity(3) != 0) return 4;
	return 0;
}`

// srcBase64 round-trips a base64 encoder/decoder — the same flavour of
// bit-twiddling as Mutt's Figure 1 conversion.
const srcBase64 = `
#include <string.h>

static const char *alphabet =
	"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

static int b64_encode(const char *in, int n, char *out) {
	int i, o = 0;
	for (i = 0; i + 2 < n; i += 3) {
		unsigned int v = ((unsigned char)in[i] << 16) |
		                 ((unsigned char)in[i+1] << 8) |
		                 (unsigned char)in[i+2];
		out[o++] = alphabet[(v >> 18) & 63];
		out[o++] = alphabet[(v >> 12) & 63];
		out[o++] = alphabet[(v >> 6) & 63];
		out[o++] = alphabet[v & 63];
	}
	if (n - i == 1) {
		unsigned int v = (unsigned char)in[i] << 16;
		out[o++] = alphabet[(v >> 18) & 63];
		out[o++] = alphabet[(v >> 12) & 63];
		out[o++] = '=';
		out[o++] = '=';
	} else if (n - i == 2) {
		unsigned int v = ((unsigned char)in[i] << 16) |
		                 ((unsigned char)in[i+1] << 8);
		out[o++] = alphabet[(v >> 18) & 63];
		out[o++] = alphabet[(v >> 12) & 63];
		out[o++] = alphabet[(v >> 6) & 63];
		out[o++] = '=';
	}
	out[o] = '\0';
	return o;
}

static int sixbits(char c) {
	const char *p = strchr(alphabet, c);
	if (p == NULL)
		return -1;
	return (int)(p - alphabet);
}

static int b64_decode(const char *in, char *out) {
	int o = 0;
	while (*in && *in != '=') {
		int v = 0, bits = 0;
		int j;
		for (j = 0; j < 4 && in[j] && in[j] != '='; j++) {
			v = (v << 6) | sixbits(in[j]);
			bits += 6;
		}
		v <<= (4 - j) * 6;
		if (bits >= 8)  out[o++] = (char)((v >> 16) & 0xFF);
		if (bits >= 16) out[o++] = (char)((v >> 8) & 0xFF);
		if (bits >= 24) out[o++] = (char)(v & 0xFF);
		in += j;
	}
	out[o] = '\0';
	return o;
}

int main(void) {
	char enc[128], dec[128];
	const char *msg = "failure-oblivious!";
	int n = b64_encode(msg, (int) strlen(msg), enc);
	if (n <= 0) return 1;
	if (strcmp(enc, "ZmFpbHVyZS1vYmxpdmlvdXMh") != 0) return 2;
	b64_decode(enc, dec);
	if (strcmp(dec, msg) != 0) return 3;
	/* padding cases */
	b64_encode("a", 1, enc);
	if (strcmp(enc, "YQ==") != 0) return 4;
	b64_decode(enc, dec);
	if (strcmp(dec, "a") != 0) return 5;
	b64_encode("ab", 2, enc);
	if (strcmp(enc, "YWI=") != 0) return 6;
	b64_decode(enc, dec);
	if (strcmp(dec, "ab") != 0) return 7;
	return 0;
}`

const srcSieve = `
#include <string.h>
char composite[1000];
int main(void) {
	int i, j, count = 0;
	memset(composite, 0, sizeof(composite));
	for (i = 2; i < 1000; i++) {
		if (composite[i])
			continue;
		count++;
		for (j = i * 2; j < 1000; j += i)
			composite[j] = 1;
	}
	return count; /* 168 primes below 1000 */
}`
