package serve_test

import (
	"strings"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/serve"
)

// TestOptionValidation exercises every Engine option with invalid values:
// New must reject the configuration with a descriptive error naming the
// offending value — not clamp it silently — and accept the valid variants.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    []serve.Option
		wantErr string // substring of the expected error; "" = must succeed
	}{
		{"defaults", nil, ""},

		{"pool size zero", []serve.Option{serve.WithPoolSize(0)}, "pool size 0"},
		{"pool size negative", []serve.Option{serve.WithPoolSize(-3)}, "pool size -3"},
		{"pool size valid", []serve.Option{serve.WithPoolSize(1)}, ""},

		{"queue depth zero", []serve.Option{serve.WithQueueDepth(0)}, "queue depth 0"},
		{"queue depth negative", []serve.Option{serve.WithQueueDepth(-1)}, "queue depth -1"},
		{"queue depth valid", []serve.Option{serve.WithQueueDepth(1)}, ""},

		{"deadline negative", []serve.Option{serve.WithDeadline(-time.Second)}, "deadline -1s"},
		{"deadline zero disables", []serve.Option{serve.WithDeadline(0)}, ""},
		{"deadline valid", []serve.Option{serve.WithDeadline(time.Second)}, ""},

		{"backoff zero base", []serve.Option{serve.WithBackoff(0, time.Second)}, "backoff base"},
		{"backoff zero cap", []serve.Option{serve.WithBackoff(time.Millisecond, 0)}, "backoff cap"},
		{"backoff base above cap",
			[]serve.Option{serve.WithBackoff(time.Second, time.Millisecond)},
			"backoff base 1s exceeds cap 1ms"},
		{"backoff valid", []serve.Option{serve.WithBackoff(time.Millisecond, time.Second)}, ""},

		{"breaker negative threshold",
			[]serve.Option{serve.WithBreaker(-1, time.Second)}, "breaker threshold -1"},
		{"breaker enabled without cooldown",
			[]serve.Option{serve.WithBreaker(3, 0)}, "breaker cooldown"},
		{"breaker disabled ignores cooldown", []serve.Option{serve.WithBreaker(0, 0)}, ""},
		{"breaker valid", []serve.Option{serve.WithBreaker(3, time.Second)}, ""},

		{"warm spares negative", []serve.Option{serve.WithWarmSpares(-2)}, "warm spares -2"},
		{"warm spares valid", []serve.Option{serve.WithWarmSpares(2)}, ""},

		{"shedding missing target",
			[]serve.Option{serve.WithShedding(serve.ShedConfig{Interval: time.Millisecond})},
			"sojourn target"},
		{"shedding missing interval",
			[]serve.Option{serve.WithShedding(serve.ShedConfig{Target: time.Millisecond})},
			"shedding interval"},
		{"shedding negative target",
			[]serve.Option{serve.WithShedding(serve.ShedConfig{
				Target: -time.Millisecond, Interval: time.Millisecond})},
			"sojourn target"},
		{"shedding zero config disables", []serve.Option{serve.WithShedding(serve.ShedConfig{})}, ""},
		{"shedding valid",
			[]serve.Option{serve.WithShedding(serve.ShedConfig{
				Target: time.Millisecond, Interval: 5 * time.Millisecond})},
			""},

		{"chaos negative latency",
			[]serve.Option{serve.WithChaos(serve.ChaosConfig{Latency: -time.Second})},
			"chaos latency"},
		{"chaos latency cadence without delay",
			[]serve.Option{serve.WithChaos(serve.ChaosConfig{LatencyEvery: 4})},
			"needs a positive latency"},
		{"chaos valid",
			[]serve.Option{serve.WithChaos(serve.ChaosConfig{
				KillEvery: 3, LatencyEvery: 4, Latency: time.Millisecond})},
			""},

		{"last setter wins over earlier invalid",
			[]serve.Option{serve.WithPoolSize(0), serve.WithPoolSize(2)}, ""},
		{"cross-option backoff checked after all setters",
			[]serve.Option{serve.WithBackoff(time.Second, time.Minute),
				serve.WithBackoff(time.Second, time.Millisecond)},
			"exceeds cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := serve.New(&stubServer{}, fo.FailureOblivious, tc.opts...)
			if eng != nil {
				defer eng.Close()
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("New() = %v, want success", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("New() succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("New() = %q, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRouterOptionValidation does the same for every Router option.
func TestRouterOptionValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    []serve.RouterOption
		wantErr string
	}{
		{"defaults", nil, ""},

		{"shards zero", []serve.RouterOption{serve.WithShards(0)}, "shard count 0"},
		{"shards negative", []serve.RouterOption{serve.WithShards(-2)}, "shard count -2"},
		{"shards valid", []serve.RouterOption{serve.WithShards(1)}, ""},

		{"tenant quota negative", []serve.RouterOption{serve.WithTenantQuota(-1)}, "tenant quota -1"},
		{"tenant quota zero disables", []serve.RouterOption{serve.WithTenantQuota(0)}, ""},
		{"tenant quota valid", []serve.RouterOption{serve.WithTenantQuota(8)}, ""},

		{"aimd missing target",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{Min: 1})}, "p95 target"},
		{"aimd negative target",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{TargetP95: -time.Second})},
			"p95 target"},
		{"aimd min above max",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{
				TargetP95: time.Second, Min: 10, Max: 2})},
			"minimum limit 10 exceeds maximum 2"},
		{"aimd negative bounds",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{
				TargetP95: time.Second, Min: -1})},
			"must not be negative"},
		{"aimd backoff out of range",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{
				TargetP95: time.Second, Backoff: 1.5})},
			"backoff factor"},
		{"aimd backoff of one rejected",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{
				TargetP95: time.Second, Backoff: 1.0})},
			"must be in (0, 1), or zero to select the default"},
		{"aimd negative backoff rejected",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{
				TargetP95: time.Second, Backoff: -0.5})},
			"backoff factor -0.5"},
		{"aimd zero backoff selects default",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{
				TargetP95: time.Second, Backoff: 0})},
			""},
		{"aimd negative window rejected",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{
				TargetP95: time.Second, Window: -4})},
			"window -4: must not be negative (zero selects the default"},
		{"aimd zero window selects default",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{
				TargetP95: time.Second, Window: 0})},
			""},
		{"aimd zero config disables", []serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{})}, ""},
		{"aimd valid",
			[]serve.RouterOption{serve.WithAIMD(serve.AIMDConfig{TargetP95: 20 * time.Millisecond})},
			""},

		{"shard shedding missing interval",
			[]serve.RouterOption{serve.WithShardShedding(serve.ShedConfig{Target: time.Millisecond})},
			"shedding interval"},
		{"shard shedding valid",
			[]serve.RouterOption{serve.WithShardShedding(serve.ShedConfig{
				Target: time.Millisecond, Interval: 5 * time.Millisecond})},
			""},

		{"invalid shard option surfaces",
			[]serve.RouterOption{serve.WithShardOptions(serve.WithPoolSize(0))},
			"pool size 0"},
		{"shard options valid",
			[]serve.RouterOption{serve.WithShardOptions(
				serve.WithPoolSize(1), serve.WithQueueDepth(4))},
			""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := serve.NewRouter(&stubServer{}, fo.FailureOblivious, tc.opts...)
			if rt != nil {
				defer rt.Close()
			}
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("NewRouter() = %v, want success", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("NewRouter() succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("NewRouter() = %q, want error containing %q", err, tc.wantErr)
			}
		})
	}
}
