// Package servers defines the common request/response model shared by the
// five server reproductions from the paper's evaluation (Pine, Apache,
// Sendmail, Midnight Commander, Mutt). Each server package compiles its
// vulnerable request-processing code — written in the focc C dialect, with
// the authentic bug mechanism — once, and creates per-mode instances
// ("processes") from it.
//
// "Once" includes the execution IR: instances are created through
// fo.Program.NewMachine, so every instance of a server shares the
// program's cached closure-compiled IR (fo.Program.Compiled, DESIGN.md
// §13). Spawning an instance binds machine state to the shared immutable
// IR; it never re-lowers the AST.
package servers

import (
	"context"
	"fmt"

	"focc/fo"
)

// Request is one unit of work submitted to a server instance.
type Request struct {
	// Op names the request type ("read", "compose", "select", "GET", …).
	Op string
	// Arg carries the primary argument (URI, folder name, address, path).
	Arg string
	// Payload carries bulk data (message body, file contents).
	Payload string
}

// Response is the server's reply.
type Response struct {
	// Outcome is how the handling execution ended. OutcomeOK and
	// OutcomeExit are successes; OutcomeDeadline is a timed-out request
	// and OutcomeRewound a request rolled back by the rewind policy —
	// in both the "process" survives. Any other outcome means it crashed
	// or was terminated by the bounds checker (Outcome.Crashed reports
	// this distinction).
	Outcome fo.Outcome
	// Status is the server-level status (protocol-specific: HTTP status,
	// SMTP code, or 0/-N for library calls).
	Status int
	// Body is the response payload.
	Body string
	// Err holds fault detail for crashed outcomes.
	Err error
	// MemErrors attributes the memory-error events logged while this
	// request was being handled to the request that caused them — the
	// per-request event cursor HandleContext takes over the instance's
	// log (Base.Attribute). Zero for requests that committed no memory
	// errors, and for Handle calls made without attribution.
	MemErrors fo.LogDelta
}

// OK reports whether the request was processed by a live server (it may
// still carry an application-level error status — that is the anticipated
// error handling the paper describes).
func (r Response) OK() bool {
	return r.Outcome == fo.OutcomeOK
}

// Crashed reports whether handling the request killed the process.
func (r Response) Crashed() bool { return r.Outcome.Crashed() }

func (r Response) String() string {
	if r.Crashed() {
		return fmt.Sprintf("[%s] %v", r.Outcome, r.Err)
	}
	return fmt.Sprintf("[%d] %s", r.Status, r.Body)
}

// Instance is one running server process under a specific mode.
//
// Concurrency contract: an Instance is NOT safe for concurrent use. It
// models one process with one simulated address space, and exactly one
// goroutine may call Handle/HandleContext at a time (the serve.Engine
// satisfies this by giving every worker goroutine its own instance).
// Alive, Mode, Name are safe to read between requests from the owning
// goroutine; Cycles must only be read while no request is in flight. The
// *EventLog returned by Log is the exception: all of its methods are safe
// to call from any goroutine at any time, including mid-request — that is
// what lets a stats endpoint or supervisor scrape a serving instance live.
//
// Attribution contract: HandleContext brackets the request with a cursor
// over the instance's event log and stamps the events the request caused
// into Response.MemErrors (see Base.Attribute). Plain Handle does not.
type Instance interface {
	// Name identifies the server ("mutt", "apache", …).
	Name() string
	// Mode is the compilation mode the instance runs under.
	Mode() fo.Mode
	// Alive reports whether the process can still serve requests.
	Alive() bool
	// Handle processes one request.
	Handle(Request) Response
	// HandleContext processes one request under ctx: when ctx is done the
	// underlying machine aborts at its next cancellation poll and the
	// response carries fo.OutcomeDeadline. The instance survives a
	// deadline-exceeded request and keeps serving.
	HandleContext(ctx context.Context, req Request) Response
	// Log exposes the instance's memory-error log.
	Log() *fo.EventLog
	// Cycles returns the instance's cumulative simulated cycle count
	// (see the interp package's cost model).
	Cycles() uint64
}

// Server is a compiled server program from which instances are created.
type Server interface {
	Name() string
	// New creates a fresh instance (a "process") under mode.
	New(mode fo.Mode) (Instance, error)
	// LegitRequests returns named representative legitimate requests for
	// the performance figures.
	LegitRequests() []Request
	// AttackRequest returns the documented exploit input.
	AttackRequest() Request
}

// ConfigHook adjusts a machine configuration just before an instance's
// machine is created. The server has already filled in its mode, builtins
// and event log; the hook may override manufactured-value generators, step
// budgets, or install a fault-injection accessor wrapper (internal/inject).
type ConfigHook = func(*fo.MachineConfig)

// Configurable is the optional Server extension for instance creation with
// a configuration hook. All five server reproductions implement it; tooling
// discovers it by type assertion so third-party Server implementations
// (and test stubs) need not.
type Configurable interface {
	// NewWithConfig creates a fresh instance under mode, passing the
	// machine configuration through hook (nil is allowed) before the
	// machine is built.
	NewWithConfig(mode fo.Mode, hook ConfigHook) (Instance, error)
}

// Base carries the pieces every instance shares.
type Base struct {
	ServerName string
	M          *fo.Machine
	EvLog      *fo.EventLog
}

// Name implements Instance.
func (b *Base) Name() string { return b.ServerName }

// Mode implements Instance.
func (b *Base) Mode() fo.Mode { return b.M.Mode() }

// Alive implements Instance.
func (b *Base) Alive() bool { return !b.M.Dead() }

// Log implements Instance.
func (b *Base) Log() *fo.EventLog { return b.EvLog }

// Cycles implements Instance.
func (b *Base) Cycles() uint64 { return b.M.SimCycles() }

// Machine exposes the instance's underlying machine for tooling (fault
// injection, chaos supervisors). Same concurrency contract as the machine
// itself: owning goroutine only.
func (b *Base) Machine() *fo.Machine { return b.M }

// Kill marks the instance's machine dead, modeling external process
// termination (chaos injection). Owning goroutine only, between requests.
func (b *Base) Kill() { b.M.Kill() }

// Release returns the instance's pooled machine memory (stack arena, unit
// data slabs) for reuse by future instances. Call it only when retiring the
// instance for good — after a crash, when a pool replaces it — and never
// use the instance again afterwards. Pools discover it via a type
// assertion on the Instance value.
func (b *Base) Release() { b.M.Release() }

// BindContext binds ctx as the cancellation source of the instance's
// machine for the duration of one request; the returned release function
// must be deferred. Server packages use it together with Attribute to
// implement HandleContext on top of their existing Handle:
//
//	func (inst *Instance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
//		defer inst.BindContext(ctx)()
//		return inst.Attribute(func() servers.Response { return inst.Handle(req) })
//	}
func (b *Base) BindContext(ctx context.Context) (release func()) {
	return b.M.BindContext(ctx)
}

// BeginBatch opens a batch-granularity checkpoint epoch on the instance's
// machine (rewind mode only; no-op otherwise — see fo.Machine.
// BeginBatchEpoch). A serving engine that coalesces several small requests
// onto one dispatch brackets them with BeginBatch/EndBatch so the batch
// pays for one checkpoint instead of one per request; a detected memory
// error rewinds the whole epoch and consumes it, so the engine re-arms
// with BeginBatch before each sub-request (idempotent while open). Owning
// goroutine only, between requests.
func (b *Base) BeginBatch() { b.M.BeginBatchEpoch() }

// EndBatch commits the open batch epoch, if any. Owning goroutine only,
// between requests.
func (b *Base) EndBatch() { b.M.EndBatchEpoch() }

// BindBatch binds ctx as the machine's cancellation source for a whole
// batch of requests: the per-request BindContext of the same context
// inside HandleContext then recognizes it and becomes free, amortizing
// the watcher goroutine a context bind costs across the batch. The
// returned release must be called on the owning goroutine between
// requests.
func (b *Base) BindBatch(ctx context.Context) (release func()) { return b.M.BindContext(ctx) }

// Attribute implements the per-request attribution contract of
// HandleContext: it takes a cursor over the instance's event log, runs
// handle, and stamps the events recorded in between — the memory errors
// this request caused — into the response's MemErrors field.
func (b *Base) Attribute(handle func() Response) Response {
	cur := b.EvLog.Cursor()
	resp := handle()
	resp.MemErrors = b.EvLog.Since(cur)
	return resp
}

// CallString invokes a C function taking a single C-string argument and
// returns its machine result. The string is heap-allocated in the guest.
func (b *Base) CallString(fn, arg string) fo.Result {
	s := b.M.NewCString(arg)
	return b.M.Call(fn, s)
}

// ResponseFromResult converts a machine result into a Response, reading the
// named global NUL-terminated buffer as the body when the call succeeded.
func (b *Base) ResponseFromResult(res fo.Result, respGlobal string) Response {
	if res.Outcome != fo.OutcomeOK {
		return Response{Outcome: res.Outcome, Err: res.Err}
	}
	body := ""
	if respGlobal != "" {
		if u, ok := b.M.GlobalUnit(respGlobal); ok {
			n := 0
			for n < len(u.Data) && u.Data[n] != 0 {
				n++
			}
			body = string(u.Data[:n])
		}
	}
	return Response{Outcome: fo.OutcomeOK, Status: int(res.Value.I), Body: body}
}
