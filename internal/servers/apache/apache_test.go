package apache

import (
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/servers"
)

func newInstance(t *testing.T, mode fo.Mode) servers.Instance {
	t.Helper()
	inst, err := NewServer().New(mode)
	if err != nil {
		t.Fatalf("New(%v): %v", mode, err)
	}
	return inst
}

func TestCompiles(t *testing.T) {
	if _, err := Program(); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestServeHomePage(t *testing.T) {
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		inst := newInstance(t, mode)
		resp := inst.Handle(servers.Request{Op: "GET", Arg: "/index.html"})
		if !resp.OK() || resp.Status != 200 {
			t.Errorf("%v: GET /index.html = %v", mode, resp)
			continue
		}
		if !strings.HasPrefix(resp.Body, "HTTP/1.1 200 OK\r\n") {
			t.Errorf("%v: bad response prefix %.40q", mode, resp.Body)
		}
		if !strings.Contains(resp.Body, "project home page") {
			t.Errorf("%v: body missing content", mode)
		}
	}
}

func TestServeLargeFile(t *testing.T) {
	inst := newInstance(t, fo.FailureOblivious)
	resp := inst.Handle(servers.Request{Op: "GET", Arg: "/files/big"})
	if !resp.OK() || resp.Status != 200 {
		t.Fatalf("GET big = %v", resp)
	}
	if len(resp.Body) < 830*1024 {
		t.Errorf("large body = %d bytes, want >= 830KB", len(resp.Body))
	}
}

func TestNotFound(t *testing.T) {
	inst := newInstance(t, fo.BoundsCheck)
	resp := inst.Handle(servers.Request{Op: "GET", Arg: "/nope"})
	if !resp.OK() || resp.Status != 404 {
		t.Errorf("GET /nope = %v, want 404", resp)
	}
}

func TestBenignRewrite(t *testing.T) {
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		inst := newInstance(t, mode)
		resp := inst.Handle(servers.Request{Op: "GET", Arg: "/old/a"})
		if !resp.OK() || resp.Status != 200 {
			t.Errorf("%v: GET /old/a = %v, want rewritten 200", mode, resp)
			continue
		}
		if !strings.Contains(resp.Body, "page A") {
			t.Errorf("%v: rewrite served wrong content: %.60q", mode, resp.Body)
		}
	}
}

func TestAttackOutcomesPerMode(t *testing.T) {
	srv := NewServer()
	attack := srv.AttackRequest()

	std := newInstance(t, fo.Standard)
	resp := std.Handle(attack)
	if resp.Outcome != fo.OutcomeStackSmash && resp.Outcome != fo.OutcomeSegfault {
		t.Errorf("standard: outcome = %v (%v), want stack smash/segfault", resp.Outcome, resp.Err)
	}

	bc := newInstance(t, fo.BoundsCheck)
	resp = bc.Handle(attack)
	if resp.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds: outcome = %v, want termination (child process dies)", resp.Outcome)
	}

	foi := newInstance(t, fo.FailureOblivious)
	resp = foi.Handle(attack)
	if !resp.OK() {
		t.Fatalf("oblivious: crashed: %v", resp)
	}
	// Paper §4.3.2: the memory errors occur in irrelevant data (offsets
	// beyond $9 are never referenced), so the rewrite output is fully
	// correct: /v2/$1/$2 with the first two captures.
	if resp.Status != 200 || !strings.Contains(resp.Body, "api v2 endpoint") {
		t.Errorf("oblivious: attack request served %v, want correct /v2/x/x content... body=%.60q",
			resp.Status, resp.Body)
	}
	if foi.Log().InvalidWrites() == 0 {
		t.Error("oblivious: expected discarded offset writes in the log")
	}
	// Subsequent legitimate requests unaffected.
	resp = foi.Handle(servers.Request{Op: "GET", Arg: "/index.html"})
	if !resp.OK() || resp.Status != 200 {
		t.Errorf("oblivious: post-attack GET = %v", resp)
	}
}

func TestAttackRewriteProducesCorrectSubstitution(t *testing.T) {
	// /api/x/x/... under FO must rewrite to /v2/x/x exactly.
	srv := NewServer()
	srv.DocRoot["/v2/x/x"] = "vee two"
	inst, err := srv.New(fo.FailureOblivious)
	if err != nil {
		t.Fatal(err)
	}
	resp := inst.Handle(srv.AttackRequest())
	if !resp.OK() || resp.Status != 200 || !strings.Contains(resp.Body, "vee two") {
		t.Errorf("attack rewrite = %v", resp)
	}
}
