package servers_test

import (
	"errors"
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/servers"
	"focc/internal/servers/mutt"
)

func TestResponsePredicates(t *testing.T) {
	ok := servers.Response{Outcome: fo.OutcomeOK, Status: 200, Body: "x"}
	if !ok.OK() || ok.Crashed() {
		t.Error("ok response misclassified")
	}
	crash := servers.Response{Outcome: fo.OutcomeSegfault, Err: errors.New("boom")}
	if crash.OK() || !crash.Crashed() {
		t.Error("crash response misclassified")
	}
	if !strings.Contains(crash.String(), "segfault") {
		t.Errorf("crash String() = %q", crash.String())
	}
	if !strings.Contains(ok.String(), "200") {
		t.Errorf("ok String() = %q", ok.String())
	}
}

func TestBaseAccessors(t *testing.T) {
	inst, err := mutt.NewServer().New(fo.FailureOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Name() != "mutt" {
		t.Errorf("Name = %q", inst.Name())
	}
	if inst.Mode() != fo.FailureOblivious {
		t.Errorf("Mode = %v", inst.Mode())
	}
	if !inst.Alive() {
		t.Error("fresh instance not alive")
	}
	if inst.Log() == nil {
		t.Error("nil log")
	}
	before := inst.Cycles()
	inst.Handle(servers.Request{Op: "select", Arg: "INBOX"})
	if inst.Cycles() <= before {
		t.Error("cycles did not advance")
	}
}

func TestResponseFromResultReadsGlobal(t *testing.T) {
	inst, err := mutt.NewServer().New(fo.Standard)
	if err != nil {
		t.Fatal(err)
	}
	resp := inst.Handle(servers.Request{Op: "select", Arg: "INBOX"})
	if resp.Body == "" || !strings.Contains(resp.Body, "OK") {
		t.Errorf("body = %q, want IMAP status text", resp.Body)
	}
}

func TestUnknownOpsAreHarmless(t *testing.T) {
	inst, err := mutt.NewServer().New(fo.Standard)
	if err != nil {
		t.Fatal(err)
	}
	resp := inst.Handle(servers.Request{Op: "does-not-exist"})
	if resp.Crashed() {
		t.Errorf("unknown op crashed: %v", resp)
	}
}
