package inject

import (
	"os"
	"strings"
	"testing"

	"focc/fo"
)

// injSrc exercises loads and stores over a global buffer with an adjacent
// global, so perturbed accesses have realistic neighbours to land on.
const injSrc = `
int buf[4];
int sentinel = 77;
int sum;

int work(void) {
	int i;
	sum = 0;
	for (i = 0; i < 4; i++) buf[i] = i + 1;
	for (i = 0; i < 4; i++) sum = sum + buf[i];
	return sum;
}
`

const allocSrc = `
#include <stdlib.h>
#include <string.h>
int use(void) {
	char *p = malloc(16);
	int v;
	strcpy(p, "hello");
	v = p[0];
	free(p);
	return v;
}
`

func newMachine(t *testing.T, src string, mode fo.Mode, inj *Injector) *fo.Machine {
	t.Helper()
	prog, err := fo.Compile("inj.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := fo.MachineConfig{Mode: mode, MaxSteps: 1_000_000}
	if inj != nil {
		cfg.WrapAccessor = inj.Wrap
	}
	m, err := prog.NewMachine(cfg)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	return m
}

// An unarmed injector is a pure counter, and — because the program commits
// no memory errors — the interpreter issues the identical access sequence
// in every mode. This is the property campaign profiling relies on.
func TestInjectorCountsModeIndependent(t *testing.T) {
	var loads, stores []uint64
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		inj := &Injector{}
		m := newMachine(t, injSrc, mode, inj)
		if res := m.Call("work"); res.Outcome != fo.OutcomeOK || res.Value.I != 10 {
			t.Fatalf("%v: clean work() = %v/%d, want ok/10", mode, res.Outcome, res.Value.I)
		}
		loads = append(loads, inj.Loads())
		stores = append(stores, inj.Stores())
	}
	for i := 1; i < len(loads); i++ {
		if loads[i] != loads[0] || stores[i] != stores[0] {
			t.Errorf("access counts differ across modes: loads=%v stores=%v", loads, stores)
		}
	}
	if loads[0] == 0 || stores[0] == 0 {
		t.Fatalf("expected nonzero counts, got loads=%d stores=%d", loads[0], stores[0])
	}
}

// Sweeping the injected fault across every load ordinal must reproduce the
// paper's mode contract at each point: BoundsCheck terminates, Failure-
// Oblivious survives and logs the manufactured read.
func TestInjectedOOBReadSweep(t *testing.T) {
	probe := &Injector{}
	m := newMachine(t, injSrc, fo.Standard, probe)
	m.Call("work")
	total := probe.Loads()

	for n := uint64(1); n <= total; n++ {
		inj := &Injector{}
		m := newMachine(t, injSrc, fo.FailureOblivious, inj)
		inj.Arm(false, n, ShapePastEnd, 0)
		res := m.Call("work")
		if !inj.Fired() {
			t.Fatalf("fo load %d: fault did not fire", n)
		}
		if res.Outcome.Crashed() {
			t.Errorf("fo load %d: crashed: %v (%v)", n, res.Outcome, res.Err)
		}
		if got := m.Log().Snapshot().Total(); got == 0 {
			t.Errorf("fo load %d: no memory-error events logged", n)
		}

		inj = &Injector{}
		m = newMachine(t, injSrc, fo.BoundsCheck, inj)
		inj.Arm(false, n, ShapePastEnd, 0)
		res = m.Call("work")
		if res.Outcome != fo.OutcomeMemErrorTermination {
			t.Errorf("bc load %d: outcome %v, want mem-error termination", n, res.Outcome)
		}
	}
}

// A wild-shaped injected write lands in unmapped space: Standard segfaults
// on the raw access, BoundsCheck terminates with a memory error, and
// FailureOblivious discards the write and completes with the sum missing
// exactly the discarded element.
func TestInjectedWildWriteByMode(t *testing.T) {
	probe := &Injector{}
	m := newMachine(t, injSrc, fo.Standard, probe)
	m.Call("work")
	if probe.Stores() < 4 {
		t.Fatalf("profile stores = %d, want >= 4", probe.Stores())
	}

	cases := []struct {
		mode    fo.Mode
		crashed bool
	}{
		{fo.Standard, true},
		{fo.BoundsCheck, true},
		{fo.FailureOblivious, false},
	}
	for _, tc := range cases {
		inj := &Injector{}
		m := newMachine(t, injSrc, tc.mode, inj)
		// Ordinal chosen mid-run so it perturbs one of work()'s stores.
		inj.Arm(true, probe.Stores()/2, ShapeWild, 3)
		res := m.Call("work")
		if !inj.Fired() {
			t.Fatalf("%v: fault did not fire", tc.mode)
		}
		if got := res.Outcome.Crashed(); got != tc.crashed {
			t.Errorf("%v: crashed=%v (outcome %v, err %v), want crashed=%v",
				tc.mode, got, res.Outcome, res.Err, tc.crashed)
		}
	}
}

// An injected allocator fault makes malloc return null mid-request:
// Standard and BoundsCheck die on the subsequent null dereference while
// FailureOblivious absorbs it and keeps going.
func TestInjectedAllocFaultByMode(t *testing.T) {
	for _, tc := range []struct {
		mode    fo.Mode
		crashed bool
	}{
		{fo.Standard, true},
		{fo.BoundsCheck, true},
		{fo.FailureOblivious, false},
	} {
		m := newMachine(t, allocSrc, tc.mode, nil)
		m.AddressSpace().InjectMallocFault(1)
		res := m.Call("use")
		if got := res.Outcome.Crashed(); got != tc.crashed {
			t.Errorf("%v: crashed=%v (outcome %v, err %v), want crashed=%v",
				tc.mode, got, res.Outcome, res.Err, tc.crashed)
		}
		// Uninjected control: the same call succeeds in every mode.
		m = newMachine(t, allocSrc, tc.mode, nil)
		if res := m.Call("use"); res.Outcome != fo.OutcomeOK || res.Value.I != 'h' {
			t.Errorf("%v: clean use() = %v/%d, want ok/'h'", tc.mode, res.Outcome, res.Value.I)
		}
	}
}

const readonlySrc = `
int buf[4];

int readonly_sum(void) {
	int i;
	int s = 0;
	for (i = 0; i < 4; i++) s = s + buf[i];
	return s;
}
`

// Corrupting a byte of a global is visible through the access path in
// every mode without crashing anything: the corruption is in-bounds data,
// so no policy intervenes — it models a bug elsewhere having already
// smashed memory, and the outcome taxonomy classifies it by output.
func TestCorruptByteChangesOutput(t *testing.T) {
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		m := newMachine(t, readonlySrc, mode, nil)
		as := m.AddressSpace()
		if n := countEligible(as); n == 0 {
			t.Fatal("no eligible corruption targets")
		}
		// Unit 0 is buf (the first registered global); flip a bit of its
		// third byte. Offsets wrap mod the unit size, exercising the
		// same path the campaign uses.
		if !corruptKth(as, 0, 2+4*16, 0x40) {
			t.Fatal("corruptKth found no unit")
		}
		res := m.Call("readonly_sum")
		if res.Outcome.Crashed() {
			t.Errorf("%v: crashed on in-bounds corruption: %v (%v)", mode, res.Outcome, res.Err)
		}
		if res.Value.I == 0 {
			t.Errorf("%v: corrupted sum still 0 — corruption not visible", mode)
		}
	}
}

func TestStrategyGeneratorsDeterministic(t *testing.T) {
	if v := StratZero.Generator(1).Next(4); v != 0 {
		t.Errorf("zero strategy manufactured %d", v)
	}
	if v := StratOne.Generator(1).Next(4); v != 1 {
		t.Errorf("one strategy manufactured %d", v)
	}
	if v := StratMax.Generator(1).Next(4); v != -1 {
		t.Errorf("max strategy manufactured %d", v)
	}
	a, b := StratRandom.Generator(42), StratRandom.Generator(42)
	for i := 0; i < 64; i++ {
		va, vb := a.Next(4), b.Next(4)
		if va != vb {
			t.Fatalf("random strategy not reproducible at %d: %d vs %d", i, va, vb)
		}
		if va < 0 || va > 255 {
			t.Fatalf("random strategy value %d out of byte range", va)
		}
	}
}

// TestStrategyDocMatchesTable pins the Strategy doc comment to
// strategyTable: every DescribeStrategies line must appear verbatim as a
// "//\t" doc line in inject.go, and Strategies must render from the table.
func TestStrategyDocMatchesTable(t *testing.T) {
	src, err := os.ReadFile("inject.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(DescribeStrategies(), "\n"), "\n") {
		doc := "//\t" + strings.TrimRight(line, " ")
		if !strings.Contains(string(src), doc) {
			t.Errorf("Strategy doc comment is missing table line %q", doc)
		}
	}
	if len(Strategies) != len(strategyTable) {
		t.Errorf("Strategies has %d entries, strategyTable %d", len(Strategies), len(strategyTable))
	}
	for i, r := range strategyTable {
		if Strategies[i] != r.name {
			t.Errorf("Strategies[%d] = %q, want %q", i, Strategies[i], r.name)
		}
	}
}
