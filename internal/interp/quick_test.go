package interp_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"focc/internal/core"
	"focc/internal/interp"
	"focc/internal/libc"
)

// Differential test: random integer expressions are rendered to C, executed
// by the interpreter, and compared against a Go reference evaluator that
// implements C's int (32-bit, wrapping) semantics.

type exprGen struct {
	rng *rand.Rand
	sb  strings.Builder
}

// genExpr emits a random expression of bounded depth and returns its value
// under the reference semantics for variable values a, b, c.
func (g *exprGen) genExpr(depth int, a, b, c int32) int32 {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			v := int32(g.rng.Intn(201) - 100)
			if v < 0 {
				fmt.Fprintf(&g.sb, "(%d)", v)
			} else {
				fmt.Fprintf(&g.sb, "%d", v)
			}
			return v
		case 1:
			g.sb.WriteString("a")
			return a
		case 2:
			g.sb.WriteString("b")
			return b
		default:
			g.sb.WriteString("c")
			return c
		}
	}
	switch g.rng.Intn(14) {
	case 0:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" + ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x + y
	case 1:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" - ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x - y
	case 2:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" * ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x * y
	case 3:
		// Division by a non-zero constant only.
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		d := int32(g.rng.Intn(9) + 1)
		fmt.Fprintf(&g.sb, " / %d)", d)
		return x / d
	case 4:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		d := int32(g.rng.Intn(9) + 1)
		fmt.Fprintf(&g.sb, " %% %d)", d)
		return x % d
	case 5:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" & ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x & y
	case 6:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" | ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x | y
	case 7:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" ^ ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return x ^ y
	case 8:
		// Shift by a small constant.
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		s := uint(g.rng.Intn(6))
		fmt.Fprintf(&g.sb, " << %d)", s)
		return x << s
	case 9:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		s := uint(g.rng.Intn(6))
		fmt.Fprintf(&g.sb, " >> %d)", s)
		return x >> s
	case 10:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" < ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		if x < y {
			return 1
		}
		return 0
	case 11:
		g.sb.WriteString("(")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(" == ")
		y := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		if x == y {
			return 1
		}
		return 0
	case 12:
		g.sb.WriteString("(-")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return -x
	default:
		g.sb.WriteString("(~")
		x := g.genExpr(depth-1, a, b, c)
		g.sb.WriteString(")")
		return ^x
	}
}

func TestRandomExpressionsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20040612)) // deterministic
	const trials = 250
	for i := 0; i < trials; i++ {
		a := int32(rng.Intn(2001) - 1000)
		b := int32(rng.Intn(2001) - 1000)
		c := int32(rng.Intn(2001) - 1000)
		g := &exprGen{rng: rng}
		want := g.genExpr(4, a, b, c)
		src := fmt.Sprintf("int f(int a, int b, int c) { return %s; }", g.sb.String())
		prog := compile(t, src)
		m, err := interp.New(prog, interp.Config{
			Mode: core.BoundsCheck, Builtins: libc.Builtins(),
		})
		if err != nil {
			t.Fatalf("trial %d: %v\nsrc: %s", i, err, src)
		}
		res := m.Call("f", interp.Int(int64(a)), interp.Int(int64(b)), interp.Int(int64(c)))
		if res.Outcome != interp.OutcomeOK {
			t.Fatalf("trial %d: outcome %v (%v)\nsrc: %s", i, res.Outcome, res.Err, src)
		}
		if res.Value.I != int64(want) {
			t.Fatalf("trial %d: f(%d,%d,%d) = %d, want %d\nsrc: %s",
				i, a, b, c, res.Value.I, want, src)
		}
	}
}

// Differential test for the C string functions against Go references,
// through the checked access path with random contents.
func TestRandomStringOpsMatchReference(t *testing.T) {
	const src = `
#include <string.h>
char dst[512];
unsigned long do_strlen(const char *s) { return strlen(s); }
int do_strcmp(const char *a, const char *b) { return strcmp(a, b); }
char *do_strcpy(const char *s) { strcpy(dst, s); return dst; }
char *do_strcat(const char *a, const char *b) {
	strcpy(dst, a);
	strcat(dst, b);
	return dst;
}
char *do_strchr(const char *s, int c) { return strchr(s, c); }
`
	prog := compileWithCPP(t, src)
	m, err := interp.New(prog, interp.Config{
		Mode: core.BoundsCheck, Builtins: libc.Builtins(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	randStr := func(max int) string {
		n := rng.Intn(max)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(94) + 33) // printable, no NUL
		}
		return string(b)
	}
	for i := 0; i < 150; i++ {
		s1 := randStr(60)
		s2 := randStr(60)

		res := m.Call("do_strlen", m.NewCString(s1))
		if res.Outcome != interp.OutcomeOK || res.Value.I != int64(len(s1)) {
			t.Fatalf("strlen(%q) = %v/%d", s1, res.Outcome, res.Value.I)
		}

		res = m.Call("do_strcmp", m.NewCString(s1), m.NewCString(s2))
		sign := func(v int64) int {
			switch {
			case v < 0:
				return -1
			case v > 0:
				return 1
			}
			return 0
		}
		if sign(res.Value.I) != sign(int64(strings.Compare(s1, s2))) {
			t.Fatalf("strcmp(%q, %q) = %d", s1, s2, res.Value.I)
		}

		res = m.Call("do_strcat", m.NewCString(s1), m.NewCString(s2))
		got, err := m.ReadCString(res.Value, 512)
		if err != nil || got != s1+s2 {
			t.Fatalf("strcat(%q, %q) = %q, %v", s1, s2, got, err)
		}

		if len(s1) > 0 {
			ch := s1[rng.Intn(len(s1))]
			res = m.Call("do_strchr", m.NewCString(s1), interp.Int(int64(ch)))
			got, err := m.ReadCString(res.Value, 512)
			if err != nil {
				t.Fatalf("strchr read: %v", err)
			}
			idx := strings.IndexByte(s1, ch)
			if got != s1[idx:] {
				t.Fatalf("strchr(%q, %q) = %q, want %q", s1, ch, got, s1[idx:])
			}
		}
	}
}
