package token

import "testing"

func TestPos(t *testing.T) {
	p := Pos{File: "a.c", Line: 3, Col: 7}
	if !p.IsValid() {
		t.Error("valid pos reported invalid")
	}
	if p.String() != "a.c:3:7" {
		t.Errorf("String() = %q", p.String())
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos reported valid")
	}
	if (Pos{}).String() != "<unknown>" {
		t.Errorf("zero pos String() = %q", (Pos{}).String())
	}
	if (Pos{Line: 2, Col: 1}).String() != "2:1" {
		t.Errorf("fileless pos = %q", (Pos{Line: 2, Col: 1}).String())
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: Ident, Text: "foo"}, "foo"},
		{Token{Kind: IntLit, Text: "42"}, "42"},
		{Token{Kind: StringLit, Text: "hi"}, `"hi"`},
		{Token{Kind: Plus, Text: "+"}, "+"},
		{Token{Kind: KwWhile, Text: "while"}, "while"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.tok.Kind, got, c.want)
		}
	}
}

func TestKeywordsTableComplete(t *testing.T) {
	// Every keyword kind must round-trip through the Keywords map.
	for spelling, kind := range Keywords {
		if kind.String() != spelling {
			t.Errorf("keyword %q has kind name %q", spelling, kind.String())
		}
	}
	if len(Keywords) != 27 {
		t.Errorf("keyword count = %d", len(Keywords))
	}
}

func TestSplitLines(t *testing.T) {
	lines := SplitLines("f.c", "a\nb\n\nc")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	wants := []string{"a", "b", "", "c"}
	for i, w := range wants {
		if lines[i].Text != w || lines[i].N != i+1 || lines[i].File != "f.c" {
			t.Errorf("line %d = %+v, want text %q", i, lines[i], w)
		}
	}
	// Empty source still yields one (empty) line.
	if got := SplitLines("f.c", ""); len(got) != 1 || got[0].Text != "" {
		t.Errorf("empty split = %+v", got)
	}
}
