package mem

import "testing"

func TestInjectMallocFaultCountdown(t *testing.T) {
	as := New()
	as.InjectMallocFault(3)
	for i := 0; i < 2; i++ {
		if u, f := as.Malloc(16); u == nil || f != nil {
			t.Fatalf("malloc %d before the armed point failed: %v", i+1, f)
		}
	}
	u, f := as.Malloc(16)
	if u != nil || f == nil || f.Kind != FaultOOM {
		t.Fatalf("armed malloc: got unit=%v fault=%v, want OOM fault", u, f)
	}
	// The countdown disarms after firing.
	if u, f := as.Malloc(16); u == nil || f != nil {
		t.Fatalf("malloc after fired injection failed: %v", f)
	}
	// n = 0 disarms.
	as.InjectMallocFault(2)
	as.InjectMallocFault(0)
	for i := 0; i < 4; i++ {
		if u, f := as.Malloc(16); u == nil || f != nil {
			t.Fatalf("disarmed malloc %d failed: %v", i+1, f)
		}
	}
}

// Injected allocator faults must reuse the interned OOM fault value so the
// allocation-free fast path (PR 3) stays allocation-free under injection.
func TestInjectedMallocFaultIsAllocationFree(t *testing.T) {
	as := New()
	allocs := testing.AllocsPerRun(200, func() {
		as.InjectMallocFault(1)
		if u, f := as.Malloc(8); u != nil || f == nil {
			t.Fatal("injected malloc fault did not fire")
		}
	})
	if allocs != 0 {
		t.Fatalf("injected malloc fault path allocates: %v allocs/op, want 0", allocs)
	}
}

func TestVisitUnitsCoversAllRegions(t *testing.T) {
	as := New()
	lit := as.InternLiteral("lit\x00")
	g := as.AllocGlobal("g", 8)
	h, f := as.Malloc(8)
	if f != nil {
		t.Fatalf("malloc: %v", f)
	}
	fr, ff := as.PushFrame("f", 8, []LocalSpec{{Name: "x", Off: 0, Size: 8}})
	if ff != nil {
		t.Fatalf("push frame: %v", ff)
	}
	want := map[*Unit]bool{lit: false, g: false, h: false, fr.Local(0): false}
	n := 0
	as.VisitUnits(func(u *Unit) bool {
		if _, ok := want[u]; ok {
			want[u] = true
		}
		n++
		return true
	})
	for u, seen := range want {
		if !seen {
			t.Errorf("unit %s not visited", u.Name)
		}
	}
	// Early stop.
	stopped := 0
	as.VisitUnits(func(*Unit) bool { stopped++; return false })
	if stopped != 1 {
		t.Errorf("early-stop walk visited %d units, want 1", stopped)
	}
	if n < 4 {
		t.Errorf("full walk visited %d units, want at least 4", n)
	}
}
