package libc

import (
	"fmt"
	"strconv"

	"focc/internal/cc/token"
	"focc/internal/core"
	"focc/internal/interp"
)

// formatC implements the printf-family format engine over checked memory.
// Supported verbs: %d %i %u %x %X %o %c %s %p %% with optional '-', '0',
// width, precision, and l/ll/z length modifiers (which are size-irrelevant
// here because argument values are already 64-bit).
func formatC(m *interp.Machine, pos token.Pos, fmtPtr core.Pointer, args []interp.Value) []byte {
	n := cstrlen(m, fmtPtr, pos)
	f := loadN(m, fmtPtr, n, pos)
	var out []byte
	argi := 0
	nextArg := func() interp.Value {
		if argi < len(args) {
			v := args[argi]
			argi++
			return v
		}
		return interp.Int(0)
	}
	i := 0
	for i < len(f) {
		c := f[i]
		if c != '%' {
			out = append(out, c)
			i++
			continue
		}
		i++
		if i >= len(f) {
			out = append(out, '%')
			break
		}
		// Flags.
		leftAlign, zeroPad := false, false
		for i < len(f) {
			switch f[i] {
			case '-':
				leftAlign = true
				i++
				continue
			case '0':
				zeroPad = true
				i++
				continue
			}
			break
		}
		// Width.
		width := 0
		for i < len(f) && f[i] >= '0' && f[i] <= '9' {
			width = width*10 + int(f[i]-'0')
			i++
		}
		// Precision.
		prec := -1
		if i < len(f) && f[i] == '.' {
			i++
			prec = 0
			for i < len(f) && f[i] >= '0' && f[i] <= '9' {
				prec = prec*10 + int(f[i]-'0')
				i++
			}
		}
		// Length modifiers (ignored; values are 64-bit already).
		for i < len(f) && (f[i] == 'l' || f[i] == 'z' || f[i] == 'h') {
			i++
		}
		if i >= len(f) {
			break
		}
		verb := f[i]
		i++
		var piece string
		switch verb {
		case '%':
			piece = "%"
		case 'd', 'i':
			piece = strconv.FormatInt(nextArg().I, 10)
		case 'u':
			piece = strconv.FormatUint(uint64(nextArg().I), 10)
		case 'x':
			piece = strconv.FormatUint(uint64(nextArg().I), 16)
		case 'X':
			piece = fmt.Sprintf("%X", uint64(nextArg().I))
		case 'o':
			piece = strconv.FormatUint(uint64(nextArg().I), 8)
		case 'c':
			piece = string([]byte{byte(nextArg().I)})
		case 'p':
			v := nextArg()
			addr := v.Ptr.Addr
			if v.T == nil || !v.T.IsPointer() {
				addr = uint64(v.I)
			}
			piece = fmt.Sprintf("0x%x", addr)
		case 's':
			v := nextArg()
			p := v.Ptr
			if p.Addr == 0 {
				piece = "(null)"
				break
			}
			sl := cstrlen(m, p, pos)
			if prec >= 0 && int64(prec) < sl {
				sl = int64(prec)
			}
			piece = string(loadN(m, p, sl, pos))
		default:
			piece = "%" + string(verb)
		}
		if verb != 's' && prec > len(piece) && verb != '%' && verb != 'c' {
			// Numeric precision pads with leading zeros.
			sign := ""
			if len(piece) > 0 && piece[0] == '-' {
				sign, piece = "-", piece[1:]
			}
			for len(piece) < prec {
				piece = "0" + piece
			}
			piece = sign + piece
		}
		out = appendPadded(out, piece, width, leftAlign, zeroPad && !leftAlign && verb != 's')
	}
	return out
}

func appendPadded(out []byte, s string, width int, left, zero bool) []byte {
	pad := width - len(s)
	if pad <= 0 {
		return append(out, s...)
	}
	padByte := byte(' ')
	if zero {
		padByte = '0'
	}
	if left {
		out = append(out, s...)
		for i := 0; i < pad; i++ {
			out = append(out, ' ')
		}
		return out
	}
	if zero && len(s) > 0 && s[0] == '-' {
		out = append(out, '-')
		s = s[1:]
		pad = width - 1 - len(s)
	}
	for i := 0; i < pad; i++ {
		out = append(out, padByte)
	}
	return append(out, s...)
}
