// Command benchdiff compares a `go test -bench` text log against a
// committed BENCH_PR*.json baseline and prints a delta table.
//
// Usage:
//
//	go run ./cmd/benchdiff [-baseline BENCH_PR5.json] bench_smoke.txt
//
// With no -baseline flag it picks the highest-numbered BENCH_PR*.json in
// the current directory that carries a "benchmarks" section. With no log
// argument it reads the bench output from stdin.
//
// Two kinds of columns come out of the table:
//
//   - ns/op deltas are informational. Shared CI runners are too noisy for
//     hard wall-clock thresholds, so benchdiff never fails the build on
//     them; it just prints the percentage next to the committed number.
//   - sim-ms/op comes from the deterministic simulated-cycle cost model
//     (internal/interp/cycles.go) and must match the baseline exactly.
//     Any drift is a real behaviour change, so it is marked DRIFT in the
//     table and reported in the exit status (exit 1) — callers that want
//     to stay informational (the CI bench-smoke job) run with
//     continue-on-error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineEntry is one benchmark in the committed JSON. ns_op holds
// [before, after] from the PR that committed the file; the "after" number
// is the one a fresh run is compared against.
type baselineEntry struct {
	SimMsOp  float64   `json:"sim_ms_op"`
	NsOp     []float64 `json:"ns_op"`
	AllocsOp []float64 `json:"allocs_op"`
}

type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

// benchLine is one parsed line of `go test -bench` output.
type benchLine struct {
	name     string // "Fig2Pine/Read/standard" — Benchmark prefix and -N suffix stripped
	nsOp     float64
	simMsOp  float64
	hasSim   bool
	allocsOp float64
	hasAlloc bool
}

var lineRe = regexp.MustCompile(`^Benchmark(\S+)\s+\d+\s+(.*)$`)

func parseLog(r io.Reader) ([]benchLine, error) {
	var out []benchLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := lineRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		bl := benchLine{name: stripProcSuffix(m[1])}
		fields := strings.Fields(m[2])
		// Fields come in value/unit pairs: "585687 ns/op 0.004959 sim-ms/op ...".
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				bl.nsOp = v
			case "sim-ms/op":
				bl.simMsOp, bl.hasSim = v, true
			case "allocs/op":
				bl.allocsOp, bl.hasAlloc = v, true
			}
		}
		out = append(out, bl)
	}
	return out, sc.Err()
}

// stripProcSuffix drops the trailing -GOMAXPROCS marker go test appends
// ("Fig2Pine/Read/standard-4" -> "Fig2Pine/Read/standard"). Only a pure
// numeric suffix after the last dash is removed, so policy names that
// contain dashes ("failure-oblivious") survive.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// prNumber extracts N from a "BENCH_PRN.json" path (-1 when the name does
// not parse), so baselines order by PR number: a lexicographic sort would
// rank BENCH_PR8.json above BENCH_PR10.json.
func prNumber(path string) int {
	s := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_PR"), ".json")
	n, err := strconv.Atoi(s)
	if err != nil {
		return -1
	}
	return n
}

// pickBaseline returns the highest-numbered BENCH_PR*.json that has a
// "benchmarks" section, skipping older records with a different layout.
func pickBaseline() (string, error) {
	matches, err := filepath.Glob("BENCH_PR*.json")
	if err != nil {
		return "", err
	}
	sort.Slice(matches, func(i, j int) bool {
		ni, nj := prNumber(matches[i]), prNumber(matches[j])
		if ni != nj {
			return ni > nj
		}
		return matches[i] > matches[j]
	})
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			continue
		}
		var bf baselineFile
		if json.Unmarshal(data, &bf) == nil && len(bf.Benchmarks) > 0 {
			return m, nil
		}
	}
	return "", fmt.Errorf("no BENCH_PR*.json with a \"benchmarks\" section found")
}

func main() {
	baselinePath := flag.String("baseline", "", "BENCH_PR*.json to diff against (default: newest with a benchmarks section)")
	flag.Parse()

	path := *baselinePath
	if path == "" {
		p, err := pickBaseline()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		path = p
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	lines, err := parseLog(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %d benchmarks in log, baseline %s (%d entries)\n\n", len(lines), path, len(bf.Benchmarks))
	fmt.Printf("%-44s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "run ns/op", "delta", "sim-ms/op")
	drift := 0
	matched := map[string]bool{}
	for _, bl := range lines {
		base, ok := bf.Benchmarks[bl.name]
		if !ok {
			fmt.Printf("%-44s %14s %14.0f %8s  %s\n", bl.name, "-", bl.nsOp, "-", "(no baseline)")
			continue
		}
		matched[bl.name] = true
		baseNs := base.NsOp[len(base.NsOp)-1]
		delta := "-"
		if baseNs > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(bl.nsOp-baseNs)/baseNs)
		}
		sim := "n/a"
		if bl.hasSim {
			// The cost model is deterministic, but go test prints sim-ms/op
			// with ~4 significant digits, and for a leading digit of 1 one
			// print ulp is ~8e-4 relative — a per-op average sitting on a
			// rounding boundary legitimately prints either neighbor (the
			// average depends on b.N for programs whose guest state
			// accumulates across iterations). The tolerance must cover one
			// ulp at any leading digit; real cost-model changes move rows
			// by far more than 0.12%.
			if base.SimMsOp != 0 && math.Abs(bl.simMsOp-base.SimMsOp)/base.SimMsOp < 1.2e-3 {
				sim = "ok"
			} else if base.SimMsOp == bl.simMsOp {
				sim = "ok"
			} else {
				sim = fmt.Sprintf("DRIFT %g != %g", bl.simMsOp, base.SimMsOp)
				drift++
			}
		}
		fmt.Printf("%-44s %14.0f %14.0f %8s  %s\n", bl.name, baseNs, bl.nsOp, delta, sim)
	}
	var missing []string
	for name := range bf.Benchmarks {
		if !matched[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Printf("\nbaseline entries not present in this log (%d): %s\n", len(missing), strings.Join(missing, ", "))
	}
	if drift > 0 {
		fmt.Printf("\n%d sim-ms/op DRIFT(s): the deterministic cost model changed — investigate before merging.\n", drift)
		os.Exit(1)
	}
	fmt.Println("\nsim-ms/op: no drift against committed baseline.")
}
