package registry_test

import (
	"strings"
	"testing"

	"focc/internal/servers/registry"
)

// TestCatalogComplete pins the registered set: the five paper servers in
// paper order, each factory producing a server whose Name matches its
// registry key.
func TestCatalogComplete(t *testing.T) {
	want := []string{"pine", "apache", "sendmail", "mc", "mutt"}
	got := registry.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], name)
		}
		srv, err := registry.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if srv.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, srv.Name())
		}
	}
}

// TestFactoryIsolation verifies each Factory call yields a distinct Server
// value (servers with host-side state must not be shared across runs).
func TestFactoryIsolation(t *testing.T) {
	mk, err := registry.Factory("mc")
	if err != nil {
		t.Fatal(err)
	}
	if mk() == mk() {
		t.Error("Factory returned the same Server value twice")
	}
}

// TestUnknownName checks the error names the valid set.
func TestUnknownName(t *testing.T) {
	_, err := registry.New("nginx")
	if err == nil {
		t.Fatal("New(nginx) succeeded")
	}
	if !strings.Contains(err.Error(), "apache") {
		t.Errorf("error %q does not list valid names", err)
	}
}
