// Webserver: a real net/http server whose request handling runs on the
// public serving API (fo/srv): a supervised pool of failure-oblivious
// Apache-model instances behind a bounded admission queue. The Apache model
// carries the §4.3 mod_rewrite bug — a rewrite rule with more captures than
// the offset buffer can hold — so the attack URL that matches it would
// crash a Standard-mode child; under failure-oblivious execution the
// out-of-bounds offset writes are discarded and the pool keeps serving
// without a single restart.
//
// The example starts the server on a loopback listener, issues a few
// requests against itself (including the attack), and prints the results
// plus the engine's supervision counters.
//
//	go run ./examples/webserver
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"focc/fo"
	"focc/fo/srv"
)

func main() {
	// A pool of four failure-oblivious Apache children behind a bounded
	// queue with a per-request deadline — the §4.3.2 serving setup.
	eng, err := srv.NewEngine(srv.NewApacheServer(), fo.FailureOblivious,
		srv.WithPoolSize(4),
		srv.WithQueueDepth(64),
		srv.WithDeadline(2*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		resp, err := eng.Submit(r.Context(), srv.Request{Op: "GET", Arg: r.URL.Path})
		switch {
		case errors.Is(err, srv.ErrQueueFull):
			http.Error(w, "server overloaded", http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		case resp.Outcome == fo.OutcomeDeadline:
			http.Error(w, "request timed out", http.StatusGatewayTimeout)
			return
		case resp.Crashed():
			// Only reachable in Standard/BoundsCheck pools: the child died
			// handling this request (the supervisor replaces it).
			http.Error(w, "server process crashed", http.StatusBadGateway)
			return
		}
		w.WriteHeader(resp.Status)
		io.WriteString(w, httpBody(resp.Body))
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: mux}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// The Apache model's vulnerable rule has sixteen captures; a URI with
	// sixteen segments matches it and triggers the out-of-bounds offset
	// writes (the §4.3 attack).
	attack := "/api/" + strings.TrimSuffix(strings.Repeat("x/", 16), "/")
	for _, uri := range []string{
		"/index.html", // plain
		"/old/a",      // benign rewrite -> /pages/a
		attack,        // the §4.3 attack: discarded writes, correct output
		"/index.html", // still serving?
	} {
		resp, err := http.Get(base + uri)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %-40s -> %d %s\n", trunc(uri), resp.StatusCode, trunc(string(body)))
	}
	st := eng.Stats()
	fmt.Printf("engine stats: served %d, crashes %d, restarts %d, timeouts %d, rejected %d\n",
		st.Served, st.Crashes, st.Restarts, st.Timeouts, st.Rejected)
}

// httpBody strips the model's raw HTTP response framing ("HTTP/1.1 ...
// \r\n\r\n") and returns just the payload.
func httpBody(raw string) string {
	if _, body, ok := strings.Cut(raw, "\r\n\r\n"); ok {
		return body
	}
	return raw
}

func trunc(s string) string {
	if len(s) > 38 {
		return s[:35] + "..."
	}
	return s
}
