package interp

// Runtime support for the generated-code engine: the registry of
// ahead-of-time generated programs (focc -emit-go / cmd/gencorpus) and the
// exported Gen* helpers the emitted Go source calls. Every helper is a
// thin wrapper over the exact machinery the tree-walk and compiled-closure
// engines execute — step budget, cycle charging, policy accessors, frame
// protocol — so outcomes, event logs, and simulated cycles stay
// bit-identical across all three engines by construction. The generated
// code wins wall-clock time purely by eliminating per-node dispatch
// (closure calls / AST type switches), never by changing a decision point.

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"focc/internal/cc/token"
	"focc/internal/cc/types"
	"focc/internal/core"
	"focc/internal/mem"
)

// GenLive is always true. Emitted code wraps unconditional control
// transfers (return, goto, break) in `if interp.GenLive { ... }` so the
// generated source never contains statically unreachable statements —
// `go vet`'s unreachable check gates CI, and straight-line emission after
// a transfer would otherwise trip it.
var GenLive = true

// GenFn is a generated function: the ahead-of-time analogue of
// callFunction/callCompiled for one C function. The wrapper emitted by
// internal/gen performs the full call protocol (step, arity check, frame
// push, parameter binding, body, frame pop, return conversion).
type GenFn func(m *Machine, args []Value, pos token.Pos) Value

// GenProgram is the generated engine for one program: the product of
// `focc -emit-go`, registered by the generated package's init function
// and matched to its source by hash.
type GenProgram struct {
	// Hash identifies the exact (filename, source) pair the code was
	// generated from; see SourceHash.
	Hash string
	// NumSites is the number of provenance-recovery access sites; each
	// machine allocates one LookupCache per site (Machine.csite), exactly
	// like the compiled engine.
	NumSites int
	// Builtins maps builtin-slot id -> builtin name (Machine.builtinSlots).
	Builtins []string
	// Funcs maps C function names to their generated wrappers.
	Funcs map[string]GenFn
}

var (
	genMu  sync.RWMutex
	genReg = map[string]*GenProgram{}
)

// RegisterGenerated publishes a generated program, keyed by its source
// hash. Generated packages call it from init; later registrations for the
// same hash replace earlier ones (regeneration in tests).
func RegisterGenerated(p *GenProgram) {
	genMu.Lock()
	genReg[p.Hash] = p
	genMu.Unlock()
}

// GeneratedFor returns the registered generated program for a source hash.
func GeneratedFor(hash string) (*GenProgram, bool) {
	genMu.RLock()
	p, ok := genReg[hash]
	genMu.RUnlock()
	return p, ok
}

// SourceHash is the identity under which generated code is registered: it
// covers both the file name and the exact source text, because positions
// baked into the generated code (event-log attribution) depend on both.
func SourceHash(filename, src string) string {
	h := sha256.Sum256([]byte(filename + "\x00" + src))
	return hex.EncodeToString(h[:])
}

// --- Call protocol ---

// GenStep consumes one interpreter step (budget, cycles, cancellation).
func (m *Machine) GenStep() { m.step() }

// GenFailf aborts with a runtime error, like the evaluator's failf.
func (m *Machine) GenFailf(pos token.Pos, format string, args ...any) {
	m.failf(pos, format, args...)
}

// GenPushFrame pushes a stack frame, failing the call on a stack fault.
func (m *Machine) GenPushFrame(canary string, size uint64, locals []mem.LocalSpec) *mem.Frame {
	frame, fault := m.as.PushFrame(canary, size, locals)
	if fault != nil {
		m.fail(fault)
	}
	return frame
}

// GenPopFrame pops the frame, detecting canary smashes at return.
func (m *Machine) GenPopFrame(f *mem.Frame) {
	if fault := m.as.PopFrame(f); fault != nil {
		m.fail(fault)
	}
}

// GenExec runs a generated function body with the engine's frame/return
// bookkeeping and the TxTerm policy's function-boundary recovery. A body
// returns its C return value; a zero Value (nil T) means the function fell
// off the end (or was aborted by TxTerm), exactly like retVal in the
// other engines.
func (m *Machine) GenExec(f *mem.Frame, body func(*Machine, *mem.Frame) Value) Value {
	savedRet, savedFrame := m.retVal, m.frame
	m.retVal = Value{}
	m.frame = f
	ret := m.execGenBody(f, body)
	m.retVal, m.frame = savedRet, savedFrame
	return ret
}

func (m *Machine) execGenBody(f *mem.Frame, body func(*Machine, *mem.Frame) Value) (ret Value) {
	if m.acc.Mode() != core.TxTerm {
		return body(m, f)
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ep, ok := r.(execPanic)
		if !ok {
			panic(r)
		}
		if _, isAbort := ep.err.(*core.FuncAbort); isAbort {
			// Transactional function termination: zero return value, caller
			// continues (see execBody / execCompiledBody).
			ret = Value{}
			return
		}
		panic(r)
	}()
	return body(m, f)
}

// GenArgs takes an argument slice from the freelist; GenPutArgs returns it.
func (m *Machine) GenArgs(n int) []Value { return m.getArgs(n) }
func (m *Machine) GenPutArgs(s []Value)  { m.putArgs(s) }

// GenBuiltin resolves the builtin for a generated call-site slot.
func (m *Machine) GenBuiltin(slot int, name string, pos token.Pos) BuiltinFunc {
	return m.builtinAt(slot, name, pos)
}

// --- Memory access ---

// GenChargeAccess charges one trusted direct access (loadRaw's flat cost);
// the emitted scalar fast paths inline the decode and charge through here.
func (m *Machine) GenChargeAccess() { m.simCycles += AccessCycles }

// GenLocal resolves a frame local by offset with the tree-walk engine's
// nil-slot diagnostic; emitted code uses Frame.LocalAt when the slot index
// is known at generation time and falls back here otherwise.
func (m *Machine) GenLocal(off uint64, name string, pos token.Pos) *mem.Unit {
	u := m.frame.Local(off)
	if u == nil {
		m.failf(pos, "internal: no frame slot for %q", name)
	}
	return u
}

// GenGlobal returns the unit of global index i.
func (m *Machine) GenGlobal(i int) *mem.Unit { return m.globals[i] }

// GenLiteral returns the unit of string-literal index i.
func (m *Machine) GenLiteral(i int) *mem.Unit { return m.literals[i] }

// GenLoadRaw reads a typed value directly from a unit (trusted access),
// with the generated engine's slice-indexed provenance-recovery cache.
func (m *Machine) GenLoadRaw(u *mem.Unit, off uint64, t *types.Type, sid int32) Value {
	m.simCycles += AccessCycles
	size := t.Size()
	switch {
	case t.IsPointer():
		addr := uint64(decodeLE(u.Data[off:off+8], false))
		prov := u.GetShadow(off)
		if prov == nil && addr != 0 {
			prov = m.findUnitSite(sid, addr)
		}
		return Value{T: t, Ptr: core.Pointer{Addr: addr, Prov: prov}}
	case t.Kind == types.Struct:
		b := make([]byte, size)
		copy(b, u.Data[off:off+size])
		return Value{T: t, Bytes: b}
	default:
		return Value{T: t, I: decodeLE(u.Data[off:off+size], t.IsSigned())}
	}
}

// GenLoadValue reads a typed value through the policy (checked access);
// the generated analogue of loadValue with a compile-time provenance site
// id (sid) and the canonical load-site id (lsid) that primes the
// context-aware value strategy.
func (m *Machine) GenLoadValue(p core.Pointer, t *types.Type, pos token.Pos, sid, lsid int32) Value {
	size := t.Size()
	if size == 0 {
		m.failf(pos, "load of zero-sized type %s", t)
	}
	if t.Kind == types.Struct {
		buf := make([]byte, size)
		m.LoadBytes(p, buf, pos)
		return Value{T: t, Bytes: buf}
	}
	m.chargeAccess(int(size))
	m.primeSite(lsid, t, int(size))
	buf := m.scratch[:size]
	prov, err := m.acc.Load(p, buf, pos)
	if err != nil {
		m.fail(err)
	}
	if t.IsPointer() {
		addr := uint64(decodeLE(buf, false))
		if prov == nil && addr != 0 {
			prov = m.findUnitSite(sid, addr)
		}
		return Value{T: t, Ptr: core.Pointer{Addr: addr, Prov: prov}}
	}
	return Value{T: t, I: decodeLE(buf, t.IsSigned())}
}

// GenStoreRaw writes a value directly into a unit (trusted store).
func (m *Machine) GenStoreRaw(u *mem.Unit, off uint64, t *types.Type, v Value) {
	m.storeRaw(u, off, t, v)
}

// GenStoreValue writes a typed value through the policy (checked store).
func (m *Machine) GenStoreValue(p core.Pointer, t *types.Type, v Value, pos token.Pos) {
	m.storeValue(p, t, v, pos)
}

// GenZeroFill zeroes a local's storage for aggregate initialization.
func (m *Machine) GenZeroFill(u *mem.Unit, off, n uint64) { m.zeroFill(u, off, n) }

// --- Operators ---

// GenConvert coerces a value to type t with C conversion semantics.
func (m *Machine) GenConvert(v Value, t *types.Type, pos token.Pos) Value {
	return m.convert(v, t, pos)
}

// GenBinaryOp computes a non-short-circuit binary operation; the emitted
// guarded fast paths fall back here whenever an operand's runtime type is
// not the statically annotated one.
func (m *Machine) GenBinaryOp(op token.Kind, x, y Value, rt *types.Type, pos token.Pos) Value {
	return m.binaryOp(op, x, y, rt, pos)
}

// GenAddDelta implements ++/-- stepping for integers and pointers.
func (m *Machine) GenAddDelta(v Value, delta int64, pos token.Pos) Value {
	return m.addDelta(v, delta, pos)
}

// GenPromote applies the integer promotions (non-integers promote to long,
// matching the evaluator's promoteType).
func GenPromote(t *types.Type) *types.Type { return promoteType(t) }
