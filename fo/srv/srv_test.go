package srv_test

import (
	"context"
	"testing"
	"time"

	"focc/fo"
	"focc/fo/srv"
)

// TestConstructorsServe drives each public server constructor through one
// legitimate request and the documented attack under failure-oblivious
// execution — the instance must survive both.
func TestConstructorsServe(t *testing.T) {
	for _, s := range srv.Servers() {
		inst, err := s.New(fo.FailureOblivious)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if resp := inst.Handle(s.LegitRequests()[0]); !resp.OK() {
			t.Errorf("%s legit request: %v", s.Name(), resp)
		}
		if resp := srv.Handle(context.Background(), inst, s.AttackRequest()); resp.Crashed() {
			t.Errorf("%s attack crashed failure-oblivious instance: %v", s.Name(), resp)
		}
		if !inst.Alive() {
			t.Errorf("%s instance dead after attack", s.Name())
		}
	}
}

// TestEngineThroughPublicAPI exercises the full serving quickstart: an
// engine built only from fo/srv symbols serving legit and attack traffic.
func TestEngineThroughPublicAPI(t *testing.T) {
	eng, err := srv.NewEngine(srv.NewApacheServer(), fo.FailureOblivious,
		srv.WithPoolSize(2),
		srv.WithQueueDepth(8),
		srv.WithDeadline(5*time.Second),
		srv.WithBackoff(time.Millisecond, 10*time.Millisecond),
		srv.WithBreaker(4, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	apacheSrv := srv.NewApacheServer()
	for i := 0; i < 3; i++ {
		resp, err := eng.Submit(context.Background(), apacheSrv.LegitRequests()[0])
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK() {
			t.Fatalf("legit request: %v", resp)
		}
		if _, err := eng.Submit(context.Background(), apacheSrv.AttackRequest()); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Crashes != 0 || st.Restarts != 0 {
		t.Errorf("failure-oblivious engine crashed %d / restarted %d, want 0",
			st.Crashes, st.Restarts)
	}
	if st.Served != 6 {
		t.Errorf("served = %d, want 6", st.Served)
	}
}
