// Quickstart: compile one vulnerable C program and execute it under the
// three versions the paper compares — Standard (unsafe), Bounds Check
// (CRED: terminate at the first memory error), and Failure Oblivious
// (discard invalid writes, manufacture values for invalid reads).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"focc/fo"
)

// src is a tiny "server": it copies a request into a fixed-size stack
// buffer without checking the length (the canonical buffer overrun), then
// answers based on the first byte.
const src = `
#include <string.h>
#include <stdio.h>

char answer[64];

int handle(const char *request)
{
	char buf[16];
	int i = 0;
	/* BUG: no bounds check while copying the request. */
	while (request[i] != '\0') {
		buf[i] = request[i];
		i++;
	}
	buf[i] = '\0';
	if (buf[0] == 'p')
		snprintf(answer, sizeof(answer), "pong (%d bytes)", i);
	else
		snprintf(answer, sizeof(answer), "unknown request");
	return i;
}
`

func main() {
	prog, err := fo.Compile("quickstart.c", src)
	if err != nil {
		log.Fatal(err)
	}

	requests := []string{
		"ping", // legitimate
		"ping-AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA", // attack: overflows buf
		"ping", // does the server still work afterwards?
	}

	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious} {
		fmt.Printf("=== %s version ===\n", mode)
		logger := fo.NewEventLog(0)
		m, err := prog.NewMachine(fo.MachineConfig{
			Mode: mode,
			Out:  os.Stdout,
			Log:  logger,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, req := range requests {
			res := m.Call("handle", m.NewCString(req))
			switch res.Outcome {
			case fo.OutcomeOK:
				ans, _ := m.ReadCString(answerPtr(m), 64)
				fmt.Printf("  %-14q -> %s\n", trunc(req), ans)
			default:
				fmt.Printf("  %-14q -> PROCESS DIED: %s (%v)\n",
					trunc(req), res.Outcome, res.Err)
			}
			if m.Dead() {
				fmt.Println("  (process is gone; remaining requests are never served)")
				break
			}
		}
		fmt.Printf("  memory-error log: %s\n\n", logger.Summary())
	}
}

func answerPtr(m *fo.Machine) fo.Value {
	u, ok := m.GlobalUnit("answer")
	if !ok {
		log.Fatal("no answer global")
	}
	return fo.UnitPointer(u)
}

func trunc(s string) string {
	if len(s) > 12 {
		return s[:9] + "..."
	}
	return s
}
