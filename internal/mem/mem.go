// Package mem implements the simulated address space the focc runtime
// executes in: data units (every global, string literal, heap block, and
// stack frame is one unit), an object table mapping addresses to units (the
// Jones–Kelly table the paper's checking scheme is built on), a contiguous
// stack arena with per-frame canaries, and a bump-allocated heap with block
// headers.
//
// The layout is deliberately realistic in the ways the paper's evaluation
// depends on: in the unsafe Standard mode, out-of-bounds writes really do
// land in neighbouring heap blocks, heap block headers, stack canaries, or
// unmapped gaps — producing heap corruption aborts, stack smashes, and
// segmentation violations mechanically rather than by assertion.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Region base addresses. Gaps between regions are unmapped.
const (
	LiteralBase = 0x1000_0000
	GlobalBase  = 0x2000_0000
	HeapBase    = 0x4000_0000
	StackTop    = 0x7fff_0000 // stack occupies [StackTop-StackSize, StackTop)
)

// DefaultStackSize is the size of the stack arena unless overridden.
const DefaultStackSize = 1 << 20

// heapHeaderSize is the size of the allocator metadata block that precedes
// every heap allocation (magic + size), as in a real malloc implementation.
const heapHeaderSize = 16

// heapMagic marks an intact heap block header.
const heapMagic = 0x4d414c4c4f433031 // "MALLOC01"

// canarySize is the size of the stack guard between frames.
const canarySize = 8

// canaryMagic is the intact stack canary value.
const canaryMagic = 0xdeadc0dedeadc0de

// UnitKind classifies data units.
type UnitKind int

// Unit kinds.
const (
	KindGlobal UnitKind = iota
	KindLiteral
	KindHeap
	KindHeapHeader
	KindStack
	KindStackGuard
)

func (k UnitKind) String() string {
	switch k {
	case KindGlobal:
		return "global"
	case KindLiteral:
		return "literal"
	case KindHeap:
		return "heap"
	case KindHeapHeader:
		return "heap-header"
	case KindStack:
		return "stack"
	case KindStackGuard:
		return "stack-guard"
	}
	return "unknown"
}

// UnitID identifies a data unit for the lifetime of an address space.
type UnitID uint64

// Unit is one data unit: a struct, array, variable, heap block, or stack
// frame. Bounds checks are performed against units.
type Unit struct {
	ID       UnitID
	Kind     UnitKind
	Name     string // diagnostic: variable name, "malloc(64)", function name
	Base     uint64
	Size     uint64
	Dead     bool // freed heap block or popped frame
	ReadOnly bool
	Data     []byte

	// shadow maps an in-unit byte offset to the provenance unit of a
	// pointer value stored at that offset. Nil until first pointer store.
	shadow map[uint64]*Unit

	// ckptEpoch stamps the unit against the active checkpoint (see
	// checkpoint.go): a unit carrying the checkpoint's epoch is either
	// already in the undo log or was created after the checkpoint, so
	// NoteMutation skips it in O(1).
	ckptEpoch uint64
}

// End returns one past the last byte of the unit.
func (u *Unit) End() uint64 { return u.Base + u.Size }

// Contains reports whether addr lies within the unit.
func (u *Unit) Contains(addr uint64) bool { return addr >= u.Base && addr < u.End() }

// FaultKind classifies simulated hardware/runtime faults.
type FaultKind int

// Fault kinds.
const (
	// FaultSegv is a simulated SIGSEGV: access to unmapped memory or a
	// write to read-only memory.
	FaultSegv FaultKind = iota
	// FaultHeapCorrupt is the allocator detecting smashed block headers
	// (glibc's "malloc(): corrupted" abort).
	FaultHeapCorrupt
	// FaultStackSmash is a clobbered stack canary detected at function
	// return.
	FaultStackSmash
	// FaultBadFree is free() of a pointer that is not a live heap block.
	FaultBadFree
	// FaultStackOverflow is exhaustion of the stack arena.
	FaultStackOverflow
	// FaultOOM is exhaustion of the heap region.
	FaultOOM
)

func (k FaultKind) String() string {
	switch k {
	case FaultSegv:
		return "segmentation violation"
	case FaultHeapCorrupt:
		return "heap corruption detected"
	case FaultStackSmash:
		return "stack smashing detected"
	case FaultBadFree:
		return "invalid free"
	case FaultStackOverflow:
		return "stack overflow"
	case FaultOOM:
		return "out of memory"
	}
	return "fault"
}

// Fault is a simulated fatal memory fault.
type Fault struct {
	Kind FaultKind
	Addr uint64
	Msg  string
}

func (f *Fault) Error() string {
	if f.Msg != "" {
		return fmt.Sprintf("%s at 0x%x: %s", f.Kind, f.Addr, f.Msg)
	}
	return fmt.Sprintf("%s at 0x%x", f.Kind, f.Addr)
}

// Stats counts address-space activity.
type Stats struct {
	Mallocs     uint64
	Frees       uint64
	FramesPush  uint64
	FramesPop   uint64
	HeapBytes   uint64
	GlobalBytes uint64
}

// AddressSpace is the simulated process memory.
type AddressSpace struct {
	nextID UnitID

	literals   []*Unit // ascending Base
	literalCur uint64
	globals    []*Unit // ascending Base
	globalCur  uint64
	heap       []*Unit // ascending Base; includes header units
	heapCur    uint64

	stackArena []byte
	stackBase  uint64  // address of stackArena[0]
	sp         uint64  // current stack pointer (grows down)
	lowWater   uint64  // lowest sp ever (memory below stays "mapped")
	stack      []*Unit // live frames+guards, push order (descending Base)

	heapCorrupted bool
	stats         Stats

	// internTable dedups string literals.
	internTable map[string]*Unit

	// stackGen is bumped whenever stack units are removed (PopFrame,
	// UnwindTo); it validates LookupCache entries for stack units. See
	// fastpath.go for the coherence contract.
	stackGen uint64

	// Slab allocator state for unit Data backing (see fastpath.go).
	slab     []byte
	slabOff  uint64
	slabs    [][]byte
	released bool

	// Interned faults for the allocator hot paths. The pointers returned
	// by Malloc (OOM, corrupted-heap) and Free (bad free) are transient:
	// valid only until the next Malloc/Free call on this address space.
	// Callers either consume them immediately (libc translates them into
	// policy behaviour on the spot) or the machine dies holding the last
	// one, so no allocation per fault is needed.
	oomFault     Fault
	corruptFault Fault
	badFreeFault Fault

	// mallocNames memoizes "malloc(N)" diagnostic names by size.
	mallocNames map[uint64]string

	// mallocFaultIn is the injected-allocator-fault countdown: when armed
	// (non-zero), the n-th subsequent Malloc fails with the interned OOM
	// fault instead of allocating. See InjectMallocFault.
	mallocFaultIn uint64

	// ckpt is the active rollback checkpoint, ckptEpoch the monotonically
	// increasing epoch stamped onto units created or logged under it. See
	// checkpoint.go.
	ckpt      *Checkpoint
	ckptEpoch uint64
}

// New creates an address space with the default stack size.
func New() *AddressSpace { return NewWithStack(DefaultStackSize) }

// NewWithStack creates an address space with the given stack arena size.
func NewWithStack(stackSize uint64) *AddressSpace {
	as := &AddressSpace{
		literalCur:  LiteralBase,
		globalCur:   GlobalBase,
		heapCur:     HeapBase,
		stackArena:  getArena(stackSize),
		stackBase:   StackTop - stackSize,
		sp:          StackTop,
		lowWater:    StackTop,
		internTable: map[string]*Unit{},
	}
	return as
}

// Stats returns a snapshot of allocation counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// HeapCorrupted reports whether any write has landed in a heap block header.
func (as *AddressSpace) HeapCorrupted() bool { return as.heapCorrupted }

func (as *AddressSpace) newUnit(kind UnitKind, name string, base, size uint64, data []byte) *Unit {
	as.nextID++
	return &Unit{ID: as.nextID, Kind: kind, Name: name, Base: base, Size: size, Data: data,
		ckptEpoch: as.curEpoch()}
}

func roundUp(n, a uint64) uint64 { return (n + a - 1) / a * a }

// AllocGlobal allocates a zeroed global data unit.
func (as *AddressSpace) AllocGlobal(name string, size uint64) *Unit {
	if size == 0 {
		size = 1
	}
	base := roundUp(as.globalCur, 16)
	u := as.newUnit(KindGlobal, name, base, size, as.alloc(size))
	as.globalCur = base + size
	as.globals = append(as.globals, u)
	as.stats.GlobalBytes += size
	return u
}

// InternLiteral allocates (or reuses) a read-only unit holding data. String
// literals use this with a trailing NUL already appended.
func (as *AddressSpace) InternLiteral(data string) *Unit {
	if u, ok := as.internTable[data]; ok {
		return u
	}
	size := uint64(len(data))
	if size == 0 {
		size = 1
	}
	base := roundUp(as.literalCur, 8)
	buf := as.alloc(size)
	copy(buf, data)
	u := as.newUnit(KindLiteral, fmt.Sprintf("%q", truncForName(data)), base, size, buf)
	u.ReadOnly = true
	as.literalCur = base + size
	as.literals = append(as.literals, u)
	as.internTable[data] = u
	return u
}

func truncForName(s string) string {
	const max = 16
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}

// heapLimit is the exclusive upper bound of the heap region.
const heapLimit = 0x7000_0000

// InjectMallocFault arms the allocator fault injector: the n-th subsequent
// Malloc call (1 = the very next one) fails with an out-of-memory fault and
// the countdown disarms. n = 0 disarms an armed countdown. The injected
// fault reuses the interned OOM fault value, so the failure path allocates
// nothing — the same transient-pointer contract as organic allocator faults
// (see the interned-fault note on AddressSpace).
func (as *AddressSpace) InjectMallocFault(n uint64) { as.mallocFaultIn = n }

// Malloc allocates a heap block preceded by a header unit, both contiguous
// with the previous allocation so overruns behave realistically.
func (as *AddressSpace) Malloc(size uint64) (*Unit, *Fault) {
	if as.mallocFaultIn > 0 {
		as.mallocFaultIn--
		if as.mallocFaultIn == 0 {
			as.oomFault = Fault{Kind: FaultOOM, Addr: as.heapCur,
				Msg: "injected allocator fault"}
			return nil, &as.oomFault
		}
	}
	if as.heapCorrupted {
		as.corruptFault = Fault{Kind: FaultHeapCorrupt, Addr: as.heapCur,
			Msg: "malloc(): corrupted block header"}
		return nil, &as.corruptFault
	}
	if size == 0 {
		size = 1
	}
	base := roundUp(as.heapCur, 16)
	if base+heapHeaderSize+size >= heapLimit {
		as.oomFault = Fault{Kind: FaultOOM, Addr: base}
		return nil, &as.oomFault
	}
	// Header and block units are laid out contiguously and allocated as one
	// batch; their Data shares one slab-backed slice.
	pair := make([]Unit, 2)
	data := as.alloc(heapHeaderSize + size)
	hdr, blk := &pair[0], &pair[1]
	as.nextID++
	*hdr = Unit{ID: as.nextID, Kind: KindHeapHeader, Name: "malloc-header",
		Base: base, Size: heapHeaderSize, Data: data[:heapHeaderSize:heapHeaderSize]}
	binary.LittleEndian.PutUint64(hdr.Data[0:8], heapMagic)
	binary.LittleEndian.PutUint64(hdr.Data[8:16], size)
	as.nextID++
	*blk = Unit{ID: as.nextID, Kind: KindHeap, Name: as.mallocName(size),
		Base: base + heapHeaderSize, Size: size, Data: data[heapHeaderSize:]}
	hdr.ckptEpoch = as.curEpoch()
	blk.ckptEpoch = hdr.ckptEpoch
	as.heapCur = blk.End()
	as.heap = append(as.heap, hdr, blk)
	as.stats.Mallocs++
	as.stats.HeapBytes += size
	return blk, nil
}

// mallocName memoizes the diagnostic "malloc(N)" unit names — allocation
// sizes repeat heavily, and the formatting showed up in profiles.
func (as *AddressSpace) mallocName(size uint64) string {
	if name, ok := as.mallocNames[size]; ok {
		return name
	}
	name := fmt.Sprintf("malloc(%d)", size)
	if as.mallocNames == nil {
		as.mallocNames = make(map[uint64]string, 16)
	}
	as.mallocNames[size] = name
	return name
}

// Free releases a heap block. The pointer must be the base of a live heap
// block, as with C free(). The returned fault, if any, is transient (see
// the interned-fault note on AddressSpace).
func (as *AddressSpace) Free(addr uint64) *Fault {
	u := as.FindUnit(addr)
	if u == nil || u.Kind != KindHeap || u.Base != addr {
		as.badFreeFault = Fault{Kind: FaultBadFree, Addr: addr}
		return &as.badFreeFault
	}
	if u.Dead {
		as.badFreeFault = Fault{Kind: FaultBadFree, Addr: addr, Msg: "double free"}
		return &as.badFreeFault
	}
	// Check this block's header integrity, as glibc does lazily.
	hdr := as.FindUnit(addr - heapHeaderSize)
	if hdr != nil && hdr.Kind == KindHeapHeader {
		if binary.LittleEndian.Uint64(hdr.Data[0:8]) != heapMagic {
			as.heapCorrupted = true
			return &Fault{Kind: FaultHeapCorrupt, Addr: addr,
				Msg: "free(): corrupted block header"}
		}
		as.NoteMutation(hdr)
		hdr.Dead = true
	}
	as.NoteMutation(u)
	u.Dead = true
	as.stats.Frees++
	return nil
}

// LocalSpec describes one local variable (or parameter) slot inside a
// frame, at a byte offset from the frame base.
type LocalSpec struct {
	Name string
	Off  uint64
	Size uint64
}

// Frame is one pushed stack frame. Every local variable is its own data
// unit (the Jones–Kelly granularity), aliasing the shared stack arena, so
// an overflow of one stack buffer into a neighbouring local is an
// out-of-bounds access even though the bytes are adjacent.
type Frame struct {
	Base   uint64
	Size   uint64
	guard  *Unit
	locals []*Unit
	// offs holds the frame offsets of locals, parallel to the locals
	// slice; frames are small enough that a linear scan beats a map.
	offs   []uint64
	prevSP uint64
}

// Local returns the data unit of the local declared at frame offset off.
func (f *Frame) Local(off uint64) *Unit {
	for i, o := range f.offs {
		if o == off {
			return f.locals[i]
		}
	}
	return nil
}

// LocalAt returns the data unit at index i of the frame's registration
// order, which is the REVERSE of the PushFrame spec order (locals are
// registered top-down so the unit table stays sorted). Compiled code that
// resolved a local's spec index at lowering time uses
// LocalAt(len(spec)-1-specIdx) for O(1) access instead of Local's offset
// scan.
func (f *Frame) LocalAt(i int) *Unit { return f.locals[i] }

// PushFrame allocates a stack frame of the given size with a canary guard
// between it and the caller's frame, and one data unit per local. fnName
// labels the guard unit verbatim, and LocalSpec names are used verbatim,
// so callers pushing the same frame layout repeatedly should pass
// preformatted names (the interpreter caches them per function).
func (as *AddressSpace) PushFrame(fnName string, size uint64, locals []LocalSpec) (*Frame, *Fault) {
	size = roundUp(size, 8)
	if size == 0 {
		size = 8
	}
	need := size + canarySize
	if as.sp < as.stackBase+need {
		return nil, &Fault{Kind: FaultStackOverflow, Addr: as.sp}
	}
	prevSP := as.sp
	guardBase := as.sp - canarySize
	frameBase := guardBase - size
	as.sp = frameBase
	if as.sp < as.lowWater {
		as.lowWater = as.sp
	}
	// All of the frame's units (guard plus locals) come from one batch
	// allocation; frames are pushed on every function call, so the
	// per-unit allocations dominated the call path.
	units := make([]Unit, 1+len(locals))
	epoch := as.curEpoch()
	gOff := guardBase - as.stackBase
	guard := &units[0]
	as.nextID++
	*guard = Unit{ID: as.nextID, Kind: KindStackGuard, Name: fnName,
		Base: guardBase, Size: canarySize, ckptEpoch: epoch,
		Data: as.stackArena[gOff : gOff+canarySize : gOff+canarySize]}
	binary.LittleEndian.PutUint64(guard.Data, canaryMagic)
	f := &Frame{
		Base:   frameBase,
		Size:   size,
		guard:  guard,
		prevSP: prevSP,
		locals: make([]*Unit, 0, len(locals)),
		offs:   make([]uint64, 0, len(locals)),
	}
	// Register units in descending base order so as.stack stays strictly
	// descending (guard is highest, then locals top-down).
	as.stack = append(as.stack, guard)
	for i := len(locals) - 1; i >= 0; i-- {
		sp := locals[i]
		sz := sp.Size
		if sz == 0 {
			sz = 1
		}
		base := frameBase + sp.Off
		aOff := base - as.stackBase
		u := &units[1+i]
		as.nextID++
		*u = Unit{ID: as.nextID, Kind: KindStack, Name: sp.Name,
			Base: base, Size: sz, ckptEpoch: epoch,
			Data: as.stackArena[aOff : aOff+sz : aOff+sz]}
		f.locals = append(f.locals, u)
		f.offs = append(f.offs, sp.Off)
		as.stack = append(as.stack, u)
	}
	as.stats.FramesPush++
	return f, nil
}

// PopFrame releases the most recent frame. It returns a FaultStackSmash if
// the canary was clobbered (only meaningful for the unsafe Standard mode —
// checked modes never let a write reach the canary).
func (as *AddressSpace) PopFrame(f *Frame) *Fault {
	n := len(f.locals) + 1
	if len(as.stack) < n || as.stack[len(as.stack)-n] != f.guard {
		// Mis-nested pop; treat as internal error.
		return &Fault{Kind: FaultSegv, Addr: f.Base, Msg: "mis-nested frame pop"}
	}
	smashed := binary.LittleEndian.Uint64(f.guard.Data) != canaryMagic
	for _, u := range f.locals {
		u.Dead = true
		u.shadow = nil
	}
	f.guard.Dead = true
	as.stack = as.stack[:len(as.stack)-n]
	as.sp = f.prevSP
	as.stackGen++ // stack units removed: invalidate stack cache entries
	as.stats.FramesPop++
	if smashed {
		return &Fault{Kind: FaultStackSmash, Addr: f.guard.Base,
			Msg: "canary of " + f.guard.Name}
	}
	return nil
}

// SP returns the current stack pointer (for save/restore across a
// non-local exit).
func (as *AddressSpace) SP() uint64 { return as.sp }

// UnwindTo abandons every frame pushed after the stack pointer was at sp —
// the non-local exit used when a call is canceled mid-execution. The frames
// are discarded, not returned from, so no canary checks are performed.
func (as *AddressSpace) UnwindTo(sp uint64) {
	for len(as.stack) > 0 {
		u := as.stack[len(as.stack)-1]
		if u.Base >= sp {
			break
		}
		u.Dead = true
		u.shadow = nil
		if u.Kind == KindStackGuard {
			as.stats.FramesPop++
		}
		as.stack = as.stack[:len(as.stack)-1]
	}
	as.sp = sp
	as.stackGen++ // stack units removed: invalidate stack cache entries
}

// FindUnit returns the unit containing addr (live or dead), or nil for
// unmapped addresses. Guard and header units are returned too.
func (as *AddressSpace) FindUnit(addr uint64) *Unit {
	switch {
	case addr >= LiteralBase && addr < GlobalBase:
		return findAsc(as.literals, addr)
	case addr >= GlobalBase && addr < HeapBase:
		return findAsc(as.globals, addr)
	case addr >= HeapBase && addr < heapLimit:
		return findAsc(as.heap, addr)
	case addr >= as.stackBase && addr < StackTop:
		return as.findStack(addr)
	}
	return nil
}

// VisitUnits calls visit for every registered data unit — literals, globals,
// heap blocks and headers (live and dead), then the live stack units — in a
// deterministic order (region by region, registration order within each).
// visit returning false stops the walk. Fault-injection tooling uses it to
// enumerate corruption targets; the walk itself must not mutate the address
// space's unit registries.
func (as *AddressSpace) VisitUnits(visit func(*Unit) bool) {
	for _, set := range [4][]*Unit{as.literals, as.globals, as.heap, as.stack} {
		for _, u := range set {
			if !visit(u) {
				return
			}
		}
	}
}

func findAsc(units []*Unit, addr uint64) *Unit {
	i := sort.Search(len(units), func(i int) bool { return units[i].End() > addr })
	if i < len(units) && units[i].Contains(addr) {
		return units[i]
	}
	return nil
}

func (as *AddressSpace) findStack(addr uint64) *Unit {
	// as.stack is strictly descending in Base: binary-search for the first
	// unit with Base <= addr (the only candidate that can contain addr).
	s := as.stack
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Base <= addr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(s) && s[lo].Contains(addr) {
		return s[lo]
	}
	return nil
}

// stackMapped reports whether addr is in the touched part of the stack
// arena (which stays accessible like real stack memory even after frames
// pop).
func (as *AddressSpace) stackMapped(addr uint64) bool {
	return addr >= as.lowWater && addr < StackTop
}

// RawRead reads n bytes starting at addr with no bounds checking — the
// Standard (unsafe) semantics. Unmapped bytes fault.
func (as *AddressSpace) RawRead(addr uint64, buf []byte) *Fault {
	n := uint64(len(buf))
	for n > 0 {
		if as.stackMapped(addr) {
			off := addr - as.stackBase
			avail := StackTop - addr
			c := n
			if c > avail {
				c = avail
			}
			copy(buf[uint64(len(buf))-n:], as.stackArena[off:off+c])
			addr += c
			n -= c
			continue
		}
		u := as.FindUnit(addr)
		if u == nil {
			return &Fault{Kind: FaultSegv, Addr: addr, Msg: "read of unmapped memory"}
		}
		off := addr - u.Base
		c := n
		if avail := u.Size - off; c > avail {
			c = avail
		}
		copy(buf[uint64(len(buf))-n:], u.Data[off:off+c])
		addr += c
		n -= c
	}
	return nil
}

// RawWrite writes bytes starting at addr with no bounds checking — the
// Standard (unsafe) semantics. Writes into heap headers mark the heap
// corrupted; writes into stack canaries clobber them (detected at frame
// pop); writes to read-only literals or unmapped memory fault immediately.
func (as *AddressSpace) RawWrite(addr uint64, data []byte) *Fault {
	n := uint64(len(data))
	for n > 0 {
		if as.stackMapped(addr) {
			// Guard units alias the arena, so writes that reach a
			// canary clobber it in place; PopFrame detects that.
			off := addr - as.stackBase
			avail := StackTop - addr
			c := n
			if c > avail {
				c = avail
			}
			copy(as.stackArena[off:off+c], data[uint64(len(data))-n:])
			addr += c
			n -= c
			continue
		}
		u := as.FindUnit(addr)
		if u == nil {
			return &Fault{Kind: FaultSegv, Addr: addr, Msg: "write to unmapped memory"}
		}
		if u.ReadOnly {
			return &Fault{Kind: FaultSegv, Addr: addr, Msg: "write to read-only memory"}
		}
		off := addr - u.Base
		c := n
		if avail := u.Size - off; c > avail {
			c = avail
		}
		copy(u.Data[off:off+c], data[uint64(len(data))-n:])
		if u.Kind == KindHeapHeader {
			as.heapCorrupted = true
		}
		u.clearShadowRange(off, c)
		addr += c
		n -= c
	}
	return nil
}

// --- Provenance shadow (pointer stores) ---

// SetShadow records that the pointer stored at the given in-unit offset has
// provenance prov.
func (u *Unit) SetShadow(off uint64, prov *Unit) {
	if u.shadow == nil {
		// Pre-size: a unit that stores one pointer usually stores a few
		// (arrays of pointers, structs with pointer fields).
		u.shadow = make(map[uint64]*Unit, 8)
	}
	u.shadow[off] = prov
}

// GetShadow returns the provenance of a pointer loaded from the given
// offset, or nil.
func (u *Unit) GetShadow(off uint64) *Unit {
	if u.shadow == nil {
		return nil
	}
	return u.shadow[off]
}

// clearShadowRange invalidates shadow entries overlapping [off, off+n).
func (u *Unit) clearShadowRange(off, n uint64) {
	if len(u.shadow) == 0 {
		return
	}
	lo := uint64(0)
	if off >= 7 {
		lo = off - 7
	}
	for a := lo; a < off+n; a++ {
		delete(u.shadow, a)
	}
}

// ClearShadowRange is the exported form used by checked stores.
func (u *Unit) ClearShadowRange(off, n uint64) { u.clearShadowRange(off, n) }
