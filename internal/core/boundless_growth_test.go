package core

import "testing"

// TestBoundlessSideStoreBounded is the regression test for the §5.1
// requirement that a long-running attack cannot exhaust memory through the
// boundless side store: sustained out-of-bounds writes at ever-new offsets
// must keep the resident state bounded by the two-generation scheme
// (current + previous ≤ 2×sideWordCap word entries), while the most recent
// writes — the current generation — stay readable.
func TestBoundlessSideStoreBounded(t *testing.T) {
	as, u := fixture(t)
	log := NewEventLog(0)
	acc := NewBoundless(as, NewSmallIntGenerator(), log)
	a := acc.(*boundlessAccessor)

	// A sustained attack: 8-byte OOB pointer-carrying stores at distinct,
	// ever-increasing word offsets — the access pattern that grows every
	// map (side, sideP) by one entry per store and forces several
	// generation rotations.
	const writes = 5 * sideWordCap
	val := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < writes; i++ {
		p := ptr(u, int64(16+8*i))
		if err := acc.Store(p, val[:], u, testPos); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		if len(a.side) > sideWordCap {
			t.Fatalf("store %d: current generation holds %d words, cap %d",
				i, len(a.side), sideWordCap)
		}
	}
	if total := len(a.side) + len(a.prev); total > 2*sideWordCap {
		t.Fatalf("resident side store = %d words, bound is 2×%d", total, sideWordCap)
	}
	// Provenance maps rotate with the byte maps; exact-offset keying means
	// at most 8 entries per resident word.
	if total := len(a.sideP) + len(a.prevP); total > 8*2*sideWordCap {
		t.Fatalf("resident provenance store = %d entries, bound is 16×%d",
			total, sideWordCap)
	}

	// LRU approximation: the most recent write is in the current
	// generation and must read back verbatim, with its provenance.
	last := ptr(u, int64(16+8*(writes-1)))
	var got [8]byte
	prov, err := acc.Load(last, got[:], testPos)
	if err != nil {
		t.Fatalf("load-back: %v", err)
	}
	if got != val {
		t.Fatalf("load-back = %v, want %v", got, val)
	}
	if prov != u {
		t.Fatalf("load-back provenance = %v, want %v", prov, u)
	}

	// Overwriting one resident word forever must not grow the store at
	// all: the same keys are reused, no rotation pressure. (The first
	// store may re-insert the word — and rotate — if the attack loop
	// evicted it; every store after that hits the current generation.)
	hot := ptr(u, 16)
	if err := acc.Store(hot, val[:], nil, testPos); err != nil {
		t.Fatalf("hot store: %v", err)
	}
	before := len(a.side)
	for i := 0; i < 1000; i++ {
		if err := acc.Store(hot, val[:], nil, testPos); err != nil {
			t.Fatalf("hot store: %v", err)
		}
	}
	if len(a.side) != before {
		t.Fatalf("hot-loop grew current generation %d -> %d", before, len(a.side))
	}
}
