// Webserver: a real net/http server whose URL-rewriting engine is C code
// executed failure-obliviously. The rewrite rule set includes one rule with
// more captures than the offset buffer can hold (the Apache §4.3 bug); the
// attack URL that matches it is harmless under failure-oblivious execution
// because the substitution only references $1 and $2 — the discarded offset
// writes were for captures the server never uses.
//
// The example starts the server on a loopback listener, issues a few
// requests against itself (including the attack), and prints the results.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"focc/fo"
)

const rewriteSrc = `
#include <string.h>

struct regmatch { int rm_so; int rm_eo; };

char rewritten[512];

static int rx_rec(const char *pat, int pi, const char *str, int si,
                  int *gopen, struct regmatch *m)
{
	int c = pat[pi];
	int j, g;
	if (c == '\0')
		return str[si] == '\0';
	if (c == '(') {
		g = 0;
		for (j = 0; j < pi; j++)
			if (pat[j] == '(') g++;
		gopen[g] = si;
		return rx_rec(pat, pi + 1, str, si, gopen, m);
	}
	if (c == ')') {
		g = 0;
		for (j = 0; j < pi; j++)
			if (pat[j] == ')') g++;
		m[g + 1].rm_so = gopen[g];  /* BUG: unbounded store */
		m[g + 1].rm_eo = si;
		return rx_rec(pat, pi + 1, str, si, gopen, m);
	}
	if (c == '*') {
		int end = si;
		for (;;) {
			if (rx_rec(pat, pi + 1, str, end, gopen, m))
				return 1;
			if (str[end] == '\0')
				return 0;
			end++;
		}
	}
	if (str[si] == c)
		return rx_rec(pat, pi + 1, str, si + 1, gopen, m);
	return 0;
}

int try_rewrite(const char *uri, const char *pattern, const char *subst)
{
	struct regmatch regmatch[10];   /* room for ten captures */
	int gopen[32];
	int i, o = 0;
	if (!rx_rec(pattern, 0, uri, 0, gopen, regmatch))
		return 0;
	regmatch[0].rm_so = 0;
	regmatch[0].rm_eo = (int) strlen(uri);
	for (i = 0; subst[i] != '\0' && o < (int)(sizeof(rewritten)) - 1; i++) {
		if (subst[i] == '$' && subst[i+1] >= '0' && subst[i+1] <= '9') {
			int g = subst[i+1] - '0';
			int j;
			for (j = regmatch[g].rm_so;
			     j < regmatch[g].rm_eo && o < (int)(sizeof(rewritten)) - 1; j++)
				rewritten[o++] = uri[j];
			i++;
			continue;
		}
		rewritten[o++] = subst[i];
	}
	rewritten[o] = '\0';
	return 1;
}
`

type rule struct{ pattern, subst string }

// rewriter wraps the failure-oblivious C engine as an http middleware.
type rewriter struct {
	m     *fo.Machine
	rules []rule
	log   *fo.EventLog
}

func newRewriter() (*rewriter, error) {
	prog, err := fo.Compile("rewrite.c", rewriteSrc)
	if err != nil {
		return nil, err
	}
	logger := fo.NewEventLog(0)
	m, err := prog.NewMachine(fo.MachineConfig{
		Mode: fo.FailureOblivious,
		Log:  logger,
	})
	if err != nil {
		return nil, err
	}
	// The second rule has 14 captures — more than the offset buffer's ten.
	manyGroups := "/api" + strings.Repeat("/(*)", 14)
	return &rewriter{
		m: m,
		rules: []rule{
			{"/old/(*)", "/pages/$1"},
			{manyGroups, "/v2/$1/$2"},
		},
		log: logger,
	}, nil
}

// rewrite returns the rewritten path (or the original when no rule matches)
// and whether the C engine survived.
func (rw *rewriter) rewrite(uri string) (string, bool) {
	for _, r := range rw.rules {
		res := rw.m.Call("try_rewrite",
			rw.m.NewCString(uri), rw.m.NewCString(r.pattern), rw.m.NewCString(r.subst))
		if res.Outcome != fo.OutcomeOK {
			return uri, false
		}
		if res.Value.I == 1 {
			u, _ := rw.m.GlobalUnit("rewritten")
			out, err := rw.m.ReadCString(fo.UnitPointer(u), 511)
			if err != nil {
				return uri, true
			}
			return out, true
		}
	}
	return uri, true
}

func main() {
	rw, err := newRewriter()
	if err != nil {
		log.Fatal(err)
	}
	pages := map[string]string{
		"/index.html": "welcome to the failure-oblivious web server\n",
		"/pages/a":    "page A\n",
		"/v2/x/x":     "api v2 endpoint\n",
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		path, alive := rw.rewrite(r.URL.Path)
		if !alive {
			http.Error(w, "rewrite engine died", http.StatusInternalServerError)
			return
		}
		body, ok := pages[path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, body)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	attack := "/api/" + strings.TrimSuffix(strings.Repeat("x/", 14), "/")
	for _, uri := range []string{
		"/index.html", // plain
		"/old/a",      // benign rewrite
		attack,        // matches the 14-capture rule: the §4.3 attack
		"/index.html", // still serving?
	} {
		resp, err := http.Get(base + uri)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("GET %-40s -> %d %s", trunc(uri), resp.StatusCode, body)
	}
	fmt.Printf("rewrite engine memory-error log: %s\n", rw.log.Summary())
}

func trunc(s string) string {
	if len(s) > 38 {
		return s[:35] + "..."
	}
	return s
}
