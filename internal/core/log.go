package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"focc/internal/cc/token"
)

// Event records one attempt by the program to commit a memory error
// (paper §3: "our compiler can optionally augment the generated code to
// produce a log containing information about the program's attempts to
// commit memory errors").
type Event struct {
	Pos   token.Pos
	Write bool
	Addr  uint64
	Size  int
	Unit  string // provenance data unit name, if any
	// Victim names the unit the access would actually have touched
	// (from the object-table lookup), if any.
	Victim string
	// Manufactured is the value supplied for an invalid read.
	Manufactured int64
	// Strategy names the manufactured-value strategy that produced
	// Manufactured (ModeFOContext only; empty for the global sequence).
	Strategy string
	// Boundless marks accesses served by the boundless side store.
	Boundless bool
	// Redirected marks accesses wrapped back into the unit.
	Redirected bool
	// Denied marks accesses a terminating policy rejected (BoundsCheck's
	// fatal rejection, TxTerm's function abort): no value was manufactured
	// and no write was discarded — execution did not continue past it.
	Denied bool
}

// manufactures reports whether the event actually supplied a manufactured
// value (an invalid read continued through by generating data, as opposed to
// one served from the boundless side store, redirected into the unit, or
// denied outright).
func (e Event) manufactures() bool {
	return !e.Write && !e.Denied && !e.Boundless && !e.Redirected
}

func (e Event) String() string {
	op := "invalid read"
	switch {
	case e.Denied && e.Write:
		op = "invalid write (terminated)"
	case e.Denied:
		op = "invalid read (terminated)"
	case e.Write:
		op = "invalid write (discarded)"
	}
	u := e.Unit
	if u == "" {
		u = "<no unit>"
	}
	s := fmt.Sprintf("%s: %s of %d bytes at 0x%x (unit %s)", e.Pos, op, e.Size, e.Addr, u)
	if e.Victim != "" && e.Victim != e.Unit {
		s += fmt.Sprintf(", would have touched %s", e.Victim)
	}
	if e.manufactures() {
		s += fmt.Sprintf(", manufactured value %d", e.Manufactured)
		if e.Strategy != "" {
			s += fmt.Sprintf(" [%s]", e.Strategy)
		}
	}
	if e.Boundless {
		s += " [boundless]"
	}
	if e.Redirected {
		s += " [redirected]"
	}
	return s
}

// snapshotCardinality bounds the Manufactured and Victims maps of a
// Snapshot: once a map holds this many distinct keys, events with new keys
// still count toward the exact counters but are dropped from the histogram.
// The paper's manufactured-value sequence is a handful of small integers and
// victim names are static data-unit names, so the cap is never reached in
// practice; it exists so a pathological workload cannot grow the log without
// bound.
const snapshotCardinality = 256

// Snapshot is a point-in-time copy of an EventLog's aggregate counters. It
// is a plain value: safe to retain, merge, and read without synchronization.
type Snapshot struct {
	// InvalidReads counts invalid reads continued through.
	InvalidReads uint64
	// InvalidWrites counts invalid writes discarded (or stored
	// boundlessly / redirected).
	InvalidWrites uint64
	// Denied counts accesses rejected fatally by a terminating policy
	// (BoundsCheck's memory-error exit, TxTerm's function abort).
	Denied uint64
	// Manufactured histograms the values supplied for invalid reads
	// (value -> occurrences). Nil when no value was ever manufactured.
	Manufactured map[int64]uint64
	// Victims counts events per would-be victim unit (the unit the access
	// would actually have touched). Nil when no victim was ever recorded.
	Victims map[string]uint64
	// Strategies histograms manufactured values by the strategy that
	// produced them (strategy name -> occurrences; ModeFOContext only).
	// Nil when no strategy-attributed value was ever manufactured.
	Strategies map[string]uint64
}

// Total returns the total number of memory-error events in the snapshot.
func (s Snapshot) Total() uint64 { return s.InvalidReads + s.InvalidWrites + s.Denied }

// Merge adds o's counts into s (histograms included). The len guards are
// not cosmetic: Merge runs once per live instance per scrape on the
// monitoring path, and skipping the map-iterator setup for absent
// histograms is measurable there.
func (s *Snapshot) Merge(o Snapshot) {
	s.InvalidReads += o.InvalidReads
	s.InvalidWrites += o.InvalidWrites
	s.Denied += o.Denied
	if len(o.Manufactured) > 0 {
		if s.Manufactured == nil {
			s.Manufactured = make(map[int64]uint64, len(o.Manufactured))
		}
		for v, n := range o.Manufactured {
			s.Manufactured[v] += n
		}
	}
	if len(o.Victims) > 0 {
		if s.Victims == nil {
			s.Victims = make(map[string]uint64, len(o.Victims))
		}
		for u, n := range o.Victims {
			s.Victims[u] += n
		}
	}
	if len(o.Strategies) > 0 {
		if s.Strategies == nil {
			s.Strategies = make(map[string]uint64, len(o.Strategies))
		}
		for name, n := range o.Strategies {
			s.Strategies[name] += n
		}
	}
}

// Clone returns a deep copy (the histogram maps are not shared).
func (s Snapshot) Clone() Snapshot {
	out := s
	out.Manufactured, out.Victims, out.Strategies = nil, nil, nil
	out.Merge(Snapshot{Manufactured: s.Manufactured, Victims: s.Victims, Strategies: s.Strategies})
	return out
}

// Cursor marks a position in an EventLog's counters; see EventLog.Cursor.
type Cursor struct {
	reads, writes, denied uint64
}

// Delta is the difference between two log positions: the events recorded
// between taking a Cursor and calling Since — the per-request attribution
// unit (servers.Response.MemErrors).
type Delta struct {
	InvalidReads  uint64
	InvalidWrites uint64
	Denied        uint64
}

// Total returns the total number of events in the delta.
func (d Delta) Total() uint64 { return d.InvalidReads + d.InvalidWrites + d.Denied }

func (d Delta) String() string {
	return fmt.Sprintf("%d invalid reads, %d invalid writes, %d denied",
		d.InvalidReads, d.InvalidWrites, d.Denied)
}

// EventLog accumulates memory-error events. It keeps exact counters, small
// aggregate histograms, and a bounded window of the most recent events.
//
// Concurrency: all methods are safe for concurrent use from any goroutine.
// The hot counters (reads/writes/denied) are lock-free atomics — each
// serving goroutine owns one instance and therefore one log, so the
// counters are effectively per-goroutine shards that scrapers fold on
// Snapshot without ever contending the serving path. The mutex guards only
// the cold state: the event ring, the histograms, and writes to Stream
// (serialized, never interleaved) — and the serving path takes it only
// when an actual memory error occurs, never per access or per request.
// This is what makes a live scrape (stats endpoint, supervisor, fobench)
// legal while the owning worker is mid-request.
//
// Counter/histogram ordering: an event bumps its counter before it takes
// the mutex to enter the histograms, so a concurrent Snapshot may observe
// a counter ahead of the maps, never behind — histogram totals are always
// <= the matching counters.
type EventLog struct {
	reads  atomic.Uint64
	writes atomic.Uint64
	denied atomic.Uint64 // bounds-check terminations

	// aggs is raised (under mu) when the first aggregate-histogram entry is
	// recorded, and lets AddTo skip the mutex entirely while the log holds
	// only counters — the common case for discard-mode workloads, whose
	// events carry no manufactured value, victim, or strategy. That keeps a
	// hot scrape loop from contending with the serving path's event appends.
	aggs atomic.Bool

	mu     sync.Mutex
	limit  int
	events []Event
	start  int // ring start when full

	manufactured map[int64]uint64
	victims      map[string]uint64
	strategies   map[string]uint64

	// Stream is an optional live event stream. Set it before the log is
	// shared between goroutines (writes to it are serialized under the
	// log's mutex, but assigning the field itself is not synchronized).
	Stream io.Writer
}

// DefaultLogLimit bounds the retained event window.
const DefaultLogLimit = 1024

// NewEventLog returns a log retaining up to limit recent events
// (DefaultLogLimit if limit <= 0).
func NewEventLog(limit int) *EventLog {
	if limit <= 0 {
		limit = DefaultLogLimit
	}
	return &EventLog{limit: limit}
}

func (l *EventLog) add(e Event) {
	if l == nil {
		return
	}
	if e.Write {
		l.writes.Add(1)
	} else {
		l.reads.Add(1)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.push(e)
}

// addDenied records an access a terminating policy rejected fatally.
func (l *EventLog) addDenied(e Event) {
	if l == nil {
		return
	}
	e.Denied = true
	l.denied.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.push(e)
}

// push appends e to the ring and the aggregates; callers hold l.mu.
func (l *EventLog) push(e Event) {
	if e.manufactures() {
		if l.manufactured == nil {
			l.manufactured = make(map[int64]uint64)
			l.aggs.Store(true)
		}
		if _, ok := l.manufactured[e.Manufactured]; ok || len(l.manufactured) < snapshotCardinality {
			l.manufactured[e.Manufactured]++
		}
	}
	if e.Victim != "" {
		if l.victims == nil {
			l.victims = make(map[string]uint64)
			l.aggs.Store(true)
		}
		if _, ok := l.victims[e.Victim]; ok || len(l.victims) < snapshotCardinality {
			l.victims[e.Victim]++
		}
	}
	if e.Strategy != "" && e.manufactures() {
		if l.strategies == nil {
			l.strategies = make(map[string]uint64)
			l.aggs.Store(true)
		}
		if _, ok := l.strategies[e.Strategy]; ok || len(l.strategies) < snapshotCardinality {
			l.strategies[e.Strategy]++
		}
	}
	if l.Stream != nil {
		fmt.Fprintln(l.Stream, e.String())
	}
	if len(l.events) < l.limit {
		l.events = append(l.events, e)
		return
	}
	l.events[l.start] = e
	l.start = (l.start + 1) % l.limit
}

// InvalidReads returns the number of invalid reads continued through.
func (l *EventLog) InvalidReads() uint64 { return l.reads.Load() }

// InvalidWrites returns the number of invalid writes discarded (or stored
// boundlessly / redirected).
func (l *EventLog) InvalidWrites() uint64 { return l.writes.Load() }

// Denied returns the number of accesses rejected fatally by BoundsCheck.
func (l *EventLog) Denied() uint64 { return l.denied.Load() }

// Total returns the total number of memory-error events.
func (l *EventLog) Total() uint64 {
	return l.reads.Load() + l.writes.Load() + l.denied.Load()
}

// Snapshot returns a point-in-time copy of the aggregate counters and
// histograms. The result shares no state with the log. Under a concurrent
// writer the histogram totals may trail the counters by in-flight events
// (see the ordering note on EventLog), never exceed them.
func (l *EventLog) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Snapshot{
		Manufactured: l.manufactured,
		Victims:      l.victims,
		Strategies:   l.strategies,
	}
	s = s.Clone()
	// Load the counters while the histograms are frozen: a racing add bumps
	// its counter before it can enter the maps, so the copied maps can only
	// trail the counters read here.
	s.InvalidReads = l.reads.Load()
	s.InvalidWrites = l.writes.Load()
	s.Denied = l.denied.Load()
	return s
}

// AddTo folds the log's counters and histograms directly into s — the
// result is identical to s.Merge(l.Snapshot()) without materializing the
// intermediate snapshot (no per-log map clone). This is the scrape fast
// path: a pool supervisor aggregating many live logs calls it once per
// log per scrape.
func (l *EventLog) AddTo(s *Snapshot) {
	// Lock-free while the log holds no aggregate histograms: a racing event
	// that creates the first map entry bumped its counter before taking the
	// mutex, so skipping the map fold here can only make histogram totals
	// trail the counters — the same invariant a locked fold guarantees.
	if l.aggs.Load() {
		l.mu.Lock()
		s.Merge(Snapshot{
			Manufactured: l.manufactured,
			Victims:      l.victims,
			Strategies:   l.strategies,
		})
		l.mu.Unlock()
	}
	// Counter loads after the map fold keep the merged invariant intact:
	// histogram totals trail the counters, never exceed them (a racing add
	// bumps its counter before it can enter the maps).
	s.InvalidReads += l.reads.Load()
	s.InvalidWrites += l.writes.Load()
	s.Denied += l.denied.Load()
}

// Cursor returns a mark of the log's current position. Pair it with Since
// to attribute the events of one request: take a cursor before handling,
// call Since after. Lock-free: this is the per-request serving hot path
// (servers.Base.Attribute brackets every request with a Cursor/Since
// pair), and it must not contend with scrapers.
func (l *EventLog) Cursor() Cursor {
	return Cursor{
		reads:  l.reads.Load(),
		writes: l.writes.Load(),
		denied: l.denied.Load(),
	}
}

// Since returns the events recorded after c was taken. Counters only move
// forward, so as long as the log was not Reset in between the delta is
// exact even if other goroutines observed the log concurrently — the
// events of one request are recorded by the single goroutine driving the
// instance, so the bracketing loads see exactly that request's events.
func (l *EventLog) Since(c Cursor) Delta {
	return Delta{
		InvalidReads:  l.reads.Load() - c.reads,
		InvalidWrites: l.writes.Load() - c.writes,
		Denied:        l.denied.Load() - c.denied,
	}
}

// Recent returns the retained window of events, oldest first.
func (l *EventLog) Recent() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.start == 0 {
		out := make([]Event, len(l.events))
		copy(out, l.events)
		return out
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	out = append(out, l.events[:l.start]...)
	return out
}

// Reset clears counters, histograms, and the retained window.
func (l *EventLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = l.events[:0]
	l.start = 0
	l.reads.Store(0)
	l.writes.Store(0)
	l.denied.Store(0)
	l.manufactured, l.victims, l.strategies = nil, nil, nil
	l.aggs.Store(false)
}

// Summary renders a one-line summary of the log.
func (l *EventLog) Summary() string {
	return fmt.Sprintf("memory errors: %d invalid reads, %d invalid writes, %d denied",
		l.reads.Load(), l.writes.Load(), l.denied.Load())
}

// AddExternal records an event originating outside the accessor (e.g. the
// allocator discarding an invalid free under the failure-oblivious policy).
func (l *EventLog) AddExternal(e Event) { l.add(e) }
