package core

import (
	"strings"
	"sync"
	"testing"
)

// TestEventLogConcurrentScrape hammers the log's write path from one
// goroutine while another scrapes every read path — the serving pattern
// (worker mid-request, stats endpoint scraping) that used to be a data
// race. Run with -race.
func TestEventLogConcurrentScrape(t *testing.T) {
	l := NewEventLog(8)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 5000; i++ {
			l.add(Event{Addr: uint64(i), Manufactured: int64(i % 3), Victim: "buf"})
			l.addDenied(Event{Write: true, Addr: uint64(i)})
		}
	}()
	cur := l.Cursor()
	for scraping := true; scraping; {
		select {
		case <-done:
			scraping = false
		default:
		}
		_ = l.Total()
		_ = l.InvalidReads()
		_ = l.InvalidWrites()
		_ = l.Denied()
		_ = l.Recent()
		_ = l.Snapshot()
		_ = l.Since(cur)
		_ = l.Summary()
	}
	wg.Wait()
	snap := l.Snapshot()
	if snap.Total() != l.Total() {
		t.Errorf("quiescent snapshot total %d != log total %d", snap.Total(), l.Total())
	}
	if snap.InvalidReads == 0 || snap.Denied == 0 {
		t.Errorf("snapshot = %+v, want nonzero reads and denied", snap)
	}
}

// TestEventLogRingWraparound checks oldest-first ordering after the ring
// start has cycled past the limit several times.
func TestEventLogRingWraparound(t *testing.T) {
	for _, n := range []int{4, 5, 9, 12, 13} {
		l := NewEventLog(4)
		for i := 0; i < n; i++ {
			l.add(Event{Addr: uint64(i)})
		}
		got := l.Recent()
		if len(got) != 4 {
			t.Fatalf("n=%d: recent has %d events, want 4", n, len(got))
		}
		for j, e := range got {
			if want := uint64(n - 4 + j); e.Addr != want {
				t.Errorf("n=%d: recent[%d].Addr = %d, want %d", n, j, e.Addr, want)
			}
		}
	}
}

// TestSnapshotAggregates checks the manufactured-value and victim
// histograms, deep-copy semantics, and Merge.
func TestSnapshotAggregates(t *testing.T) {
	l := NewEventLog(0)
	l.add(Event{Manufactured: 1, Victim: "a"})
	l.add(Event{Manufactured: 1})
	l.add(Event{Manufactured: 2})
	l.add(Event{Write: true, Victim: "b"})
	l.addDenied(Event{Victim: "a"})
	// Non-manufacturing reads must not pollute the histogram.
	l.add(Event{Boundless: true})
	l.add(Event{Redirected: true})

	s := l.Snapshot()
	if s.InvalidReads != 5 || s.InvalidWrites != 1 || s.Denied != 1 {
		t.Fatalf("snapshot counters = %+v", s)
	}
	if s.Manufactured[1] != 2 || s.Manufactured[2] != 1 || len(s.Manufactured) != 2 {
		t.Errorf("manufactured = %v", s.Manufactured)
	}
	if s.Victims["a"] != 2 || s.Victims["b"] != 1 {
		t.Errorf("victims = %v", s.Victims)
	}

	// The snapshot must not share map state with the log.
	s.Manufactured[1] = 99
	if l.Snapshot().Manufactured[1] != 2 {
		t.Error("snapshot shares its histogram with the log")
	}

	var agg Snapshot
	agg.Merge(s)
	agg.Merge(l.Snapshot())
	if agg.Manufactured[1] != 99+2 || agg.Victims["a"] != 4 {
		t.Errorf("merge = %+v", agg)
	}
	if agg.Total() != s.Total()+l.Total() {
		t.Errorf("merge total = %d", agg.Total())
	}
}

// TestCursorDelta checks per-request attribution: events recorded after the
// cursor, and only those, appear in the delta.
func TestCursorDelta(t *testing.T) {
	l := NewEventLog(0)
	l.add(Event{})
	cur := l.Cursor()
	if d := l.Since(cur); d.Total() != 0 {
		t.Fatalf("fresh cursor delta = %+v", d)
	}
	l.add(Event{})
	l.add(Event{Write: true})
	l.addDenied(Event{})
	d := l.Since(cur)
	if d.InvalidReads != 1 || d.InvalidWrites != 1 || d.Denied != 1 || d.Total() != 3 {
		t.Errorf("delta = %+v", d)
	}
}

// TestEventStringDenied checks that terminated accesses render as
// "(terminated)" and never claim a manufactured value.
func TestEventStringDenied(t *testing.T) {
	l := NewEventLog(0)
	l.addDenied(Event{Pos: testPos, Addr: 0x10, Size: 2, Unit: "u"})
	s := l.Recent()[0].String()
	if !strings.Contains(s, "invalid read (terminated)") {
		t.Errorf("denied read = %q, want \"(terminated)\"", s)
	}
	if strings.Contains(s, "manufactured") {
		t.Errorf("denied read claims a manufactured value: %q", s)
	}
	l.addDenied(Event{Pos: testPos, Write: true, Addr: 0x10, Size: 2, Unit: "u"})
	s = l.Recent()[1].String()
	if !strings.Contains(s, "invalid write (terminated)") || strings.Contains(s, "discarded") {
		t.Errorf("denied write = %q", s)
	}
}
