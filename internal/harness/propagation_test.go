package harness

import (
	"math/rand"
	"strings"
	"testing"

	"focc/fo"
	"focc/internal/servers"
)

func TestErrorPropagationIsZero(t *testing.T) {
	// Paper §1.2: "localized errors in the computation for one request
	// tend to have little or no effect on the computations for subsequent
	// requests." For all five servers the measured distance must be zero.
	for _, newSrv := range serverMakers() {
		res, err := ErrorPropagation(newSrv, 12)
		if err != nil {
			t.Fatalf("%s: %v", newSrv().Name(), err)
		}
		if res.ErrorsDuringAttack == 0 {
			t.Errorf("%s: attack provoked no memory errors; experiment vacuous", res.Server)
		}
		if res.Distance != 0 {
			t.Errorf("%s: propagation distance = %d (diverged at %v), want 0",
				res.Server, res.Distance, res.Diverged)
		}
	}
}

func TestFormatPropagation(t *testing.T) {
	out := FormatPropagation([]PropagationResult{
		{Server: "mutt", ErrorsDuringAttack: 80, Probes: 12, Distance: 0},
	})
	if !strings.Contains(out, "mutt") || !strings.Contains(out, "80") {
		t.Errorf("out = %q", out)
	}
}

// randRequest builds a random (often malformed) request for a server —
// arbitrary bytes in the argument and payload positions.
func randRequest(rng *rand.Rand, srv servers.Server) servers.Request {
	ops := map[string][]string{
		"pine":     {"index", "read", "compose", "move"},
		"apache":   {"GET"},
		"sendmail": {"helo", "mail", "rcpt", "data", "send", "recv", "wakeup"},
		"mc":       {"open-tgz", "config", "copy", "move", "mkdir", "delete"},
		"mutt":     {"select", "read", "move"},
	}
	randBytes := func(max int) string {
		n := rng.Intn(max)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		// Requests are C strings; embedded NULs just truncate.
		return strings.ReplaceAll(string(b), "\x00", "\x01")
	}
	choices := ops[srv.Name()]
	return servers.Request{
		Op:      choices[rng.Intn(len(choices))],
		Arg:     randBytes(200),
		Payload: randBytes(400),
	}
}

func TestFailureObliviousNeverCrashesOnRandomInput(t *testing.T) {
	// The paper's security claim, as a fuzz property: no input — however
	// malformed — can crash the failure-oblivious version (nor the §5.1
	// variants, nor the §5.2 comparison policy).
	rng := rand.New(rand.NewSource(2004))
	modes := []fo.Mode{fo.FailureOblivious, fo.Boundless, fo.Redirect, fo.TxTerm}
	for _, srv := range allServers() {
		for _, mode := range modes {
			inst, err := srv.New(mode)
			if err != nil {
				t.Fatal(err)
			}
			n := 40
			if testing.Short() {
				n = 10
			}
			for i := 0; i < n; i++ {
				req := randRequest(rng, srv)
				resp := inst.Handle(req)
				if resp.Crashed() {
					t.Fatalf("%s/%v: random request %d (op %q) crashed: %v",
						srv.Name(), mode, i, req.Op, resp.Err)
				}
			}
			if !inst.Alive() {
				t.Errorf("%s/%v: instance died during fuzzing", srv.Name(), mode)
			}
		}
	}
}
