package core

import (
	"fmt"
	"io"

	"focc/internal/cc/token"
)

// Event records one attempt by the program to commit a memory error
// (paper §3: "our compiler can optionally augment the generated code to
// produce a log containing information about the program's attempts to
// commit memory errors").
type Event struct {
	Pos   token.Pos
	Write bool
	Addr  uint64
	Size  int
	Unit  string // provenance data unit name, if any
	// Victim names the unit the access would actually have touched
	// (from the object-table lookup), if any.
	Victim string
	// Manufactured is the value supplied for an invalid read.
	Manufactured int64
	// Boundless marks accesses served by the boundless side store.
	Boundless bool
	// Redirected marks accesses wrapped back into the unit.
	Redirected bool
}

func (e Event) String() string {
	op := "invalid read"
	if e.Write {
		op = "invalid write (discarded)"
	}
	u := e.Unit
	if u == "" {
		u = "<no unit>"
	}
	s := fmt.Sprintf("%s: %s of %d bytes at 0x%x (unit %s)", e.Pos, op, e.Size, e.Addr, u)
	if e.Victim != "" && e.Victim != e.Unit {
		s += fmt.Sprintf(", would have touched %s", e.Victim)
	}
	if !e.Write {
		s += fmt.Sprintf(", manufactured value %d", e.Manufactured)
	}
	if e.Boundless {
		s += " [boundless]"
	}
	if e.Redirected {
		s += " [redirected]"
	}
	return s
}

// EventLog accumulates memory-error events. It keeps exact counters and a
// bounded window of the most recent events. A nil stream means events are
// only counted and buffered.
type EventLog struct {
	limit  int
	events []Event
	start  int // ring start when full

	reads  uint64
	writes uint64
	denied uint64 // bounds-check terminations

	Stream io.Writer // optional live event stream
}

// DefaultLogLimit bounds the retained event window.
const DefaultLogLimit = 1024

// NewEventLog returns a log retaining up to limit recent events
// (DefaultLogLimit if limit <= 0).
func NewEventLog(limit int) *EventLog {
	if limit <= 0 {
		limit = DefaultLogLimit
	}
	return &EventLog{limit: limit}
}

func (l *EventLog) add(e Event) {
	if l == nil {
		return
	}
	if e.Write {
		l.writes++
	} else {
		l.reads++
	}
	l.push(e)
}

// addDenied records an access the BoundsCheck policy rejected fatally.
func (l *EventLog) addDenied(e Event) {
	if l == nil {
		return
	}
	l.denied++
	l.push(e)
}

func (l *EventLog) push(e Event) {
	if l.Stream != nil {
		fmt.Fprintln(l.Stream, e.String())
	}
	if len(l.events) < l.limit {
		l.events = append(l.events, e)
		return
	}
	l.events[l.start] = e
	l.start = (l.start + 1) % l.limit
}

// InvalidReads returns the number of invalid reads continued through.
func (l *EventLog) InvalidReads() uint64 { return l.reads }

// InvalidWrites returns the number of invalid writes discarded (or stored
// boundlessly / redirected).
func (l *EventLog) InvalidWrites() uint64 { return l.writes }

// Denied returns the number of accesses rejected fatally by BoundsCheck.
func (l *EventLog) Denied() uint64 { return l.denied }

// Total returns the total number of memory-error events.
func (l *EventLog) Total() uint64 { return l.reads + l.writes + l.denied }

// Recent returns the retained window of events, oldest first.
func (l *EventLog) Recent() []Event {
	if l.start == 0 {
		out := make([]Event, len(l.events))
		copy(out, l.events)
		return out
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.start:]...)
	out = append(out, l.events[:l.start]...)
	return out
}

// Reset clears counters and the retained window.
func (l *EventLog) Reset() {
	l.events = l.events[:0]
	l.start = 0
	l.reads, l.writes, l.denied = 0, 0, 0
}

// Summary renders a one-line summary of the log.
func (l *EventLog) Summary() string {
	return fmt.Sprintf("memory errors: %d invalid reads, %d invalid writes, %d denied",
		l.reads, l.writes, l.denied)
}

// AddExternal records an event originating outside the accessor (e.g. the
// allocator discarding an invalid free under the failure-oblivious policy).
func (l *EventLog) AddExternal(e Event) { l.add(e) }
