package main

import (
	"testing"
	"time"

	"focc/internal/harness"
)

// The full "all" run is exercised by CI scripts; tests cover each
// experiment selector with small parameters.

func TestExperimentSelectors(t *testing.T) {
	for _, exp := range []string{"fig3", "fig6", "resilience", "variants", "ablation"} {
		if err := run(exp, 2, 20); err != nil {
			t.Errorf("experiment %q: %v", exp, err)
		}
	}
}

func TestSoakExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	if err := run("soak", 2, 20); err != nil {
		t.Errorf("soak: %v", err)
	}
}

func TestLoadtestExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("loadtest")
	}
	cfg := harness.LoadtestConfig{
		Clients:         8,
		PoolSize:        2,
		AttacksPerLegit: 1,
		LegitPerClient:  2,
		Deadline:        5 * time.Second,
	}
	if err := runClock("loadtest", 2, 20, harness.SimClock, cfg); err != nil {
		t.Errorf("loadtest: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run("nope", 2, 10); err == nil {
		t.Error("expected error for unknown experiment")
	}
}
