package libc_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"focc/fo"
)

// run compiles and runs main() under mode, returning result and output.
func run(t *testing.T, src string, mode fo.Mode) (fo.Result, string) {
	t.Helper()
	var out bytes.Buffer
	res, err := fo.Run("t.c", src, mode, fo.MachineConfig{Out: &out})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res, out.String()
}

// expect runs main() under BoundsCheck and asserts its return value.
func expect(t *testing.T, src string, want int64) {
	t.Helper()
	res, out := run(t, src, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeOK {
		t.Fatalf("outcome = %v (%v), output %q", res.Outcome, res.Err, out)
	}
	if res.Value.I != want {
		t.Fatalf("main() = %d, want %d (output %q)", res.Value.I, want, out)
	}
}

func TestMallocFreeRealloc(t *testing.T) {
	expect(t, `
#include <stdlib.h>
#include <string.h>
int main(void) {
	char *p = malloc(10);
	char *q;
	if (p == NULL) return 1;
	strcpy(p, "abc");
	q = realloc(p, 100);
	if (q == NULL) return 2;
	if (strcmp(q, "abc") != 0) return 3;  /* contents preserved */
	free(q);
	q = realloc(NULL, 5);                 /* realloc(NULL) == malloc */
	if (q == NULL) return 4;
	free(q);
	free(NULL);                           /* no-op */
	return 0;
}`, 0)
}

func TestCallocZeroes(t *testing.T) {
	expect(t, `
#include <stdlib.h>
int main(void) {
	int *p = calloc(4, sizeof(int));
	int i, sum = 0;
	for (i = 0; i < 4; i++) sum += p[i];
	free(p);
	return sum;
}`, 0)
}

func TestMemFunctions(t *testing.T) {
	expect(t, `
#include <string.h>
int main(void) {
	char a[16], b[16];
	memset(a, 'x', 16);
	if (a[0] != 'x' || a[15] != 'x') return 1;
	memcpy(b, a, 16);
	if (memcmp(a, b, 16) != 0) return 2;
	b[7] = 'y';
	if (memcmp(a, b, 16) >= 0) return 3; /* 'x' < 'y' */
	if (memcmp(a, b, 7) != 0) return 4;
	memmove(a, a, 16);
	return 0;
}`, 0)
}

func TestStringFamily(t *testing.T) {
	expect(t, `
#include <string.h>
int main(void) {
	char buf[64];
	char *p;
	if (strlen("") != 0) return 1;
	if (strlen("four") != 4) return 2;
	strcpy(buf, "hello");
	strncpy(&buf[5], " world!!", 6);
	buf[11] = '\0';
	if (strcmp(buf, "hello world") != 0) return 3;
	strcpy(buf, "abc");
	strncat(buf, "defgh", 2);
	if (strcmp(buf, "abcde") != 0) return 4;
	if (strncmp("abcdef", "abcxyz", 3) != 0) return 5;
	if (strncmp("abcdef", "abcxyz", 4) >= 0) return 6;
	p = strrchr("a/b/c", '/');
	if (p == NULL || strcmp(p, "/c") != 0) return 7;
	p = strstr("finding a needle here", "needle");
	if (p == NULL || strncmp(p, "needle", 6) != 0) return 8;
	if (strstr("abc", "zzz") != NULL) return 9;
	if (strchr("abc", 'z') != NULL) return 10;
	p = strchr("abc", '\0');
	if (p == NULL) return 11;             /* strchr finds the NUL */
	return 0;
}`, 0)
}

func TestStrdup(t *testing.T) {
	expect(t, `
#include <string.h>
#include <stdlib.h>
int main(void) {
	char *d = strdup("copy me");
	int ok = strcmp(d, "copy me") == 0;
	free(d);
	return ok;
}`, 1)
}

func TestAtoiAbs(t *testing.T) {
	expect(t, `
#include <stdlib.h>
int main(void) {
	if (atoi("123") != 123) return 1;
	if (atoi("  -45x") != -45) return 2;
	if (atoi("+7") != 7) return 3;
	if (atoi("junk") != 0) return 4;
	if (abs(-9) != 9 || abs(4) != 4) return 5;
	if (labs(-10L) != 10) return 6;
	return 0;
}`, 0)
}

func TestCtype(t *testing.T) {
	expect(t, `
#include <ctype.h>
int main(void) {
	if (!isalpha('a') || !isalpha('Z') || isalpha('1')) return 1;
	if (!isdigit('7') || isdigit('x')) return 2;
	if (!isalnum('a') || !isalnum('7') || isalnum('-')) return 3;
	if (!isspace(' ') || !isspace('\t') || !isspace('\n') || isspace('.')) return 4;
	if (!isupper('Q') || isupper('q')) return 5;
	if (!islower('q') || islower('Q')) return 6;
	if (!isprint(' ') || isprint('\n')) return 7;
	if (toupper('a') != 'A' || toupper('A') != 'A' || toupper('1') != '1') return 8;
	if (tolower('A') != 'a' || tolower('a') != 'a') return 9;
	return 0;
}`, 0)
}

func TestPrintfFormats(t *testing.T) {
	res, out := run(t, `
#include <stdio.h>
int main(void) {
	printf("%d|%i|%u|%x|%X|%o|%c|%s|%%|\n", -5, 6, 7U, 255, 255, 8, 'Q', "str");
	printf("[%5d][%-5d][%05d]\n", 42, 42, 42);
	printf("%ld %lu %zu\n", 100000000000L, 3UL, (unsigned long)9);
	printf("%.3d %.2s\n", 7, "abcdef");
	printf("%s\n", (char*)0);
	return 0;
}`, fo.Standard)
	if res.Outcome != fo.OutcomeOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Err)
	}
	want := "-5|6|7|ff|FF|10|Q|str|%|\n" +
		"[   42][42   ][00042]\n" +
		"100000000000 3 9\n" +
		"007 ab\n" +
		"(null)\n"
	if out != want {
		t.Errorf("printf output:\n got %q\nwant %q", out, want)
	}
}

func TestSprintfAndSnprintf(t *testing.T) {
	expect(t, `
#include <stdio.h>
#include <string.h>
int main(void) {
	char buf[64];
	int n = sprintf(buf, "%s=%d", "x", 42);
	if (n != 4) return 1;
	if (strcmp(buf, "x=42") != 0) return 2;
	n = snprintf(buf, 4, "%s", "longer than four");
	if (n != 16) return 3;              /* returns the full length */
	if (strcmp(buf, "lon") != 0) return 4; /* truncated with NUL */
	n = snprintf(buf, sizeof(buf), "ok %d", 5);
	if (n != 4 || strcmp(buf, "ok 5") != 0) return 5;
	return 0;
}`, 0)
}

func TestPutsPutchar(t *testing.T) {
	_, out := run(t, `
#include <stdio.h>
int main(void) {
	puts("line");
	putchar('x');
	putchar('\n');
	return 0;
}`, fo.Standard)
	if out != "line\nx\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSprintfOverflowIsCaught(t *testing.T) {
	src := `
#include <stdio.h>
int main(void) {
	char tiny[4];
	sprintf(tiny, "%s", "way too long for tiny");
	return 0;
}`
	res, _ := run(t, src, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds outcome = %v, want termination", res.Outcome)
	}
	res, _ = run(t, src, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK {
		t.Errorf("oblivious outcome = %v (%v), want ok", res.Outcome, res.Err)
	}
}

func TestStrcpyOverflowPerMode(t *testing.T) {
	src := `
#include <string.h>
#include <stdlib.h>
int main(void) {
	char *a = malloc(4);
	char *b = malloc(64);
	strcpy(b, "this string is much longer than a");
	strcpy(a, b);
	return 0;
}`
	res, _ := run(t, src, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds = %v", res.Outcome)
	}
	res, _ = run(t, src, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK {
		t.Errorf("oblivious = %v (%v)", res.Outcome, res.Err)
	}
	res, _ = run(t, src, fo.Standard)
	if !res.Outcome.Crashed() {
		t.Errorf("standard = %v, want crash (heap corruption)", res.Outcome)
	}
}

func TestInvalidFreePerMode(t *testing.T) {
	src := `
#include <stdlib.h>
int ok = 0;
int main(void) {
	char *p = malloc(8);
	free(p + 2);     /* interior pointer: invalid free */
	ok = 1;
	free(p);
	return ok;
}`
	res, _ := run(t, src, fo.Standard)
	if !res.Outcome.Crashed() {
		t.Errorf("standard invalid free = %v, want crash", res.Outcome)
	}
	res, _ = run(t, src, fo.BoundsCheck)
	if res.Outcome != fo.OutcomeMemErrorTermination {
		t.Errorf("bounds invalid free = %v", res.Outcome)
	}
	res, _ = run(t, src, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 1 {
		t.Errorf("oblivious invalid free = %v value=%d", res.Outcome, res.Value.I)
	}
}

func TestDoubleFreeObliviousContinues(t *testing.T) {
	src := `
#include <stdlib.h>
int main(void) {
	char *p = malloc(8);
	free(p);
	free(p);
	return 7;
}`
	res, _ := run(t, src, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK || res.Value.I != 7 {
		t.Errorf("oblivious double free = %v", res.Outcome)
	}
	res, _ = run(t, src, fo.Standard)
	if !res.Outcome.Crashed() {
		t.Errorf("standard double free = %v, want crash", res.Outcome)
	}
}

func TestAbort(t *testing.T) {
	res, _ := run(t, `
int main(void) { abort(); return 0; }`, fo.Standard)
	if !res.Outcome.Crashed() {
		t.Errorf("abort outcome = %v", res.Outcome)
	}
}

func TestSafeWrappers(t *testing.T) {
	expect(t, `
#include <stdlib.h>
#include <string.h>
int main(void) {
	char *buf = safe_malloc(8);
	strcpy(buf, "hi");
	safe_realloc((void **)&buf, 64);
	if (strcmp(buf, "hi") != 0) return 1;
	safe_free((void **)&buf);
	if (buf != NULL) return 2;   /* safe_free nulls the pointer */
	safe_free((void **)&buf);    /* double safe_free is a no-op */
	return 0;
}`, 0)
}

func TestStrlenThroughManufacturedValues(t *testing.T) {
	// strlen on an unterminated buffer: under FailureOblivious the scan
	// runs off the end and terminates on a manufactured 0.
	src := `
#include <string.h>
#include <stdlib.h>
int main(void) {
	char *p = malloc(4);
	p[0] = 'a'; p[1] = 'b'; p[2] = 'c'; p[3] = 'd'; /* no NUL */
	return (int) strlen(p);
}`
	res, _ := run(t, src, fo.FailureOblivious)
	if res.Outcome != fo.OutcomeOK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Err)
	}
	if res.Value.I < 4 {
		t.Errorf("strlen = %d, want >= 4", res.Value.I)
	}
}

// Differential check of sprintf %d against Go for a sweep of values.
func TestSprintfNumbersMatchGo(t *testing.T) {
	prog, err := fo.Compile("t.c", `
#include <stdio.h>
char buf[64];
int fmt_one(long v) { return sprintf(buf, "%ld", v); }
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.BoundsCheck})
	if err != nil {
		t.Fatal(err)
	}
	vals := []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40), 1<<63 - 1, -(1 << 62)}
	for _, v := range vals {
		res := m.Call("fmt_one", fo.Value{T: nil, I: v})
		if res.Outcome != fo.OutcomeOK {
			t.Fatalf("fmt_one(%d): %v", v, res.Err)
		}
		u, _ := m.GlobalUnit("buf")
		got, _ := m.ReadCString(fo.UnitPointer(u), 64)
		want := fmt.Sprintf("%d", v)
		if got != want {
			t.Errorf("sprintf(%%ld, %d) = %q, want %q", v, got, want)
		}
		if int(res.Value.I) != len(want) {
			t.Errorf("sprintf return = %d, want %d", res.Value.I, len(want))
		}
	}
	_ = strings.Repeat
}

func TestStrtol(t *testing.T) {
	expect(t, `
#include <stdlib.h>
int main(void) {
	char *end;
	if (strtol("123", NULL, 10) != 123) return 1;
	if (strtol("  -42junk", &end, 10) != -42) return 2;
	if (*end != 'j') return 3;
	if (strtol("ff", NULL, 16) != 255) return 4;
	if (strtol("0xff", NULL, 16) != 255) return 5;
	if (strtol("0x1A", NULL, 0) != 26) return 6;
	if (strtol("077", NULL, 0) != 63) return 7;
	if (strtol("101", NULL, 2) != 5) return 8;
	if (strtol("z", NULL, 36) != 35) return 9;
	return 0;
}`, 0)
}

func TestMemchrAndSpans(t *testing.T) {
	expect(t, `
#include <string.h>
int main(void) {
	const char *s = "hello world";
	char *p = memchr(s, 'o', 11);
	if (p == NULL || p - s != 4) return 1;
	if (memchr(s, 'z', 11) != NULL) return 2;
	if (memchr(s, 'd', 5) != NULL) return 3;  /* out of the n range */
	if (strspn("abcde", "abc") != 3) return 4;
	if (strspn("xyz", "abc") != 0) return 5;
	if (strcspn("abcde", "dz") != 3) return 6;
	if (strcspn("abc", "xyz") != 3) return 7;
	return 0;
}`, 0)
}

func TestCaseInsensitiveCompare(t *testing.T) {
	expect(t, `
#include <string.h>
int main(void) {
	if (strcasecmp("Hello", "hELLO") != 0) return 1;
	if (strcasecmp("abc", "abd") >= 0) return 2;
	if (strncasecmp("HelloX", "hELLOY", 5) != 0) return 3;
	if (strncasecmp("aBc", "abD", 3) >= 0) return 4;
	return 0;
}`, 0)
}

func TestBzero(t *testing.T) {
	expect(t, `
#include <string.h>
int main(void) {
	char buf[8];
	int i, sum = 0;
	memset(buf, 'x', sizeof(buf));
	bzero(buf, sizeof(buf));
	for (i = 0; i < 8; i++) sum += buf[i];
	return sum;
}`, 0)
}

func TestRandDeterministic(t *testing.T) {
	expect(t, `
#include <stdlib.h>
int main(void) {
	int a, b;
	srand(7);
	a = rand();
	srand(7);
	b = rand();
	if (a != b) return 1;           /* same seed, same sequence */
	if (a < 0) return 2;            /* non-negative */
	if (rand() == rand()) return 3; /* sequence advances */
	return 0;
}`, 0)
}

func TestIsxdigit(t *testing.T) {
	expect(t, `
#include <ctype.h>
int main(void) {
	if (!isxdigit('0') || !isxdigit('9') || !isxdigit('a') ||
	    !isxdigit('F') || isxdigit('g') || isxdigit(' ')) return 1;
	return 0;
}`, 0)
}

func TestAllocationExhaustionSemantics(t *testing.T) {
	// Real malloc semantics: exhaustion returns NULL; realloc failure
	// leaves the old block valid; strdup propagates NULL.
	expect(t, `
#include <stdlib.h>
#include <string.h>
int main(void) {
	char *keep = malloc(16);
	char *p;
	strcpy(keep, "still here");
	/* Exhaust the heap region. */
	for (;;) {
		p = malloc(32 * 1024 * 1024);
		if (p == NULL)
			break;
	}
	if (realloc(keep, 64 * 1024 * 1024) != NULL) return 1;
	if (strcmp(keep, "still here") != 0) return 2;  /* old block intact */
	if (malloc(32 * 1024 * 1024) != NULL) return 3; /* still exhausted at that size */
	return 0;
}`, 0)
}

// Differential property: the printf engine's %d/%u/%x with widths and
// flags matches Go's fmt for a sweep of values and formats.
func TestPrintfWidthsMatchGo(t *testing.T) {
	prog, err := fo.Compile("t.c", `
#include <stdio.h>
char buf[128];
int fmt_d(long v, const char *f)  { return sprintf(buf, f, v); }
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.BoundsCheck})
	if err != nil {
		t.Fatal(err)
	}
	read := func() string {
		u, _ := m.GlobalUnit("buf")
		s, _ := m.ReadCString(fo.UnitPointer(u), 128)
		return s
	}
	type cs struct{ cFmt, goFmt string }
	formats := []cs{
		{"%d", "%d"}, {"%5d", "%5d"}, {"%-5d", "%-5d"}, {"%05d", "%05d"},
		{"%12d", "%12d"}, {"%012d", "%012d"},
		{"%x", "%x"}, {"%8x", "%8x"}, {"%08x", "%08x"},
	}
	values := []int64{0, 1, -1, 7, -42, 100000, -99999, 1 << 31}
	for _, f := range formats {
		for _, v := range values {
			if strings.Contains(f.cFmt, "x") && v < 0 {
				continue // %x of negative differs (we print 64-bit, C prints 32/64 by length)
			}
			res := m.Call("fmt_d", fo.Value{I: v}, m.NewCString(f.cFmt))
			if res.Outcome != fo.OutcomeOK {
				t.Fatalf("sprintf(%q, %d): %v", f.cFmt, v, res.Err)
			}
			want := fmt.Sprintf(f.goFmt, v)
			if got := read(); got != want {
				t.Errorf("sprintf(%q, %d) = %q, want %q", f.cFmt, v, got, want)
			}
		}
	}
}

// The boundless side store must round-trip arbitrary offsets and payloads
// through C code, not just through the accessor API.
func TestBoundlessRoundTripFromC(t *testing.T) {
	expect2 := func(src string, mode fo.Mode, want int64) {
		t.Helper()
		res, _ := run(t, src, mode)
		if res.Outcome != fo.OutcomeOK || res.Value.I != want {
			t.Errorf("%v: got %v/%d, want %d (%v)", mode, res.Outcome, res.Value.I, want, res.Err)
		}
	}
	src := `
#include <stdlib.h>
int main(void) {
	char *p = malloc(3);
	int i, ok = 1;
	for (i = 0; i < 40; i++)
		p[i] = (char)(i * 3);
	for (i = 0; i < 40; i++)
		if (p[i] != (char)(i * 3))
			ok = 0;
	return ok;
}`
	expect2(src, fo.Boundless, 1)
}
