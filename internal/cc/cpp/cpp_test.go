package cpp

import (
	"strings"
	"testing"

	"focc/internal/cc/token"
)

func expand(t *testing.T, src string, opt Options) string {
	t.Helper()
	lines, errs := Preprocess("t.c", src, opt)
	if len(errs) > 0 {
		t.Fatalf("preprocess: %v", errs[0])
	}
	var sb strings.Builder
	for _, ln := range lines {
		sb.WriteString(ln.Text)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func ppErr(t *testing.T, src string, opt Options) []error {
	t.Helper()
	_, errs := Preprocess("t.c", src, opt)
	return errs
}

func TestObjectMacro(t *testing.T) {
	out := expand(t, "#define N 10\nint a[N];\n", Options{})
	if !strings.Contains(out, "int a[10];") {
		t.Errorf("out = %q", out)
	}
}

func TestMacroWordBoundaries(t *testing.T) {
	out := expand(t, "#define N 10\nint NN = N; int xN;\n", Options{})
	if !strings.Contains(out, "int NN = 10; int xN;") {
		t.Errorf("out = %q", out)
	}
}

func TestMacroNotExpandedInStrings(t *testing.T) {
	out := expand(t, "#define N 10\nchar *s = \"N is N\"; char c = 'N';\n", Options{})
	if !strings.Contains(out, `"N is N"`) || !strings.Contains(out, "'N'") {
		t.Errorf("out = %q", out)
	}
}

func TestFunctionMacro(t *testing.T) {
	out := expand(t, "#define MAX(a, b) ((a) > (b) ? (a) : (b))\nx = MAX(1, y+2);\n", Options{})
	if !strings.Contains(out, "x = ((1) > (y+2) ? (1) : (y+2));") {
		t.Errorf("out = %q", out)
	}
}

func TestFunctionMacroNestedParens(t *testing.T) {
	out := expand(t, "#define ID(x) x\ny = ID(f(a, b));\n", Options{})
	if !strings.Contains(out, "y = f(a, b);") {
		t.Errorf("out = %q", out)
	}
}

func TestFunctionMacroWithoutParensIsNotExpanded(t *testing.T) {
	out := expand(t, "#define F(x) x\nint F;\n", Options{})
	if !strings.Contains(out, "int F;") {
		t.Errorf("out = %q", out)
	}
}

func TestNestedMacroExpansion(t *testing.T) {
	out := expand(t, "#define A B\n#define B 3\nx = A;\n", Options{})
	if !strings.Contains(out, "x = 3;") {
		t.Errorf("out = %q", out)
	}
}

func TestRecursiveMacroDoesNotLoop(t *testing.T) {
	out := expand(t, "#define X X\ny = X;\n", Options{})
	if !strings.Contains(out, "y = X;") {
		t.Errorf("out = %q", out)
	}
}

func TestUndef(t *testing.T) {
	out := expand(t, "#define N 1\n#undef N\nx = N;\n", Options{})
	if !strings.Contains(out, "x = N;") {
		t.Errorf("out = %q", out)
	}
}

func TestIfdef(t *testing.T) {
	src := "#define YES 1\n#ifdef YES\na\n#else\nb\n#endif\n#ifdef NO\nc\n#else\nd\n#endif\n"
	out := expand(t, src, Options{})
	if !strings.Contains(out, "a") || strings.Contains(out, "b") ||
		strings.Contains(out, "c") || !strings.Contains(out, "d") {
		t.Errorf("out = %q", out)
	}
}

func TestIfndefGuardIdiom(t *testing.T) {
	hdr := "#ifndef H\n#define H\nint decl;\n#endif\n"
	src := "#include \"h.h\"\n#include \"h.h\"\n"
	out := expand(t, src, Options{Includes: map[string]string{"h.h": hdr}})
	if strings.Count(out, "int decl;") != 1 {
		t.Errorf("guard failed: %q", out)
	}
}

func TestIfExpression(t *testing.T) {
	cases := map[string]bool{
		"#if 1\nx\n#endif\n":                           true,
		"#if 0\nx\n#endif\n":                           false,
		"#define A 1\n#if defined(A)\nx\n#endif\n":     true,
		"#if defined(NOPE)\nx\n#endif\n":               false,
		"#if !defined(NOPE)\nx\n#endif\n":              true,
		"#define A 1\n#if defined A && 1\nx\n#endif\n": true,
		"#if 0 || 1\nx\n#endif\n":                      true,
		"#define V 3\n#if V\nx\n#endif\n":              true,
		"#if UNDEFINED\nx\n#endif\n":                   false,
		"#if (1) && (0)\nx\n#endif\n":                  false,
	}
	for src, want := range cases {
		out := expand(t, src, Options{})
		got := strings.Contains(out, "x")
		if got != want {
			t.Errorf("%q: emitted=%v, want %v", src, got, want)
		}
	}
}

func TestNestedConditionals(t *testing.T) {
	src := "#if 1\n#if 0\na\n#else\nb\n#endif\n#else\n#if 1\nc\n#endif\n#endif\n"
	out := expand(t, src, Options{})
	if strings.Contains(out, "a") || !strings.Contains(out, "b") || strings.Contains(out, "c") {
		t.Errorf("out = %q", out)
	}
}

func TestInactiveBranchSkipsDirectives(t *testing.T) {
	src := "#if 0\n#define BAD 1\n#error should not fire\n#endif\nx = BAD;\n"
	out := expand(t, src, Options{})
	if !strings.Contains(out, "x = BAD;") {
		t.Errorf("out = %q", out)
	}
}

func TestIncludePositions(t *testing.T) {
	lines, errs := Preprocess("main.c", "#include <h.h>\nafter;\n",
		Options{Includes: map[string]string{"h.h": "included;\n"}})
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	var foundInc, foundAfter bool
	for _, ln := range lines {
		if strings.Contains(ln.Text, "included") {
			foundInc = true
			if ln.File != "h.h" || ln.N != 1 {
				t.Errorf("included line pos = %s:%d", ln.File, ln.N)
			}
		}
		if strings.Contains(ln.Text, "after") {
			foundAfter = true
			if ln.File != "main.c" || ln.N != 2 {
				t.Errorf("after line pos = %s:%d", ln.File, ln.N)
			}
		}
	}
	if !foundInc || !foundAfter {
		t.Error("missing expected lines")
	}
}

func TestIncludeDepthLimit(t *testing.T) {
	errs := ppErr(t, "#include \"self.h\"\n",
		Options{Includes: map[string]string{"self.h": "#include \"self.h\"\n"}})
	if len(errs) == 0 {
		t.Error("expected include-depth error")
	}
}

func TestMissingInclude(t *testing.T) {
	if errs := ppErr(t, "#include \"nope.h\"\n", Options{}); len(errs) == 0 {
		t.Error("expected missing-include error")
	}
}

func TestErrorDirective(t *testing.T) {
	errs := ppErr(t, "#error custom message\n", Options{})
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "custom message") {
		t.Errorf("errs = %v", errs)
	}
}

func TestLineContinuation(t *testing.T) {
	out := expand(t, "#define LONG 1 + \\\n 2\nx = LONG;\n", Options{})
	if !strings.Contains(out, "x = 1 +  2;") {
		t.Errorf("out = %q", out)
	}
}

func TestCommentStripping(t *testing.T) {
	out := expand(t, "a /* hidden */ b // tail\nc\n", Options{})
	if strings.Contains(out, "hidden") || strings.Contains(out, "tail") {
		t.Errorf("out = %q", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") || !strings.Contains(out, "c") {
		t.Errorf("out = %q", out)
	}
}

func TestCommentInsideStringKept(t *testing.T) {
	out := expand(t, "char *s = \"/* not a comment */\";\n", Options{})
	if !strings.Contains(out, "/* not a comment */") {
		t.Errorf("out = %q", out)
	}
}

func TestPredefines(t *testing.T) {
	out := expand(t, "x = FOO;\n", Options{Defines: map[string]string{"FOO": "7"}})
	if !strings.Contains(out, "x = 7;") {
		t.Errorf("out = %q", out)
	}
}

func TestWrongArgCount(t *testing.T) {
	errs := ppErr(t, "#define F(a, b) a+b\nx = F(1);\n", Options{})
	if len(errs) == 0 {
		t.Error("expected arity error")
	}
}

func TestUnterminatedIf(t *testing.T) {
	if errs := ppErr(t, "#if 1\nx\n", Options{}); len(errs) == 0 {
		t.Error("expected unterminated-#if error")
	}
}

func TestElseWithoutIf(t *testing.T) {
	if errs := ppErr(t, "#else\n", Options{}); len(errs) == 0 {
		t.Error("expected #else error")
	}
}

func TestLineNumbersPreserved(t *testing.T) {
	lines, errs := Preprocess("t.c", "#define A 1\n\nx = A;\n", Options{})
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	for _, ln := range lines {
		if strings.Contains(ln.Text, "x =") && ln.N != 3 {
			t.Errorf("x line number = %d, want 3", ln.N)
		}
	}
	_ = token.Pos{}
}

func TestIfComparisonAndArithmetic(t *testing.T) {
	cases := map[string]bool{
		"#define V 3\n#if V == 3\nx\n#endif\n":                  true,
		"#define V 3\n#if V != 3\nx\n#endif\n":                  false,
		"#define V 3\n#if V >= 2 && V < 10\nx\n#endif\n":        true,
		"#if 2 + 2 == 4\nx\n#endif\n":                           true,
		"#if 3 * 3 > 8\nx\n#endif\n":                            true,
		"#if 10 / 3 == 3\nx\n#endif\n":                          true,
		"#if 10 % 3 == 1\nx\n#endif\n":                          true,
		"#if 5 - 7 < 0\nx\n#endif\n":                            true,
		"#if 1 <= 0\nx\n#endif\n":                               false,
		"#define A 2\n#define B 3\n#if A * B == 6\nx\n#endif\n": true,
	}
	for src, want := range cases {
		out := expand(t, src, Options{})
		got := strings.Contains(out, "x")
		if got != want {
			t.Errorf("%q: emitted=%v, want %v", src, got, want)
		}
	}
}

func TestIfDivisionByZeroIsError(t *testing.T) {
	if errs := ppErr(t, "#if 1 / 0\nx\n#endif\n", Options{}); len(errs) == 0 {
		t.Error("expected division-by-zero error")
	}
}
