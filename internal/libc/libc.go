// Package libc implements the C standard-library subset the focc runtime
// provides to interpreted programs. Every byte a libc routine touches on
// behalf of the program goes through the machine's active access policy, so
// a strcat that overruns its destination is detected (and discarded,
// stored boundlessly, redirected, or fatal) exactly as if the loop had been
// written in C — this is how the paper's instrumented libc wrappers behave.
package libc

import (
	"bytes"
	"fmt"

	"focc/internal/cc/token"
	"focc/internal/cc/types"
	"focc/internal/core"
	"focc/internal/interp"
	"focc/internal/mem"
)

// maxScan bounds unterminated-string scans inside libc so a lost NUL cannot
// spin forever (the interpreter's step budget covers C-level loops; this
// covers host-side loops).
const maxScan = 1 << 20

var (
	tVoid    = types.VoidType
	tChar    = types.CharType
	tInt     = types.IntType
	tUInt    = types.UIntType
	tLong    = types.LongType
	tULong   = types.ULongType
	tCharP   = types.PointerTo(types.CharType)
	tVoidP   = types.PointerTo(types.VoidType)
	tVoidPP  = types.PointerTo(types.PointerTo(types.VoidType))
	tCharPP  = types.PointerTo(types.PointerTo(types.CharType))
	tConstCP = tCharP
)

func proto(ret *types.Type, variadic bool, params ...*types.Type) *types.Type {
	fi := &types.FuncInfo{Ret: ret, Variadic: variadic}
	for i, p := range params {
		fi.Params = append(fi.Params, types.Param{Name: fmt.Sprintf("a%d", i), Type: p})
	}
	return &types.Type{Kind: types.Func, Fn: fi}
}

// Prototypes returns the C type of every provided builtin, keyed by name.
// The semantic analyzer uses this to type-check calls.
func Prototypes() map[string]*types.Type {
	return map[string]*types.Type{
		"malloc":  proto(tVoidP, false, tULong),
		"calloc":  proto(tVoidP, false, tULong, tULong),
		"realloc": proto(tVoidP, false, tVoidP, tULong),
		"free":    proto(tVoid, false, tVoidP),

		"memcpy":  proto(tVoidP, false, tVoidP, tVoidP, tULong),
		"memmove": proto(tVoidP, false, tVoidP, tVoidP, tULong),
		"memset":  proto(tVoidP, false, tVoidP, tInt, tULong),
		"memcmp":  proto(tInt, false, tVoidP, tVoidP, tULong),

		"strlen":  proto(tULong, false, tConstCP),
		"strcpy":  proto(tCharP, false, tCharP, tConstCP),
		"strncpy": proto(tCharP, false, tCharP, tConstCP, tULong),
		"strcat":  proto(tCharP, false, tCharP, tConstCP),
		"strncat": proto(tCharP, false, tCharP, tConstCP, tULong),
		"strcmp":  proto(tInt, false, tConstCP, tConstCP),
		"strncmp": proto(tInt, false, tConstCP, tConstCP, tULong),
		"strchr":  proto(tCharP, false, tConstCP, tInt),
		"strrchr": proto(tCharP, false, tConstCP, tInt),
		"strstr":  proto(tCharP, false, tConstCP, tConstCP),
		"strdup":  proto(tCharP, false, tConstCP),

		"atoi":   proto(tInt, false, tConstCP),
		"atol":   proto(tLong, false, tConstCP),
		"abs":    proto(tInt, false, tInt),
		"labs":   proto(tLong, false, tLong),
		"strtol": proto(tLong, false, tConstCP, tCharPP, tInt),
		"rand":   proto(tInt, false),
		"srand":  proto(tVoid, false, tUInt),

		"memchr":      proto(tVoidP, false, tVoidP, tInt, tULong),
		"strcasecmp":  proto(tInt, false, tConstCP, tConstCP),
		"strncasecmp": proto(tInt, false, tConstCP, tConstCP, tULong),
		"strspn":      proto(tULong, false, tConstCP, tConstCP),
		"strcspn":     proto(tULong, false, tConstCP, tConstCP),
		"bzero":       proto(tVoid, false, tVoidP, tULong),

		"isalpha":  proto(tInt, false, tInt),
		"isxdigit": proto(tInt, false, tInt),
		"isdigit":  proto(tInt, false, tInt),
		"isalnum":  proto(tInt, false, tInt),
		"isspace":  proto(tInt, false, tInt),
		"isupper":  proto(tInt, false, tInt),
		"islower":  proto(tInt, false, tInt),
		"isprint":  proto(tInt, false, tInt),
		"toupper":  proto(tInt, false, tInt),
		"tolower":  proto(tInt, false, tInt),

		"printf":   proto(tInt, true, tConstCP),
		"sprintf":  proto(tInt, true, tCharP, tConstCP),
		"snprintf": proto(tInt, true, tCharP, tULong, tConstCP),
		"puts":     proto(tInt, false, tConstCP),
		"putchar":  proto(tInt, false, tInt),

		"exit":  proto(tVoid, false, tInt),
		"abort": proto(tVoid, false),

		// Mutt's allocation wrappers (paper Figure 1).
		"safe_malloc":  proto(tVoidP, false, tULong),
		"safe_realloc": proto(tVoid, false, tVoidPP, tULong),
		"safe_free":    proto(tVoid, false, tVoidPP),
	}
}

// Builtins returns the host implementations, keyed by name.
func Builtins() map[string]interp.BuiltinFunc {
	return map[string]interp.BuiltinFunc{
		"malloc":  biMalloc,
		"calloc":  biCalloc,
		"realloc": biRealloc,
		"free":    biFree,

		"memcpy":  biMemcpy,
		"memmove": biMemcpy, // simulated memory copies via host buffer: always move-safe
		"memset":  biMemset,
		"memcmp":  biMemcmp,

		"strlen":  biStrlen,
		"strcpy":  biStrcpy,
		"strncpy": biStrncpy,
		"strcat":  biStrcat,
		"strncat": biStrncat,
		"strcmp":  biStrcmp,
		"strncmp": biStrncmp,
		"strchr":  biStrchr,
		"strrchr": biStrrchr,
		"strstr":  biStrstr,
		"strdup":  biStrdup,

		"atoi":   biAtoi,
		"atol":   biAtoi,
		"abs":    biAbs,
		"labs":   biAbs,
		"strtol": biStrtol,
		"rand":   biRand,
		"srand":  biSrand,

		"memchr":      biMemchr,
		"strcasecmp":  biStrcasecmp,
		"strncasecmp": biStrncasecmp,
		"strspn":      biStrspn,
		"strcspn":     biStrcspn,
		"bzero":       biBzero,

		"isalpha": ctype(func(c byte) bool {
			return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		}),
		"isdigit": ctype(func(c byte) bool { return c >= '0' && c <= '9' }),
		"isalnum": ctype(func(c byte) bool {
			return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		}),
		"isspace": ctype(func(c byte) bool {
			return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
		}),
		"isupper": ctype(func(c byte) bool { return c >= 'A' && c <= 'Z' }),
		"islower": ctype(func(c byte) bool { return c >= 'a' && c <= 'z' }),
		"isprint": ctype(func(c byte) bool { return c >= 0x20 && c < 0x7f }),
		"isxdigit": ctype(func(c byte) bool {
			return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
		}),
		"toupper": biToupper,
		"tolower": biTolower,

		"printf":   biPrintf,
		"sprintf":  biSprintf,
		"snprintf": biSnprintf,
		"puts":     biPuts,
		"putchar":  biPutchar,

		"exit":  biExit,
		"abort": biAbort,

		"safe_malloc":  biSafeMalloc,
		"safe_realloc": biSafeRealloc,
		"safe_free":    biSafeFree,
	}
}

// --- access helpers ---

func off(p core.Pointer, i int64) core.Pointer {
	return core.Pointer{Addr: p.Addr + uint64(i), Prov: p.Prov}
}

// inBoundsSpan returns how many of n bytes starting at p are inside the
// live provenance unit.
func inBoundsSpan(p core.Pointer, n int64) int64 {
	u := p.Prov
	if u == nil || u.Dead || p.Addr < u.Base || p.Addr >= u.End() {
		return 0
	}
	avail := int64(u.End() - p.Addr)
	if avail > n {
		return avail - (avail - n) // min(avail, n)
	}
	return avail
}

// loadN reads n bytes at p: the in-bounds prefix as one checked bulk access,
// the out-of-bounds tail byte-by-byte so each byte gets its own
// continuation-code treatment (manufactured values, logging).
func loadN(m *interp.Machine, p core.Pointer, n int64, pos token.Pos) []byte {
	buf := make([]byte, n)
	k := inBoundsSpan(p, n)
	if k > 0 {
		m.LoadBytes(p, buf[:k], pos)
	}
	for i := k; i < n; i++ {
		m.LoadBytes(off(p, i), buf[i:i+1], pos)
	}
	return buf
}

// storeN writes data at p with the same in-bounds/out-of-bounds split.
func storeN(m *interp.Machine, p core.Pointer, data []byte, pos token.Pos) {
	n := int64(len(data))
	k := inBoundsSpan(p, n)
	if ro := p.Prov; ro != nil && ro.ReadOnly {
		k = 0
	}
	if k > 0 {
		m.StoreBytes(p, data[:k], pos)
	}
	for i := k; i < n; i++ {
		m.StoreBytes(off(p, i), data[i:i+1], pos)
	}
}

// span returns a direct view of the in-bounds bytes at p (nil when p lies
// outside its live provenance unit). For in-bounds bytes every policy's
// checked load returns exactly u.Data[off] with no side effects — faults,
// manufactured values, and event logging happen only out of bounds — so the
// scan fast paths below may read the span natively, provided they charge
// the identical per-byte simulated cycles via m.ChargeByteRun (the cost
// model is unchanged; only the host-level work is batched).
func span(p core.Pointer) []byte {
	u := p.Prov
	if u == nil || u.Dead || p.Addr < u.Base || p.Addr >= u.End() {
		return nil
	}
	return u.Data[p.Addr-u.Base:]
}

// copyCStringFast copies src (including its NUL) to dst when the whole
// string and the destination range are in bounds, replicating the per-byte
// load/store loop's state changes (forward copy, shadow clear) and cycle
// charges. Reports whether the fast path applied.
func copyCStringFast(m *interp.Machine, dst, src core.Pointer, pos token.Pos) bool {
	ss := span(src)
	if len(ss) == 0 {
		return false
	}
	j := int64(bytes.IndexByte(ss, 0))
	if j < 0 || j >= maxScan {
		return false
	}
	dd := span(dst)
	if int64(len(dd)) < j+1 || dst.Prov.ReadOnly {
		return false
	}
	// Like every store path that writes unit data directly, snapshot the
	// destination into the rewind checkpoint's undo log (no-op unless a
	// checkpoint is active) before mutating.
	m.AddressSpace().NoteMutation(dst.Prov)
	// Forward byte copy, like the checked loop (C leaves overlap undefined;
	// we preserve the loop's exact behavior rather than memmove semantics).
	for i := int64(0); i <= j; i++ {
		dd[i] = ss[i]
	}
	dst.Prov.ClearShadowRange(dst.Addr-dst.Prov.Base, uint64(j+1))
	m.ChargeByteRun(2 * (j + 1)) // one load + one store per byte
	return true
}

func loadByte(m *interp.Machine, p core.Pointer, pos token.Pos) byte {
	return m.LoadByte(p, pos)
}

func storeByte(m *interp.Machine, p core.Pointer, b byte, pos token.Pos) {
	m.StoreByte(p, b, pos)
}

func charP(p core.Pointer) interp.Value {
	return interp.Value{T: tCharP, Ptr: p}
}

func voidP(p core.Pointer) interp.Value {
	return interp.Value{T: tVoidP, Ptr: p}
}

// cstrlen finds the NUL terminator via checked loads. The in-bounds span is
// scanned natively; only the out-of-bounds tail (if the string is
// unterminated within its unit) goes byte-by-byte through the policy.
func cstrlen(m *interp.Machine, p core.Pointer, pos token.Pos) int64 {
	var i int64
	if s := span(p); len(s) > 0 {
		if j := int64(bytes.IndexByte(s, 0)); j >= 0 {
			if j >= maxScan {
				m.ChargeByteRun(maxScan)
				return maxScan
			}
			m.ChargeByteRun(j + 1)
			return j
		}
		i = int64(len(s))
		if i >= maxScan {
			m.ChargeByteRun(maxScan)
			return maxScan
		}
		m.ChargeByteRun(i)
	}
	for ; i < maxScan; i++ {
		if loadByte(m, off(p, i), pos) == 0 {
			return i
		}
	}
	return maxScan
}

// --- allocation ---

// guestMalloc allocates for C code with real malloc semantics: exhaustion
// returns NULL (the program can handle it); allocator-detected corruption
// aborts, as glibc does.
func guestMalloc(m *interp.Machine, size uint64) interp.Value {
	u, fault := m.AddressSpace().Malloc(size)
	if fault != nil {
		if fault.Kind == mem.FaultOOM {
			return voidP(core.Pointer{})
		}
		m.Fail(fault)
	}
	return voidP(core.Pointer{Addr: u.Base, Prov: u})
}

func biMalloc(m *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	return guestMalloc(m, uint64(args[0].I))
}

func biCalloc(m *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	n := uint64(args[0].I) * uint64(args[1].I)
	return guestMalloc(m, n) // focc heap blocks are zeroed
}

// heapBlockOf validates that v points at the base of a live heap block.
func heapBlockOf(m *interp.Machine, v interp.Value) *mem.Unit {
	u := m.FindUnit(v.Ptr.Addr)
	if u == nil || u.Kind != mem.KindHeap || u.Dead || u.Base != v.Ptr.Addr {
		return nil
	}
	return u
}

func biRealloc(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	p := args[0]
	size := uint64(args[1].I)
	if p.Ptr.Addr == 0 {
		return m.Malloc(size)
	}
	old := heapBlockOf(m, p)
	if old == nil {
		return freeInvalid(m, pos, p, "realloc")
	}
	nv := guestMalloc(m, size)
	if nv.Ptr.Addr == 0 {
		return nv // out of memory: the old block stays valid
	}
	n := old.Size
	if n > size {
		n = size
	}
	copy(nv.Ptr.Prov.Data[:n], old.Data[:n])
	doFree(m, pos, p)
	return nv
}

// freeInvalid handles free/realloc of an invalid pointer according to the
// active policy: Standard and BoundsCheck treat it as fatal; the rewind
// policy treats it as a detected memory error and rolls the request back;
// the failure-oblivious family discards the operation and logs it.
func freeInvalid(m *interp.Machine, pos token.Pos, p interp.Value, what string) interp.Value {
	switch m.Mode() {
	case core.Standard:
		m.Fail(&mem.Fault{Kind: mem.FaultBadFree, Addr: p.Ptr.Addr, Msg: what})
	case core.BoundsCheck:
		m.Fail(&core.MemError{Pos: pos, Write: true, Addr: p.Ptr.Addr,
			Size: 0, Unit: "", Cause: what + " of invalid pointer"})
	case core.ModeRewind:
		m.Fail(&core.RewindAbort{Pos: pos, Write: true, Addr: p.Ptr.Addr})
	default:
		// Discard the invalid operation; continue executing.
		m.NoteInvalidFree(pos, p.Ptr)
	}
	return voidP(core.Pointer{})
}

func doFree(m *interp.Machine, pos token.Pos, p interp.Value) {
	if f := m.AddressSpace().Free(p.Ptr.Addr); f != nil {
		freeInvalid(m, pos, p, "free")
	}
}

func biFree(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	p := args[0]
	if p.Ptr.Addr == 0 {
		return interp.Value{T: tVoid}
	}
	if heapBlockOf(m, p) == nil {
		return freeInvalid(m, pos, p, "free")
	}
	doFree(m, pos, p)
	return interp.Value{T: tVoid}
}

// --- mem* ---

func biMemcpy(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	dst, src := args[0], args[1]
	n := args[2].I
	if n > 0 {
		buf := loadN(m, src.Ptr, n, pos)
		storeN(m, dst.Ptr, buf, pos)
	}
	return voidP(dst.Ptr)
}

func biMemset(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	dst := args[0]
	c := byte(args[1].I)
	n := args[2].I
	if n > 0 {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = c
		}
		storeN(m, dst.Ptr, buf, pos)
	}
	return voidP(dst.Ptr)
}

func biMemcmp(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	n := args[2].I
	a := loadN(m, args[0].Ptr, n, pos)
	b := loadN(m, args[1].Ptr, n, pos)
	for i := int64(0); i < n; i++ {
		if a[i] != b[i] {
			return interp.Int(int64(a[i]) - int64(b[i]))
		}
	}
	return interp.Int(0)
}

// --- str* ---

func biStrlen(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	return interp.Value{T: tULong, I: cstrlen(m, args[0].Ptr, pos)}
}

func biStrcpy(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	dst, src := args[0].Ptr, args[1].Ptr
	if copyCStringFast(m, dst, src, pos) {
		return charP(dst)
	}
	for i := int64(0); i < maxScan; i++ {
		b := loadByte(m, off(src, i), pos)
		storeByte(m, off(dst, i), b, pos)
		if b == 0 {
			break
		}
	}
	return charP(dst)
}

func biStrncpy(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	dst, src := args[0].Ptr, args[1].Ptr
	n := args[2].I
	var i int64
	for i = 0; i < n; i++ {
		b := loadByte(m, off(src, i), pos)
		storeByte(m, off(dst, i), b, pos)
		if b == 0 {
			i++
			break
		}
	}
	for ; i < n; i++ {
		storeByte(m, off(dst, i), 0, pos)
	}
	return charP(dst)
}

func biStrcat(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	dst, src := args[0].Ptr, args[1].Ptr
	dlen := cstrlen(m, dst, pos)
	if copyCStringFast(m, off(dst, dlen), src, pos) {
		return charP(dst)
	}
	for i := int64(0); i < maxScan; i++ {
		b := loadByte(m, off(src, i), pos)
		storeByte(m, off(dst, dlen+i), b, pos)
		if b == 0 {
			break
		}
	}
	return charP(dst)
}

func biStrncat(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	dst, src := args[0].Ptr, args[1].Ptr
	n := args[2].I
	dlen := cstrlen(m, dst, pos)
	var i int64
	for i = 0; i < n; i++ {
		b := loadByte(m, off(src, i), pos)
		if b == 0 {
			break
		}
		storeByte(m, off(dst, dlen+i), b, pos)
	}
	storeByte(m, off(dst, dlen+i), 0, pos)
	return charP(dst)
}

func biStrcmp(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	a, b := args[0].Ptr, args[1].Ptr
	var i int64
	// Fast path: walk the common in-bounds prefix natively, charging two
	// byte accesses per step exactly like the checked loop below.
	sa, sb := span(a), span(b)
	k := int64(min(len(sa), len(sb)))
	if k > maxScan {
		k = maxScan
	}
	for ; i < k; i++ {
		ca, cb := sa[i], sb[i]
		if ca != cb {
			m.ChargeByteRun(2 * (i + 1))
			return interp.Int(int64(ca) - int64(cb))
		}
		if ca == 0 {
			m.ChargeByteRun(2 * (i + 1))
			return interp.Int(0)
		}
	}
	m.ChargeByteRun(2 * k)
	for ; i < maxScan; i++ {
		ca := loadByte(m, off(a, i), pos)
		cb := loadByte(m, off(b, i), pos)
		if ca != cb {
			return interp.Int(int64(ca) - int64(cb))
		}
		if ca == 0 {
			return interp.Int(0)
		}
	}
	return interp.Int(0)
}

func biStrncmp(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	a, b := args[0].Ptr, args[1].Ptr
	n := args[2].I
	var i int64
	sa, sb := span(a), span(b)
	k := int64(min(len(sa), len(sb)))
	if k > n {
		k = n
	}
	for ; i < k; i++ {
		ca, cb := sa[i], sb[i]
		if ca != cb {
			m.ChargeByteRun(2 * (i + 1))
			return interp.Int(int64(ca) - int64(cb))
		}
		if ca == 0 {
			m.ChargeByteRun(2 * (i + 1))
			return interp.Int(0)
		}
	}
	m.ChargeByteRun(2 * k)
	for ; i < n; i++ {
		ca := loadByte(m, off(a, i), pos)
		cb := loadByte(m, off(b, i), pos)
		if ca != cb {
			return interp.Int(int64(ca) - int64(cb))
		}
		if ca == 0 {
			return interp.Int(0)
		}
	}
	return interp.Int(0)
}

func biStrchr(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	p := args[0].Ptr
	c := byte(args[1].I)
	var i int64
	if s := span(p); len(s) > 0 {
		k := int64(len(s))
		if k > maxScan {
			k = maxScan
		}
		for ; i < k; i++ {
			b := s[i]
			if b == c {
				m.ChargeByteRun(i + 1)
				return charP(off(p, i))
			}
			if b == 0 {
				m.ChargeByteRun(i + 1)
				return charP(core.Pointer{})
			}
		}
		m.ChargeByteRun(k)
	}
	for ; i < maxScan; i++ {
		b := loadByte(m, off(p, i), pos)
		if b == c {
			return charP(off(p, i))
		}
		if b == 0 {
			break
		}
	}
	return charP(core.Pointer{})
}

func biStrrchr(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	p := args[0].Ptr
	c := byte(args[1].I)
	found := core.Pointer{}
	for i := int64(0); i < maxScan; i++ {
		b := loadByte(m, off(p, i), pos)
		if b == c {
			found = off(p, i)
		}
		if b == 0 {
			break
		}
	}
	return charP(found)
}

func biStrstr(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	hay, needle := args[0].Ptr, args[1].Ptr
	nlen := cstrlen(m, needle, pos)
	if nlen == 0 {
		return charP(hay)
	}
	nb := loadN(m, needle, nlen, pos)
	hlen := cstrlen(m, hay, pos)
	if hs := span(hay); int64(len(hs)) >= hlen {
		// The whole haystack is in bounds: run the same quadratic scan
		// natively, counting loads so the cycle charge is identical.
		var loads int64
		for i := int64(0); i+nlen <= hlen; i++ {
			match := true
			for j := int64(0); j < nlen; j++ {
				loads++
				if hs[i+j] != nb[j] {
					match = false
					break
				}
			}
			if match {
				m.ChargeByteRun(loads)
				return charP(off(hay, i))
			}
		}
		m.ChargeByteRun(loads)
		return charP(core.Pointer{})
	}
	for i := int64(0); i+nlen <= hlen; i++ {
		match := true
		for j := int64(0); j < nlen; j++ {
			if loadByte(m, off(hay, i+j), pos) != nb[j] {
				match = false
				break
			}
		}
		if match {
			return charP(off(hay, i))
		}
	}
	return charP(core.Pointer{})
}

func biStrdup(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	src := args[0].Ptr
	n := cstrlen(m, src, pos)
	nv := guestMalloc(m, uint64(n)+1)
	if nv.Ptr.Addr == 0 {
		return charP(core.Pointer{})
	}
	b := loadN(m, src, n, pos)
	copy(nv.Ptr.Prov.Data, b)
	nv.Ptr.Prov.Data[n] = 0
	return charP(nv.Ptr)
}

// --- conversions / math ---

func biAtoi(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	p := args[0].Ptr
	i := int64(0)
	for isSpaceByte(loadByte(m, off(p, i), pos)) {
		i++
	}
	neg := false
	switch loadByte(m, off(p, i), pos) {
	case '-':
		neg = true
		i++
	case '+':
		i++
	}
	var v int64
	for {
		c := loadByte(m, off(p, i), pos)
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int64(c-'0')
		i++
	}
	if neg {
		v = -v
	}
	return interp.Long(v)
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

func biAbs(_ *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	v := args[0].I
	if v < 0 {
		v = -v
	}
	return interp.Long(v)
}

// --- ctype ---

func ctype(pred func(byte) bool) interp.BuiltinFunc {
	return func(_ *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
		c := args[0].I
		if c < 0 || c > 255 {
			return interp.Int(0)
		}
		if pred(byte(c)) {
			return interp.Int(1)
		}
		return interp.Int(0)
	}
}

func biToupper(_ *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	c := args[0].I
	if c >= 'a' && c <= 'z' {
		c -= 32
	}
	return interp.Int(c)
}

func biTolower(_ *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	c := args[0].I
	if c >= 'A' && c <= 'Z' {
		c += 32
	}
	return interp.Int(c)
}

// --- stdio ---

func biPrintf(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	out := formatC(m, pos, args[0].Ptr, args[1:])
	n, _ := m.Out().Write(out)
	return interp.Int(int64(n))
}

func biSprintf(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	out := formatC(m, pos, args[1].Ptr, args[2:])
	out = append(out, 0)
	storeN(m, args[0].Ptr, out, pos)
	return interp.Int(int64(len(out) - 1))
}

func biSnprintf(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	limit := args[1].I
	out := formatC(m, pos, args[2].Ptr, args[3:])
	full := int64(len(out))
	if limit > 0 {
		if full >= limit {
			out = out[:limit-1]
		}
		out = append(out, 0)
		storeN(m, args[0].Ptr, out, pos)
	}
	return interp.Int(full)
}

func biPuts(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	n := cstrlen(m, args[0].Ptr, pos)
	b := loadN(m, args[0].Ptr, n, pos)
	b = append(b, '\n')
	m.Out().Write(b)
	return interp.Int(n + 1)
}

func biPutchar(m *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	m.Out().Write([]byte{byte(args[0].I)})
	return interp.Int(args[0].I)
}

// --- process ---

func biExit(m *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	m.Exit(int(args[0].I))
	return interp.Value{T: tVoid}
}

func biAbort(m *interp.Machine, pos token.Pos, _ []interp.Value) interp.Value {
	m.Fail(&mem.Fault{Kind: mem.FaultSegv, Addr: 0, Msg: "abort() called"})
	return interp.Value{T: tVoid}
}

// --- Mutt's wrappers (paper §2 / Figure 1) ---

func biSafeMalloc(m *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	// Mutt's safe_malloc exits on exhaustion instead of returning NULL.
	v := guestMalloc(m, uint64(args[0].I))
	if v.Ptr.Addr == 0 {
		m.Exit(1)
	}
	return v
}

func biSafeRealloc(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	pp := args[0].Ptr
	cur := m.LoadPointer(pp, pos)
	nv := biRealloc(m, pos, []interp.Value{voidP(cur), args[1]})
	m.StorePointer(pp, nv.Ptr, pos)
	return interp.Value{T: tVoid}
}

func biSafeFree(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	pp := args[0].Ptr
	cur := m.LoadPointer(pp, pos)
	if cur.Addr != 0 {
		biFree(m, pos, []interp.Value{voidP(cur)})
	}
	m.StorePointer(pp, core.Pointer{}, pos)
	return interp.Value{T: tVoid}
}

// --- additional string/stdlib routines ---

func biMemchr(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	p := args[0].Ptr
	c := byte(args[1].I)
	n := args[2].I
	var i int64
	if s := span(p); len(s) > 0 && n > 0 {
		k := int64(len(s))
		if k > n {
			k = n
		}
		if j := int64(bytes.IndexByte(s[:k], c)); j >= 0 {
			m.ChargeByteRun(j + 1)
			return voidP(off(p, j))
		}
		m.ChargeByteRun(k)
		i = k
	}
	for ; i < n; i++ {
		if loadByte(m, off(p, i), pos) == c {
			return voidP(off(p, i))
		}
	}
	return voidP(core.Pointer{})
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 32
	}
	return c
}

func biStrcasecmp(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	a, b := args[0].Ptr, args[1].Ptr
	var i int64
	sa, sb := span(a), span(b)
	k := int64(min(len(sa), len(sb)))
	if k > maxScan {
		k = maxScan
	}
	for ; i < k; i++ {
		ca, cb := lowerByte(sa[i]), lowerByte(sb[i])
		if ca != cb {
			m.ChargeByteRun(2 * (i + 1))
			return interp.Int(int64(ca) - int64(cb))
		}
		if ca == 0 {
			m.ChargeByteRun(2 * (i + 1))
			return interp.Int(0)
		}
	}
	m.ChargeByteRun(2 * k)
	for ; i < maxScan; i++ {
		ca := lowerByte(loadByte(m, off(a, i), pos))
		cb := lowerByte(loadByte(m, off(b, i), pos))
		if ca != cb {
			return interp.Int(int64(ca) - int64(cb))
		}
		if ca == 0 {
			return interp.Int(0)
		}
	}
	return interp.Int(0)
}

func biStrncasecmp(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	a, b := args[0].Ptr, args[1].Ptr
	n := args[2].I
	var i int64
	sa, sb := span(a), span(b)
	k := int64(min(len(sa), len(sb)))
	if k > n {
		k = n
	}
	for ; i < k; i++ {
		ca, cb := lowerByte(sa[i]), lowerByte(sb[i])
		if ca != cb {
			m.ChargeByteRun(2 * (i + 1))
			return interp.Int(int64(ca) - int64(cb))
		}
		if ca == 0 {
			m.ChargeByteRun(2 * (i + 1))
			return interp.Int(0)
		}
	}
	m.ChargeByteRun(2 * k)
	for ; i < n; i++ {
		ca := lowerByte(loadByte(m, off(a, i), pos))
		cb := lowerByte(loadByte(m, off(b, i), pos))
		if ca != cb {
			return interp.Int(int64(ca) - int64(cb))
		}
		if ca == 0 {
			return interp.Int(0)
		}
	}
	return interp.Int(0)
}

// spanSet reads the accept/reject set for strspn/strcspn.
func spanSet(m *interp.Machine, p core.Pointer, pos token.Pos) map[byte]bool {
	set := map[byte]bool{}
	n := cstrlen(m, p, pos)
	for _, b := range loadN(m, p, n, pos) {
		set[b] = true
	}
	return set
}

func biStrspn(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	set := spanSet(m, args[1].Ptr, pos)
	p := args[0].Ptr
	var i int64
	if s := span(p); len(s) > 0 && bytes.IndexByte(s, 0) >= 0 {
		// A NUL inside the span guarantees the scan terminates in bounds.
		for ; i < maxScan; i++ {
			b := s[i]
			if b == 0 || !set[b] {
				break
			}
		}
		m.ChargeByteRun(minI64(i+1, maxScan))
		return interp.Value{T: tULong, I: i}
	}
	for i = 0; i < maxScan; i++ {
		b := loadByte(m, off(p, i), pos)
		if b == 0 || !set[b] {
			break
		}
	}
	return interp.Value{T: tULong, I: i}
}

func biStrcspn(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	set := spanSet(m, args[1].Ptr, pos)
	p := args[0].Ptr
	var i int64
	if s := span(p); len(s) > 0 && bytes.IndexByte(s, 0) >= 0 {
		for ; i < maxScan; i++ {
			b := s[i]
			if b == 0 || set[b] {
				break
			}
		}
		m.ChargeByteRun(minI64(i+1, maxScan))
		return interp.Value{T: tULong, I: i}
	}
	for i = 0; i < maxScan; i++ {
		b := loadByte(m, off(p, i), pos)
		if b == 0 || set[b] {
			break
		}
	}
	return interp.Value{T: tULong, I: i}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func biBzero(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	n := args[1].I
	if n > 0 {
		storeN(m, args[0].Ptr, make([]byte, n), pos)
	}
	return interp.Value{T: tVoid}
}

// biStrtol implements strtol with bases 0 and 2..36 and an optional end
// pointer.
func biStrtol(m *interp.Machine, pos token.Pos, args []interp.Value) interp.Value {
	p := args[0].Ptr
	base := args[2].I
	i := int64(0)
	for isSpaceByte(loadByte(m, off(p, i), pos)) {
		i++
	}
	neg := false
	switch loadByte(m, off(p, i), pos) {
	case '-':
		neg = true
		i++
	case '+':
		i++
	}
	if base == 0 {
		if loadByte(m, off(p, i), pos) == '0' {
			nxt := loadByte(m, off(p, i+1), pos)
			if nxt == 'x' || nxt == 'X' {
				base = 16
				i += 2
			} else {
				base = 8
				i++
			}
		} else {
			base = 10
		}
	} else if base == 16 {
		if loadByte(m, off(p, i), pos) == '0' {
			nxt := loadByte(m, off(p, i+1), pos)
			if nxt == 'x' || nxt == 'X' {
				i += 2
			}
		}
	}
	digit := func(c byte) int64 {
		switch {
		case c >= '0' && c <= '9':
			return int64(c - '0')
		case c >= 'a' && c <= 'z':
			return int64(c-'a') + 10
		case c >= 'A' && c <= 'Z':
			return int64(c-'A') + 10
		}
		return -1
	}
	var v int64
	for {
		d := digit(loadByte(m, off(p, i), pos))
		if d < 0 || d >= base {
			break
		}
		v = v*base + d
		i++
	}
	if neg {
		v = -v
	}
	if args[1].Ptr.Addr != 0 {
		m.StorePointer(args[1].Ptr, off(p, i), pos)
	}
	return interp.Long(v)
}

// Deterministic libc rand(): a linear congruential generator whose state
// lives in the machine's host-state bag (per "process", like real libc).
func biSrand(m *interp.Machine, _ token.Pos, args []interp.Value) interp.Value {
	m.HostState()["libc.rand"] = uint32(args[0].I)
	return interp.Value{T: tVoid}
}

func biRand(m *interp.Machine, _ token.Pos, _ []interp.Value) interp.Value {
	seed, _ := m.HostState()["libc.rand"].(uint32)
	if seed == 0 {
		seed = 1
	}
	seed = seed*1103515245 + 12345
	m.HostState()["libc.rand"] = seed
	return interp.Int(int64(seed>>1) & 0x7fffffff)
}
