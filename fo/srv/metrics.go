package srv

import (
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"focc/fo"
	"focc/internal/serve"
)

// Re-exported observability types; see internal/serve for details.
type (
	// Metrics is the full observability snapshot of an Engine: counters,
	// aggregated memory-error telemetry, and the live latency histogram.
	Metrics = serve.Metrics
	// LatencySnapshot is the engine's log-bucketed latency histogram with
	// estimated p50/p95/p99.
	LatencySnapshot = serve.LatencySnapshot
	// LatencyBucket is one bucket of a LatencySnapshot.
	LatencyBucket = serve.LatencyBucket
	// LogSnapshot is the aggregated memory-error counters and histograms
	// (invalid reads/writes, denied, manufactured values, victim units).
	LogSnapshot = fo.LogSnapshot
	// LogDelta is the per-request memory-error attribution carried on
	// Response.MemErrors.
	LogDelta = fo.LogDelta
)

// MetricsHandler returns an http.Handler that renders e's Metrics in the
// Prometheus text exposition format — mount it at /metrics:
//
//	mux.Handle("/metrics", srv.MetricsHandler(eng))
//
// Every scrape takes a fresh snapshot; the engine keeps serving while it is
// read (the memory-error aggregation scrapes live instance logs, which is
// safe because fo.EventLog is concurrency-safe).
func MetricsHandler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, e.Metrics())
	})
}

// ExpvarPublish registers the engine under name in the process-wide expvar
// registry, so its full Metrics snapshot appears as JSON at /debug/vars.
// Like expvar.Publish, it panics if name is already registered — publish
// each engine once at startup.
func ExpvarPublish(name string, e *Engine) {
	expvar.Publish(name, expvar.Func(func() any { return e.Metrics() }))
}

func writePrometheus(w http.ResponseWriter, m Metrics) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("fo_requests_served_total", "Responses delivered by workers (any outcome).", m.Served)
	counter("fo_instance_crashes_total", "Requests that killed their instance.", m.Crashes)
	counter("fo_instance_restarts_total", "Replacement instances created by the supervisor.", m.Restarts)
	counter("fo_request_timeouts_total", "Deadline-exceeded requests.", m.Timeouts)
	counter("fo_requests_rewound_total", "Requests rolled back by the rewind policy.", m.Rewound)
	counter("fo_requests_rejected_total", "Queue-full admission rejections.", m.Rejected)
	counter("fo_breaker_trips_total", "Restart-storm circuit-breaker activations.", m.BreakerTrips)

	me := m.MemErrors
	fmt.Fprintf(w, "# HELP fo_memory_errors_total Memory-error events across all instances, by kind (paper §3 log).\n")
	fmt.Fprintf(w, "# TYPE fo_memory_errors_total counter\n")
	fmt.Fprintf(w, "fo_memory_errors_total{kind=\"invalid_read\"} %d\n", me.InvalidReads)
	fmt.Fprintf(w, "fo_memory_errors_total{kind=\"invalid_write\"} %d\n", me.InvalidWrites)
	fmt.Fprintf(w, "fo_memory_errors_total{kind=\"denied\"} %d\n", me.Denied)

	if len(me.Manufactured) > 0 {
		vals := make([]int64, 0, len(me.Manufactured))
		for v := range me.Manufactured {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		fmt.Fprintf(w, "# HELP fo_manufactured_values_total Values manufactured for invalid reads, by value.\n")
		fmt.Fprintf(w, "# TYPE fo_manufactured_values_total counter\n")
		for _, v := range vals {
			fmt.Fprintf(w, "fo_manufactured_values_total{value=\"%d\"} %d\n", v, me.Manufactured[v])
		}
	}
	if len(me.Strategies) > 0 {
		names := make([]string, 0, len(me.Strategies))
		for s := range me.Strategies {
			names = append(names, s)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP fo_manufactured_by_strategy_total Values manufactured for invalid reads, by producing strategy (fo-context mode).\n")
		fmt.Fprintf(w, "# TYPE fo_manufactured_by_strategy_total counter\n")
		for _, s := range names {
			fmt.Fprintf(w, "fo_manufactured_by_strategy_total{strategy=\"%s\"} %d\n", escapeLabel(s), me.Strategies[s])
		}
	}
	if len(me.Victims) > 0 {
		units := make([]string, 0, len(me.Victims))
		for u := range me.Victims {
			units = append(units, u)
		}
		sort.Strings(units)
		fmt.Fprintf(w, "# HELP fo_memory_error_victims_total Memory-error events by would-be victim data unit.\n")
		fmt.Fprintf(w, "# TYPE fo_memory_error_victims_total counter\n")
		for _, u := range units {
			fmt.Fprintf(w, "fo_memory_error_victims_total{unit=\"%s\"} %d\n", escapeLabel(u), me.Victims[u])
		}
	}

	lat := m.Latency
	fmt.Fprintf(w, "# HELP fo_request_latency_seconds Latency of executed requests (log-bucketed).\n")
	fmt.Fprintf(w, "# TYPE fo_request_latency_seconds histogram\n")
	var cum uint64
	for _, b := range lat.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "fo_request_latency_seconds_bucket{le=\"%s\"} %d\n",
			formatSeconds(b.UpperBound.Seconds()), cum)
	}
	fmt.Fprintf(w, "fo_request_latency_seconds_bucket{le=\"+Inf\"} %d\n", lat.Count)
	fmt.Fprintf(w, "fo_request_latency_seconds_sum %s\n", formatSeconds(lat.Sum.Seconds()))
	fmt.Fprintf(w, "fo_request_latency_seconds_count %d\n", lat.Count)
}

// formatSeconds renders a float without exponent noise for round values.
func formatSeconds(s float64) string {
	return strconv.FormatFloat(s, 'g', -1, 64)
}

// escapeLabel escapes a Prometheus label value (backslash, quote, newline).
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
