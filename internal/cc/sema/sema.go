// Package sema implements semantic analysis for the focc C dialect: symbol
// resolution, type checking with the usual arithmetic conversions, constant
// folding (sizeof, case labels, global initializers), stack frame layout,
// switch-case resolution, and goto-label validation. It annotates the AST
// in place and produces a Program the interpreter executes.
package sema

import (
	"fmt"

	"focc/internal/cc/ast"
	"focc/internal/cc/token"
	"focc/internal/cc/types"
)

// Error is a semantic error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Program is an analyzed translation unit, ready for execution.
type Program struct {
	File    *ast.File
	Funcs   []*ast.FuncDecl // function definitions, in source order
	FuncMap map[string]*ast.FuncDecl
	Globals []*ast.VarDecl // global variables, in source order
	// Literals is the interned string literal table; StringLit.LitIndex
	// indexes it. Entries include the trailing NUL.
	Literals []string
	// LoadSites counts the canonical load-site ids assigned by
	// assignLoadSites; node LoadSite fields range over [0, LoadSites).
	LoadSites int
}

// Analyzer performs semantic analysis.
type Analyzer struct {
	errs     []error
	prog     *Program
	scopes   []map[string]*ast.Symbol
	litIdx   map[string]int
	builtins map[string]*types.Type // libc prototypes (Kind == Func)

	// current function state
	fn        *ast.FuncDecl
	frameOff  uint64
	loopDepth int
	swDepth   int
	labels    map[string]bool
	gotos     []*ast.Goto
}

// Analyze checks file and returns the executable Program. builtins maps
// host-provided (libc) function names to their function types.
func Analyze(file *ast.File, builtins map[string]*types.Type) (*Program, []error) {
	a := &Analyzer{
		prog: &Program{
			File:    file,
			FuncMap: map[string]*ast.FuncDecl{},
		},
		litIdx:   map[string]int{},
		builtins: builtins,
	}
	a.pushScope()
	a.declareEnums(file)
	a.collectTopLevel(file)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			a.checkFunc(fd)
		}
	}
	if len(a.errs) > 0 {
		return a.prog, a.errs
	}
	assignLoadSites(a.prog)
	return a.prog, nil
}

func (a *Analyzer) errorf(pos token.Pos, format string, args ...any) {
	a.errs = append(a.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (a *Analyzer) pushScope() {
	a.scopes = append(a.scopes, map[string]*ast.Symbol{})
}

func (a *Analyzer) popScope() { a.scopes = a.scopes[:len(a.scopes)-1] }

func (a *Analyzer) declare(sym *ast.Symbol) {
	top := a.scopes[len(a.scopes)-1]
	if _, exists := top[sym.Name]; exists {
		a.errorf(sym.Pos, "redeclaration of %q", sym.Name)
	}
	top[sym.Name] = sym
}

func (a *Analyzer) lookup(name string) *ast.Symbol {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		if s, ok := a.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (a *Analyzer) declareEnums(file *ast.File) {
	for name, val := range file.EnumConsts {
		a.declare(&ast.Symbol{
			Name: name, Type: types.IntType,
			Storage: ast.StorageEnum, EnumVal: val,
		})
	}
}

func (a *Analyzer) collectTopLevel(file *ast.File) {
	for _, d := range file.Decls {
		switch decl := d.(type) {
		case *ast.VarDecl:
			if decl.T.Kind == types.Void {
				a.errorf(decl.Pos(), "variable %q has void type", decl.Name)
				continue
			}
			if decl.T.IsArray() && decl.T.Len < 0 {
				decl.T = a.completeArrayFromInit(decl)
			}
			sym := &ast.Symbol{
				Name: decl.Name, Type: decl.T,
				Storage: ast.StorageGlobal, Pos: decl.Pos(),
				GlobalIdx: len(a.prog.Globals),
			}
			decl.Sym = sym
			a.declare(sym)
			a.prog.Globals = append(a.prog.Globals, decl)
			if decl.Init != nil {
				a.checkGlobalInit(decl)
			}
		case *ast.FuncDecl:
			existing := a.lookup(decl.Name)
			if existing != nil {
				if existing.Storage != ast.StorageFunc {
					a.errorf(decl.Pos(), "%q redeclared as a function", decl.Name)
					continue
				}
				decl.Sym = existing
				if decl.Body != nil {
					if existing.FuncIdx >= 0 {
						a.errorf(decl.Pos(), "function %q redefined", decl.Name)
						continue
					}
					existing.FuncIdx = len(a.prog.Funcs)
					existing.Type = decl.T
					a.prog.Funcs = append(a.prog.Funcs, decl)
					a.prog.FuncMap[decl.Name] = decl
				}
				continue
			}
			sym := &ast.Symbol{
				Name: decl.Name, Type: decl.T,
				Storage: ast.StorageFunc, Pos: decl.Pos(), FuncIdx: -1,
			}
			decl.Sym = sym
			a.declare(sym)
			if decl.Body != nil {
				sym.FuncIdx = len(a.prog.Funcs)
				a.prog.Funcs = append(a.prog.Funcs, decl)
				a.prog.FuncMap[decl.Name] = decl
			}
		}
	}
}

// completeArrayFromInit infers the length of `T x[] = ...` from its
// initializer.
func (a *Analyzer) completeArrayFromInit(decl *ast.VarDecl) *types.Type {
	switch init := decl.Init.(type) {
	case *ast.InitList:
		return types.ArrayOf(decl.T.Elem, len(init.Elems))
	case *ast.StringLit:
		if decl.T.Elem.Size() == 1 {
			return types.ArrayOf(decl.T.Elem, len(init.Val)+1)
		}
	}
	a.errorf(decl.Pos(), "cannot infer length of array %q", decl.Name)
	return types.ArrayOf(decl.T.Elem, 0)
}

// internLit interns a string literal and annotates the node.
func (a *Analyzer) internLit(s *ast.StringLit) {
	key := s.Val + "\x00"
	idx, ok := a.litIdx[key]
	if !ok {
		idx = len(a.prog.Literals)
		a.litIdx[key] = idx
		a.prog.Literals = append(a.prog.Literals, key)
	}
	s.LitIndex = idx
	s.SetType(types.ArrayOf(types.CharType, len(s.Val)+1))
}

// checkGlobalInit validates that a global initializer is constant: folded
// integers, string literals, or init lists thereof.
func (a *Analyzer) checkGlobalInit(decl *ast.VarDecl) {
	decl.Init = a.checkInitializer(decl.Init, decl.T, true)
}

// checkInitializer type-checks an initializer against the declared type.
// constant restricts to compile-time constants (global scope).
func (a *Analyzer) checkInitializer(init ast.Expr, t *types.Type, constant bool) ast.Expr {
	switch iv := init.(type) {
	case *ast.InitList:
		switch t.Kind {
		case types.Array:
			if t.Len >= 0 && len(iv.Elems) > t.Len {
				a.errorf(iv.Pos(), "too many initializers for %s", t)
			}
			for i := range iv.Elems {
				iv.Elems[i] = a.checkInitializer(iv.Elems[i], t.Elem, constant)
			}
		case types.Struct:
			if len(iv.Elems) > len(t.Rec.Fields) {
				a.errorf(iv.Pos(), "too many initializers for %s", t)
			}
			for i := range iv.Elems {
				if i < len(t.Rec.Fields) {
					iv.Elems[i] = a.checkInitializer(iv.Elems[i], t.Rec.Fields[i].Type, constant)
				}
			}
		default:
			// Scalar in braces: { 0 }.
			if len(iv.Elems) != 1 {
				a.errorf(iv.Pos(), "scalar initializer with %d elements", len(iv.Elems))
			} else {
				iv.Elems[0] = a.checkInitializer(iv.Elems[0], t, constant)
			}
		}
		iv.SetType(t)
		return iv
	case *ast.StringLit:
		a.internLit(iv)
		if t.Kind == types.Array && t.Elem.Size() == 1 {
			if t.Len >= 0 && len(iv.Val)+1 > t.Len+1 {
				a.errorf(iv.Pos(), "string literal does not fit in %s", t)
			}
			return iv
		}
		if t.IsPointer() {
			return iv
		}
		a.errorf(iv.Pos(), "string literal initializing %s", t)
		return iv
	default:
		e := a.checkExpr(init)
		if constant {
			if v, ok := a.evalConst(e); ok {
				lit := &ast.IntLit{Val: v}
				lit.P = e.Pos()
				lit.SetType(t)
				return lit
			}
			if _, isStr := e.(*ast.StringLit); !isStr {
				a.errorf(e.Pos(), "global initializer must be a constant expression")
			}
		}
		return e
	}
}

// --- Function bodies ---

func (a *Analyzer) checkFunc(fd *ast.FuncDecl) {
	a.fn = fd
	a.frameOff = 0
	a.labels = map[string]bool{}
	a.gotos = nil
	a.loopDepth, a.swDepth = 0, 0
	a.pushScope()

	for _, p := range fd.T.Fn.Params {
		if p.Name == "" {
			a.errorf(fd.Pos(), "function %q parameter missing a name", fd.Name)
			continue
		}
		sym := a.newFrameSym(p.Name, p.Type, ast.StorageParam, fd.Pos())
		fd.Params = append(fd.Params, sym)
	}
	a.collectLabels(fd.Body)
	a.checkBlock(fd.Body)
	a.popScope()

	for _, g := range a.gotos {
		if !a.labels[g.Label] {
			a.errorf(g.Pos(), "goto undefined label %q", g.Label)
		}
	}
	fd.Labels = a.labels
	fd.FrameSize = a.frameOff
	a.fn = nil
}

func (a *Analyzer) newFrameSym(name string, t *types.Type, st ast.StorageClass, pos token.Pos) *ast.Symbol {
	align := t.Align()
	a.frameOff = (a.frameOff + align - 1) / align * align
	sym := &ast.Symbol{
		Name: name, Type: t, Storage: st, Pos: pos, FrameOff: a.frameOff,
	}
	size := t.Size()
	if size == 0 {
		size = 1
	}
	a.frameOff += size
	a.declare(sym)
	a.fn.Locals = append(a.fn.Locals, sym)
	return sym
}

// collectLabels records every label name in the function (labels have
// function scope in C, so goto can jump forward).
func (a *Analyzer) collectLabels(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		for i, st := range n.Stmts {
			// Record the top-level label index table the interpreter uses
			// for goto dispatch (chained `a: b: stmt` labels all resolve to
			// the same statement index, like the runtime scan they replace).
			l, ok := st.(*ast.Labeled)
			for ok {
				if n.LabelIdx == nil {
					n.LabelIdx = map[string]int{}
				}
				if _, dup := n.LabelIdx[l.Name]; !dup {
					n.LabelIdx[l.Name] = i
				}
				l, ok = l.Stmt.(*ast.Labeled)
			}
			a.collectLabels(st)
		}
	case *ast.Labeled:
		if a.labels[n.Name] {
			a.errorf(n.Pos(), "duplicate label %q", n.Name)
		}
		a.labels[n.Name] = true
		a.collectLabels(n.Stmt)
	case *ast.If:
		a.collectLabels(n.Then)
		if n.Else != nil {
			a.collectLabels(n.Else)
		}
	case *ast.While:
		a.collectLabels(n.Body)
	case *ast.DoWhile:
		a.collectLabels(n.Body)
	case *ast.For:
		a.collectLabels(n.Body)
	case *ast.Switch:
		a.collectLabels(n.Body)
	}
}

func (a *Analyzer) checkBlock(b *ast.Block) {
	a.pushScope()
	for _, s := range b.Stmts {
		a.checkStmt(s)
	}
	a.popScope()
}

func (a *Analyzer) checkStmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Block:
		a.checkBlock(n)
	case *ast.Empty:
	case *ast.ExprStmt:
		n.X = a.checkExpr(n.X)
	case *ast.DeclStmt:
		for _, vd := range n.Decls {
			a.checkLocalDecl(vd)
		}
	case *ast.If:
		n.Cond = a.checkCond(n.Cond)
		a.checkStmt(n.Then)
		if n.Else != nil {
			a.checkStmt(n.Else)
		}
	case *ast.While:
		n.Cond = a.checkCond(n.Cond)
		a.loopDepth++
		a.checkStmt(n.Body)
		a.loopDepth--
	case *ast.DoWhile:
		a.loopDepth++
		a.checkStmt(n.Body)
		a.loopDepth--
		n.Cond = a.checkCond(n.Cond)
	case *ast.For:
		a.pushScope()
		if n.Init != nil {
			a.checkStmt(n.Init)
		}
		if n.Cond != nil {
			n.Cond = a.checkCond(n.Cond)
		}
		if n.Post != nil {
			n.Post = a.checkExpr(n.Post)
		}
		a.loopDepth++
		a.checkStmt(n.Body)
		a.loopDepth--
		a.popScope()
	case *ast.Switch:
		n.Cond = a.checkExpr(n.Cond)
		if !n.Cond.Type().Decay().IsInteger() {
			a.errorf(n.Cond.Pos(), "switch condition must be an integer, have %s", n.Cond.Type())
		}
		a.swDepth++
		a.resolveSwitch(n)
		a.pushScope()
		for _, st := range n.Body.Stmts {
			if _, isCase := st.(*ast.CaseLabel); isCase {
				continue // resolved by resolveSwitch
			}
			a.checkStmt(st)
		}
		a.popScope()
		a.swDepth--
	case *ast.CaseLabel:
		a.errorf(n.Pos(), "case/default label outside the top level of a switch body")
	case *ast.Break:
		if a.loopDepth == 0 && a.swDepth == 0 {
			a.errorf(n.Pos(), "break outside loop or switch")
		}
	case *ast.Continue:
		if a.loopDepth == 0 {
			a.errorf(n.Pos(), "continue outside loop")
		}
	case *ast.Return:
		ret := a.fn.T.Fn.Ret
		if n.X != nil {
			n.X = a.checkExpr(n.X)
			if ret.IsVoid() {
				a.errorf(n.Pos(), "return with a value in void function %q", a.fn.Name)
			}
		}
	case *ast.Goto:
		a.gotos = append(a.gotos, n)
	case *ast.Labeled:
		a.checkStmt(n.Stmt)
	default:
		a.errorf(s.Pos(), "unsupported statement %T", s)
	}
}

// resolveSwitch folds case labels at the top level of the switch body.
func (a *Analyzer) resolveSwitch(sw *ast.Switch) {
	seen := map[int64]bool{}
	for i, st := range sw.Body.Stmts {
		cl, ok := st.(*ast.CaseLabel)
		if !ok {
			continue
		}
		if cl.IsDefault {
			if sw.DefaultIdx >= 0 {
				a.errorf(cl.Pos(), "duplicate default label")
			}
			sw.DefaultIdx = i
			continue
		}
		cl.Val = a.checkExpr(cl.Val)
		v, okc := a.evalConst(cl.Val)
		if !okc {
			a.errorf(cl.Pos(), "case label must be a constant expression")
			continue
		}
		if seen[v] {
			a.errorf(cl.Pos(), "duplicate case value %d", v)
		}
		seen[v] = true
		cl.FoldedVal = v
		sw.Cases = append(sw.Cases, ast.SwitchCase{Val: v, Idx: i})
		if sw.CaseIdx == nil {
			sw.CaseIdx = map[int64]int{}
		}
		sw.CaseIdx[v] = i
	}
}

func (a *Analyzer) checkLocalDecl(vd *ast.VarDecl) {
	if vd.T.Kind == types.Void {
		a.errorf(vd.Pos(), "variable %q has void type", vd.Name)
		return
	}
	if vd.T.IsArray() && vd.T.Len < 0 {
		vd.T = a.completeArrayFromInit(vd)
	}
	if vd.T.Kind == types.Struct && !vd.T.Rec.Complete {
		a.errorf(vd.Pos(), "variable %q has incomplete struct type %s", vd.Name, vd.T)
	}
	sym := a.newFrameSym(vd.Name, vd.T, ast.StorageLocal, vd.Pos())
	vd.Sym = sym
	if vd.Init != nil {
		vd.Init = a.checkInitializer(vd.Init, vd.T, false)
	}
}

// checkCond checks an expression used as a condition.
func (a *Analyzer) checkCond(e ast.Expr) ast.Expr {
	e = a.checkExpr(e)
	if t := e.Type(); t != nil && !t.Decay().IsScalar() {
		a.errorf(e.Pos(), "condition must be scalar, have %s", t)
	}
	return e
}

// --- Expressions ---

// errType marks expressions whose type could not be determined; downstream
// checks go quiet on it.
var errType = &types.Type{Kind: types.Invalid}

func (a *Analyzer) checkExpr(e ast.Expr) ast.Expr {
	switch n := e.(type) {
	case *ast.IntLit:
		if n.Type() == nil {
			if n.Val > 0x7fffffff || n.Val < -0x80000000 {
				n.SetType(types.LongType)
			} else {
				n.SetType(types.IntType)
			}
		}
		return n
	case *ast.StringLit:
		a.internLit(n)
		return n
	case *ast.Ident:
		sym := a.lookup(n.Name)
		if sym == nil {
			a.errorf(n.Pos(), "undeclared identifier %q", n.Name)
			n.SetType(errType)
			return n
		}
		n.Sym = sym
		if sym.Storage == ast.StorageEnum {
			lit := &ast.IntLit{Val: sym.EnumVal}
			lit.P = n.Pos()
			lit.SetType(types.IntType)
			return lit
		}
		n.SetType(sym.Type)
		return n
	case *ast.Unary:
		return a.checkUnary(n)
	case *ast.Postfix:
		n.X = a.checkExpr(n.X)
		a.requireLvalue(n.X)
		t := n.X.Type()
		if !t.IsInteger() && !t.IsPointer() {
			a.errorf(n.Pos(), "invalid operand %s to %s", t, n.Op)
		}
		n.SetType(t)
		return n
	case *ast.Binary:
		return a.checkBinary(n)
	case *ast.Assign:
		n.LHS = a.checkExpr(n.LHS)
		n.RHS = a.checkExpr(n.RHS)
		a.requireLvalue(n.LHS)
		lt := n.LHS.Type()
		if lt.IsArray() {
			a.errorf(n.Pos(), "cannot assign to an array")
		}
		if lt.Kind == types.Struct {
			if n.Op != token.Assign {
				a.errorf(n.Pos(), "compound assignment on struct")
			} else if !types.Same(lt, n.RHS.Type()) {
				a.errorf(n.Pos(), "assigning %s to %s", n.RHS.Type(), lt)
			}
		}
		n.SetType(lt)
		return n
	case *ast.Cond:
		n.C = a.checkCond(n.C)
		n.Then = a.checkExpr(n.Then)
		n.Else = a.checkExpr(n.Else)
		tt, et := n.Then.Type().Decay(), n.Else.Type().Decay()
		switch {
		case tt.IsInteger() && et.IsInteger():
			n.SetType(types.UsualArith(tt, et))
		case tt.IsPointer():
			n.SetType(tt)
		case et.IsPointer():
			n.SetType(et)
		case types.Same(tt, et):
			n.SetType(tt)
		default:
			a.errorf(n.Pos(), "mismatched ?: operand types %s and %s", tt, et)
			n.SetType(errType)
		}
		return n
	case *ast.Call:
		return a.checkCall(n)
	case *ast.Index:
		n.X = a.checkExpr(n.X)
		n.Idx = a.checkExpr(n.Idx)
		xt := n.X.Type().Decay()
		if !xt.IsPointer() {
			// C also allows i[p]; support it by swapping.
			it := n.Idx.Type().Decay()
			if it.IsPointer() {
				n.X, n.Idx = n.Idx, n.X
				xt = it
			} else {
				a.errorf(n.Pos(), "indexing non-pointer type %s", n.X.Type())
				n.SetType(errType)
				return n
			}
		}
		if !n.Idx.Type().Decay().IsInteger() {
			a.errorf(n.Idx.Pos(), "array index must be an integer, have %s", n.Idx.Type())
		}
		n.SetType(xt.Elem)
		return n
	case *ast.Member:
		n.X = a.checkExpr(n.X)
		xt := n.X.Type()
		if n.Arrow {
			xt = xt.Decay()
			if !xt.IsPointer() || xt.Elem.Kind != types.Struct {
				a.errorf(n.Pos(), "-> on non-struct-pointer type %s", n.X.Type())
				n.SetType(errType)
				return n
			}
			xt = xt.Elem
		} else if xt.Kind != types.Struct {
			a.errorf(n.Pos(), ". on non-struct type %s", xt)
			n.SetType(errType)
			return n
		}
		f, ok := xt.Rec.FieldByName(n.Name)
		if !ok {
			a.errorf(n.Pos(), "%s has no field %q", xt, n.Name)
			n.SetType(errType)
			return n
		}
		n.Field = f
		n.SetType(f.Type)
		return n
	case *ast.SizeofExpr:
		n.X = a.checkExpr(n.X)
		lit := &ast.IntLit{Val: int64(n.X.Type().Size())}
		lit.P = n.Pos()
		lit.SetType(types.ULongType)
		return lit
	case *ast.SizeofType:
		lit := &ast.IntLit{Val: int64(n.Of.Size())}
		lit.P = n.Pos()
		lit.SetType(types.ULongType)
		return lit
	case *ast.Cast:
		n.X = a.checkExpr(n.X)
		xt := n.X.Type().Decay()
		to := n.To
		ok := to.IsVoid() ||
			(to.IsScalar() && xt.IsScalar()) ||
			(to.Kind == types.Struct && types.Same(to, xt))
		if !ok && xt.Kind != types.Invalid {
			a.errorf(n.Pos(), "invalid cast from %s to %s", n.X.Type(), to)
		}
		n.SetType(to)
		return n
	case *ast.Comma:
		n.X = a.checkExpr(n.X)
		n.Y = a.checkExpr(n.Y)
		n.SetType(n.Y.Type())
		return n
	case *ast.InitList:
		a.errorf(n.Pos(), "initializer list used outside a declaration")
		n.SetType(errType)
		return n
	}
	a.errorf(e.Pos(), "unsupported expression %T", e)
	return e
}

func (a *Analyzer) checkUnary(n *ast.Unary) ast.Expr {
	n.X = a.checkExpr(n.X)
	t := n.X.Type()
	switch n.Op {
	case token.Minus, token.Plus:
		if !t.Decay().IsInteger() {
			a.errorf(n.Pos(), "invalid operand %s to unary %s", t, n.Op)
		}
		n.SetType(types.Promote(t))
	case token.Tilde:
		if !t.IsInteger() {
			a.errorf(n.Pos(), "invalid operand %s to ~", t)
		}
		n.SetType(types.Promote(t))
	case token.Bang:
		if !t.Decay().IsScalar() {
			a.errorf(n.Pos(), "invalid operand %s to !", t)
		}
		n.SetType(types.IntType)
	case token.Star:
		dt := t.Decay()
		if !dt.IsPointer() {
			a.errorf(n.Pos(), "dereferencing non-pointer type %s", t)
			n.SetType(errType)
			return n
		}
		if dt.Elem.IsVoid() {
			a.errorf(n.Pos(), "dereferencing void pointer")
			n.SetType(errType)
			return n
		}
		n.SetType(dt.Elem)
	case token.Amp:
		a.requireLvalue(n.X)
		n.SetType(types.PointerTo(t))
	case token.Inc, token.Dec:
		a.requireLvalue(n.X)
		if !t.IsInteger() && !t.IsPointer() {
			a.errorf(n.Pos(), "invalid operand %s to %s", t, n.Op)
		}
		n.SetType(t)
	default:
		a.errorf(n.Pos(), "unsupported unary operator %s", n.Op)
		n.SetType(errType)
	}
	return n
}

func (a *Analyzer) checkBinary(n *ast.Binary) ast.Expr {
	n.X = a.checkExpr(n.X)
	n.Y = a.checkExpr(n.Y)
	xt, yt := n.X.Type().Decay(), n.Y.Type().Decay()
	if xt.Kind == types.Invalid || yt.Kind == types.Invalid {
		n.SetType(errType)
		return n
	}
	switch n.Op {
	case token.Plus:
		switch {
		case xt.IsPointer() && yt.IsInteger():
			n.SetType(xt)
		case xt.IsInteger() && yt.IsPointer():
			n.SetType(yt)
		case xt.IsInteger() && yt.IsInteger():
			n.SetType(types.UsualArith(xt, yt))
		default:
			a.errorf(n.Pos(), "invalid operands %s and %s to +", xt, yt)
			n.SetType(errType)
		}
	case token.Minus:
		switch {
		case xt.IsPointer() && yt.IsPointer():
			n.SetType(types.LongType) // ptrdiff_t
		case xt.IsPointer() && yt.IsInteger():
			n.SetType(xt)
		case xt.IsInteger() && yt.IsInteger():
			n.SetType(types.UsualArith(xt, yt))
		default:
			a.errorf(n.Pos(), "invalid operands %s and %s to -", xt, yt)
			n.SetType(errType)
		}
	case token.Star, token.Slash, token.Percent, token.Amp, token.Pipe,
		token.Caret:
		if !xt.IsInteger() || !yt.IsInteger() {
			a.errorf(n.Pos(), "invalid operands %s and %s to %s", xt, yt, n.Op)
			n.SetType(errType)
			return n
		}
		n.SetType(types.UsualArith(xt, yt))
	case token.Shl, token.Shr:
		if !xt.IsInteger() || !yt.IsInteger() {
			a.errorf(n.Pos(), "invalid operands %s and %s to %s", xt, yt, n.Op)
			n.SetType(errType)
			return n
		}
		n.SetType(types.Promote(xt))
	case token.Lt, token.Gt, token.Le, token.Ge, token.EqEq, token.NotEq:
		okCmp := (xt.IsInteger() && yt.IsInteger()) ||
			(xt.IsPointer() && yt.IsPointer()) ||
			(xt.IsPointer() && yt.IsInteger()) ||
			(xt.IsInteger() && yt.IsPointer())
		if !okCmp {
			a.errorf(n.Pos(), "invalid comparison between %s and %s", xt, yt)
		}
		n.SetType(types.IntType)
	case token.AndAnd, token.OrOr:
		if !xt.IsScalar() || !yt.IsScalar() {
			a.errorf(n.Pos(), "invalid operands %s and %s to %s", xt, yt, n.Op)
		}
		n.SetType(types.IntType)
	default:
		a.errorf(n.Pos(), "unsupported binary operator %s", n.Op)
		n.SetType(errType)
	}
	return n
}

func (a *Analyzer) checkCall(n *ast.Call) ast.Expr {
	name := n.Fun.Name
	sym := a.lookup(name)
	if sym == nil {
		if bt, ok := a.builtins[name]; ok {
			sym = &ast.Symbol{
				Name: name, Type: bt, Storage: ast.StorageFunc,
				FuncIdx: -1, Builtin: true,
			}
			a.scopes[0][name] = sym
		} else {
			a.errorf(n.Pos(), "call to undeclared function %q", name)
			n.SetType(errType)
			return n
		}
	}
	if sym.Storage != ast.StorageFunc || sym.Type.Kind != types.Func {
		a.errorf(n.Pos(), "%q is not a function", name)
		n.SetType(errType)
		return n
	}
	// A C-source prototype without a definition binds to a host-provided
	// builtin (libc or a driver "syscall"); if the host supplies no
	// implementation the call fails at run time, like an unresolved
	// symbol at load time.
	if sym.FuncIdx < 0 {
		sym.Builtin = true
	}
	n.Fun.Sym = sym
	n.Fun.SetType(sym.Type)
	fn := sym.Type.Fn
	if len(n.Args) < len(fn.Params) ||
		(!fn.Variadic && len(n.Args) > len(fn.Params)) {
		a.errorf(n.Pos(), "function %q expects %d argument(s), got %d",
			name, len(fn.Params), len(n.Args))
	}
	for i := range n.Args {
		n.Args[i] = a.checkExpr(n.Args[i])
		if i < len(fn.Params) {
			at := n.Args[i].Type().Decay()
			pt := fn.Params[i].Type
			if !argCompatible(pt, at) {
				a.errorf(n.Args[i].Pos(), "argument %d of %q: cannot pass %s as %s",
					i+1, name, n.Args[i].Type(), pt)
			}
		}
	}
	n.SetType(fn.Ret)
	return n
}

// argCompatible is the permissive C argument compatibility relation.
func argCompatible(param, arg *types.Type) bool {
	if param.Kind == types.Invalid || arg.Kind == types.Invalid {
		return true
	}
	switch {
	case param.IsInteger() && arg.IsInteger():
		return true
	case param.IsPointer() && arg.IsPointer():
		return true // any pointer converts (classic C laxity + void*)
	case param.IsPointer() && arg.IsInteger():
		return true // 0 and int-as-pointer idioms
	case param.IsInteger() && arg.IsPointer():
		return true
	case param.Kind == types.Struct:
		return types.Same(param, arg)
	}
	return false
}

// requireLvalue validates that e designates an object.
func (a *Analyzer) requireLvalue(e ast.Expr) {
	switch n := e.(type) {
	case *ast.Ident:
		if n.Sym != nil && n.Sym.Storage == ast.StorageFunc {
			a.errorf(e.Pos(), "function used as lvalue")
		}
	case *ast.Index, *ast.Member:
	case *ast.Unary:
		if n.Op != token.Star {
			a.errorf(e.Pos(), "expression is not an lvalue")
		}
	case *ast.StringLit:
		// Writable in C only nominally; treat as lvalue (checks catch
		// writes at runtime).
	default:
		a.errorf(e.Pos(), "expression is not an lvalue")
	}
}

// evalConst folds an analyzed expression to an integer constant.
func (a *Analyzer) evalConst(e ast.Expr) (int64, bool) {
	switch n := e.(type) {
	case *ast.IntLit:
		return n.Val, true
	case *ast.Unary:
		v, ok := a.evalConst(n.X)
		if !ok {
			return 0, false
		}
		switch n.Op {
		case token.Minus:
			return -v, true
		case token.Plus:
			return v, true
		case token.Tilde:
			return ^v, true
		case token.Bang:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *ast.Cast:
		if v, ok := a.evalConst(n.X); ok && n.To.IsInteger() {
			return types.Truncate(n.To, v), true
		}
	case *ast.Cond:
		if c, ok := a.evalConst(n.C); ok {
			if c != 0 {
				return a.evalConst(n.Then)
			}
			return a.evalConst(n.Else)
		}
	case *ast.Binary:
		x, ok1 := a.evalConst(n.X)
		y, ok2 := a.evalConst(n.Y)
		if ok1 && ok2 {
			return foldBinary(n.Op, x, y)
		}
	}
	return 0, false
}

func foldBinary(op token.Kind, x, y int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case token.Plus:
		return x + y, true
	case token.Minus:
		return x - y, true
	case token.Star:
		return x * y, true
	case token.Slash:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case token.Percent:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case token.Shl:
		return x << uint64(y&63), true
	case token.Shr:
		return x >> uint64(y&63), true
	case token.Amp:
		return x & y, true
	case token.Pipe:
		return x | y, true
	case token.Caret:
		return x ^ y, true
	case token.Lt:
		return b2i(x < y), true
	case token.Gt:
		return b2i(x > y), true
	case token.Le:
		return b2i(x <= y), true
	case token.Ge:
		return b2i(x >= y), true
	case token.EqEq:
		return b2i(x == y), true
	case token.NotEq:
		return b2i(x != y), true
	case token.AndAnd:
		return b2i(x != 0 && y != 0), true
	case token.OrOr:
		return b2i(x != 0 || y != 0), true
	}
	return 0, false
}
