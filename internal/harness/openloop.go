package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"focc/fo"
	"focc/internal/serve"
	"focc/internal/servers"
)

// ClusterConfig parameterizes the open-loop cluster experiment: a sharded
// serve.Router driven by Poisson arrivals at a configured offered rate,
// independent of completions — the arrival process does not slow down when
// the cluster does, which is what makes overload visible (a closed-loop
// generator like Loadtest self-throttles and can never offer 2×).
type ClusterConfig struct {
	// Shards is the router's shard count; 0 means 2.
	Shards int
	// PoolSize is each shard's worker count; 0 means 2.
	PoolSize int
	// QueueDepth bounds each shard's admission queue; 0 means 32.
	QueueDepth int
	// Tenants is the number of distinct tenant keys arrivals draw from;
	// 0 means 8.
	Tenants int
	// Quota caps each tenant's in-flight requests (0 = no quotas).
	Quota int
	// SLO is the per-request deadline and the goodput threshold: a request
	// answered OK within SLO counts toward goodput. 0 means 50ms.
	SLO time.Duration
	// TargetP95 enables the router's AIMD concurrency limit at this target
	// (0 = AIMD off).
	TargetP95 time.Duration
	// Rate is the offered arrival rate in requests/second. Required.
	Rate float64
	// Duration is how long arrivals are generated; 0 means 1s.
	Duration time.Duration
	// Chaos is per-shard chaos injection (zero = none).
	Chaos serve.ChaosConfig
	// Seed drives the arrival process and tenant picks; 0 means 1.
	Seed int64
}

func (c *ClusterConfig) defaults() {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.SLO <= 0 {
		c.SLO = 50 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ClusterResult is one cell of the goodput-under-overload curve.
type ClusterResult struct {
	Mode  string
	Chaos bool
	// Load is the offered-load multiplier this cell was run at (informational).
	Load float64
	// Rate is the configured offered arrival rate (req/s).
	Rate float64
	// Offered counts generated arrivals; Served counts OK responses;
	// SLOGood counts OK responses within the SLO.
	Offered, Served, SLOGood int
	// Goodput is SLO-meeting responses per second of generation time.
	Goodput float64
	// Latency percentiles over served (OK) requests, in ns.
	P50, P95, P99 time.Duration
	// Rejections by cause, plus engine supervision counters.
	Shed, Rejected, OverQuota, OverLimit uint64
	Timeouts, Restarts, Recycles         uint64
	// Errors counts submissions that failed for any reason other than the
	// admission-control errors above (should be zero).
	Errors int
}

// ClusterCapacity estimates the fleet's sustainable service rate (OK
// responses per second) with a short closed-loop burst at full concurrency
// — the 1× baseline the overload multipliers scale from.
func ClusterCapacity(srv servers.Server, mode fo.Mode, cfg ClusterConfig) (float64, error) {
	cfg.defaults()
	rt, err := newClusterRouter(srv, mode, cfg, serve.ChaosConfig{})
	if err != nil {
		return 0, err
	}
	defer rt.Close()
	clients := cfg.Shards * cfg.PoolSize * 2
	const warm = 50 * time.Millisecond
	const measure = 300 * time.Millisecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c%cfg.Tenants)
			req := srv.LegitRequests()[0]
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt.Submit(context.Background(), tenant, req)
			}
		}(c)
	}
	time.Sleep(warm)
	before := rt.Stats().Served
	time.Sleep(measure)
	served := rt.Stats().Served - before
	close(stop)
	wg.Wait()
	return float64(served) / measure.Seconds(), nil
}

// ClusterRun drives the router open loop: Poisson arrivals at cfg.Rate for
// cfg.Duration, every arrival submitted immediately on its own goroutine
// regardless of how many are still in flight.
func ClusterRun(srv servers.Server, mode fo.Mode, cfg ClusterConfig) (ClusterResult, error) {
	cfg.defaults()
	if cfg.Rate <= 0 {
		return ClusterResult{}, fmt.Errorf("harness: cluster offered rate %v: must be positive", cfg.Rate)
	}
	rt, err := newClusterRouter(srv, mode, cfg, cfg.Chaos)
	if err != nil {
		return ClusterResult{}, err
	}
	defer rt.Close()

	req := srv.LegitRequests()[0]
	res := ClusterResult{Mode: mode.String(), Chaos: cfg.Chaos.KillEvery > 0 || cfg.Chaos.LatencyEvery > 0, Rate: cfg.Rate}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		served    int
		sloGood   int
		failures  int
	)
	record := func(lat time.Duration, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if !ok {
			failures++
			return
		}
		served++
		latencies = append(latencies, lat)
		if lat <= cfg.SLO {
			sloGood++
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var wg sync.WaitGroup
	start := time.Now()
	next := start
	offered := 0
	for {
		// Exponential inter-arrival gaps give the Poisson process; when
		// generation falls behind schedule (timer granularity, CPU
		// contention) arrivals fire back-to-back, preserving the offered
		// rate as a burst — which is exactly how open-loop overload behaves.
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		if next.Sub(start) > cfg.Duration {
			break
		}
		if d := time.Until(next); d > 100*time.Microsecond {
			time.Sleep(d)
		}
		offered++
		tenant := fmt.Sprintf("tenant-%d", rng.Intn(cfg.Tenants))
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), cfg.SLO)
			defer cancel()
			t0 := time.Now()
			resp, err := rt.Submit(ctx, tenant, req)
			switch {
			case err == nil && resp.OK():
				record(time.Since(t0), true)
			case errors.Is(err, serve.ErrShed), errors.Is(err, serve.ErrQueueFull),
				errors.Is(err, serve.ErrOverQuota), errors.Is(err, serve.ErrOverLimit):
				// Admission control doing its job; counted from router stats.
			case err == nil:
				// Executed but not OK (deadline expiry): counted as timeout.
			default:
				record(0, false)
			}
		}()
	}
	wg.Wait()
	genElapsed := cfg.Duration

	res.Offered = offered
	res.Served = served
	res.SLOGood = sloGood
	res.Errors = failures
	res.Goodput = float64(sloGood) / genElapsed.Seconds()
	res.P50, res.P95, res.P99 = percentiles(latencies)
	st := rt.Stats()
	res.Shed = st.Shed
	res.Rejected = st.Rejected
	res.OverQuota = st.OverQuota
	res.OverLimit = st.OverLimit
	res.Timeouts = st.Timeouts
	res.Restarts = st.Restarts
	res.Recycles = st.Recycles
	return res, nil
}

func newClusterRouter(srv servers.Server, mode fo.Mode, cfg ClusterConfig, chaos serve.ChaosConfig) (*serve.Router, error) {
	shardOpts := []serve.Option{
		serve.WithPoolSize(cfg.PoolSize),
		serve.WithQueueDepth(cfg.QueueDepth),
	}
	if chaos.KillEvery > 0 || chaos.LatencyEvery > 0 {
		shardOpts = append(shardOpts, serve.WithChaos(chaos))
	}
	opts := []serve.RouterOption{
		serve.WithShards(cfg.Shards),
		serve.WithShardOptions(shardOpts...),
	}
	if cfg.Quota > 0 {
		opts = append(opts, serve.WithTenantQuota(cfg.Quota))
	}
	if cfg.TargetP95 > 0 {
		opts = append(opts, serve.WithAIMD(serve.AIMDConfig{TargetP95: cfg.TargetP95}))
	}
	return serve.NewRouter(srv, mode, opts...)
}

// ClusterReport is the JSON artifact of a cluster experiment run: the
// calibrated 1× capacity and every (load, chaos) cell.
type ClusterReport struct {
	Server   string
	Capacity float64 // calibrated 1× service rate, req/s
	SLOms    float64
	Cells    []ClusterResult
}

// JSON renders the report with stable formatting for CI artifacts.
func (r *ClusterReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatCluster renders the goodput-under-overload table.
func FormatCluster(rep *ClusterReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Calibrated 1x capacity: %.0f req/s (SLO %.0fms)\n", rep.Capacity, rep.SLOms)
	fmt.Fprintf(&sb, "%-18s %-6s %-6s %-9s %-9s %-9s %-9s %-9s %-7s %-7s %-7s %s\n",
		"Version", "Load", "Chaos", "Offered", "Goodput", "p50", "p95", "p99",
		"Shed", "Reject", "OverQ", "OverL")
	for _, c := range rep.Cells {
		chaos := "off"
		if c.Chaos {
			chaos = "on"
		}
		fmt.Fprintf(&sb, "%-18s %-6s %-6s %-9d %-9.0f %-9s %-9s %-9s %-7d %-7d %-7d %d\n",
			c.Mode, fmt.Sprintf("%.0fx", c.Load), chaos, c.Offered, c.Goodput,
			fmtLatency(c.P50), fmtLatency(c.P95), fmtLatency(c.P99),
			c.Shed, c.Rejected, c.OverQuota, c.OverLimit)
	}
	return sb.String()
}
