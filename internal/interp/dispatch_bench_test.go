package interp_test

// BenchmarkDispatch measures the execution engines head-to-head over the
// integration corpus: the AST-walking reference evaluator (per-node type
// switches, per-execution identifier resolution) against the compiled
// closure IR (everything static resolved at lowering time). Same
// programs, same modes, same simulated-cycle counts — only the Go-level
// dispatch cost differs.
//
//	go test ./internal/interp -bench Dispatch -benchmem

import (
	"testing"

	"focc/internal/core"
	"focc/internal/interp"
	"focc/internal/libc"
)

var dispatchModes = []core.Mode{
	core.Standard,
	core.BoundsCheck,
	core.FailureOblivious,
}

func benchEngine(b *testing.B, src string, compiled bool) {
	for _, mode := range dispatchModes {
		b.Run(mode.String(), func(b *testing.B) {
			prog := compileWithCPP(b, src)
			cfg := interp.Config{Mode: mode, Builtins: libc.Builtins()}
			if compiled {
				cfg.Compiled = interp.Compile(prog)
			}
			m, err := interp.New(prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res := m.Run(); res.Outcome != interp.OutcomeOK {
				b.Fatalf("warm-up: %v (%v)", res.Outcome, res.Err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if res := m.Call("main"); res.Outcome != interp.OutcomeOK {
					b.Fatalf("%v (%v)", res.Outcome, res.Err)
				}
			}
		})
	}
}

func BenchmarkDispatchTreeWalk(b *testing.B) {
	for _, cp := range corpusSources() {
		b.Run(cp.name, func(b *testing.B) { benchEngine(b, cp.src, false) })
	}
}

func BenchmarkDispatchCompiled(b *testing.B) {
	for _, cp := range corpusSources() {
		b.Run(cp.name, func(b *testing.B) { benchEngine(b, cp.src, true) })
	}
}

// BenchmarkCompileLowering measures the one-time lowering cost itself —
// the price a Program pays once, amortized across every machine in a pool.
func BenchmarkCompileLowering(b *testing.B) {
	prog := compileWithCPP(b, srcBase64)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if cp := interp.Compile(prog); cp == nil {
			b.Fatal("nil compile")
		}
	}
}
