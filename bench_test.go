// Package focc_test holds the top-level benchmark harness: one benchmark
// family per table/figure in the paper's evaluation. Each benchmark reports
// wall-clock ns/op for the interpreter plus a "sim-ms/op" metric — the
// simulated request-processing time under the cost model in
// internal/interp/cycles.go, which is what reproduces the paper's slowdown
// shapes (see EXPERIMENTS.md).
//
//	go test -bench=. -benchmem
package focc_test

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"focc/fo"
	"focc/internal/harness"
	"focc/internal/interp"
	"focc/internal/serve"
	"focc/internal/servers"
	"focc/internal/servers/apache"
	"focc/internal/servers/mc"
	"focc/internal/servers/mutt"
	"focc/internal/servers/pine"
	"focc/internal/servers/sendmail"
)

// benchModes are the two versions the paper's performance figures compare.
var benchModes = []fo.Mode{fo.Standard, fo.FailureOblivious}

// benchFigure runs one paper figure: every named request under Standard and
// FailureOblivious instances.
func benchFigure(b *testing.B, srv servers.Server, names []string) {
	reqs := srv.LegitRequests()
	if len(reqs) < len(names) {
		b.Fatalf("server %s has %d requests, need %d", srv.Name(), len(reqs), len(names))
	}
	for i, name := range names {
		req := reqs[i]
		for _, mode := range benchModes {
			b.Run(name+"/"+mode.String(), func(b *testing.B) {
				inst, err := srv.New(mode)
				if err != nil {
					b.Fatal(err)
				}
				if resp := inst.Handle(req); resp.Crashed() {
					b.Fatalf("warm-up crashed: %v", resp.Err)
				}
				start := inst.Cycles()
				b.ReportAllocs()
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					if resp := inst.Handle(req); resp.Crashed() {
						b.Fatalf("request crashed: %v", resp.Err)
					}
				}
				b.StopTimer()
				cycles := inst.Cycles() - start
				simMs := interp.SimSeconds(cycles) * 1e3 / float64(b.N)
				b.ReportMetric(simMs, "sim-ms/op")
			})
		}
	}
}

// BenchmarkFig2Pine reproduces Figure 2 (Pine: Read, Compose, Move).
func BenchmarkFig2Pine(b *testing.B) {
	benchFigure(b, pine.NewServer(), []string{"Read", "Compose", "Move"})
}

// BenchmarkFig3Apache reproduces Figure 3 (Apache: Small 5 KB page, Large
// 830 KB file).
func BenchmarkFig3Apache(b *testing.B) {
	benchFigure(b, apache.NewServer(), []string{"Small", "Large"})
}

// BenchmarkFig4Sendmail reproduces Figure 4 (Sendmail: Recv/Send ×
// Small/Large).
func BenchmarkFig4Sendmail(b *testing.B) {
	benchFigure(b, sendmail.NewServer(), []string{"RecvSmall", "RecvLarge", "SendSmall", "SendLarge"})
}

// BenchmarkFig5MC reproduces Figure 5 (Midnight Commander: Copy, Move,
// MkDir, Delete).
func BenchmarkFig5MC(b *testing.B) {
	benchFigure(b, mc.NewServer(), []string{"Copy", "Move", "MkDir", "Delete"})
}

// BenchmarkFig6Mutt reproduces Figure 6 (Mutt: Read, Move).
func BenchmarkFig6Mutt(b *testing.B) {
	benchFigure(b, mutt.NewServer(), []string{"Read", "Move"})
}

// BenchmarkApacheAttackThroughput reproduces the §4.3.2 experiment: the
// pool is flooded with attack requests (three per legitimate fetch) and the
// benchmark unit is one legitimate home-page fetch. The Standard and
// BoundsCheck versions pay child-restart overhead per attack; the Failure
// Oblivious version does not — its ns/op is the highest throughput, which
// the paper reports as roughly 5.7x Bounds Check and 4.8x Standard.
func BenchmarkApacheAttackThroughput(b *testing.B) {
	srv := apache.NewServer()
	for _, mode := range harness.Modes {
		b.Run(mode.String(), func(b *testing.B) {
			pool, err := harness.NewChildPool(srv, mode, 4)
			if err != nil {
				b.Fatal(err)
			}
			defer pool.Close()
			legit := srv.LegitRequests()[0]
			attack := srv.AttackRequest()
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				for a := 0; a < 3; a++ {
					if _, err := pool.Handle(attack); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := pool.Handle(legit); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(pool.Restarts())/float64(b.N), "restarts/op")
		})
	}
}

// BenchmarkResilienceMatrix measures the cost of running the full §4.*.2
// security matrix (5 servers × 3 versions, attack + probe each).
func BenchmarkResilienceMatrix(b *testing.B) {
	srvs := []servers.Server{
		pine.NewServer(), apache.NewServer(), sendmail.NewServer(),
		mc.NewServer(), mutt.NewServer(),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := harness.ResilienceMatrix(srvs, harness.Modes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationValueSequence benchmarks the §3 ablation's surviving
// configuration: the Midnight-Commander-style sentinel scan running off the
// end of its buffer under the paper's small-integer sequence. (The all-zeros
// generator hangs — demonstrated by TestValueSequenceTermination — so it
// cannot be benchmarked.)
func BenchmarkAblationValueSequence(b *testing.B) {
	const src = `
int scan(void) {
	char buf[8];
	int i = 0;
	buf[0] = 'a';
	while (buf[i] != '/')
		i++;
	return i;
}
`
	prog, err := fo.Compile("scan.c", src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.FailureOblivious})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if res := m.Call("scan"); res.Outcome != fo.OutcomeOK {
			b.Fatalf("scan: %v", res.Outcome)
		}
	}
}

// BenchmarkPolicyOverhead is the DESIGN.md ablation of the access-policy
// dispatch itself: a pure pointer-chasing C loop under each policy.
func BenchmarkPolicyOverhead(b *testing.B) {
	const src = `
char buf[4096];
int churn(int n) {
	int i, x = 0;
	for (i = 0; i < n; i++)
		x += buf[i & 4095];
	return x;
}
`
	prog, err := fo.Compile("churn.c", src)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []fo.Mode{fo.Standard, fo.BoundsCheck, fo.FailureOblivious, fo.Boundless, fo.Redirect, fo.ModeRewind} {
		b.Run(mode.String(), func(b *testing.B) {
			m, err := prog.NewMachine(fo.MachineConfig{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if res := m.Call("churn", fo.Int(1024)); res.Outcome != fo.OutcomeOK {
					b.Fatal(res.Err)
				}
			}
		})
	}
}

// benchServeSrc is the small-op server the serving-path benchmarks drive:
// "ok" is a tiny successful request (the batching target — per-request
// dispatch overhead dominates execution), and "poke" additionally commits
// two out-of-bounds writes so the failure-oblivious telemetry path (event
// append + per-request attribution) runs on every request.
const benchServeSrc = `
char resp[32];

int ok(void)
{
	resp[0] = 'o'; resp[1] = 'k'; resp[2] = 0;
	return 200;
}

int poke(void)
{
	char b[4];
	b[6] = 'x'; b[7] = 'y';
	return 200;
}
`

var (
	benchServeOnce sync.Once
	benchServeProg *fo.Program
	benchServeErr  error
)

type benchServeServer struct{}

func (*benchServeServer) Name() string { return "benchstub" }

func (*benchServeServer) New(mode fo.Mode) (servers.Instance, error) {
	benchServeOnce.Do(func() { benchServeProg, benchServeErr = fo.Compile("benchstub.c", benchServeSrc) })
	if benchServeErr != nil {
		return nil, benchServeErr
	}
	log := fo.NewEventLog(0)
	m, err := benchServeProg.NewMachine(fo.MachineConfig{Mode: mode, Log: log})
	if err != nil {
		return nil, err
	}
	return &benchServeInstance{Base: servers.Base{ServerName: "benchstub", M: m, EvLog: log}}, nil
}

func (*benchServeServer) LegitRequests() []servers.Request {
	return []servers.Request{{Op: "ok"}, {Op: "poke"}}
}

func (*benchServeServer) AttackRequest() servers.Request { return servers.Request{Op: "poke"} }

type benchServeInstance struct {
	servers.Base
}

func (i *benchServeInstance) Handle(req servers.Request) servers.Response {
	res := i.M.Call(req.Op)
	if res.Outcome != fo.OutcomeOK {
		return servers.Response{Outcome: res.Outcome, Err: res.Err}
	}
	return servers.Response{Outcome: fo.OutcomeOK, Status: int(res.Value.I), Body: "ok"}
}

func (i *benchServeInstance) HandleContext(ctx context.Context, req servers.Request) servers.Response {
	defer i.BindContext(ctx)()
	return i.Attribute(func() servers.Response { return i.Handle(req) })
}

// scrapeParallelism returns the SetParallelism factor that yields ~want
// concurrent benchmark goroutines under the current GOMAXPROCS.
func scrapeParallelism(want int) int {
	p := runtime.GOMAXPROCS(0)
	n := (want + p - 1) / p
	if n < 1 {
		n = 1
	}
	return n
}

// BenchmarkStatsScrape measures the cost of one full observability scrape
// (Stats + Metrics: counters, aggregated memory-error telemetry, latency
// histogram) under 64 concurrent scrapers while the pool serves a
// telemetry-heavy workload. This is the monitoring hot path: a stats
// endpoint polled by many collectors must not serialize against the
// serving path's per-request event accounting.
func BenchmarkStatsScrape(b *testing.B) {
	eng, err := serve.New(&benchServeServer{}, fo.FailureOblivious,
		serve.WithPoolSize(4), serve.WithQueueDepth(256))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Submit(nil, servers.Request{Op: "poke"}); err != nil {
					return
				}
			}
		}()
	}
	b.ReportAllocs()
	b.SetParallelism(scrapeParallelism(64))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m := eng.Metrics()
			_ = m.Served
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// benchDispatch drives the engine with 64 concurrent submitters of the
// tiny "ok" request — the workload where per-request serving overhead
// (queue slot, instance hand-off, checkpoint epoch) dominates execution —
// and reports the per-request cost.
func benchDispatch(b *testing.B, opts ...serve.Option) {
	base := []serve.Option{serve.WithPoolSize(2), serve.WithQueueDepth(256)}
	eng, err := serve.New(&benchServeServer{}, fo.ModeRewind, append(base, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ReportAllocs()
	b.SetParallelism(scrapeParallelism(64))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := eng.Submit(nil, servers.Request{Op: "ok"})
			if err != nil {
				b.Error(err)
				return
			}
			if resp.Outcome != fo.OutcomeOK {
				b.Errorf("outcome = %v, want OK", resp.Outcome)
				return
			}
		}
	})
}

// BenchmarkBatchDispatch compares the small-op serving path with and
// without request batching at equal pool size, under the rewind policy
// (where batching also amortizes the request-boundary checkpoint into one
// epoch per batch). The headline ratio — batched req/s over unbatched —
// is what BENCH_PR10.json records; sub-request semantics are pinned
// equivalent by the batching tests in internal/serve.
func BenchmarkBatchDispatch(b *testing.B) {
	b.Run("unbatched", func(b *testing.B) {
		benchDispatch(b)
	})
	b.Run("batched", func(b *testing.B) {
		benchDispatch(b, serve.WithBatching(16, time.Millisecond))
	})
}

// BenchmarkRewindCheckpoint isolates the cost of the rewind policy's
// request-boundary checkpoint (EXPERIMENTS.md §rewind): "commit" is the
// clean path — a write-heavy request that mutates globals and the heap,
// paying the copy-on-write undo log plus the Commit — and "rollback" is a
// request that trips an out-of-bounds write and pays the full Rewind
// restore. The failure-oblivious contrast for the same commit workload is
// BenchmarkPolicyOverhead/failure-oblivious.
func BenchmarkRewindCheckpoint(b *testing.B) {
	const src = `
char state[1024];
int handle(int n) {
	char *blk = (char *)malloc(64);
	int i;
	for (i = 0; i < 1024; i++)
		state[i] = (char)(i + n);
	blk[0] = 'x';
	free(blk);
	return state[0];
}
int poison(int n) {
	char buf[8];
	int i;
	for (i = 0; i < 1024; i++)
		state[i] = (char)i;
	for (i = 0; i < n; i++)
		buf[i] = 'y';   /* overruns for n > 8: triggers the rollback */
	return 0;
}
`
	prog, err := fo.Compile("ckpt.c", src)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		fn   string
		arg  int64
		want fo.Outcome
	}{
		{"commit", "handle", 0, fo.OutcomeOK},
		{"rollback", "poison", 64, fo.OutcomeRewound},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.ModeRewind})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				if res := m.Call(c.fn, fo.Int(c.arg)); res.Outcome != c.want {
					b.Fatalf("%s: %v (%v)", c.fn, res.Outcome, res.Err)
				}
			}
		})
	}
}
