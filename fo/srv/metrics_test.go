package srv_test

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"focc/fo"
	"focc/fo/srv"
)

// TestMetricsHandler serves attack traffic through a failure-oblivious
// engine, scrapes the Prometheus endpoint, and checks the memory-error and
// latency series the attack must have produced.
func TestMetricsHandler(t *testing.T) {
	eng, err := srv.NewEngine(srv.NewApacheServer(), fo.FailureOblivious,
		srv.WithPoolSize(2), srv.WithQueueDepth(8), srv.WithDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	apacheSrv := srv.NewApacheServer()
	for i := 0; i < 2; i++ {
		if _, err := eng.Submit(context.Background(), apacheSrv.LegitRequests()[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Submit(context.Background(), apacheSrv.AttackRequest()); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(srv.MetricsHandler(eng))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"fo_requests_served_total 4",
		`fo_memory_errors_total{kind="invalid_write"}`,
		`fo_memory_errors_total{kind="denied"} 0`,
		"fo_request_latency_seconds_count 4",
		`fo_request_latency_seconds_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	// The attack discards writes, so the invalid_write series must be
	// nonzero — find its line and check the value.
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `fo_memory_errors_total{kind="invalid_write"} `) {
			found = true
			if strings.HasSuffix(line, " 0") {
				t.Errorf("invalid_write counter is zero after attack: %s", line)
			}
		}
	}
	if !found {
		t.Error("invalid_write series absent")
	}

	m := eng.Metrics()
	if m.MemErrors.InvalidWrites == 0 {
		t.Error("Metrics snapshot has no discarded writes after attack")
	}
	if m.Latency.Count != 4 {
		t.Errorf("latency count = %d, want 4", m.Latency.Count)
	}
	if len(m.Latency.Buckets) == 0 {
		t.Error("latency snapshot has no buckets")
	}
}

// TestMetricsStrategyAttribution serves the Midnight Commander attack
// (invalid reads, so values are manufactured) through a context-aware
// engine and checks the per-strategy manufacture histogram: the snapshot
// carries Strategies and the Prometheus endpoint exports
// fo_manufactured_by_strategy_total.
func TestMetricsStrategyAttribution(t *testing.T) {
	eng, err := srv.NewEngine(srv.NewMCServer(), fo.ModeFOContext,
		srv.WithPoolSize(1), srv.WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	mc := srv.NewMCServer()
	if _, err := eng.Submit(context.Background(), mc.AttackRequest()); err != nil {
		t.Fatal(err)
	}

	m := eng.Metrics()
	if m.MemErrors.InvalidReads == 0 {
		t.Fatal("attack produced no invalid reads")
	}
	if len(m.MemErrors.Strategies) == 0 {
		t.Fatal("snapshot has no per-strategy manufacture histogram")
	}
	var total uint64
	for _, n := range m.MemErrors.Strategies {
		total += n
	}
	if total != m.MemErrors.InvalidReads {
		t.Errorf("strategy histogram totals %d, want %d (one attribution per manufacture)",
			total, m.MemErrors.InvalidReads)
	}

	ts := httptest.NewServer(srv.MetricsHandler(eng))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `fo_manufactured_by_strategy_total{strategy="`) {
		t.Errorf("metrics output missing fo_manufactured_by_strategy_total series:\n%s", body)
	}
}

// TestPerRequestAttribution checks Response.MemErrors through the public
// API: the attack request carries its own events, a legitimate request
// carries none.
func TestPerRequestAttribution(t *testing.T) {
	eng, err := srv.NewEngine(srv.NewApacheServer(), fo.FailureOblivious,
		srv.WithPoolSize(1), srv.WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	apacheSrv := srv.NewApacheServer()
	resp, err := eng.Submit(context.Background(), apacheSrv.LegitRequests()[0])
	if err != nil {
		t.Fatal(err)
	}
	if n := resp.MemErrors.Total(); n != 0 {
		t.Errorf("legit request attributed %d events, want 0", n)
	}
	resp, err = eng.Submit(context.Background(), apacheSrv.AttackRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resp.MemErrors.InvalidWrites == 0 {
		t.Error("attack request attributed no discarded writes")
	}
}
