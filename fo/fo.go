// Package fo is the public API of focc, a reproduction of failure-oblivious
// computing (Rinard et al., OSDI 2004). It compiles programs written in the
// focc C dialect and executes them under one of five memory-access policies:
//
//	fo.Standard          unsafe C semantics (crashes, corruption)
//	fo.BoundsCheck       CRED safe-C: terminate at the first memory error
//	fo.FailureOblivious  discard invalid writes, manufacture invalid reads
//	fo.Boundless         store invalid writes in a side hash table (§5.1)
//	fo.Redirect          wrap out-of-bounds offsets into the unit (§5.1)
//	fo.ModeRewind        checkpoint per request; roll back on memory error
//	fo.ModeFOContext     failure-oblivious with per-site manufactured values
//
// Quickstart:
//
//	prog, err := fo.Compile("demo.c", src)
//	m, err := prog.NewMachine(fo.MachineConfig{Mode: fo.FailureOblivious})
//	res := m.Run()
package fo

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"focc/internal/cc/cpp"
	"focc/internal/cc/parser"
	"focc/internal/cc/sema"
	"focc/internal/core"
	"focc/internal/interp"
	"focc/internal/libc"
	"focc/internal/mem"
)

// Mode selects the compilation/execution policy.
type Mode = core.Mode

// Execution modes (see package comment).
const (
	Standard         = core.Standard
	BoundsCheck      = core.BoundsCheck
	FailureOblivious = core.FailureOblivious
	Boundless        = core.Boundless
	Redirect         = core.Redirect
	// TxTerm is the transactional-function-termination comparison policy
	// from the paper's §5.2 related-work discussion.
	TxTerm = core.TxTerm
	// ModeRewind is the rewind-and-discard policy: checkpoint the address
	// space at each request boundary and, when a memory error is detected,
	// roll the request back (OutcomeRewound) instead of manufacturing a
	// value or terminating — FO-grade availability with zero corrupted
	// output.
	ModeRewind = core.ModeRewind
	// ModeFOContext is failure-oblivious computing with context-aware
	// manufactured values: each load site classified by its static
	// context (string scan, pointer read, reload) manufactures through
	// its own strategy instead of the one global sequence. Same decision
	// points and simulated-cycle cost as FailureOblivious; configure via
	// MachineConfig.Strategy (nil provisions the per-program default
	// engine). See internal/strategy and DESIGN.md §17.
	ModeFOContext = core.ModeFOContext
)

// ParseMode parses a mode name ("standard", "bounds", "oblivious",
// "boundless", "redirect", "txterm", "rewind", "fo-context").
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// Re-exported execution types; see the internal packages for details.
type (
	// Machine is one running program instance (a simulated process).
	// Run/Call execute C functions; RunContext/CallContext are the
	// context-aware variants that cancel mid-execution (OutcomeDeadline)
	// without killing the machine.
	Machine = interp.Machine
	// Result is the outcome of a Run or Call.
	Result = interp.Result
	// Value is a C runtime value.
	Value = interp.Value
	// Outcome classifies how an execution ended.
	Outcome = interp.Outcome
	// EventLog is the memory-error log (paper §3). All EventLog methods
	// are safe for concurrent use; see internal/core for the guarantee.
	EventLog = core.EventLog
	// Event is one logged memory-error event.
	Event = core.Event
	// LogSnapshot is a point-in-time copy of an EventLog's aggregate
	// counters and histograms (a plain mergeable value).
	LogSnapshot = core.Snapshot
	// LogCursor marks a position in an EventLog; pair with Since for
	// per-request event attribution.
	LogCursor = core.Cursor
	// LogDelta is the events recorded between a LogCursor and Since —
	// the per-request attribution carried on servers.Response.
	LogDelta = core.Delta
	// ValueGenerator supplies manufactured values for invalid reads.
	ValueGenerator = core.ValueGenerator
	// ContextGenerator is the context-aware manufactured-value interface
	// ModeFOContext consults: primed with (load-site id, static type,
	// access width) before every checked load. internal/strategy provides
	// the site-table implementation; set it via MachineConfig.Strategy.
	ContextGenerator = core.ContextGenerator
)

// Outcome values.
const (
	OutcomeOK                  = interp.OutcomeOK
	OutcomeSegfault            = interp.OutcomeSegfault
	OutcomeHeapCorruption      = interp.OutcomeHeapCorruption
	OutcomeStackSmash          = interp.OutcomeStackSmash
	OutcomeBadFree             = interp.OutcomeBadFree
	OutcomeMemErrorTermination = interp.OutcomeMemErrorTermination
	OutcomeHang                = interp.OutcomeHang
	OutcomeExit                = interp.OutcomeExit
	OutcomeStackOverflow       = interp.OutcomeStackOverflow
	OutcomeOOM                 = interp.OutcomeOOM
	OutcomeRuntimeError        = interp.OutcomeRuntimeError
	// OutcomeDeadline is a call canceled by its context (see
	// Machine.CallContext); the machine survives it.
	OutcomeDeadline = interp.OutcomeDeadline
	// OutcomeRewound is a call rolled back by the ModeRewind policy after
	// a detected memory error; the machine survives with no surviving
	// mutations from the failed request.
	OutcomeRewound = interp.OutcomeRewound
)

// NewSmallIntGenerator returns the paper's manufactured-value sequence
// (0, 1, 2, 0, 1, 3, …).
func NewSmallIntGenerator() ValueGenerator { return core.NewSmallIntGenerator() }

// NewZeroGenerator returns the naive all-zeros generator (ablation only; it
// can hang programs, as the paper's Midnight Commander anecdote shows).
func NewZeroGenerator() ValueGenerator { return core.ZeroGenerator{} }

// NewEventLog returns a memory-error log retaining up to limit events
// (0 = default).
func NewEventLog(limit int) *EventLog { return core.NewEventLog(limit) }

// Int builds an int argument value for Machine.Call.
func Int(v int64) Value { return interp.Int(v) }

// MachineConfig configures program instances. The zero value runs in
// Standard mode with no output.
type MachineConfig = interp.Config

// Program is a compiled focc program; machines (instances) are cheap to
// create from it.
type Program struct {
	sema *sema.Program
	name string
	hash string

	// lowerOnce guards the lazily-built execution IR: every function body
	// is lowered to pre-resolved closures exactly once per Program, and the
	// immutable result is shared by every machine created from it — every
	// instance in a serving pool, warm spares, and crash replacements all
	// skip re-lowering (and the per-machine frame-spec/label-scan work the
	// tree-walk engine repays per instance).
	lowerOnce sync.Once
	compiled  *interp.CompiledProgram
}

// CompileError aggregates compilation diagnostics.
type CompileError struct {
	Stage string // "preprocess", "parse", "analyze"
	Errs  []error
}

func (e *CompileError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s failed with %d error(s):", e.Stage, len(e.Errs))
	for i, err := range e.Errs {
		if i == 8 {
			fmt.Fprintf(&sb, "\n\t... and %d more", len(e.Errs)-i)
			break
		}
		sb.WriteString("\n\t")
		sb.WriteString(err.Error())
	}
	return sb.String()
}

// Unwrap exposes the individual diagnostics.
func (e *CompileError) Unwrap() []error { return e.Errs }

// StandardHeaders returns the virtual header filesystem available to
// #include. All the usual names map to a tiny prelude; libc prototypes are
// injected by the analyzer, not the headers.
func StandardHeaders() map[string]string {
	const stddef = `#ifndef _FOCC_STDDEF_H
#define _FOCC_STDDEF_H
#define NULL ((void*)0)
typedef unsigned long size_t;
typedef long ssize_t;
typedef long ptrdiff_t;
#endif
`
	alias := "#include <stddef.h>\n"
	return map[string]string{
		"stddef.h": stddef,
		"stdlib.h": alias,
		"string.h": alias,
		"stdio.h":  alias,
		"ctype.h":  alias,
		"limits.h": `#ifndef _FOCC_LIMITS_H
#define _FOCC_LIMITS_H
#define CHAR_BIT 8
#define CHAR_MAX 127
#define CHAR_MIN (-128)
#define INT_MAX 2147483647
#define INT_MIN (-2147483647-1)
#define UINT_MAX 4294967295U
#define LONG_MAX 9223372036854775807L
#endif
`,
	}
}

// CompileOptions tunes compilation.
type CompileOptions struct {
	// Includes adds or overrides virtual headers for #include.
	Includes map[string]string
	// Defines predefines object-like macros.
	Defines map[string]string
}

// Compile preprocesses, parses, and analyzes one focc C source file.
func Compile(filename, src string) (*Program, error) {
	return CompileWith(filename, src, CompileOptions{})
}

// CompileWith compiles with explicit options.
func CompileWith(filename, src string, opt CompileOptions) (*Program, error) {
	includes := StandardHeaders()
	for k, v := range opt.Includes {
		includes[k] = v
	}
	lines, errs := cpp.Preprocess(filename, src, cpp.Options{
		Includes: includes,
		Defines:  opt.Defines,
	})
	if len(errs) > 0 {
		return nil, &CompileError{Stage: "preprocess", Errs: errs}
	}
	file, errs := parser.Parse(filename, lines)
	if len(errs) > 0 {
		return nil, &CompileError{Stage: "parse", Errs: errs}
	}
	prog, errs := sema.Analyze(file, libc.Prototypes())
	if len(errs) > 0 {
		return nil, &CompileError{Stage: "analyze", Errs: errs}
	}
	return &Program{sema: prog, name: filename, hash: interp.SourceHash(filename, src)}, nil
}

// Name returns the source file name the program was compiled from.
func (p *Program) Name() string { return p.name }

// Sema exposes the analyzed program (for tools and tests).
func (p *Program) Sema() *sema.Program { return p.sema }

// SourceHash is the identity under which ahead-of-time generated code for
// this program registers itself (see focc -emit-go and cmd/gencorpus): a
// hash of the exact (filename, source) pair.
func (p *Program) SourceHash() string { return p.hash }

// Generated returns the registered ahead-of-time generated engine for
// this program's source, if its generated package is linked in.
func (p *Program) Generated() (*interp.GenProgram, bool) {
	return interp.GeneratedFor(p.hash)
}

// Compiled returns the program's lowered execution IR, building it on
// first use. The result is immutable and shared; concurrent callers get
// the same IR.
func (p *Program) Compiled() *interp.CompiledProgram {
	p.lowerOnce.Do(func() { p.compiled = interp.Compile(p.sema) })
	return p.compiled
}

// NewMachine creates a fresh program instance ("process") under cfg. The
// libc builtins are installed automatically; cfg.Builtins entries override
// or extend them. Instances execute the program's compiled instruction IR
// (lowered once per Program, shared by all machines) unless cfg.TreeWalk
// selects the AST-walking reference engine or cfg.Compiled supplies an
// explicit IR.
func (p *Program) NewMachine(cfg MachineConfig) (*Machine, error) {
	builtins := libc.Builtins()
	for name, impl := range cfg.Builtins {
		builtins[name] = impl
	}
	cfg.Builtins = builtins
	if cfg.UseGenerated && cfg.Generated == nil && !cfg.TreeWalk {
		gp, ok := interp.GeneratedFor(p.hash)
		if !ok {
			return nil, fmt.Errorf("program startup: no generated code registered for %s (source hash %.12s); regenerate with `go generate ./...` or `focc -emit-go`", p.name, p.hash)
		}
		cfg.Generated = gp
	}
	if cfg.Compiled == nil && !cfg.TreeWalk && cfg.Generated == nil {
		cfg.Compiled = p.Compiled()
	}
	m, err := interp.New(p.sema, cfg)
	if err != nil {
		return nil, fmt.Errorf("program startup: %w", err)
	}
	return m, nil
}

// Run compiles src and runs main() under mode — the one-call convenience
// used by the quickstart example.
func Run(filename, src string, mode Mode, cfg MachineConfig) (Result, error) {
	prog, err := Compile(filename, src)
	if err != nil {
		return Result{}, err
	}
	cfg.Mode = mode
	m, err := prog.NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(), nil
}

// ErrIsMemError reports whether err (possibly wrapped) is a BoundsCheck
// memory-error termination.
func ErrIsMemError(err error) bool {
	var me *core.MemError
	return errors.As(err, &me)
}

// Unit is a data unit in the simulated address space (a global, heap block,
// string literal, or stack variable).
type Unit = mem.Unit

// UnitPointer returns a char* value addressing the start of unit u —
// typically obtained from Machine.GlobalUnit.
func UnitPointer(u *Unit) Value { return interp.UnitPointer(u) }
