// Package lexer tokenizes focc C-dialect source text. It consumes the
// line-mapped output of the preprocessor (or raw source split by
// token.SplitLines) so every token carries its original source position.
package lexer

import (
	"fmt"
	"strings"

	"focc/internal/cc/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer tokenizes a sequence of source lines.
type Lexer struct {
	lines []token.Line
	li    int    // current line index
	text  string // current line text
	off   int    // byte offset within text
	errs  []error
}

// New returns a Lexer over preprocessed source lines.
func New(lines []token.Line) *Lexer {
	l := &Lexer{lines: lines}
	if len(lines) > 0 {
		l.text = lines[0].Text
	}
	return l
}

// NewString returns a Lexer over raw, unpreprocessed source.
func NewString(file, src string) *Lexer {
	return New(token.SplitLines(file, src))
}

// Errors returns all lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

// All tokenizes the entire input and returns the tokens, excluding the
// trailing EOF, along with any errors.
func (l *Lexer) All() ([]token.Token, []error) {
	var toks []token.Token
	for {
		t := l.Next()
		if t.Kind == token.EOF {
			break
		}
		toks = append(toks, t)
	}
	return toks, l.errs
}

func (l *Lexer) pos() token.Pos {
	if l.li >= len(l.lines) {
		if n := len(l.lines); n > 0 {
			last := l.lines[n-1]
			return token.Pos{File: last.File, Line: last.N, Col: len(last.Text) + 1}
		}
		return token.Pos{Line: 1, Col: 1}
	}
	ln := l.lines[l.li]
	return token.Pos{File: ln.File, Line: ln.N, Col: l.off + 1}
}

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: p, Msg: fmt.Sprintf(format, args...)})
}

// advanceLine moves to the next source line.
func (l *Lexer) advanceLine() bool {
	l.li++
	l.off = 0
	if l.li >= len(l.lines) {
		l.text = ""
		return false
	}
	l.text = l.lines[l.li].Text
	return true
}

// skipSpace skips whitespace and comments, crossing line boundaries.
func (l *Lexer) skipSpace() bool {
	for {
		for l.off < len(l.text) {
			c := l.text[l.off]
			switch {
			case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
				l.off++
			case c == '/' && l.off+1 < len(l.text) && l.text[l.off+1] == '/':
				l.off = len(l.text)
			case c == '/' && l.off+1 < len(l.text) && l.text[l.off+1] == '*':
				if !l.skipBlockComment() {
					return false
				}
			default:
				return true
			}
		}
		if l.li >= len(l.lines) || !l.advanceLine() {
			return false
		}
	}
}

func (l *Lexer) skipBlockComment() bool {
	start := l.pos()
	l.off += 2
	for {
		if i := strings.Index(l.text[l.off:], "*/"); i >= 0 {
			l.off += i + 2
			return true
		}
		if !l.advanceLine() {
			l.errorf(start, "unterminated block comment")
			return false
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	if !l.skipSpace() {
		return token.Token{Kind: token.EOF, Pos: l.pos()}
	}
	p := l.pos()
	c := l.text[l.off]
	switch {
	case isIdentStart(c):
		return l.lexIdent(p)
	case isDigit(c):
		return l.lexNumber(p)
	case c == '\'':
		return l.lexChar(p)
	case c == '"':
		return l.lexString(p)
	}
	return l.lexOperator(p)
}

func (l *Lexer) lexIdent(p token.Pos) token.Token {
	start := l.off
	for l.off < len(l.text) && isIdentCont(l.text[l.off]) {
		l.off++
	}
	text := l.text[start:l.off]
	if k, ok := token.Keywords[text]; ok {
		return token.Token{Kind: k, Pos: p, Text: text}
	}
	return token.Token{Kind: token.Ident, Pos: p, Text: text}
}

func (l *Lexer) lexNumber(p token.Pos) token.Token {
	start := l.off
	base := 10
	if l.text[l.off] == '0' && l.off+1 < len(l.text) &&
		(l.text[l.off+1] == 'x' || l.text[l.off+1] == 'X') {
		base = 16
		l.off += 2
	} else if l.text[l.off] == '0' {
		base = 8
		l.off++
	}
	digStart := l.off
	for l.off < len(l.text) {
		c := l.text[l.off]
		if isDigit(c) ||
			(base == 16 && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))) {
			l.off++
			continue
		}
		break
	}
	digits := l.text[digStart:l.off]
	if base == 8 && digits == "" {
		// Plain "0".
		base = 10
		digits = "0"
	}
	if base == 16 && digits == "" {
		l.errorf(p, "hexadecimal literal requires digits")
		digits = "0"
	}
	var val uint64
	overflow := false
	for i := 0; i < len(digits); i++ {
		d := uint64(hexVal(digits[i]))
		if base == 8 && d > 7 {
			l.errorf(p, "invalid digit %q in octal literal", digits[i])
		}
		nv := val*uint64(base) + d
		if nv < val {
			overflow = true
		}
		val = nv
	}
	if overflow {
		l.errorf(p, "integer literal overflows 64 bits")
	}
	var unsigned, long bool
	for l.off < len(l.text) {
		switch l.text[l.off] {
		case 'u', 'U':
			unsigned = true
			l.off++
		case 'l', 'L':
			long = true
			l.off++
		default:
			goto done
		}
	}
done:
	if l.off < len(l.text) && isIdentCont(l.text[l.off]) {
		l.errorf(p, "invalid character %q in integer literal", l.text[l.off])
		for l.off < len(l.text) && isIdentCont(l.text[l.off]) {
			l.off++
		}
	}
	return token.Token{
		Kind: token.IntLit, Pos: p, Text: l.text[start:l.off],
		Val: int64(val), Unsigned: unsigned, Long: long,
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return 0
}

// lexEscape decodes an escape sequence after the backslash has been seen.
// l.off points at the character following the backslash.
func (l *Lexer) lexEscape(p token.Pos) byte {
	if l.off >= len(l.text) {
		l.errorf(p, "unterminated escape sequence")
		return 0
	}
	c := l.text[l.off]
	l.off++
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0', '1', '2', '3', '4', '5', '6', '7':
		v := int(c - '0')
		for i := 0; i < 2 && l.off < len(l.text); i++ {
			d := l.text[l.off]
			if d < '0' || d > '7' {
				break
			}
			v = v*8 + int(d-'0')
			l.off++
		}
		return byte(v)
	case 'x':
		v := 0
		n := 0
		for l.off < len(l.text) {
			d := l.text[l.off]
			if !isDigit(d) && !(d >= 'a' && d <= 'f') && !(d >= 'A' && d <= 'F') {
				break
			}
			v = v*16 + hexVal(d)
			l.off++
			n++
		}
		if n == 0 {
			l.errorf(p, "\\x requires hex digits")
		}
		return byte(v)
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	case 'a':
		return 7
	case 'b':
		return 8
	case 'f':
		return 12
	case 'v':
		return 11
	case '?':
		return '?'
	default:
		l.errorf(p, "unknown escape sequence \\%c", c)
		return c
	}
}

func (l *Lexer) lexChar(p token.Pos) token.Token {
	l.off++ // consume '
	if l.off >= len(l.text) {
		l.errorf(p, "unterminated character literal")
		return token.Token{Kind: token.CharLit, Pos: p, Text: "''"}
	}
	var v byte
	if l.text[l.off] == '\\' {
		l.off++
		v = l.lexEscape(p)
	} else {
		v = l.text[l.off]
		l.off++
	}
	if l.off >= len(l.text) || l.text[l.off] != '\'' {
		l.errorf(p, "unterminated character literal")
	} else {
		l.off++
	}
	return token.Token{Kind: token.CharLit, Pos: p, Text: fmt.Sprintf("'%c'", v), Val: int64(v)}
}

func (l *Lexer) lexString(p token.Pos) token.Token {
	l.off++ // consume "
	var sb strings.Builder
	for {
		if l.off >= len(l.text) {
			l.errorf(p, "unterminated string literal")
			break
		}
		c := l.text[l.off]
		if c == '"' {
			l.off++
			break
		}
		if c == '\\' {
			l.off++
			sb.WriteByte(l.lexEscape(p))
			continue
		}
		sb.WriteByte(c)
		l.off++
	}
	// Adjacent string literal concatenation: "a" "b" == "ab".
	save := l.li
	saveOff := l.off
	saveText := l.text
	if l.skipSpace() && l.off < len(l.text) && l.text[l.off] == '"' {
		next := l.lexString(l.pos())
		sb.WriteString(next.Text)
	} else {
		l.li, l.off = save, saveOff
		l.text = saveText
	}
	return token.Token{Kind: token.StringLit, Pos: p, Text: sb.String()}
}

// operator table ordered so longer spellings are tried first.
var operators = []struct {
	text string
	kind token.Kind
}{
	{"...", token.Ellipsis},
	{"<<=", token.ShlEq}, {">>=", token.ShrEq},
	{"->", token.Arrow}, {"++", token.Inc}, {"--", token.Dec},
	{"<<", token.Shl}, {">>", token.Shr},
	{"<=", token.Le}, {">=", token.Ge}, {"==", token.EqEq}, {"!=", token.NotEq},
	{"&&", token.AndAnd}, {"||", token.OrOr},
	{"+=", token.PlusEq}, {"-=", token.MinusEq}, {"*=", token.StarEq},
	{"/=", token.SlashEq}, {"%=", token.PercentEq},
	{"&=", token.AmpEq}, {"|=", token.PipeEq}, {"^=", token.CaretEq},
	{"(", token.LParen}, {")", token.RParen},
	{"{", token.LBrace}, {"}", token.RBrace},
	{"[", token.LBracket}, {"]", token.RBracket},
	{";", token.Semi}, {",", token.Comma}, {".", token.Dot},
	{"+", token.Plus}, {"-", token.Minus}, {"*", token.Star},
	{"/", token.Slash}, {"%", token.Percent},
	{"&", token.Amp}, {"|", token.Pipe}, {"^", token.Caret},
	{"~", token.Tilde}, {"!", token.Bang},
	{"?", token.Question}, {":", token.Colon},
	{"<", token.Lt}, {">", token.Gt}, {"=", token.Assign},
}

func (l *Lexer) lexOperator(p token.Pos) token.Token {
	rest := l.text[l.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			l.off += len(op.text)
			return token.Token{Kind: op.kind, Pos: p, Text: op.text}
		}
	}
	l.errorf(p, "unexpected character %q", l.text[l.off])
	l.off++
	return l.Next()
}
