// Package inject is the deterministic fault-injection engine: it
// manufactures the memory errors, allocator failures, state corruption and
// process-level chaos that the paper's evaluation relies on, at scale and
// reproducibly, instead of one hand-written attack per server.
//
// Three layers of fault classes are injectable:
//
//   - Memory faults at the access path: the Injector decorates the
//     machine's core.Accessor (installed through interp.Config.WrapAccessor)
//     and perturbs exactly one chosen load or store into an out-of-bounds
//     access; the allocator countdown (mem.InjectMallocFault) fails the
//     n-th malloc; corrupt-byte faults flip a bit in a chosen data unit.
//   - Policy perturbation: the manufactured-value sequence served for
//     invalid reads is swept across strategies (the paper's small-integer
//     sequence, all-zeros, constants, seeded random), the search-space
//     exploration of Durieux et al.
//   - Process-level chaos at the serving layer: instance kills and handler
//     latency through serve.WithChaos.
//
// Determinism contract: every choice an injection campaign makes — which
// request, which fault class, which access ordinal, which perturbation
// shape — is drawn from a single math/rand PRNG seeded by the Plan, and
// execution consumes no further randomness, so a campaign is fully
// reproducible from (seed, plan). See campaign.go for the runner.
package inject

import (
	"fmt"
	"math/rand"
	"strings"

	"focc/internal/cc/token"
	"focc/internal/core"
	"focc/internal/mem"
)

// FaultClass names an injectable fault class.
type FaultClass string

// The memory-layer fault classes.
const (
	// OOBRead perturbs the Nth interpreter-level load into an
	// out-of-bounds read.
	OOBRead FaultClass = "oob-read"
	// OOBWrite perturbs the Nth interpreter-level store into an
	// out-of-bounds write.
	OOBWrite FaultClass = "oob-write"
	// AllocFault fails the Nth allocator call with out-of-memory.
	AllocFault FaultClass = "alloc-oom"
	// CorruptByte flips bits of one byte in a chosen live data unit
	// before the request runs (host-level state corruption: a model of a
	// bug elsewhere having already smashed memory).
	CorruptByte FaultClass = "corrupt-byte"
)

// Classes lists the memory-layer fault classes in campaign sampling order.
var Classes = []FaultClass{OOBRead, OOBWrite, AllocFault, CorruptByte}

// Shape is how an injected out-of-bounds pointer is perturbed. The shapes
// mirror the real-world error taxonomy (and Rigger et al.'s observation
// that the resilience envelope depends on the kind of fault): continuation
// overruns just past a unit, underruns before it, wild pointers into
// unmapped space, and null dereferences.
type Shape string

// Perturbation shapes.
const (
	// ShapePastEnd moves the access just past the end of its provenance
	// unit — the classic sequential buffer overrun.
	ShapePastEnd Shape = "past-end"
	// ShapeBefore moves the access just before the base of its
	// provenance unit (buffer underrun).
	ShapeBefore Shape = "before-base"
	// ShapeWild retargets the access at an unmapped address between
	// regions (a corrupted pointer).
	ShapeWild Shape = "wild"
	// ShapeNull nulls the pointer (address 0, no provenance).
	ShapeNull Shape = "null"
)

// wildBase is the unmapped address wild-shaped faults target: below the
// literal region, inside no unit, in every server.
const wildBase = 0x0800_0000

// Injector is a core.Accessor decorator: it counts every interpreter-level
// load and store flowing to the underlying policy and, when armed, perturbs
// exactly one access — the at-th load (or store) since machine creation —
// into an out-of-bounds access of the configured shape. The perturbed
// pointer keeps its provenance for the non-null shapes, exactly as CRED
// provenance survives out-of-bounds pointer arithmetic, so every policy
// sees the fault the way it would see an organic overrun.
//
// Install it at machine creation via Wrap (interp.Config.WrapAccessor); an
// unarmed Injector only counts, which is how campaign profiling measures a
// request's access footprint without changing its behaviour.
type Injector struct {
	inner core.Accessor

	loads, stores uint64

	armed bool
	write bool // perturb the at-th store; otherwise the at-th load
	at    uint64
	shape Shape
	extra uint64
	fired bool
}

// Wrap installs the injector around acc and returns it; pass as
// interp.Config.WrapAccessor (fo.MachineConfig.WrapAccessor).
func (in *Injector) Wrap(acc core.Accessor) core.Accessor {
	in.inner = acc
	return in
}

// Arm schedules one perturbation: the at-th store (write=true) or load
// counted since machine creation is reshaped by shape, with extra biasing
// how far out of bounds the pointer lands. Arming is idempotent until the
// fault fires; an armed injector fires at most once.
func (in *Injector) Arm(write bool, at uint64, shape Shape, extra uint64) {
	in.armed, in.write, in.at, in.shape, in.extra = true, write, at, shape, extra
	in.fired = false
}

// Loads returns the loads counted since creation.
func (in *Injector) Loads() uint64 { return in.loads }

// Stores returns the stores counted since creation.
func (in *Injector) Stores() uint64 { return in.stores }

// Fired reports whether the armed fault has fired.
func (in *Injector) Fired() bool { return in.fired }

// Mode implements core.Accessor.
func (in *Injector) Mode() core.Mode { return in.inner.Mode() }

// Load implements core.Accessor: count, perturb if this is the armed
// ordinal, delegate.
func (in *Injector) Load(p core.Pointer, buf []byte, pos token.Pos) (*mem.Unit, error) {
	in.loads++
	if in.armed && !in.write && !in.fired && in.loads == in.at {
		in.fired = true
		p = in.perturb(p)
	}
	return in.inner.Load(p, buf, pos)
}

// Store implements core.Accessor.
func (in *Injector) Store(p core.Pointer, data []byte, prov *mem.Unit, pos token.Pos) error {
	in.stores++
	if in.armed && in.write && !in.fired && in.stores == in.at {
		in.fired = true
		p = in.perturb(p)
	}
	return in.inner.Store(p, data, prov, pos)
}

// perturb reshapes a (typically in-bounds) pointer into the armed
// out-of-bounds form. Provenance is kept for past-end/before/wild shapes —
// the access descends from a real unit, it just points outside it.
func (in *Injector) perturb(p core.Pointer) core.Pointer {
	switch in.shape {
	case ShapePastEnd:
		if p.Prov != nil {
			return core.Pointer{Addr: p.Prov.End() + in.extra, Prov: p.Prov}
		}
	case ShapeBefore:
		if p.Prov != nil {
			return core.Pointer{Addr: p.Prov.Base - 1 - in.extra, Prov: p.Prov}
		}
	case ShapeWild:
		return core.Pointer{Addr: wildBase + in.extra*16, Prov: p.Prov}
	}
	// ShapeNull, or a provenance-relative shape armed on an access that
	// carries no provenance: null dereference.
	return core.Pointer{}
}

// Strategy names a manufactured-value strategy for the policy-perturbation
// sweep (Durieux et al.: the choice of value sequence is part of the
// failure-oblivious search space, and the paper's small-integer sequence is
// one point in it). The swept strategies, in report order:
//
//	smallint - the paper's production sequence (0, 1, 2, 0, 1, 3, ...)
//	zero     - always zero; sentinel scans past a buffer never terminate
//	one      - always one
//	max      - all-ones (-1): huge lengths, pathological indices
//	random   - uniform random bytes from a seeded PRNG
//
// TestStrategyDocMatchesTable pins this comment to strategyTable, the
// single source Strategies and DescribeStrategies render from (same
// discipline as the fobench experiments table).
type Strategy string

// The swept strategies, in strategyTable (report) order.
const (
	StratSmallInt Strategy = "smallint"
	StratZero     Strategy = "zero"
	StratOne      Strategy = "one"
	StratMax      Strategy = "max"
	StratRandom   Strategy = "random"
)

// strategyTable is the single source of the swept strategies: the
// Strategies list, the Strategy doc comment, and DescribeStrategies all
// render from it, so adding a strategy cannot drift the docs.
var strategyTable = []struct {
	name Strategy
	desc string
}{
	{StratSmallInt, "the paper's production sequence (0, 1, 2, 0, 1, 3, ...)"},
	{StratZero, "always zero; sentinel scans past a buffer never terminate"},
	{StratOne, "always one"},
	{StratMax, "all-ones (-1): huge lengths, pathological indices"},
	{StratRandom, "uniform random bytes from a seeded PRNG"},
}

// Strategies lists the swept strategies in report order.
var Strategies = func() []Strategy {
	out := make([]Strategy, len(strategyTable))
	for i, r := range strategyTable {
		out[i] = r.name
	}
	return out
}()

// DescribeStrategies renders strategyTable as "name - description" lines —
// the text the Strategy doc comment embeds.
func DescribeStrategies() string {
	var b strings.Builder
	for _, r := range strategyTable {
		fmt.Fprintf(&b, "%-8s - %s\n", r.name, r.desc)
	}
	return b.String()
}

// Generator returns a fresh ValueGenerator implementing the strategy. Only
// StratRandom consumes seed; every generator is deterministic given it.
func (s Strategy) Generator(seed int64) core.ValueGenerator {
	switch s {
	case StratZero:
		return core.ZeroGenerator{}
	case StratOne:
		return core.ConstGenerator{V: 1}
	case StratMax:
		return core.ConstGenerator{V: -1}
	case StratRandom:
		return &randGen{r: rand.New(rand.NewSource(seed))}
	}
	return core.NewSmallIntGenerator()
}

// randGen manufactures uniform random byte values from its own PRNG, so a
// campaign cell using it stays reproducible from the plan seed.
type randGen struct{ r *rand.Rand }

func (g *randGen) Next(int) int64 { return g.r.Int63n(256) }
func (g *randGen) Reset()         {}
